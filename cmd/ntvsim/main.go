// Command ntvsim regenerates the tables and figures of "Process
// Variation in Near-Threshold Wide SIMD Architectures" (DAC 2012) from
// the Go reimplementation of the study.
//
// Usage:
//
//	ntvsim [-seed N] [-quick] [-progress] [-list] [-o dir] [experiment ...]
//
// Experiments: fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig11 fig12
// table1 table2 table3 table4 ks synctium, the extensions ablation
// corners itd yield, or "all" (the default).
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"time"

	"github.com/ntvsim/ntvsim/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 0, "Monte-Carlo seed (0: paper default)")
	quick := flag.Bool("quick", false, "reduced sample counts (fast, noisier)")
	progress := flag.Bool("progress", false, "render a live per-experiment progress line on stderr")
	list := flag.Bool("list", false, "list experiment ids and exit")
	outDir := flag.String("o", "", "also write <id>.txt (and <id>.csv where available) into this directory")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	ids := flag.Args()
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		ids = experiments.IDs()
	}

	// Interrupt (Ctrl-C) cancels the in-flight experiment's Monte-Carlo
	// sampling instead of killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	exitCode := 0
	for _, id := range ids {
		start := time.Now()
		runCtx, stop := ctx, func() {}
		if *progress {
			runCtx, stop = startProgress(ctx, id)
		}
		res, err := experiments.RunCtx(runCtx, id, cfg)
		stop()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ntvsim: %s: %v\n", id, err)
			exitCode = 1
			continue
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", id, time.Since(start).Seconds(), res.Render())
		if *outDir != "" {
			if err := writeArtifacts(*outDir, id, res); err != nil {
				fmt.Fprintf(os.Stderr, "ntvsim: %s: %v\n", id, err)
				exitCode = 1
			}
		}
	}
	os.Exit(exitCode)
}

// writeArtifacts stores the rendered text and, when the result supports
// it, a CSV of the underlying series.
func writeArtifacts(dir, id string, res experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, id+".txt"), []byte(res.Render()), 0o644); err != nil {
		return err
	}
	c, ok := res.(experiments.CSVer)
	if !ok {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(c.CSV()); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
