// Command ntvsim regenerates the tables and figures of "Process
// Variation in Near-Threshold Wide SIMD Architectures" (DAC 2012) from
// the Go reimplementation of the study.
//
// Usage:
//
//	ntvsim [-seed N] [-quick] [-progress] [-trace out.json] [-list] [-o dir] [experiment ...]
//	ntvsim -sweep '<json spec>' [-trace out.json] [-o dir]
//	ntvsim -sweep @spec.json [-o dir]
//
// -trace writes the run's span tree as Chrome trace-event JSON, ready
// to load in Perfetto (ui.perfetto.dev) or chrome://tracing.
//
// Experiments: fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig11 fig12
// table1 table2 table3 table4 ks synctium, the extensions ablation app
// corners itd tailyield yield, or "all" (the default).
//
// -sweep runs a parameter sweep serially in-process (the same grid the
// ntvsimd service shards across its worker pool; see docs/SWEEPS.md for
// the spec grammar). The spec is inline JSON or @file. Tail-yield
// metrics accept the sampler knobs ("sampler": "mc" | "is", tail_sigma,
// is_shift, is_mix) described in docs/SAMPLING.md.
package main

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"github.com/ntvsim/ntvsim/internal/experiments"
	"github.com/ntvsim/ntvsim/internal/sweep"
	"github.com/ntvsim/ntvsim/internal/telemetry"
)

func main() {
	seed := flag.Uint64("seed", 0, "Monte-Carlo seed (0: paper default)")
	quick := flag.Bool("quick", false, "reduced sample counts (fast, noisier)")
	progress := flag.Bool("progress", false, "render a live per-experiment progress line on stderr")
	list := flag.Bool("list", false, "list experiment ids and exit")
	sweepSpec := flag.String("sweep", "", "run a parameter sweep: inline JSON spec or @file (see docs/SWEEPS.md)")
	traceOut := flag.String("trace", "", "write the run's span tree as Chrome trace-event JSON to this file")
	outDir := flag.String("o", "", "also write <id>.txt (and <id>.csv where available) into this directory")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		fmt.Println("\nsweep metrics (for -sweep):")
		for _, k := range sweep.Kernels() {
			fmt.Printf("  %-16s %s\n", k.ID, k.Description)
		}
		return
	}

	if *sweepSpec != "" {
		os.Exit(runSweep(*sweepSpec, *seed, *outDir, *traceOut))
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}

	ids := flag.Args()
	if len(ids) == 0 || (len(ids) == 1 && ids[0] == "all") {
		ids = experiments.IDs()
	}

	// Interrupt (Ctrl-C) cancels the in-flight experiment's Monte-Carlo
	// sampling instead of killing the process mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	ctx, finishTrace := beginTrace(ctx, *traceOut)

	exitCode := 0
	for _, id := range ids {
		start := time.Now()
		runCtx, stop := ctx, func() {}
		if *progress {
			runCtx, stop = startProgress(ctx, id)
		}
		res, err := experiments.RunCtx(runCtx, id, cfg)
		stop()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ntvsim: %s: %v\n", id, err)
			exitCode = 1
			continue
		}
		fmt.Printf("=== %s (%.1fs) ===\n%s\n", id, time.Since(start).Seconds(), res.Render())
		if *outDir != "" {
			if err := writeArtifacts(*outDir, id, res); err != nil {
				fmt.Fprintf(os.Stderr, "ntvsim: %s: %v\n", id, err)
				exitCode = 1
			}
		}
	}
	if err := finishTrace(); err != nil {
		fmt.Fprintf(os.Stderr, "ntvsim: -trace: %v\n", err)
		exitCode = 1
	}
	os.Exit(exitCode)
}

// beginTrace roots a span tree on ctx when -trace is set. The returned
// finish func ends the root span and writes the whole tree as Chrome
// trace-event JSON to out; with -trace unset both are no-ops.
func beginTrace(ctx context.Context, out string) (context.Context, func() error) {
	if out == "" {
		return ctx, func() error { return nil }
	}
	store := telemetry.NewTraceStore(1)
	ctx, trace := store.Start(ctx, "ntvsim")
	return ctx, func() error {
		trace.Finish()
		b, err := json.MarshalIndent(trace.Snapshot().Chrome(), "", "  ")
		if err != nil {
			return err
		}
		return os.WriteFile(out, append(b, '\n'), 0o644)
	}
}

// runSweep parses the -sweep argument (inline JSON or @file), runs the
// sweep serially under an interruptible context, prints the merged
// table and optionally writes sweep.txt/sweep.csv artifacts.
func runSweep(arg string, seed uint64, outDir, traceOut string) int {
	raw := []byte(arg)
	if strings.HasPrefix(arg, "@") {
		b, err := os.ReadFile(arg[1:])
		if err != nil {
			fmt.Fprintf(os.Stderr, "ntvsim: -sweep: %v\n", err)
			return 1
		}
		raw = b
	}
	var spec sweep.Spec
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		fmt.Fprintf(os.Stderr, "ntvsim: -sweep: invalid spec: %v\n", err)
		return 1
	}
	if seed != 0 && spec.Seed == 0 {
		spec.Seed = seed
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	ctx, finishTrace := beginTrace(ctx, traceOut)

	start := time.Now()
	res, err := sweep.RunSerial(ctx, spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ntvsim: sweep: %v\n", err)
		return 1
	}
	fmt.Printf("=== sweep (%.1fs) ===\n%s\n", time.Since(start).Seconds(), res.Render())
	if outDir != "" {
		if err := writeArtifacts(outDir, "sweep", res); err != nil {
			fmt.Fprintf(os.Stderr, "ntvsim: sweep: %v\n", err)
			return 1
		}
	}
	if err := finishTrace(); err != nil {
		fmt.Fprintf(os.Stderr, "ntvsim: -trace: %v\n", err)
		return 1
	}
	return 0
}

// writeArtifacts stores the rendered text and, when the result supports
// it, a CSV of the underlying series.
func writeArtifacts(dir, id string, res experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, id+".txt"), []byte(res.Render()), 0o644); err != nil {
		return err
	}
	c, ok := res.(experiments.CSVer)
	if !ok {
		return nil
	}
	f, err := os.Create(filepath.Join(dir, id+".csv"))
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(c.CSV()); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
