package main

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/ntvsim/ntvsim/internal/telemetry"
)

// progressRefresh is how often the -progress line redraws. Stderr is
// line-buffered at human speed; anything under ~5 Hz reads as live.
const progressRefresh = 150 * time.Millisecond

// startProgress attaches a fresh reporter to ctx and renders it as a
// single rewriting stderr line ("fig4  node/8x128  312000/1200000 26.0%")
// until the returned stop function runs. stop clears the line so the
// experiment's rendered output starts on a clean row.
func startProgress(ctx context.Context, id string) (context.Context, func()) {
	prog := telemetry.NewProgress()
	ctx = telemetry.WithProgress(ctx, prog)
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		ticker := time.NewTicker(progressRefresh)
		defer ticker.Stop()
		width := 0
		for {
			select {
			case <-done:
				// Clear the live line before the result prints over it.
				fmt.Fprintf(os.Stderr, "\r%s\r", strings.Repeat(" ", width))
				return
			case <-ticker.C:
				snap := prog.Snapshot()
				line := fmt.Sprintf("%s  %s  %d/%d %.1f%%",
					id, snap.Phase, snap.Done, snap.Total, 100*snap.Fraction())
				if pad := width - len(line); pad > 0 {
					line += strings.Repeat(" ", pad)
				} else {
					width = len(line)
				}
				fmt.Fprintf(os.Stderr, "\r%s", line)
			}
		}
	}()
	return ctx, func() {
		close(done)
		<-finished
	}
}
