package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: github.com/ntvsim/ntvsim/internal/montecarlo
cpu: AMD EPYC 7B13
BenchmarkKernelMoments-8   	    5000	    230001 ns/op	 72000000 samples/sec	      32 B/op	       1 allocs/op
BenchmarkKernelSample-8    	    4000	    310000 ns/op	 52000000 samples/sec	  131104 B/op	       2 allocs/op
PASS
ok  	github.com/ntvsim/ntvsim/internal/montecarlo	3.1s
BenchmarkFig2 	      10	 120000000 ns/op	        56.2 22nm3σ/μ@0.5V%	 1000000 B/op	    5000 allocs/op
`

func TestParseBenchOutput(t *testing.T) {
	rs, err := ParseBenchOutput(sampleOutput)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rs))
	}
	m := rs[0]
	if m.Name != "BenchmarkKernelMoments" || m.Procs != 8 {
		t.Errorf("name/procs = %q/%d", m.Name, m.Procs)
	}
	if m.Iterations != 5000 || m.NsPerOp != 230001 {
		t.Errorf("iters/ns = %d/%v", m.Iterations, m.NsPerOp)
	}
	if m.BytesPerOp != 32 || m.AllocsPerOp != 1 {
		t.Errorf("B/allocs = %v/%v", m.BytesPerOp, m.AllocsPerOp)
	}
	if got := m.Metrics["samples/sec"]; got != 72e6 {
		t.Errorf("samples/sec = %v", got)
	}
	// Artifact line: no -procs suffix, custom unicode metric unit.
	f := rs[2]
	if f.Name != "BenchmarkFig2" || f.Procs != 1 {
		t.Errorf("fig2 name/procs = %q/%d", f.Name, f.Procs)
	}
	if got := f.Metrics["22nm3σ/μ@0.5V%"]; got != 56.2 {
		t.Errorf("fig2 custom metric = %v", got)
	}
}

func TestParseBenchOutputEmpty(t *testing.T) {
	rs, err := ParseBenchOutput("PASS\nok \tpkg\t0.1s\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Fatalf("parsed %d benchmarks from benchless output", len(rs))
	}
}

func TestParseBenchOutputMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX-4   notanumber   10 ns/op",
		"BenchmarkX-4   100   oops ns/op",
		"BenchmarkX-4   100",
	} {
		if _, err := ParseBenchOutput(bad); err == nil {
			t.Errorf("no error for malformed line %q", bad)
		}
	}
}

// TestSnapshotRoundTrip pins the JSON field names of the documented
// schema (docs/BENCHMARKS.md): renaming a field is a schema change and
// must bump SchemaVersion.
func TestSnapshotRoundTrip(t *testing.T) {
	snap := Snapshot{
		SchemaVersion: SchemaVersion,
		Generated:     "2026-08-05T00:00:00Z",
		GoVersion:     "go1.24.0",
		GOOS:          "linux",
		GOARCH:        "amd64",
		GOMAXPROCS:    8,
		Bench:         "Kernel",
		Benchtime:     "1s",
		Count:         1,
		Benchmarks: []Benchmark{{
			Name: "BenchmarkKernelMoments", Procs: 8, Iterations: 5000,
			NsPerOp: 230001, BytesPerOp: 32, AllocsPerOp: 1,
			Metrics: map[string]float64{"samples/sec": 72e6},
		}},
	}
	blob, err := json.Marshal(&snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"schema_version":1`, `"generated"`, `"go_version"`, `"goos"`, `"goarch"`,
		`"gomaxprocs"`, `"bench"`, `"benchtime"`, `"count"`, `"benchmarks"`,
		`"name"`, `"procs"`, `"iterations"`, `"ns_per_op"`, `"bytes_per_op"`,
		`"allocs_per_op"`, `"metrics"`, `"samples/sec"`,
	} {
		if !strings.Contains(string(blob), key) {
			t.Errorf("snapshot JSON missing %s: %s", key, blob)
		}
	}
	var back Snapshot
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Benchmarks[0].Metrics["samples/sec"] != 72e6 {
		t.Error("metrics did not round-trip")
	}
}
