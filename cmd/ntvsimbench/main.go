// Command ntvsimbench runs the repository's benchmark suites and emits
// a schema-documented BENCH_<yyyymmdd>.json snapshot, the unit of the
// repo's committed performance trajectory (see docs/BENCHMARKS.md).
//
// It shells out to the standard benchmark harness —
//
//	go test -run ^$ -bench <regexp> -benchmem <packages>
//
// — parses the benchmark result lines (including custom metrics such as
// samples/sec and the reproduced paper quantities attached via
// b.ReportMetric), and writes one JSON document combining machine
// context with every parsed benchmark.
//
// Usage:
//
//	ntvsimbench [flags]
//
//	-bench regexp    benchmarks to run (default Kernel|NewSub|Reset|SRAM:
//	                 the sampling-kernel and SRAM-yield microbenchmarks)
//	-artifacts       also run the per-artifact suite in the repo root
//	                 (Benchmark(Fig|Table|...)): slower, adds reproduced
//	                 paper metrics to the snapshot
//	-count n         -count passed to go test (default 1)
//	-benchtime s     -benchtime passed to go test (default "1s")
//	-o path          output path (default BENCH_<yyyymmdd>.json in the
//	                 current directory)
//	-dir path        repository root to run in (default ".")
//
// Exit status is non-zero if go test fails or no benchmarks matched.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"time"
)

// kernelPackages hosts the sampling-kernel microbenchmarks; the
// artifact suite lives in the repository root package.
var kernelPackages = []string{"./internal/montecarlo/", "./internal/rng/", "./internal/importance/", "./internal/sweep/", "./internal/sram/"}

func main() {
	bench := flag.String("bench", "Kernel|NewSub|Reset|SRAM", "benchmark regexp passed to go test -bench for the kernel packages")
	artifacts := flag.Bool("artifacts", false, "also run the per-artifact benchmarks in the repo root")
	artifactBench := flag.String("artifactbench", ".", "benchmark regexp for the artifact suite (with -artifacts)")
	count := flag.Int("count", 1, "go test -count")
	benchtime := flag.String("benchtime", "1s", "go test -benchtime")
	out := flag.String("o", "", "output path (default BENCH_<yyyymmdd>.json)")
	dir := flag.String("dir", ".", "repository root to run the benchmarks in")
	flag.Parse()

	snap := Snapshot{
		SchemaVersion: SchemaVersion,
		Generated:     time.Now().UTC().Format(time.RFC3339),
		GoVersion:     runtime.Version(),
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Bench:         *bench,
		Benchtime:     *benchtime,
		Count:         *count,
	}

	type benchRun struct {
		bench string
		pkgs  []string
	}
	runs := []benchRun{{*bench, kernelPackages}}
	if *artifacts {
		runs = append(runs, benchRun{*artifactBench, []string{"."}})
	}
	for _, r := range runs {
		args := []string{"test", "-run", "^$", "-bench", r.bench, "-benchmem",
			"-count", fmt.Sprint(*count), "-benchtime", *benchtime}
		args = append(args, r.pkgs...)
		cmd := exec.Command("go", args...)
		cmd.Dir = *dir
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = os.Stderr
		fmt.Fprintf(os.Stderr, "ntvsimbench: go %v\n", args)
		if err := cmd.Run(); err != nil {
			fatalf("go test %v: %v", r.pkgs, err)
		}
		rs, err := ParseBenchOutput(buf.String())
		if err != nil {
			fatalf("parsing go test output: %v", err)
		}
		snap.Benchmarks = append(snap.Benchmarks, rs...)
	}
	if len(snap.Benchmarks) == 0 {
		fatalf("no benchmarks matched -bench %q", *bench)
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", time.Now().UTC().Format("20060102"))
	}
	blob, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		fatalf("encoding snapshot: %v", err)
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		fatalf("writing %s: %v", path, err)
	}
	fmt.Printf("ntvsimbench: wrote %d benchmarks to %s\n", len(snap.Benchmarks), filepath.Clean(path))
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ntvsimbench: "+format+"\n", args...)
	os.Exit(1)
}
