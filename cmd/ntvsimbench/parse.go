package main

import (
	"fmt"
	"strconv"
	"strings"
)

// SchemaVersion identifies the BENCH_*.json document layout. Bump it
// (and docs/BENCHMARKS.md) on any incompatible change so trajectory
// tooling can refuse to compare apples to oranges.
const SchemaVersion = 1

// Snapshot is the top-level BENCH_*.json document: one benchmark run on
// one machine at one commit.
type Snapshot struct {
	SchemaVersion int    `json:"schema_version"`
	Generated     string `json:"generated"` // RFC 3339 UTC
	GoVersion     string `json:"go_version"`
	GOOS          string `json:"goos"`
	GOARCH        string `json:"goarch"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	Bench         string `json:"bench"`     // -bench regexp the run used
	Benchtime     string `json:"benchtime"` // -benchtime the run used
	Count         int    `json:"count"`     // -count the run used

	Benchmarks []Benchmark `json:"benchmarks"`
}

// Benchmark is one parsed result line from go test -bench -benchmem.
// NsPerOp/BytesPerOp/AllocsPerOp mirror the standard columns; Metrics
// carries every custom b.ReportMetric pair on the line (samples/sec for
// the kernel benchmarks, reproduced paper quantities for the artifact
// suite), keyed by unit.
type Benchmark struct {
	Name        string             `json:"name"` // without the -<procs> suffix
	Procs       int                `json:"procs"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// ParseBenchOutput extracts every benchmark result line from go test
// -bench output. Non-benchmark lines (goos/pkg headers, PASS/ok
// trailers) are skipped; a malformed Benchmark line is an error rather
// than a silent drop, so a harness change that breaks the format breaks
// the pipeline loudly.
func ParseBenchOutput(out string) ([]Benchmark, error) {
	var results []Benchmark
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, err := parseBenchLine(line)
		if err != nil {
			return nil, fmt.Errorf("%v in line %q", err, line)
		}
		results = append(results, b)
	}
	return results, nil
}

// parseBenchLine parses one line of the form
//
//	BenchmarkName-8   123   456.7 ns/op   89 B/op   2 allocs/op   1e6 samples/sec
//
// The name field is mandatory; every following field is a value/unit
// pair.
func parseBenchLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	// name + iterations + k value/unit pairs = an even count ≥ 4.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, fmt.Errorf("want name + iterations + value/unit pairs, got %d fields", len(fields))
	}
	b := Benchmark{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(b.Name, "-"); i >= 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil && p > 0 {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("bad iteration count %q", fields[1])
	}
	b.Iterations = iters
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("bad value %q for unit %q", fields[i], fields[i+1])
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			b.BytesPerOp = val
		case "allocs/op":
			b.AllocsPerOp = val
		default:
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = val
		}
	}
	return b, nil
}
