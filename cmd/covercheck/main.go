// Command covercheck enforces the repository's per-package test-coverage
// ratchet: it runs `go test -cover` over every package, parses the
// statement-coverage percentages, and compares them against the floors
// committed in coverage_floors.json. Any package below its floor — or
// any package with tests that is missing from the floors file — fails
// the run, so coverage can only ratchet upward (raise a floor in the
// same PR that earns it).
//
// Usage:
//
//	covercheck [flags]
//
//	-floors path   floors file (default coverage_floors.json)
//	-dir path      repository root to run in (default ".")
//	-margin pts    slack subtracted from measured coverage when
//	               updating floors (default 2.0)
//	-update        rewrite the floors file from the current measurement
//	               (measured − margin, never lowering an existing floor)
//
// Exit status is non-zero if go test fails, a package regresses below
// its floor, or a tested package has no committed floor.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
)

var coverRe = regexp.MustCompile(`^ok\s+(\S+)\s+.*coverage:\s+([0-9.]+)% of statements`)

func main() {
	floorsPath := flag.String("floors", "coverage_floors.json", "committed per-package coverage floors")
	dir := flag.String("dir", ".", "repository root to run the tests in")
	margin := flag.Float64("margin", 2.0, "slack (percentage points) below measured coverage when updating floors")
	update := flag.Bool("update", false, "rewrite the floors file from the current measurement")
	flag.Parse()

	measured, err := measure(*dir)
	if err != nil {
		fatalf("%v", err)
	}
	if len(measured) == 0 {
		fatalf("no coverage lines parsed; did go test run?")
	}

	if *update {
		if err := writeFloors(*floorsPath, measured, *margin); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("covercheck: wrote %d floors to %s\n", len(measured), *floorsPath)
		return
	}

	floors, err := readFloors(*floorsPath)
	if err != nil {
		fatalf("%v", err)
	}
	var failures []string
	for _, pkg := range sortedKeys(measured) {
		got := measured[pkg]
		floor, ok := floors[pkg]
		if !ok {
			failures = append(failures,
				fmt.Sprintf("%s: %.1f%% measured but no committed floor (add it to %s)", pkg, got, *floorsPath))
			continue
		}
		if got < floor {
			failures = append(failures,
				fmt.Sprintf("%s: coverage %.1f%% below floor %.1f%%", pkg, got, floor))
		}
	}
	for _, pkg := range sortedKeys(floors) {
		if _, ok := measured[pkg]; !ok {
			failures = append(failures,
				fmt.Sprintf("%s: floor committed but package not measured (deleted its tests?)", pkg))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "covercheck: FAIL %s\n", f)
		}
		os.Exit(1)
	}
	fmt.Printf("covercheck: %d packages at or above their floors\n", len(measured))
}

// measure runs go test -cover over every package and returns statement
// coverage by import path. Packages without test files produce no
// coverage line and are skipped — the ratchet tracks tested packages.
func measure(dir string) (map[string]float64, error) {
	cmd := exec.Command("go", "test", "-count=1", "-cover", "./...")
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		os.Stderr.Write(buf.Bytes())
		return nil, fmt.Errorf("go test -cover: %w", err)
	}
	out := map[string]float64{}
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		m := coverRe.FindSubmatch(line)
		if m == nil {
			continue
		}
		pct, err := strconv.ParseFloat(string(m[2]), 64)
		if err != nil {
			return nil, fmt.Errorf("unparseable coverage in %q", line)
		}
		out[string(m[1])] = pct
	}
	return out, nil
}

func readFloors(path string) (map[string]float64, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	floors := map[string]float64{}
	if err := json.Unmarshal(blob, &floors); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return floors, nil
}

// writeFloors commits measured − margin as the new floors, rounded down
// to one decimal and clamped to [0, 100]. Existing floors are never
// lowered — the ratchet only climbs.
func writeFloors(path string, measured map[string]float64, margin float64) error {
	floors, err := readFloors(path)
	if err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		floors = map[string]float64{}
	}
	out := map[string]float64{}
	for pkg, pct := range measured {
		f := math.Floor((pct-margin)*10) / 10
		if f < 0 {
			f = 0
		}
		if prev, ok := floors[pkg]; ok && prev > f {
			f = prev
		}
		out[pkg] = f
	}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

func sortedKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "covercheck: "+format+"\n", args...)
	os.Exit(1)
}
