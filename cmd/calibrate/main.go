// Command calibrate re-fits the per-node device and variation parameters
// against the paper's anchor values (internal/tech/anchors.go) and prints
// both a fit report and ready-to-paste Go literals for internal/tech.
//
// Usage:
//
//	calibrate [-node 90nm|45nm|32nm|22nm]
//
// Without -node, all four technology nodes are fitted.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ntvsim/ntvsim/internal/tech"
)

func main() {
	node := flag.String("node", "", "fit a single node (90nm, 45nm, 32nm, 22nm); default all")
	flag.Parse()

	targets := tech.AllTargets()
	if *node != "" {
		var found []tech.CalibTargets
		for _, t := range targets {
			n, err := tech.ByName(t.NodeName)
			if err != nil {
				continue
			}
			if fmt.Sprintf("%dnm", n.Feature) == *node || t.NodeName == *node {
				found = append(found, t)
			}
		}
		if len(found) == 0 {
			fmt.Fprintf(os.Stderr, "calibrate: unknown node %q\n", *node)
			os.Exit(2)
		}
		targets = found
	}

	for _, t := range targets {
		res := tech.Fit(t)
		fmt.Print(res)
		fmt.Printf("  Go literal:\n")
		fmt.Printf("    Dev: device.Params{Vth0: %.6f, N: %.6f, Kd: %.6e, DIBL: <keep>, IleakK: <keep>},\n",
			res.Dev.Vth0, res.Dev.N, res.Dev.Kd)
		fmt.Printf("    Var: device.Variation{SigmaVthWID: %.6f, SigmaVthD2D: %.6f, SigmaMulWID: %.6f, SigmaMulD2D: %.6f},\n\n",
			res.Var.SigmaVthWID, res.Var.SigmaVthD2D, res.Var.SigmaMulWID, res.Var.SigmaMulD2D)
	}
}
