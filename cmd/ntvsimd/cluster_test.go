package main

// Daemon-level tests of the v1 surface redesign and cluster mode: the
// GET /v1 index generated from the route table, the cluster_disabled
// and deprecated_parameter golden envelopes, kernels pagination parity,
// and an end-to-end coordinator-role daemon driven by real workers —
// including a coordinator restart resuming from the shard journal.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/ntvsim/ntvsim/internal/cluster"
	"github.com/ntvsim/ntvsim/internal/jobs"
	"github.com/ntvsim/ntvsim/internal/sweep"
)

// testPoll keeps test workers responsive without busy-waiting.
var testPoll = jobs.Backoff{Base: 2 * time.Millisecond, Max: 25 * time.Millisecond, Seed: 0xd41}

// tinyClusterSpec mirrors the internal cluster suite's 6-shard spec so
// daemon-level byte-identity uses the same serial reference.
func tinyClusterSpec() sweep.Spec {
	return sweep.Spec{
		Metric:  "chain3sigma",
		Nodes:   []string{"90nm GP", "22nm PTM HP"},
		Vdd:     &sweep.VddAxis{From: 0.50, To: 0.60, Step: 0.05},
		Samples: []int{200},
		Seed:    4242,
	}
}

// newCoordinatorServer boots an in-process coordinator-role server on a
// fresh (or given) data dir.
func newCoordinatorServer(t *testing.T, dataDir string) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServerWith(serverConfig{
		workers: 2, queueDepth: 16, cacheSize: 32,
		dataDir: dataDir, role: "coordinator", leaseTTL: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() {
		ts.Close()
		s.close()
	})
	return s, ts
}

// TestIndexCoversEveryRoute pins the anti-drift property of GET /v1:
// every route in the server's registration table resolves on the mux,
// and every /v1 path appears in the served index with methods and a
// since revision.
func TestIndexCoversEveryRoute(t *testing.T) {
	s, ts := newTestServer(t)

	// Every table row must actually be registered: the mux resolves the
	// concrete method+path to a non-404 handler.
	for _, rt := range s.routes {
		path := strings.NewReplacer("{id}", "x").Replace(rt.pattern)
		req := httptest.NewRequest(rt.method, path, nil)
		if _, pattern := s.mux.Handler(req); pattern == "" {
			t.Errorf("route %s %s from the table is not registered on the mux", rt.method, rt.pattern)
		}
	}

	code, out := doJSON(t, http.MethodGet, ts.URL+"/v1", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /v1: status %d", code)
	}
	if out["service"] != "ntvsimd" || out["role"] != "standalone" {
		t.Errorf("index identity: service=%v role=%v", out["service"], out["role"])
	}
	if v, _ := out["api_version"].(float64); int(v) != apiVersion {
		t.Errorf("api_version = %v, want %d", out["api_version"], apiVersion)
	}
	if v, _ := out["cluster_protocol_version"].(float64); int(v) != cluster.ProtocolVersion {
		t.Errorf("cluster_protocol_version = %v, want %d", out["cluster_protocol_version"], cluster.ProtocolVersion)
	}

	routes, _ := out["routes"].([]any)
	indexed := map[string]map[string]any{}
	for _, item := range routes {
		obj, _ := item.(map[string]any)
		path, _ := obj["path"].(string)
		indexed[path] = obj
	}
	for _, rt := range s.routes {
		obj := indexed[rt.pattern]
		if obj == nil {
			t.Errorf("registered route %s missing from the GET /v1 index", rt.pattern)
			continue
		}
		methods, _ := obj["methods"].([]any)
		found := false
		for _, m := range methods {
			if m == rt.method {
				found = true
			}
		}
		if !found {
			t.Errorf("index entry for %s lacks method %s: %v", rt.pattern, rt.method, methods)
		}
		if since, _ := obj["since"].(float64); since < 1 || int(since) > apiVersion {
			t.Errorf("index entry for %s has since=%v", rt.pattern, obj["since"])
		}
	}
	// And nothing is indexed that was never registered.
	table := map[string]bool{}
	for _, rt := range s.routes {
		table[rt.pattern] = true
	}
	for path := range indexed {
		if !table[path] {
			t.Errorf("index lists %s, which is not in the registration table", path)
		}
	}
}

// TestClusterDisabledGolden pins the exact envelope bytes of the
// cluster routes on a standalone server — part of the stable error-code
// catalogue.
func TestClusterDisabledGolden(t *testing.T) {
	_, ts := newTestServer(t)
	const want = "{\n  \"error\": {\n    \"code\": \"cluster_disabled\",\n    \"message\": \"cluster mode disabled; start ntvsimd with -role coordinator (and -data-dir) to serve shards\"\n  }\n}\n"
	code, body := getBody(t, ts.URL+"/v1/cluster")
	if code != http.StatusNotFound {
		t.Fatalf("GET /v1/cluster on standalone: status %d, want 404", code)
	}
	if body != want {
		t.Errorf("cluster_disabled envelope drifted:\ngot:  %q\nwant: %q", body, want)
	}
	for _, path := range []string{"/v1/cluster/lease", "/v1/cluster/heartbeat", "/v1/cluster/complete"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound || string(b) != want {
			t.Errorf("POST %s on standalone: status %d body %q", path, resp.StatusCode, b)
		}
	}
}

// TestDeprecatedParameterGolden pins the exact envelope bytes of the
// retired experiments format=ids parameter.
func TestDeprecatedParameterGolden(t *testing.T) {
	_, ts := newTestServer(t)
	const want = "{\n  \"error\": {\n    \"code\": \"deprecated_parameter\",\n    \"message\": \"format=ids was deprecated in v1 revision 4 and retired in revision 9; the default listing carries id fields\"\n  }\n}\n"
	code, body := getBody(t, ts.URL+"/v1/experiments?format=ids")
	if code != http.StatusBadRequest {
		t.Fatalf("format=ids: status %d, want 400", code)
	}
	if body != want {
		t.Errorf("deprecated_parameter envelope drifted:\ngot:  %q\nwant: %q", body, want)
	}
}

// TestKernelsPagination pins the limit/offset/total envelope parity of
// GET /v1/kernels with the other listings.
func TestKernelsPagination(t *testing.T) {
	_, ts := newTestServer(t)
	code, out := doJSON(t, http.MethodGet, ts.URL+"/v1/kernels", nil)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	all, _ := out["kernels"].([]any)
	total, _ := out["total"].(float64)
	if int(total) != len(all) || len(all) == 0 {
		t.Fatalf("unpaginated listing: %d kernels, total %v", len(all), out["total"])
	}
	if lim, _ := out["limit"].(float64); int(lim) != defaultJobListLimit {
		t.Errorf("default limit = %v, want %d", out["limit"], defaultJobListLimit)
	}

	code, out = doJSON(t, http.MethodGet, ts.URL+"/v1/kernels?limit=2&offset=1", nil)
	if code != http.StatusOK {
		t.Fatalf("paginated: status %d", code)
	}
	pg, _ := out["kernels"].([]any)
	if len(pg) != 2 {
		t.Fatalf("limit=2 returned %d kernels", len(pg))
	}
	if tot, _ := out["total"].(float64); tot != total {
		t.Errorf("paginated total %v != unpaginated %v", tot, total)
	}
	// Registry order is the pagination order: page [1,3) is the
	// unpaginated listing's second and third entries.
	for i, item := range pg {
		want, _ := all[i+1].(map[string]any)
		got, _ := item.(map[string]any)
		if got["id"] != want["id"] {
			t.Errorf("page entry %d = %v, want %v", i, got["id"], want["id"])
		}
	}

	if code, out = doJSON(t, http.MethodGet, ts.URL+"/v1/kernels?limit=0", nil); code != http.StatusBadRequest || errCode(out) != "invalid_query" {
		t.Errorf("limit=0: status %d code %q, want 400 invalid_query", code, errCode(out))
	}
	if code, out = doJSON(t, http.MethodGet, ts.URL+"/v1/kernels?state=done", nil); code != http.StatusBadRequest || errCode(out) != "invalid_query" {
		t.Errorf("state filter: status %d code %q, want 400 invalid_query", code, errCode(out))
	}
}

// TestCoordinatorDaemonEndToEnd drives a coordinator-role server purely
// over HTTP: a sweep POSTed to the redesigned surface fans out to two
// real workers and merges byte-identical to the serial run, with worker
// attribution in the sweep payload and the run-ledger record.
func TestCoordinatorDaemonEndToEnd(t *testing.T) {
	serial, err := sweep.RunSerial(context.Background(), tinyClusterSpec())
	if err != nil {
		t.Fatal(err)
	}

	s, ts := newCoordinatorServer(t, t.TempDir())
	if s.cluster == nil {
		t.Fatal("coordinator role left s.cluster nil")
	}

	code, out := doJSON(t, http.MethodGet, ts.URL+"/v1", nil)
	if code != http.StatusOK || out["role"] != "coordinator" {
		t.Fatalf("GET /v1 on coordinator: %d %v", code, out["role"])
	}

	wctx, stop := context.WithCancel(context.Background())
	defer stop()
	for _, id := range []string{"wa", "wb"} {
		w := &cluster.Worker{Coordinator: ts.URL, ID: id, MaxShards: 2, Poll: testPoll}
		go w.Run(wctx)
	}

	code, out = doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", tinyClusterSpec())
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps: status %d (%v)", code, out)
	}
	id, _ := out["id"].(string)

	deadline := time.Now().Add(2 * time.Minute)
	for {
		code, out = doJSON(t, http.MethodGet, ts.URL+"/v1/sweeps/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("GET sweep: status %d", code)
		}
		if state, _ := out["state"].(string); state == "done" {
			break
		} else if state == "failed" || state == "cancelled" {
			t.Fatalf("sweep finished as %s: %v", state, out["error"])
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never finished: %v", out)
		}
		time.Sleep(10 * time.Millisecond)
	}

	res, _ := out["result"].(map[string]any)
	if res == nil {
		t.Fatal("done sweep has no result payload")
	}
	if render, _ := res["render"].(string); render != serial.Render() {
		t.Fatal("coordinator-daemon merge is not byte-identical to sweep.RunSerial")
	}
	shards, _ := out["shards"].([]any)
	if len(shards) != 6 {
		t.Fatalf("sweep payload lists %d shards, want 6", len(shards))
	}
	for _, item := range shards {
		sh, _ := item.(map[string]any)
		if w, _ := sh["worker"].(string); w != "wa" && w != "wb" {
			t.Errorf("shard %v attributed to %q, want wa or wb", sh["index"], w)
		}
	}

	// Coordinator status over the public surface.
	code, out = doJSON(t, http.MethodGet, ts.URL+"/v1/cluster", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/cluster: status %d", code)
	}
	if v, _ := out["protocol_version"].(float64); int(v) != cluster.ProtocolVersion {
		t.Errorf("status protocol_version = %v", out["protocol_version"])
	}
	if q, _ := out["queued"].(float64); q != 0 {
		t.Errorf("done sweep left %v shards queued", out["queued"])
	}

	// The run ledger attributes the sweep to both workers.
	deadline = time.Now().Add(15 * time.Second)
	for {
		code, out = doJSON(t, http.MethodGet, ts.URL+"/v1/runs/"+id, nil)
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run record for sweep %s never appeared", id)
		}
		time.Sleep(10 * time.Millisecond)
	}
	workers, _ := out["workers"].([]any)
	if len(workers) == 0 {
		t.Fatalf("run record has no worker attribution: %v", out["workers"])
	}
	for _, w := range workers {
		if w != "wa" && w != "wb" {
			t.Errorf("run record attributes foreign worker %v", w)
		}
	}
}

// TestCoordinatorDaemonRestartReplay kills a coordinator-role server
// mid-sweep and boots a fresh one on the same data dir: the journal
// resumes the sweep, workers finish the remainder, and the merge is
// byte-identical to the serial run.
func TestCoordinatorDaemonRestartReplay(t *testing.T) {
	serial, err := sweep.RunSerial(context.Background(), tinyClusterSpec())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// Life 1: submit the sweep, let one worker upload at least one shard
	// result, then kill the daemon. No t.Cleanup registration here — this
	// life is closed by hand mid-test.
	s1, err := newServerWith(serverConfig{
		workers: 2, queueDepth: 16, cacheSize: 32,
		dataDir: dir, role: "coordinator", leaseTTL: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.handler())
	code, out := doJSON(t, http.MethodPost, ts1.URL+"/v1/sweeps", tinyClusterSpec())
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps: status %d (%v)", code, out)
	}
	id, _ := out["id"].(string)

	w1ctx, stopW1 := context.WithCancel(context.Background())
	go (&cluster.Worker{Coordinator: ts1.URL, ID: "early", MaxShards: 1, Poll: testPoll}).Run(w1ctx)
	deadline := time.Now().Add(60 * time.Second)
	for {
		snap := s1.cluster.Status()
		if snap.JournalEntries >= 2 { // sweep intent + at least one shard result
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no shard result reached the journal before the crash")
		}
		time.Sleep(5 * time.Millisecond)
	}
	stopW1()
	ts1.Close()
	s1.close() // seals the journal — the in-memory sweep state dies with the process

	// Life 2: replay resumes the sweep; fresh workers finish it.
	s2, ts2 := newCoordinatorServer(t, dir)
	if _, ok := s2.sweeps.Get(id); !ok {
		t.Fatalf("journal replay did not restore sweep %s", id)
	}
	wctx, stop := context.WithCancel(context.Background())
	defer stop()
	for _, wid := range []string{"late1", "late2"} {
		go (&cluster.Worker{Coordinator: ts2.URL, ID: wid, MaxShards: 2, Poll: testPoll}).Run(wctx)
	}
	deadline = time.Now().Add(2 * time.Minute)
	for {
		code, out = doJSON(t, http.MethodGet, ts2.URL+"/v1/sweeps/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("GET replayed sweep: status %d", code)
		}
		if state, _ := out["state"].(string); state == "done" {
			break
		} else if state == "failed" || state == "cancelled" {
			t.Fatalf("replayed sweep finished as %s: %v", state, out["error"])
		}
		if time.Now().After(deadline) {
			t.Fatalf("replayed sweep never finished: %v", out)
		}
		time.Sleep(10 * time.Millisecond)
	}
	res, _ := out["result"].(map[string]any)
	if res == nil {
		t.Fatal("replayed sweep has no result payload")
	}
	if render, _ := res["render"].(string); render != serial.Render() {
		t.Fatal("post-restart merge is not byte-identical to sweep.RunSerial")
	}
	restored := 0
	shards, _ := out["shards"].([]any)
	for _, item := range shards {
		sh, _ := item.(map[string]any)
		if r, _ := sh["restored"].(bool); r {
			restored++
		}
	}
	if restored == 0 {
		t.Error("no shard marked restored: the journal contributed nothing")
	}

	// The resumed sweep still lands in the run ledger (the recorder is
	// re-attached on boot).
	deadline = time.Now().Add(15 * time.Second)
	for {
		code, rec := doJSON(t, http.MethodGet, ts2.URL+"/v1/runs/"+id, nil)
		if code == http.StatusOK {
			if rec["state"] != "done" {
				t.Fatalf("resumed sweep recorded as %v", rec["state"])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("resumed sweep never reached the run ledger")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClusterSubmitValidation: a coordinator still rejects invalid
// sweeps with the same typed codes as a standalone server — validation
// happens before the journal write.
func TestClusterSubmitValidation(t *testing.T) {
	s, ts := newCoordinatorServer(t, t.TempDir())
	entries := s.cluster.Status().JournalEntries
	code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", map[string]any{"metric": "no-such-kernel"})
	if code != http.StatusBadRequest || errCode(out) != "invalid_sweep" {
		t.Fatalf("bad metric: status %d code %q", code, errCode(out))
	}
	code, out = doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", map[string]any{
		"metric": "yield_is", "mode": "ssta",
		"nodes": []string{"90nm GP"}, "vdd": map[string]any{"from": 0.5, "to": 0.5, "step": 0.05},
	})
	if code != http.StatusBadRequest || errCode(out) != "mode_unsupported" {
		t.Fatalf("IS + ssta: status %d code %q", code, errCode(out))
	}
	if got := s.cluster.Status().JournalEntries; got != entries {
		t.Errorf("rejected sweeps reached the journal: %d entries, was %d", got, entries)
	}
}

// TestWorkerFlagPath exercises the worker construction used by main:
// defaults resolve and the worker exits on context cancel even with no
// coordinator to talk to.
func TestWorkerFlagPath(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	w := &cluster.Worker{Coordinator: "http://127.0.0.1:1", MaxShards: 2, Poll: testPoll}
	errc := make(chan error, 1)
	go func() { errc <- w.Run(ctx) }()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("worker exited %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit on cancel")
	}
}

// TestServerRoleValidation pins newServerWith's role checks: a
// coordinator without a data dir and an unknown role both fail fast.
func TestServerRoleValidation(t *testing.T) {
	if _, err := newServerWith(serverConfig{workers: 1, queueDepth: 4, cacheSize: 8, role: "coordinator"}); err == nil || !strings.Contains(err.Error(), "data-dir") {
		t.Fatalf("coordinator without -data-dir: err=%v", err)
	}
	if _, err := newServerWith(serverConfig{workers: 1, queueDepth: 4, cacheSize: 8, role: "observer"}); err == nil || !strings.Contains(err.Error(), "unknown role") {
		t.Fatalf("unknown role: err=%v", err)
	}
}

// TestCoordinatorDrainingPolicy: a draining coordinator grants no new
// leases but still renews heartbeats and accepts completions — workers
// finish what they hold, nothing new starts, every upload is journaled.
func TestCoordinatorDrainingPolicy(t *testing.T) {
	s, ts := newCoordinatorServer(t, t.TempDir())
	if code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", tinyClusterSpec()); code != http.StatusAccepted && code != http.StatusCreated && code != http.StatusOK {
		t.Fatalf("submit sweep: status %d (%v)", code, out)
	}

	post := func(path string, in, out any) int {
		t.Helper()
		body, err := json.Marshal(in)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode
	}
	lease := func(worker string) []cluster.Grant {
		t.Helper()
		var lr cluster.LeaseResponse
		if code := post("/v1/cluster/lease", cluster.LeaseRequest{
			WorkerID: worker, ProtocolVersion: cluster.ProtocolVersion, MaxShards: 1,
		}, &lr); code != http.StatusOK {
			t.Fatalf("lease: status %d", code)
		}
		return lr.Leases
	}

	// The dispatcher offers shards asynchronously; poll until w1 holds one.
	var held cluster.Grant
	deadline := time.Now().Add(10 * time.Second)
	for {
		if grants := lease("w1"); len(grants) > 0 {
			held = grants[0]
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no lease granted within 10s")
		}
		time.Sleep(time.Millisecond)
	}

	s.beginDrain()
	if grants := lease("w2"); len(grants) != 0 {
		t.Fatalf("draining coordinator granted %d leases", len(grants))
	}
	var hb cluster.HeartbeatResponse
	if code := post("/v1/cluster/heartbeat", cluster.HeartbeatRequest{
		WorkerID: "w1", LeaseIDs: []string{held.LeaseID},
	}, &hb); code != http.StatusOK || len(hb.Renewed) != 1 {
		t.Fatalf("heartbeat while draining: status %d renewed %v", code, hb.Renewed)
	}
	sr, retries, err := sweep.EvalShard(context.Background(), held.Spec, held.Point)
	if err != nil {
		t.Fatal(err)
	}
	var cr cluster.CompleteResponse
	if code := post("/v1/cluster/complete", cluster.CompleteRequest{
		WorkerID: "w1", LeaseID: held.LeaseID, Result: sr, Retries: retries,
	}, &cr); code != http.StatusOK || !cr.OK {
		t.Fatalf("complete while draining: status %d ok=%v", code, cr.OK)
	}
}

// TestNewLogger covers the flag-to-logger table main builds on boot.
func TestNewLogger(t *testing.T) {
	for _, level := range []string{"debug", "info", "warn", "error"} {
		for _, format := range []string{"text", "json"} {
			if lg, err := newLogger(format, level); err != nil || lg == nil {
				t.Fatalf("newLogger(%q, %q): %v", format, level, err)
			}
		}
	}
	if _, err := newLogger("text", "loud"); err == nil {
		t.Fatal("unknown level accepted")
	}
	if _, err := newLogger("yaml", "info"); err == nil {
		t.Fatal("unknown format accepted")
	}
}
