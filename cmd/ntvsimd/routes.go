package main

// Route table and the machine-readable surface index. Every mux
// registration lives in routeTable — the single source the server
// registers handlers from AND generates GET /v1 from, so the index can
// never drift from the real surface (a test walks the table and
// requires both to agree).

import (
	"expvar"
	"net/http"

	"github.com/ntvsim/ntvsim/internal/buildinfo"
	"github.com/ntvsim/ntvsim/internal/cluster"
)

// apiVersion is the current revision of the v1 surface: the PR
// numbering of CHANGES.md, which docs/API.md's since-markers reference.
const apiVersion = 9

// route is one mux registration plus the surface metadata GET /v1
// serves for it.
type route struct {
	method  string
	pattern string
	since   int    // apiVersion revision that introduced the route
	note    string // surfaced verbatim in the index (gating, caveats)
	h       http.HandlerFunc
}

// routeTable is the complete public surface. Cluster routes are always
// registered — on a non-coordinator they answer with the typed
// cluster_disabled envelope, mirroring how ledger routes behave without
// -data-dir — so the index is identical across roles and clients can
// discover the full protocol everywhere.
func (s *server) routeTable() []route {
	return []route{
		{"GET", "/healthz", 1, "", s.handleHealthz},
		{"GET", "/v1", 9, "", s.handleIndex},
		{"GET", "/v1/experiments", 1, "", s.handleExperiments},
		{"GET", "/v1/kernels", 6, "", s.handleKernels},
		{"POST", "/v1/jobs", 1, "", s.handleSubmit},
		{"GET", "/v1/jobs", 1, "", s.handleListJobs},
		{"GET", "/v1/jobs/{id}", 1, "", s.handleGetJob},
		{"POST", "/v1/jobs/{id}/cancel", 1, "", s.handleCancel},
		{"GET", "/v1/jobs/{id}/progress", 2, "", s.handleProgress},
		{"GET", "/v1/jobs/{id}/events", 2, "", s.handleEvents},
		{"POST", "/v1/sweeps", 4, "", s.handleSubmitSweep},
		{"GET", "/v1/sweeps", 4, "", s.handleListSweeps},
		{"GET", "/v1/sweeps/{id}", 4, "", s.handleGetSweep},
		{"POST", "/v1/sweeps/{id}/cancel", 4, "", s.handleCancelSweep},
		{"GET", "/v1/sweeps/{id}/events", 4, "", s.handleSweepEvents},
		{"GET", "/v1/runs", 7, "requires -data-dir", s.handleListRuns},
		{"GET", "/v1/runs/{id}", 7, "requires -data-dir", s.handleGetRun},
		{"GET", "/v1/cluster", 9, "requires -role coordinator", s.handleClusterStatus},
		{"POST", "/v1/cluster/lease", 9, "requires -role coordinator", s.handleClusterLease},
		{"POST", "/v1/cluster/heartbeat", 9, "requires -role coordinator", s.handleClusterHeartbeat},
		{"POST", "/v1/cluster/complete", 9, "requires -role coordinator", s.handleClusterComplete},
		{"GET", "/debug/trace/{id}", 2, "", s.handleTrace},
		{"GET", "/metrics", 2, "", s.handleMetrics},
		{"GET", "/metrics/expvar", 2, "", func(w http.ResponseWriter, r *http.Request) {
			expvar.Handler().ServeHTTP(w, r)
		}},
	}
}

// routeInfo is one entry of the GET /v1 route catalogue: the same path
// may appear once with several methods.
type routeInfo struct {
	Path    string   `json:"path"`
	Methods []string `json:"methods"`
	Since   int      `json:"since"` // api_version revision that introduced it
	Note    string   `json:"note,omitempty"`
}

// indexPayload is the typed GET /v1 response: service identity, role,
// protocol revisions, and the generated route catalogue.
type indexPayload struct {
	Service         string      `json:"service"`
	Version         string      `json:"version"`
	APIVersion      int         `json:"api_version"`
	Role            string      `json:"role"`
	ClusterProtocol int         `json:"cluster_protocol_version"`
	Routes          []routeInfo `json:"routes"`
}

// handleIndex serves the machine-readable surface index, generated from
// the same table the mux was registered from.
func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	byPath := map[string]*routeInfo{}
	var order []string
	for _, rt := range s.routes {
		ri, ok := byPath[rt.pattern]
		if !ok {
			ri = &routeInfo{Path: rt.pattern, Since: rt.since, Note: rt.note}
			byPath[rt.pattern] = ri
			order = append(order, rt.pattern)
		}
		ri.Methods = append(ri.Methods, rt.method)
		if rt.since < ri.Since {
			ri.Since = rt.since
		}
	}
	out := make([]routeInfo, 0, len(order))
	for _, p := range order {
		out = append(out, *byPath[p])
	}
	writeJSON(w, http.StatusOK, indexPayload{
		Service:         "ntvsimd",
		Version:         buildinfo.Read().Version,
		APIVersion:      apiVersion,
		Role:            s.role,
		ClusterProtocol: cluster.ProtocolVersion,
		Routes:          out,
	})
}

// clusterEnabled gates a /v1/cluster/* handler on the coordinator role,
// answering the typed cluster_disabled envelope otherwise (the cluster
// sibling of ledger_disabled).
func (s *server) clusterEnabled(w http.ResponseWriter) bool {
	if s.cluster == nil {
		cluster.WriteError(w, http.StatusNotFound, cluster.CodeClusterDisabled,
			"cluster mode disabled; start ntvsimd with -role coordinator (and -data-dir) to serve shards")
		return false
	}
	return true
}

func (s *server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	if !s.clusterEnabled(w) {
		return
	}
	s.cluster.HandleStatus(w, r)
}

// handleClusterLease grants shard leases. A draining coordinator grants
// nothing — workers keep polling and finish what they hold, while the
// journal keeps every uploaded result for the next boot.
func (s *server) handleClusterLease(w http.ResponseWriter, r *http.Request) {
	if !s.clusterEnabled(w) {
		return
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusOK, cluster.LeaseResponse{Leases: []cluster.Grant{}})
		return
	}
	s.cluster.HandleLease(w, r)
}

func (s *server) handleClusterHeartbeat(w http.ResponseWriter, r *http.Request) {
	if !s.clusterEnabled(w) {
		return
	}
	s.cluster.HandleHeartbeat(w, r)
}

// handleClusterComplete accepts result uploads even while draining:
// a computed shard is valuable and the journal makes it durable.
func (s *server) handleClusterComplete(w http.ResponseWriter, r *http.Request) {
	if !s.clusterEnabled(w) {
		return
	}
	s.cluster.HandleComplete(w, r)
}
