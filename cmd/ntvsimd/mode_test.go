package main

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// sstaSweep is an analytically-answered p99 sweep over the 22nm node's
// near-threshold band.
var sstaSweep = map[string]any{
	"metric":  "p99chipclock",
	"mode":    "ssta",
	"nodes":   []string{"22nm"},
	"vdd":     map[string]any{"from": 0.50, "to": 0.60, "step": 0.05},
	"samples": []int{50},
	"seed":    20120603,
}

// TestSweepSSTAEndToEnd drives an ssta-mode sweep through the v1
// surface: the mode is echoed in the normalized spec, every merged
// point carries the ssta estimator stamp, and the analytic-path
// counters appear on /metrics.
func TestSweepSSTAEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)
	code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", sstaSweep)
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d (%v)", code, out)
	}
	spec, _ := out["spec"].(map[string]any)
	if spec["mode"] != "ssta" {
		t.Fatalf("mode not echoed in normalized spec: %v", spec)
	}

	id, _ := out["id"].(string)
	sw := pollSweepDone(t, ts.URL, id, 2*time.Minute)
	if sw["state"] != "done" {
		t.Fatalf("sweep finished as %v: %v", sw["state"], sw["shards"])
	}
	points, _ := sw["results"].([]any)
	if len(points) != 3 {
		t.Fatalf("%d merged points", len(points))
	}
	for i, item := range points {
		pt, _ := item.(map[string]any)
		if pt["mode"] != "ssta" {
			t.Errorf("point %d mode = %v, want ssta", i, pt["mode"])
		}
		// p99 chip clock in FO4 at deep NTV: tens of FO4.
		if v, _ := pt["value"].(float64); v < 10 || v > 500 {
			t.Errorf("point %d value %v FO4 implausible", i, pt["value"])
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"ntvsim_ssta_evals_total",
		"ntvsim_ssta_law_builds_total",
		"ntvsim_auto_mc_refined_total",
	} {
		if !strings.Contains(string(b), want) {
			t.Errorf("metric %s missing from /metrics", want)
		}
	}
}

// TestSweepModeUnsupportedEnvelope pins the typed rejection for the
// estimator knob on kernels without an analytic law.
func TestSweepModeUnsupportedEnvelope(t *testing.T) {
	_, ts := newTestServer(t)
	for _, body := range []map[string]any{
		{"metric": "yield_is", "mode": "ssta"},
		{"metric": "p99chipclock_is", "mode": "ssta"},
		{"metric": "tailyield", "sampler": "is", "mode": "auto", "auto_threshold": 100},
	} {
		code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", body)
		if code != http.StatusBadRequest || errCode(out) != "mode_unsupported" {
			t.Errorf("POST %v: %d %v, want 400 mode_unsupported", body, code, out)
		}
	}
	// Garden-variety validation failures keep the generic envelope.
	code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", map[string]any{
		"metric": "chain3sigma", "mode": "bogus",
	})
	if code != http.StatusBadRequest || errCode(out) != "invalid_sweep" {
		t.Errorf("bogus mode: %d %v, want 400 invalid_sweep", code, out)
	}
}

// TestKernelModesPayload: GET /v1/kernels advertises which estimators
// each kernel supports, so clients can gate the mode knob without
// probing for rejections.
func TestKernelModesPayload(t *testing.T) {
	_, ts := newTestServer(t)
	code, out := doJSON(t, http.MethodGet, ts.URL+"/v1/kernels", nil)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	objs, _ := out["kernels"].([]any)
	modesOf := func(id string) []string {
		for _, item := range objs {
			obj, _ := item.(map[string]any)
			if obj["id"] != id {
				continue
			}
			raw, _ := obj["modes"].([]any)
			var modes []string
			for _, m := range raw {
				s, _ := m.(string)
				modes = append(modes, s)
			}
			return modes
		}
		t.Fatalf("kernel %q missing", id)
		return nil
	}
	for _, id := range []string{"chain3sigma", "gate3sigma", "p99chipclock", "tailyield"} {
		if got := strings.Join(modesOf(id), ","); got != "mc,ssta,auto" {
			t.Errorf("%s modes = %q, want mc,ssta,auto", id, got)
		}
	}
	for _, id := range []string{"p99chipclock_is", "yield_is"} {
		if got := strings.Join(modesOf(id), ","); got != "mc" {
			t.Errorf("%s modes = %q, want mc", id, got)
		}
	}
}

// TestRunLedgerModeRecord: sweep run records carry the requested
// estimator mode, and auto-mode records count how many grid points the
// decision band refined with Monte-Carlo shards.
func TestRunLedgerModeRecord(t *testing.T) {
	_, ts := newLedgerServer(t, t.TempDir())

	// The 22nm analytic p99 values are ≈79.1/72.3/68.1 FO4 across this
	// band; a ±4 % band around 72.3 refines exactly the middle point.
	code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", map[string]any{
		"metric":         "p99chipclock",
		"mode":           "auto",
		"auto_threshold": 72.3,
		"auto_band":      0.04,
		"nodes":          []string{"22nm"},
		"vdd":            map[string]any{"from": 0.50, "to": 0.60, "step": 0.05},
		"samples":        []int{300},
		"seed":           20120603,
	})
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d (%v)", code, out)
	}
	id, _ := out["id"].(string)
	sw := pollSweepDone(t, ts.URL, id, 2*time.Minute)
	if sw["state"] != "done" {
		t.Fatalf("sweep finished as %v", sw["state"])
	}

	pollRunTotal(t, ts.URL, "?kind=sweep", 1)
	code, rec := doJSON(t, http.MethodGet, ts.URL+"/v1/runs/"+id, nil)
	if code != http.StatusOK {
		t.Fatalf("GET run: status %d", code)
	}
	if rec["mode"] != "auto" {
		t.Errorf("record mode = %v, want auto", rec["mode"])
	}
	if n, _ := rec["refined"].(float64); n != 1 {
		t.Errorf("record refined = %v, want 1", rec["refined"])
	}

	// A pure-ssta sweep records its mode and no refinement count.
	code, out = doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", sstaSweep)
	if code != http.StatusAccepted {
		t.Fatalf("POST ssta: status %d (%v)", code, out)
	}
	id2, _ := out["id"].(string)
	if sw := pollSweepDone(t, ts.URL, id2, 2*time.Minute); sw["state"] != "done" {
		t.Fatalf("ssta sweep finished as %v", sw["state"])
	}
	pollRunTotal(t, ts.URL, "?kind=sweep", 2)
	code, rec = doJSON(t, http.MethodGet, ts.URL+"/v1/runs/"+id2, nil)
	if code != http.StatusOK {
		t.Fatalf("GET ssta run: status %d", code)
	}
	if rec["mode"] != "ssta" {
		t.Errorf("ssta record mode = %v", rec["mode"])
	}
	if _, present := rec["refined"]; present {
		t.Errorf("ssta record carries refined = %v", rec["refined"])
	}
}
