package main

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"github.com/ntvsim/ntvsim/internal/jobs"
)

// API error codes. Codes are part of the v1 contract: stable snake_case
// identifiers a client can switch on, documented in docs/API.md. The
// human-readable message may change between releases; the code may not.
const (
	codeInvalidBody          = "invalid_body"          // malformed or oversized JSON request body
	codeUnknownExperiment    = "unknown_experiment"    // experiment id not in the registry
	codeInvalidConfig        = "invalid_config"        // config rejected by Normalized
	codeInvalidQuery         = "invalid_query"         // bad query parameter (limit, offset, state, format)
	codeJobNotFound          = "job_not_found"         // no job with that id
	codeJobNotCancellable    = "job_not_cancellable"   // job already terminal
	codeQueueFull            = "queue_full"            // worker pool queue at capacity
	codeShuttingDown         = "shutting_down"         // manager closed, no new submissions
	codeTraceNotFound        = "trace_not_found"       // no span tree recorded for that id
	codeJobNotStarted        = "job_not_started"       // trace requested for a still-queued job
	codeRunNotFound          = "run_not_found"         // no ledger record with that run id
	codeLedgerDisabled       = "ledger_disabled"       // run ledger off: daemon started without -data-dir
	codeProfilingDisabled    = "profiling_disabled"    // profile knob without -data-dir
	codeInvalidSweep         = "invalid_sweep"         // sweep spec rejected by Normalized
	codeModeUnsupported      = "mode_unsupported"      // ssta/auto mode on a metric with no analytic law
	codeSweepNotFound        = "sweep_not_found"       // no sweep with that id
	codeSweepNotCancellable  = "sweep_not_cancellable" // sweep already terminal
	codeShardFailed          = "shard_failed"          // sweep failed: shard failures exceeded the budget
	codeStreamingUnsupported = "streaming_unsupported" // transport cannot flush SSE
	codeDeprecatedParameter  = "deprecated_parameter"  // retired query parameter (e.g. experiments format=ids)
	codeInternal             = "internal"              // unexpected server-side failure
)

// apiError is the typed error envelope every non-2xx v1 response wraps
// its diagnosis in: {"error": {"code": "...", "message": "..."}}.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorEnvelope struct {
	Error apiError `json:"error"`
}

// writeAPIError writes the typed error envelope with the given HTTP
// status, stable code and human-readable message.
func writeAPIError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, errorEnvelope{Error: apiError{Code: code, Message: message}})
}

// writeAPIErrorf is writeAPIError with a formatted message.
func writeAPIErrorf(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeAPIError(w, status, code, fmt.Sprintf(format, args...))
}

// healthPayload is the typed GET /healthz response. Status is the
// server's lifecycle state: "ok" while serving, "draining" between the
// shutdown signal and exit (in-flight jobs finishing, submissions
// rejected with shutting_down). OK is true only in the "ok" state, so
// readiness probes keying on either field agree.
type healthPayload struct {
	OK          bool   `json:"ok"`
	Status      string `json:"status"`
	Experiments int    `json:"experiments"` // registered experiment count
	Workers     int    `json:"workers"`     // worker-pool size
	QueueDepth  int    `json:"queue_depth"` // jobs waiting for a worker
	JobsRunning int    `json:"jobs_running"`
}

// jobListPayload is the typed GET /v1/jobs response: one page of the
// newest-first job listing plus the pre-pagination total.
type jobListPayload struct {
	Jobs   []jobPayload `json:"jobs"`
	Total  int          `json:"total"` // jobs matching the filter, before limit/offset
	Limit  int          `json:"limit"`
	Offset int          `json:"offset"`
}

// defaultJobListLimit is the GET /v1/jobs page size when limit is
// omitted; maxJobListLimit caps an explicit one.
const (
	defaultJobListLimit = 50
	maxJobListLimit     = 1000
)

// listQuery is the parsed pagination/filter query of a listing
// endpoint.
type listQuery struct {
	state  jobs.State // "" = all
	limit  int
	offset int
}

// parseListQuery parses and validates state/limit/offset. An error has
// already been written to w when ok is false.
func parseListQuery(w http.ResponseWriter, r *http.Request) (listQuery, bool) {
	q := listQuery{limit: defaultJobListLimit}
	vals := r.URL.Query()
	if s := vals.Get("state"); s != "" {
		switch st := jobs.State(s); st {
		case jobs.Queued, jobs.Running, jobs.Done, jobs.Failed, jobs.Cancelled:
			q.state = st
		default:
			writeAPIErrorf(w, http.StatusBadRequest, codeInvalidQuery,
				"unknown state %q (one of queued, running, done, failed, cancelled)", s)
			return listQuery{}, false
		}
	}
	if s := vals.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			writeAPIErrorf(w, http.StatusBadRequest, codeInvalidQuery, "limit %q must be a positive integer", s)
			return listQuery{}, false
		}
		q.limit = min(n, maxJobListLimit)
	}
	if s := vals.Get("offset"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			writeAPIErrorf(w, http.StatusBadRequest, codeInvalidQuery, "offset %q must be a non-negative integer", s)
			return listQuery{}, false
		}
		q.offset = n
	}
	return q, true
}

// sortJobsNewestFirst orders snapshots by creation time descending,
// breaking ties by id so pagination is deterministic.
func sortJobsNewestFirst(snaps []jobs.Snapshot) {
	sort.Slice(snaps, func(i, j int) bool {
		if !snaps[i].Created.Equal(snaps[j].Created) {
			return snaps[i].Created.After(snaps[j].Created)
		}
		return snaps[i].ID < snaps[j].ID
	})
}

// page slices out [offset, offset+limit) of a filtered listing.
func page[T any](items []T, q listQuery) []T {
	if q.offset >= len(items) {
		return []T{}
	}
	items = items[q.offset:]
	if len(items) > q.limit {
		items = items[:q.limit]
	}
	return items
}
