package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ntvsim/ntvsim/internal/buildinfo"
	"github.com/ntvsim/ntvsim/internal/cluster"
	"github.com/ntvsim/ntvsim/internal/experiments"
	"github.com/ntvsim/ntvsim/internal/jobs"
	"github.com/ntvsim/ntvsim/internal/ledger"
	"github.com/ntvsim/ntvsim/internal/montecarlo"
	"github.com/ntvsim/ntvsim/internal/resultcache"
	"github.com/ntvsim/ntvsim/internal/sweep"
	"github.com/ntvsim/ntvsim/internal/telemetry"
)

// Service-wide expvar metrics, exposed verbatim at GET /metrics/expvar.
// They are process-global (expvar names are a single namespace), so
// multiple server instances — e.g. in tests — share and accumulate into
// them.
var (
	evJobsStarted   = expvar.NewInt("ntvsimd_jobs_started")
	evJobsCompleted = expvar.NewInt("ntvsimd_jobs_completed")
	evJobsFailed    = expvar.NewInt("ntvsimd_jobs_failed")
	evJobsCancelled = expvar.NewInt("ntvsimd_jobs_cancelled")
	evCacheHits     = expvar.NewInt("ntvsimd_cache_hits")
	evCacheMisses   = expvar.NewInt("ntvsimd_cache_misses")
	evExpRuns       = expvar.NewMap("ntvsimd_experiment_runs")
	evExpSeconds    = expvar.NewMap("ntvsimd_experiment_seconds")
)

// active points at the most recently constructed server; the
// process-global gauges below (expvar and Prometheus names are single
// namespaces) read live queue/cache state through it, so rebuilding the
// server — tests do — transparently repoints them.
var active atomic.Pointer[server]

// expDurationBuckets spans HTTP-fast cache hits through multi-minute
// full-depth experiment sweeps.
var expDurationBuckets = []float64{0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}

// Prometheus metric families with static instruments (labelled series
// created on first use). Gauges reading per-server state are registered
// in init below.
var (
	promExpRuns = telemetry.Default.CounterVec("ntvsimd_experiment_runs_total",
		"Completed experiment runs by experiment id.", "experiment")
	promExpDuration = telemetry.Default.HistogramVec("ntvsimd_experiment_duration_seconds",
		"Wall-clock duration of completed experiment runs.", expDurationBuckets, "experiment")
	promHTTPRequests = telemetry.Default.CounterVec("ntvsimd_http_requests_total",
		"HTTP requests served, by method and status code.", "method", "code")
	promHTTPDuration = telemetry.Default.Histogram("ntvsimd_http_request_duration_seconds",
		"HTTP request latency.", telemetry.DefBuckets)
)

// promBuildInfo is the ntvsim_build_info gauge: always 1, with the
// binary's provenance in its labels so dashboards can join metrics to
// the exact source revision serving them.
var promBuildInfo = telemetry.Default.GaugeVec("ntvsim_build_info",
	"Build provenance of the running binary (value is always 1).",
	"version", "go", "revision")

func init() {
	telemetry.RegisterRuntimeMetrics()
	bi := buildinfo.Read()
	promBuildInfo.With(bi.Version, bi.Go, bi.Revision).Set(1)

	// Gauge for the shared Monte-Carlo engine: total sample evaluations
	// across every experiment run in this process. (The Prometheus twin,
	// ntvsim_mc_samples_evaluated_total, is registered by montecarlo.)
	expvar.Publish("ntvsimd_mc_samples_evaluated", expvar.Func(func() any {
		return montecarlo.SamplesEvaluated()
	}))
	expvar.Publish("ntvsimd_jobs_queue_depth", expvar.Func(func() any {
		if s := active.Load(); s != nil {
			return s.jobs.QueueDepth()
		}
		return 0
	}))
	expvar.Publish("ntvsimd_jobs_running", expvar.Func(func() any {
		if s := active.Load(); s != nil {
			return s.jobs.Running()
		}
		return 0
	}))
	expvar.Publish("ntvsimd_cache_evictions", expvar.Func(func() any {
		if s := active.Load(); s != nil {
			return s.cache.Evictions()
		}
		return 0
	}))

	gauge := func(name, help string, fn func(s *server) float64) {
		telemetry.Default.GaugeFunc(name, help, func() float64 {
			if s := active.Load(); s != nil {
				return fn(s)
			}
			return 0
		})
	}
	counter := func(name, help string, fn func(s *server) float64) {
		telemetry.Default.CounterFunc(name, help, func() float64 {
			if s := active.Load(); s != nil {
				return fn(s)
			}
			return 0
		})
	}
	gauge("ntvsimd_jobs_queue_depth", "Submitted jobs waiting for a worker.",
		func(s *server) float64 { return float64(s.jobs.QueueDepth()) })
	gauge("ntvsimd_jobs_running", "Jobs currently executing (busy workers).",
		func(s *server) float64 { return float64(s.jobs.Running()) })
	gauge("ntvsimd_jobs_workers", "Size of the experiment worker pool.",
		func(s *server) float64 { return float64(s.workers) })
	counter("ntvsimd_jobs_started_total", "Jobs that left the queue and started executing.",
		func(s *server) float64 { return float64(s.jobs.Counters().Started) })
	counter("ntvsimd_jobs_completed_total", "Jobs that finished successfully.",
		func(s *server) float64 { return float64(s.jobs.Counters().Completed) })
	counter("ntvsimd_jobs_failed_total", "Jobs that finished with an error.",
		func(s *server) float64 { return float64(s.jobs.Counters().Failed) })
	counter("ntvsimd_jobs_cancelled_total", "Jobs cancelled while queued or running.",
		func(s *server) float64 { return float64(s.jobs.Counters().Cancelled) })
	counter("ntvsimd_cache_hits_total", "Result-cache lookups served without recomputation.",
		func(s *server) float64 { h, _ := s.cache.Stats(); return float64(h) })
	counter("ntvsimd_cache_misses_total", "Result-cache lookups that required a run.",
		func(s *server) float64 { _, m := s.cache.Stats(); return float64(m) })
	counter("ntvsimd_cache_evictions_total", "Result-cache entries pushed out by the LRU bound.",
		func(s *server) float64 { return float64(s.cache.Evictions()) })
	counter("ntvsim_job_panics_total", "Job Funcs that panicked and were recovered by the worker pool.",
		func(s *server) float64 { return float64(s.jobs.Counters().Panics) })
	counter("ntvsim_job_retries_total", "Transient job-attempt failures re-run with backoff.",
		func(s *server) float64 { return float64(s.jobs.Counters().Retries) })
	gauge("ntvsim_jobs_draining", "Jobs still in flight during graceful drain (0 while serving).",
		func(s *server) float64 {
			if s.draining.Load() {
				return float64(s.jobs.Pending())
			}
			return 0
		})
	gauge("ntvsimd_cache_hit_ratio", "hits/(hits+misses) of the result cache since start.",
		func(s *server) float64 { return s.cache.HitRatio() })
	gauge("ntvsimd_cache_entries", "Entries currently held by the result cache.",
		func(s *server) float64 { return float64(s.cache.Len()) })
}

// server wires the experiments registry, the job manager, the sweep
// engine, the result cache, the trace buffer and the run ledger behind
// an HTTP mux.
type server struct {
	jobs    *jobs.Manager
	sweeps  *sweep.Engine
	cache   *resultcache.Cache[experiments.Result]
	traces  *telemetry.TraceStore
	ledger  *ledger.Ledger // nil without -data-dir: recording disabled
	cluster *cluster.Coordinator
	role    string // standalone | coordinator
	log     *slog.Logger
	workers int
	mux     *http.ServeMux
	routes  []route // the registered surface, served by GET /v1

	// profileJobs captures CPU+heap profiles for every job (the
	// -profile-jobs flag); individual submissions opt in via the
	// `profile` knob. Either way profiling needs the ledger's data dir.
	profileJobs bool

	// metaMu guards the job-provenance rendezvous between handleSubmit
	// (which learns the spec/hash/seed) and the jobs observer (which
	// learns the outcome); see registerJobMeta/observeJob in runs.go.
	metaMu      sync.Mutex
	jobMeta     map[string]*jobMeta
	pendingJobs map[string]jobs.Snapshot
	profilePath map[string][]string

	// base is the parent context of every job and sweep; tests thread a
	// faults.Injector through it.
	base context.Context
	// draining flips once at the start of graceful shutdown: submissions
	// are rejected with shutting_down and /healthz reports "draining".
	draining atomic.Bool
}

// serverConfig collects the daemon's construction knobs. The zero value
// of the optional fields means: default trace buffer, no ledger, no
// profiling, discarded logs.
type serverConfig struct {
	workers     int
	queueDepth  int
	cacheSize   int
	traceBuffer int    // trace-ring capacity; 0 means defaultTraceBuffer
	dataDir     string // run-ledger directory; "" disables the ledger
	profileJobs bool   // capture CPU+heap profiles for every job
	role        string // standalone (default) or coordinator
	leaseTTL    time.Duration
	logger      *slog.Logger
}

// defaultTraceBuffer is the trace-ring capacity without -trace-buffer.
const defaultTraceBuffer = 256

// newServer builds a server with no ledger and default trace buffer —
// the pre-data-dir construction signature, kept for the many test call
// sites. It cannot fail: only opening a data dir can.
func newServer(workers, queueDepth, cacheSize int, logger *slog.Logger) *server {
	s, err := newServerWith(serverConfig{
		workers: workers, queueDepth: queueDepth, cacheSize: cacheSize, logger: logger,
	})
	if err != nil { // unreachable without a dataDir
		panic(err)
	}
	return s
}

func newServerWith(cfg serverConfig) (*server, error) {
	logger := cfg.logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.traceBuffer <= 0 {
		cfg.traceBuffer = defaultTraceBuffer
	}
	var led *ledger.Ledger
	if cfg.dataDir != "" {
		var err error
		if led, err = ledger.Open(cfg.dataDir); err != nil {
			return nil, err
		}
	}
	s := &server{
		jobs:        jobs.NewManager(cfg.workers, cfg.queueDepth),
		cache:       resultcache.New[experiments.Result](cfg.cacheSize),
		traces:      telemetry.NewTraceStore(cfg.traceBuffer),
		ledger:      led,
		log:         logger,
		workers:     cfg.workers,
		profileJobs: cfg.profileJobs,
		mux:         http.NewServeMux(),
		base:        context.Background(),
	}
	s.sweeps = sweep.NewEngine(s.jobs, s.cache, s.traces)
	if s.ledger != nil {
		// The observer fires once per finalized job, outside the manager
		// lock; with the ledger disabled it is never installed, keeping
		// the nil path allocation-free.
		s.jobMeta = make(map[string]*jobMeta)
		s.pendingJobs = make(map[string]jobs.Snapshot)
		s.profilePath = make(map[string][]string)
		s.jobs.SetObserver(s.observeJob)
	}
	switch cfg.role {
	case "", "standalone":
		s.role = "standalone"
	case "coordinator":
		s.role = "coordinator"
		if cfg.dataDir == "" {
			s.jobs.Close()
			return nil, errors.New("coordinator role needs -data-dir for the shard journal")
		}
		co, err := cluster.New(cluster.Config{
			DataDir:  cfg.dataDir,
			LeaseTTL: cfg.leaseTTL,
			Log:      logger,
		})
		if err != nil {
			s.jobs.Close()
			s.ledger.Close()
			return nil, err
		}
		s.cluster = co
		s.sweeps.SetRemote(co)
		resumed, err := co.Replay(s.base, s.sweeps)
		if err != nil {
			s.close()
			return nil, err
		}
		if resumed > 0 {
			logger.Info("cluster journal replayed", "resumed_sweeps", resumed)
		}
		// Sweeps resumed mid-flight still owe the run ledger their
		// terminal record; re-attach the recorder the original boot lost.
		if s.ledger != nil {
			for _, snap := range s.sweeps.List() {
				if snap.State == sweep.Running {
					if sw, ok := s.sweeps.Get(snap.ID); ok {
						go s.recordSweep(sw)
					}
				}
			}
		}
	default:
		s.jobs.Close()
		return nil, errors.New("unknown role " + strconv.Quote(cfg.role) + " (one of standalone, coordinator, worker)")
	}
	s.routes = s.routeTable()
	for _, rt := range s.routes {
		s.mux.HandleFunc(rt.method+" "+rt.pattern, rt.h)
	}
	active.Store(s)
	return s, nil
}

// close drains the worker pool, shuts the cluster coordinator (sealing
// the shard journal) and closes the run ledger; used by main on
// shutdown and by tests.
func (s *server) close() {
	s.jobs.Close()
	if s.cluster != nil {
		if err := s.cluster.Close(); err != nil {
			s.log.Warn("cluster close failed", "error", err.Error())
		}
	}
	if err := s.ledger.Close(); err != nil {
		s.log.Warn("ledger close failed", "error", err.Error())
	}
}

// beginDrain flips the server into the draining state: /healthz reports
// "draining" and new job/sweep submissions are rejected with a typed
// shutting_down envelope. In-flight work is untouched — drain finishes
// it.
func (s *server) beginDrain() { s.draining.Store(true) }

// drain stops the worker pool and waits for in-flight jobs to finish;
// when ctx (the -drain-timeout budget) ends first, the remaining jobs
// are cancelled and drain still waits for the workers to observe it.
func (s *server) drain(ctx context.Context) error {
	s.beginDrain()
	return s.jobs.Drain(ctx)
}

// handler wraps the route mux with structured request logging and the
// HTTP request metrics.
func (s *server) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		s.mux.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		promHTTPRequests.With(r.Method, strconv.Itoa(rec.status)).Inc()
		promHTTPDuration.Observe(elapsed.Seconds())
		s.log.Info("http request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"duration_ms", float64(elapsed)/float64(time.Millisecond),
			"remote", r.RemoteAddr)
	})
}

// statusRecorder captures the response status for logging and metrics
// while passing Flush through so SSE streaming keeps working.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// handleMetrics serves the telemetry registry in Prometheus text
// exposition format. The legacy expvar JSON dump stays available at
// /metrics/expvar (and /debug/vars on the debug listener).
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = telemetry.Default.WritePrometheus(w)
}

// debugMux serves net/http/pprof and the raw expvar dump on a separate
// listener so profiling endpoints never share a port with the public
// API.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// submitRequest is the POST /v1/jobs body. Config follows the
// zero-means-default contract of experiments.Config; Quick fills zero
// fields from the reduced regression configuration instead.
// TimeoutSec bounds the job's whole lifetime (queue wait included);
// MaxRetries re-runs transiently-failed attempts. Both default to off.
// Profile captures CPU and heap pprof profiles of this run next to the
// run ledger (requires -data-dir; see docs/OBSERVABILITY.md).
type submitRequest struct {
	Experiment string             `json:"experiment"`
	Config     experiments.Config `json:"config"`
	Quick      bool               `json:"quick"`
	TimeoutSec float64            `json:"timeout_seconds,omitempty"`
	MaxRetries int                `json:"max_retries,omitempty"`
	Profile    bool               `json:"profile,omitempty"`
}

// jobKey is the content-addressed cache identity of a run: experiment id
// plus fully normalized configuration.
type jobKey struct {
	ID     string             `json:"id"`
	Config experiments.Config `json:"config"`
}

// resultPayload is the wire form of a finished experiment.
type resultPayload struct {
	ID     string `json:"id"`
	Render string `json:"render"`
	Data   any    `json:"data,omitempty"` // structured payload when the result implements JSONer
}

// progressPayload is the wire form of a job's live progress
// (GET /v1/jobs/{id}/progress and the SSE progress events).
type progressPayload struct {
	ID       string     `json:"id,omitempty"`
	State    jobs.State `json:"state"`
	Done     int64      `json:"done"`
	Total    int64      `json:"total"`
	Fraction float64    `json:"fraction"`
	Phase    string     `json:"phase,omitempty"`
}

func progressOf(snap jobs.Snapshot) progressPayload {
	p := snap.Progress
	return progressPayload{
		ID:       snap.ID,
		State:    snap.State,
		Done:     p.Done,
		Total:    p.Total,
		Fraction: p.Fraction(),
		Phase:    p.Phase,
	}
}

// jobPayload is the wire form of a job (POST and GET responses).
// Attempts exceeds 1 only after transient-failure retries; Stack is the
// captured goroutine stack of a recovered panic (single-job GET only —
// listings elide it alongside Result).
type jobPayload struct {
	ID         string           `json:"id,omitempty"`
	Experiment string           `json:"experiment"`
	State      jobs.State       `json:"state"`
	Cached     bool             `json:"cached"`
	Error      string           `json:"error,omitempty"`
	Stack      string           `json:"stack,omitempty"`
	Attempts   int              `json:"attempts,omitempty"`
	CreatedAt  *time.Time       `json:"created_at,omitempty"`
	StartedAt  *time.Time       `json:"started_at,omitempty"`
	FinishedAt *time.Time       `json:"finished_at,omitempty"`
	Progress   *progressPayload `json:"progress,omitempty"`
	Result     *resultPayload   `json:"result,omitempty"`
}

func renderResult(res experiments.Result) *resultPayload {
	p := &resultPayload{ID: res.ID(), Render: res.Render()}
	if j, ok := res.(experiments.JSONer); ok {
		p.Data = j.JSON()
	}
	return p
}

func snapshotPayload(s jobs.Snapshot) jobPayload {
	p := jobPayload{
		ID:         s.ID,
		Experiment: s.Name,
		State:      s.State,
		Error:      s.Error,
		Stack:      s.Stack,
		Attempts:   s.Attempts,
	}
	for _, ts := range []struct {
		t   time.Time
		dst **time.Time
	}{{s.Created, &p.CreatedAt}, {s.Started, &p.StartedAt}, {s.Finished, &p.FinishedAt}} {
		if !ts.t.IsZero() {
			t := ts.t
			*ts.dst = &t
		}
	}
	if s.State == jobs.Running || s.Progress.Total > 0 {
		prog := progressOf(s)
		prog.ID = "" // redundant inside the job payload
		p.Progress = &prog
	}
	if res, ok := s.Value.(experiments.Result); ok && s.State == jobs.Done {
		p.Result = renderResult(res)
	}
	return p
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, healthPayload{
		OK:          status == "ok",
		Status:      status,
		Experiments: len(experiments.IDs()),
		Workers:     s.workers,
		QueueDepth:  s.jobs.QueueDepth(),
		JobsRunning: s.jobs.Running(),
	})
}

// handleExperiments lists the registry as typed objects. The pre-v1
// bare-id listing under ?format=ids, deprecated since revision 4, is
// retired as of revision 9: it now answers a typed deprecated_parameter
// envelope (see docs/API.md deprecation policy).
func (s *server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	switch format := r.URL.Query().Get("format"); format {
	case "":
		writeJSON(w, http.StatusOK, map[string]any{"experiments": experiments.List()})
	case "ids":
		writeAPIError(w, http.StatusBadRequest, codeDeprecatedParameter,
			"format=ids was deprecated in v1 revision 4 and retired in revision 9; the default listing carries id fields")
	default:
		writeAPIErrorf(w, http.StatusBadRequest, codeInvalidQuery,
			"unknown format %q (omit the parameter for the typed listing)", format)
	}
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeAPIError(w, http.StatusServiceUnavailable, codeShuttingDown,
			"server is draining; not accepting new jobs")
		return
	}
	var req submitRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeAPIErrorf(w, http.StatusBadRequest, codeInvalidBody, "invalid JSON body: %v", err)
		return
	}
	if req.TimeoutSec < 0 {
		writeAPIErrorf(w, http.StatusBadRequest, codeInvalidBody,
			"timeout_seconds %g must not be negative", req.TimeoutSec)
		return
	}
	if req.MaxRetries < 0 {
		writeAPIErrorf(w, http.StatusBadRequest, codeInvalidBody,
			"max_retries %d must not be negative", req.MaxRetries)
		return
	}
	if req.Experiment == "" {
		writeAPIError(w, http.StatusBadRequest, codeInvalidBody, "missing \"experiment\" field")
		return
	}
	if req.Profile && s.ledger == nil {
		writeAPIError(w, http.StatusBadRequest, codeProfilingDisabled,
			"per-job profiling needs a profile directory; start ntvsimd with -data-dir")
		return
	}
	if !knownExperiment(req.Experiment) {
		writeAPIErrorf(w, http.StatusBadRequest, codeUnknownExperiment,
			"unknown experiment %q (GET /v1/experiments lists valid ids)", req.Experiment)
		return
	}
	cfg := req.Config
	if req.Quick {
		cfg = fillQuick(cfg)
	}
	cfg, err := cfg.Normalized()
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, codeInvalidConfig, err.Error())
		return
	}

	key := resultcache.Key(jobKey{ID: req.Experiment, Config: cfg})
	if res, ok := s.cache.Get(key); ok {
		evCacheHits.Add(1)
		s.log.Info("job served from cache", "experiment", req.Experiment)
		writeJSON(w, http.StatusOK, jobPayload{
			Experiment: req.Experiment,
			State:      jobs.Done,
			Cached:     true,
			Result:     renderResult(res),
		})
		return
	}
	evCacheMisses.Add(1)

	opts := jobs.SubmitOpts{Parent: s.base, MaxRetries: req.MaxRetries}
	if req.TimeoutSec > 0 {
		opts.Deadline = time.Now().Add(time.Duration(req.TimeoutSec * float64(time.Second)))
	}
	profile := req.Profile || (s.profileJobs && s.ledger != nil)
	id, err := s.jobs.SubmitWith(req.Experiment, s.runJob(req.Experiment, cfg, key, profile), opts)
	if err != nil {
		status, code := http.StatusInternalServerError, codeInternal
		switch {
		case errors.Is(err, jobs.ErrQueueFull):
			status, code = http.StatusServiceUnavailable, codeQueueFull
		case errors.Is(err, jobs.ErrClosed):
			status, code = http.StatusServiceUnavailable, codeShuttingDown
		}
		s.log.Warn("job submit rejected", "experiment", req.Experiment, "error", err.Error())
		writeAPIError(w, status, code, err.Error())
		return
	}
	evJobsStarted.Add(1)
	s.registerJobMeta(id, jobMeta{experiment: req.Experiment, config: cfg, specHash: key})
	s.log.Info("job submitted", "job", id, "experiment", req.Experiment,
		"queue_depth", s.jobs.QueueDepth())
	writeJSON(w, http.StatusAccepted, jobPayload{
		ID:         id,
		Experiment: req.Experiment,
		State:      jobs.Queued,
	})
}

// runJob builds the worker-pool closure for one experiment run: execute
// under the job's context with a fresh trace, optionally under CPU/heap
// profiling, record per-experiment latency, and populate the result
// cache on success.
func (s *server) runJob(expID string, cfg experiments.Config, key string, profile bool) jobs.Func {
	return func(ctx context.Context) (any, error) {
		jobID := jobs.ContextID(ctx)
		ctx, trace := s.traces.Start(ctx, jobID)
		finishProfiles := func() {}
		if profile {
			finishProfiles = s.beginJobProfiles(jobID)
		}
		start := time.Now()
		res, err := experiments.RunCtx(ctx, expID, cfg)
		trace.Finish()
		finishProfiles()
		elapsed := time.Since(start).Seconds()
		logArgs := []any{"job", jobID, "experiment", expID, "seconds", elapsed}
		switch {
		case ctx.Err() != nil:
			evJobsCancelled.Add(1)
			s.log.Info("job cancelled", logArgs...)
		case err != nil:
			evJobsFailed.Add(1)
			s.log.Warn("job failed", append(logArgs, "error", err.Error())...)
		default:
			evJobsCompleted.Add(1)
			evExpRuns.Add(expID, 1)
			evExpSeconds.AddFloat(expID, elapsed)
			promExpRuns.With(expID).Inc()
			promExpDuration.With(expID).Observe(elapsed)
			s.cache.Put(key, res)
			s.log.Info("job done", logArgs...)
		}
		if err != nil {
			return nil, err
		}
		return res, nil
	}
}

// handleListJobs serves one page of the job listing, newest first.
// Query parameters: state= filters by lifecycle state; limit= (default
// 50, max 1000) and offset= (default 0) paginate; total counts the
// filtered set before pagination.
func (s *server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	q, ok := parseListQuery(w, r)
	if !ok {
		return
	}
	snaps := s.jobs.List()
	if q.state != "" {
		kept := snaps[:0]
		for _, snap := range snaps {
			if snap.State == q.state {
				kept = append(kept, snap)
			}
		}
		snaps = kept
	}
	sortJobsNewestFirst(snaps)
	total := len(snaps)
	snaps = page(snaps, q)
	out := make([]jobPayload, 0, len(snaps))
	for _, snap := range snaps {
		p := snapshotPayload(snap)
		p.Result = nil // keep the listing light; fetch one job for its result
		p.Stack = ""   // panic stacks are multi-KB; fetch one job to see one
		out = append(out, p)
	}
	writeJSON(w, http.StatusOK, jobListPayload{Jobs: out, Total: total, Limit: q.limit, Offset: q.offset})
}

func (s *server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeAPIError(w, http.StatusNotFound, codeJobNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, snapshotPayload(snap))
}

// handleProgress serves the live samples-done/samples-total and phase
// of one job.
func (s *server) handleProgress(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeAPIError(w, http.StatusNotFound, codeJobNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, progressOf(snap))
}

// handleTrace dumps the span tree recorded for one job or sweep.
// Traces of running work report in-progress spans with their duration
// so far; traces evicted from the in-memory ring are served from the
// run ledger when one is configured. ?format=chrome renders the tree as
// Chrome trace-event JSON loadable in Perfetto or chrome://tracing.
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var snap telemetry.TraceSnapshot
	if trace, ok := s.traces.Get(id); ok {
		snap = trace.Snapshot()
	} else if rec, ok := s.ledger.Get(id); ok && rec.Trace != nil {
		snap = *rec.Trace
	} else {
		if jsnap, ok := s.jobs.Get(id); ok && jsnap.State == jobs.Queued {
			writeAPIError(w, http.StatusNotFound, codeJobNotStarted,
				"job is still queued; its trace begins when it starts running")
			return
		}
		writeAPIError(w, http.StatusNotFound, codeTraceNotFound,
			"no trace recorded under this id (traces exist once a job or sweep starts running)")
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "":
		writeJSON(w, http.StatusOK, snap)
	case "chrome":
		writeJSON(w, http.StatusOK, snap.Chrome())
	default:
		writeAPIErrorf(w, http.StatusBadRequest, codeInvalidQuery,
			"unknown format %q (omit for the span tree, or \"chrome\")", format)
	}
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.jobs.Get(id); !ok {
		writeAPIError(w, http.StatusNotFound, codeJobNotFound, "no such job")
		return
	}
	was, ok := s.jobs.Cancel(id)
	if !ok {
		snap, _ := s.jobs.Get(id)
		writeAPIErrorf(w, http.StatusConflict, codeJobNotCancellable, "job already %s", snap.State)
		return
	}
	s.log.Info("job cancel requested", "job", id, "was", string(was))
	if was == jobs.Queued {
		// A running job's cancellation is counted when its runJob closure
		// observes ctx and finalizes; a queued job never runs, so count it
		// here — the Cancel call is authoritative about which case this is.
		evJobsCancelled.Add(1)
	}
	snap, _ := s.jobs.Get(id)
	writeJSON(w, http.StatusOK, snapshotPayload(snap))
}

// fillQuick fills zero Config fields from the reduced regression
// configuration (experiments.Quick) instead of the paper defaults.
func fillQuick(c experiments.Config) experiments.Config {
	q := experiments.Quick()
	if c.Seed == 0 {
		c.Seed = q.Seed
	}
	if c.CircuitSamples == 0 {
		c.CircuitSamples = q.CircuitSamples
	}
	if c.ChipSamples == 0 {
		c.ChipSamples = q.ChipSamples
	}
	if c.SearchSamples == 0 {
		c.SearchSamples = q.SearchSamples
	}
	return c
}

func knownExperiment(id string) bool {
	for _, known := range experiments.IDs() {
		if id == known {
			return true
		}
	}
	return false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
