package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"

	"github.com/ntvsim/ntvsim/internal/experiments"
	"github.com/ntvsim/ntvsim/internal/jobs"
	"github.com/ntvsim/ntvsim/internal/montecarlo"
	"github.com/ntvsim/ntvsim/internal/resultcache"
)

// Service-wide expvar metrics, exposed verbatim at GET /metrics. They
// are process-global (expvar names are a single namespace), so multiple
// server instances — e.g. in tests — share and accumulate into them.
var (
	evJobsStarted   = expvar.NewInt("ntvsimd_jobs_started")
	evJobsCompleted = expvar.NewInt("ntvsimd_jobs_completed")
	evJobsFailed    = expvar.NewInt("ntvsimd_jobs_failed")
	evJobsCancelled = expvar.NewInt("ntvsimd_jobs_cancelled")
	evCacheHits     = expvar.NewInt("ntvsimd_cache_hits")
	evCacheMisses   = expvar.NewInt("ntvsimd_cache_misses")
	evExpRuns       = expvar.NewMap("ntvsimd_experiment_runs")
	evExpSeconds    = expvar.NewMap("ntvsimd_experiment_seconds")
)

func init() {
	// Gauge for the shared Monte-Carlo engine: total sample evaluations
	// across every experiment run in this process.
	expvar.Publish("ntvsimd_mc_samples_evaluated", expvar.Func(func() any {
		return montecarlo.SamplesEvaluated()
	}))
}

// server wires the experiments registry, the job manager and the result
// cache behind an HTTP mux.
type server struct {
	jobs  *jobs.Manager
	cache *resultcache.Cache[experiments.Result]
	mux   *http.ServeMux
}

func newServer(workers, queueDepth, cacheSize int) *server {
	s := &server{
		jobs:  jobs.NewManager(workers, queueDepth),
		cache: resultcache.New[experiments.Result](cacheSize),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	s.mux.Handle("GET /metrics", expvar.Handler())
	return s
}

// close drains the worker pool; used by main on shutdown and by tests.
func (s *server) close() { s.jobs.Close() }

// debugMux serves net/http/pprof and the raw expvar dump on a separate
// listener so profiling endpoints never share a port with the public
// API.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// submitRequest is the POST /v1/jobs body. Config follows the
// zero-means-default contract of experiments.Config; Quick fills zero
// fields from the reduced regression configuration instead.
type submitRequest struct {
	Experiment string             `json:"experiment"`
	Config     experiments.Config `json:"config"`
	Quick      bool               `json:"quick"`
}

// jobKey is the content-addressed cache identity of a run: experiment id
// plus fully normalized configuration.
type jobKey struct {
	ID     string             `json:"id"`
	Config experiments.Config `json:"config"`
}

// resultPayload is the wire form of a finished experiment.
type resultPayload struct {
	ID     string `json:"id"`
	Render string `json:"render"`
	Data   any    `json:"data,omitempty"` // structured payload when the result implements JSONer
}

// jobPayload is the wire form of a job (POST and GET responses).
type jobPayload struct {
	ID         string         `json:"id,omitempty"`
	Experiment string         `json:"experiment"`
	State      jobs.State     `json:"state"`
	Cached     bool           `json:"cached"`
	Error      string         `json:"error,omitempty"`
	CreatedAt  *time.Time     `json:"created_at,omitempty"`
	StartedAt  *time.Time     `json:"started_at,omitempty"`
	FinishedAt *time.Time     `json:"finished_at,omitempty"`
	Result     *resultPayload `json:"result,omitempty"`
}

func renderResult(res experiments.Result) *resultPayload {
	p := &resultPayload{ID: res.ID(), Render: res.Render()}
	if j, ok := res.(experiments.JSONer); ok {
		p.Data = j.JSON()
	}
	return p
}

func snapshotPayload(s jobs.Snapshot) jobPayload {
	p := jobPayload{
		ID:         s.ID,
		Experiment: s.Name,
		State:      s.State,
		Error:      s.Error,
	}
	for _, ts := range []struct {
		t   time.Time
		dst **time.Time
	}{{s.Created, &p.CreatedAt}, {s.Started, &p.StartedAt}, {s.Finished, &p.FinishedAt}} {
		if !ts.t.IsZero() {
			t := ts.t
			*ts.dst = &t
		}
	}
	if res, ok := s.Value.(experiments.Result); ok && s.State == jobs.Done {
		p.Result = renderResult(res)
	}
	return p
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (s *server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"experiments": experiments.IDs()})
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid JSON body: %w", err))
		return
	}
	if req.Experiment == "" {
		writeError(w, http.StatusBadRequest, errors.New("missing \"experiment\" field"))
		return
	}
	if !knownExperiment(req.Experiment) {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown experiment %q (GET /v1/experiments lists valid ids)", req.Experiment))
		return
	}
	cfg := req.Config
	if req.Quick {
		cfg = fillQuick(cfg)
	}
	cfg, err := cfg.Normalized()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}

	key := resultcache.Key(jobKey{ID: req.Experiment, Config: cfg})
	if res, ok := s.cache.Get(key); ok {
		evCacheHits.Add(1)
		writeJSON(w, http.StatusOK, jobPayload{
			Experiment: req.Experiment,
			State:      jobs.Done,
			Cached:     true,
			Result:     renderResult(res),
		})
		return
	}
	evCacheMisses.Add(1)

	id, err := s.jobs.Submit(req.Experiment, s.runJob(req.Experiment, cfg, key))
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, jobs.ErrQueueFull) || errors.Is(err, jobs.ErrClosed) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	evJobsStarted.Add(1)
	writeJSON(w, http.StatusAccepted, jobPayload{
		ID:         id,
		Experiment: req.Experiment,
		State:      jobs.Queued,
	})
}

// runJob builds the worker-pool closure for one experiment run: execute
// under the job's context, record per-experiment latency, and populate
// the result cache on success.
func (s *server) runJob(expID string, cfg experiments.Config, key string) jobs.Func {
	return func(ctx context.Context) (any, error) {
		start := time.Now()
		res, err := experiments.RunCtx(ctx, expID, cfg)
		elapsed := time.Since(start).Seconds()
		switch {
		case ctx.Err() != nil:
			evJobsCancelled.Add(1)
		case err != nil:
			evJobsFailed.Add(1)
		default:
			evJobsCompleted.Add(1)
			evExpRuns.Add(expID, 1)
			evExpSeconds.AddFloat(expID, elapsed)
			s.cache.Put(key, res)
		}
		if err != nil {
			return nil, err
		}
		return res, nil
	}
}

func (s *server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	snaps := s.jobs.List()
	out := make([]jobPayload, 0, len(snaps))
	for _, snap := range snaps {
		p := snapshotPayload(snap)
		p.Result = nil // keep the listing light; fetch one job for its result
		out = append(out, p)
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	writeJSON(w, http.StatusOK, snapshotPayload(snap))
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.jobs.Get(id); !ok {
		writeError(w, http.StatusNotFound, errors.New("no such job"))
		return
	}
	was, ok := s.jobs.Cancel(id)
	if !ok {
		snap, _ := s.jobs.Get(id)
		writeError(w, http.StatusConflict, fmt.Errorf("job already %s", snap.State))
		return
	}
	if was == jobs.Queued {
		// A running job's cancellation is counted when its runJob closure
		// observes ctx and finalizes; a queued job never runs, so count it
		// here — the Cancel call is authoritative about which case this is.
		evJobsCancelled.Add(1)
	}
	snap, _ := s.jobs.Get(id)
	writeJSON(w, http.StatusOK, snapshotPayload(snap))
}

// fillQuick fills zero Config fields from the reduced regression
// configuration (experiments.Quick) instead of the paper defaults.
func fillQuick(c experiments.Config) experiments.Config {
	q := experiments.Quick()
	if c.Seed == 0 {
		c.Seed = q.Seed
	}
	if c.CircuitSamples == 0 {
		c.CircuitSamples = q.CircuitSamples
	}
	if c.ChipSamples == 0 {
		c.ChipSamples = q.ChipSamples
	}
	if c.SearchSamples == 0 {
		c.SearchSamples = q.SearchSamples
	}
	return c
}

func knownExperiment(id string) bool {
	for _, known := range experiments.IDs() {
		if id == known {
			return true
		}
	}
	return false
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
