package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// errCode extracts the stable code from a decoded error envelope.
func errCode(out map[string]any) string {
	env, _ := out["error"].(map[string]any)
	code, _ := env["code"].(string)
	return code
}

// getBody fetches a URL and returns the status and raw body.
func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestErrorEnvelopeGolden pins the exact serialized envelope: stable
// code, human message, nothing else. These bytes are the v1 contract.
func TestErrorEnvelopeGolden(t *testing.T) {
	_, ts := newTestServer(t)

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantBody   string
	}{
		{
			name: "job not found", method: http.MethodGet, path: "/v1/jobs/deadbeef",
			wantStatus: http.StatusNotFound,
			wantBody: `{
  "error": {
    "code": "job_not_found",
    "message": "no such job"
  }
}
`,
		},
		{
			name: "sweep not found", method: http.MethodGet, path: "/v1/sweeps/deadbeef",
			wantStatus: http.StatusNotFound,
			wantBody: `{
  "error": {
    "code": "sweep_not_found",
    "message": "no such sweep"
  }
}
`,
		},
		{
			name: "trace not found", method: http.MethodGet, path: "/debug/trace/deadbeef",
			wantStatus: http.StatusNotFound,
			wantBody: `{
  "error": {
    "code": "trace_not_found",
    "message": "no trace recorded under this id (traces exist once a job or sweep starts running)"
  }
}
`,
		},
		{
			name: "invalid body", method: http.MethodPost, path: "/v1/jobs", body: "{not json",
			wantStatus: http.StatusBadRequest,
			wantBody: `{
  "error": {
    "code": "invalid_body",
    "message": "invalid JSON body: invalid character 'n' looking for beginning of object key string"
  }
}
`,
		},
		{
			name: "invalid sweep body", method: http.MethodPost, path: "/v1/sweeps", body: "[]",
			wantStatus: http.StatusBadRequest,
			wantBody: `{
  "error": {
    "code": "invalid_body",
    "message": "invalid JSON body: json: cannot unmarshal array into Go value of type sweep.Spec"
  }
}
`,
		},
		{
			name: "invalid query", method: http.MethodGet, path: "/v1/jobs?state=sleeping",
			wantStatus: http.StatusBadRequest,
			wantBody: `{
  "error": {
    "code": "invalid_query",
    "message": "unknown state \"sleeping\" (one of queued, running, done, failed, cancelled)"
  }
}
`,
		},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.wantStatus)
		}
		if got := string(b); got != tc.wantBody {
			t.Errorf("%s: body\n%s\nwant\n%s", tc.name, got, tc.wantBody)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: content-type %q", tc.name, ct)
		}
	}
}

// TestJobListPagination submits instant jobs directly to the manager
// (no Monte-Carlo work) and exercises state filtering, limit/offset and
// the deterministic newest-first order over HTTP.
func TestJobListPagination(t *testing.T) {
	s, ts := newTestServer(t)

	instant := func(ctx context.Context) (any, error) { return nil, nil }
	failing := func(ctx context.Context) (any, error) { return nil, fmt.Errorf("boom") }
	var ids []string
	for i := 0; i < 5; i++ {
		fn := instant
		if i == 4 {
			fn = failing
		}
		id, err := s.jobs.Submit(fmt.Sprintf("synthetic-%d", i), fn)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
		time.Sleep(2 * time.Millisecond) // distinct creation times for a stable order
	}
	// Wait for all jobs to finish.
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, out := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs?state=done", nil)
		if code != http.StatusOK {
			t.Fatalf("list: status %d", code)
		}
		if total, _ := out["total"].(float64); total == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("synthetic jobs never finished: %v", out)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Unfiltered: all five jobs, defaults echoed back.
	code, out := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", nil)
	if code != http.StatusOK {
		t.Fatalf("list: status %d", code)
	}
	if out["total"].(float64) != 5 || out["limit"].(float64) != 50 || out["offset"].(float64) != 0 {
		t.Errorf("unfiltered listing meta: total=%v limit=%v offset=%v", out["total"], out["limit"], out["offset"])
	}
	jobsOf := func(out map[string]any) []string {
		list, _ := out["jobs"].([]any)
		var got []string
		for _, item := range list {
			j, _ := item.(map[string]any)
			id, _ := j["id"].(string)
			got = append(got, id)
		}
		return got
	}
	all := jobsOf(out)
	if len(all) != 5 {
		t.Fatalf("unfiltered page has %d jobs", len(all))
	}
	// Newest first: submission order reversed.
	for i, id := range all {
		if want := ids[len(ids)-1-i]; id != want {
			t.Errorf("position %d: %s, want %s", i, id, want)
		}
	}

	// Pages tile the full listing without overlap.
	_, p1 := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs?limit=2", nil)
	_, p2 := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs?limit=2&offset=2", nil)
	_, p3 := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs?limit=2&offset=4", nil)
	var paged []string
	paged = append(paged, jobsOf(p1)...)
	paged = append(paged, jobsOf(p2)...)
	paged = append(paged, jobsOf(p3)...)
	if len(paged) != 5 {
		t.Fatalf("pages tile to %d jobs: %v", len(paged), paged)
	}
	for i := range paged {
		if paged[i] != all[i] {
			t.Errorf("paged[%d] = %s, full[%d] = %s", i, paged[i], i, all[i])
		}
	}

	// Offset past the end is an empty page, not an error.
	code, out = doJSON(t, http.MethodGet, ts.URL+"/v1/jobs?offset=99", nil)
	if code != http.StatusOK || len(jobsOf(out)) != 0 || out["total"].(float64) != 5 {
		t.Errorf("past-the-end page: %d %v", code, out)
	}

	// State filter: exactly one failed job.
	code, out = doJSON(t, http.MethodGet, ts.URL+"/v1/jobs?state=failed", nil)
	if code != http.StatusOK {
		t.Fatalf("state filter: status %d", code)
	}
	if got := jobsOf(out); len(got) != 1 || got[0] != ids[4] {
		t.Errorf("failed filter returned %v, want [%s]", got, ids[4])
	}

	// Bad pagination parameters.
	for _, q := range []string{"limit=0", "limit=x", "offset=-1"} {
		if code, out := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs?"+q, nil); code != http.StatusBadRequest || errCode(out) != "invalid_query" {
			t.Errorf("%s: %d %v", q, code, out)
		}
	}
}

func TestHealthzTyped(t *testing.T) {
	_, ts := newTestServer(t)
	code, out := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if out["ok"] != true {
		t.Errorf("ok = %v", out["ok"])
	}
	if n, _ := out["experiments"].(float64); n < 20 {
		t.Errorf("experiments = %v", out["experiments"])
	}
	if n, _ := out["workers"].(float64); n != 2 {
		t.Errorf("workers = %v", out["workers"])
	}
	for _, key := range []string{"queue_depth", "jobs_running"} {
		if _, ok := out[key].(float64); !ok {
			t.Errorf("%s missing from %v", key, out)
		}
	}
}

func TestUnknownExperimentsFormat(t *testing.T) {
	_, ts := newTestServer(t)
	code, out := doJSON(t, http.MethodGet, ts.URL+"/v1/experiments?format=xml", nil)
	if code != http.StatusBadRequest || errCode(out) != "invalid_query" {
		t.Errorf("format=xml: %d %v", code, out)
	}
}
