package main

import (
	"bufio"
	"net/http"
	"strings"
	"testing"
	"time"
)

// tinySweep is a 1 node × 3 voltages × 1 samples = 3-shard metric sweep
// sized for fast end-to-end tests.
var tinySweep = map[string]any{
	"metric":  "chain3sigma",
	"nodes":   []string{"90nm GP"},
	"vdd":     map[string]any{"from": 0.50, "to": 0.60, "step": 0.05},
	"samples": []int{150},
	"seed":    20120603,
}

// pollSweepDone polls GET /v1/sweeps/{id} until the sweep is terminal.
func pollSweepDone(t *testing.T, base, id string, timeout time.Duration) map[string]any {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		code, sw := doJSON(t, http.MethodGet, base+"/v1/sweeps/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("GET sweep: status %d (%v)", code, sw)
		}
		switch sw["state"] {
		case "done", "failed", "cancelled":
			return sw
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("sweep %s not terminal after %v", id, timeout)
	return nil
}

// TestSweepEndToEnd is the HTTP acceptance walkthrough: POST a sweep,
// watch shards complete, read the merged typed result, then resubmit
// the identical spec and require every shard to be a cache hit.
func TestSweepEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)

	code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", tinySweep)
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d (%v)", code, out)
	}
	id, _ := out["id"].(string)
	if id == "" || out["state"] != "running" || out["total"].(float64) != 3 {
		t.Fatalf("POST response %v", out)
	}
	// The normalized spec is echoed back with defaults filled in.
	spec, _ := out["spec"].(map[string]any)
	if spec["metric"] != "chain3sigma" || spec["seed"].(float64) != 20120603 {
		t.Errorf("echoed spec %v", spec)
	}

	sw := pollSweepDone(t, ts.URL, id, 2*time.Minute)
	if sw["state"] != "done" {
		t.Fatalf("sweep finished as %v: %v", sw["state"], sw["shards"])
	}
	if sw["completed"].(float64) != 3 || sw["cached"].(float64) != 0 {
		t.Errorf("completed=%v cached=%v", sw["completed"], sw["cached"])
	}
	shards, _ := sw["shards"].([]any)
	if len(shards) != 3 {
		t.Fatalf("%d shard snapshots", len(shards))
	}
	for _, item := range shards {
		shard, _ := item.(map[string]any)
		if shard["state"] != "done" {
			t.Errorf("shard %v state %v", shard["index"], shard["state"])
		}
	}
	points, _ := sw["results"].([]any)
	if len(points) != 3 {
		t.Fatalf("%d point results", len(points))
	}
	for i, item := range points {
		pt, _ := item.(map[string]any)
		if int(pt["index"].(float64)) != i {
			t.Errorf("point %d has index %v (grid order broken)", i, pt["index"])
		}
		if v, _ := pt["value"].(float64); v <= 0 {
			t.Errorf("point %d value %v", i, pt["value"])
		}
	}
	res, _ := sw["result"].(map[string]any)
	if res == nil || res["id"] != "sweep/chain3sigma" {
		t.Fatalf("merged result payload %v", sw["result"])
	}
	if render, _ := res["render"].(string); !strings.Contains(render, "3 grid points") {
		t.Errorf("merged render %q", render)
	}

	// Identical resubmission: a new sweep whose shards all hit the cache.
	code, out = doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", tinySweep)
	if code != http.StatusAccepted {
		t.Fatalf("repeat POST: status %d (%v)", code, out)
	}
	id2, _ := out["id"].(string)
	if id2 == id {
		t.Fatal("resubmission reused the sweep id")
	}
	sw2 := pollSweepDone(t, ts.URL, id2, 30*time.Second)
	if sw2["state"] != "done" || sw2["cached"].(float64) != 3 {
		t.Fatalf("resubmission not fully cached: state=%v cached=%v", sw2["state"], sw2["cached"])
	}
	res2, _ := sw2["result"].(map[string]any)
	if res2["render"] != res["render"] {
		t.Error("cached rerun renders differently")
	}

	// Both sweeps are listed, newest first, without detail payloads.
	code, out = doJSON(t, http.MethodGet, ts.URL+"/v1/sweeps", nil)
	if code != http.StatusOK || out["total"].(float64) != 2 {
		t.Fatalf("listing: %d %v", code, out)
	}
	listed, _ := out["sweeps"].([]any)
	first, _ := listed[0].(map[string]any)
	if first["id"] != id2 {
		t.Errorf("listing not newest-first: %v", first["id"])
	}
	if first["shards"] != nil || first["results"] != nil {
		t.Error("listing entries should omit shard detail")
	}
}

// TestSweepValidationAndCancel covers the invalid-spec envelope and
// mid-run cancellation over HTTP.
func TestSweepValidationAndCancel(t *testing.T) {
	_, ts := newTestServer(t)

	code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", map[string]any{
		"metric": "chain3sigma", "experiment": "fig4",
	})
	if code != http.StatusBadRequest || errCode(out) != "invalid_sweep" {
		t.Errorf("ambiguous spec: %d %v", code, out)
	}

	// A sweep with one enormous shard, cancelled mid-run.
	code, out = doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", map[string]any{
		"metric":  "chain3sigma",
		"nodes":   []string{"90nm GP"},
		"vdd":     map[string]any{"from": 0.55, "to": 0.55, "step": 0.01},
		"samples": []int{60_000_000},
	})
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d (%v)", code, out)
	}
	id, _ := out["id"].(string)
	time.Sleep(150 * time.Millisecond) // let the shard leave the queue

	start := time.Now()
	code, out = doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps/"+id+"/cancel", nil)
	if code != http.StatusOK {
		t.Fatalf("cancel: status %d (%v)", code, out)
	}
	sw := pollSweepDone(t, ts.URL, id, 30*time.Second)
	if sw["state"] != "cancelled" {
		t.Fatalf("state %v after cancel", sw["state"])
	}
	if waited := time.Since(start); waited > 15*time.Second {
		t.Errorf("cancellation took %v; shard work did not stop", waited)
	}

	// Cancelling a finished sweep is a conflict with a typed code.
	code, out = doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps/"+id+"/cancel", nil)
	if code != http.StatusConflict || errCode(out) != "sweep_not_cancellable" {
		t.Errorf("second cancel: %d %v", code, out)
	}
}

// TestSweepEvents subscribes to the SSE stream of a running sweep and
// expects shard-progress events followed by exactly one done event.
func TestSweepEvents(t *testing.T) {
	_, ts := newTestServer(t)
	code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", tinySweep)
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d (%v)", code, out)
	}
	id, _ := out["id"].(string)

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content-type %q", ct)
	}
	var events []string
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if strings.HasPrefix(line, "event: ") {
			events = append(events, strings.TrimPrefix(line, "event: "))
		}
	}
	if len(events) == 0 || events[len(events)-1] != "done" {
		t.Fatalf("event sequence %v does not end in done", events)
	}
	progress := 0
	for _, e := range events[:len(events)-1] {
		if e != "progress" {
			t.Errorf("unexpected event %q", e)
		}
		progress++
	}
	if progress == 0 {
		t.Error("no progress events before done")
	}

	if code, out := doJSON(t, http.MethodGet, ts.URL+"/v1/sweeps/nope/events", nil); code != http.StatusNotFound || errCode(out) != "sweep_not_found" {
		t.Errorf("events for unknown sweep: %d %v", code, out)
	}
}

// TestSweepISEndToEnd submits an importance-sampling sweep through the
// v1 surface: the sampler knob is normalized onto the twin kernel in
// the echoed spec, and the merged result carries per-point weight
// diagnostics.
func TestSweepISEndToEnd(t *testing.T) {
	_, ts := newTestServer(t)
	code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", map[string]any{
		"metric":     "tailyield",
		"sampler":    "is",
		"tail_sigma": 2,
		"nodes":      []string{"22nm"},
		"vdd":        map[string]any{"from": 0.50, "to": 0.50, "step": 0.05},
		"samples":    []int{2000},
		"seed":       20120603,
	})
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d (%v)", code, out)
	}
	spec, _ := out["spec"].(map[string]any)
	if spec["metric"] != "yield_is" || spec["sampler"] != "is" {
		t.Fatalf("sampler knob not normalized: %v", spec)
	}
	if spec["is_shift"].(float64) != 2 || spec["is_mix"].(float64) != 0.25 {
		t.Errorf("proposal defaults not echoed: %v", spec)
	}

	id, _ := out["id"].(string)
	sw := pollSweepDone(t, ts.URL, id, 2*time.Minute)
	if sw["state"] != "done" {
		t.Fatalf("sweep finished as %v: %v", sw["state"], sw["shards"])
	}
	results, _ := sw["results"].([]any)
	if len(results) != 1 {
		t.Fatalf("%d merged points", len(results))
	}
	point, _ := results[0].(map[string]any)
	diag, _ := point["is"].(map[string]any)
	if diag == nil {
		t.Fatalf("merged point lacks IS diagnostics: %v", point)
	}
	if diag["ess"].(float64) <= 0 || diag["n"].(float64) != 2000 {
		t.Errorf("implausible diagnostics %v", diag)
	}
	// ~22750 ppm at the 2σ target; generous tolerance for a 2000-sample run.
	if v := point["value"].(float64); v < 10000 || v > 40000 {
		t.Errorf("2-sigma tail loss %v ppm implausible", v)
	}

	// Unknown sampler values are rejected with the typed envelope.
	code, out = doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", map[string]any{
		"metric": "tailyield", "sampler": "bogus",
	})
	if code != http.StatusBadRequest {
		t.Fatalf("bad sampler: status %d (%v)", code, out)
	}
}
