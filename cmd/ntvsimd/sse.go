package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// ssePollInterval is how often the event stream samples job state. Low
// enough that a progress bar feels live, high enough that a hundred
// subscribers cost nothing next to the Monte-Carlo work they watch.
const ssePollInterval = 100 * time.Millisecond

// doneEvent is the terminal SSE payload: the job's final state and, for
// failed or cancelled jobs, its error string.
type doneEvent struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Error string `json:"error,omitempty"`
}

// sseStream upgrades the response to a Server-Sent Events stream and
// returns the emit function. An error envelope has already been written
// when ok is false.
func sseStream(w http.ResponseWriter) (emit func(event string, payload any), ok bool) {
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		writeAPIError(w, http.StatusInternalServerError, codeStreamingUnsupported, "streaming unsupported")
		return nil, false
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	return func(event string, payload any) {
		data, err := json.Marshal(payload)
		if err != nil {
			return
		}
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
		flusher.Flush()
	}, true
}

// handleEvents streams one job's lifecycle as Server-Sent Events:
//
//	event: progress   data: progressPayload   (whenever samples-done moves)
//	event: phase      data: {"phase": "..."}  (whenever the phase label changes)
//	event: done       data: doneEvent         (exactly once, then the stream closes)
//
// A terminal job yields an immediate done event. The stream also ends
// when the client disconnects. Progress events are monotonic: done
// counts only ever increase.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.jobs.Get(id); !ok {
		writeAPIError(w, http.StatusNotFound, codeJobNotFound, "no such job")
		return
	}
	emit, ok := sseStream(w)
	if !ok {
		return
	}

	var (
		lastDone  int64 = -1
		lastPhase       = ""
		ticker          = time.NewTicker(ssePollInterval)
	)
	defer ticker.Stop()
	for {
		snap, ok := s.jobs.Get(id)
		if !ok {
			// The job vanished (not expected — jobs are retained); close
			// the stream with a terminal event rather than hanging.
			emit("done", doneEvent{ID: id, State: "unknown"})
			return
		}
		if phase := snap.Progress.Phase; phase != lastPhase {
			lastPhase = phase
			emit("phase", map[string]string{"id": id, "phase": phase})
		}
		if done := snap.Progress.Done; done != lastDone {
			lastDone = done
			emit("progress", progressOf(snap))
		}
		if snap.State.Terminal() {
			emit("done", doneEvent{ID: id, State: string(snap.State), Error: snap.Error})
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}
