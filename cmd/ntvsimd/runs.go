package main

// Run-ledger wiring: this file connects the durable ledger
// (internal/ledger) to the job manager and the sweep engine, captures
// optional per-job pprof profiles, and serves the recorded provenance
// on GET /v1/runs. Everything here is inert when the daemon runs
// without -data-dir: the observer is never installed, recordSweep is
// never spawned, and the handlers answer with a typed ledger_disabled
// envelope.

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync/atomic"

	"github.com/ntvsim/ntvsim/internal/experiments"
	"github.com/ntvsim/ntvsim/internal/importance"
	"github.com/ntvsim/ntvsim/internal/jobs"
	"github.com/ntvsim/ntvsim/internal/ledger"
	"github.com/ntvsim/ntvsim/internal/resultcache"
	"github.com/ntvsim/ntvsim/internal/sweep"
)

// jobMeta is the submit-side provenance of one API job — everything the
// jobs.Snapshot delivered to the observer cannot know.
type jobMeta struct {
	experiment string
	config     experiments.Config
	specHash   string
}

// registerJobMeta records the submit-side provenance for a job the
// observer will eventually report. The job may already have finalized —
// tiny quick runs can finish before SubmitWith returns to the handler —
// in which case the parked snapshot is consumed and recorded now.
func (s *server) registerJobMeta(id string, m jobMeta) {
	if s.ledger == nil {
		return
	}
	s.metaMu.Lock()
	if snap, done := s.pendingJobs[id]; done {
		delete(s.pendingJobs, id)
		s.metaMu.Unlock()
		s.recordJob(snap, m)
		return
	}
	s.jobMeta[id] = &m
	s.metaMu.Unlock()
}

// observeJob is the jobs.Manager observer: called once per finalized
// job, outside the manager lock. Sweep shard jobs are skipped — their
// provenance lands in the owning sweep's record — and a job whose meta
// has not been registered yet is parked for registerJobMeta to finish.
func (s *server) observeJob(snap jobs.Snapshot) {
	if strings.HasPrefix(snap.Name, "sweep:") {
		return
	}
	s.metaMu.Lock()
	m, ok := s.jobMeta[snap.ID]
	if !ok {
		s.pendingJobs[snap.ID] = snap
		s.metaMu.Unlock()
		return
	}
	delete(s.jobMeta, snap.ID)
	s.metaMu.Unlock()
	s.recordJob(snap, *m)
}

// recordJob appends one job's terminal record to the run ledger.
func (s *server) recordJob(snap jobs.Snapshot, m jobMeta) {
	spec, err := json.Marshal(m.config)
	if err != nil {
		spec = nil
	}
	rec := ledger.Record{
		RunID:    snap.ID,
		Kind:     "job",
		Name:     m.experiment,
		SpecHash: m.specHash,
		Spec:     spec,
		Seed:     m.config.Seed,
		State:    string(snap.State),
		Error:    snap.Error,
		Created:  snap.Created,
		Started:  snap.Started,
		Finished: snap.Finished,
		Samples:  snap.Progress.Done,
		Attempts: snap.Attempts,
		Panicked: snap.Stack != "",
		Profiles: s.takeProfilePaths(snap.ID),
	}
	if !snap.Started.IsZero() {
		rec.DurationMS = float64(snap.Finished.Sub(snap.Started).Microseconds()) / 1e3
	}
	if trace, ok := s.traces.Get(snap.ID); ok {
		ts := trace.Snapshot()
		rec.Trace = &ts
	}
	if err := s.ledger.Append(rec); err != nil {
		s.log.Warn("run ledger append failed", "job", snap.ID, "error", err.Error())
	}
}

// recordSweep waits for sw to reach a terminal state, then appends one
// record carrying the whole sweep's provenance — normalized spec and
// its content hash, per-shard states with their derived seeds, merged
// importance-sampling diagnostics, and the sweep-rooted span tree.
func (s *server) recordSweep(sw *sweep.Sweep) {
	<-sw.Done()
	snap := sw.Snapshot()
	spec, err := json.Marshal(snap.Spec)
	if err != nil {
		spec = nil
	}
	rec := ledger.Record{
		RunID:    sw.ID,
		Kind:     "sweep",
		Name:     snap.Spec.Metric,
		SpecHash: resultcache.Key(snap.Spec),
		Spec:     spec,
		Seed:     snap.Spec.Seed,
		State:    string(snap.State),
		Error:    snap.Error,
		Created:  snap.Created,
		Started:  snap.Created, // shards begin dispatching at submission
		Finished: snap.Finished,
		Retries:  snap.Retried,
		Cached:   snap.Cached,
		Mode:     snap.Spec.Mode,
	}
	if snap.Spec.Mode == sweep.ModeAuto {
		// The mode stamp on each merged point records which side of the
		// decision band it fell on; the refined count is the MC side.
		for i := range snap.Results {
			if snap.Results[i].Mode == sweep.ModeMC {
				rec.Refined++
			}
		}
	}
	rec.DurationMS = float64(snap.Finished.Sub(snap.Created).Microseconds()) / 1e3

	// Shard seeds are re-derived from the spec's grid — the same pure
	// derivation the engine used — so the record pins them without any
	// change to the shard wire format.
	points := snap.Spec.Grid()
	rec.Shards = make([]ledger.ShardRecord, 0, len(snap.Shards))
	workers := map[string]bool{}
	for _, sh := range snap.Shards {
		sr := ledger.ShardRecord{
			Index:   sh.Index,
			State:   string(sh.State),
			Cached:  sh.Cached,
			Retries: sh.Retries,
			JobID:   sh.JobID,
			Worker:  sh.Worker,
			Error:   sh.Error,
		}
		if sh.Worker != "" {
			workers[sh.Worker] = true
		}
		if sh.Index < len(points) {
			sr.Seed = points[sh.Index].Seed
		}
		rec.Shards = append(rec.Shards, sr)
		if sh.State == sweep.ShardDone && !sh.Cached && sh.Index < len(points) {
			rec.Samples += int64(points[sh.Index].Samples)
		}
	}
	if len(workers) > 0 {
		rec.Workers = make([]string, 0, len(workers))
		for w := range workers {
			rec.Workers = append(rec.Workers, w)
		}
		sort.Strings(rec.Workers)
	}
	ds := make([]*importance.Diagnostics, 0, len(snap.Results))
	for i := range snap.Results {
		ds = append(ds, snap.Results[i].IS)
	}
	rec.IS = importance.MergeAll(ds...)
	if trace, ok := s.traces.Get(sw.ID); ok {
		ts := trace.Snapshot()
		rec.Trace = &ts
	}
	if err := s.ledger.Append(rec); err != nil {
		s.log.Warn("run ledger append failed", "sweep", sw.ID, "error", err.Error())
	}
}

// cpuProfileActive serializes per-job CPU profiling: pprof can run only
// one CPU profile per process, so a job that finds the slot busy skips
// the CPU profile (and still writes its heap profile).
var cpuProfileActive atomic.Bool

// beginJobProfiles starts profile capture for one job and returns the
// finish func the job closure calls after the run: it stops the CPU
// profile (when this job held the slot) and writes a post-run heap
// profile, then files the captured paths for the job's ledger record.
// Paths are recorded relative to the data dir.
func (s *server) beginJobProfiles(jobID string) (finish func()) {
	dir := filepath.Join(s.ledger.Dir(), "profiles")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.log.Warn("profile dir creation failed", "error", err.Error())
		return func() {}
	}
	var paths []string
	stopCPU := func() {}
	if cpuProfileActive.CompareAndSwap(false, true) {
		rel := filepath.Join("profiles", jobID+".cpu.pprof")
		f, err := os.Create(filepath.Join(s.ledger.Dir(), rel))
		if err == nil {
			if err := pprof.StartCPUProfile(f); err != nil {
				f.Close()
				cpuProfileActive.Store(false)
				s.log.Warn("cpu profile start failed", "job", jobID, "error", err.Error())
			} else {
				stopCPU = func() {
					pprof.StopCPUProfile()
					f.Close()
					cpuProfileActive.Store(false)
					paths = append(paths, rel)
				}
			}
		} else {
			cpuProfileActive.Store(false)
			s.log.Warn("cpu profile create failed", "job", jobID, "error", err.Error())
		}
	} else {
		s.log.Info("cpu profile slot busy; capturing heap only", "job", jobID)
	}
	return func() {
		stopCPU()
		rel := filepath.Join("profiles", jobID+".heap.pprof")
		f, err := os.Create(filepath.Join(s.ledger.Dir(), rel))
		if err != nil {
			s.log.Warn("heap profile create failed", "job", jobID, "error", err.Error())
		} else {
			runtime.GC() // get up-to-date live-object statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				s.log.Warn("heap profile write failed", "job", jobID, "error", err.Error())
			} else {
				paths = append(paths, rel)
			}
			f.Close()
		}
		if len(paths) > 0 {
			s.metaMu.Lock()
			s.profilePath[jobID] = paths
			s.metaMu.Unlock()
		}
	}
}

// takeProfilePaths consumes the profile paths captured for a job.
func (s *server) takeProfilePaths(jobID string) []string {
	s.metaMu.Lock()
	defer s.metaMu.Unlock()
	paths := s.profilePath[jobID]
	delete(s.profilePath, jobID)
	return paths
}

// runListPayload is the typed GET /v1/runs response: one page of the
// newest-first run listing plus the pre-pagination total. Listing
// entries elide the resolved spec, per-shard detail and the span tree;
// GET /v1/runs/{id} returns the complete record.
type runListPayload struct {
	Runs   []ledger.Record `json:"runs"`
	Total  int             `json:"total"`
	Limit  int             `json:"limit"`
	Offset int             `json:"offset"`
}

// handleListRuns serves one page of the run ledger, newest first.
// Query parameters: kind= (job|sweep), state= (done|failed|cancelled),
// experiment= (experiment or kernel id), limit=, offset=.
func (s *server) handleListRuns(w http.ResponseWriter, r *http.Request) {
	if s.ledger == nil {
		writeAPIError(w, http.StatusNotFound, codeLedgerDisabled,
			"run ledger disabled; start ntvsimd with -data-dir to record runs")
		return
	}
	q, ok := parseListQuery(w, r)
	if !ok {
		return
	}
	lq := ledger.Query{State: string(q.state), Name: r.URL.Query().Get("experiment")}
	switch kind := r.URL.Query().Get("kind"); kind {
	case "", "job", "sweep":
		lq.Kind = kind
	default:
		writeAPIErrorf(w, http.StatusBadRequest, codeInvalidQuery,
			"unknown kind %q (one of job, sweep)", kind)
		return
	}
	recs, total := s.ledger.List(lq, q.limit, q.offset)
	for i := range recs {
		recs[i].Spec = nil
		recs[i].Shards = nil
		recs[i].Trace = nil
	}
	writeJSON(w, http.StatusOK, runListPayload{
		Runs: recs, Total: total, Limit: q.limit, Offset: q.offset,
	})
}

// handleGetRun serves one complete ledger record, including the
// resolved spec, per-shard provenance and the persisted span tree.
func (s *server) handleGetRun(w http.ResponseWriter, r *http.Request) {
	if s.ledger == nil {
		writeAPIError(w, http.StatusNotFound, codeLedgerDisabled,
			"run ledger disabled; start ntvsimd with -data-dir to record runs")
		return
	}
	rec, ok := s.ledger.Get(r.PathValue("id"))
	if !ok {
		writeAPIError(w, http.StatusNotFound, codeRunNotFound, "no recorded run with this id")
		return
	}
	writeJSON(w, http.StatusOK, rec)
}
