package main

import (
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"github.com/ntvsim/ntvsim/internal/sweep"
)

// sweepPayload is the wire form of a sweep (POST and GET responses).
// Results holds the merged-so-far grid points of completed shards, so a
// mid-run GET sees partial results; Result is the fully merged artifact
// of a done sweep.
// Error carries the typed shard_failed envelope of a sweep that failed
// (first permanent shard failure, or the failure-budget abort);
// Retried counts in-place shard retries absorbed along the way.
type sweepPayload struct {
	ID         string                `json:"id"`
	State      sweep.State           `json:"state"`
	Spec       sweep.Spec            `json:"spec"`
	Total      int                   `json:"total"`
	Completed  int                   `json:"completed"`
	Cached     int                   `json:"cached"`
	Failed     int                   `json:"failed,omitempty"`
	Cancelled  int                   `json:"cancelled,omitempty"`
	Retried    int                   `json:"retried,omitempty"`
	Error      *apiError             `json:"error,omitempty"`
	CreatedAt  *time.Time            `json:"created_at,omitempty"`
	FinishedAt *time.Time            `json:"finished_at,omitempty"`
	Shards     []sweep.ShardSnapshot `json:"shards,omitempty"`
	Results    []sweep.PointResult   `json:"results,omitempty"`
	Result     *resultPayload        `json:"result,omitempty"`
}

// sweepListPayload is the typed GET /v1/sweeps response, newest first.
// Listing entries omit shards and point results; fetch one sweep for
// its detail.
type sweepListPayload struct {
	Sweeps []sweepPayload `json:"sweeps"`
	Total  int            `json:"total"`
}

// sweepDoneEvent is the terminal SSE payload of a sweep stream. Unlike
// the per-job doneEvent's flat error string, a failed sweep carries the
// typed shard_failed envelope so stream consumers and unary clients
// switch on the same code.
type sweepDoneEvent struct {
	ID    string    `json:"id"`
	State string    `json:"state"`
	Error *apiError `json:"error,omitempty"`
}

// sweepProgressPayload is the data of sweep SSE progress events: shard
// completion counts, not Monte-Carlo sample counts.
type sweepProgressPayload struct {
	ID        string      `json:"id"`
	State     sweep.State `json:"state"`
	Total     int         `json:"total"`
	Completed int         `json:"completed"`
	Cached    int         `json:"cached"`
}

// sweepPayloadOf converts a snapshot. detail controls whether per-shard
// states and partial results are included (single-sweep GET) or elided
// (listings).
func sweepPayloadOf(sw *sweep.Sweep, snap sweep.Snapshot, detail bool) sweepPayload {
	p := sweepPayload{
		ID:        snap.ID,
		State:     snap.State,
		Spec:      snap.Spec,
		Total:     snap.Total,
		Completed: snap.Completed,
		Cached:    snap.Cached,
		Failed:    snap.Failed,
		Cancelled: snap.Cancelled,
		Retried:   snap.Retried,
		Error:     sweepError(snap),
	}
	if !snap.Created.IsZero() {
		t := snap.Created
		p.CreatedAt = &t
	}
	if !snap.Finished.IsZero() {
		t := snap.Finished
		p.FinishedAt = &t
	}
	if detail {
		p.Shards = snap.Shards
		p.Results = snap.Results
		if res, ok := sw.Result(); ok {
			p.Result = renderResult(res)
		}
	}
	return p
}

// sweepError maps a Failed sweep's recorded failure to the typed
// shard_failed envelope carried by payloads and the SSE done event.
func sweepError(snap sweep.Snapshot) *apiError {
	if snap.State != sweep.Failed {
		return nil
	}
	return &apiError{Code: codeShardFailed, Message: snap.Error}
}

// handleSubmitSweep validates and starts a sweep. Unlike POST /v1/jobs,
// a fully cached resubmission still creates a sweep — its shards all
// finish as cache hits near-instantly and the response reports them in
// the cached count.
func (s *server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeAPIError(w, http.StatusServiceUnavailable, codeShuttingDown,
			"server is draining; not accepting new sweeps")
		return
	}
	var spec sweep.Spec
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(&spec); err != nil {
		writeAPIErrorf(w, http.StatusBadRequest, codeInvalidBody, "invalid JSON body: %v", err)
		return
	}
	var sw *sweep.Sweep
	var err error
	if s.cluster != nil {
		// Coordinator path: validate first (Normalized is idempotent, so
		// re-normalizing inside Submit is harmless), then journal the
		// sweep intent before shards fan out to workers. A Submit error
		// past validation is a journal write failure — the intent is not
		// durable, so the sweep must not run.
		if _, verr := spec.Normalized(); verr != nil {
			code := codeInvalidSweep
			if errors.Is(verr, sweep.ErrModeUnsupported) {
				code = codeModeUnsupported
			}
			writeAPIError(w, http.StatusBadRequest, code, verr.Error())
			return
		}
		if sw, err = s.cluster.Submit(s.base, s.sweeps, spec); err != nil {
			s.log.Warn("cluster sweep submit failed", "error", err.Error())
			writeAPIError(w, http.StatusInternalServerError, codeInternal, err.Error())
			return
		}
	} else if sw, err = s.sweeps.SubmitCtx(s.base, spec); err != nil {
		code := codeInvalidSweep
		if errors.Is(err, sweep.ErrModeUnsupported) {
			// The importance-sampling kernels have no analytic law; give
			// clients a distinct code so they can fall back to mode "mc"
			// programmatically instead of string-matching the message.
			code = codeModeUnsupported
		}
		writeAPIError(w, http.StatusBadRequest, code, err.Error())
		return
	}
	if s.ledger != nil {
		go s.recordSweep(sw)
	}
	snap := sw.Snapshot()
	s.log.Info("sweep submitted", "sweep", sw.ID, "kernel", snap.Spec, "shards", snap.Total)
	writeJSON(w, http.StatusAccepted, sweepPayloadOf(sw, snap, false))
}

// handleListSweeps lists all known sweeps, newest first.
func (s *server) handleListSweeps(w http.ResponseWriter, r *http.Request) {
	snaps := s.sweeps.List()
	out := make([]sweepPayload, 0, len(snaps))
	for _, snap := range snaps {
		sw, ok := s.sweeps.Get(snap.ID)
		if !ok {
			continue
		}
		out = append(out, sweepPayloadOf(sw, snap, false))
	}
	writeJSON(w, http.StatusOK, sweepListPayload{Sweeps: out, Total: len(out)})
}

// handleGetSweep serves one sweep with per-shard states and the
// merged-so-far partial results; a done sweep includes its full merged
// artifact.
func (s *server) handleGetSweep(w http.ResponseWriter, r *http.Request) {
	sw, ok := s.sweeps.Get(r.PathValue("id"))
	if !ok {
		writeAPIError(w, http.StatusNotFound, codeSweepNotFound, "no such sweep")
		return
	}
	writeJSON(w, http.StatusOK, sweepPayloadOf(sw, sw.Snapshot(), true))
}

// handleCancelSweep cancels every non-terminal shard of a sweep.
func (s *server) handleCancelSweep(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sw, ok := s.sweeps.Get(id)
	if !ok {
		writeAPIError(w, http.StatusNotFound, codeSweepNotFound, "no such sweep")
		return
	}
	if !sw.Cancel() {
		writeAPIErrorf(w, http.StatusConflict, codeSweepNotCancellable,
			"sweep already %s", sw.Snapshot().State)
		return
	}
	s.log.Info("sweep cancel requested", "sweep", id)
	writeJSON(w, http.StatusOK, sweepPayloadOf(sw, sw.Snapshot(), true))
}

// handleSweepEvents streams a sweep's lifecycle as Server-Sent Events,
// mirroring the per-job stream:
//
//	event: progress   data: sweepProgressPayload  (whenever a shard finishes)
//	event: done       data: sweepDoneEvent        (exactly once, then the stream closes)
//
// A terminal sweep yields an immediate done event; a sweep that failed
// its failure budget carries the typed shard_failed envelope in it.
func (s *server) handleSweepEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sw, ok := s.sweeps.Get(id)
	if !ok {
		writeAPIError(w, http.StatusNotFound, codeSweepNotFound, "no such sweep")
		return
	}
	emit, ok := sseStream(w)
	if !ok {
		return
	}
	lastCompleted := -1
	ticker := time.NewTicker(ssePollInterval)
	defer ticker.Stop()
	for {
		snap := sw.Snapshot()
		if finished := snap.Completed + snap.Failed + snap.Cancelled; finished != lastCompleted {
			lastCompleted = finished
			emit("progress", sweepProgressPayload{
				ID: id, State: snap.State, Total: snap.Total,
				Completed: snap.Completed, Cached: snap.Cached,
			})
		}
		if snap.State.Terminal() {
			emit("done", sweepDoneEvent{ID: id, State: string(snap.State), Error: sweepError(snap)})
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

// kernelPayload is the wire form of one sweep metric kernel in the
// GET /v1/kernels listing. Sampler reports which spec sampler values
// the kernel answers to ("mc", "is"); Twin names the counterpart
// kernel the sampler knob maps to, if any; Modes lists the estimator
// modes the kernel accepts in the spec's mode knob (kernels with an
// analytic SSTA law accept all three, importance-sampling kernels only
// "mc").
type kernelPayload struct {
	ID             string   `json:"id"`
	Kind           string   `json:"kind"`
	Description    string   `json:"description"`
	Unit           string   `json:"unit,omitempty"`
	DefaultSamples int      `json:"default_samples"`
	Sampler        string   `json:"sampler"`
	Twin           string   `json:"twin,omitempty"`
	Tail           bool     `json:"tail,omitempty"`
	DefaultShift   float64  `json:"default_shift,omitempty"`
	Modes          []string `json:"modes"`
}

// kernelListPayload is the typed GET /v1/kernels response, carrying the
// same limit/offset/total pagination envelope as the other listings.
type kernelListPayload struct {
	Kernels []kernelPayload `json:"kernels"`
	Total   int             `json:"total"`
	Limit   int             `json:"limit"`
	Offset  int             `json:"offset"`
}

// handleKernels lists the sweep metric registry as typed objects, the
// kernel-side counterpart of GET /v1/experiments. Registry order is the
// stable pagination order.
func (s *server) handleKernels(w http.ResponseWriter, r *http.Request) {
	if st := r.URL.Query().Get("state"); st != "" {
		writeAPIErrorf(w, http.StatusBadRequest, codeInvalidQuery,
			"kernels are not stateful; state %q is not a valid filter here", st)
		return
	}
	q, ok := parseListQuery(w, r)
	if !ok {
		return
	}
	ks := sweep.Kernels()
	out := make([]kernelPayload, 0, len(ks))
	for _, k := range ks {
		p := kernelPayload{
			ID: k.ID, Kind: string(k.Kind), Description: k.Description,
			Unit: k.Unit, DefaultSamples: k.DefaultSamples,
			Sampler: "mc", Tail: k.Tail, DefaultShift: k.DefaultShift,
			Modes: k.Modes(),
		}
		if k.IS {
			p.Sampler = "is"
			p.Twin = k.MCTwin
		} else {
			p.Twin = k.ISTwin
		}
		out = append(out, p)
	}
	total := len(out)
	out = page(out, q)
	writeJSON(w, http.StatusOK, kernelListPayload{
		Kernels: out, Total: total, Limit: q.limit, Offset: q.offset,
	})
}
