// Command ntvsimd serves the experiment registry of the DAC 2012
// reproduction over HTTP as an asynchronous job API with result caching
// and cancellation.
//
// Usage:
//
//	ntvsimd [-addr :8080] [-debug-addr addr] [-workers N] [-queue N] [-cache N]
//
// Endpoints (see docs/API.md for request/response examples):
//
//	GET  /v1/experiments        list runnable experiment ids
//	POST /v1/jobs               enqueue an experiment run
//	GET  /v1/jobs               list jobs
//	GET  /v1/jobs/{id}          job status and result
//	POST /v1/jobs/{id}/cancel   cancel a queued or running job
//	GET  /metrics               expvar metrics (jobs, cache, MC samples)
//	GET  /healthz               liveness probe
//
// With -debug-addr set, net/http/pprof and /debug/vars are served on a
// separate listener so profiling never shares the public port.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"time"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address of the public API")
	debugAddr := flag.String("debug-addr", "", "optional listen address for pprof and /debug/vars (empty: disabled)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent experiment jobs")
	queue := flag.Int("queue", 64, "pending-job queue depth")
	cacheSize := flag.Int("cache", 256, "max cached experiment results (0: unbounded)")
	flag.Parse()

	s := newServer(*workers, *queue, *cacheSize)
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *debugAddr != "" {
		go func() {
			log.Printf("ntvsimd: debug (pprof) on %s", *debugAddr)
			debugSrv := &http.Server{
				Addr:              *debugAddr,
				Handler:           debugMux(),
				ReadHeaderTimeout: 10 * time.Second,
			}
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("ntvsimd: debug listener: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		<-ctx.Done()
		log.Print("ntvsimd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("ntvsimd: serving on %s (%d workers, queue %d, cache %d)",
		*addr, *workers, *queue, *cacheSize)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("ntvsimd: %v", err)
	}
	s.close() // drain queued and running jobs before exiting
}
