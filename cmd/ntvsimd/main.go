// Command ntvsimd serves the experiment registry of the DAC 2012
// reproduction over HTTP as an asynchronous job API with sharded
// parameter sweeps, result caching, cancellation and full telemetry:
// per-job progress, SSE event streams, span traces, and Prometheus
// metrics. Errors use a typed envelope with stable codes; see the
// Conventions section of docs/API.md.
//
// Usage:
//
//	ntvsimd [-role standalone|coordinator|worker]
//	        [-addr :8080] [-debug-addr addr] [-workers N] [-queue N] [-cache N]
//	        [-data-dir DIR] [-profile-jobs] [-trace-buffer N]
//	        [-coordinator URL] [-worker-id ID] [-lease-ttl 30s] [-lease-batch N]
//	        [-drain-timeout 30s] [-log-format text|json] [-log-level debug|info|warn|error]
//
// With -data-dir set, every completed job and sweep is appended to a
// durable JSONL run ledger under that directory — resolved spec, spec
// hash, seed, build revision, timings, outcomes, IS diagnostics and the
// finished span tree — replayed on boot and served at GET /v1/runs, so
// provenance survives restarts. -profile-jobs (or the per-submission
// `profile` knob) additionally captures CPU and heap pprof profiles per
// job next to the ledger.
//
// Cluster mode (see docs/CLUSTER.md): with -role coordinator the daemon
// additionally journals every sweep to a durable shard journal under
// -data-dir and fans shards out to pull-based workers over
// /v1/cluster/* — lease, heartbeat, complete — with lease-expiry
// work-stealing; the journal is replayed on boot so a killed
// coordinator resumes interrupted sweeps with uploaded shard results
// intact. With -role worker the daemon runs no HTTP server at all: it
// polls -coordinator for shard leases, evaluates them through the same
// kernel dispatch a local sweep uses, and uploads results until killed.
// The merged result of an N-worker sweep is byte-identical to the same
// spec run serially.
//
// On SIGTERM or SIGINT the daemon drains gracefully: it stops accepting
// submissions (new ones get a typed 503 shutting_down envelope and
// /healthz flips to "draining"), lets in-flight jobs finish for up to
// -drain-timeout, then cancels whatever remains and exits. See
// docs/ROBUSTNESS.md for the full lifecycle.
//
// Endpoints (see docs/API.md, docs/SWEEPS.md and docs/OBSERVABILITY.md):
//
//	GET  /v1                       machine-readable surface index (routes, versions, role)
//	GET  /v1/experiments           list experiments (typed; ?format=ids retired in rev 9)
//	POST /v1/jobs                  enqueue an experiment run
//	GET  /v1/jobs                  list jobs (state=, limit=, offset=)
//	GET  /v1/jobs/{id}             job status and result
//	GET  /v1/jobs/{id}/progress    live samples-done/samples-total and phase
//	GET  /v1/jobs/{id}/events      SSE stream of progress/phase/done events
//	POST /v1/jobs/{id}/cancel      cancel a queued or running job
//	POST /v1/sweeps                start a sharded parameter sweep
//	GET  /v1/sweeps                list sweeps, newest first
//	GET  /v1/sweeps/{id}           shard states, partial results, merged result
//	GET  /v1/sweeps/{id}/events    SSE stream of shard progress/done events
//	POST /v1/sweeps/{id}/cancel    cancel every non-terminal shard
//	GET  /v1/runs                  run-ledger listing (kind=, state=, experiment=, limit=, offset=)
//	GET  /v1/runs/{id}             one recorded run: spec, seed, build, shards, trace, profiles
//	GET  /v1/cluster               coordinator status: queue depth, leases, workers
//	POST /v1/cluster/lease         worker shard-lease claim (batch)
//	POST /v1/cluster/heartbeat     worker lease renewal
//	POST /v1/cluster/complete      worker shard-result upload
//	GET  /debug/trace/{id}         span tree of a job or sweep (?format=chrome for Perfetto)
//	GET  /metrics                  Prometheus text exposition
//	GET  /metrics/expvar           legacy expvar JSON dump
//	GET  /healthz                  liveness probe
//
// With -debug-addr set, net/http/pprof and /debug/vars are served on a
// separate listener so profiling never shares the public port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"github.com/ntvsim/ntvsim/internal/cluster"
)

// newLogger builds the process logger from the -log-format/-log-level
// flags; structured output goes to stderr.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (text|json)", format)
	}
}

func main() {
	role := flag.String("role", "standalone", "process role: standalone, coordinator or worker (see docs/CLUSTER.md)")
	coordinatorURL := flag.String("coordinator", "", "coordinator base URL a worker pulls shard leases from (worker role only)")
	workerID := flag.String("worker-id", "", "stable worker identity for lease attribution (worker role; default hostname-pid)")
	leaseTTL := flag.Duration("lease-ttl", 0, "shard lease time-to-live before the coordinator re-queues it (coordinator role; 0: default 30s)")
	leaseBatch := flag.Int("lease-batch", 2, "max shard leases a worker claims per poll (worker role)")
	addr := flag.String("addr", ":8080", "listen address of the public API")
	debugAddr := flag.String("debug-addr", "", "optional listen address for pprof and /debug/vars (empty: disabled)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent experiment jobs")
	queue := flag.Int("queue", 64, "pending-job queue depth")
	cacheSize := flag.Int("cache", 256, "max cached experiment results (0: unbounded)")
	dataDir := flag.String("data-dir", "", "directory for the durable run ledger and job profiles (empty: recording disabled)")
	profileJobs := flag.Bool("profile-jobs", false, "capture CPU and heap pprof profiles for every job (requires -data-dir)")
	traceBuffer := flag.Int("trace-buffer", defaultTraceBuffer, "in-memory span-trace ring capacity")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM/SIGINT drain waits for in-flight jobs before cancelling them")
	logFormat := flag.String("log-format", "text", "structured log encoding: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	flag.Parse()

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ntvsimd: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	if *profileJobs && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "ntvsimd: -profile-jobs requires -data-dir (profiles are written next to the run ledger)")
		os.Exit(2)
	}
	switch *role {
	case "standalone":
	case "coordinator":
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "ntvsimd: -role coordinator requires -data-dir (the shard journal lives there)")
			os.Exit(2)
		}
	case "worker":
		// A worker is a thin puller with no HTTP surface of its own: it
		// leases shards from the coordinator, evaluates them through the
		// same kernel dispatch a local sweep uses, and uploads results
		// until its context is cancelled.
		if *coordinatorURL == "" {
			fmt.Fprintln(os.Stderr, "ntvsimd: -role worker requires -coordinator URL")
			os.Exit(2)
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		w := &cluster.Worker{
			Coordinator: *coordinatorURL,
			ID:          *workerID,
			MaxShards:   *leaseBatch,
			Log:         logger,
		}
		logger.Info("worker starting", "coordinator", *coordinatorURL, "lease_batch", *leaseBatch)
		if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
			logger.Error("worker exited", "error", err.Error())
			os.Exit(1)
		}
		logger.Info("worker stopped")
		return
	default:
		fmt.Fprintf(os.Stderr, "ntvsimd: unknown -role %q (standalone|coordinator|worker)\n", *role)
		os.Exit(2)
	}
	s, err := newServerWith(serverConfig{
		workers:     *workers,
		queueDepth:  *queue,
		cacheSize:   *cacheSize,
		traceBuffer: *traceBuffer,
		dataDir:     *dataDir,
		profileJobs: *profileJobs,
		role:        *role,
		leaseTTL:    *leaseTTL,
		logger:      logger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ntvsimd: %v\n", err)
		os.Exit(1)
	}
	if *dataDir != "" {
		logger.Info("run ledger enabled", "data_dir", *dataDir, "replayed_runs", s.ledger.Len())
	}
	if s.cluster != nil {
		logger.Info("coordinator serving shard leases", "lease_ttl", s.cluster.LeaseTTL().String(),
			"journal_entries", s.cluster.Status().JournalEntries)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *debugAddr != "" {
		go func() {
			logger.Info("debug listener starting", "addr", *debugAddr)
			debugSrv := &http.Server{
				Addr:              *debugAddr,
				Handler:           debugMux(),
				ReadHeaderTimeout: 10 * time.Second,
			}
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "error", err.Error())
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		// Graceful drain: flip /healthz to "draining" and reject new
		// submissions first, then let in-flight jobs finish within the
		// -drain-timeout budget (past it they are cancelled), and only
		// then close the HTTP listener — SSE watchers of draining jobs
		// stay connected until their jobs land.
		logger.Info("drain started", "timeout", drainTimeout.String(),
			"jobs_pending", s.jobs.Pending())
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := s.drain(drainCtx); err != nil {
			logger.Warn("drain timed out; cancelled remaining jobs", "error", err.Error())
		} else {
			logger.Info("drain complete")
		}
		shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancelShutdown()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	logger.Info("serving", "addr", *addr, "workers", *workers,
		"queue", *queue, "cache", *cacheSize)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listener failed", "error", err.Error())
		os.Exit(1)
	}
	stop()
	<-drained // the drain goroutine owns the worker pool's shutdown
	// Jobs have drained, so every record is on disk; seal the shard
	// journal and the run ledger last.
	if s.cluster != nil {
		if err := s.cluster.Close(); err != nil {
			logger.Warn("cluster close failed", "error", err.Error())
		}
	}
	if err := s.ledger.Close(); err != nil {
		logger.Warn("ledger close failed", "error", err.Error())
	}
}
