// Command ntvsimd serves the experiment registry of the DAC 2012
// reproduction over HTTP as an asynchronous job API with sharded
// parameter sweeps, result caching, cancellation and full telemetry:
// per-job progress, SSE event streams, span traces, and Prometheus
// metrics. Errors use a typed envelope with stable codes; see the
// Conventions section of docs/API.md.
//
// Usage:
//
//	ntvsimd [-addr :8080] [-debug-addr addr] [-workers N] [-queue N] [-cache N]
//	        [-data-dir DIR] [-profile-jobs] [-trace-buffer N]
//	        [-drain-timeout 30s] [-log-format text|json] [-log-level debug|info|warn|error]
//
// With -data-dir set, every completed job and sweep is appended to a
// durable JSONL run ledger under that directory — resolved spec, spec
// hash, seed, build revision, timings, outcomes, IS diagnostics and the
// finished span tree — replayed on boot and served at GET /v1/runs, so
// provenance survives restarts. -profile-jobs (or the per-submission
// `profile` knob) additionally captures CPU and heap pprof profiles per
// job next to the ledger.
//
// On SIGTERM or SIGINT the daemon drains gracefully: it stops accepting
// submissions (new ones get a typed 503 shutting_down envelope and
// /healthz flips to "draining"), lets in-flight jobs finish for up to
// -drain-timeout, then cancels whatever remains and exits. See
// docs/ROBUSTNESS.md for the full lifecycle.
//
// Endpoints (see docs/API.md, docs/SWEEPS.md and docs/OBSERVABILITY.md):
//
//	GET  /v1/experiments           list experiments (typed; ?format=ids deprecated)
//	POST /v1/jobs                  enqueue an experiment run
//	GET  /v1/jobs                  list jobs (state=, limit=, offset=)
//	GET  /v1/jobs/{id}             job status and result
//	GET  /v1/jobs/{id}/progress    live samples-done/samples-total and phase
//	GET  /v1/jobs/{id}/events      SSE stream of progress/phase/done events
//	POST /v1/jobs/{id}/cancel      cancel a queued or running job
//	POST /v1/sweeps                start a sharded parameter sweep
//	GET  /v1/sweeps                list sweeps, newest first
//	GET  /v1/sweeps/{id}           shard states, partial results, merged result
//	GET  /v1/sweeps/{id}/events    SSE stream of shard progress/done events
//	POST /v1/sweeps/{id}/cancel    cancel every non-terminal shard
//	GET  /v1/runs                  run-ledger listing (kind=, state=, experiment=, limit=, offset=)
//	GET  /v1/runs/{id}             one recorded run: spec, seed, build, shards, trace, profiles
//	GET  /debug/trace/{id}         span tree of a job or sweep (?format=chrome for Perfetto)
//	GET  /metrics                  Prometheus text exposition
//	GET  /metrics/expvar           legacy expvar JSON dump
//	GET  /healthz                  liveness probe
//
// With -debug-addr set, net/http/pprof and /debug/vars are served on a
// separate listener so profiling never shares the public port.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"
)

// newLogger builds the process logger from the -log-format/-log-level
// flags; structured output goes to stderr.
func newLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch level {
	case "debug":
		lv = slog.LevelDebug
	case "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown -log-level %q (debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown -log-format %q (text|json)", format)
	}
}

func main() {
	addr := flag.String("addr", ":8080", "listen address of the public API")
	debugAddr := flag.String("debug-addr", "", "optional listen address for pprof and /debug/vars (empty: disabled)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent experiment jobs")
	queue := flag.Int("queue", 64, "pending-job queue depth")
	cacheSize := flag.Int("cache", 256, "max cached experiment results (0: unbounded)")
	dataDir := flag.String("data-dir", "", "directory for the durable run ledger and job profiles (empty: recording disabled)")
	profileJobs := flag.Bool("profile-jobs", false, "capture CPU and heap pprof profiles for every job (requires -data-dir)")
	traceBuffer := flag.Int("trace-buffer", defaultTraceBuffer, "in-memory span-trace ring capacity")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM/SIGINT drain waits for in-flight jobs before cancelling them")
	logFormat := flag.String("log-format", "text", "structured log encoding: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	flag.Parse()

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ntvsimd: %v\n", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	if *profileJobs && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "ntvsimd: -profile-jobs requires -data-dir (profiles are written next to the run ledger)")
		os.Exit(2)
	}
	s, err := newServerWith(serverConfig{
		workers:     *workers,
		queueDepth:  *queue,
		cacheSize:   *cacheSize,
		traceBuffer: *traceBuffer,
		dataDir:     *dataDir,
		profileJobs: *profileJobs,
		logger:      logger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "ntvsimd: %v\n", err)
		os.Exit(1)
	}
	if *dataDir != "" {
		logger.Info("run ledger enabled", "data_dir", *dataDir, "replayed_runs", s.ledger.Len())
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s.handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	if *debugAddr != "" {
		go func() {
			logger.Info("debug listener starting", "addr", *debugAddr)
			debugSrv := &http.Server{
				Addr:              *debugAddr,
				Handler:           debugMux(),
				ReadHeaderTimeout: 10 * time.Second,
			}
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "error", err.Error())
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		// Graceful drain: flip /healthz to "draining" and reject new
		// submissions first, then let in-flight jobs finish within the
		// -drain-timeout budget (past it they are cancelled), and only
		// then close the HTTP listener — SSE watchers of draining jobs
		// stay connected until their jobs land.
		logger.Info("drain started", "timeout", drainTimeout.String(),
			"jobs_pending", s.jobs.Pending())
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := s.drain(drainCtx); err != nil {
			logger.Warn("drain timed out; cancelled remaining jobs", "error", err.Error())
		} else {
			logger.Info("drain complete")
		}
		shutdownCtx, cancelShutdown := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancelShutdown()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	logger.Info("serving", "addr", *addr, "workers", *workers,
		"queue", *queue, "cache", *cacheSize)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("listener failed", "error", err.Error())
		os.Exit(1)
	}
	stop()
	<-drained // the drain goroutine owns the worker pool's shutdown
	// Jobs have drained, so every job record is on disk; sync and close
	// the ledger journal last.
	if err := s.ledger.Close(); err != nil {
		logger.Warn("ledger close failed", "error", err.Error())
	}
}
