package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"github.com/ntvsim/ntvsim/internal/sweep"
)

// TestHTTPSmoke builds the real ntvsimd binary, boots it on a free
// port, drives it with a Go HTTP client — a tiny sweep to a merged
// result, plus a malformed request asserting the invalid_body envelope
// — and shuts it down. It exercises the shipped artifact rather than an
// in-process handler, so it is gated behind NTVSIMD_SMOKE=1 and run as
// a dedicated CI job.
func TestHTTPSmoke(t *testing.T) {
	if os.Getenv("NTVSIMD_SMOKE") != "1" {
		t.Skip("set NTVSIMD_SMOKE=1 to run the binary smoke test")
	}

	bin := filepath.Join(t.TempDir(), "ntvsimd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	// Reserve a free port, release it, and hand it to the daemon. The
	// race window is negligible for a single-process test host.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	base := "http://" + addr

	cmd := exec.Command(bin, "-addr", addr, "-workers", "2", "-log-level", "warn")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		_ = cmd.Process.Signal(os.Interrupt)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case <-done:
		case <-time.After(15 * time.Second):
			_ = cmd.Process.Kill()
			<-done
		}
	}()

	// Wait for the listener.
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never became healthy: %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	post := func(path, body string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		return resp.StatusCode, out
	}

	// Malformed request → typed invalid_body envelope.
	code, out := post("/v1/sweeps", "{broken")
	if code != http.StatusBadRequest {
		t.Fatalf("malformed POST: status %d (%v)", code, out)
	}
	env, _ := out["error"].(map[string]any)
	if env["code"] != "invalid_body" {
		t.Fatalf("malformed POST envelope: %v", out)
	}
	if msg, _ := env["message"].(string); msg == "" {
		t.Fatal("malformed POST envelope has no message")
	}

	// Tiny sweep → merged result with all shards done.
	code, out = post("/v1/sweeps", `{
		"metric": "gate3sigma",
		"nodes": ["90nm GP"],
		"vdd": {"from": 0.50, "to": 0.60, "step": 0.05},
		"samples": [100]
	}`)
	if code != http.StatusAccepted {
		t.Fatalf("sweep POST: status %d (%v)", code, out)
	}
	id, _ := out["id"].(string)

	deadline = time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		out = map[string]any{}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if state, _ := out["state"].(string); state == "done" {
			break
		} else if state == "failed" || state == "cancelled" {
			t.Fatalf("sweep finished as %s: %v", state, out["shards"])
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never finished: %v", out)
		}
		time.Sleep(50 * time.Millisecond)
	}
	res, _ := out["result"].(map[string]any)
	if res == nil || res["id"] != "sweep/gate3sigma" {
		t.Fatalf("merged result payload: %v", out["result"])
	}
	render, _ := res["render"].(string)
	if !strings.Contains(render, "3 grid points") || !strings.Contains(render, "90nm GP") {
		t.Fatalf("merged render: %q", render)
	}

	// The sweep metrics are visible on /metrics.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	metrics := buf.String()
	for _, want := range []string{
		"ntvsim_sweep_shards_total 3",
		"ntvsim_sweep_shards_completed 3",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestHTTPSmokeRestart is the durability smoke test: boot the real
// binary with -data-dir, run a quick job to completion, SIGTERM the
// daemon, boot a second instance on the same dir, and require the run
// ledger to still list the finished job with its spec hash and seed.
// Gated behind NTVSIMD_SMOKE=1 like TestHTTPSmoke.
func TestHTTPSmokeRestart(t *testing.T) {
	if os.Getenv("NTVSIMD_SMOKE") != "1" {
		t.Skip("set NTVSIMD_SMOKE=1 to run the binary smoke test")
	}

	work := t.TempDir()
	bin := filepath.Join(work, "ntvsimd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := filepath.Join(work, "data")

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	base := "http://" + addr

	boot := func() *exec.Cmd {
		t.Helper()
		cmd := exec.Command(bin, "-addr", addr, "-workers", "2",
			"-data-dir", dataDir, "-log-level", "warn")
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(15 * time.Second)
		for {
			resp, err := http.Get(base + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return cmd
				}
			}
			if time.Now().After(deadline) {
				_ = cmd.Process.Kill()
				t.Fatalf("daemon never became healthy: %v", err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}
	stop := func(cmd *exec.Cmd, sig os.Signal) {
		t.Helper()
		_ = cmd.Process.Signal(sig)
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			_ = cmd.Process.Kill()
			<-done
			t.Fatal("daemon did not exit after signal")
		}
	}
	getJSON := func(path string) map[string]any {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out := map[string]any{}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return out
	}

	// First life: run one quick job to completion.
	cmd := boot()
	body := `{"experiment": "fig1", "config": {"seed": 8086, "circuit_samples": 50}}`
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]any{}
	err = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST job: status %d err %v (%v)", resp.StatusCode, err, out)
	}
	id, _ := out["id"].(string)

	deadline := time.Now().Add(60 * time.Second)
	for {
		job := getJSON("/v1/jobs/" + id)
		if state, _ := job["state"].(string); state == "done" {
			break
		} else if state == "failed" || state == "cancelled" {
			t.Fatalf("job finished as %s: %v", state, job["error"])
		}
		if time.Now().After(deadline) {
			t.Fatal("job never finished")
		}
		time.Sleep(50 * time.Millisecond)
	}
	// The record must be on the ledger before the restart (the append is
	// concurrent with the job's terminal HTTP state).
	deadline = time.Now().Add(15 * time.Second)
	for {
		runs := getJSON("/v1/runs")
		if total, _ := runs["total"].(float64); total >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("run record never appeared before restart")
		}
		time.Sleep(50 * time.Millisecond)
	}
	stop(cmd, syscall.SIGTERM)

	// Second life: the replayed ledger still knows the run.
	cmd = boot()
	defer stop(cmd, os.Interrupt)
	runs := getJSON("/v1/runs")
	if total, _ := runs["total"].(float64); total != 1 {
		t.Fatalf("replayed ledger lists %v runs, want 1: %v", runs["total"], runs)
	}
	list, _ := runs["runs"].([]any)
	entry, _ := list[0].(map[string]any)
	if entry["run_id"] != id || entry["kind"] != "job" || entry["name"] != "fig1" {
		t.Fatalf("replayed run identity: %v", entry)
	}
	if hash, _ := entry["spec_hash"].(string); hash == "" {
		t.Error("replayed run has no spec_hash")
	}
	if seed, _ := entry["seed"].(float64); seed != 8086 {
		t.Errorf("replayed run seed = %v, want 8086", entry["seed"])
	}
	if entry["state"] != "done" {
		t.Errorf("replayed run state = %v", entry["state"])
	}
	rec := getJSON("/v1/runs/" + id)
	if rec["trace"] == nil {
		t.Error("replayed run record lost its trace")
	}
}

// TestHTTPSmokeCluster is the cluster-mode smoke test: a real
// coordinator binary plus real worker binaries on localhost run a
// 20-shard sweep while one worker is SIGKILLed mid-run and then the
// coordinator itself is SIGKILLed and rebooted from its shard journal.
// The merged result must be byte-identical to sweep.RunSerial of the
// same spec. The metric is sramreadyield so the smoke also exercises
// the SRAM chip sampler's table build + binomial draws end-to-end
// through real worker processes. Gated behind NTVSIMD_SMOKE=1 like the
// other smoke tests.
func TestHTTPSmokeCluster(t *testing.T) {
	if os.Getenv("NTVSIMD_SMOKE") != "1" {
		t.Skip("set NTVSIMD_SMOKE=1 to run the binary smoke test")
	}

	spec := sweep.Spec{
		Metric:  "sramreadyield",
		Nodes:   []string{"90nm GP", "22nm PTM HP"},
		Vdd:     &sweep.VddAxis{From: 0.50, To: 0.70, Step: 0.05},
		Samples: []int{3000, 5000},
		Seed:    90210,
	}
	serial, err := sweep.RunSerial(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	specJSON, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}

	work := t.TempDir()
	bin := filepath.Join(work, "ntvsimd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	dataDir := filepath.Join(work, "data")

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	base := "http://" + addr

	bootCoordinator := func() *exec.Cmd {
		t.Helper()
		cmd := exec.Command(bin, "-role", "coordinator", "-addr", addr,
			"-data-dir", dataDir, "-lease-ttl", "2s", "-workers", "2", "-log-level", "warn")
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(20 * time.Second)
		for {
			resp, err := http.Get(base + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return cmd
				}
			}
			if time.Now().After(deadline) {
				_ = cmd.Process.Kill()
				t.Fatalf("coordinator never became healthy: %v", err)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}
	bootWorker := func(id string) *exec.Cmd {
		t.Helper()
		cmd := exec.Command(bin, "-role", "worker", "-coordinator", base,
			"-worker-id", id, "-lease-batch", "1", "-log-level", "warn")
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		return cmd
	}
	sigkill := func(cmd *exec.Cmd) {
		t.Helper()
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}
	getSweep := func(id string) map[string]any {
		t.Helper()
		resp, err := http.Get(base + "/v1/sweeps/" + id)
		if err != nil {
			return nil // coordinator may be mid-restart
		}
		defer resp.Body.Close()
		out := map[string]any{}
		if json.NewDecoder(resp.Body).Decode(&out) != nil {
			return nil
		}
		return out
	}
	completedOf := func(out map[string]any) int {
		n, _ := out["completed"].(float64)
		return int(n)
	}

	co := bootCoordinator()
	coordinatorAlive := true
	defer func() {
		if coordinatorAlive {
			sigkill(co)
		}
	}()

	// Submit the sweep before any worker exists: cluster mode has no
	// local fallback, so nothing may progress yet.
	resp, err := http.Post(base+"/v1/sweeps", "application/json", bytes.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]any{}
	err = json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST sweep: status %d err %v (%v)", resp.StatusCode, err, out)
	}
	id, _ := out["id"].(string)
	time.Sleep(300 * time.Millisecond)
	if got := completedOf(getSweep(id)); got != 0 {
		t.Fatalf("%d shards completed with no workers attached", got)
	}

	// Victim worker: SIGKILLed once it has uploaded at least one result.
	victim := bootWorker("smoke-victim")
	deadline := time.Now().Add(2 * time.Minute)
	for completedOf(getSweep(id)) < 1 {
		if time.Now().After(deadline) {
			sigkill(victim)
			t.Fatal("victim worker never completed a shard")
		}
		time.Sleep(5 * time.Millisecond)
	}
	sigkill(victim) // no goodbye: its outstanding lease must expire and be stolen

	// A second worker picks up; once it has made progress, SIGKILL the
	// coordinator mid-sweep and reboot it from the journal. The worker
	// rides out the outage and reconnects.
	w2 := bootWorker("smoke-w2")
	defer sigkill(w2)
	for completedOf(getSweep(id)) < 4 {
		if time.Now().After(deadline) {
			t.Fatal("sweep made no progress under the second worker")
		}
		time.Sleep(5 * time.Millisecond)
	}
	sigkill(co)
	coordinatorAlive = false
	co = bootCoordinator()
	coordinatorAlive = true

	// The rebooted coordinator replayed the sweep; the surviving worker
	// finishes it (stolen shards included, after the 2s lease TTL).
	for {
		out = getSweep(id)
		if state, _ := out["state"].(string); state == "done" {
			break
		} else if state == "failed" || state == "cancelled" {
			t.Fatalf("sweep finished as %s: %v", state, out["error"])
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep never finished after the coordinator restart: %v", out)
		}
		time.Sleep(25 * time.Millisecond)
	}

	res, _ := out["result"].(map[string]any)
	if res == nil {
		t.Fatal("done sweep has no result payload")
	}
	if render, _ := res["render"].(string); render != serial.Render() {
		t.Fatal("cluster smoke merge is not byte-identical to sweep.RunSerial")
	}
	shards, _ := out["shards"].([]any)
	if len(shards) != 20 {
		t.Fatalf("sweep lists %d shards, want 20", len(shards))
	}
	restored := 0
	for _, item := range shards {
		sh, _ := item.(map[string]any)
		w, _ := sh["worker"].(string)
		if w != "smoke-victim" && w != "smoke-w2" {
			t.Errorf("shard %v attributed to %q", sh["index"], w)
		}
		if r, _ := sh["restored"].(bool); r {
			restored++
		}
	}
	if restored == 0 {
		t.Error("no shard restored from the journal after the coordinator restart")
	}
	if t.Failed() {
		t.FailNow()
	}
	fmt.Printf("cluster smoke: 20 shards, %d journal-restored, merge byte-identical\n", restored)
}
