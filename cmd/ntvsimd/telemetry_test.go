package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// ---- Prometheus exposition format validation ----

var (
	helpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .*$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*",?)*\})? (NaN|[+-]?Inf|[+-]?[0-9].*)$`)
)

// validatePrometheus asserts body parses as text exposition format:
// every line is a HELP, TYPE or sample line, every sample belongs to a
// TYPE-declared family, and HELP/TYPE precede their samples.
func validatePrometheus(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	typed := map[string]string{}
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !helpRe.MatchString(line) {
				t.Errorf("line %d: malformed HELP: %q", ln+1, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("line %d: malformed TYPE: %q", ln+1, line)
				continue
			}
			typed[m[1]] = m[2]
		case strings.HasPrefix(line, "#"):
			t.Errorf("line %d: unknown comment form: %q", ln+1, line)
		default:
			m := sampleRe.FindStringSubmatch(line)
			if m == nil {
				t.Errorf("line %d: malformed sample: %q", ln+1, line)
				continue
			}
			name := m[1]
			base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
			if _, ok := typed[name]; !ok {
				if _, ok := typed[base]; !ok {
					t.Errorf("line %d: sample %q has no preceding TYPE", ln+1, name)
				}
			}
			key := name
			if m[2] != "" {
				key += m[2]
			}
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(strings.TrimPrefix(fields[len(fields)-1], "+"), 64)
			if err != nil {
				t.Errorf("line %d: bad value: %q", ln+1, line)
				continue
			}
			samples[key] = v
		}
	}
	return samples
}

func fetch(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, b)
	}
	return string(b)
}

// TestMetricsPrometheusFormat is the exposition golden test: after one
// full job, /metrics must parse as Prometheus text format and carry the
// service's metric catalogue with coherent histogram bucket counts.
func TestMetricsPrometheusFormat(t *testing.T) {
	_, ts := newTestServer(t)
	body := map[string]any{
		"experiment": "fig4",
		"config":     map[string]any{"seed": 314159, "circuit_samples": 50, "chip_samples": 120, "search_samples": 50},
	}
	code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d (%v)", code, out)
	}
	pollDone(t, ts.URL, out["id"].(string), 2*time.Minute)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	ct := resp.Header.Get("Content-Type")
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain exposition", ct)
	}
	samples := validatePrometheus(t, string(b))

	for _, want := range []string{
		"ntvsim_mc_samples_evaluated_total",
		"ntvsimd_jobs_queue_depth",
		"ntvsimd_jobs_running",
		"ntvsimd_jobs_completed_total",
		"ntvsimd_cache_hits_total",
		"ntvsimd_cache_misses_total",
		"ntvsimd_cache_evictions_total",
		"ntvsimd_cache_hit_ratio",
		`ntvsimd_experiment_runs_total{experiment="fig4"}`,
		`ntvsimd_experiment_duration_seconds_count{experiment="fig4"}`,
	} {
		if _, ok := samples[want]; !ok {
			t.Errorf("metric %s missing from /metrics", want)
		}
	}
	if samples["ntvsim_mc_samples_evaluated_total"] <= 0 {
		t.Error("MC sample counter never moved")
	}
	if samples[`ntvsimd_experiment_runs_total{experiment="fig4"}`] < 1 {
		t.Error("fig4 run counter not incremented")
	}

	// Histogram buckets must be cumulative and the +Inf bucket must
	// equal the series count.
	var prev float64
	var lastBucket float64
	for _, line := range strings.Split(string(b), "\n") {
		if !strings.HasPrefix(line, `ntvsimd_experiment_duration_seconds_bucket{experiment="fig4"`) {
			continue
		}
		v, err := strconv.ParseFloat(line[strings.LastIndex(line, " ")+1:], 64)
		if err != nil {
			t.Fatalf("bad bucket line %q", line)
		}
		if v < prev {
			t.Errorf("bucket counts not cumulative at %q", line)
		}
		prev, lastBucket = v, v
	}
	if count := samples[`ntvsimd_experiment_duration_seconds_count{experiment="fig4"}`]; lastBucket != count {
		t.Errorf("+Inf bucket %v != count %v", lastBucket, count)
	}
}

// TestMetricsCatalogueConformance sweeps the ENTIRE registered metric
// catalogue, not a hand-picked subset: every exposed family must have
// exactly paired HELP and TYPE comments, every metric name must match
// the Prometheus name grammar, and every histogram series must have
// monotone cumulative buckets whose +Inf bucket equals its _count. It
// also pins the versioned exposition Content-Type and the provenance
// metrics (ntvsim_build_info, the ntvsim_go_* runtime bridge).
func TestMetricsCatalogueConformance(t *testing.T) {
	_, ts := newTestServer(t)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(b)
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Errorf("Content-Type = %q, want the versioned exposition type", ct)
	}

	nameRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	helped := map[string]bool{}
	typed := map[string]string{}
	// series value of every sample line, keyed by name{labels}.
	samples := validatePrometheus(t, body)

	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			name := strings.Fields(line)[2]
			if helped[name] {
				t.Errorf("family %s has duplicate HELP", name)
			}
			helped[name] = true
			if !nameRe.MatchString(name) {
				t.Errorf("HELP name %q violates the metric name grammar", name)
			}
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			name := fields[2]
			if _, dup := typed[name]; dup {
				t.Errorf("family %s has duplicate TYPE", name)
			}
			typed[name] = fields[3]
			if !helped[name] {
				t.Errorf("family %s: TYPE not preceded by its HELP", name)
			}
		}
	}
	if len(typed) < 15 {
		t.Fatalf("only %d families exposed; catalogue implausibly small", len(typed))
	}
	for name := range helped {
		if _, ok := typed[name]; !ok {
			t.Errorf("family %s has HELP but no TYPE", name)
		}
	}

	// Histogram coherence across every registered histogram family:
	// per-series buckets are cumulative and +Inf equals the count.
	bucketRe := regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)_bucket\{(.*)\} (.*)$`)
	type series struct {
		les  []float64
		vals []float64
	}
	hists := map[string]*series{}
	leRe := regexp.MustCompile(`le="([^"]*)",?`)
	for _, line := range strings.Split(body, "\n") {
		m := bucketRe.FindStringSubmatch(line)
		if m == nil || typed[m[1]] != "histogram" {
			continue
		}
		leM := leRe.FindStringSubmatch(m[2])
		if leM == nil {
			t.Errorf("bucket line without le label: %q", line)
			continue
		}
		le, err := strconv.ParseFloat(strings.Replace(leM[1], "+Inf", "Inf", 1), 64)
		if err != nil {
			t.Errorf("unparseable le %q in %q", leM[1], line)
			continue
		}
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			t.Errorf("unparseable bucket value in %q", line)
			continue
		}
		key := m[1] + "{" + strings.TrimSuffix(leRe.ReplaceAllString(m[2], ""), ",") + "}"
		sr := hists[key]
		if sr == nil {
			sr = &series{}
			hists[key] = sr
		}
		sr.les = append(sr.les, le)
		sr.vals = append(sr.vals, v)
	}
	if len(hists) == 0 {
		t.Fatal("no histogram series found in the exposition")
	}
	for key, sr := range hists {
		for i := 1; i < len(sr.les); i++ {
			if sr.les[i] <= sr.les[i-1] {
				t.Errorf("%s: bucket bounds not increasing: %v", key, sr.les)
			}
			if sr.vals[i] < sr.vals[i-1] {
				t.Errorf("%s: bucket counts not cumulative: %v", key, sr.vals)
			}
		}
		last := len(sr.les) - 1
		if !math.IsInf(sr.les[last], +1) {
			t.Errorf("%s: final bucket le=%v, want +Inf", key, sr.les[last])
			continue
		}
		// key is family{labels-minus-le}; the matching count series is
		// family_count with the same residual labels.
		brace := strings.Index(key, "{")
		countKey := key[:brace] + "_count" + key[brace:]
		if strings.HasSuffix(countKey, "{}") {
			countKey = strings.TrimSuffix(countKey, "{}")
		}
		count, ok := samples[countKey]
		if !ok {
			t.Errorf("%s: no matching _count series (%s)", key, countKey)
		} else if sr.vals[last] != count {
			t.Errorf("%s: +Inf bucket %v != count %v", key, sr.vals[last], count)
		}
	}

	// Provenance: the build-info gauge is 1 and labelled with a real
	// toolchain version, and the runtime bridge is on the page.
	foundBuild := false
	for key, v := range samples {
		if !strings.HasPrefix(key, "ntvsim_build_info{") {
			continue
		}
		foundBuild = true
		if v != 1 {
			t.Errorf("ntvsim_build_info = %v, want 1", v)
		}
		for _, label := range []string{`version="`, `go="go`, `revision="`} {
			if !strings.Contains(key, label) {
				t.Errorf("build info series %s missing label %s", key, label)
			}
		}
	}
	if !foundBuild {
		t.Error("ntvsim_build_info missing from /metrics")
	}
	goFamilies := 0
	for name := range typed {
		if strings.HasPrefix(name, "ntvsim_go_") {
			goFamilies++
		}
	}
	if goFamilies < 6 {
		t.Errorf("only %d ntvsim_go_* runtime families exposed, want >= 6", goFamilies)
	}
}

// TestProgressEndpointMonotonic watches a running job through
// GET /v1/jobs/{id}/progress: done never decreases, fraction stays in
// [0,1], and the job finishes with done == total.
func TestProgressEndpointMonotonic(t *testing.T) {
	_, ts := newTestServer(t)
	code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", map[string]any{
		"experiment": "fig4",
		"config":     map[string]any{"seed": 2718, "chip_samples": 60_000},
	})
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d (%v)", code, out)
	}
	id := out["id"].(string)

	var lastDone float64
	sawProgress := false
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		code, p := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/"+id+"/progress", nil)
		if code != http.StatusOK {
			t.Fatalf("progress: status %d (%v)", code, p)
		}
		done, _ := p["done"].(float64)
		frac, _ := p["fraction"].(float64)
		if done < lastDone {
			t.Fatalf("progress went backwards: %v -> %v", lastDone, done)
		}
		if frac < 0 || frac > 1 {
			t.Fatalf("fraction %v out of range", frac)
		}
		if done > 0 && p["state"] == "running" {
			sawProgress = true
		}
		lastDone = done
		if state, _ := p["state"].(string); state == "done" || state == "failed" || state == "cancelled" {
			if state != "done" {
				t.Fatalf("job finished as %s", state)
			}
			total, _ := p["total"].(float64)
			if done != total || total == 0 {
				t.Errorf("final progress %v/%v, want complete", done, total)
			}
			if !sawProgress {
				t.Error("never observed mid-run progress (job too fast for the poll loop?)")
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("job did not finish in time")
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	name string
	data map[string]any
}

// readSSE parses frames from an event stream until the body closes or
// limit frames arrive.
func readSSE(t *testing.T, r io.Reader, limit int, each func(ev sseEvent) (stop bool)) {
	t.Helper()
	sc := bufio.NewScanner(r)
	var name string
	frames := 0
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			var data map[string]any
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &data); err != nil {
				t.Fatalf("bad SSE data line %q: %v", line, err)
			}
			if name == "" {
				t.Fatalf("data line %q without preceding event line", line)
			}
			frames++
			if each(sseEvent{name: name, data: data}) || frames >= limit {
				return
			}
			name = ""
		case line == "":
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
}

// TestSSEStream subscribes to a long job's event stream, cancels the
// job mid-run, and requires monotonic progress events followed by a
// terminal done event reporting the cancellation.
func TestSSEStream(t *testing.T) {
	_, ts := newTestServer(t)
	code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", map[string]any{
		"experiment": "fig4",
		"config":     map[string]any{"seed": 99991, "chip_samples": 30_000_000},
	})
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d (%v)", code, out)
	}
	id := out["id"].(string)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}

	var (
		lastDone   = -1.0
		progresses int
		cancelled  bool
		sawDone    bool
	)
	readSSE(t, resp.Body, 10_000, func(ev sseEvent) bool {
		switch ev.name {
		case "progress":
			done, _ := ev.data["done"].(float64)
			if done < lastDone {
				t.Errorf("SSE progress went backwards: %v -> %v", lastDone, done)
			}
			lastDone = done
			progresses++
			// Once real sampling progress is visible, cancel mid-run.
			if done > 0 && !cancelled {
				cancelled = true
				go func() {
					resp, err := http.Post(ts.URL+"/v1/jobs/"+id+"/cancel", "application/json", nil)
					if err == nil {
						resp.Body.Close()
					}
				}()
			}
		case "phase":
			if _, ok := ev.data["phase"]; !ok {
				t.Errorf("phase event without phase field: %v", ev.data)
			}
		case "done":
			sawDone = true
			if state, _ := ev.data["state"].(string); state != "cancelled" {
				t.Errorf("terminal state %q, want cancelled", state)
			}
			return true
		default:
			t.Errorf("unknown event %q", ev.name)
		}
		return false
	})
	if !sawDone {
		t.Error("stream ended without a terminal done event")
	}
	if progresses < 1 {
		t.Error("no progress events received")
	}
}

// TestSSETerminalJobImmediateDone: subscribing to an already-finished
// job yields a done event right away.
func TestSSETerminalJobImmediateDone(t *testing.T) {
	_, ts := newTestServer(t)
	code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", map[string]any{
		"experiment": "fig1",
		"config":     map[string]any{"seed": 5151, "circuit_samples": 40},
	})
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d (%v)", code, out)
	}
	id := out["id"].(string)
	pollDone(t, ts.URL, id, 2*time.Minute)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sawDone := false
	readSSE(t, resp.Body, 100, func(ev sseEvent) bool {
		if ev.name == "done" {
			sawDone = true
			if state, _ := ev.data["state"].(string); state != "done" {
				t.Errorf("terminal state %q", state)
			}
			return true
		}
		return false
	})
	if !sawDone {
		t.Error("no done event for finished job")
	}
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/nope/events", nil); code != http.StatusNotFound {
		t.Errorf("events for unknown job: status %d, want 404", code)
	}
}

// TestTraceEndpoint checks that a finished job's span tree is
// queryable: the root carries the job id, an experiment span hangs off
// it, and the instrumented runner contributed phase spans.
func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", map[string]any{
		"experiment": "fig2",
		"config":     map[string]any{"seed": 161803, "circuit_samples": 40},
	})
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d (%v)", code, out)
	}
	id := out["id"].(string)
	pollDone(t, ts.URL, id, 2*time.Minute)

	var trace struct {
		ID   string `json:"id"`
		Root struct {
			Name       string  `json:"name"`
			DurationMS float64 `json:"duration_ms"`
			Children   []struct {
				Name     string `json:"name"`
				Children []struct {
					Name string `json:"name"`
				} `json:"children"`
			} `json:"children"`
		} `json:"root"`
	}
	if err := json.Unmarshal([]byte(fetch(t, ts.URL+"/debug/trace/"+id)), &trace); err != nil {
		t.Fatal(err)
	}
	if trace.ID != id || trace.Root.Name != id {
		t.Errorf("trace id/root = %q/%q, want %q", trace.ID, trace.Root.Name, id)
	}
	if len(trace.Root.Children) != 1 || trace.Root.Children[0].Name != "experiment/fig2" {
		t.Fatalf("root children = %+v, want one experiment/fig2 span", trace.Root.Children)
	}
	nodes := trace.Root.Children[0].Children
	if len(nodes) != 4 {
		t.Errorf("fig2 recorded %d node phase spans, want 4", len(nodes))
	}
	for _, n := range nodes {
		if !strings.HasPrefix(n.Name, "node/") {
			t.Errorf("unexpected phase span %q", n.Name)
		}
	}
	if trace.Root.DurationMS <= 0 {
		t.Errorf("root duration %v", trace.Root.DurationMS)
	}

	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/debug/trace/unknown", nil); code != http.StatusNotFound {
		t.Errorf("unknown trace: status %d, want 404", code)
	}
	_ = fmt.Sprint() // keep fmt imported if assertions change
}
