package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	s := newServer(2, 16, 32, nil)
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() {
		ts.Close()
		s.close()
	})
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any) (int, map[string]any) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decoding response: %v", method, url, err)
	}
	return resp.StatusCode, out
}

// pollDone polls GET /v1/jobs/{id} until the job is terminal.
func pollDone(t *testing.T, base, id string, timeout time.Duration) map[string]any {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		code, job := doJSON(t, http.MethodGet, base+"/v1/jobs/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("GET job: status %d (%v)", code, job)
		}
		switch job["state"] {
		case "done", "failed", "cancelled":
			return job
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s not terminal after %v", id, timeout)
	return nil
}

// metric reads one scalar from the legacy expvar dump.
func metric(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics/expvar")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	v, _ := vars[name].(float64)
	return v
}

// tinyFig4 is a fast but real fig4 configuration for end-to-end tests.
var tinyFig4 = map[string]any{
	"experiment": "fig4",
	"config": map[string]any{
		"seed": 12345, "circuit_samples": 50, "chip_samples": 120, "search_samples": 50,
	},
}

func TestListExperiments(t *testing.T) {
	_, ts := newTestServer(t)
	code, out := doJSON(t, http.MethodGet, ts.URL+"/v1/experiments", nil)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	objs, _ := out["experiments"].([]any)
	found := false
	for _, item := range objs {
		obj, _ := item.(map[string]any)
		if obj["id"] != "fig4" {
			continue
		}
		found = true
		if obj["kind"] != "architecture" {
			t.Errorf("fig4 kind = %v", obj["kind"])
		}
		if desc, _ := obj["description"].(string); desc == "" {
			t.Error("fig4 has no description")
		}
		if n, _ := obj["default_samples"].(float64); n <= 0 {
			t.Errorf("fig4 default_samples = %v", obj["default_samples"])
		}
	}
	if !found {
		t.Errorf("fig4 missing from %v", objs)
	}

	// The bare-id listing under ?format=ids — deprecated since revision
	// 4 — is retired: it now answers the typed deprecated_parameter
	// envelope instead of data.
	code, out = doJSON(t, http.MethodGet, ts.URL+"/v1/experiments?format=ids", nil)
	if code != http.StatusBadRequest {
		t.Fatalf("format=ids: status %d, want 400 (parameter retired)", code)
	}
	if got := errCode(out); got != "deprecated_parameter" {
		t.Errorf("format=ids error code %q, want deprecated_parameter", got)
	}
}

// TestSubmitRunCacheHit is the acceptance walkthrough: POST a fig4 job,
// watch it complete with a structured result, then repeat the identical
// request and require an immediate cache hit visible in /metrics.
func TestSubmitRunCacheHit(t *testing.T) {
	_, ts := newTestServer(t)
	hitsBefore := metric(t, ts.URL, "ntvsimd_cache_hits")

	code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", tinyFig4)
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d (%v)", code, out)
	}
	id, _ := out["id"].(string)
	if id == "" || out["state"] != "queued" {
		t.Fatalf("POST response %v", out)
	}

	job := pollDone(t, ts.URL, id, 2*time.Minute)
	if job["state"] != "done" {
		t.Fatalf("job finished as %v: %v", job["state"], job["error"])
	}
	res, _ := job["result"].(map[string]any)
	if res == nil || res["id"] != "fig4" {
		t.Fatalf("result payload %v", job["result"])
	}
	if render, _ := res["render"].(string); len(render) < 100 {
		t.Errorf("render implausibly short: %q", render)
	}
	if res["data"] == nil {
		t.Error("fig4 result missing structured data")
	}

	// Identical request → served from cache, no new job.
	code, out = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", tinyFig4)
	if code != http.StatusOK {
		t.Fatalf("repeat POST: status %d (%v)", code, out)
	}
	if out["cached"] != true || out["state"] != "done" || out["result"] == nil {
		t.Fatalf("repeat POST not a cache hit: %v", out)
	}
	if hits := metric(t, ts.URL, "ntvsimd_cache_hits"); hits <= hitsBefore {
		t.Errorf("cache hits %v not above baseline %v", hits, hitsBefore)
	}
	if metric(t, ts.URL, "ntvsimd_mc_samples_evaluated") == 0 {
		t.Error("MC sample gauge never moved")
	}
}

// TestCancelStopsWork submits a fig4 run sized to take minutes, cancels
// it immediately, and requires the job to finalize as cancelled within
// seconds — which can only happen if cancellation reaches the
// Monte-Carlo loops.
func TestCancelStopsWork(t *testing.T) {
	_, ts := newTestServer(t)
	code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", map[string]any{
		"experiment": "fig4",
		"config":     map[string]any{"seed": 777, "chip_samples": 30_000_000},
	})
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d (%v)", code, out)
	}
	id, _ := out["id"].(string)

	// Let it leave the queue so we exercise mid-run cancellation.
	time.Sleep(150 * time.Millisecond)
	code, out = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs/"+id+"/cancel", nil)
	if code != http.StatusOK {
		t.Fatalf("cancel: status %d (%v)", code, out)
	}

	start := time.Now()
	job := pollDone(t, ts.URL, id, 30*time.Second)
	if job["state"] != "cancelled" {
		t.Fatalf("state %v after cancel", job["state"])
	}
	if waited := time.Since(start); waited > 15*time.Second {
		t.Errorf("cancellation took %v; Monte-Carlo work did not stop", waited)
	}

	// Cancelling a finished job is a conflict.
	if code, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs/"+id+"/cancel", nil); code != http.StatusConflict {
		t.Errorf("second cancel: status %d, want 409", code)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name     string
		body     any
		want     int
		wantCode string
	}{
		{"unknown experiment", map[string]any{"experiment": "fig99"}, http.StatusBadRequest, "unknown_experiment"},
		{"missing experiment", map[string]any{}, http.StatusBadRequest, "invalid_body"},
		{"negative samples", map[string]any{
			"experiment": "fig4",
			"config":     map[string]any{"chip_samples": -5},
		}, http.StatusBadRequest, "invalid_config"},
	}
	for _, tc := range cases {
		if code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", tc.body); code != tc.want {
			t.Errorf("%s: status %d (%v), want %d", tc.name, code, out, tc.want)
		} else if got := errCode(out); got != tc.wantCode {
			t.Errorf("%s: error code %q, want %q", tc.name, got, tc.wantCode)
		}
	}

	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/jobs/deadbeef", nil); code != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", code)
	}
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs/deadbeef/cancel", nil); code != http.StatusNotFound {
		t.Errorf("cancel unknown job: status %d, want 404", code)
	}
}

func TestJobListing(t *testing.T) {
	_, ts := newTestServer(t)
	code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", map[string]any{
		"experiment": "fig1", "quick": true,
		"config": map[string]any{"seed": 4242, "circuit_samples": 60},
	})
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d (%v)", code, out)
	}
	id, _ := out["id"].(string)
	pollDone(t, ts.URL, id, 2*time.Minute)

	code, out = doJSON(t, http.MethodGet, ts.URL+"/v1/jobs", nil)
	if code != http.StatusOK {
		t.Fatalf("GET /v1/jobs: status %d", code)
	}
	list, _ := out["jobs"].([]any)
	found := false
	for _, item := range list {
		j, _ := item.(map[string]any)
		if j["id"] == id {
			found = true
			if j["experiment"] != "fig1" {
				t.Errorf("listed experiment = %v", j["experiment"])
			}
		}
	}
	if !found {
		t.Errorf("job %s missing from listing %v", id, list)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t)
	code, out := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil)
	if code != http.StatusOK || out["ok"] != true {
		t.Errorf("healthz = %d %v", code, out)
	}
}

func TestDebugMux(t *testing.T) {
	ts := httptest.NewServer(debugMux())
	defer ts.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/vars", "/debug/pprof/cmdline"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
}

// TestQueueFullMapsTo503 fills a tiny pool with long jobs and expects
// the next submission to be rejected with 503.
func TestQueueFullMapsTo503(t *testing.T) {
	s := newServer(1, 1, 8, nil)
	ts := httptest.NewServer(s.handler())
	defer func() {
		ts.Close()
		s.close()
	}()
	big := func(seed int) map[string]any {
		return map[string]any{
			"experiment": "fig4",
			"config":     map[string]any{"seed": seed, "chip_samples": 30_000_000},
		}
	}
	ids := []string{}
	saw503 := false
	for i := 1; i <= 4; i++ {
		code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", big(i))
		switch code {
		case http.StatusAccepted:
			ids = append(ids, out["id"].(string))
		case http.StatusServiceUnavailable:
			saw503 = true
		default:
			t.Fatalf("POST %d: status %d (%v)", i, code, out)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !saw503 {
		t.Error("queue never reported full")
	}
	for _, id := range ids {
		doJSON(t, http.MethodPost, fmt.Sprintf("%s/v1/jobs/%s/cancel", ts.URL, id), nil)
	}
	for _, id := range ids {
		pollDone(t, ts.URL, id, 30*time.Second)
	}
}

func TestListKernels(t *testing.T) {
	_, ts := newTestServer(t)
	code, out := doJSON(t, http.MethodGet, ts.URL+"/v1/kernels", nil)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	objs, _ := out["kernels"].([]any)
	byID := map[string]map[string]any{}
	for _, item := range objs {
		obj, _ := item.(map[string]any)
		id, _ := obj["id"].(string)
		byID[id] = obj
	}
	for _, id := range []string{"chain3sigma", "p99chipclock", "p99chipclock_is", "tailyield", "yield_is"} {
		if byID[id] == nil {
			t.Fatalf("kernel %q missing from %v", id, objs)
		}
	}
	if s, _ := byID["yield_is"]["sampler"].(string); s != "is" {
		t.Errorf("yield_is sampler = %v", byID["yield_is"]["sampler"])
	}
	if tw, _ := byID["yield_is"]["twin"].(string); tw != "tailyield" {
		t.Errorf("yield_is twin = %v", byID["yield_is"]["twin"])
	}
	if tw, _ := byID["tailyield"]["twin"].(string); tw != "yield_is" {
		t.Errorf("tailyield twin = %v", byID["tailyield"]["twin"])
	}
	if s, _ := byID["chain3sigma"]["sampler"].(string); s != "mc" {
		t.Errorf("chain3sigma sampler = %v", byID["chain3sigma"]["sampler"])
	}
	if desc, _ := byID["p99chipclock_is"]["description"].(string); desc == "" {
		t.Error("p99chipclock_is has no description")
	}
}
