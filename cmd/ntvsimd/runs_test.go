package main

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// newLedgerServer builds a server recording into a fresh temp data dir
// and serves it over httptest. The dir is returned so restart tests can
// reopen the same ledger.
func newLedgerServer(t *testing.T, dir string) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServerWith(serverConfig{
		workers: 2, queueDepth: 16, cacheSize: 32, dataDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.handler())
	t.Cleanup(func() {
		ts.Close()
		s.close()
	})
	return s, ts
}

// pollRunTotal polls GET /v1/runs until the (filtered) total reaches
// want — the ledger append runs concurrently with the job's terminal
// HTTP state, so records land moments after pollDone returns.
func pollRunTotal(t *testing.T, base, query string, want float64) map[string]any {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, out := doJSON(t, http.MethodGet, base+"/v1/runs"+query, nil)
		if code != http.StatusOK {
			t.Fatalf("GET /v1/runs%s: status %d (%v)", query, code, out)
		}
		if total, _ := out["total"].(float64); total >= want {
			return out
		}
		if time.Now().After(deadline) {
			t.Fatalf("run ledger never reached %v records: %v", want, out)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunLedgerEndToEnd drives the durable-provenance walkthrough: a
// job completes, its run record shows up on /v1/runs with spec hash,
// seed, build revision, duration and sample count; the full record (and
// its persisted trace) is served by id; and all of it survives a
// restart of the daemon on the same data dir — including trace export
// after the in-memory ring is gone.
func TestRunLedgerEndToEnd(t *testing.T) {
	dir := t.TempDir()
	s, ts := newLedgerServer(t, dir)

	code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", tinyFig4)
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d (%v)", code, out)
	}
	id, _ := out["id"].(string)
	job := pollDone(t, ts.URL, id, 2*time.Minute)
	if job["state"] != "done" {
		t.Fatalf("job finished as %v: %v", job["state"], job["error"])
	}

	// Listing: elided fields stay off the wire, provenance fields do not.
	listing := pollRunTotal(t, ts.URL, "", 1)
	runs, _ := listing["runs"].([]any)
	if len(runs) != 1 {
		t.Fatalf("listing has %d runs: %v", len(runs), listing)
	}
	entry, _ := runs[0].(map[string]any)
	if entry["run_id"] != id || entry["kind"] != "job" || entry["name"] != "fig4" {
		t.Errorf("listing entry identity: %v", entry)
	}
	if entry["state"] != "done" {
		t.Errorf("listing state = %v", entry["state"])
	}
	hash, _ := entry["spec_hash"].(string)
	if hash == "" {
		t.Error("listing entry has no spec_hash")
	}
	if seed, _ := entry["seed"].(float64); seed != 12345 {
		t.Errorf("listing seed = %v, want 12345", entry["seed"])
	}
	if entry["spec"] != nil || entry["shards"] != nil || entry["trace"] != nil {
		t.Errorf("listing entry leaks heavy fields: %v", entry)
	}
	build, _ := entry["build"].(map[string]any)
	if build == nil || build["go"] == "" {
		t.Errorf("listing entry build info: %v", entry["build"])
	}

	// Full record by id: resolved spec, timings, samples, span tree.
	code, rec := doJSON(t, http.MethodGet, ts.URL+"/v1/runs/"+id, nil)
	if code != http.StatusOK {
		t.Fatalf("GET run: status %d (%v)", code, rec)
	}
	if rec["schema"] != "ntvsim.run/v1" {
		t.Errorf("schema = %v", rec["schema"])
	}
	spec, _ := rec["spec"].(map[string]any)
	if spec == nil || spec["seed"].(float64) != 12345 {
		t.Errorf("recorded spec: %v", rec["spec"])
	}
	if ms, _ := rec["duration_ms"].(float64); ms <= 0 {
		t.Errorf("duration_ms = %v", rec["duration_ms"])
	}
	if n, _ := rec["samples"].(float64); n <= 0 {
		t.Errorf("samples = %v", rec["samples"])
	}
	trace, _ := rec["trace"].(map[string]any)
	if trace == nil {
		t.Fatal("record has no persisted trace")
	}

	// Restart: a second server on the same data dir replays the ledger.
	ts.Close()
	s.close()
	s2, ts2 := newLedgerServer(t, dir)
	if s2.ledger.Len() != 1 {
		t.Fatalf("replayed %d records, want 1", s2.ledger.Len())
	}
	code, rec2 := doJSON(t, http.MethodGet, ts2.URL+"/v1/runs/"+id, nil)
	if code != http.StatusOK {
		t.Fatalf("GET run after restart: status %d (%v)", code, rec2)
	}
	if rec2["spec_hash"] != hash || rec2["seed"].(float64) != 12345 {
		t.Errorf("replayed record lost provenance: hash=%v seed=%v", rec2["spec_hash"], rec2["seed"])
	}

	// Trace export after restart: the new ring has never seen this job,
	// so /debug/trace must fall back to the ledger copy — and render it
	// as Chrome trace-event JSON Perfetto accepts.
	code, chrome := doJSON(t, http.MethodGet, ts2.URL+"/debug/trace/"+id+"?format=chrome", nil)
	if code != http.StatusOK {
		t.Fatalf("chrome export after restart: status %d (%v)", code, chrome)
	}
	if chrome["displayTimeUnit"] != "ms" {
		t.Errorf("displayTimeUnit = %v", chrome["displayTimeUnit"])
	}
	events, ok := chrome["traceEvents"].([]any)
	if !ok || len(events) == 0 {
		t.Fatalf("traceEvents = %v", chrome["traceEvents"])
	}
	ev0, _ := events[0].(map[string]any)
	if ev0["ph"] != "X" || ev0["pid"].(float64) != 1 {
		t.Errorf("event shape: %v", ev0)
	}
}

// TestRunLedgerSweepRecord checks the one-record-per-sweep shape: shard
// provenance with derived per-point seeds, samples summed over computed
// shards, the kind/experiment filters, and the sweep-rooted span tree.
func TestRunLedgerSweepRecord(t *testing.T) {
	_, ts := newLedgerServer(t, t.TempDir())

	code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", tinySweep)
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d (%v)", code, out)
	}
	id, _ := out["id"].(string)
	sw := pollSweepDone(t, ts.URL, id, 2*time.Minute)
	if sw["state"] != "done" {
		t.Fatalf("sweep finished as %v", sw["state"])
	}

	listing := pollRunTotal(t, ts.URL, "?kind=sweep", 1)
	runs, _ := listing["runs"].([]any)
	entry, _ := runs[0].(map[string]any)
	if entry["run_id"] != id || entry["kind"] != "sweep" || entry["name"] != "chain3sigma" {
		t.Errorf("sweep listing entry: %v", entry)
	}

	// The experiment filter matches the kernel id for sweep records.
	filtered := pollRunTotal(t, ts.URL, "?experiment=chain3sigma", 1)
	if filtered["total"].(float64) != 1 {
		t.Errorf("experiment filter total = %v", filtered["total"])
	}
	if code, out := doJSON(t, http.MethodGet, ts.URL+"/v1/runs?kind=banana", nil); code != http.StatusBadRequest || errCode(out) != "invalid_query" {
		t.Errorf("kind=banana: %d %v", code, out)
	}

	code, rec := doJSON(t, http.MethodGet, ts.URL+"/v1/runs/"+id, nil)
	if code != http.StatusOK {
		t.Fatalf("GET sweep run: status %d", code)
	}
	if rec["seed"].(float64) != 20120603 {
		t.Errorf("sweep seed = %v", rec["seed"])
	}
	shards, _ := rec["shards"].([]any)
	if len(shards) != 3 {
		t.Fatalf("%d shard records, want 3", len(shards))
	}
	for _, item := range shards {
		shard, _ := item.(map[string]any)
		if shard["state"] != "done" {
			t.Errorf("shard %v state %v", shard["index"], shard["state"])
		}
		if seed, _ := shard["seed"].(float64); seed == 0 {
			t.Errorf("shard %v has no derived seed", shard["index"])
		}
		if jid, _ := shard["job_id"].(string); jid == "" {
			t.Errorf("shard %v has no job id", shard["index"])
		}
	}
	// 3 computed shards × 150 samples each.
	if n, _ := rec["samples"].(float64); n != 450 {
		t.Errorf("samples = %v, want 450", rec["samples"])
	}
	// The persisted trace is sweep-rooted: one tree whose root carries
	// the sweep id, with every shard span nested beneath it.
	trace, _ := rec["trace"].(map[string]any)
	if trace == nil {
		t.Fatal("sweep record has no trace")
	}
	root, _ := trace["root"].(map[string]any)
	if root == nil || root["name"] != id {
		t.Fatalf("trace root = %v, want span named %s", root, id)
	}
	children, _ := root["children"].([]any)
	shardSpans := 0
	for _, item := range children {
		child, _ := item.(map[string]any)
		if name, _ := child["name"].(string); strings.HasPrefix(name, "sweep/"+id+"/shard/") {
			shardSpans++
		}
	}
	if shardSpans != 3 {
		t.Errorf("%d shard spans under the sweep root, want 3", shardSpans)
	}
}

// TestRunLedgerProfileCapture opts one submission into profiling and
// expects pprof files on disk next to the ledger, listed in the record.
func TestRunLedgerProfileCapture(t *testing.T) {
	dir := t.TempDir()
	_, ts := newLedgerServer(t, dir)

	body := map[string]any{
		"experiment": "fig4",
		"config": map[string]any{
			"seed": 12345, "circuit_samples": 50, "chip_samples": 120, "search_samples": 50,
		},
		"profile": true,
	}
	code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", body)
	if code != http.StatusAccepted {
		t.Fatalf("POST: status %d (%v)", code, out)
	}
	id, _ := out["id"].(string)
	pollDone(t, ts.URL, id, 2*time.Minute)
	pollRunTotal(t, ts.URL, "", 1)

	code, rec := doJSON(t, http.MethodGet, ts.URL+"/v1/runs/"+id, nil)
	if code != http.StatusOK {
		t.Fatalf("GET run: status %d", code)
	}
	profiles, _ := rec["profiles"].([]any)
	if len(profiles) == 0 {
		t.Fatal("record lists no profiles")
	}
	sawHeap := false
	for _, item := range profiles {
		rel, _ := item.(string)
		if strings.HasSuffix(rel, ".heap.pprof") {
			sawHeap = true
		}
		info, err := os.Stat(filepath.Join(dir, rel))
		if err != nil {
			t.Errorf("profile %s: %v", rel, err)
		} else if info.Size() == 0 {
			t.Errorf("profile %s is empty", rel)
		}
	}
	if !sawHeap {
		t.Errorf("no heap profile among %v", profiles)
	}
}

// TestTraceQueuedJobTyped pins the job_not_started envelope: a job that
// has not left the queue has no trace yet, and the API says so rather
// than claiming the id is unknown.
func TestTraceQueuedJobTyped(t *testing.T) {
	s := newServer(1, 4, 8, nil)
	ts := httptest.NewServer(s.handler())
	defer func() {
		ts.Close()
		s.close()
	}()

	release := make(chan struct{})
	blocker := func(ctx context.Context) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}
	if _, err := s.jobs.Submit("blocker", blocker); err != nil {
		t.Fatal(err)
	}
	queued, err := s.jobs.Submit("queued", func(ctx context.Context) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}

	code, out := doJSON(t, http.MethodGet, ts.URL+"/debug/trace/"+queued, nil)
	if code != http.StatusNotFound || errCode(out) != "job_not_started" {
		t.Errorf("queued trace: %d %v", code, out)
	}
	close(release)
	pollDone(t, ts.URL, queued, 30*time.Second)
}

// TestLedgerDisabledEnvelopes pins the typed refusals of a daemon run
// without -data-dir: /v1/runs is a ledger_disabled 404 and profile
// submissions are rejected up front.
func TestLedgerDisabledEnvelopes(t *testing.T) {
	_, ts := newTestServer(t)

	for _, path := range []string{"/v1/runs", "/v1/runs/deadbeef"} {
		code, out := doJSON(t, http.MethodGet, ts.URL+path, nil)
		if code != http.StatusNotFound || errCode(out) != "ledger_disabled" {
			t.Errorf("GET %s: %d %v", path, code, out)
		}
	}
	code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", map[string]any{
		"experiment": "fig4", "quick": true, "profile": true,
	})
	if code != http.StatusBadRequest || errCode(out) != "profiling_disabled" {
		t.Errorf("profile without ledger: %d %v", code, out)
	}
}

// TestRunNotFound pins run_not_found on a live (but empty) ledger.
func TestRunNotFound(t *testing.T) {
	_, ts := newLedgerServer(t, t.TempDir())
	code, out := doJSON(t, http.MethodGet, ts.URL+"/v1/runs/deadbeef", nil)
	if code != http.StatusNotFound || errCode(out) != "run_not_found" {
		t.Errorf("unknown run: %d %v", code, out)
	}
}
