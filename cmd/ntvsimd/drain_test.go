package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/ntvsim/ntvsim/internal/faults"
	"github.com/ntvsim/ntvsim/internal/jobs"
)

// TestDrainLifecycle is the drain acceptance test: with a job in
// flight, starting the drain flips /healthz to "draining", new job and
// sweep submissions get the typed 503 shutting_down envelope, the
// ntvsim_jobs_draining gauge reports the in-flight work — and the job
// still runs to completion before drain returns.
func TestDrainLifecycle(t *testing.T) {
	s := newServer(2, 16, 32, nil)
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	// An in-flight job, gated so it is mid-run for the whole test.
	release := make(chan struct{})
	jobID, err := s.jobs.Submit("gated", func(ctx context.Context) (any, error) {
		select {
		case <-release:
			return "finished", nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	// Healthy before the signal.
	var health map[string]any
	if code, _ := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz status %d", code)
	}
	if health["ok"] != true || health["status"] != "ok" {
		t.Fatalf("pre-drain healthz = %v", health)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		drained <- s.drain(ctx)
	}()
	waitFor(t, 5*time.Second, "server to start draining", func() bool { return s.draining.Load() })

	// The health state machine reports draining.
	if code, _ := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Fatalf("healthz status %d during drain", code)
	}
	if health["ok"] != false || health["status"] != "draining" {
		t.Fatalf("draining healthz = %v", health)
	}

	// New submissions — jobs and sweeps — get the typed 503 envelope.
	for path, body := range map[string]map[string]any{
		"/v1/jobs":   {"experiment": "fig2", "quick": true},
		"/v1/sweeps": {"metric": "chain3sigma", "samples": []int{50}},
	} {
		code, out := doJSON(t, http.MethodPost, ts.URL+path, body)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("POST %s during drain: status %d (%v)", path, code, out)
		}
		envelope, _ := out["error"].(map[string]any)
		if envelope["code"] != codeShuttingDown {
			t.Fatalf("POST %s during drain: error %v, want code %q", path, out, codeShuttingDown)
		}
	}

	// The drain gauge counts the in-flight job on /metrics.
	metrics := getText(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, "ntvsim_jobs_draining 1") {
		t.Fatalf("metrics during drain lack ntvsim_jobs_draining 1:\n%s",
			grepMetrics(metrics, "ntvsim_jobs"))
	}

	// The in-flight job finishes gracefully; only then does drain return.
	select {
	case err := <-drained:
		t.Fatalf("drain returned (%v) while the job was still gated", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("drain never returned after the job was released")
	}
	snap, _ := s.jobs.Get(jobID)
	if snap.State != jobs.Done {
		t.Fatalf("in-flight job drained as %s, want done", snap.State)
	}
	if !strings.Contains(getText(t, ts.URL+"/metrics"), "ntvsim_jobs_draining 0") {
		t.Fatal("drain gauge did not return to 0 after the drain")
	}
}

// TestSweepFailureBudgetSSE is the satellite SSE test: a sweep that
// fails via the failure budget still emits a terminal done event, and
// that event carries the golden shard_failed envelope. The single
// worker makes shard 0 the deterministic first failure.
func TestSweepFailureBudgetSSE(t *testing.T) {
	s := newServer(1, 16, 32, nil)
	in := faults.New(1, faults.Rule{
		Site: faults.SiteSweepShard, Kind: faults.KindError,
		Permanent: true, Times: 1 << 30,
	})
	s.base = faults.With(context.Background(), in)
	ts := httptest.NewServer(s.handler())
	defer func() {
		ts.Close()
		s.close()
	}()

	code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", map[string]any{
		"metric":            "chain3sigma",
		"nodes":             []string{"22nm PTM HP"},
		"vdd":               map[string]float64{"from": 0.5, "to": 0.6, "step": 0.05},
		"samples":           []int{50},
		"seed":              7,
		"max_shard_retries": -1,
	})
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/sweeps: status %d (%v)", code, out)
	}
	id, _ := out["id"].(string)

	resp, err := http.Get(ts.URL + "/v1/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sawDone := false
	readSSE(t, resp.Body, 1000, func(ev sseEvent) bool {
		if ev.name != "done" {
			return false
		}
		sawDone = true
		if ev.data["state"] != "failed" {
			t.Fatalf("done event state %v, want failed", ev.data["state"])
		}
		envelope, _ := ev.data["error"].(map[string]any)
		if envelope == nil {
			t.Fatalf("done event has no error envelope: %v", ev.data)
		}
		// Golden: stable code, deterministic message (shard 0 is the
		// single worker's first evaluation, so it trips injector call 1).
		wantJSON := `{"code":"shard_failed","message":"shard 0: faults: injected error at sweep.shard (call 1)"}`
		gotJSON, err := json.Marshal(envelope)
		if err != nil {
			t.Fatal(err)
		}
		if string(gotJSON) != wantJSON {
			t.Fatalf("shard_failed envelope:\n got %s\nwant %s", gotJSON, wantJSON)
		}
		return true
	})
	if !sawDone {
		t.Fatal("SSE stream closed without a done event")
	}

	// The unary GET carries the same typed envelope.
	var sweepOut map[string]any
	if code, _ := getJSON(t, ts.URL+"/v1/sweeps/"+id, &sweepOut); code != http.StatusOK {
		t.Fatalf("GET sweep: status %d", code)
	}
	envelope, _ := sweepOut["error"].(map[string]any)
	if envelope == nil || envelope["code"] != codeShardFailed {
		t.Fatalf("GET sweep error envelope = %v, want code %q", sweepOut["error"], codeShardFailed)
	}
}

// TestJobPanicSurfacesStack submits a job whose sampling loop panics by
// injection: it must finalize failed with the stack visible on the
// single-job GET and elided from the listing.
func TestJobPanicSurfacesStack(t *testing.T) {
	s := newServer(1, 16, 32, nil)
	in := faults.New(1, faults.Rule{Site: faults.SiteMonteCarloChunk, Kind: faults.KindPanic})
	s.base = faults.With(context.Background(), in)
	ts := httptest.NewServer(s.handler())
	defer func() {
		ts.Close()
		s.close()
	}()

	code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", map[string]any{
		"experiment": "fig2", "quick": true,
	})
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: status %d (%v)", code, out)
	}
	id, _ := out["id"].(string)
	job := pollDone(t, ts.URL, id, 60*time.Second)
	if job["state"] != "failed" {
		t.Fatalf("panicked job state %v, want failed", job["state"])
	}
	errMsg, _ := job["error"].(string)
	if !strings.Contains(errMsg, "faults: injected panic at montecarlo.chunk") {
		t.Fatalf("job error %q does not name the injected panic", errMsg)
	}
	stack, _ := job["stack"].(string)
	if !strings.Contains(stack, "goroutine") {
		t.Fatalf("single-job GET carries no stack: %q", stack)
	}

	var listing map[string]any
	if code, _ := getJSON(t, ts.URL+"/v1/jobs?state=failed", &listing); code != http.StatusOK {
		t.Fatalf("GET /v1/jobs: status %d", code)
	}
	jobsList, _ := listing["jobs"].([]any)
	if len(jobsList) == 0 {
		t.Fatal("failed job missing from the listing")
	}
	if entry, _ := jobsList[0].(map[string]any); entry["stack"] != nil {
		t.Fatalf("listing leaks the panic stack: %v", entry["stack"])
	}
}

// TestJobRetryOverHTTP exercises the max_retries submit knob end to
// end: the first attempt dies in the injected fault, the retry
// succeeds, and the payload reports both attempts.
func TestJobRetryOverHTTP(t *testing.T) {
	s := newServer(1, 16, 32, nil)
	s.jobs.SetBackoff(jobs.Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Seed: 1})
	in := faults.New(1, faults.Rule{Site: faults.SiteJobAttempt, Kind: faults.KindError})
	s.base = faults.With(context.Background(), in)
	ts := httptest.NewServer(s.handler())
	defer func() {
		ts.Close()
		s.close()
	}()

	code, out := doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", map[string]any{
		"experiment": "fig2", "quick": true, "max_retries": 2,
	})
	if code != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: status %d (%v)", code, out)
	}
	id, _ := out["id"].(string)
	job := pollDone(t, ts.URL, id, 60*time.Second)
	if job["state"] != "done" {
		t.Fatalf("retried job state %v (%v), want done", job["state"], job["error"])
	}
	if attempts, _ := job["attempts"].(float64); attempts != 2 {
		t.Fatalf("attempts = %v, want 2", job["attempts"])
	}
	if !strings.Contains(getText(t, ts.URL+"/metrics"), "ntvsim_job_retries_total 1") {
		t.Fatal("ntvsim_job_retries_total did not count the retry")
	}

	// Negative knobs are rejected with the typed invalid_body envelope.
	code, out = doJSON(t, http.MethodPost, ts.URL+"/v1/jobs", map[string]any{
		"experiment": "fig2", "quick": true, "max_retries": -1,
	})
	envelope, _ := out["error"].(map[string]any)
	if code != http.StatusBadRequest || envelope["code"] != codeInvalidBody {
		t.Fatalf("negative max_retries: status %d, error %v", code, out)
	}
}

// getJSON decodes a GET response body into out and returns the status.
func getJSON(t *testing.T, url string, out *map[string]any) (int, error) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
	return resp.StatusCode, nil
}

// getText fetches a URL's body as a string (the /metrics exposition).
func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// grepMetrics filters an exposition down to lines containing substr,
// for readable failure messages.
func grepMetrics(metrics, substr string) string {
	var out []string
	for _, line := range strings.Split(metrics, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
