// Command sodarun executes a signal-processing kernel on the Diet SODA
// processing-element simulator, optionally injecting variation-induced
// timing errors with a chosen recovery policy, and prints execution
// statistics.
//
// Usage:
//
//	sodarun [-kernel fir|dot|ycbcr|colsum|scale|fft|stridedsum] [-errp P]
//	        [-policy stall|flush|decoupled] [-ratio N] [-seed N]
//	sodarun -prog file.s [-dump row]
//
// -ratio sets T_simd/T_mem, the integer clock ratio between the
// near-threshold SIMD domain and the full-voltage memory domain.
// -prog assembles and runs a raw program (see soda.Assemble for the
// syntax) instead of a built-in kernel; -dump prints a memory row
// afterwards.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ntvsim/ntvsim/internal/rng"
	"github.com/ntvsim/ntvsim/internal/soda"
	"github.com/ntvsim/ntvsim/internal/timingerr"
)

func buildKernel(name string, r *rng.Stream) (soda.Kernel, error) {
	vec := func(n int) []uint16 {
		out := make([]uint16, n)
		for i := range out {
			out[i] = uint16(r.IntN(1 << 12))
		}
		return out
	}
	switch name {
	case "fft":
		re := make([]int16, soda.Lanes)
		im := make([]int16, soda.Lanes)
		for i := range re {
			re[i] = int16(r.IntN(7) - 3)
			im[i] = int16(r.IntN(7) - 3)
		}
		return soda.FFTKernel(re, im), nil
	case "stridedsum":
		return soda.StridedSumKernel(vec(4*soda.Lanes), 4, 2), nil
	case "fir":
		return soda.FIRKernel(vec(soda.Lanes), []int16{3, -1, 4, 1, -5, 9, 2, -6}), nil
	case "dot":
		return soda.DotProductKernel(vec(16*soda.Lanes), vec(16*soda.Lanes)), nil
	case "ycbcr":
		return soda.RGBToYCbCrKernel(vec(soda.Lanes), vec(soda.Lanes), vec(soda.Lanes)), nil
	case "colsum":
		return soda.ColumnSumKernel(vec(32*soda.Lanes), 32, 64), nil
	case "scale":
		return soda.ScaleAddKernel(vec(soda.Lanes), vec(soda.Lanes), 17), nil
	default:
		return soda.Kernel{}, fmt.Errorf("unknown kernel %q (want fir, dot, ycbcr, colsum, scale, fft, stridedsum)", name)
	}
}

func main() {
	kernelName := flag.String("kernel", "fir", "kernel to run: fir, dot, ycbcr, colsum, scale, fft, stridedsum")
	progFile := flag.String("prog", "", "assemble and run this program file instead of a kernel")
	dumpRow := flag.Int("dump", -1, "with -prog: print this memory row after the run")
	errP := flag.Float64("errp", 0, "per-lane per-op timing-error probability")
	policy := flag.String("policy", "stall", "error recovery policy: stall, flush, decoupled")
	ratio := flag.Int("ratio", 1, "SIMD/memory clock ratio (T_simd = ratio × T_mem)")
	pipeDepth := flag.Int("pipe", 0, "model an N-stage SIMD pipeline with RAW hazard stalls (0: off)")
	forward := flag.Int("forward", -1, "pipeline forwarding stage (-1: full forwarding)")
	trace := flag.Bool("trace", false, "print one line per executed instruction")
	seed := flag.Uint64("seed", 1, "input-data and error-injection seed")
	flag.Parse()

	r := rng.New(*seed)

	var kernel soda.Kernel
	if *progFile != "" {
		src, err := os.ReadFile(*progFile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sodarun: %v\n", err)
			os.Exit(2)
		}
		prog, err := soda.Assemble(string(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "sodarun: %v\n", err)
			os.Exit(2)
		}
		kernel = soda.Kernel{
			Name:    *progFile,
			Program: prog,
			Setup:   func(*soda.PE) error { return nil },
			Check:   func(*soda.PE) error { return nil },
		}
	} else {
		k, err := buildKernel(*kernelName, r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sodarun: %v\n", err)
			os.Exit(2)
		}
		kernel = k
	}

	pe := soda.NewPE()
	pe.Clock = soda.ClockConfig{MemLatency: 2, ClockRatio: *ratio}
	if *pipeDepth > 0 {
		pipe := soda.NewPipeline(*pipeDepth)
		if *forward >= 0 {
			pipe.ForwardStage = *forward
		}
		if err := pipe.Validate(); err != nil {
			fmt.Fprintf(os.Stderr, "sodarun: %v\n", err)
			os.Exit(2)
		}
		pe.Pipe = pipe
	}
	if *trace {
		pe.Trace = os.Stdout
	}
	if *errP > 0 {
		switch *policy {
		case "stall":
			pe.Err = timingerr.Stall{Lanes: soda.Lanes, P: *errP}
		case "flush":
			pe.Err = timingerr.FlushReplay{Lanes: soda.Lanes, P: *errP, Depth: 8}
		case "decoupled":
			pe.Err = timingerr.NewDecoupled(soda.Lanes, *errP, 2)
		default:
			fmt.Fprintf(os.Stderr, "sodarun: unknown policy %q\n", *policy)
			os.Exit(2)
		}
		pe.Rand = r.Split(1)
	}

	if err := soda.RunKernel(pe, kernel); err != nil {
		fmt.Fprintf(os.Stderr, "sodarun: %v\n", err)
		os.Exit(1)
	}

	if *progFile != "" && *dumpRow >= 0 {
		row := make([]uint16, soda.Lanes)
		if err := pe.Mem.ReadRow(*dumpRow, row); err != nil {
			fmt.Fprintf(os.Stderr, "sodarun: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("row %d: %v\n", *dumpRow, row)
	}

	s := pe.Stats
	verified := " (output verified against golden model)"
	if *progFile != "" {
		verified = ""
	}
	fmt.Printf("kernel %s: PASS%s\n", kernel.Name, verified)
	fmt.Printf("  cycles        %8d\n", s.Cycles)
	fmt.Printf("  instructions  %8d (IPC %.3f)\n", s.Instructions, s.IPC())
	fmt.Printf("  vector ops    %8d\n", s.VectorOps)
	fmt.Printf("  scalar ops    %8d\n", s.ScalarOps)
	fmt.Printf("  mem row ops   %8d (gather rows %d)\n", s.MemRowOps, s.GatherRows)
	fmt.Printf("  SSN routes    %8d\n", s.SSNRoutes)
	fmt.Printf("  adder tree    %8d\n", s.TreeOps)
	if pe.Pipe != nil {
		fmt.Printf("  hazard stalls %8d (depth %d, forward %d)\n",
			s.HazardStall, pe.Pipe.Depth, pe.Pipe.ForwardStage)
	}
	if pe.Err != nil {
		fmt.Printf("  policy %v: %d lane errors, %d recovery cycles (%.1f%% overhead)\n",
			pe.Err, s.TimingErrors, s.RecoveryStall,
			100*float64(s.RecoveryStall)/float64(s.Cycles-s.RecoveryStall))
	}
}
