package ntvsim

import (
	"fmt"
	"go/format"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The documentation is part of the contract, so it is linted like
// code: every fenced Go snippet must be gofmt-clean, and every
// relative markdown link must resolve to a file in the repository.
// CI runs these tests in the blocking docs-lint step.

// lintedDocs returns the markdown files under lint: the root documents
// and everything in docs/.
func lintedDocs(t *testing.T) []string {
	t.Helper()
	files := []string{
		"README.md", "DESIGN.md", "EXPERIMENTS.md",
		"PAPER.md", "ROADMAP.md", "CHANGES.md",
	}
	entries, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	return append(files, entries...)
}

// goFences extracts the bodies of ```go fenced blocks with their
// starting line numbers.
func goFences(src string) []struct {
	line int
	body string
} {
	var out []struct {
		line int
		body string
	}
	lines := strings.Split(src, "\n")
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```go" {
			continue
		}
		start := i + 1
		j := start
		for j < len(lines) && strings.TrimSpace(lines[j]) != "```" {
			j++
		}
		out = append(out, struct {
			line int
			body string
		}{line: start + 1, body: strings.Join(lines[start:j], "\n")})
		i = j
	}
	return out
}

// formatSnippet runs a doc snippet through go/format. Snippets may be
// a full file (package clause), declarations, or bare statements; the
// last two are wrapped the way godoc playground snippets are.
func formatSnippet(body string) error {
	trimmed := strings.TrimSpace(body)
	if trimmed == "" {
		return fmt.Errorf("empty go fence")
	}
	if strings.HasPrefix(trimmed, "package ") {
		return checkFormatted(body, body, "")
	}
	if strings.HasPrefix(trimmed, "func ") || strings.HasPrefix(trimmed, "type ") ||
		strings.HasPrefix(trimmed, "var ") || strings.HasPrefix(trimmed, "const ") ||
		strings.HasPrefix(trimmed, "import ") {
		return checkFormatted("package p\n\n"+body, body, "")
	}
	// Statement snippet: indent by one tab and wrap in a function.
	var b strings.Builder
	for _, ln := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if ln == "" {
			b.WriteString("\n")
			continue
		}
		b.WriteString("\t" + ln + "\n")
	}
	return checkFormatted("package p\n\nfunc _() {\n"+b.String()+"}\n", body, "\t")
}

// checkFormatted formats src and verifies the snippet portion came
// back unchanged (modulo the added indent), i.e. the snippet was
// already gofmt-styled.
func checkFormatted(src, snippet, indent string) error {
	formatted, err := format.Source([]byte(src))
	if err != nil {
		return err
	}
	want := strings.TrimSpace(snippet)
	got := string(formatted)
	if indent != "" {
		// Strip the wrapper indent from every line before comparing.
		var lines []string
		for _, ln := range strings.Split(got, "\n") {
			lines = append(lines, strings.TrimPrefix(ln, indent))
		}
		got = strings.Join(lines, "\n")
	}
	for _, ln := range strings.Split(want, "\n") {
		if !strings.Contains(got, ln) {
			return fmt.Errorf("not gofmt-clean at %q", ln)
		}
	}
	return nil
}

// TestDocsGoSnippetsFormatted runs every fenced ```go block in the
// linted documents through gofmt.
func TestDocsGoSnippetsFormatted(t *testing.T) {
	fences := 0
	for _, path := range lintedDocs(t) {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range goFences(string(src)) {
			fences++
			if err := formatSnippet(f.body); err != nil {
				t.Errorf("%s:%d: %v", path, f.line, err)
			}
		}
	}
	if fences == 0 {
		t.Fatal("no ```go fences found — lint extraction broken?")
	}
}

// mdLink matches inline markdown links; bare URLs and reference-style
// links are out of scope.
var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// TestDocsRelativeLinksResolve checks that every relative link in the
// linted documents points at an existing file.
func TestDocsRelativeLinksResolve(t *testing.T) {
	links := 0
	for _, path := range lintedDocs(t) {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		// Links inside fenced code blocks are examples, not references.
		stripped := regexp.MustCompile("(?s)```.*?```").ReplaceAllString(string(src), "")
		for _, m := range mdLink.FindAllStringSubmatch(stripped, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "#") ||
				strings.HasPrefix(target, "mailto:") {
				continue
			}
			target = strings.SplitN(target, "#", 2)[0]
			links++
			resolved := filepath.Join(filepath.Dir(path), target)
			if _, err := os.Stat(resolved); err != nil {
				t.Errorf("%s: broken link %q (resolved %s)", path, m[1], resolved)
			}
		}
	}
	if links == 0 {
		t.Fatal("no relative links found — lint extraction broken?")
	}
}
