// Package ntvsim's root benchmark harness regenerates every table and
// figure of the paper, one benchmark per artifact. Benchmarks run the
// same experiment constructors as cmd/ntvsim (which prints the full
// rows/series) at reduced Monte-Carlo depth so the whole suite completes
// in minutes; key reproduced quantities are attached as custom metrics.
//
//	go test -bench=. -benchmem
package ntvsim

import (
	"testing"

	"github.com/ntvsim/ntvsim/internal/experiments"
)

// benchConfig is sized so every artifact regenerates in ≈seconds while
// preserving the distribution shapes the metrics report.
func benchConfig() experiments.Config {
	return experiments.Config{
		Seed:           20120603,
		CircuitSamples: 250,
		ChipSamples:    600,
		SearchSamples:  600,
	}
}

// run executes the experiment b.N times and returns the last result.
func run(b *testing.B, id string) experiments.Result {
	b.Helper()
	var res experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Run(id, benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	return res
}

// BenchmarkFig1 regenerates Figure 1: gate and 50-FO4-chain delay
// distributions in 90 nm across 0.5–1.0 V.
func BenchmarkFig1(b *testing.B) {
	res := run(b, "fig1").(*experiments.Fig1Result)
	last := res.Rows[len(res.Rows)-1] // 0.5 V
	b.ReportMetric(last.Gate.ThreeSigmaOverMu(), "gate3σ/μ@0.5V%")
	b.ReportMetric(last.Chain.ThreeSigmaOverMu(), "chain3σ/μ@0.5V%")
}

// BenchmarkFig2 regenerates Figure 2: chain variation vs Vdd for four
// technology nodes.
func BenchmarkFig2(b *testing.B) {
	res := run(b, "fig2").(*experiments.Fig2Result)
	b.ReportMetric(res.Series[3].ThreeSig[0], "22nm3σ/μ@0.5V%")
}

// BenchmarkFig3 regenerates Figure 3: path/lane/chip delay distributions
// in FO4 units.
func BenchmarkFig3(b *testing.B) {
	res := run(b, "fig3").(*experiments.Fig3Result)
	b.ReportMetric(res.Curves[len(res.Curves)-1].Summary.P99, "chipP99FO4@0.5V")
}

// BenchmarkFig4 regenerates Figure 4: performance drop vs Vdd per node.
func BenchmarkFig4(b *testing.B) {
	res := run(b, "fig4").(*experiments.Fig4Result)
	b.ReportMetric(res.Series[0].Drop(0.50), "drop90nm@0.5V%")
	b.ReportMetric(res.Series[3].Drop(0.50), "drop22nm@0.5V%")
}

// BenchmarkFig5 regenerates Figure 5: spare-augmented delay
// distributions at 0.55 V in 90 nm.
func BenchmarkFig5(b *testing.B) {
	res := run(b, "fig5").(*experiments.Fig5Result)
	b.ReportMetric(float64(res.MatchAlpha.Spares), "sparesToMatch")
}

// BenchmarkTable1 regenerates Table 1: required spares and overheads per
// node and voltage.
func BenchmarkTable1(b *testing.B) {
	res := run(b, "table1").(*experiments.Table1Result)
	if c := res.Cell("90nm GP", 0.55); c != nil && c.Search.Found {
		b.ReportMetric(float64(c.Search.Spares), "spares90nm@0.55V")
	}
}

// BenchmarkFig6 regenerates Figure 6: the 45 nm @600 mV margin study.
func BenchmarkFig6(b *testing.B) {
	res := run(b, "fig6").(*experiments.Fig6Result)
	b.ReportMetric(res.Margin.Margin*1e3, "margin@600mV_mV")
}

// BenchmarkTable2 regenerates Table 2: voltage margins and power
// overheads per node and voltage.
func BenchmarkTable2(b *testing.B) {
	res := run(b, "table2").(*experiments.Table2Result)
	if c := res.Cell("90nm GP", 0.50); c != nil {
		b.ReportMetric(c.Result.Margin*1e3, "margin90nm@0.5V_mV")
	}
}

// BenchmarkFig7 regenerates Figure 7: duplication vs margining power
// comparison.
func BenchmarkFig7(b *testing.B) {
	res := run(b, "fig7").(*experiments.Fig7Result)
	wins := 0
	for _, p := range res.Points {
		if p.Winner == "margining" {
			wins++
		}
	}
	b.ReportMetric(float64(wins), "marginingWins")
}

// BenchmarkFig8 regenerates Figure 8: chip delay vs (spares, supply) at
// 600 mV in 45 nm.
func BenchmarkFig8(b *testing.B) {
	res := run(b, "fig8").(*experiments.Fig8Result)
	b.ReportMetric(res.P99[0][0]*1e9, "p99@600mV0spares_ns")
}

// BenchmarkTable3 regenerates Table 3: combined design choices at
// 600 mV in 45 nm.
func BenchmarkTable3(b *testing.B) {
	res := run(b, "table3").(*experiments.Table3Result)
	b.ReportMetric(float64(res.Best.Spares), "bestSpares")
	b.ReportMetric(res.Best.PowerPct, "bestPower%")
}

// BenchmarkTable4 regenerates Table 4: frequency-margining clock periods
// and performance drops.
func BenchmarkTable4(b *testing.B) {
	res := run(b, "table4").(*experiments.Table4Result)
	if c := res.Cell("22nm PTM HP", 0.50); c != nil {
		b.ReportMetric(c.Result.DropPct, "drop22nm@0.5V%")
	}
}

// BenchmarkFig9 regenerates Figure 9: the energy/delay curve across
// operating regions.
func BenchmarkFig9(b *testing.B) {
	res := run(b, "fig9").(*experiments.Fig9Result)
	b.ReportMetric(res.EminVdd, "EminVdd_V")
	b.ReportMetric(res.EnergyNTV/res.Emin, "E(NTV)/Emin")
}

// BenchmarkFig11 regenerates Figure 11: chain-length sweep at 0.55 V.
func BenchmarkFig11(b *testing.B) {
	res := run(b, "fig11").(*experiments.Fig11Result)
	s := res.Series[0]
	b.ReportMetric(s.ThreeSig[0]/s.ThreeSig[len(s.ThreeSig)-1], "gate/chain200")
}

// BenchmarkFig12 regenerates Figure 12: global vs local sparing coverage
// and the XRAM bypass demo.
func BenchmarkFig12(b *testing.B) {
	res := run(b, "fig12").(*experiments.Fig12Result)
	if !res.BypassOK {
		b.Fatal("bypass demo failed")
	}
	b.ReportMetric(res.Bursts[1].Local, "localBurst2Coverage")
}

// BenchmarkKoggeStone regenerates the §3.1 Kogge-Stone validation
// against Drego et al. [7].
func BenchmarkKoggeStone(b *testing.B) {
	res := run(b, "ks").(*experiments.KSResult)
	b.ReportMetric(res.Rows[len(res.Rows)-1].KS64, "KS3σ/μ@0.5V%")
}

// BenchmarkErrorPenalty regenerates the Synctium-motivation sweep:
// SIMD throughput vs per-lane timing-error probability under three
// recovery policies.
func BenchmarkErrorPenalty(b *testing.B) {
	res := run(b, "synctium").(*experiments.ErrorPenaltyResult)
	last := res.Rows[len(res.Rows)-1]
	b.ReportMetric(last.FlushRel, "flushSlowdown@p0.1")
	b.ReportMetric(last.DecoupledRel, "decoupledSlowdown@p0.1")
}

// BenchmarkAblation regenerates the correlation-model ablation (an
// extension): spare effectiveness under iid, spatial and shared-die
// variation.
func BenchmarkAblation(b *testing.B) {
	res := run(b, "ablation").(*experiments.AblationResult)
	row := res.Rows[0]
	b.ReportMetric(row.IIDGainPct, "iidGain%")
	b.ReportMetric(row.CorrGainPct, "sharedDieGain%")
}

// BenchmarkYield regenerates the parametric-yield extension: shippable
// clock vs yield target with and without spare lanes.
func BenchmarkYield(b *testing.B) {
	res := run(b, "yield").(*experiments.YieldResult)
	b.ReportMetric(100*(res.PaperP99Base/res.PaperP99With-1), "p99ClockGain%")
}

// BenchmarkITD regenerates the inverse-temperature-dependence extension:
// delay sensitivity to temperature across the voltage range and the
// temperature-insensitive supply point per node.
func BenchmarkITD(b *testing.B) {
	res := run(b, "itd").(*experiments.ITDResult)
	b.ReportMetric(res.Series[0].Inversion, "90nmInversion_V")
}

// BenchmarkCorners regenerates the corner-vs-statistical signoff
// comparison (an extension): the over-margin cost of SS-corner flows at
// near-threshold voltage.
func BenchmarkCorners(b *testing.B) {
	res := run(b, "corners").(*experiments.CornersResult)
	b.ReportMetric(res.Cells[0].OverMarginPct, "overMargin90nm@0.5V%")
}

// BenchmarkApp regenerates the kernel-level FV-vs-NTV energy/throughput
// pricing (an extension): real Diet SODA kernels timed at the
// variation-aware clocks of both operating points.
func BenchmarkApp(b *testing.B) {
	res := run(b, "app").(*experiments.AppResult)
	b.ReportMetric(res.Rows[0].EnergyFV/res.Rows[0].EnergyNTV, "energySaving×")
	b.ReportMetric(res.ClockNTV/res.ClockFV, "slowdown×")
}
