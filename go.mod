module github.com/ntvsim/ntvsim

go 1.22
