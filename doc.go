// Package ntvsim reproduces "Process Variation in Near-Threshold Wide
// SIMD Architectures" (Seo et al., DAC 2012) as a production-quality Go
// library and service: calibrated device and variation models, a
// deterministic Monte-Carlo engine, the 128-wide Diet SODA architecture
// study, the three variation-tolerance techniques, a benchmark harness
// regenerating every table and figure of the paper's evaluation, and an
// HTTP daemon serving all of it with caching and cancellation.
//
// # Package map
//
// The implementation lives under internal/, the runnable tools under
// cmd/ and examples/. The root package holds only the per-artifact
// benchmark harness (bench_test.go).
//
//	internal/device      transregional gate delay, leakage, sensitivities
//	internal/variation   RDF/LER/D2D variation sampling (die → lane → gate)
//	internal/tech        calibrated 90/45/32/22 nm nodes + paper anchors
//	internal/circuit     inverter chains, timing DAGs, adders, multiplier
//	internal/rng         splittable deterministic PRNG sub-streams
//	internal/montecarlo  deterministic parallel MC engine (ctx-cancellable)
//	internal/stats       streaming moments, quantiles, histograms, ECDFs
//	internal/simd        lane/chip delay laws of the 128-wide datapath
//	internal/sparing     spare-lane sizing and placement
//	internal/margin      voltage/frequency margining, combined plans
//	internal/power       energy-per-op, overhead models
//	internal/xram        XRAM swizzle crossbar with fault bypass
//	internal/soda        Diet SODA PE functional simulator + kernels
//	internal/timingerr   timing-error injection and recovery policies
//	internal/ssta        analytic chip-delay law: the sweep engine's
//	                     SSTA estimator (mode ssta/auto) plus Clark
//	                     moment algebra (docs/SSTA.md)
//	internal/corners     corner signoff with OCV derates
//	internal/yield       parametric yield-vs-clock curves
//	internal/importance  rare-event importance sampler: defensive-mixture
//	                     proposals, self-normalized weighted estimators,
//	                     ESS diagnostics (docs/SAMPLING.md)
//	internal/experiments one constructor per paper artifact + registry
//	internal/jobs        bounded worker pool, per-job cancellation
//	internal/sweep       sharded parameter-sweep engine, MC/IS twin kernels
//	internal/resultcache content-addressed LRU for experiment results
//	internal/telemetry   stdlib-only metrics, spans and progress reporters
//	internal/faults      deterministic fault injection for robustness tests
//	internal/optimize, internal/report   numerical/rendering substrate
//
//	cmd/ntvsim      CLI: regenerate any/all tables and figures, run sweeps
//	cmd/ntvsimd     HTTP daemon: job+sweep API, result cache, metrics, pprof
//	cmd/ntvsimbench benchmark runner writing BENCH_<date>.json snapshots
//	cmd/sodarun     run kernels on the PE simulator
//	cmd/calibrate   re-fit device parameters to the paper anchors
//
// # Data flow
//
// A batch run flows bottom-up through four layers:
//
//	tech ──► device+variation ──► montecarlo ──► experiments
//	 │            │                   │              │
//	 │   gate/chain delay laws   seeded parallel   fig1…table4
//	 │   under RDF/LER/D2D       sampling, bit-    constructors,
//	 │   at each node/Vdd        identical for     registry, CSV/
//	 │                           any GOMAXPROCS    JSON rendering
//	 └── calibrated anchors (Figure 1, Table 1 of the paper)
//
// Architecture-level experiments route through internal/simd, which
// lifts the chain-delay law to lane and chip level by max-statistics,
// and through sparing/margin/power for the Section-4 tolerance
// techniques.
//
// The service layer inverts the entry point but reuses the same stack:
//
//	cmd/ntvsimd ──► internal/jobs ──► experiments.RunCtx ──► …
//	     │               │
//	     │          per-job context; cancellation reaches the
//	     │          montecarlo loops (polled per 64-sample chunk)
//	     └── internal/resultcache: (id, normalized Config) → Result,
//	         so identical queries never recompute
//
// # Determinism
//
// Every Monte-Carlo result is a pure function of (experiment id,
// Config): sample index i draws from an rng sub-stream derived from
// (seed, i), so results are bit-identical across worker counts and
// scheduling orders, cancellation-aware entry points included. This is
// what makes golden tests stable and result caching sound.
//
// The importance sampler extends this contract to weighted
// estimation: rare-event tail-yield kernels come in MC/IS twin pairs
// sharing one estimand, and a sharded importance-sampling sweep
// merges byte-identical to a serial run (docs/SAMPLING.md is the
// statistical contract).
//
// Start with README.md, DESIGN.md (system inventory, modeling
// decisions, per-experiment index), EXPERIMENTS.md (paper-vs-measured
// for every artifact), docs/API.md (the HTTP surface) and
// docs/SAMPLING.md (the estimator contract).
package ntvsim
