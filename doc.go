// Package ntvsim reproduces "Process Variation in Near-Threshold Wide
// SIMD Architectures" (Seo et al., DAC 2012) as a production-quality Go
// library: calibrated device and variation models, a deterministic
// Monte-Carlo engine, the 128-wide Diet SODA architecture study, the
// three variation-tolerance techniques, and a benchmark harness
// regenerating every table and figure of the paper's evaluation.
//
// The root package holds only the per-artifact benchmark harness
// (bench_test.go); the implementation lives under internal/ and the
// runnable tools under cmd/ and examples/. Start with README.md,
// DESIGN.md (system inventory, modeling decisions, per-experiment
// index) and EXPERIMENTS.md (paper-vs-measured for every artifact).
package ntvsim
