// Package power models the energy and power side of the study: the
// energy-per-operation curve across the super/near/sub-threshold regions
// (Figure 9), and the area/power overhead of the three
// variation-tolerance techniques, with constants back-derived from the
// Diet SODA numbers the paper reports.
package power

import (
	"math"

	"github.com/ntvsim/ntvsim/internal/device"
)

// Diet SODA processing-element breakdown. The paper's Table 1 states
// that 128 spare SIMD FUs would cost "> 57.8 %" area and "> 25.0 %"
// power: one FU slice therefore occupies 57.8/128 % of the PE area, and
// the FU array plus its share of the shuffle network draws 25 % of PE
// power when replicated wholesale. Table 2's margining overheads are all
// consistent with the near-threshold voltage domain consuming 42 % of PE
// power (the memory system, AGUs and one scalar pipeline stay at full
// voltage; see Appendix B).
const (
	// FUAreaFracPct is the PE-area percentage of one SIMD FU slice.
	FUAreaFracPct = 57.8 / 128

	// NTVDomainPowerFrac is the fraction of PE power consumed by the
	// near-threshold (dual-voltage) domain: the SIMD pipeline and the
	// DV scalar pipeline.
	NTVDomainPowerFrac = 0.42
)

// SpareAreaOverheadPct returns the PE area overhead (percent) of adding
// alpha spare SIMD functional units: a linear FUAreaFracPct per spare.
func SpareAreaOverheadPct(alpha int) float64 {
	return float64(alpha) * FUAreaFracPct
}

// Spare power model coefficients. Spare FUs are power-gated at run time,
// so their overhead is routing growth (linear in the number of slices)
// plus enlargement of the full-voltage shuffle network, which grows
// quadratically with the physical SIMD width. Fitting
// P(α) = a·α + b·α² through the recoverable Table 1 points
// (α, %P) ∈ {(28, 4.6), (128, 25.0)} gives a = 0.15560, b = 3.1024e-4,
// which also lands within 0.1 pp of the small-count rows
// {(1, 0.2), (2, 0.3), (6, 1.0)}.
const (
	sparePowerLin  = 0.15560
	sparePowerQuad = 3.1024e-4
)

// SparePowerOverheadPct returns the PE power overhead (percent) of
// adding alpha spare SIMD functional units.
func SparePowerOverheadPct(alpha int) float64 {
	a := float64(alpha)
	return sparePowerLin*a + sparePowerQuad*a*a
}

// MarginPowerOverheadPct returns the PE power overhead (percent) of
// raising the near-threshold domain supply from vdd to vdd+vm: dynamic
// power scales with Vdd², and only the NTV domain pays it.
func MarginPowerOverheadPct(vdd, vm float64) float64 {
	r := (vdd + vm) / vdd
	return 100 * NTVDomainPowerFrac * (r*r - 1)
}

// Energy is the per-operation energy breakdown in normalized units
// (C_eff = 1), as plotted in Figure 9.
type Energy struct {
	Vdd     float64
	Dynamic float64 // α·C·Vdd² switching energy
	Leakage float64 // I_leak·Vdd·T_op leakage energy
	Delay   float64 // T_op, seconds
}

// Total returns switching plus leakage energy.
func (e Energy) Total() float64 { return e.Dynamic + e.Leakage }

// EnergyPerOp evaluates the energy model at supply vdd for an operation
// whose critical path is depth gate delays long, with the given
// switching activity factor. Units are normalized (activity·Vdd² for the
// dynamic part); only ratios and the location of the energy minimum are
// meaningful, exactly as in the paper's Figure 9.
func EnergyPerOp(p device.Params, vdd float64, depth int, activity float64) Energy {
	top := float64(depth) * p.NominalDelay(vdd)
	// Leakage power of the block in the same normalized units as the
	// dynamic term: I_leak·Vdd, integrated over the operation time and
	// scaled by 1/Kd to cancel the delay constant's units.
	leak := p.LeakCurrent(vdd) * vdd * top / p.Kd
	return Energy{
		Vdd:     vdd,
		Dynamic: activity * vdd * vdd,
		Leakage: leak,
		Delay:   top,
	}
}

// Sweep evaluates EnergyPerOp on an inclusive voltage grid.
func Sweep(p device.Params, vlo, vhi, step float64, depth int, activity float64) []Energy {
	var out []Energy
	for v := vlo; v <= vhi+1e-9; v += step {
		out = append(out, EnergyPerOp(p, v, depth, activity))
	}
	return out
}

// MinEnergyPoint returns the supply voltage minimizing total energy and
// the energy there, located by golden-section-like scan refinement over
// [vlo, vhi].
func MinEnergyPoint(p device.Params, vlo, vhi float64, depth int, activity float64) (vdd, energy float64) {
	best := math.Inf(1)
	bestV := vlo
	// Coarse scan then two refinement passes: the energy curve is
	// smooth and unimodal in the region of interest.
	for pass, step := 0, (vhi-vlo)/100; pass < 3; pass++ {
		lo := math.Max(vlo, bestV-step*2)
		hi := math.Min(vhi, bestV+step*2)
		if pass == 0 {
			lo, hi = vlo, vhi
		}
		for v := lo; v <= hi+1e-12; v += step {
			if e := EnergyPerOp(p, v, depth, activity).Total(); e < best {
				best, bestV = e, v
			}
		}
		step /= 10
	}
	return bestV, best
}
