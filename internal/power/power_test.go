package power

import (
	"math"
	"testing"

	"github.com/ntvsim/ntvsim/internal/tech"
)

func TestSpareAreaMatchesPaper(t *testing.T) {
	// Table 1 recoverable anchors: 128 spares = 57.8 %, 6 = 2.6 %,
	// 2 = 0.9 %, 1 = 0.4 % (rounded to one decimal in the paper).
	cases := []struct {
		alpha int
		want  float64
		tol   float64
	}{
		{128, 57.8, 0.01},
		{6, 2.6, 0.15},
		{2, 0.9, 0.05},
		{1, 0.4, 0.06},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := SpareAreaOverheadPct(c.alpha); math.Abs(got-c.want) > c.tol {
			t.Errorf("area(%d) = %v, want ≈%v", c.alpha, got, c.want)
		}
	}
}

func TestSparePowerMatchesPaper(t *testing.T) {
	// Fitted Table 1 points; ≤0.15 pp residual.
	cases := []struct {
		alpha int
		want  float64
	}{
		{1, 0.2}, {2, 0.3}, {6, 1.0}, {28, 4.6}, {128, 25.0},
	}
	for _, c := range cases {
		if got := SparePowerOverheadPct(c.alpha); math.Abs(got-c.want) > 0.35 {
			t.Errorf("power(%d) = %v, want ≈%v", c.alpha, got, c.want)
		}
	}
}

func TestSparePowerSuperlinear(t *testing.T) {
	// The shuffle-network term makes overhead grow faster than linear.
	if 2*SparePowerOverheadPct(64) >= SparePowerOverheadPct(128) {
		t.Error("spare power should be superlinear in count")
	}
}

func TestMarginPowerMatchesPaperTable2(t *testing.T) {
	// Table 2 rows (Vdd, V_M mV, power %): the 0.42 NTV-domain share
	// reproduces every row within 0.2 pp.
	cases := []struct {
		vdd, vm, want float64
	}{
		{0.50, 5.8e-3, 1.0},
		{0.55, 4.1e-3, 0.6},
		{0.70, 1.7e-3, 0.2},
		{0.50, 19.6e-3, 3.3},
		{0.50, 12.1e-3, 2.0},
		{0.50, 16.4e-3, 2.8},
		{0.60, 11.1e-3, 1.6},
	}
	for _, c := range cases {
		if got := MarginPowerOverheadPct(c.vdd, c.vm); math.Abs(got-c.want) > 0.2 {
			t.Errorf("margin power(%v, %v) = %v, want ≈%v", c.vdd, c.vm, got, c.want)
		}
	}
}

func TestMarginPowerZero(t *testing.T) {
	if got := MarginPowerOverheadPct(0.6, 0); got != 0 {
		t.Errorf("zero margin cost = %v", got)
	}
}

func TestEnergyMinimumInSubthreshold(t *testing.T) {
	for _, node := range tech.Nodes() {
		vmin, emin := MinEnergyPoint(node.Dev, 0.12, node.VddNominal, 50, 1.0)
		if vmin >= node.Dev.Vth0 {
			t.Errorf("%s: energy minimum at %v ≥ Vth %v (should be sub-threshold)",
				node.Name, vmin, node.Dev.Vth0)
		}
		if emin <= 0 {
			t.Errorf("%s: non-positive minimum energy", node.Name)
		}
	}
}

func TestEnergyShapeFigure9(t *testing.T) {
	// The Figure 9 narrative for the canonical 90 nm curve:
	// energy at NTV ≥ minimum but within ~2×; nominal ≥ 3× NTV;
	// performance from the minimum point to NTV improves by ≥ 5×.
	d := tech.N90.Dev
	vmin, emin := MinEnergyPoint(d, 0.12, 1.0, 50, 1.0)
	ntv := EnergyPerOp(d, d.Vth0+0.05, 50, 1.0)
	nom := EnergyPerOp(d, 1.0, 50, 1.0)
	sub := EnergyPerOp(d, vmin, 50, 1.0)
	ratioNTV := ntv.Total() / emin
	if ratioNTV < 1 || ratioNTV > 2.5 {
		t.Errorf("E(NTV)/Emin = %v, paper ≈2", ratioNTV)
	}
	if r := nom.Total() / ntv.Total(); r < 3 {
		t.Errorf("E(nominal)/E(NTV) = %v, paper ≈10", r)
	}
	if speedup := sub.Delay / ntv.Delay; speedup < 5 {
		t.Errorf("sub→near speedup ×%v, paper 6–11×", speedup)
	}
}

func TestLeakageDominatesDeepSubthreshold(t *testing.T) {
	d := tech.N90.Dev
	e := EnergyPerOp(d, 0.15, 50, 1.0)
	if e.Leakage <= e.Dynamic {
		t.Errorf("at 0.15V leakage (%v) should dominate dynamic (%v)", e.Leakage, e.Dynamic)
	}
}

func TestDynamicDominatesNominal(t *testing.T) {
	d := tech.N90.Dev
	e := EnergyPerOp(d, 1.0, 50, 1.0)
	if e.Dynamic <= e.Leakage {
		t.Errorf("at 1V dynamic (%v) should dominate leakage (%v)", e.Dynamic, e.Leakage)
	}
}

func TestSweepGrid(t *testing.T) {
	pts := Sweep(tech.N90.Dev, 0.2, 1.0, 0.1, 50, 1.0)
	if len(pts) != 9 {
		t.Fatalf("sweep points = %d, want 9", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Vdd <= pts[i-1].Vdd {
			t.Error("sweep grid not increasing")
		}
		if pts[i].Delay >= pts[i-1].Delay {
			t.Error("delay must fall with Vdd")
		}
	}
}

func TestEnergyTotal(t *testing.T) {
	e := Energy{Dynamic: 1.5, Leakage: 0.5}
	if e.Total() != 2 {
		t.Errorf("Total = %v", e.Total())
	}
}

func TestNTVDomainShareSane(t *testing.T) {
	if NTVDomainPowerFrac < 0.3 || NTVDomainPowerFrac > 0.6 {
		t.Errorf("NTV domain share %v outside plausible Diet SODA range", NTVDomainPowerFrac)
	}
	if math.Abs(FUAreaFracPct*128-57.8) > 1e-9 {
		t.Errorf("128 FUs should be exactly 57.8%% area")
	}
}
