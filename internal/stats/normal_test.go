package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145707},
		{2, 0.9772498680518208},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if got := n.CDF(c.x); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("CDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	n := Normal{Mu: 3, Sigma: 0.5}
	for p := 1e-9; p < 1; p += 0.0173 {
		x := n.Quantile(p)
		back := n.CDF(x)
		if !almostEqual(back, p, 1e-10) {
			t.Fatalf("CDF(Quantile(%v)) = %v", p, back)
		}
	}
	// Deep tails.
	for _, p := range []float64{1e-12, 1e-8, 1e-4, 0.9999, 1 - 1e-8} {
		x := n.Quantile(p)
		if !almostEqual(n.CDF(x), p, math.Max(1e-14, p*1e-6)) {
			t.Errorf("tail round trip failed at p=%v", p)
		}
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	if !math.IsInf(n.Quantile(0), -1) || !math.IsInf(n.Quantile(1), 1) {
		t.Error("Quantile(0)/Quantile(1) should be ∓Inf")
	}
	if !math.IsNaN(n.Quantile(-0.1)) || !math.IsNaN(n.Quantile(1.1)) {
		t.Error("Quantile outside [0,1] should be NaN")
	}
	if n.Quantile(0.5) != 0 {
		t.Errorf("median = %v", n.Quantile(0.5))
	}
}

func TestNormalPDFIntegratesToOne(t *testing.T) {
	n := Normal{Mu: -1, Sigma: 2}
	const steps = 20000
	lo, hi := -1-10*2.0, -1+10*2.0
	h := (hi - lo) / steps
	var sum float64
	for i := 0; i <= steps; i++ {
		w := 1.0
		if i != 0 && i != steps {
			if i%2 == 1 {
				w = 4
			} else {
				w = 2
			}
		}
		sum += w * n.PDF(lo+float64(i)*h)
	}
	if got := sum * h / 3; !almostEqual(got, 1, 1e-10) {
		t.Errorf("∫pdf = %v", got)
	}
}

func TestNormalDegenerate(t *testing.T) {
	n := Normal{Mu: 5, Sigma: 0}
	if n.CDF(4.999) != 0 || n.CDF(5) != 1 {
		t.Error("degenerate CDF wrong")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	n := Normal{Mu: 0, Sigma: 1}
	f := func(a, b float64) bool {
		pa, pb := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if math.IsNaN(pa) || math.IsNaN(pb) || pa == 0 || pb == 0 {
			return true
		}
		if pa > pb {
			pa, pb = pb, pa
		}
		return n.Quantile(pa) <= n.Quantile(pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogNormal(t *testing.T) {
	l := LogNormal{Mu: 1, Sigma: 0.25}
	if got, want := l.Mean(), math.Exp(1+0.25*0.25/2); !almostEqual(got, want, 1e-12) {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if l.CDF(0) != 0 || l.PDF(-1) != 0 {
		t.Error("log-normal must vanish for x ≤ 0")
	}
	// Median is exp(Mu).
	if got := l.Quantile(0.5); !almostEqual(got, math.E, 1e-9) {
		t.Errorf("median = %v, want e", got)
	}
}

func TestFitLogNormal(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	want := LogNormal{Mu: -0.5, Sigma: 0.3}
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = math.Exp(want.Mu + want.Sigma*r.NormFloat64())
	}
	got := FitLogNormal(xs)
	if !almostEqual(got.Mu, want.Mu, 0.01) || !almostEqual(got.Sigma, want.Sigma, 0.01) {
		t.Errorf("fit = %+v, want ≈%+v", got, want)
	}
	bad := FitLogNormal([]float64{1, -2, 3})
	if !math.IsNaN(bad.Mu) {
		t.Error("fit with non-positive sample should be NaN")
	}
}
