package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function built from a
// sample. The sample is stored sorted.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts xs into an empirical CDF.
func NewECDF(xs []float64) *ECDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns the fraction of samples ≤ x.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	// sort.SearchFloat64s returns the first index with sorted[i] >= x;
	// we want strictly greater to count ties as ≤ x.
	i := sort.Search(len(e.sorted), func(i int) bool { return e.sorted[i] > x })
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the p-quantile of the underlying sample.
func (e *ECDF) Quantile(p float64) float64 {
	return QuantileSorted(e.sorted, p)
}

// N returns the sample size.
func (e *ECDF) N() int { return len(e.sorted) }

// KSStatistic returns the two-sample Kolmogorov–Smirnov statistic
// D = sup |F1(x) − F2(x)| between samples xs and ys.
func KSStatistic(xs, ys []float64) float64 {
	a := append([]float64(nil), xs...)
	b := append([]float64(nil), ys...)
	sort.Float64s(a)
	sort.Float64s(b)
	var d float64
	i, j := 0, 0
	na, nb := float64(len(a)), float64(len(b))
	for i < len(a) && j < len(b) {
		// Advance both samples through the current smallest value so
		// ties are counted on both sides before comparing the CDFs.
		x := a[i]
		if b[j] < x {
			x = b[j]
		}
		for i < len(a) && a[i] == x {
			i++
		}
		for j < len(b) && b[j] == x {
			j++
		}
		diff := math.Abs(float64(i)/na - float64(j)/nb)
		if diff > d {
			d = diff
		}
	}
	return d
}

// KSTestNormal returns the one-sample KS statistic of xs against the
// given Normal distribution.
func KSTestNormal(xs []float64, dist Normal) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := float64(len(s))
	var d float64
	for i, x := range s {
		f := dist.CDF(x)
		hi := math.Abs(float64(i+1)/n - f)
		lo := math.Abs(f - float64(i)/n)
		if hi > d {
			d = hi
		}
		if lo > d {
			d = lo
		}
	}
	return d
}

// KSCritical returns the approximate large-sample critical value of the
// two-sample KS statistic at significance alpha ∈ {0.10, 0.05, 0.01}.
func KSCritical(n1, n2 int, alpha float64) float64 {
	var c float64
	switch {
	case alpha <= 0.01:
		c = 1.63
	case alpha <= 0.05:
		c = 1.36
	default:
		c = 1.22
	}
	return c * math.Sqrt(float64(n1+n2)/float64(n1*n2))
}
