package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestStreamMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	xs := make([]float64, 5000)
	var s Stream
	for i := range xs {
		xs[i] = r.ExpFloat64() * 3
		s.Add(xs[i])
	}
	if !almostEqual(s.Mean(), Mean(xs), 1e-9) {
		t.Errorf("stream mean %v vs batch %v", s.Mean(), Mean(xs))
	}
	if !almostEqual(s.Variance(), Variance(xs), 1e-9) {
		t.Errorf("stream var %v vs batch %v", s.Variance(), Variance(xs))
	}
	lo, hi := MinMax(xs)
	if s.Min() != lo || s.Max() != hi {
		t.Error("stream min/max mismatch")
	}
	if s.N() != len(xs) {
		t.Errorf("N = %d", s.N())
	}
}

func TestStreamZeroValue(t *testing.T) {
	var s Stream
	if !math.IsNaN(s.Mean()) || !math.IsNaN(s.Variance()) || !math.IsNaN(s.Min()) {
		t.Error("empty stream should report NaN")
	}
	s.Add(7)
	if s.Mean() != 7 || s.Min() != 7 || s.Max() != 7 {
		t.Error("single observation mishandled")
	}
	if !math.IsNaN(s.Variance()) {
		t.Error("variance of single observation should be NaN")
	}
}

// TestStreamMergeProperty checks that merging partial streams is
// equivalent to one big stream, for arbitrary splits — the invariant the
// parallel Monte-Carlo engine relies on.
func TestStreamMergeProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		clean := func(xs []float64) []float64 {
			out := xs[:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e150 {
					out = append(out, x)
				}
			}
			return out
		}
		a, b = clean(a), clean(b)
		var s1, s2, merged, whole Stream
		for _, x := range a {
			s1.Add(x)
			whole.Add(x)
		}
		for _, x := range b {
			s2.Add(x)
			whole.Add(x)
		}
		merged.Merge(&s1)
		merged.Merge(&s2)
		if merged.N() != whole.N() {
			return false
		}
		if merged.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(whole.Mean()))
		if !almostEqual(merged.Mean(), whole.Mean(), 1e-9*scale) {
			return false
		}
		if whole.N() >= 2 {
			vscale := math.Max(1, whole.Variance())
			if !almostEqual(merged.Variance(), whole.Variance(), 1e-6*vscale) {
				return false
			}
		}
		return merged.Min() == whole.Min() && merged.Max() == whole.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStreamStdErr(t *testing.T) {
	var s Stream
	for i := 0; i < 100; i++ {
		s.Add(float64(i % 2)) // variance 0.25 (roughly), n=100
	}
	want := s.StdDev() / 10
	if !almostEqual(s.StdErr(), want, 1e-12) {
		t.Errorf("StdErr = %v, want %v", s.StdErr(), want)
	}
}
