// Package stats provides the descriptive statistics, distributions and
// hypothesis tests used throughout the Monte-Carlo variation study:
// moments, quantiles, histograms, empirical CDFs, the Gaussian and
// log-normal distributions, and the Kolmogorov–Smirnov test.
//
// All functions operate on float64 samples. Unless stated otherwise they
// do not modify their inputs; functions that need sorted data either sort
// a copy or state the precondition explicitly.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs. It returns NaN for an empty
// slice, mirroring the behaviour of the other moment functions.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n−1) sample variance of xs.
// It returns NaN if len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// ThreeSigmaOverMu returns the paper's headline variation metric
// 3σ/μ expressed as a percentage: 100·3·StdDev(xs)/Mean(xs).
func ThreeSigmaOverMu(xs []float64) float64 {
	return 100 * 3 * StdDev(xs) / Mean(xs)
}

// MinMax returns the minimum and maximum of xs.
// It returns (NaN, NaN) for an empty slice.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return math.NaN(), math.NaN()
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Summary bundles the descriptive statistics reported for every delay
// distribution in the study.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P99    float64 // the paper's chip-delay operating point
}

// Summarize computes a Summary of xs. The slice is not modified.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		nan := math.NaN()
		s.Mean, s.StdDev, s.Min, s.Max, s.P50, s.P99 = nan, nan, nan, nan, nan, nan
		return s
	}
	s.Mean = Mean(xs)
	s.StdDev = StdDev(xs)
	s.Min, s.Max = MinMax(xs)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = QuantileSorted(sorted, 0.50)
	s.P99 = QuantileSorted(sorted, 0.99)
	return s
}

// ThreeSigmaOverMu returns 100·3σ/μ for the summarized sample.
func (s Summary) ThreeSigmaOverMu() float64 {
	return 100 * 3 * s.StdDev / s.Mean
}

// String renders the summary on one line, suitable for experiment logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.6g 3σ/μ=%.2f%% p50=%.6g p99=%.6g",
		s.N, s.Mean, s.StdDev, s.ThreeSigmaOverMu(), s.P50, s.P99)
}

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the R/NumPy default).
// The input need not be sorted; a copy is sorted internally.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, p)
}

// QuantileSorted is Quantile for data already sorted ascending.
func QuantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	h := p * float64(n-1)
	i := int(math.Floor(h))
	frac := h - float64(i)
	if i+1 >= n {
		return sorted[n-1]
	}
	return sorted[i] + frac*(sorted[i+1]-sorted[i])
}

// QuantileCI returns a distribution-free confidence interval for the
// p-quantile of the population underlying the sorted sample, at the
// given confidence level (e.g. 0.95). It uses the normal approximation
// to the binomial order-statistic bounds — the standard way to report
// the Monte-Carlo noise on a 99 % delay point. The interval is clamped
// to the sample range.
func QuantileCI(sorted []float64, p, confidence float64) (lo, hi float64) {
	n := len(sorted)
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	if n == 1 {
		return sorted[0], sorted[0]
	}
	z := Normal{Mu: 0, Sigma: 1}.Quantile(0.5 + confidence/2)
	se := z * math.Sqrt(p*(1-p)*float64(n))
	center := p * float64(n)
	loIdx := int(math.Floor(center - se))
	hiIdx := int(math.Ceil(center + se))
	if loIdx < 0 {
		loIdx = 0
	}
	if hiIdx > n-1 {
		hiIdx = n - 1
	}
	return sorted[loIdx], sorted[hiIdx]
}
