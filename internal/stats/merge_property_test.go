package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

// Property tests for Stream.Merge, the operation that makes parallel
// Monte-Carlo moment accumulation independent of the worker split: for
// any partition of a sample into per-worker streams and any merge
// order, the merged stream must agree with single-stream accumulation.
// Exact equality is too strong for floating point — Welford partial
// sums associate differently — so mean/variance are compared to an
// ulp-scale relative tolerance while n/min/max, which are exact under
// any order, are compared exactly.

// relClose reports whether a and b agree to within tol relative to
// their magnitude (absolute near zero).
func relClose(a, b, tol float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= tol*scale
}

func checkStreamsAgree(t *testing.T, label string, got, want *Stream, tol float64) {
	t.Helper()
	if got.N() != want.N() {
		t.Fatalf("%s: N = %d, want %d", label, got.N(), want.N())
	}
	if got.Min() != want.Min() || got.Max() != want.Max() {
		t.Fatalf("%s: extrema (%v,%v) != (%v,%v)",
			label, got.Min(), got.Max(), want.Min(), want.Max())
	}
	if !relClose(got.Mean(), want.Mean(), tol) {
		t.Fatalf("%s: mean %v != %v", label, got.Mean(), want.Mean())
	}
	if !relClose(got.Variance(), want.Variance(), tol) {
		t.Fatalf("%s: variance %v != %v", label, got.Variance(), want.Variance())
	}
}

// tolDefault is ~4500 ulp at scale 1: room for Welford re-association,
// far below any physical signal in the study. tolCancel applies to the
// σ/μ = 1e-9 cancellation case: delta = x − mean inherits the mean's
// absolute rounding error (~με), so m2 agreement across association
// orders degrades to a few × ε·μ/σ ≈ 2e-7 relative — tolCancel leaves
// a small factor of headroom above that floor.
const (
	tolDefault = 1e-12
	tolCancel  = 1e-6
)

// TestMergeMatchesSingleStream partitions one sample into k chunks and
// checks chunked accumulation + left-to-right merge against the single
// stream, across chunk counts, sizes (including empty and singleton
// chunks) and distributions with very different scales.
func TestMergeMatchesSingleStream(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	gens := []struct {
		name string
		gen  func() float64
		tol  float64
	}{
		{"uniform", r.Float64, tolDefault},
		{"normal", r.NormFloat64, tolDefault},
		// Catastrophic-cancellation bait: σ/μ = 1e-9.
		{"largeMean", func() float64 { return 1e9 + r.NormFloat64() }, tolCancel},
		{"tiny", func() float64 { return 1e-9 * r.NormFloat64() }, tolDefault},
	}
	for _, g := range gens {
		name, gen := g.name, g.gen
		for _, k := range []int{1, 2, 3, 7, 16} {
			const n = 4096
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = gen()
			}
			var single Stream
			for _, x := range xs {
				single.Add(x)
			}
			parts := make([]Stream, k+1) // one extra: always include an empty stream
			for i, x := range xs {
				parts[i%k].Add(x)
			}
			var merged Stream
			for i := range parts {
				merged.Merge(&parts[i])
			}
			checkStreamsAgree(t, name, &merged, &single, g.tol)
		}
	}
}

// TestMergeOrderInsensitive merges the same partition in many random
// orders and as a balanced tree, requiring all results to agree with
// the sequential order to the same tolerance.
func TestMergeOrderInsensitive(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	const k, chunk = 12, 337
	parts := make([]Stream, k)
	for i := range parts {
		for j := 0; j < chunk; j++ {
			parts[i].Add(100*r.NormFloat64() + float64(i))
		}
	}
	var sequential Stream
	for i := range parts {
		sequential.Merge(&parts[i])
	}
	for trial := 0; trial < 50; trial++ {
		order := r.Perm(k)
		var m Stream
		for _, i := range order {
			m.Merge(&parts[i])
		}
		checkStreamsAgree(t, "shuffled order", &m, &sequential, tolDefault)
	}
	// Balanced pairwise tree, the shape a parallel reduction produces.
	tree := make([]Stream, k)
	copy(tree, parts)
	for len(tree) > 1 {
		var next []Stream
		for i := 0; i+1 < len(tree); i += 2 {
			tree[i].Merge(&tree[i+1])
			next = append(next, tree[i])
		}
		if len(tree)%2 == 1 {
			next = append(next, tree[len(tree)-1])
		}
		tree = next
	}
	checkStreamsAgree(t, "tree merge", &tree[0], &sequential, tolDefault)
}

// TestMergeEmptyIdentity pins the algebraic identities: merging an
// empty stream is a no-op, and merging into an empty stream copies.
func TestMergeEmptyIdentity(t *testing.T) {
	var a Stream
	for _, x := range []float64{3, 1, 4, 1, 5} {
		a.Add(x)
	}
	before := a
	var empty Stream
	a.Merge(&empty)
	if a != before {
		t.Error("merging an empty stream changed the receiver")
	}
	var b Stream
	b.Merge(&a)
	if b != a {
		t.Error("merging into an empty stream is not a copy")
	}
}
