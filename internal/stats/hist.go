package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-bin histogram over [Lo, Hi). Observations outside
// the range are counted in Under/Over so no data is silently dropped —
// the tails are exactly what the variation study cares about.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	Under  int
	Over   int
	total  int
}

// NewHistogram creates a histogram with bins equal-width bins on [lo, hi).
// It panics if bins < 1 or hi ≤ lo, which indicate programming errors.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic(fmt.Sprintf("stats: NewHistogram bins = %d, need ≥ 1", bins))
	}
	if !(hi > lo) {
		panic(fmt.Sprintf("stats: NewHistogram range [%g, %g) is empty", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, bins)}
}

// HistogramOf builds a histogram spanning the sample range of xs with the
// given number of bins and adds every sample.
func HistogramOf(xs []float64, bins int) *Histogram {
	lo, hi := MinMax(xs)
	if math.IsNaN(lo) || lo == hi {
		// Degenerate sample: widen artificially so the histogram is usable.
		lo, hi = lo-0.5, lo+0.5
	}
	// Widen the top edge slightly so the maximum lands in the last bin.
	h := NewHistogram(lo, hi+(hi-lo)*1e-9, bins)
	for _, x := range xs {
		h.Add(x)
	}
	return h
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i == len(h.Counts) { // guard against floating-point edge
			i--
		}
		h.Counts[i]++
	}
}

// Total returns the number of observations added, including out-of-range.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + (float64(i)+0.5)*w
}

// Render draws the histogram as rows of "center count bar" text with bars
// scaled so the fullest bin spans width characters. It is used by the
// experiment CLI to visualize the paper's distribution figures.
func (h *Histogram) Render(width int) string {
	if width < 1 {
		width = 40
	}
	peak := 0
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	var b strings.Builder
	if h.Under > 0 {
		fmt.Fprintf(&b, "%12s %6d\n", "<under>", h.Under)
	}
	for i, c := range h.Counts {
		bar := 0
		if peak > 0 {
			bar = c * width / peak
		}
		fmt.Fprintf(&b, "%12.5g %6d %s\n", h.BinCenter(i), c, strings.Repeat("#", bar))
	}
	if h.Over > 0 {
		fmt.Fprintf(&b, "%12s %6d\n", "<over>", h.Over)
	}
	return b.String()
}
