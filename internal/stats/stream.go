package stats

import "math"

// Stream accumulates moments of a sample one observation at a time using
// Welford's numerically stable recurrence. The zero value is ready to use.
// It is the building block for Monte-Carlo loops that must not retain all
// samples in memory.
type Stream struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates x into the stream.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// N returns the number of observations added so far.
func (s *Stream) N() int { return s.n }

// Mean returns the running mean, or NaN if no observations were added.
func (s *Stream) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.mean
}

// Variance returns the running unbiased variance, or NaN if n < 2.
func (s *Stream) Variance() float64 {
	if s.n < 2 {
		return math.NaN()
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the running unbiased standard deviation.
func (s *Stream) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or NaN if none were added.
func (s *Stream) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observation, or NaN if none were added.
func (s *Stream) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// StdErr returns the standard error of the mean, σ/√n.
func (s *Stream) StdErr() float64 {
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// ThreeSigmaOverMu returns 100·3σ/μ for the accumulated sample.
func (s *Stream) ThreeSigmaOverMu() float64 {
	return 100 * 3 * s.StdDev() / s.Mean()
}

// Merge combines another stream into s, as if every observation added to
// o had been added to s. This supports parallel Monte-Carlo workers each
// owning a private Stream.
func (s *Stream) Merge(o *Stream) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n1, n2 := float64(s.n), float64(o.n)
	delta := o.mean - s.mean
	total := n1 + n2
	s.mean += delta * n2 / total
	s.m2 += o.m2 + delta*delta*n1*n2/total
	s.n += o.n
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
}
