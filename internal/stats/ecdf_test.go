package stats

import (
	"math/rand/v2"
	"testing"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {9, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.N() != 4 {
		t.Errorf("N = %d", e.N())
	}
	if got := e.Quantile(0.5); got != 2 {
		t.Errorf("Quantile(0.5) = %v", got)
	}
}

func TestKSStatisticIdentical(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if d := KSStatistic(xs, xs); d != 0 {
		t.Errorf("KS of identical samples = %v", d)
	}
}

func TestKSStatisticDisjoint(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{10, 11, 12}
	if d := KSStatistic(xs, ys); d != 1 {
		t.Errorf("KS of disjoint samples = %v, want 1", d)
	}
}

func TestKSSameDistributionBelowCritical(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 12))
	n := 3000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = r.NormFloat64()
		ys[i] = r.NormFloat64()
	}
	d := KSStatistic(xs, ys)
	if crit := KSCritical(n, n, 0.01); d > crit {
		t.Errorf("same-distribution KS %v above critical %v", d, crit)
	}
}

func TestKSDifferentDistributionAboveCritical(t *testing.T) {
	r := rand.New(rand.NewPCG(13, 14))
	n := 3000
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = r.NormFloat64()
		ys[i] = r.NormFloat64() + 0.5
	}
	d := KSStatistic(xs, ys)
	if crit := KSCritical(n, n, 0.01); d < crit {
		t.Errorf("shifted-distribution KS %v below critical %v", d, crit)
	}
}

func TestKSTestNormal(t *testing.T) {
	r := rand.New(rand.NewPCG(15, 16))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = 2 + 3*r.NormFloat64()
	}
	d := KSTestNormal(xs, Normal{Mu: 2, Sigma: 3})
	if d > 0.05 {
		t.Errorf("one-sample KS %v too large for matching normal", d)
	}
	dWrong := KSTestNormal(xs, Normal{Mu: 0, Sigma: 3})
	if dWrong < 0.2 {
		t.Errorf("one-sample KS %v too small for wrong mean", dWrong)
	}
}
