package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	// Unbiased variance of this classic sample is 32/7.
	if got := Variance(xs); !almostEqual(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := StdDev(xs); !almostEqual(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of singleton should be NaN")
	}
	lo, hi := MinMax(nil)
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Error("MinMax(nil) should be NaN, NaN")
	}
}

func TestThreeSigmaOverMu(t *testing.T) {
	// Constant sample: zero variance.
	xs := []float64{3, 3, 3, 3}
	if got := ThreeSigmaOverMu(xs); got != 0 {
		t.Errorf("3σ/μ of constant = %v, want 0", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of empty should be NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[4] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestSummarize(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = r.NormFloat64()*2 + 10
	}
	s := Summarize(xs)
	if !almostEqual(s.Mean, 10, 0.1) {
		t.Errorf("mean = %v, want ≈10", s.Mean)
	}
	if !almostEqual(s.StdDev, 2, 0.1) {
		t.Errorf("sd = %v, want ≈2", s.StdDev)
	}
	// p99 of Normal(10,2) is 10 + 2.326·2 ≈ 14.65.
	if !almostEqual(s.P99, 14.65, 0.3) {
		t.Errorf("p99 = %v, want ≈14.65", s.P99)
	}
	if s.Min > s.P50 || s.P50 > s.P99 || s.P99 > s.Max {
		t.Error("summary ordering violated")
	}
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestQuantileSortedMonotoneProperty(t *testing.T) {
	// Property: quantile is monotone in p for any sample.
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			// Interpolation between order statistics of opposite sign
			// near ±MaxFloat64 overflows; physical samples (delays in
			// seconds) are far inside this bound.
			if !math.IsNaN(x) && math.Abs(x) < 1e300 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.05 {
			q := Quantile(xs, p)
			if q < prev {
				return false
			}
			prev = q
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSummaryOfEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || !math.IsNaN(s.Mean) || !math.IsNaN(s.P99) {
		t.Errorf("Summarize(nil) = %+v, want NaN fields", s)
	}
}

func TestQuantileCICoverage(t *testing.T) {
	// Empirical check: the 95% CI for the 0.99 quantile of a known
	// normal must contain the true quantile in ≈95% of repetitions.
	r := rand.New(rand.NewPCG(21, 22))
	truth := Normal{Mu: 0, Sigma: 1}.Quantile(0.99)
	const reps = 300
	const n = 2000
	covered := 0
	for rep := 0; rep < reps; rep++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		sort.Float64s(xs)
		lo, hi := QuantileCI(xs, 0.99, 0.95)
		if lo <= truth && truth <= hi {
			covered++
		}
	}
	rate := float64(covered) / reps
	if rate < 0.90 || rate > 1.0 {
		t.Errorf("CI coverage %v, want ≈0.95", rate)
	}
}

func TestQuantileCIOrdering(t *testing.T) {
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = float64(i)
	}
	lo, hi := QuantileCI(xs, 0.99, 0.95)
	point := QuantileSorted(xs, 0.99)
	if !(lo <= point && point <= hi) {
		t.Errorf("CI [%v, %v] should bracket point estimate %v", lo, hi, point)
	}
	if lo2, hi2 := QuantileCI(xs, 0.99, 0.99); lo2 > lo || hi2 < hi {
		t.Error("higher confidence must widen the interval")
	}
}

func TestQuantileCIDegenerate(t *testing.T) {
	if lo, _ := QuantileCI(nil, 0.5, 0.95); !math.IsNaN(lo) {
		t.Error("empty sample should give NaN")
	}
	lo, hi := QuantileCI([]float64{7}, 0.5, 0.95)
	if lo != 7 || hi != 7 {
		t.Error("singleton CI should collapse")
	}
}
