package stats

import (
	"strings"
	"testing"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, x := range []float64{0, 0.5, 1, 5, 9.999, -1, 10, 42} {
		h.Add(x)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d", h.Total())
	}
	if h.Under != 1 {
		t.Errorf("Under = %d", h.Under)
	}
	if h.Over != 2 { // 10 and 42 are both ≥ Hi
		t.Errorf("Over = %d", h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 0.5
		t.Errorf("bin0 = %d", h.Counts[0])
	}
	if h.Counts[9] != 1 { // 9.999
		t.Errorf("bin9 = %d", h.Counts[9])
	}
}

func TestHistogramOfCoversRange(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	h := HistogramOf(xs, 4)
	if h.Under != 0 || h.Over != 0 {
		t.Errorf("HistogramOf dropped samples: under=%d over=%d", h.Under, h.Over)
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != len(xs) {
		t.Errorf("binned %d of %d", sum, len(xs))
	}
}

func TestHistogramDegenerateSample(t *testing.T) {
	h := HistogramOf([]float64{7, 7, 7}, 5)
	if h.Total() != 3 || h.Under+h.Over != 0 {
		t.Error("degenerate sample mishandled")
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	if got := h.BinCenter(0); got != 0.5 {
		t.Errorf("BinCenter(0) = %v", got)
	}
	if got := h.BinCenter(9); got != 9.5 {
		t.Errorf("BinCenter(9) = %v", got)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(1.5)
	h.Add(1.6)
	h.Add(-1)
	out := h.Render(10)
	if !strings.Contains(out, "<under>") {
		t.Error("render should show underflow")
	}
	if !strings.Contains(out, "#") {
		t.Error("render should draw bars")
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram with bad range should panic")
		}
	}()
	NewHistogram(5, 5, 3)
}
