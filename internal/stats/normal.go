package stats

import "math"

// Normal is a Gaussian distribution with mean Mu and standard deviation
// Sigma. Sigma must be positive for the density and quantile functions to
// be meaningful; Sigma == 0 degenerates to a point mass at Mu.
type Normal struct {
	Mu    float64
	Sigma float64
}

// PDF returns the probability density at x.
func (n Normal) PDF(x float64) float64 {
	if n.Sigma == 0 {
		if x == n.Mu {
			return math.Inf(1)
		}
		return 0
	}
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-0.5*z*z) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF returns P(X ≤ x).
func (n Normal) CDF(x float64) float64 {
	if n.Sigma == 0 {
		if x < n.Mu {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc(-(x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// Quantile returns the inverse CDF at probability p ∈ (0, 1).
// It returns ±Inf at p = 0 and p = 1 and NaN outside [0, 1].
func (n Normal) Quantile(p float64) float64 {
	switch {
	case p < 0 || p > 1 || math.IsNaN(p):
		return math.NaN()
	case p == 0:
		return math.Inf(-1)
	case p == 1:
		return math.Inf(1)
	}
	return n.Mu + n.Sigma*standardNormalQuantile(p)
}

// standardNormalQuantile evaluates Φ⁻¹(p) with Acklam's rational
// approximation followed by one Halley refinement step, giving ~1e-15
// relative accuracy across (0, 1).
func standardNormalQuantile(p float64) float64 {
	// Coefficients from Peter Acklam's algorithm (2003).
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One step of Halley's method against the exact CDF.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// LogNormal is the distribution of exp(N) where N ~ Normal(Mu, Sigma).
// Gate delays at very low voltage are strongly right-skewed and are well
// described by a log-normal.
type LogNormal struct {
	Mu    float64 // mean of log(X)
	Sigma float64 // standard deviation of log(X)
}

// PDF returns the probability density at x (0 for x ≤ 0).
func (l LogNormal) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return Normal{l.Mu, l.Sigma}.PDF(math.Log(x)) / x
}

// CDF returns P(X ≤ x).
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return Normal{l.Mu, l.Sigma}.CDF(math.Log(x))
}

// Quantile returns the inverse CDF at probability p.
func (l LogNormal) Quantile(p float64) float64 {
	return math.Exp(Normal{l.Mu, l.Sigma}.Quantile(p))
}

// Mean returns E[X] = exp(Mu + Sigma²/2).
func (l LogNormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// FitLogNormal estimates LogNormal parameters from positive samples by
// the method of moments on log(x). Non-positive samples yield NaN fields.
func FitLogNormal(xs []float64) LogNormal {
	logs := make([]float64, len(xs))
	for i, x := range xs {
		if x <= 0 {
			return LogNormal{math.NaN(), math.NaN()}
		}
		logs[i] = math.Log(x)
	}
	return LogNormal{Mu: Mean(logs), Sigma: StdDev(logs)}
}
