// Package telemetry is the stdlib-only observability layer shared by
// the CLI and the HTTP daemon: Prometheus-format metrics, lightweight
// hierarchical spans with an in-memory trace buffer, and a lock-free
// progress reporter threaded through context into the Monte-Carlo
// sampling loops.
//
// # Metrics
//
// A Registry holds named metric families — counters, gauges and
// histograms, optionally labelled — and renders them in the Prometheus
// text exposition format (version 0.0.4) via WritePrometheus. The
// package-level Default registry is what GET /metrics serves.
// Registration is idempotent: asking for an already-registered family
// with the same type returns the existing one, so package init
// functions and repeated server construction (tests) never panic on
// duplicates.
//
// # Spans
//
// StartSpan(ctx, name) opens a child of the span carried by ctx and
// returns a derived context carrying the new span. When ctx carries no
// span — no trace was started — StartSpan is a no-op returning a nil
// *Span whose End is safe to call, so instrumented code needs no
// conditionals. A TraceStore starts traces (one per job), bounds how
// many finished traces are retained, and hands back snapshots of the
// span tree for the /debug/trace/{id} endpoint.
//
// # Progress
//
// A Progress reporter counts samples done against a self-announced
// total and carries a free-form phase label. All methods are nil-safe:
// montecarlo's sampling loops tick the reporter unconditionally, and
// when no reporter rides the context the ticks vanish into nil-receiver
// no-ops, keeping the uninstrumented fast path at zero cost.
package telemetry
