package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestStartSpanWithoutTraceIsNoop(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "phase")
	if sp != nil {
		t.Error("span created without an active trace")
	}
	if ctx2 != ctx {
		t.Error("context changed without an active trace")
	}
	sp.End() // must not panic
}

func TestTraceTree(t *testing.T) {
	store := NewTraceStore(8)
	ctx, tr := store.Start(context.Background(), "job-1")

	ctx1, sweep := StartSpan(ctx, "voltage-sweep")
	_, point := StartSpan(ctx1, "point/0.60V")
	point.End()
	sweep.End()
	_, search := StartSpan(ctx, "margin-search")
	search.End()
	tr.Finish()

	got, ok := store.Get("job-1")
	if !ok {
		t.Fatal("trace not retained")
	}
	snap := got.Snapshot()
	if snap.ID != "job-1" || snap.Root.Name != "job-1" {
		t.Errorf("root = %+v", snap.Root.Name)
	}
	if snap.Root.InProgress {
		t.Error("finished trace still in progress")
	}
	if len(snap.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(snap.Root.Children))
	}
	vs := snap.Root.Children[0]
	if vs.Name != "voltage-sweep" || len(vs.Children) != 1 || vs.Children[0].Name != "point/0.60V" {
		t.Errorf("sweep subtree = %+v", vs)
	}
	if vs.DurationMS < 0 {
		t.Errorf("negative duration %v", vs.DurationMS)
	}
	// The snapshot must be JSON-serializable (the /debug/trace wire form).
	if _, err := json.Marshal(snap); err != nil {
		t.Errorf("snapshot not marshalable: %v", err)
	}
}

func TestInProgressSnapshot(t *testing.T) {
	store := NewTraceStore(1)
	ctx, _ := store.Start(context.Background(), "live")
	_, sp := StartSpan(ctx, "running-phase")
	tr, _ := store.Get("live")
	snap := tr.Snapshot()
	if !snap.Root.InProgress {
		t.Error("running trace not marked in progress")
	}
	if len(snap.Root.Children) != 1 || !snap.Root.Children[0].InProgress {
		t.Errorf("running child not marked in progress: %+v", snap.Root.Children)
	}
	sp.End()
}

func TestTraceStoreEviction(t *testing.T) {
	store := NewTraceStore(3)
	for i := 0; i < 5; i++ {
		_, tr := store.Start(context.Background(), fmt.Sprintf("job-%d", i))
		tr.Finish()
	}
	if store.Len() != 3 {
		t.Errorf("store len = %d, want 3", store.Len())
	}
	if _, ok := store.Get("job-0"); ok {
		t.Error("oldest trace not evicted")
	}
	if _, ok := store.Get("job-4"); !ok {
		t.Error("newest trace missing")
	}
}

// TestConcurrentSpans builds a span tree from many goroutines while a
// reader snapshots it; run with -race in CI.
func TestConcurrentSpans(t *testing.T) {
	store := NewTraceStore(2)
	ctx, tr := store.Start(context.Background(), "conc")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c, sp := StartSpan(ctx, fmt.Sprintf("w%d/%d", w, i))
				_, inner := StartSpan(c, "inner")
				inner.End()
				sp.End()
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			_ = tr.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	tr.Finish()
	if n := len(tr.Snapshot().Root.Children); n != 8*50 {
		t.Errorf("children = %d, want %d", n, 8*50)
	}
}
