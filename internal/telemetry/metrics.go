package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Default is the process-wide registry: package init functions across
// the repo register their metrics here, and the daemon's GET /metrics
// renders it.
var Default = NewRegistry()

// DefBuckets are the default histogram buckets for latencies in
// seconds, matching the Prometheus client defaults.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

type metricType string

const (
	counterType   metricType = "counter"
	gaugeType     metricType = "gauge"
	histogramType metricType = "histogram"
)

// Registry is a set of named metric families renderable as Prometheus
// text exposition format. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty Registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family is one named metric with zero or more labelled children.
type family struct {
	name       string
	help       string
	typ        metricType
	labelNames []string
	buckets    []float64 // histograms only

	mu       sync.Mutex
	children map[string]*sample       // keyed by rendered label pairs
	fn       func() float64           // func-backed families (single sample)
	histFn   func() HistogramSnapshot // func-backed histogram families
}

// sample is one labelled time series within a family.
type sample struct {
	labels string // rendered `key="value",...` or "" for unlabelled
	metric any    // *Counter, *Gauge or *Histogram
}

// HistogramSnapshot is the point-in-time state a func-backed histogram
// reports at exposition time (see Registry.HistogramFunc). Counts are
// cumulative: Counts[i] is the number of observations ≤ Buckets[i].
type HistogramSnapshot struct {
	Buckets []float64 // sorted upper bounds; +Inf is implicit
	Counts  []uint64  // cumulative count per bucket, same length
	Count   uint64    // total observations (the +Inf bucket)
	Sum     float64   // sum of observations (may be an estimate)
}

// lookup returns the family with the given name, creating it on first
// use. Registration is idempotent; re-registering under a different
// type or label arity is a programming error and panics.
func (r *Registry) lookup(name, help string, typ metricType, labelNames []string, buckets []float64) *family {
	mustValidName(name)
	for _, l := range labelNames {
		mustValidName(l)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labelNames) != len(labelNames) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %s(%d labels), was %s(%d labels)",
				name, typ, len(labelNames), f.typ, len(f.labelNames)))
		}
		return f
	}
	f := &family{
		name:       name,
		help:       help,
		typ:        typ,
		labelNames: labelNames,
		buckets:    buckets,
		children:   make(map[string]*sample),
	}
	r.families[name] = f
	return f
}

// child returns the series for the given label values, creating it with
// make on first use.
func (f *family) child(labelValues []string, make func() any) *sample {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: metric %q takes %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := renderLabels(f.labelNames, labelValues)
	f.mu.Lock()
	defer f.mu.Unlock()
	s, ok := f.children[key]
	if !ok {
		s = &sample{labels: key, metric: make()}
		f.children[key] = s
	}
	return s
}

// Counter is a monotonically increasing float64 value.
type Counter struct{ bits atomic.Uint64 }

// Add increments the counter by d; negative deltas are ignored
// (counters only go up).
func (c *Counter) Add(d float64) {
	if d < 0 {
		return
	}
	addFloat(&c.bits, d)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a float64 value that may go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments (or, with a negative delta, decrements) the gauge.
func (g *Gauge) Add(d float64) { addFloat(&g.bits, d) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates observations into cumulative buckets.
type Histogram struct {
	upper   []float64 // sorted upper bounds, +Inf implicit
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	upper := append([]float64(nil), buckets...)
	sort.Float64s(upper)
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, ub := range h.upper {
		if v <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	addFloat(&h.sumBits, v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// addFloat atomically adds d to the float64 stored in bits.
func addFloat(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + d)
		if bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Counter registers (or finds) an unlabelled counter family and returns
// its single series.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, counterType, nil, nil)
	return f.child(nil, func() any { return new(Counter) }).metric.(*Counter)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers (or finds) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.lookup(name, help, counterType, labelNames, nil)}
}

// With returns the counter for the given label values.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.child(labelValues, func() any { return new(Counter) }).metric.(*Counter)
}

// Gauge registers (or finds) an unlabelled settable gauge family and
// returns its single series.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, gaugeType, nil, nil)
	return f.child(nil, func() any { return new(Gauge) }).metric.(*Gauge)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or finds) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.lookup(name, help, gaugeType, labelNames, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.child(labelValues, func() any { return new(Gauge) }).metric.(*Gauge)
}

// GaugeFunc registers a gauge whose value is read by calling fn at
// exposition time. Re-registering replaces fn (latest wins), so a
// rebuilt server's closures take over cleanly.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, gaugeType, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// CounterFunc registers a counter whose value is read by calling fn at
// exposition time; fn must be monotonically non-decreasing.
// Re-registering replaces fn (latest wins).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.lookup(name, help, counterType, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// HistogramFunc registers a histogram whose state is read by calling fn
// at exposition time — the bridge for histograms maintained elsewhere
// (the runtime/metrics GC-pause and scheduler-latency distributions).
// fn must return cumulative, monotonically non-decreasing bucket counts
// with Count ≥ the last bucket so the rendered +Inf bucket closes the
// series. Re-registering replaces fn (latest wins).
func (r *Registry) HistogramFunc(name, help string, fn func() HistogramSnapshot) {
	f := r.lookup(name, help, histogramType, nil, nil)
	f.mu.Lock()
	f.histFn = fn
	f.mu.Unlock()
}

// Histogram registers (or finds) an unlabelled histogram family with
// the given bucket upper bounds and returns its single series.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := r.lookup(name, help, histogramType, nil, buckets)
	return f.child(nil, func() any { return newHistogram(f.buckets) }).metric.(*Histogram)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers (or finds) a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	return &HistogramVec{r.lookup(name, help, histogramType, labelNames, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.child(labelValues, func() any { return newHistogram(v.f.buckets) }).metric.(*Histogram)
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4), families and series sorted by name for a
// deterministic scrape.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make(map[string]*family, len(r.families))
	for name, f := range r.families {
		names = append(names, name)
		fams[name] = f
	}
	r.mu.Unlock()
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		fams[name].write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) write(b *strings.Builder) {
	f.mu.Lock()
	fn := f.fn
	histFn := f.histFn
	series := make([]*sample, 0, len(f.children))
	for _, s := range f.children {
		series = append(series, s)
	}
	f.mu.Unlock()
	sort.Slice(series, func(i, j int) bool { return series[i].labels < series[j].labels })

	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	if fn != nil {
		fmt.Fprintf(b, "%s %s\n", f.name, formatFloat(fn()))
		return
	}
	if histFn != nil {
		snap := histFn()
		for i, ub := range snap.Buckets {
			var c uint64
			if i < len(snap.Counts) {
				c = snap.Counts[i]
			}
			writeSample(b, f.name, "_bucket", "", `le="`+formatFloat(ub)+`"`, float64(c))
		}
		writeSample(b, f.name, "_bucket", "", `le="+Inf"`, float64(snap.Count))
		writeSample(b, f.name, "_sum", "", "", snap.Sum)
		writeSample(b, f.name, "_count", "", "", float64(snap.Count))
		return
	}
	for _, s := range series {
		switch m := s.metric.(type) {
		case *Counter:
			writeSample(b, f.name, "", s.labels, "", m.Value())
		case *Gauge:
			writeSample(b, f.name, "", s.labels, "", m.Value())
		case *Histogram:
			cum := uint64(0)
			for i, ub := range m.upper {
				cum += m.counts[i].Load()
				writeSample(b, f.name, "_bucket", s.labels,
					`le="`+formatFloat(ub)+`"`, float64(cum))
			}
			// +Inf bucket equals the total count by definition.
			writeSample(b, f.name, "_bucket", s.labels, `le="+Inf"`, float64(m.Count()))
			writeSample(b, f.name, "_sum", s.labels, "", m.Sum())
			writeSample(b, f.name, "_count", s.labels, "", float64(m.Count()))
		}
	}
}

// writeSample emits one exposition line, merging the series labels with
// an optional extra label (the histogram "le").
func writeSample(b *strings.Builder, name, suffix, labels, extra string, v float64) {
	b.WriteString(name)
	b.WriteString(suffix)
	switch {
	case labels != "" && extra != "":
		b.WriteString("{" + labels + "," + extra + "}")
	case labels != "":
		b.WriteString("{" + labels + "}")
	case extra != "":
		b.WriteString("{" + extra + "}")
	}
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// renderLabels renders `k1="v1",k2="v2"` with label-value escaping.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(h string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// mustValidName panics unless name is a valid Prometheus metric/label
// name: [a-zA-Z_:][a-zA-Z0-9_:]*.
func mustValidName(name string) {
	if name == "" {
		panic("telemetry: empty metric or label name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			panic(fmt.Sprintf("telemetry: invalid metric or label name %q", name))
		}
	}
}
