package telemetry

import (
	"context"
	"sync"
	"time"
)

// Span is one timed phase of a trace. Spans form a tree: StartSpan
// nests each new span under the one carried by the context.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time // zero while in progress
	children []*Span
}

// End marks the span finished. Safe on a nil receiver (no active
// trace) and idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// newChild creates and attaches a child span.
func (s *Span) newChild(name string) *Span {
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// SpanSnapshot is the JSON form of a span subtree.
type SpanSnapshot struct {
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationMS float64        `json:"duration_ms"`
	InProgress bool           `json:"in_progress,omitempty"`
	Children   []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot returns a deep copy of the span subtree. In-progress spans
// report their duration so far.
func (s *Span) Snapshot() SpanSnapshot {
	s.mu.Lock()
	end := s.end
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	snap := SpanSnapshot{Name: s.name, Start: s.start}
	if end.IsZero() {
		snap.InProgress = true
		end = time.Now()
	}
	snap.DurationMS = float64(end.Sub(s.start)) / float64(time.Millisecond)
	for _, c := range children {
		snap.Children = append(snap.Children, c.Snapshot())
	}
	return snap
}

type spanKey struct{}

// StartSpan opens a span named name under the span carried by ctx and
// returns a derived context carrying it. When ctx carries no span — no
// trace is active — it returns ctx unchanged and a nil *Span, whose
// End is a safe no-op; instrumented code therefore never branches on
// whether tracing is on.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	child := parent.newChild(name)
	return context.WithValue(ctx, spanKey{}, child), child
}

// Trace is one job's span tree.
type Trace struct {
	ID      string
	Root    *Span
	Started time.Time
}

// Finish ends the root span.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.Root.End()
}

// Snapshot returns the JSON form of the whole trace.
func (t *Trace) Snapshot() TraceSnapshot {
	return TraceSnapshot{ID: t.ID, Started: t.Started, Root: t.Root.Snapshot()}
}

// TraceSnapshot is the wire form served by /debug/trace/{id}.
type TraceSnapshot struct {
	ID      string       `json:"id"`
	Started time.Time    `json:"started"`
	Root    SpanSnapshot `json:"root"`
}

// TraceStore retains the most recent max traces, keyed by id — the
// queryable in-memory trace buffer behind /debug/trace/{id}. All
// methods are safe for concurrent use.
type TraceStore struct {
	mu     sync.Mutex
	max    int
	order  []string // oldest first
	traces map[string]*Trace
}

// NewTraceStore returns a store bounded to max traces (clamped to at
// least 1); the oldest trace is dropped on overflow.
func NewTraceStore(max int) *TraceStore {
	if max < 1 {
		max = 1
	}
	return &TraceStore{max: max, traces: make(map[string]*Trace)}
}

// Start begins a trace with the given id, whose root span becomes the
// current span of the returned context. The caller ends the trace with
// Trace.Finish. Starting an id that already exists replaces the old
// trace.
func (ts *TraceStore) Start(ctx context.Context, id string) (context.Context, *Trace) {
	now := time.Now()
	t := &Trace{ID: id, Root: &Span{name: id, start: now}, Started: now}
	ts.mu.Lock()
	if _, ok := ts.traces[id]; !ok {
		ts.order = append(ts.order, id)
	}
	ts.traces[id] = t
	for len(ts.order) > ts.max {
		delete(ts.traces, ts.order[0])
		ts.order = ts.order[1:]
	}
	ts.mu.Unlock()
	return context.WithValue(ctx, spanKey{}, t.Root), t
}

// Get returns the trace with the given id, which may still be running.
func (ts *TraceStore) Get(id string) (*Trace, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	t, ok := ts.traces[id]
	return t, ok
}

// Len returns the number of retained traces.
func (ts *TraceStore) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.traces)
}
