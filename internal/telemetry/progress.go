package telemetry

import (
	"context"
	"sync/atomic"
)

// Progress counts work done against a self-announced total and carries
// a free-form phase label. Producers (the Monte-Carlo loops) tick it
// from many goroutines; consumers (job snapshots, SSE streams, the CLI
// progress line) read consistent point-in-time snapshots.
//
// All methods are safe on a nil receiver and do nothing, so
// instrumented code ticks unconditionally and pays nothing when no
// reporter rides the context.
type Progress struct {
	done  atomic.Int64
	total atomic.Int64
	phase atomic.Pointer[string]
}

// NewProgress returns an empty reporter.
func NewProgress() *Progress { return &Progress{} }

// Add credits n completed work units.
func (p *Progress) Add(n int64) {
	if p == nil || n == 0 {
		return
	}
	p.done.Add(n)
}

// AddTotal announces n additional expected work units. Each montecarlo
// entry point announces its sample count on entry, so the total grows
// as an experiment discovers work; Fraction stays meaningful throughout
// as "share of the work announced so far".
func (p *Progress) AddTotal(n int64) {
	if p == nil || n == 0 {
		return
	}
	p.total.Add(n)
}

// SetPhase labels the current phase of the run (e.g. "voltage-sweep").
func (p *Progress) SetPhase(s string) {
	if p == nil {
		return
	}
	p.phase.Store(&s)
}

// Snapshot returns the current counters. Safe on nil (zero snapshot).
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	var phase string
	if s := p.phase.Load(); s != nil {
		phase = *s
	}
	return ProgressSnapshot{
		Done:  p.done.Load(),
		Total: p.total.Load(),
		Phase: phase,
	}
}

// ProgressSnapshot is a point-in-time copy of a Progress reporter.
type ProgressSnapshot struct {
	Done  int64  `json:"done"`
	Total int64  `json:"total"`
	Phase string `json:"phase,omitempty"`
}

// Fraction returns done/total clamped to [0, 1], or 0 when the total is
// still unknown.
func (s ProgressSnapshot) Fraction() float64 {
	if s.Total <= 0 {
		return 0
	}
	f := float64(s.Done) / float64(s.Total)
	if f > 1 {
		return 1
	}
	return f
}

type progressKey struct{}

// WithProgress returns a context carrying p.
func WithProgress(ctx context.Context, p *Progress) context.Context {
	return context.WithValue(ctx, progressKey{}, p)
}

// ProgressFrom returns the Progress carried by ctx, or nil — which is a
// valid receiver for every Progress method — when none is attached.
func ProgressFrom(ctx context.Context) *Progress {
	p, _ := ctx.Value(progressKey{}).(*Progress)
	return p
}
