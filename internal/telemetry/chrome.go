package telemetry

import "time"

// Chrome trace-event export: converts a TraceSnapshot into the JSON
// object format understood by Perfetto (ui.perfetto.dev) and
// chrome://tracing, served by GET /debug/trace/{id}?format=chrome and
// written by the ntvsim -trace flag.

// ChromeEvent is one trace-event in the Chrome trace-event format: a
// "complete" event (ph "X") spanning Dur microseconds from Ts.
type ChromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds since the trace root started
	Dur  float64        `json:"dur"` // microseconds
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace is the trace-event JSON object wrapping the event array.
type ChromeTrace struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Chrome converts the snapshot into Chrome trace-event JSON. Every span
// becomes a complete ("X") event whose timestamp is microseconds since
// the root span started; nesting is recovered by the viewer from
// timestamp containment on the single rendered thread. In-progress
// spans export their duration so far with an "in_progress" arg.
func (t TraceSnapshot) Chrome() ChromeTrace {
	out := ChromeTrace{TraceEvents: []ChromeEvent{}, DisplayTimeUnit: "ms"}
	var walk func(s SpanSnapshot)
	walk = func(s SpanSnapshot) {
		ev := ChromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start.Sub(t.Root.Start)) / float64(time.Microsecond),
			Dur:  s.DurationMS * 1e3,
			PID:  1,
			TID:  1,
		}
		if s.InProgress {
			ev.Args = map[string]any{"in_progress": true}
		}
		out.TraceEvents = append(out.TraceEvents, ev)
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(t.Root)
	return out
}
