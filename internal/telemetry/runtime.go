package telemetry

import (
	"math"
	"runtime"
	runtimemetrics "runtime/metrics"
	"sync"
)

// Go-runtime exposition: the ntvsim_go_* catalogue bridges
// runtime/metrics onto the Default registry so GC pressure, heap state
// and scheduler health are visible on the same /metrics scrape as the
// service counters. PR 6's cancel-latency regression (span-row garbage
// stretching GC-assist time) is exactly the class of fault these
// surface before a hand-run benchmark does.

// runtimeGauges maps exported gauge/counter names to the
// runtime/metrics sample that backs them. Candidates are tried in
// order so the bridge degrades gracefully across toolchain versions.
var runtimeGauges = []struct {
	name       string
	help       string
	counter    bool
	candidates []string
}{
	{"ntvsim_go_heap_live_bytes", "Heap memory occupied by live objects (runtime/metrics heap objects class).",
		false, []string{"/memory/classes/heap/objects:bytes"}},
	{"ntvsim_go_heap_goal_bytes", "Heap size target of the current GC cycle.",
		false, []string{"/gc/heap/goal:bytes"}},
	{"ntvsim_go_gc_cycles_total", "Completed GC cycles.",
		true, []string{"/gc/cycles/total:gc-cycles"}},
	{"ntvsim_go_alloc_bytes_total", "Cumulative bytes allocated on the heap.",
		true, []string{"/gc/heap/allocs:bytes"}},
}

// runtimeHistograms maps exported histogram names to their
// runtime/metrics distribution, re-bucketed onto fixed upper bounds to
// keep the exposition compact (runtime histograms carry hundreds of
// native buckets).
var runtimeHistograms = []struct {
	name       string
	help       string
	buckets    []float64
	candidates []string
}{
	{"ntvsim_go_gc_pause_seconds", "Distribution of stop-the-world GC pause latencies.",
		[]float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1},
		[]string{"/sched/pauses/total/gc:seconds", "/gc/pauses:seconds"}},
	{"ntvsim_go_sched_latency_seconds", "Distribution of goroutine scheduling latencies (runnable to running).",
		[]float64{1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1},
		[]string{"/sched/latencies:seconds"}},
}

var registerRuntimeOnce sync.Once

// RegisterRuntimeMetrics registers the ntvsim_go_* catalogue on the
// Default registry: GC pause and scheduler-latency histograms, heap
// live/goal gauges, allocation and GC-cycle counters, goroutine and
// GOMAXPROCS gauges. Values are sampled from runtime/metrics at
// exposition time, so an idle scrape costs one batched Read call.
// Safe to call more than once; only the first call registers.
func RegisterRuntimeMetrics() {
	registerRuntimeOnce.Do(registerRuntimeMetrics)
}

func registerRuntimeMetrics() {
	available := make(map[string]runtimemetrics.ValueKind)
	for _, d := range runtimemetrics.All() {
		available[d.Name] = d.Kind
	}
	pick := func(candidates []string, kind runtimemetrics.ValueKind) string {
		for _, c := range candidates {
			if available[c] == kind {
				return c
			}
		}
		return ""
	}

	Default.GaugeFunc("ntvsim_go_goroutines", "Live goroutines.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	Default.GaugeFunc("ntvsim_go_gomaxprocs", "GOMAXPROCS at exposition time.", func() float64 {
		return float64(runtime.GOMAXPROCS(0))
	})

	for _, g := range runtimeGauges {
		name := pick(g.candidates, runtimemetrics.KindUint64)
		if name == "" {
			continue
		}
		fn := func() float64 { return float64(readUint64(name)) }
		if g.counter {
			Default.CounterFunc(g.name, g.help, fn)
		} else {
			Default.GaugeFunc(g.name, g.help, fn)
		}
	}
	for _, h := range runtimeHistograms {
		name := pick(h.candidates, runtimemetrics.KindFloat64Histogram)
		if name == "" {
			continue
		}
		buckets := h.buckets
		Default.HistogramFunc(h.name, h.help, func() HistogramSnapshot {
			return rebucket(readHistogram(name), buckets)
		})
	}
}

// readUint64 samples one uint64 runtime metric.
func readUint64(name string) uint64 {
	s := []runtimemetrics.Sample{{Name: name}}
	runtimemetrics.Read(s)
	if s[0].Value.Kind() != runtimemetrics.KindUint64 {
		return 0
	}
	return s[0].Value.Uint64()
}

// readHistogram samples one histogram runtime metric; nil when the
// metric is unavailable.
func readHistogram(name string) *runtimemetrics.Float64Histogram {
	s := []runtimemetrics.Sample{{Name: name}}
	runtimemetrics.Read(s)
	if s[0].Value.Kind() != runtimemetrics.KindFloat64Histogram {
		return nil
	}
	return s[0].Value.Float64Histogram()
}

// rebucket folds a runtime/metrics histogram (boundary-per-bucket, often
// hundreds of native buckets) onto the given fixed upper bounds. Counts
// are cumulative: a native bucket contributes to the first target bound
// at or above its own upper boundary, which never undercounts a bound.
// Sum is an upper-bound estimate (observations priced at their native
// bucket's upper boundary, capped at the largest finite target bound),
// good enough for rate dashboards; the bucket counts are exact.
func rebucket(h *runtimemetrics.Float64Histogram, bounds []float64) HistogramSnapshot {
	snap := HistogramSnapshot{
		Buckets: bounds,
		Counts:  make([]uint64, len(bounds)),
	}
	if h == nil {
		return snap
	}
	top := bounds[len(bounds)-1]
	for i, count := range h.Counts {
		// Native bucket i covers (Buckets[i], Buckets[i+1]].
		upper := h.Buckets[i+1]
		snap.Count += count
		price := upper
		if math.IsInf(price, +1) || price > top {
			price = top
		}
		snap.Sum += float64(count) * price
		for j, b := range bounds {
			if upper <= b {
				snap.Counts[j] += count
				break
			}
		}
	}
	// Make the per-bound tallies cumulative.
	for j := 1; j < len(snap.Counts); j++ {
		snap.Counts[j] += snap.Counts[j-1]
	}
	return snap
}
