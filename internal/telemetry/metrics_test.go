package telemetry

import (
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Total requests.")
	c.Add(3)
	c.Inc()
	c.Add(-5) // ignored: counters only go up
	g := r.Gauge("test_queue_depth", "Jobs waiting.")
	g.Set(7)
	g.Add(-2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP test_queue_depth Jobs waiting.
# TYPE test_queue_depth gauge
test_queue_depth 5
# HELP test_requests_total Total requests.
# TYPE test_requests_total counter
test_requests_total 4
`
	if b.String() != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", b.String(), want)
	}
}

func TestLabelAndHelpEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("test_weird_total", "Help with \\ and\nnewline.", "name")
	v.With("a\"b\\c\nd").Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP test_weird_total Help with \\ and\nnewline.`) {
		t.Errorf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `test_weird_total{name="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestHistogramCumulativeBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.7, 5, 100} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 3`,
		`test_latency_seconds_bucket{le="10"} 4`,
		`test_latency_seconds_bucket{le="+Inf"} 5`,
		`test_latency_seconds_count 5`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
	if h.Sum() != 106.25 {
		t.Errorf("sum = %v, want 106.25", h.Sum())
	}
	// Buckets must be cumulative: each bucket count >= the previous.
	counts := parseBucketCounts(t, out, "test_latency_seconds_bucket")
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Errorf("bucket counts not cumulative: %v", counts)
		}
	}
}

func TestHistogramVecLabels(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("test_dur_seconds", "Per-experiment duration.", []float64{1}, "experiment")
	v.With("fig4").Observe(0.5)
	v.With("fig4").Observe(2)
	v.With("fig6").Observe(0.1)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		`test_dur_seconds_bucket{experiment="fig4",le="1"} 1`,
		`test_dur_seconds_bucket{experiment="fig4",le="+Inf"} 2`,
		`test_dur_seconds_count{experiment="fig4"} 2`,
		`test_dur_seconds_bucket{experiment="fig6",le="+Inf"} 1`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("missing %q in:\n%s", line, out)
		}
	}
}

func TestFuncMetricsLatestWins(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("test_fn_gauge", "fn", func() float64 { return 1 })
	r.GaugeFunc("test_fn_gauge", "fn", func() float64 { return 2 })
	r.CounterFunc("test_fn_total", "fn", func() float64 { return 42 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "test_fn_gauge 2\n") {
		t.Errorf("latest GaugeFunc did not win:\n%s", out)
	}
	if !strings.Contains(out, "test_fn_total 42\n") {
		t.Errorf("CounterFunc missing:\n%s", out)
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_idem_total", "x")
	b := r.Counter("test_idem_total", "x")
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("type-mismatched re-registration did not panic")
		}
	}()
	r.Gauge("test_idem_total", "x")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "9abc", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "x")
		}()
	}
}

func TestConcurrentCounterAdds(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_conc_total", "x")
	h := r.Histogram("test_conc_seconds", "x", DefBuckets)
	var wg sync.WaitGroup
	const workers, per = 16, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %v, want %v", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %v, want %v", got, workers*per)
	}
	if math.Abs(h.Sum()-workers*per*0.01) > 1e-6 {
		t.Errorf("histogram sum = %v", h.Sum())
	}
}

// parseBucketCounts extracts the sample values of every line starting
// with prefix, in exposition order.
func parseBucketCounts(t *testing.T, out, prefix string) []float64 {
	t.Helper()
	var counts []float64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		counts = append(counts, v)
	}
	return counts
}
