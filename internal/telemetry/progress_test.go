package telemetry

import (
	"context"
	"sync"
	"testing"
)

func TestNilProgressIsSafe(t *testing.T) {
	var p *Progress
	p.Add(10)
	p.AddTotal(100)
	p.SetPhase("x")
	if s := p.Snapshot(); s != (ProgressSnapshot{}) {
		t.Errorf("nil snapshot = %+v", s)
	}
}

func TestProgressSnapshot(t *testing.T) {
	p := NewProgress()
	p.AddTotal(200)
	p.Add(50)
	p.SetPhase("sweep")
	s := p.Snapshot()
	if s.Done != 50 || s.Total != 200 || s.Phase != "sweep" {
		t.Errorf("snapshot = %+v", s)
	}
	if f := s.Fraction(); f != 0.25 {
		t.Errorf("fraction = %v, want 0.25", f)
	}
}

func TestFractionEdgeCases(t *testing.T) {
	if f := (ProgressSnapshot{Done: 5}).Fraction(); f != 0 {
		t.Errorf("unknown total fraction = %v, want 0", f)
	}
	if f := (ProgressSnapshot{Done: 20, Total: 10}).Fraction(); f != 1 {
		t.Errorf("overshoot fraction = %v, want 1", f)
	}
}

func TestProgressContext(t *testing.T) {
	if ProgressFrom(context.Background()) != nil {
		t.Error("empty context returned a reporter")
	}
	p := NewProgress()
	ctx := WithProgress(context.Background(), p)
	if ProgressFrom(ctx) != p {
		t.Error("reporter did not round-trip through context")
	}
}

// TestProgressConcurrent hammers one reporter from many goroutines the
// way parallel Monte-Carlo workers do; run with -race in CI.
func TestProgressConcurrent(t *testing.T) {
	p := NewProgress()
	const workers, per = 32, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p.AddTotal(per)
			for i := 0; i < per; i++ {
				p.Add(1)
				if i%500 == 0 {
					p.SetPhase("worker-phase")
					_ = p.Snapshot()
				}
			}
		}(w)
	}
	// Concurrent readers must always observe done <= total and
	// monotonically non-decreasing done counts.
	stop := make(chan struct{})
	var readerWg sync.WaitGroup
	readerWg.Add(1)
	go func() {
		defer readerWg.Done()
		var lastDone int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := p.Snapshot()
			if s.Done < lastDone {
				t.Errorf("done went backwards: %d -> %d", lastDone, s.Done)
				return
			}
			lastDone = s.Done
		}
	}()
	wg.Wait()
	close(stop)
	readerWg.Wait()
	s := p.Snapshot()
	if s.Done != workers*per || s.Total != workers*per {
		t.Errorf("final snapshot = %+v, want %d/%d", s, workers*per, workers*per)
	}
}
