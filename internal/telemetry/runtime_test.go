package telemetry

import (
	"context"
	"fmt"
	"math"
	runtimemetrics "runtime/metrics"
	"strings"
	"testing"
	"time"
)

func TestGaugeVecExposition(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("test_build_info", "Build info.", "version", "go")
	v.With("(devel)", "go1.22").Set(1)
	v.With("v1.0.0", "go1.22").Set(1)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE test_build_info gauge") {
		t.Errorf("missing TYPE line:\n%s", out)
	}
	for _, want := range []string{
		`test_build_info{version="(devel)",go="go1.22"} 1`,
		`test_build_info{version="v1.0.0",go="go1.22"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramFuncExposition(t *testing.T) {
	r := NewRegistry()
	r.HistogramFunc("test_pause_seconds", "Pauses.", func() HistogramSnapshot {
		return HistogramSnapshot{
			Buckets: []float64{0.1, 1},
			Counts:  []uint64{2, 5}, // cumulative
			Count:   7,
			Sum:     3.5,
		}
	})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_pause_seconds Pauses.",
		"# TYPE test_pause_seconds histogram",
		`test_pause_seconds_bucket{le="0.1"} 2`,
		`test_pause_seconds_bucket{le="1"} 5`,
		`test_pause_seconds_bucket{le="+Inf"} 7`,
		"test_pause_seconds_sum 3.5",
		"test_pause_seconds_count 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestRegisterRuntimeMetrics(t *testing.T) {
	RegisterRuntimeMetrics()
	RegisterRuntimeMetrics() // idempotent

	var b strings.Builder
	if err := Default.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// These must exist on every supported toolchain (>= go1.22).
	for _, name := range []string{
		"ntvsim_go_goroutines",
		"ntvsim_go_gomaxprocs",
		"ntvsim_go_heap_live_bytes",
		"ntvsim_go_heap_goal_bytes",
		"ntvsim_go_gc_cycles_total",
		"ntvsim_go_alloc_bytes_total",
		"ntvsim_go_gc_pause_seconds_bucket",
		"ntvsim_go_sched_latency_seconds_bucket",
	} {
		if !strings.Contains(out, "\n"+name) && !strings.HasPrefix(out, name) {
			t.Errorf("runtime metric %s missing from exposition", name)
		}
	}
	if !strings.Contains(out, `ntvsim_go_gc_pause_seconds_bucket{le="+Inf"}`) {
		t.Error("gc pause histogram missing +Inf bucket")
	}
}

// TestRebucket checks the native-to-fixed histogram fold: counts are
// preserved exactly, made cumulative, and the +Inf count equals the
// total observation count.
func TestRebucket(t *testing.T) {
	h := &runtimemetrics.Float64Histogram{
		// Native buckets: (-Inf,1e-6], (1e-6,1e-4], (1e-4,5e-2], (5e-2,+Inf)
		Counts:  []uint64{3, 4, 5, 2},
		Buckets: []float64{math.Inf(-1), 1e-6, 1e-4, 5e-2, math.Inf(+1)},
	}
	bounds := []float64{1e-5, 1e-3, 1e-1, 1}
	snap := rebucket(h, bounds)

	if snap.Count != 14 {
		t.Errorf("Count = %d, want 14", snap.Count)
	}
	// Native uppers 1e-6→bound 1e-5; 1e-4→1e-3; 5e-2→1e-1; +Inf→none.
	want := []uint64{3, 7, 12, 12}
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Errorf("Counts[%d] = %d, want %d (all: %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	for i := 1; i < len(snap.Counts); i++ {
		if snap.Counts[i] < snap.Counts[i-1] {
			t.Fatalf("bucket counts not monotone: %v", snap.Counts)
		}
	}
	if snap.Sum <= 0 || math.IsInf(snap.Sum, 0) || math.IsNaN(snap.Sum) {
		t.Errorf("Sum = %v, want a finite positive estimate", snap.Sum)
	}

	empty := rebucket(nil, bounds)
	if empty.Count != 0 || empty.Sum != 0 || len(empty.Counts) != len(bounds) {
		t.Errorf("nil histogram rebucket = %+v", empty)
	}
}

func TestChromeExport(t *testing.T) {
	store := NewTraceStore(4)
	ctx, trace := store.Start(context.Background(), "job-1")
	c1, s1 := StartSpan(ctx, "phase/load")
	_, s2 := StartSpan(c1, "phase/load/parse")
	time.Sleep(2 * time.Millisecond)
	s2.End()
	s1.End()
	_, s3 := StartSpan(ctx, "phase/run")
	s3.End()
	trace.Finish()

	ct := trace.Snapshot().Chrome()
	if ct.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", ct.DisplayTimeUnit)
	}
	if len(ct.TraceEvents) != 4 {
		t.Fatalf("%d events, want 4 (root + 3 spans)", len(ct.TraceEvents))
	}
	byName := map[string]ChromeEvent{}
	for _, ev := range ct.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %s has phase %q, want X", ev.Name, ev.Ph)
		}
		if ev.PID != 1 || ev.TID != 1 {
			t.Errorf("event %s pid/tid = %d/%d", ev.Name, ev.PID, ev.TID)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Errorf("event %s has negative ts/dur: %+v", ev.Name, ev)
		}
		byName[ev.Name] = ev
	}
	root, parse := byName["job-1"], byName["phase/load/parse"]
	if root.Ts != 0 {
		t.Errorf("root ts = %v, want 0", root.Ts)
	}
	// The child must nest inside its parent by timestamp containment —
	// that is how the viewer recovers the tree.
	load := byName["phase/load"]
	if parse.Ts < load.Ts || parse.Ts+parse.Dur > load.Ts+load.Dur+1e-3 {
		t.Errorf("parse [%v,%v] not contained in load [%v,%v]",
			parse.Ts, parse.Ts+parse.Dur, load.Ts, load.Ts+load.Dur)
	}
	if parse.Dur < 1500 { // slept 2ms; allow scheduling slop
		t.Errorf("parse dur = %vµs, want >= 1500", parse.Dur)
	}
}

func TestChromeExportInProgress(t *testing.T) {
	store := NewTraceStore(1)
	ctx, trace := store.Start(context.Background(), "job-2")
	_, _ = StartSpan(ctx, "open") // never ended
	ct := trace.Snapshot().Chrome()
	var open *ChromeEvent
	for i := range ct.TraceEvents {
		if ct.TraceEvents[i].Name == "open" {
			open = &ct.TraceEvents[i]
		}
	}
	if open == nil {
		t.Fatal("open span missing from export")
	}
	if open.Args["in_progress"] != true {
		t.Errorf("in-progress span args = %v", open.Args)
	}
	trace.Finish()
}

func TestChromeExportJSONShape(t *testing.T) {
	store := NewTraceStore(1)
	_, trace := store.Start(context.Background(), "job-3")
	trace.Finish()
	ct := trace.Snapshot().Chrome()
	if ct.TraceEvents == nil {
		t.Fatal("traceEvents must be a non-nil array (Perfetto rejects null)")
	}
	_ = fmt.Sprintf("%v", ct)
}
