package montecarlo

import (
	"runtime"
	"testing"

	"github.com/ntvsim/ntvsim/internal/rng"
)

// The allocation-regression tests run single-worker (GOMAXPROCS=1) so
// the budget is exact: parallel runs add a fixed per-worker overhead
// (goroutine, errs slice, one stream each) that is still O(workers) per
// call, never O(n) per sample. Each budget is a per-*call* bound — the
// point is that it does not scale with the sample count.

// allocsSingleWorker reports AllocsPerRun for f with GOMAXPROCS pinned
// to 1.
func allocsSingleWorker(f func()) float64 {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	return testing.AllocsPerRun(10, f)
}

func TestMomentsAllocationBound(t *testing.T) {
	const n = 8192
	fn := func(r *rng.Stream) float64 { return r.Norm() }
	allocs := allocsSingleWorker(func() { Moments(1, n, fn) })
	// Expected: one worker stream escape plus closure plumbing —
	// constant, and far below one alloc per call amortized over n
	// samples.
	if allocs > 8 {
		t.Errorf("Moments(n=%d) allocates %v per call, want ≤ 8", n, allocs)
	}
	if perSample := allocs / n; perSample > 0.001 {
		t.Errorf("Moments allocates %v per sample, want 0 (was 1+ before stream reuse)", perSample)
	}
}

func TestSampleAllocationBound(t *testing.T) {
	const n = 8192
	fn := func(r *rng.Stream) float64 { return r.Float64() }
	allocs := allocsSingleWorker(func() { Sample(1, n, fn) })
	// Expected: the n-float result slice, one worker stream, closure
	// plumbing. The result slice is the output, not hot-loop garbage.
	if allocs > 8 {
		t.Errorf("Sample(n=%d) allocates %v per call, want ≤ 8", n, allocs)
	}
}

func TestSampleVecAllocationBound(t *testing.T) {
	const n, width = 4096, 8
	fn := func(r *rng.Stream, dst []float64) {
		for i := range dst {
			dst[i] = r.Float64()
		}
	}
	allocs := allocsSingleWorker(func() { SampleVec(1, n, width, fn) })
	// Expected: the row-header slice + ONE flat slab (this was 1+n row
	// allocations before the slab), one worker stream, closure plumbing.
	if allocs > 8 {
		t.Errorf("SampleVec(n=%d,width=%d) allocates %v per call, want ≤ 8", n, width, allocs)
	}
}

func TestSampleFlatAllocationBound(t *testing.T) {
	const n, width = 4096, 8
	fn := func(r *rng.Stream, dst []float64) {
		for i := range dst {
			dst[i] = r.Float64()
		}
	}
	allocs := allocsSingleWorker(func() { SampleFlat(1, n, width, fn) })
	// Expected: ONE flat slab, one worker stream, closure plumbing — no
	// row headers at all, so nothing here is pointer-dense for the GC.
	if allocs > 6 {
		t.Errorf("SampleFlat(n=%d,width=%d) allocates %v per call, want ≤ 6", n, width, allocs)
	}
}

// TestAllocationsDoNotScaleWithN is the amortization property stated
// directly: quadrupling the sample count must not change the per-call
// allocation count (result buffers aside, which the fixed budget above
// already covers — here Moments returns no buffer at all).
func TestAllocationsDoNotScaleWithN(t *testing.T) {
	fn := func(r *rng.Stream) float64 { return r.Norm() }
	small := allocsSingleWorker(func() { Moments(3, 1024, fn) })
	large := allocsSingleWorker(func() { Moments(3, 4096, fn) })
	if large > small {
		t.Errorf("Moments allocations scale with n: %v @1024 vs %v @4096", small, large)
	}
}
