package montecarlo

import (
	"context"
	"errors"
	"runtime"
	"testing"

	"github.com/ntvsim/ntvsim/internal/faults"
	"github.com/ntvsim/ntvsim/internal/rng"
)

// TestInjectedChunkError proves the chunk-boundary hook: an armed
// injector fails the sampling call with its typed error, and the same
// call without an injector is untouched.
func TestInjectedChunkError(t *testing.T) {
	fn := func(r *rng.Stream) float64 { return r.Float64() }
	in := faults.New(1, faults.Rule{Site: faults.SiteMonteCarloChunk, Kind: faults.KindError})
	ctx := faults.With(context.Background(), in)
	_, err := SampleCtx(ctx, 42, 500, fn)
	var fe *faults.Error
	if !errors.As(err, &fe) {
		t.Fatalf("SampleCtx under an armed injector returned %v, want *faults.Error", err)
	}
	if in.Fired() != 1 {
		t.Fatalf("injector fired %d times, want 1", in.Fired())
	}
	// A later, clean call is bit-identical to the no-context path.
	out, err := SampleCtx(context.Background(), 42, 500, fn)
	if err != nil {
		t.Fatalf("clean SampleCtx: %v", err)
	}
	want := Sample(42, 500, fn)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("sample %d diverged after an injected run: %g vs %g", i, out[i], want[i])
		}
	}
}

// TestWorkerPanicContained pins the panic contract of the parallel
// paths: a panic in fn surfaces as a panic on the calling goroutine —
// carrying the worker's original stack — instead of killing the process
// from a bare worker goroutine. GOMAXPROCS is raised for the test so
// the goroutine-spawning path runs even on single-CPU machines (the
// single-worker path panics on the caller goroutine natively and needs
// no containment).
func TestWorkerPanicContained(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	paths := []struct {
		name string
		call func(ctx context.Context, fn func(r *rng.Stream) float64)
	}{
		{"SampleCtx", func(ctx context.Context, fn func(r *rng.Stream) float64) {
			_, _ = SampleCtx(ctx, 1, 4096, fn)
		}},
		{"SampleVecCtx", func(ctx context.Context, fn func(r *rng.Stream) float64) {
			_, _ = SampleVecCtx(ctx, 1, 4096, 1, func(r *rng.Stream, dst []float64) { dst[0] = fn(r) })
		}},
		{"MomentsCtx", func(ctx context.Context, fn func(r *rng.Stream) float64) {
			_, _ = MomentsCtx(ctx, 1, 4096, fn)
		}},
	}
	for _, p := range paths {
		t.Run(p.name, func(t *testing.T) {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatal("panic in fn did not propagate to the caller")
				}
				s, ok := r.(interface{ Stack() []byte })
				if !ok || len(s.Stack()) == 0 {
					t.Fatalf("recovered %T without the worker's stack", r)
				}
			}()
			p.call(context.Background(), func(r *rng.Stream) float64 {
				panic("kernel bug")
			})
		})
	}
}

// TestInjectedPanicAtChunk drives the panic through the injector (the
// "panic at sample N" scenario of the fault cookbook) rather than fn.
func TestInjectedPanicAtChunk(t *testing.T) {
	in := faults.New(1, faults.Rule{Site: faults.SiteMonteCarloChunk, Kind: faults.KindPanic, After: 2})
	ctx := faults.With(context.Background(), in)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("injected panic did not propagate")
		}
	}()
	_, _ = SampleCtx(ctx, 1, 4096, func(r *rng.Stream) float64 { return r.Float64() })
}
