package montecarlo

import (
	"context"
	"testing"

	"github.com/ntvsim/ntvsim/internal/rng"
)

// Kernel microbenchmarks: the raw sampling loops that every figure and
// table in the study runs millions of times. Each reports samples/sec so
// the BENCH_*.json trajectory (see docs/BENCHMARKS.md) tracks kernel
// throughput directly, alongside the per-artifact benchmarks in the
// repository root. kernelN is sized so one op is big enough to amortize
// per-call setup but small enough for -benchtime=10x CI smoke runs.
const kernelN = 1 << 14

// benchSamplesPerSec attaches the throughput metric: ops·samplesPerOp
// over elapsed time.
func benchSamplesPerSec(b *testing.B, samplesPerOp int) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(samplesPerOp)*float64(b.N)/s, "samples/sec")
	}
}

// BenchmarkKernelMoments is the headline kernel: streaming-moment
// accumulation of a Gaussian statistic, the shape of every yield and
// margin sweep.
func BenchmarkKernelMoments(b *testing.B) {
	fn := func(r *rng.Stream) float64 { return r.Gauss(3, 2) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Moments(20120603, kernelN, fn)
	}
	benchSamplesPerSec(b, kernelN)
}

// BenchmarkKernelSample measures the value-retaining scalar kernel used
// by the distribution and quantile figures.
func BenchmarkKernelSample(b *testing.B) {
	fn := func(r *rng.Stream) float64 { return r.Norm() }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sample(20120603, kernelN, fn)
	}
	benchSamplesPerSec(b, kernelN)
}

// BenchmarkKernelSampleVec measures the vector kernel behind the
// lane-delay sweeps (width 16 ≈ one SIMD cluster of lanes).
func BenchmarkKernelSampleVec(b *testing.B) {
	const width = 16
	fn := func(r *rng.Stream, dst []float64) {
		for i := range dst {
			dst[i] = r.Norm()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampleVec(20120603, kernelN/width, width, fn)
	}
	benchSamplesPerSec(b, kernelN/width*width)
}

// BenchmarkKernelMomentsSerial pins single-worker throughput (the
// per-sample cost with no parallel speedup masking it), for comparing
// kernel changes across machines with different core counts.
func BenchmarkKernelMomentsSerial(b *testing.B) {
	fn := func(r *rng.Stream) float64 { return r.Gauss(3, 2) }
	var total float64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := runSpan(context.Background(), nil, 20120603, 0, kernelN, func(_ int, r *rng.Stream) {
			total += fn(r)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	benchSamplesPerSec(b, kernelN)
	_ = total
}
