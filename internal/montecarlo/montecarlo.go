// Package montecarlo runs deterministic, parallel Monte-Carlo sampling.
//
// Every sample index derives its own PRNG sub-stream from the experiment
// seed, so results are bit-identical regardless of GOMAXPROCS or
// scheduling order — a requirement for the reproducibility claims of the
// study (and for stable golden tests).
package montecarlo

import (
	"runtime"
	"sync"

	"github.com/ntvsim/ntvsim/internal/rng"
	"github.com/ntvsim/ntvsim/internal/stats"
)

// Sample evaluates fn for n independent sample indices and returns the
// values in index order. Each invocation receives a PRNG stream derived
// from (seed, index).
func Sample(seed uint64, n int, fn func(r *rng.Stream) float64) []float64 {
	out := make([]float64, n)
	parallelFor(n, func(i int) {
		out[i] = fn(rng.NewSub(seed, i))
	})
	return out
}

// SampleVec evaluates a vector-valued fn for n sample indices. fn must
// write its outputs into dst (length width); the result is an n×width
// row-major matrix flattened into rows.
func SampleVec(seed uint64, n, width int, fn func(r *rng.Stream, dst []float64)) [][]float64 {
	out := make([][]float64, n)
	parallelFor(n, func(i int) {
		row := make([]float64, width)
		fn(rng.NewSub(seed, i), row)
		out[i] = row
	})
	return out
}

// Moments evaluates fn for n sample indices and accumulates streaming
// moments without retaining individual samples. Use it when only μ, σ
// and extrema are needed and n is large.
func Moments(seed uint64, n int, fn func(r *rng.Stream) float64) stats.Stream {
	workers := workerCount(n)
	partial := make([]stats.Stream, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := span(n, workers, w)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				partial[w].Add(fn(rng.NewSub(seed, i)))
			}
		}(w, lo, hi)
	}
	wg.Wait()
	var total stats.Stream
	for w := range partial {
		total.Merge(&partial[w])
	}
	return total
}

// parallelFor runs body(i) for i in [0, n) across GOMAXPROCS workers.
func parallelFor(n int, body func(i int)) {
	workers := workerCount(n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := span(n, workers, w)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				body(i)
			}
		}(lo, hi)
	}
	wg.Wait()
}

func workerCount(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// span returns the half-open index range assigned to worker w of workers.
func span(n, workers, w int) (lo, hi int) {
	lo = n * w / workers
	hi = n * (w + 1) / workers
	return lo, hi
}
