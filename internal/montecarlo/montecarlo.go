// Package montecarlo runs deterministic, parallel Monte-Carlo sampling.
//
// Every sample index derives its own PRNG sub-stream from the experiment
// seed, so results are bit-identical regardless of GOMAXPROCS or
// scheduling order — a requirement for the reproducibility claims of the
// study (and for stable golden tests).
//
// Each entry point has a context-aware variant (SampleCtx, SampleVecCtx,
// SampleFlatCtx, MomentsCtx) that checks for cancellation once per worker chunk of
// checkEvery samples. An uncancelled context changes nothing: the same
// sub-stream derivation runs in the same index order, so results stay
// bit-identical to the context-free variants. The package also keeps a
// process-wide count of evaluated samples (SamplesEvaluated) for service
// metrics.
//
// When the context carries a telemetry.Progress reporter, each Ctx
// entry point announces its sample count on entry and every worker
// ticks the reporter once per checkEvery-sample chunk, so callers can
// watch samples-done/samples-total while a sweep runs. Without a
// reporter the loops are unchanged — the reporter pointer is nil and
// every tick is a nil-receiver no-op.
//
// The same chunk boundary hosts a fault-injection hook
// (faults.SiteMonteCarloChunk) that is inert unless the context carries
// an armed faults.Injector — tests use it to panic or fail a sampling
// loop at a deterministic sample index. A panic in fn (injected or
// real) never unwinds a worker goroutine: it is contained and re-raised
// on the calling goroutine with the original stack attached.
//
// # Allocation discipline
//
// The sampling loops are the hot path of every figure and table in the
// study, so they are allocation-free per sample: each worker owns one
// rng.Stream that is Reset (in place, no heap) to the per-index
// sub-stream before every fn call, which is bit-identical to handing fn
// a fresh rng.NewSub(seed, i). The only allocations are per call —
// the result buffers and one stream per worker — and alloc-regression
// tests in this package enforce that bound.
//
// SampleVec/SampleVecCtx back all n rows with a single flat row-major
// slab and return length=capacity row views into it: rows are disjoint
// (writing one row never changes another, and append on a row
// reallocates rather than clobbering its neighbour), but they share one
// backing array, so retaining any single row retains the whole n×width
// slab and WriteTo-style in-place reuse of a row is visible through the
// returned matrix. Callers that need an independently-owned row must
// copy it. SampleFlat/SampleFlatCtx expose the slab itself, skipping
// the n row headers — the right shape when n is huge and the caller
// reads columns rather than retaining rows, because a []float64 slab is
// opaque to the garbage collector while n slice headers are a
// pointer-dense array it must scan.
package montecarlo

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"github.com/ntvsim/ntvsim/internal/faults"
	"github.com/ntvsim/ntvsim/internal/rng"
	"github.com/ntvsim/ntvsim/internal/stats"
	"github.com/ntvsim/ntvsim/internal/telemetry"
)

// checkEvery is the cancellation-poll granularity: each worker checks
// ctx.Done() once per checkEvery evaluated samples, bounding the extra
// work after cancellation to checkEvery·workers samples.
const checkEvery = 64

// samplesEvaluated counts every fn invocation completed by this package
// across all entry points, for service-level metrics.
var samplesEvaluated atomic.Uint64

// SamplesEvaluated returns the process-wide number of Monte-Carlo sample
// evaluations completed since startup.
func SamplesEvaluated() uint64 { return samplesEvaluated.Load() }

func init() {
	telemetry.Default.CounterFunc("ntvsim_mc_samples_evaluated_total",
		"Monte-Carlo sample evaluations completed since process start.",
		func() float64 { return float64(samplesEvaluated.Load()) })
}

// Sample evaluates fn for n independent sample indices and returns the
// values in index order. Each invocation receives a PRNG stream derived
// from (seed, index).
func Sample(seed uint64, n int, fn func(r *rng.Stream) float64) []float64 {
	out, _ := SampleCtx(context.Background(), seed, n, fn)
	return out
}

// SampleCtx is Sample with cooperative cancellation: workers poll ctx
// every checkEvery samples and the call returns ctx's error once any
// worker observes cancellation. When ctx is never cancelled the result
// is bit-identical to Sample with the same arguments.
func SampleCtx(ctx context.Context, seed uint64, n int, fn func(r *rng.Stream) float64) ([]float64, error) {
	out := make([]float64, n)
	prog := telemetry.ProgressFrom(ctx)
	prog.AddTotal(int64(n))
	if err := parallelFor(ctx, prog, seed, n, func(i int, r *rng.Stream) {
		out[i] = fn(r)
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// SampleVec evaluates a vector-valued fn for n sample indices. fn must
// write its outputs into dst (length width); the result is an n×width
// row-major matrix flattened into rows.
//
// All rows are views into one flat backing slab (see the package comment
// on allocation discipline): disjoint and append-safe, but sharing one
// allocation. Copy a row before retaining it independently.
func SampleVec(seed uint64, n, width int, fn func(r *rng.Stream, dst []float64)) [][]float64 {
	out, _ := SampleVecCtx(context.Background(), seed, n, width, fn)
	return out
}

// SampleVecCtx is SampleVec with cooperative cancellation, under the
// same bit-identical-when-uncancelled contract as SampleCtx and the same
// shared-slab row semantics as SampleVec.
func SampleVecCtx(ctx context.Context, seed uint64, n, width int, fn func(r *rng.Stream, dst []float64)) ([][]float64, error) {
	slab, err := SampleFlatCtx(ctx, seed, n, width, fn)
	if err != nil {
		return nil, err
	}
	// Rows are sliced with capacity pinned to width so an append on a
	// returned row can never write into the next row.
	out := make([][]float64, n)
	for i := range out {
		out[i] = slab[i*width : (i+1)*width : (i+1)*width]
	}
	return out, nil
}

// SampleFlat is SampleVec without the row views: the n×width result
// comes back as the flat row-major slab itself, sample i occupying
// slab[i*width : (i+1)*width].
func SampleFlat(seed uint64, n, width int, fn func(r *rng.Stream, dst []float64)) []float64 {
	out, _ := SampleFlatCtx(context.Background(), seed, n, width, fn)
	return out
}

// SampleFlatCtx is SampleFlat with cooperative cancellation, under the
// same bit-identical-when-uncancelled contract as SampleCtx. It is the
// allocation floor of the vector path — one pointer-free slab, nothing
// per row — so large-n callers that only read columns out of the result
// (internal/importance) add no pointer-dense arrays for the garbage
// collector to scan.
func SampleFlatCtx(ctx context.Context, seed uint64, n, width int, fn func(r *rng.Stream, dst []float64)) ([]float64, error) {
	// One row-major slab for all rows: a single allocation instead of n,
	// and cache-friendly sequential layout for the quantile/sort passes
	// downstream.
	slab := make([]float64, n*width)
	prog := telemetry.ProgressFrom(ctx)
	prog.AddTotal(int64(n))
	if err := parallelFor(ctx, prog, seed, n, func(i int, r *rng.Stream) {
		fn(r, slab[i*width:(i+1)*width:(i+1)*width])
	}); err != nil {
		return nil, err
	}
	return slab, nil
}

// Moments evaluates fn for n sample indices and accumulates streaming
// moments without retaining individual samples. Use it when only μ, σ
// and extrema are needed and n is large.
func Moments(seed uint64, n int, fn func(r *rng.Stream) float64) stats.Stream {
	s, _ := MomentsCtx(context.Background(), seed, n, fn)
	return s
}

// MomentsCtx is Moments with cooperative cancellation, under the same
// bit-identical-when-uncancelled contract as SampleCtx.
func MomentsCtx(ctx context.Context, seed uint64, n int, fn func(r *rng.Stream) float64) (stats.Stream, error) {
	prog := telemetry.ProgressFrom(ctx)
	prog.AddTotal(int64(n))
	workers := workerCount(n)
	if workers <= 1 {
		var total stats.Stream
		err := runSpan(ctx, prog, seed, 0, n, func(i int, r *rng.Stream) {
			total.Add(fn(r))
		})
		if err != nil {
			return stats.Stream{}, err
		}
		return total, nil
	}
	partial := make([]stats.Stream, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := span(n, workers, w)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer containPanic(&errs[w])
			errs[w] = runSpan(ctx, prog, seed, lo, hi, func(i int, r *rng.Stream) {
				partial[w].Add(fn(r))
			})
		}(w, lo, hi)
	}
	wg.Wait()
	if err := firstError(errs); err != nil {
		return stats.Stream{}, err
	}
	var total stats.Stream
	for w := range partial {
		total.Merge(&partial[w])
	}
	return total, nil
}

// parallelFor runs body(i, r) for i in [0, n) across GOMAXPROCS workers,
// returning ctx's error if cancellation is observed before completion.
// Each worker owns one rng.Stream, reset per index; body must not retain
// r beyond the call.
func parallelFor(ctx context.Context, prog *telemetry.Progress, seed uint64, n int, body func(i int, r *rng.Stream)) error {
	workers := workerCount(n)
	if workers <= 1 {
		return runSpan(ctx, prog, seed, 0, n, body)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := span(n, workers, w)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer containPanic(&errs[w])
			errs[w] = runSpan(ctx, prog, seed, lo, hi, body)
		}(w, lo, hi)
	}
	wg.Wait()
	return firstError(errs)
}

// workerPanic carries a panic from a sampling worker goroutine back to
// the caller, where it is re-raised: a panic in fn must not unwind a
// bare worker goroutine (that would kill the process with no recovery
// point), but it must still surface as a panic — masking it as an error
// would hide kernel bugs. It keeps the worker's original stack, which
// the jobs layer's recover captures via the Stack method.
type workerPanic struct {
	val   any
	stack []byte
}

func (p *workerPanic) Error() string  { return p.String() }
func (p *workerPanic) String() string { return fmt.Sprintf("montecarlo: worker panic: %v", p.val) }

// Stack returns the goroutine stack captured where the panic happened.
func (p *workerPanic) Stack() []byte { return p.stack }

// containPanic is deferred in every sampling worker goroutine. It costs
// nothing on the happy path (the *workerPanic is only allocated when a
// panic is actually in flight, keeping the alloc-regression bounds).
func containPanic(slot *error) {
	if r := recover(); r != nil {
		*slot = &workerPanic{val: r, stack: debug.Stack()}
	}
}

// firstError returns the first non-nil worker error — except that a
// contained panic takes precedence and is re-raised on the caller's
// goroutine, restoring the synchronous-panic contract of the Ctx entry
// points regardless of worker count.
func firstError(errs []error) error {
	for _, err := range errs {
		if p, ok := err.(*workerPanic); ok {
			panic(p)
		}
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runSpan executes body over [lo, hi) in index order, polling ctx and
// ticking the progress reporter once per checkEvery iterations, and
// crediting completed evaluations to the process-wide sample counter.
// A nil prog costs one pointer comparison per chunk.
//
// The single worker-owned stream is Reset to the (seed, i) sub-stream
// before each body call — bit-identical to rng.NewSub(seed, i) but
// without the per-sample heap allocation (one stream per span instead).
func runSpan(ctx context.Context, prog *telemetry.Progress, seed uint64, lo, hi int, body func(i int, r *rng.Stream)) error {
	var stream rng.Stream
	done := ctx.Done()
	inj := faults.From(ctx) // nil outside fault-injection tests
	evaluated, reported := 0, 0
	defer func() {
		samplesEvaluated.Add(uint64(evaluated))
		prog.Add(int64(evaluated - reported))
	}()
	for i := lo; i < hi; i++ {
		if evaluated%checkEvery == 0 {
			if prog != nil && evaluated > reported {
				prog.Add(int64(evaluated - reported))
				reported = evaluated
			}
			if done != nil {
				select {
				case <-done:
					return ctx.Err()
				default:
				}
			}
			if inj != nil {
				if err := inj.Fire(ctx, faults.SiteMonteCarloChunk); err != nil {
					return err
				}
			}
		}
		stream.Reset(seed, i)
		body(i, &stream)
		evaluated++
	}
	return nil
}

func workerCount(n int) int {
	w := runtime.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// span returns the half-open index range assigned to worker w of workers.
func span(n, workers, w int) (lo, hi int) {
	lo = n * w / workers
	hi = n * (w + 1) / workers
	return lo, hi
}
