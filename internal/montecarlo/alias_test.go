package montecarlo

import (
	"testing"
	"unsafe"

	"github.com/ntvsim/ntvsim/internal/rng"
)

// SampleVec returns row views into one flat slab (see the package
// comment). These tests pin the three load-bearing consequences of that
// layout so the aliasing contract can't regress silently.

func fillIndex(r *rng.Stream, dst []float64) {
	for i := range dst {
		dst[i] = float64(i)
	}
}

// TestSampleVecRowsShareSlab documents the sharing itself: consecutive
// rows are adjacent views into one backing array.
func TestSampleVecRowsShareSlab(t *testing.T) {
	const n, width = 16, 4
	rows := SampleVec(1, n, width, fillIndex)
	rowBytes := uintptr(width) * unsafe.Sizeof(float64(0))
	for i := 0; i < n-1; i++ {
		a := uintptr(unsafe.Pointer(&rows[i][0]))
		b := uintptr(unsafe.Pointer(&rows[i+1][0]))
		if b-a != rowBytes {
			t.Fatalf("rows %d and %d are not adjacent views into one slab", i, i+1)
		}
	}
}

// TestSampleVecRowsDisjoint proves the safe half of the contract:
// writing through one row never changes another row's elements.
func TestSampleVecRowsDisjoint(t *testing.T) {
	const n, width = 16, 4
	rows := SampleVec(1, n, width, fillIndex)
	for i := range rows[7] {
		rows[7][i] = -1
	}
	for i, row := range rows {
		if i == 7 {
			continue
		}
		for j, v := range row {
			if v != float64(j) {
				t.Fatalf("writing row 7 corrupted row %d[%d] = %v", i, j, v)
			}
		}
	}
}

// TestSampleVecAppendCannotClobber proves the capacity is pinned to the
// row width: an append on a returned row reallocates instead of writing
// into the next row's slab region.
func TestSampleVecAppendCannotClobber(t *testing.T) {
	const n, width = 8, 4
	rows := SampleVec(1, n, width, fillIndex)
	if c := cap(rows[0]); c != width {
		t.Fatalf("row capacity = %d, want %d (full-cap slice expression)", c, width)
	}
	grown := append(rows[2], 99, 99)
	_ = grown
	for j, v := range rows[3] {
		if v != float64(j) {
			t.Fatalf("append on row 2 clobbered row 3[%d] = %v", j, v)
		}
	}
}
