package montecarlo

import (
	"context"
	"sync"
	"testing"

	"github.com/ntvsim/ntvsim/internal/rng"
	"github.com/ntvsim/ntvsim/internal/telemetry"
)

// TestProgressReported checks that every Ctx entry point announces its
// sample count and ticks the reporter to completion.
func TestProgressReported(t *testing.T) {
	f := func(r *rng.Stream) float64 { return r.Float64() }
	const n = 1000

	cases := []struct {
		name string
		run  func(ctx context.Context) error
	}{
		{"SampleCtx", func(ctx context.Context) error {
			_, err := SampleCtx(ctx, 1, n, f)
			return err
		}},
		{"SampleVecCtx", func(ctx context.Context) error {
			_, err := SampleVecCtx(ctx, 1, n, 3, func(r *rng.Stream, dst []float64) {
				for i := range dst {
					dst[i] = r.Float64()
				}
			})
			return err
		}},
		{"MomentsCtx", func(ctx context.Context) error {
			_, err := MomentsCtx(ctx, 1, n, f)
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := telemetry.NewProgress()
			ctx := telemetry.WithProgress(context.Background(), p)
			if err := tc.run(ctx); err != nil {
				t.Fatal(err)
			}
			s := p.Snapshot()
			if s.Total != n || s.Done != n {
				t.Errorf("progress = %d/%d, want %d/%d", s.Done, s.Total, n, n)
			}
		})
	}
}

// TestProgressBitIdentical verifies that attaching a reporter does not
// perturb the sampled values (the nil-reporter contract in reverse).
func TestProgressBitIdentical(t *testing.T) {
	f := func(r *rng.Stream) float64 { return r.Norm() }
	plain := Sample(99, 700, f)
	ctx := telemetry.WithProgress(context.Background(), telemetry.NewProgress())
	instrumented, err := SampleCtx(ctx, 99, 700, f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i] != instrumented[i] {
			t.Fatalf("sample %d differs with a progress reporter attached", i)
		}
	}
}

// TestProgressCancelledPartial checks a cancelled run never reports
// more done work than announced.
func TestProgressCancelledPartial(t *testing.T) {
	p := telemetry.NewProgress()
	ctx, cancel := context.WithCancel(telemetry.WithProgress(context.Background(), p))
	started := make(chan struct{})
	var once sync.Once
	_, err := SampleCtx(ctx, 5, 200_000, func(r *rng.Stream) float64 {
		once.Do(func() { close(started) })
		<-started
		cancel()
		return r.Float64()
	})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	s := p.Snapshot()
	if s.Total != 200_000 {
		t.Errorf("total = %d, want 200000", s.Total)
	}
	if s.Done > s.Total {
		t.Errorf("done %d exceeds total %d", s.Done, s.Total)
	}
}

// TestProgressSharedAcrossRuns hammers one reporter from several
// concurrent Monte-Carlo runs, the shape of a real experiment sweeping
// many points under one job; run with -race in CI.
func TestProgressSharedAcrossRuns(t *testing.T) {
	p := telemetry.NewProgress()
	ctx := telemetry.WithProgress(context.Background(), p)
	f := func(r *rng.Stream) float64 { return r.Float64() }
	const runs, n = 8, 2000
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := SampleCtx(ctx, uint64(i), n, f); err != nil {
				t.Errorf("run %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	s := p.Snapshot()
	if s.Done != runs*n || s.Total != runs*n {
		t.Errorf("progress = %d/%d, want %d/%d", s.Done, s.Total, runs*n, runs*n)
	}
}
