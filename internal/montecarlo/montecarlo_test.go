package montecarlo

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sync/atomic"
	"testing"

	"github.com/ntvsim/ntvsim/internal/rng"
)

func TestSampleDeterministic(t *testing.T) {
	f := func(r *rng.Stream) float64 { return r.Float64() }
	a := Sample(1, 1000, f)
	b := Sample(1, 1000, f)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Sample not deterministic")
		}
	}
}

func TestSampleIndependentOfParallelism(t *testing.T) {
	f := func(r *rng.Stream) float64 { return r.Norm() }
	old := runtime.GOMAXPROCS(1)
	serial := Sample(7, 500, f)
	runtime.GOMAXPROCS(old)
	parallel := Sample(7, 500, f)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatal("results depend on GOMAXPROCS")
		}
	}
}

func TestSampleSeedMatters(t *testing.T) {
	f := func(r *rng.Stream) float64 { return r.Float64() }
	a := Sample(1, 100, f)
	b := Sample(2, 100, f)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same != 0 {
		t.Errorf("%d identical values across seeds", same)
	}
}

func TestMomentsMatchesSample(t *testing.T) {
	f := func(r *rng.Stream) float64 { return r.Gauss(3, 2) }
	xs := Sample(11, 20000, f)
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	st := Moments(11, 20000, f)
	if math.Abs(st.Mean()-mean) > 1e-9 {
		t.Errorf("Moments mean %v vs Sample mean %v", st.Mean(), mean)
	}
	if st.N() != 20000 {
		t.Errorf("N = %d", st.N())
	}
}

func TestSampleVec(t *testing.T) {
	rows := SampleVec(5, 100, 3, func(r *rng.Stream, dst []float64) {
		base := r.Float64()
		for i := range dst {
			dst[i] = base + float64(i)
		}
	})
	if len(rows) != 100 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if len(row) != 3 {
			t.Fatalf("row width = %d", len(row))
		}
		if math.Abs(row[1]-row[0]-1) > 1e-12 || math.Abs(row[2]-row[1]-1) > 1e-12 {
			t.Error("row contents wrong")
		}
	}
	// Determinism of vector sampling.
	again := SampleVec(5, 100, 3, func(r *rng.Stream, dst []float64) {
		base := r.Float64()
		for i := range dst {
			dst[i] = base + float64(i)
		}
	})
	for i := range rows {
		if rows[i][0] != again[i][0] {
			t.Fatal("SampleVec not deterministic")
		}
	}
}

// TestSampleFlatMatchesSampleVec pins the layout contract: SampleFlat
// is SampleVec minus the row headers, with sample i's row at
// flat[i*width : (i+1)*width], bit-identical element for element.
func TestSampleFlatMatchesSampleVec(t *testing.T) {
	const n, width = 100, 3
	fn := func(r *rng.Stream, dst []float64) {
		base := r.Float64()
		for i := range dst {
			dst[i] = base + float64(i)
		}
	}
	rows := SampleVec(5, n, width, fn)
	flat := SampleFlat(5, n, width, fn)
	if len(flat) != n*width {
		t.Fatalf("flat length = %d, want %d", len(flat), n*width)
	}
	for i, row := range rows {
		for j, v := range row {
			if flat[i*width+j] != v {
				t.Fatalf("flat[%d*%d+%d] = %v, want %v", i, width, j, flat[i*width+j], v)
			}
		}
	}
}

func TestSmallN(t *testing.T) {
	if got := Sample(1, 0, func(*rng.Stream) float64 { return 1 }); len(got) != 0 {
		t.Error("n=0 should give empty slice")
	}
	if got := Sample(1, 1, func(*rng.Stream) float64 { return 42 }); len(got) != 1 || got[0] != 42 {
		t.Error("n=1 mishandled")
	}
}

func TestSampleCtxBitIdentical(t *testing.T) {
	f := func(r *rng.Stream) float64 { return r.Norm() }
	plain := Sample(42, 2000, f)
	withCtx, err := SampleCtx(context.Background(), 42, 2000, f)
	if err != nil {
		t.Fatalf("SampleCtx: %v", err)
	}
	for i := range plain {
		if plain[i] != withCtx[i] {
			t.Fatalf("index %d: SampleCtx %v != Sample %v", i, withCtx[i], plain[i])
		}
	}
	st := Moments(42, 2000, f)
	stCtx, err := MomentsCtx(context.Background(), 42, 2000, f)
	if err != nil {
		t.Fatalf("MomentsCtx: %v", err)
	}
	if st.Mean() != stCtx.Mean() || st.N() != stCtx.N() {
		t.Errorf("MomentsCtx (μ=%v n=%d) != Moments (μ=%v n=%d)",
			stCtx.Mean(), stCtx.N(), st.Mean(), st.N())
	}
}

func TestSampleCtxCancelStopsSampling(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 1 << 20
	var evaluated atomic.Int64
	_, err := SampleCtx(ctx, 3, n, func(r *rng.Stream) float64 {
		if evaluated.Add(1) == 100 {
			cancel()
		}
		return r.Float64()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Each worker stops within checkEvery samples of the cancellation.
	limit := int64(100 + (runtime.GOMAXPROCS(0)+1)*checkEvery)
	if got := evaluated.Load(); got >= n || got > limit {
		t.Errorf("evaluated %d samples after cancel (limit %d of %d)", got, limit, n)
	}
}

func TestSampleCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SampleCtx(ctx, 1, 100, func(*rng.Stream) float64 { return 0 }); err == nil {
		t.Error("pre-cancelled context accepted")
	}
	if _, err := MomentsCtx(ctx, 1, 100, func(*rng.Stream) float64 { return 0 }); err == nil {
		t.Error("MomentsCtx pre-cancelled context accepted")
	}
	if _, err := SampleVecCtx(ctx, 1, 100, 2, func(*rng.Stream, []float64) {}); err == nil {
		t.Error("SampleVecCtx pre-cancelled context accepted")
	}
	if _, err := SampleFlatCtx(ctx, 1, 100, 2, func(*rng.Stream, []float64) {}); err == nil {
		t.Error("SampleFlatCtx pre-cancelled context accepted")
	}
}

func TestSamplesEvaluatedCounter(t *testing.T) {
	before := SamplesEvaluated()
	Sample(9, 1234, func(r *rng.Stream) float64 { return r.Float64() })
	if got := SamplesEvaluated() - before; got < 1234 {
		t.Errorf("counter advanced by %d, want ≥ 1234", got)
	}
}

func TestSpan(t *testing.T) {
	// All indices covered exactly once for any worker split.
	for _, n := range []int{1, 7, 100, 101} {
		for workers := 1; workers <= 8; workers++ {
			covered := make([]int, n)
			for w := 0; w < workers; w++ {
				lo, hi := span(n, workers, w)
				for i := lo; i < hi; i++ {
					covered[i]++
				}
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("n=%d workers=%d index %d covered %d times", n, workers, i, c)
				}
			}
		}
	}
}
