package montecarlo

import (
	"math"
	"runtime"
	"testing"

	"github.com/ntvsim/ntvsim/internal/rng"
)

func TestSampleDeterministic(t *testing.T) {
	f := func(r *rng.Stream) float64 { return r.Float64() }
	a := Sample(1, 1000, f)
	b := Sample(1, 1000, f)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Sample not deterministic")
		}
	}
}

func TestSampleIndependentOfParallelism(t *testing.T) {
	f := func(r *rng.Stream) float64 { return r.Norm() }
	old := runtime.GOMAXPROCS(1)
	serial := Sample(7, 500, f)
	runtime.GOMAXPROCS(old)
	parallel := Sample(7, 500, f)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatal("results depend on GOMAXPROCS")
		}
	}
}

func TestSampleSeedMatters(t *testing.T) {
	f := func(r *rng.Stream) float64 { return r.Float64() }
	a := Sample(1, 100, f)
	b := Sample(2, 100, f)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same != 0 {
		t.Errorf("%d identical values across seeds", same)
	}
}

func TestMomentsMatchesSample(t *testing.T) {
	f := func(r *rng.Stream) float64 { return r.Gauss(3, 2) }
	xs := Sample(11, 20000, f)
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	st := Moments(11, 20000, f)
	if math.Abs(st.Mean()-mean) > 1e-9 {
		t.Errorf("Moments mean %v vs Sample mean %v", st.Mean(), mean)
	}
	if st.N() != 20000 {
		t.Errorf("N = %d", st.N())
	}
}

func TestSampleVec(t *testing.T) {
	rows := SampleVec(5, 100, 3, func(r *rng.Stream, dst []float64) {
		base := r.Float64()
		for i := range dst {
			dst[i] = base + float64(i)
		}
	})
	if len(rows) != 100 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		if len(row) != 3 {
			t.Fatalf("row width = %d", len(row))
		}
		if math.Abs(row[1]-row[0]-1) > 1e-12 || math.Abs(row[2]-row[1]-1) > 1e-12 {
			t.Error("row contents wrong")
		}
	}
	// Determinism of vector sampling.
	again := SampleVec(5, 100, 3, func(r *rng.Stream, dst []float64) {
		base := r.Float64()
		for i := range dst {
			dst[i] = base + float64(i)
		}
	})
	for i := range rows {
		if rows[i][0] != again[i][0] {
			t.Fatal("SampleVec not deterministic")
		}
	}
}

func TestSmallN(t *testing.T) {
	if got := Sample(1, 0, func(*rng.Stream) float64 { return 1 }); len(got) != 0 {
		t.Error("n=0 should give empty slice")
	}
	if got := Sample(1, 1, func(*rng.Stream) float64 { return 42 }); len(got) != 1 || got[0] != 42 {
		t.Error("n=1 mishandled")
	}
}

func TestSpan(t *testing.T) {
	// All indices covered exactly once for any worker split.
	for _, n := range []int{1, 7, 100, 101} {
		for workers := 1; workers <= 8; workers++ {
			covered := make([]int, n)
			for w := 0; w < workers; w++ {
				lo, hi := span(n, workers, w)
				for i := lo; i < hi; i++ {
					covered[i]++
				}
			}
			for i, c := range covered {
				if c != 1 {
					t.Fatalf("n=%d workers=%d index %d covered %d times", n, workers, i, c)
				}
			}
		}
	}
}
