package montecarlo

import (
	"math"
	"testing"

	"github.com/ntvsim/ntvsim/internal/rng"
)

// The pinned values below were captured from the pre-optimization kernel
// (one rng.NewSub heap allocation per sample, one row allocation per
// SampleVec sample). The zero-allocation kernel must reproduce them
// bit-for-bit: every committed artifact is a deterministic function of
// these sequences, so any drift here means the artifacts would silently
// change too.

func TestSampleGolden(t *testing.T) {
	want := []float64{
		0.7289812605984479, 1.4675116062836873, -0.8831826850986838,
		0.46934569409219706, -0.37160135843786746, -0.019417523214940058,
		1.0565501661912524, -0.06600304155390474,
	}
	got := Sample(20120603, len(want), func(r *rng.Stream) float64 { return r.Norm() })
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Sample[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMomentsGolden(t *testing.T) {
	st := Moments(20120603, 10000, func(r *rng.Stream) float64 { return r.Gauss(3, 2) })
	if st.N() != 10000 {
		t.Fatalf("N = %d", st.N())
	}
	// Mean and min/max are exact functions of the sample sequence plus
	// the deterministic merge tree, but the merge tree depends on the
	// worker count, so only extrema and a tight mean tolerance are
	// pinned exactly; TestMomentsMergeTreeIndependent pins the rest.
	if st.Min() != -4.150753148924231 {
		t.Errorf("Min = %v, want -4.150753148924231", st.Min())
	}
	if st.Max() != 10.315553567261762 {
		t.Errorf("Max = %v, want 10.315553567261762", st.Max())
	}
	if math.Abs(st.Mean()-2.987110394707) > 1e-9 {
		t.Errorf("Mean = %v, want 2.987110394707 ± 1e-9", st.Mean())
	}
	if math.Abs(st.StdDev()-1.9874359739014158) > 1e-9 {
		t.Errorf("StdDev = %v, want 1.9874359739014158 ± 1e-9", st.StdDev())
	}
}

func TestSampleVecGolden(t *testing.T) {
	want := [][]float64{
		{0.66775489980339, 0.002123553105060849, 0.01513029060802562},
		{0.8939693797965126, 0.49852690311598535, 0.04360808574781705},
		{0.42629050660337353, 0.8797378787701999, 0.30760181365642025},
		{0.0317860838143158, 0.1955941236785378, 0.4476637054171271},
	}
	got := SampleVec(77, 4, 3, func(r *rng.Stream, dst []float64) {
		for i := range dst {
			dst[i] = r.Float64()
		}
	})
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("SampleVec[%d][%d] = %v, want %v", i, j, got[i][j], want[i][j])
			}
		}
	}
}
