// Package report renders experiment results as aligned text tables and
// compact ASCII distribution plots, matching the rows/series the paper's
// figures and tables present.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple aligned-column text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// AddRowf appends a row of preformatted cells.
func (t *Table) AddRowf(cells ...string) *Table {
	t.rows = append(t.rows, cells)
	return t
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		width[i] = len([]rune(h))
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(width) && len([]rune(c)) > width[i] {
				width[i] = len([]rune(c))
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(width) {
				pad = width[i] - len([]rune(c))
			}
			b.WriteString(strings.Repeat(" ", pad))
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range width {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Sparkline renders values as a one-line unicode mini-plot, used to give
// distribution figures a visual shape in terminal output.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}
