package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("x", 1.5)
	tb.AddRow("longer-name", 22)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "demo") {
		t.Error("missing title")
	}
	// All data lines must be equally wide (right-aligned columns).
	if len(lines[3]) != len(lines[4]) {
		t.Errorf("rows unaligned:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRowf("1")
	if strings.HasPrefix(tb.String(), "\n") {
		t.Error("empty title should not emit a blank line")
	}
}

func TestTableCellFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.AddRow(3.14159265)
	if !strings.Contains(tb.String(), "3.142") {
		t.Errorf("float formatting wrong:\n%s", tb.String())
	}
	tb.AddRow(42)
	if !strings.Contains(tb.String(), "42") {
		t.Error("int formatting wrong")
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Errorf("sparkline runes = %d", len([]rune(s)))
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Errorf("sparkline extremes wrong: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Error("empty input should render empty")
	}
	flat := Sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat series should render lowest block: %q", flat)
		}
	}
}
