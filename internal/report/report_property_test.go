package report

import (
	"strings"
	"testing"
)

// TestTableGolden pins a full rendering byte-for-byte: titles, header
// rule width, right-alignment padding and the two-space gutter.
func TestTableGolden(t *testing.T) {
	tb := NewTable("corner signoff", "node", "derate", "delay")
	tb.AddRow("45nm", 1.0716, 7.164e-9)
	tb.AddRow("22nm PTM HP", 1.1163, 3.512e-9)
	want := "corner signoff\n" +
		"       node  derate      delay\n" +
		"--------------------------------\n" +
		"       45nm   1.072  7.164e-09\n" +
		"22nm PTM HP   1.116  3.512e-09\n"
	if got := tb.String(); got != want {
		t.Errorf("rendered table:\n%q\nwant:\n%q", got, want)
	}
}

// TestTableAlignmentProperty renders tables over a spread of ragged
// cell shapes and asserts the structural alignment invariants: every
// data line is exactly as wide as the rule, and every cell ends at its
// column boundary regardless of content width.
func TestTableAlignmentProperty(t *testing.T) {
	cases := [][][]string{
		{{"a", "bb"}, {"ccc", "d"}},
		{{"", ""}, {"x", "yyyyyyyyyy"}},
		{{"one"}, {"three"}},            // short rows are legal with AddRowf
		{{"αβγ", "δ"}, {"ε", "ζηθικλ"}}, // multi-byte runes count as one cell unit
	}
	for _, rows := range cases {
		tb := NewTable("", "left", "right")
		for _, row := range rows {
			tb.AddRowf(row...)
		}
		lines := strings.Split(strings.TrimRight(tb.String(), "\n"), "\n")
		ruleWidth := len([]rune(lines[1]))
		// A complete row ends flush with the last column; the rule carries
		// the trailing gutter of every column, so the grid width is
		// ruleWidth − 2. The header always has one cell per column.
		grid := ruleWidth - 2
		if w := len([]rune(lines[0])); w != grid {
			t.Errorf("header width %d, want grid width %d:\n%s", w, grid, tb.String())
		}
		for i, line := range lines[2:] {
			w := len([]rune(line))
			if len(rows[i]) == 2 && w != grid {
				t.Errorf("complete row width %d, want grid width %d:\n%s", w, grid, tb.String())
			}
			if w > grid {
				t.Errorf("row wider than the column grid (%d > %d):\n%s", w, grid, tb.String())
			}
		}
	}
}

// TestSparklineProperties: one block per value, extremes mapped to the
// lowest and highest blocks, and monotone input producing monotone
// block heights.
func TestSparklineProperties(t *testing.T) {
	blocks := []rune("▁▂▃▄▅▆▇█")
	level := func(r rune) int {
		for i, b := range blocks {
			if b == r {
				return i
			}
		}
		t.Fatalf("rune %q is not a sparkline block", r)
		return -1
	}

	vals := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	runes := []rune(Sparkline(vals))
	if len(runes) != len(vals) {
		t.Fatalf("%d blocks for %d values", len(runes), len(vals))
	}
	lo, hi := 1, 9
	for i, v := range vals {
		l := level(runes[i])
		if v == float64(lo) && l != 0 {
			t.Errorf("minimum value rendered at level %d", l)
		}
		if v == float64(hi) && l != len(blocks)-1 {
			t.Errorf("maximum value rendered at level %d", l)
		}
	}

	mono := []float64{0, 1, 2, 3, 4, 5, 6, 7}
	prev := -1
	for _, r := range Sparkline(mono) {
		l := level(r)
		if l < prev {
			t.Fatalf("monotone input rendered non-monotone blocks: %q", Sparkline(mono))
		}
		prev = l
	}

	if got := Sparkline([]float64{-2}); []rune(got)[0] != blocks[0] {
		t.Errorf("single value should render the base block, got %q", got)
	}
	if got := Sparkline([]float64{-5, -1}); level([]rune(got)[1]) != len(blocks)-1 {
		t.Errorf("negative-range maximum not at top block: %q", got)
	}
}
