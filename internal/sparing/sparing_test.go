package sparing

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/ntvsim/ntvsim/internal/simd"
	"github.com/ntvsim/ntvsim/internal/tech"
)

func TestMinSparesMonotoneTarget(t *testing.T) {
	dp := simd.New(tech.N90)
	const vdd = 0.55
	const n = 2000
	base := dp.P99ChipDelayFO4(1, n, tech.N90.VddNominal, 0)
	r := MinSpares(dp, 2, n, vdd, base, 128)
	if !r.Found {
		t.Fatalf("no spare count found at %gV: %v", vdd, r)
	}
	if r.Spares < 1 {
		t.Errorf("expected ≥1 spare at 0.55V, got %d", r.Spares)
	}
	// A looser target needs no more spares.
	loose := MinSpares(dp, 2, n, vdd, base*1.01, 128)
	if loose.Found && loose.Spares > r.Spares {
		t.Errorf("looser target needs more spares: %d > %d", loose.Spares, r.Spares)
	}
	// The minimal count is genuinely minimal: one fewer must miss.
	if r.Spares > 0 {
		below := dp.SpareCurve(2, n, vdd, []int{r.Spares - 1})[0]
		if below <= base {
			t.Errorf("spares-1 (%d) already meets target: %v ≤ %v", r.Spares-1, below, base)
		}
	}
}

func TestMinSparesZeroWhenTrivial(t *testing.T) {
	dp := simd.New(tech.N90)
	const n = 1000
	// At nominal voltage against its own p99, zero spares suffice.
	base := dp.P99ChipDelayFO4(3, n, tech.N90.VddNominal, 0)
	r := MinSpares(dp, 3, n, tech.N90.VddNominal, base, 128)
	if !r.Found || r.Spares != 0 {
		t.Errorf("want 0 spares, got %v", r)
	}
}

func TestMinSparesUnreachable(t *testing.T) {
	dp := simd.New(tech.N22)
	const n = 800
	base := dp.P99ChipDelayFO4(4, n, tech.N22.VddNominal, 0)
	r := MinSpares(dp, 4, n, 0.5, base, 32)
	if r.Found {
		t.Errorf("22nm @0.5V should not be fixable with 32 spares: %v", r)
	}
	if r.Spares != 33 {
		t.Errorf("not-found sentinel should be limit+1, got %d", r.Spares)
	}
	if r.String() == "" {
		t.Error("empty render")
	}
}

func TestBinomialCDF(t *testing.T) {
	cases := []struct {
		n    int
		p    float64
		k    int
		want float64
	}{
		{10, 0.5, 10, 1},
		{10, 0.5, -1, 0},
		{4, 0.5, 2, 11.0 / 16},
		{3, 0.1, 0, 0.729},
		{2, 0.3, 1, 0.91},
	}
	for _, c := range cases {
		if got := binomialCDF(c.n, c.p, c.k); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("binomialCDF(%d,%v,%d) = %v, want %v", c.n, c.p, c.k, got, c.want)
		}
	}
}

func TestPlacementRepairable(t *testing.T) {
	g := Global{NumSpares: 2}
	if !g.Repairable([]int{5, 77}) || g.Repairable([]int{1, 2, 3}) {
		t.Error("global repairability wrong")
	}
	l := Local{Lanes: 8, ClusterSize: 4, SparesPerCluster: 1}
	if !l.Repairable([]int{0, 4}) { // one fault per cluster
		t.Error("local should repair one fault per cluster")
	}
	if l.Repairable([]int{0, 1}) { // two faults in cluster 0
		t.Error("local cannot repair two faults in one cluster")
	}
	if l.Spares() != 2 {
		t.Errorf("local spares = %d", l.Spares())
	}
	if g.Name() == "" || l.Name() == "" {
		t.Error("names empty")
	}
}

func TestIndependentCoverageGlobalExact(t *testing.T) {
	g := Global{NumSpares: 1}
	const n = 4
	const p = 0.2
	// P(X ≤ 1), X ~ Bin(4, 0.2) = 0.8^4 + 4·0.2·0.8³ = 0.8192.
	if got := IndependentCoverage(g, n, p); math.Abs(got-0.8192) > 1e-12 {
		t.Errorf("coverage = %v, want 0.8192", got)
	}
}

func TestIndependentCoverageLocalExact(t *testing.T) {
	l := Local{Lanes: 8, ClusterSize: 4, SparesPerCluster: 1}
	const p = 0.1
	per := 0.0
	// P(Bin(4, .1) ≤ 1) = .9^4 + 4·.1·.9³.
	per = math.Pow(0.9, 4) + 4*0.1*math.Pow(0.9, 3)
	want := per * per
	if got := IndependentCoverage(l, 8, p); math.Abs(got-want) > 1e-12 {
		t.Errorf("coverage = %v, want %v", got, want)
	}
}

// TestGlobalDominatesLocal: with the same spare budget, global placement
// covers at least as many fault patterns as local — the Appendix D claim.
func TestGlobalDominatesLocal(t *testing.T) {
	f := func(rawP float64) bool {
		p := math.Abs(math.Mod(rawP, 0.2))
		l := Local{Lanes: 128, ClusterSize: 4, SparesPerCluster: 1}
		g := Global{NumSpares: l.Spares()}
		return IndependentCoverage(g, 128, p) >= IndependentCoverage(l, 128, p)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBurstCoverage(t *testing.T) {
	l := Local{Lanes: 128, ClusterSize: 4, SparesPerCluster: 1}
	g := Global{NumSpares: l.Spares()}
	// A burst of 2 always defeats local sparing when it lands inside a
	// cluster (3 of 4 positions) and survives otherwise.
	lc := BurstCoverage(l, 128, 2, 1, 20000)
	if math.Abs(lc-0.25) > 0.02 {
		t.Errorf("local burst-2 coverage = %v, want ≈0.25", lc)
	}
	// Global sparing absorbs any burst up to its budget (32).
	if gc := BurstCoverage(g, 128, 32, 1, 2000); gc != 1 {
		t.Errorf("global burst-32 coverage = %v, want 1", gc)
	}
	if gc := BurstCoverage(g, 128, 33, 1, 2000); gc != 0 {
		t.Errorf("global burst-33 coverage = %v, want 0", gc)
	}
	// Zero-length bursts are trivially covered.
	if BurstCoverage(l, 128, 0, 1, 10) != 1 {
		t.Error("empty burst should be covered")
	}
}

func TestSegmentedBridgesLocalAndGlobal(t *testing.T) {
	const lanes = 128
	local := Local{Lanes: lanes, ClusterSize: 4, SparesPerCluster: 1}
	seg := Segmented{Lanes: lanes, SegmentSize: 32, SparesPerSegment: 8}
	global := Global{NumSpares: 32}
	// All three spend the same spare budget.
	if local.Spares() != 32 || seg.Spares() != 32 || global.Spares() != 32 {
		t.Fatalf("budgets differ: %d, %d, %d", local.Spares(), seg.Spares(), global.Spares())
	}
	for _, p := range []float64{0.005, 0.02, 0.05, 0.1} {
		cl := IndependentCoverage(local, lanes, p)
		cs := IndependentCoverage(seg, lanes, p)
		cg := IndependentCoverage(global, lanes, p)
		if !(cl <= cs+1e-12 && cs <= cg+1e-12) {
			t.Errorf("p=%v: coverage ordering violated: local %v, segmented %v, global %v",
				p, cl, cs, cg)
		}
	}
}

func TestSegmentedRepairable(t *testing.T) {
	s := Segmented{Lanes: 128, SegmentSize: 32, SparesPerSegment: 2}
	if !s.Repairable([]int{0, 1, 40}) { // 2 in segment 0, 1 in segment 1
		t.Error("repairable pattern rejected")
	}
	if s.Repairable([]int{0, 1, 2}) { // 3 in segment 0
		t.Error("over-budget segment accepted")
	}
	if s.Name() == "" {
		t.Error("empty name")
	}
}

func TestSegmentedBurstCoverage(t *testing.T) {
	// A segment-sized spare pool absorbs bursts up to its budget unless
	// the burst straddles a boundary unluckily; coverage must sit
	// between local's and global's.
	const lanes = 128
	local := Local{Lanes: lanes, ClusterSize: 4, SparesPerCluster: 1}
	seg := Segmented{Lanes: lanes, SegmentSize: 32, SparesPerSegment: 8}
	global := Global{NumSpares: 32}
	for _, blen := range []int{4, 8, 12} {
		cl := BurstCoverage(local, lanes, blen, 1, 4000)
		cs := BurstCoverage(seg, lanes, blen, 1, 4000)
		cg := BurstCoverage(global, lanes, blen, 1, 4000)
		if !(cl <= cs+0.02 && cs <= cg+0.02) {
			t.Errorf("burst %d: ordering violated: %v, %v, %v", blen, cl, cs, cg)
		}
	}
	// Bursts within one segment's budget are always covered.
	if c := BurstCoverage(seg, lanes, 8, 2, 2000); c < 0.99 {
		t.Errorf("burst-8 coverage %v, want ≈1 (8 spares per 32-lane segment)", c)
	}
}
