// Package sparing implements structural duplication (§4.1): sizing the
// number of spare SIMD functional units needed to tolerate
// variation-induced timing errors at near-threshold voltage, and the
// comparison between global and local spare placement (Appendix D).
//
// Lane sparing is the logic-side repair axis; internal/sram mirrors
// the same placement/coverage model on the memory side as spare-row
// repair (sram.RowPlacement, sram.RowCoverage), and the sramyield
// experiment compares the two at iso-overhead.
package sparing

import (
	"context"
	"fmt"
	"math"

	"github.com/ntvsim/ntvsim/internal/rng"
	"github.com/ntvsim/ntvsim/internal/simd"
)

// SearchResult reports a spare-count search.
type SearchResult struct {
	Spares  int     // minimal spare count meeting the target, or limit+1 if not found
	Found   bool    // false if even the limit did not meet the target
	P99     float64 // 99% FO4 chip delay achieved at Spares (or at the limit)
	Target  float64 // 99% FO4 chip delay target (baseline at nominal voltage)
	Samples int
}

// String renders the outcome like the paper's Table 1 rows.
func (s SearchResult) String() string {
	if !s.Found {
		return fmt.Sprintf(">%d spares (p99 %.2f FO4 > target %.2f)", s.Spares-1, s.P99, s.Target)
	}
	return fmt.Sprintf("%d spares (p99 %.2f FO4 ≤ target %.2f)", s.Spares, s.P99, s.Target)
}

// MinSpares finds the minimal spare count α such that the 99 % FO4 chip
// delay of dp at supply vdd with α spares does not exceed targetFO4 (the
// baseline 99 % FO4 chip delay at nominal voltage, per §4.1). The search
// evaluates a doubling ladder followed by a bisection, reusing one
// lane-delay sample set throughout so the curve is monotone in α.
// limit caps the search (the paper reports "> 128" beyond the SIMD width).
func MinSpares(dp *simd.Datapath, seed uint64, n int, vdd, targetFO4 float64, limit int) SearchResult {
	res, _ := MinSparesCtx(context.Background(), dp, seed, n, vdd, targetFO4, limit)
	return res
}

// MinSparesCtx is MinSpares with cooperative cancellation: the spare-curve
// evaluations poll ctx between Monte-Carlo worker chunks, and the search
// returns ctx's error as soon as one observes cancellation. The result is
// bit-identical to MinSpares when ctx is never cancelled.
func MinSparesCtx(ctx context.Context, dp *simd.Datapath, seed uint64, n int, vdd, targetFO4 float64, limit int) (SearchResult, error) {
	res := SearchResult{Target: targetFO4, Samples: n}
	// Build the ladder of candidate spare counts: 0, 1, 2, 4, ..., limit.
	var ladder []int
	for a := 0; a <= limit; {
		ladder = append(ladder, a)
		switch {
		case a == 0:
			a = 1
		default:
			a *= 2
		}
	}
	if ladder[len(ladder)-1] != limit {
		ladder = append(ladder, limit)
	}
	curve, err := dp.SpareCurveCtx(ctx, seed, n, vdd, ladder)
	if err != nil {
		return res, err
	}

	// Find the first ladder point meeting the target.
	hitIdx := -1
	for i, p99 := range curve {
		if p99 <= targetFO4 {
			hitIdx = i
			break
		}
	}
	if hitIdx == -1 {
		res.Spares = limit + 1
		res.P99 = curve[len(curve)-1]
		return res, nil
	}
	res.Found = true
	if hitIdx == 0 {
		res.Spares = ladder[0]
		res.P99 = curve[0]
		return res, nil
	}

	// Bisect between the last failing and first passing ladder points.
	lo, hi := ladder[hitIdx-1], ladder[hitIdx] // lo fails, hi passes
	p99hi := curve[hitIdx]
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		point, err := dp.SpareCurveCtx(ctx, seed, n, vdd, []int{mid})
		if err != nil {
			return res, err
		}
		p99 := point[0]
		if p99 <= targetFO4 {
			hi, p99hi = mid, p99
		} else {
			lo = mid
		}
	}
	res.Spares = hi
	res.P99 = p99hi
	return res, nil
}

// Placement describes a spare-placement policy for repairability
// analysis: how spare FUs are associated with (clusters of) SIMD lanes.
type Placement interface {
	// Repairable reports whether the set of faulty lane indices can all
	// be replaced by spares under this placement.
	Repairable(faulty []int) bool
	// Spares returns the total number of spare FUs the placement uses.
	Spares() int
	// Name identifies the policy in reports.
	Name() string
}

// Global places all spares in a shared pool reachable from any lane
// through the XRAM crossbar (Appendix D): any faulty lane can be
// replaced while faults ≤ spares.
type Global struct {
	NumSpares int
}

// Name implements Placement.
func (g Global) Name() string { return fmt.Sprintf("global(%d)", g.NumSpares) }

// Spares implements Placement.
func (g Global) Spares() int { return g.NumSpares }

// Repairable implements Placement.
func (g Global) Repairable(faulty []int) bool { return len(faulty) <= g.NumSpares }

// Local groups lanes into fixed clusters of ClusterSize with
// SparesPerCluster spares each (Synctium's scheme is ClusterSize = 4,
// SparesPerCluster = 1). A cluster with more faults than its own spares
// is unrepairable regardless of idle spares elsewhere.
type Local struct {
	Lanes            int
	ClusterSize      int
	SparesPerCluster int
}

// Name implements Placement.
func (l Local) Name() string {
	return fmt.Sprintf("local(%d per %d)", l.SparesPerCluster, l.ClusterSize)
}

// Spares implements Placement.
func (l Local) Spares() int {
	clusters := (l.Lanes + l.ClusterSize - 1) / l.ClusterSize
	return clusters * l.SparesPerCluster
}

// Repairable implements Placement.
func (l Local) Repairable(faulty []int) bool {
	counts := make(map[int]int)
	for _, lane := range faulty {
		counts[lane/l.ClusterSize]++
	}
	for _, c := range counts {
		if c > l.SparesPerCluster {
			return false
		}
	}
	return true
}

// IndependentCoverage returns the probability that a chip whose lanes
// fail independently with probability p is fully repairable under the
// placement, computed exactly from binomial laws (no Monte Carlo).
func IndependentCoverage(pl Placement, lanes int, p float64) float64 {
	switch v := pl.(type) {
	case Global:
		return binomialCDF(lanes, p, v.NumSpares)
	case Local:
		clusters := lanes / v.ClusterSize
		per := binomialCDF(v.ClusterSize, p, v.SparesPerCluster)
		cov := math.Pow(per, float64(clusters))
		if rem := lanes % v.ClusterSize; rem > 0 {
			cov *= binomialCDF(rem, p, v.SparesPerCluster)
		}
		return cov
	case Segmented:
		segments := lanes / v.SegmentSize
		per := binomialCDF(v.SegmentSize, p, v.SparesPerSegment)
		cov := math.Pow(per, float64(segments))
		if rem := lanes % v.SegmentSize; rem > 0 {
			cov *= binomialCDF(rem, p, v.SparesPerSegment)
		}
		return cov
	default:
		panic(fmt.Sprintf("sparing: IndependentCoverage: unknown placement %T", pl))
	}
}

// binomialCDF returns P(Bin(n, p) ≤ k).
func binomialCDF(n int, p float64, k int) float64 {
	if k >= n {
		return 1
	}
	if k < 0 {
		return 0
	}
	q := 1 - p
	// Iterate pmf terms in log space for numerical robustness.
	logP, logQ := math.Log(p), math.Log(q)
	var cdf float64
	logC := 0.0 // log C(n, 0)
	for i := 0; i <= k; i++ {
		cdf += math.Exp(logC + float64(i)*logP + float64(n-i)*logQ)
		logC += math.Log(float64(n-i)) - math.Log(float64(i+1))
	}
	if cdf > 1 {
		cdf = 1
	}
	return cdf
}

// BurstCoverage estimates by Monte Carlo the probability that a chip is
// repairable when faults arrive as a contiguous burst of the given
// length at a uniformly random start lane (modeling spatially clustered
// defects, the failure mode that defeats local sparing). Exact for the
// placements above but kept as MC so arbitrary placements compose.
func BurstCoverage(pl Placement, lanes, burstLen int, seed uint64, trials int) float64 {
	if burstLen <= 0 {
		return 1
	}
	r := rng.New(seed)
	ok := 0
	faulty := make([]int, burstLen)
	for t := 0; t < trials; t++ {
		start := r.IntN(lanes)
		for i := range faulty {
			faulty[i] = (start + i) % lanes
		}
		if pl.Repairable(faulty) {
			ok++
		}
	}
	return float64(ok) / float64(trials)
}

// Segmented is the middle ground between Global and Local: lanes are
// grouped into segments of SegmentSize, each with its own pool of
// SparesPerSegment spares reachable through a segment-local crossbar.
// Larger segments approach Global's burst tolerance at lower routing
// cost than a full 128×128 XRAM; SegmentSize = Lanes recovers Global,
// SegmentSize = ClusterSize with one spare recovers Local.
type Segmented struct {
	Lanes            int
	SegmentSize      int
	SparesPerSegment int
}

// Name implements Placement.
func (s Segmented) Name() string {
	return fmt.Sprintf("segmented(%d per %d)", s.SparesPerSegment, s.SegmentSize)
}

// Spares implements Placement.
func (s Segmented) Spares() int {
	segments := (s.Lanes + s.SegmentSize - 1) / s.SegmentSize
	return segments * s.SparesPerSegment
}

// Repairable implements Placement.
func (s Segmented) Repairable(faulty []int) bool {
	counts := make(map[int]int)
	for _, lane := range faulty {
		counts[lane/s.SegmentSize]++
	}
	for _, c := range counts {
		if c > s.SparesPerSegment {
			return false
		}
	}
	return true
}
