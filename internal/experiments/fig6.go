package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/ntvsim/ntvsim/internal/margin"
	"github.com/ntvsim/ntvsim/internal/report"
	"github.com/ntvsim/ntvsim/internal/simd"
	"github.com/ntvsim/ntvsim/internal/stats"
	"github.com/ntvsim/ntvsim/internal/tech"
)

func init() {
	register("fig6", Architecture, 10000,
		"voltage-margin read-off for a 128-wide datapath at 600-620mV, 45nm", runFig6)
}

// Fig6Result reproduces Figure 6: delay distributions of a 128-wide SIMD
// datapath at 600–620 mV in 45 nm, together with spare-augmented systems
// at 600 mV, illustrating how the voltage margin is read off against the
// target delay. The paper finds V_M = 15 mV at 600 mV.
type Fig6Result struct {
	Node    tech.Node
	Samples int
	Target  float64 // absolute target delay at 600 mV, seconds

	// Voltage sweep at zero spares.
	Voltages  []float64
	VoltP99   []float64 // p99 chip delay, seconds
	VoltHists [][]float64

	// Spare sweep at 600 mV.
	Spares     []int
	SpareP99   []float64
	SpareHists [][]float64

	Margin margin.VoltageResult // the searched margin at 600 mV
}

// ID implements Result.
func (r *Fig6Result) ID() string { return "fig6" }

// Render implements Result.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: 128-wide @600 mV margin study, %s, %d samples\n", r.Node.Name, r.Samples)
	fmt.Fprintf(&b, "target delay %.3f ns\n", r.Target*1e9)
	t := report.NewTable("voltage sweep (0 spares)", "Vdd", "p99 delay", "≤ target", "shape")
	for i, v := range r.Voltages {
		meets := "no"
		if r.VoltP99[i] <= r.Target {
			meets = "yes"
		}
		t.AddRowf(fmt.Sprintf("%.0f mV", v*1e3),
			fmt.Sprintf("%.3f ns", r.VoltP99[i]*1e9), meets, report.Sparkline(r.VoltHists[i]))
	}
	b.WriteString(t.String())
	t2 := report.NewTable("spare sweep @600 mV", "spares", "p99 delay", "≤ target", "shape")
	for i, a := range r.Spares {
		meets := "no"
		if r.SpareP99[i] <= r.Target {
			meets = "yes"
		}
		t2.AddRowf(fmt.Sprintf("%d", a),
			fmt.Sprintf("%.3f ns", r.SpareP99[i]*1e9), meets, report.Sparkline(r.SpareHists[i]))
	}
	b.WriteString(t2.String())
	fmt.Fprintf(&b, "searched margin: %s (paper: 15 mV)\n", r.Margin)
	return b.String()
}

func runFig6(ctx context.Context, cfg Config) (Result, error) {
	node := tech.N45
	const vdd = 0.600
	dp := simd.New(node)
	res := &Fig6Result{Node: node, Samples: cfg.ChipSamples}

	baseCtx, done := phase(ctx, "baseline")
	base, err := dp.P99ChipDelayFO4Ctx(baseCtx, cfg.Seed, cfg.ChipSamples, node.VddNominal, 0)
	done()
	if err != nil {
		return nil, err
	}
	res.Target = margin.TargetDelay(dp, vdd, base)

	sweepCtx, done := phase(ctx, "voltage-sweep")
	for _, v := range []float64{0.600, 0.605, 0.610, 0.615, 0.620} {
		ds, err := dp.ChipDelaysCtx(sweepCtx, cfg.Seed+19, cfg.ChipSamples, v, 0)
		if err != nil {
			done()
			return nil, err
		}
		res.Voltages = append(res.Voltages, v)
		res.VoltP99 = append(res.VoltP99, stats.Quantile(ds, 0.99))
		res.VoltHists = append(res.VoltHists, histShape(ds, 24))
	}
	done()
	spareCtx, done := phase(ctx, "spare-sweep")
	for _, a := range []int{0, 4, 8, 16, 32} {
		ds, err := dp.ChipDelaysCtx(spareCtx, cfg.Seed+19, cfg.ChipSamples, vdd, a)
		if err != nil {
			done()
			return nil, err
		}
		res.Spares = append(res.Spares, a)
		res.SpareP99 = append(res.SpareP99, stats.Quantile(ds, 0.99))
		res.SpareHists = append(res.SpareHists, histShape(ds, 24))
	}
	done()
	searchCtx, done := phase(ctx, "margin-search")
	vr, err := margin.VoltageMarginCtx(searchCtx, dp, cfg.Seed+19, cfg.SearchSamples, vdd, res.Target, 0.1e-3, 0)
	done()
	if err != nil {
		return nil, err
	}
	res.Margin = vr
	return res, nil
}
