package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/ntvsim/ntvsim/internal/importance"
	"github.com/ntvsim/ntvsim/internal/report"
	"github.com/ntvsim/ntvsim/internal/simd"
	"github.com/ntvsim/ntvsim/internal/stats"
	"github.com/ntvsim/ntvsim/internal/tech"
)

func init() {
	register("tailyield", Architecture, 10000,
		"rare-event tail yield at 0.5V, 22nm: plain MC vs importance sampling at 2-4 sigma targets (extension)", runTailYield)
}

// TailYieldRow is one sigma level of the MC-vs-IS comparison.
type TailYieldRow struct {
	Sigma       float64 // tail target, standard-normal units
	AnalyticPPM float64 // (1−Φ(k))·1e6, exact under the chip law
	MCPPM       float64 // plain-MC estimate (MCSamples draws)
	MCErrPPM    float64 // its delta-method standard error
	ISPPM       float64 // importance-sampling estimate (ISSamples draws)
	ISErrPPM    float64 // its delta-method standard error
	ESS         float64 // effective sample size of the IS weights
	Reduction   float64 // equal-accuracy MC samples per IS sample
}

// TailYieldResult is an extension beyond the paper: the sign-off
// question "how many chips miss a k-sigma delay target" answered three
// ways — analytically from the chip law, by plain Monte-Carlo, and by
// the importance sampler with a tenth of the MC budget — as the live
// demonstration of the docs/SAMPLING.md contract.
type TailYieldResult struct {
	Node      tech.Node
	Vdd       float64
	MCSamples int
	ISSamples int
	Rows      []TailYieldRow
}

// ID implements Result.
func (r *TailYieldResult) ID() string { return "tailyield" }

// Render implements Result.
func (r *TailYieldResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tail yield at %.2f V, %s: MC (%d chips) vs IS (%d chips)\n",
		r.Vdd, r.Node.Name, r.MCSamples, r.ISSamples)
	t := report.NewTable("", "target", "analytic", "MC", "IS", "ESS", "equal-accuracy gain")
	for _, row := range r.Rows {
		t.AddRowf(fmt.Sprintf("%.0fσ", row.Sigma),
			fmt.Sprintf("%.3g ppm", row.AnalyticPPM),
			fmt.Sprintf("%.3g ± %.2g ppm", row.MCPPM, row.MCErrPPM),
			fmt.Sprintf("%.3g ± %.2g ppm", row.ISPPM, row.ISErrPPM),
			fmt.Sprintf("%.0f", row.ESS),
			fmt.Sprintf("%.0f×", row.Reduction))
	}
	b.WriteString(t.String())
	b.WriteString("equal-accuracy gain: MC samples one IS sample replaces at this target\n")
	return b.String()
}

// CSV implements CSVer.
func (r *TailYieldResult) CSV() [][]string {
	rows := [][]string{{"sigma", "analytic_ppm", "mc_ppm", "mc_err_ppm", "is_ppm", "is_err_ppm", "ess", "reduction"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			f(row.Sigma), f(row.AnalyticPPM), f(row.MCPPM), f(row.MCErrPPM),
			f(row.ISPPM), f(row.ISErrPPM), f(row.ESS), f(row.Reduction),
		})
	}
	return rows
}

func runTailYield(ctx context.Context, cfg Config) (Result, error) {
	node := tech.N22
	const vdd = 0.5
	stdNormal := stats.Normal{Mu: 0, Sigma: 1}
	dp := simd.New(node)
	fn, err := dp.ChipQuantileFn(vdd)
	if err != nil {
		return nil, err
	}
	nMC := cfg.ChipSamples
	nIS := nMC / 10
	if nIS < 1000 {
		nIS = 1000
	}
	res := &TailYieldResult{Node: node, Vdd: vdd, MCSamples: nMC, ISSamples: nIS}
	for i, k := range []float64{2, 3, 4} {
		pTrue := 1 - stdNormal.CDF(k)
		target, err := dp.ChipQuantile(vdd, stdNormal.CDF(k))
		if err != nil {
			return nil, err
		}
		seed := cfg.Seed + uint64(41+i)

		mcCtx, done := phase(ctx, fmt.Sprintf("mc/%.0fsigma", k))
		xs, ws, err := importance.SampleCtx(mcCtx, importance.Params{Mix: 1}, seed, nMC, fn)
		done()
		if err != nil {
			return nil, err
		}
		pMC, seMC := importance.TailProb(xs, ws, target)

		isCtx, done := phase(ctx, fmt.Sprintf("is/%.0fsigma", k))
		xs, ws, err = importance.SampleCtx(isCtx, importance.Params{Shift: k}, seed, nIS, fn)
		done()
		if err != nil {
			return nil, err
		}
		pIS, seIS := importance.TailProb(xs, ws, target)
		diag := importance.Diagnose(ws)

		res.Rows = append(res.Rows, TailYieldRow{
			Sigma:       k,
			AnalyticPPM: pTrue * 1e6,
			MCPPM:       pMC * 1e6, MCErrPPM: seMC * 1e6,
			ISPPM: pIS * 1e6, ISErrPPM: seIS * 1e6,
			ESS:       diag.ESS,
			Reduction: pTrue * (1 - pTrue) / (seIS * seIS * float64(nIS)),
		})
	}
	return res, nil
}
