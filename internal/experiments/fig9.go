package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/ntvsim/ntvsim/internal/power"
	"github.com/ntvsim/ntvsim/internal/report"
	"github.com/ntvsim/ntvsim/internal/tech"
)

func init() {
	register("fig9", Circuit, 0,
		"energy and delay vs supply across super/near/sub-threshold regions", runFig9)
}

// Fig9Result reproduces Figure 9 (Appendix A): energy and delay versus
// supply voltage across the super-, near- and sub-threshold regions,
// with the energy minimum in the sub-threshold region and the
// near-threshold sweet spot quantified.
type Fig9Result struct {
	Node   tech.Node
	Depth  int
	Points []power.Energy

	EminVdd    float64 // supply of minimum energy
	Emin       float64
	NTVVdd     float64 // representative near-threshold point (Vth + 50 mV)
	EnergyNTV  float64
	EnergyNom  float64
	SpeedupSub float64 // delay(Emin point) / delay(NTV)
}

// ID implements Result.
func (r *Fig9Result) ID() string { return "fig9" }

// Render implements Result.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: energy/delay vs Vdd, %s, %d-gate operation\n", r.Node.Name, r.Depth)
	t := report.NewTable("", "Vdd", "region", "E_dyn", "E_leak", "E_total", "delay")
	for _, p := range r.Points {
		t.AddRowf(fmt.Sprintf("%.2f V", p.Vdd),
			r.Node.Dev.Region(p.Vdd).String(),
			fmt.Sprintf("%.4f", p.Dynamic),
			fmt.Sprintf("%.4f", p.Leakage),
			fmt.Sprintf("%.4f", p.Total()),
			fmt.Sprintf("%.3g ns", p.Delay*1e9))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "energy minimum: %.4f at %.3f V (%s; Vth = %.3f V)\n",
		r.Emin, r.EminVdd, r.Node.Dev.Region(r.EminVdd), r.Node.Dev.Vth0)
	fmt.Fprintf(&b, "near-threshold point %.3f V: energy ×%.2f of minimum, ×%.1f faster than minimum point\n",
		r.NTVVdd, r.EnergyNTV/r.Emin, r.SpeedupSub)
	fmt.Fprintf(&b, "nominal %.2f V → NTV energy reduction: ×%.1f\n",
		r.Node.VddNominal, r.EnergyNom/r.EnergyNTV)
	return b.String()
}

func runFig9(ctx context.Context, cfg Config) (Result, error) {
	node := tech.N90
	const depth = tech.ChainLength
	const activity = 1.0
	res := &Fig9Result{Node: node, Depth: depth}
	res.Points = power.Sweep(node.Dev, 0.15, node.VddNominal+0.2, 0.05, depth, activity)
	res.EminVdd, res.Emin = power.MinEnergyPoint(node.Dev, 0.12, node.VddNominal, depth, activity)
	res.NTVVdd = node.Dev.Vth0 + 0.05
	eNTV := power.EnergyPerOp(node.Dev, res.NTVVdd, depth, activity)
	eMin := power.EnergyPerOp(node.Dev, res.EminVdd, depth, activity)
	eNom := power.EnergyPerOp(node.Dev, node.VddNominal, depth, activity)
	res.EnergyNTV = eNTV.Total()
	res.EnergyNom = eNom.Total()
	res.SpeedupSub = eMin.Delay / eNTV.Delay
	return res, nil
}
