package experiments

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestTableJSON(t *testing.T) {
	tab := tableJSON([][]string{
		{"vdd_v", "node", "drop_pct"},
		{"0.5", "90nm", "5.1"},
		{"0.55", "90nm", ""},
	})
	if len(tab.Columns) != 3 || len(tab.Rows) != 2 {
		t.Fatalf("shape = %dx%d", len(tab.Columns), len(tab.Rows))
	}
	if v, ok := tab.Rows[0][0].(float64); !ok || v != 0.5 {
		t.Errorf("numeric cell = %#v", tab.Rows[0][0])
	}
	if s, ok := tab.Rows[0][1].(string); !ok || s != "90nm" {
		t.Errorf("string cell = %#v", tab.Rows[0][1])
	}
	if tab.Rows[1][2] != nil {
		t.Errorf("empty cell = %#v", tab.Rows[1][2])
	}
}

// TestJSONersMarshal runs the CSV-capable experiments at quick scale and
// checks every JSON payload survives a marshal round trip.
func TestJSONersMarshal(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several experiments")
	}
	for _, id := range []string{"fig2", "fig4", "fig9", "fig11", "table1", "table2", "table4"} {
		res := runQuick(t, id)
		j, ok := res.(JSONer)
		if !ok {
			t.Errorf("%s: no JSON method", id)
			continue
		}
		b, err := json.Marshal(j.JSON())
		if err != nil {
			t.Errorf("%s: marshal: %v", id, err)
			continue
		}
		if len(b) < 20 {
			t.Errorf("%s: implausibly small payload %q", id, b)
		}
	}
}

func TestFig4JSONShape(t *testing.T) {
	res := runQuick(t, "fig4")
	b, err := json.Marshal(res.(JSONer).JSON())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"samples"`, `"series"`, `"node"`, `"drop_pct"`, `"baseline_p99_fo4"`} {
		if !strings.Contains(string(b), want) {
			t.Errorf("fig4 JSON missing %s in %.200s…", want, b)
		}
	}
}
