package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/ntvsim/ntvsim/internal/report"
	"github.com/ntvsim/ntvsim/internal/tech"
)

func init() {
	register("itd", Circuit, 0,
		"inverse temperature dependence near threshold (extension)", runITD)
}

// ITDSeries is one node's temperature behaviour.
type ITDSeries struct {
	Node      tech.Node
	Vdd       []float64
	SensPerK  []float64 // (1/τ)·dτ/dT at 300 K, %/K
	Inversion float64   // temperature-insensitive Vdd (V), NaN-free: 0 if none found
}

// ITDResult is an extension beyond the paper: inverse temperature
// dependence. Near threshold, heating *speeds circuits up* (V_th falls
// and the thermal voltage rises faster than mobility degrades); at
// nominal voltage heating slows them down. The crossover — the
// temperature-insensitive supply — sits in the near-threshold band for
// every calibrated node, a first-order deployment consideration the
// 300 K study abstracts away.
type ITDResult struct {
	ColdK, HotK float64
	Series      []ITDSeries
}

// ID implements Result.
func (r *ITDResult) ID() string { return "itd" }

// Render implements Result.
func (r *ITDResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Inverse temperature dependence (%g K vs %g K)\n", r.ColdK, r.HotK)
	headers := []string{"Vdd"}
	for _, s := range r.Series {
		headers = append(headers, s.Node.Name+" %/K")
	}
	t := report.NewTable("", headers...)
	grid := r.Series[0].Vdd
	for i, v := range grid {
		cells := []string{fmt.Sprintf("%.2f V", v)}
		for _, s := range r.Series {
			cells = append(cells, fmt.Sprintf("%+.4f", s.SensPerK[i]))
		}
		t.AddRowf(cells...)
	}
	b.WriteString(t.String())
	for _, s := range r.Series {
		if s.Inversion > 0 {
			fmt.Fprintf(&b, "%s: temperature-insensitive point at %.0f mV (Vth %.0f mV)\n",
				s.Node.Name, s.Inversion*1e3, s.Node.Dev.Vth0*1e3)
		} else {
			fmt.Fprintf(&b, "%s: no inversion point in the scanned range\n", s.Node.Name)
		}
	}
	b.WriteString("negative entries: heating speeds the gate up (the near-threshold ITD regime).\n")
	return b.String()
}

// CSV implements CSVer.
func (r *ITDResult) CSV() [][]string {
	head := []string{"vdd_v"}
	for _, s := range r.Series {
		head = append(head, s.Node.Name+"_pct_per_k")
	}
	rows := [][]string{head}
	for i, v := range r.Series[0].Vdd {
		row := []string{f(v)}
		for _, s := range r.Series {
			row = append(row, f(s.SensPerK[i]))
		}
		rows = append(rows, row)
	}
	return rows
}

func runITD(ctx context.Context, cfg Config) (Result, error) {
	const coldK, hotK = 273, 398
	res := &ITDResult{ColdK: coldK, HotK: hotK}
	grid := []float64{0.30, 0.35, 0.40, 0.45, 0.50, 0.60, 0.70, 0.80, 0.90, 1.00, 1.10}
	for _, node := range tech.Nodes() {
		s := ITDSeries{Node: node}
		for _, v := range grid {
			sens, err := node.Dev.TempSensitivity(v, 300)
			if err != nil {
				return nil, err
			}
			s.Vdd = append(s.Vdd, v)
			s.SensPerK = append(s.SensPerK, 100*sens)
		}
		if inv, err := node.Dev.TempInversionPoint(0.25, 1.2, coldK, hotK); err == nil {
			s.Inversion = inv
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}
