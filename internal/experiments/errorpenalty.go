package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/ntvsim/ntvsim/internal/report"
	"github.com/ntvsim/ntvsim/internal/rng"
	"github.com/ntvsim/ntvsim/internal/soda"
	"github.com/ntvsim/ntvsim/internal/timingerr"
)

func init() {
	register("synctium", Architecture, 0,
		"wide-SIMD throughput collapse vs per-lane timing-error probability (Synctium motivation)", runErrorPenalty)
}

// ErrorPenaltyRow reports throughput under the three recovery policies
// at one per-lane error probability, relative to error-free execution.
type ErrorPenaltyRow struct {
	P            float64
	StallRel     float64 // cycles(stall)/cycles(error-free)
	FlushRel     float64
	DecoupledRel float64
	StallErrors  int
	FlushErrors  int
	DecoupErrors int
}

// ErrorPenaltyResult reproduces the motivation the paper takes from
// Synctium [3]: as single-stage (per-lane, per-operation) timing-error
// probability rises, wide-SIMD throughput collapses under whole-pipeline
// recovery (stall, flush+replay) because any of 128 lanes triggers it,
// while per-lane decoupling absorbs most errors. Measured by running a
// real dot-product kernel on the Diet SODA PE simulator under each
// policy.
type ErrorPenaltyResult struct {
	KernelName string
	BaseCycles int
	PipeDepth  int
	QueueDepth int
	Rows       []ErrorPenaltyRow
}

// ID implements Result.
func (r *ErrorPenaltyResult) ID() string { return "synctium" }

// Render implements Result.
func (r *ErrorPenaltyResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SIMD timing-error penalty (kernel %s, %d error-free cycles; flush depth %d, queue %d)\n",
		r.KernelName, r.BaseCycles, r.PipeDepth, r.QueueDepth)
	t := report.NewTable("", "P(lane err)", "stall ×", "flush ×", "decoupled ×")
	for _, row := range r.Rows {
		t.AddRowf(fmt.Sprintf("%.0e", row.P),
			fmt.Sprintf("%.3f", row.StallRel),
			fmt.Sprintf("%.3f", row.FlushRel),
			fmt.Sprintf("%.3f", row.DecoupledRel))
	}
	b.WriteString(t.String())
	b.WriteString("× = relative execution time (1.0 = error-free). Whole-pipeline recovery\n" +
		"amplifies one lane's error across all 128 lanes; decoupling queues absorb it.\n")
	return b.String()
}

// errorPenaltyKernel builds the measured workload: a 32-row dot product,
// giving a few hundred vector operations per run.
func errorPenaltyKernel() soda.Kernel {
	n := 32 * soda.Lanes
	a := make([]uint16, n)
	b := make([]uint16, n)
	for i := range a {
		a[i] = uint16(i * 7)
		b[i] = uint16(i*13 + 5)
	}
	return soda.DotProductKernel(a, b)
}

func runErrorPenalty(ctx context.Context, cfg Config) (Result, error) {
	const pipeDepth = 8
	const queueDepth = 2
	kernel := errorPenaltyKernel()
	res := &ErrorPenaltyResult{
		KernelName: kernel.Name, PipeDepth: pipeDepth, QueueDepth: queueDepth,
	}

	run := func(model soda.ErrorModel, seed uint64) (int, int, error) {
		pe := soda.NewPE()
		pe.Err = model
		pe.Rand = rng.New(seed)
		if err := soda.RunKernel(pe, kernel); err != nil {
			return 0, 0, err
		}
		return pe.Stats.Cycles, pe.Stats.TimingErrors, nil
	}

	base, _, err := run(nil, cfg.Seed)
	if err != nil {
		return nil, err
	}
	res.BaseCycles = base

	for _, p := range []float64{1e-5, 1e-4, 1e-3, 1e-2, 5e-2, 1e-1} {
		row := ErrorPenaltyRow{P: p}
		c, e, err := run(timingerr.Stall{Lanes: soda.Lanes, P: p}, cfg.Seed+1)
		if err != nil {
			return nil, err
		}
		row.StallRel, row.StallErrors = float64(c)/float64(base), e
		c, e, err = run(timingerr.FlushReplay{Lanes: soda.Lanes, P: p, Depth: pipeDepth}, cfg.Seed+2)
		if err != nil {
			return nil, err
		}
		row.FlushRel, row.FlushErrors = float64(c)/float64(base), e
		c, e, err = run(timingerr.NewDecoupled(soda.Lanes, p, queueDepth), cfg.Seed+3)
		if err != nil {
			return nil, err
		}
		row.DecoupledRel, row.DecoupErrors = float64(c)/float64(base), e
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
