package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/ntvsim/ntvsim/internal/margin"
	"github.com/ntvsim/ntvsim/internal/report"
	"github.com/ntvsim/ntvsim/internal/simd"
	"github.com/ntvsim/ntvsim/internal/tech"
)

func init() {
	register("table4", Architecture, 10000,
		"frequency margining: variation-aware clock period and performance drop", runTable4)
}

// Table4Cell is one node × voltage entry of Table 4 (Appendix E).
type Table4Cell struct {
	Node   string
	Vdd    float64
	Result margin.FrequencyResult
}

// Table4Result reproduces Table 4: frequency margining — the designed
// clock period T_clk, the variation-aware period T_va-clk covering the
// 99 % chip delay, and the performance drop. The paper's conclusion:
// drops approach ~20 % at advanced nodes, making frequency margining
// unattractive there.
type Table4Result struct {
	Samples int
	Cells   []Table4Cell
}

// ID implements Result.
func (r *Table4Result) ID() string { return "table4" }

// Cell returns the entry for (node name, vdd), or nil.
func (r *Table4Result) Cell(node string, vdd float64) *Table4Cell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Node == node && abs(c.Vdd-vdd) < 1e-6 {
			return c
		}
	}
	return nil
}

// Render implements Result.
func (r *Table4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: frequency margining (T_clk vs variation-aware T_va-clk), %d samples\n", r.Samples)
	t := report.NewTable("", "node", "Vdd", "T_clk", "T_va-clk", "perf drop")
	for _, c := range r.Cells {
		t.AddRowf(c.Node, fmt.Sprintf("%.2f V", c.Vdd),
			fmt.Sprintf("%.2f ns", c.Result.TClk*1e9),
			fmt.Sprintf("%.2f ns", c.Result.TVaClk*1e9),
			fmt.Sprintf("%.2f%%", c.Result.DropPct))
	}
	b.WriteString(t.String())
	return b.String()
}

func runTable4(ctx context.Context, cfg Config) (Result, error) {
	res := &Table4Result{Samples: cfg.ChipSamples}
	for ni, node := range tech.Nodes() {
		dp := simd.New(node)
		seed := cfg.Seed + uint64(ni)*4241
		base, err := dp.P99ChipDelayFO4Ctx(ctx, seed, cfg.ChipSamples, node.VddNominal, 0)
		if err != nil {
			return nil, err
		}
		for _, vdd := range table1Voltages {
			fr, err := margin.FrequencyMarginCtx(ctx, dp, seed, cfg.ChipSamples, vdd, base)
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, Table4Cell{Node: node.Name, Vdd: vdd, Result: fr})
		}
	}
	return res, nil
}
