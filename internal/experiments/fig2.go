package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"github.com/ntvsim/ntvsim/internal/montecarlo"
	"github.com/ntvsim/ntvsim/internal/report"
	"github.com/ntvsim/ntvsim/internal/rng"
	"github.com/ntvsim/ntvsim/internal/stats"
	"github.com/ntvsim/ntvsim/internal/tech"
	"github.com/ntvsim/ntvsim/internal/variation"
)

func init() {
	register("fig2", Circuit, 1000,
		"3-sigma/mu of a 50-FO4 chain vs Vdd for the four nodes", runFig2)
}

// Fig2Series is one technology node's 3σ/μ-vs-Vdd curve for a 50-FO4
// chain.
type Fig2Series struct {
	Node     tech.Node
	Vdd      []float64
	ThreeSig []float64 // 3σ/μ %
}

// Fig2Result reproduces Figure 2: chain delay variation vs supply
// voltage for the four technology nodes. Each node is swept from 0.5 V
// to its nominal voltage (the paper simulates 32/22 nm only up to their
// 0.9/0.8 V nominals).
type Fig2Result struct {
	Samples int
	Series  []Fig2Series
}

// ID implements Result.
func (r *Fig2Result) ID() string { return "fig2" }

// Render implements Result.
func (r *Fig2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2: 3σ/μ (%%) of a 50-FO4 chain vs Vdd, %d samples/point\n", r.Samples)
	t := report.NewTable("", "Vdd", "90nm GP", "45nm GP", "32nm PTM HP", "22nm PTM HP")
	// Collect union of voltages (all series share the same grid start).
	grid := r.Series[0].Vdd
	for _, v := range grid {
		cells := []string{fmt.Sprintf("%.2f V", v)}
		for _, s := range r.Series {
			cell := "—"
			for i, sv := range s.Vdd {
				if math.Abs(sv-v) < 1e-6 {
					cell = fmt.Sprintf("%.2f%%", s.ThreeSig[i])
				}
			}
			cells = append(cells, cell)
		}
		t.AddRowf(cells...)
	}
	b.WriteString(t.String())
	return b.String()
}

// fig2Grid returns the sweep voltages for a node: 0.50 V up to the
// nominal voltage in 50 mV steps.
func fig2Grid(n tech.Node) []float64 {
	var grid []float64
	for v := 0.50; v <= n.VddNominal+1e-9; v += 0.05 {
		grid = append(grid, v)
	}
	return grid
}

func runFig2(ctx context.Context, cfg Config) (Result, error) {
	res := &Fig2Result{Samples: cfg.CircuitSamples}
	for ni, node := range tech.Nodes() {
		nodeCtx, done := phase(ctx, "node/"+node.Name)
		sampler := variation.NewSampler(node.Dev, node.Var)
		s := Fig2Series{Node: node}
		for _, vdd := range fig2Grid(node) {
			chain, err := montecarlo.SampleCtx(nodeCtx, cfg.Seed+uint64(ni*1000)+uint64(vdd*100), cfg.CircuitSamples,
				func(r *rng.Stream) float64 {
					return sampler.FreshChainDelay(r, vdd, tech.ChainLength)
				})
			if err != nil {
				done()
				return nil, err
			}
			s.Vdd = append(s.Vdd, vdd)
			s.ThreeSig = append(s.ThreeSig, stats.ThreeSigmaOverMu(chain))
		}
		done()
		res.Series = append(res.Series, s)
	}
	return res, nil
}
