package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"github.com/ntvsim/ntvsim/internal/report"
	"github.com/ntvsim/ntvsim/internal/simd"
	"github.com/ntvsim/ntvsim/internal/tech"
)

func init() {
	register("fig4", Architecture, 10000,
		"performance drop of a 128-wide SIMD datapath near threshold, four nodes", runFig4)
}

// Fig4Series is one node's performance-drop curve: the relative increase
// of the 99 % FO4 chip delay at near-threshold voltage over the nominal
// voltage baseline.
type Fig4Series struct {
	Node     tech.Node
	Baseline float64 // p99 FO4 chip delay at nominal voltage
	Vdd      []float64
	DropPct  []float64
}

// Fig4Result reproduces Figure 4: performance drop (%) of a 128-wide
// SIMD datapath in the near-threshold region for the four nodes.
// Paper anchors: 90 nm 5 / 2.5 / 1.5 % at 0.50 / 0.55 / 0.60 V;
// 22 nm ≈ 18 % at 0.50 V.
type Fig4Result struct {
	Samples int
	Series  []Fig4Series
}

// ID implements Result.
func (r *Fig4Result) ID() string { return "fig4" }

// Render implements Result.
func (r *Fig4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: performance drop (%%) vs Vdd, 128-wide SIMD, %d samples\n", r.Samples)
	t := report.NewTable("", "Vdd", "90nm GP", "45nm GP", "32nm PTM HP", "22nm PTM HP")
	grid := r.Series[0].Vdd
	for gi, v := range grid {
		cells := []string{fmt.Sprintf("%.2f V", v)}
		for _, s := range r.Series {
			cell := "—"
			for i, sv := range s.Vdd {
				if math.Abs(sv-v) < 1e-6 {
					cell = fmt.Sprintf("%.2f%%", s.DropPct[i])
				}
			}
			cells = append(cells, cell)
		}
		_ = gi
		t.AddRowf(cells...)
	}
	b.WriteString(t.String())
	return b.String()
}

// Drop returns the performance drop of series s at the given voltage,
// or NaN if the voltage is not on the grid — a convenience for tests.
func (s Fig4Series) Drop(vdd float64) float64 {
	for i, v := range s.Vdd {
		if math.Abs(v-vdd) < 1e-6 {
			return s.DropPct[i]
		}
	}
	return math.NaN()
}

func runFig4(ctx context.Context, cfg Config) (Result, error) {
	res := &Fig4Result{Samples: cfg.ChipSamples}
	for ni, node := range tech.Nodes() {
		nodeCtx, done := phase(ctx, "node/"+node.Name)
		dp := simd.New(node)
		base, err := dp.P99ChipDelayFO4Ctx(nodeCtx, cfg.Seed+uint64(ni)*97, cfg.ChipSamples, node.VddNominal, 0)
		if err != nil {
			done()
			return nil, err
		}
		s := Fig4Series{Node: node, Baseline: base}
		for _, vdd := range fig2Grid(node) {
			p99, err := dp.P99ChipDelayFO4Ctx(nodeCtx, cfg.Seed+uint64(ni)*97, cfg.ChipSamples, vdd, 0)
			if err != nil {
				done()
				return nil, err
			}
			s.Vdd = append(s.Vdd, vdd)
			s.DropPct = append(s.DropPct, 100*(p99/base-1))
		}
		done()
		res.Series = append(res.Series, s)
	}
	return res, nil
}
