package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/ntvsim/ntvsim/internal/montecarlo"
	"github.com/ntvsim/ntvsim/internal/report"
	"github.com/ntvsim/ntvsim/internal/simd"
	"github.com/ntvsim/ntvsim/internal/soda"
	"github.com/ntvsim/ntvsim/internal/sram"
	"github.com/ntvsim/ntvsim/internal/stats"
	"github.com/ntvsim/ntvsim/internal/tech"
)

func init() {
	register("sramyield", Architecture, 10000,
		"memory-vs-logic yield crossover across nodes × Vdd, and spare rows vs spare lanes at iso-overhead (extension)", runSRAMYield)
}

// sramVdds is the supply grid of the crossover table, matching the
// sweep engine's default Vdd axis.
var sramVdds = []float64{0.50, 0.55, 0.60}

// SRAMYieldRow is one (node, Vdd) point of the crossover table.
type SRAMYieldRow struct {
	Node         string
	Vdd          float64
	ReadMC       float64 // MC memory read yield, %
	WriteMC      float64 // MC memory write yield, %
	ReadAnalytic float64 // analytic memory read yield, %
	LogicMC      float64 // MC logic-path yield at the shared margin rule, %
	DeltaPP      float64 // ReadMC − LogicMC, percentage points
}

// SpareSplitRow is one iso-overhead repair split: spare memory rows
// versus spare SIMD lanes spending the same silicon.
type SpareSplitRow struct {
	Policy      string
	SpareRows   int     // per SIMD memory bank
	SpareLanes  int     // datapath spare FUs
	OverheadPct float64 // chip-area overhead, % (1:1 memory:logic split)
	MemYield    float64 // MC memory read yield with SpareRows, %
	LogicYield  float64 // MC logic yield with SpareLanes, %
	Combined    float64 // product, % (independence approximation)
}

// SRAMYieldResult extends the paper beyond its logic-only scope: the
// SODA chip it studies is mostly memory, and the crossover table shows
// which side fails first as technology scales and Vdd drops. The
// spare-split table then asks the paper's §4.1 question on the new
// axis: given a fixed repair-area budget, are spare rows or spare
// lanes the better buy?
type SRAMYieldResult struct {
	Samples    int
	Rows       []SRAMYieldRow
	StressNode string
	StressVdd  float64
	Splits     []SpareSplitRow
}

// ID implements Result.
func (r *SRAMYieldResult) ID() string { return "sramyield" }

// Render implements Result.
func (r *SRAMYieldResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SRAM vs logic yield (%d chips/point; read margin %.1f×, write %.1f×, logic %.1f×; %d spare rows/bank)\n",
		r.Samples, sram.DefaultReadMargin, sram.DefaultWriteMargin, sram.LogicMarginFO4, sram.DefaultSpareRowsPerBank)
	t := report.NewTable("", "node", "Vdd", "mem read", "mem write", "read (analytic)", "logic", "mem−logic")
	for _, row := range r.Rows {
		t.AddRowf(row.Node,
			fmt.Sprintf("%.2f V", row.Vdd),
			fmt.Sprintf("%.2f%%", row.ReadMC),
			fmt.Sprintf("%.2f%%", row.WriteMC),
			fmt.Sprintf("%.2f%%", row.ReadAnalytic),
			fmt.Sprintf("%.2f%%", row.LogicMC),
			fmt.Sprintf("%+.2f pp", row.DeltaPP))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nIso-overhead repair split at %s, %.2f V (combined = mem × logic, independent-model approximation):\n",
		r.StressNode, r.StressVdd)
	s := report.NewTable("", "policy", "spare rows/bank", "spare lanes", "overhead", "mem yield", "logic yield", "combined")
	for _, row := range r.Splits {
		s.AddRowf(row.Policy,
			fmt.Sprintf("%d", row.SpareRows),
			fmt.Sprintf("%d", row.SpareLanes),
			fmt.Sprintf("%.2f%%", row.OverheadPct),
			fmt.Sprintf("%.2f%%", row.MemYield),
			fmt.Sprintf("%.2f%%", row.LogicYield),
			fmt.Sprintf("%.2f%%", row.Combined))
	}
	b.WriteString(s.String())
	return b.String()
}

// CSV implements CSVer. The two tables share one file, discriminated by
// the section column.
func (r *SRAMYieldResult) CSV() [][]string {
	rows := [][]string{{
		"section", "node", "vdd", "read_mc_pct", "write_mc_pct", "read_analytic_pct",
		"logic_mc_pct", "delta_pp", "policy", "spare_rows", "spare_lanes", "overhead_pct",
		"mem_pct", "logic_pct", "combined_pct",
	}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			"crossover", row.Node, f(row.Vdd), f(row.ReadMC), f(row.WriteMC),
			f(row.ReadAnalytic), f(row.LogicMC), f(row.DeltaPP),
			"", "", "", "", "", "", "",
		})
	}
	for _, row := range r.Splits {
		rows = append(rows, []string{
			"sparesplit", r.StressNode, f(r.StressVdd), "", "", "", "", "",
			row.Policy, fmt.Sprintf("%d", row.SpareRows), fmt.Sprintf("%d", row.SpareLanes),
			f(row.OverheadPct), f(row.MemYield), f(row.LogicYield), f(row.Combined),
		})
	}
	return rows
}

// spareSplits are the iso-overhead comparison points: ~3.1% of chip
// area spent entirely on rows, entirely on lanes, or split. With a 1:1
// memory:logic area assumption, one spare lane costs 1/(2·Lanes) of
// the chip and one spare row per bank costs Banks·Cols bits out of
// 2×MapCells (the map plus its logic half).
var spareSplits = []struct {
	name       string
	rows, aExt int
}{
	{"rows only", 26, 0},
	{"split", 13, 4},
	{"lanes only", 0, 8},
}

// logicYieldMC estimates the fraction of chips whose slowest path meets
// the logic budget with the given spare-lane count.
func logicYieldMC(ctx context.Context, dp *simd.Datapath, seed uint64, n int, vdd float64, spares int) (float64, error) {
	budget := sram.LogicMarginFO4 * float64(tech.ChainLength)
	fo4s, err := dp.ChipDelaysFO4Ctx(ctx, seed, n, vdd, spares)
	if err != nil {
		return 0, err
	}
	pass := 0
	for _, d := range fo4s {
		if d <= budget {
			pass++
		}
	}
	return 100 * float64(pass) / float64(len(fo4s)), nil
}

// rowOverheadPct returns the chip-area overhead of s spare rows per
// SIMD memory bank, in percent, under the 1:1 memory:logic area split.
func rowOverheadPct(s int) float64 {
	m := sram.SODAMemoryMap(0)
	spareBits := float64(soda.Banks * s * soda.BankLanes * sram.WordBits)
	return 100 * spareBits / float64(2*sram.MapCells(m))
}

// laneOverheadPct returns the chip-area overhead of a spare datapath
// lanes, in percent.
func laneOverheadPct(a int) float64 {
	return 100 * float64(a) / float64(2*soda.Lanes)
}

func runSRAMYield(ctx context.Context, cfg Config) (Result, error) {
	res := &SRAMYieldResult{Samples: cfg.ChipSamples}
	n := cfg.ChipSamples

	for i, node := range tech.Nodes() {
		m := sram.New(node)
		dp := simd.New(node)
		for j, vdd := range sramVdds {
			seed := cfg.Seed + uint64(100+10*(i*len(sramVdds)+j))
			ptCtx, done := phase(ctx, fmt.Sprintf("crossover/%dnm/%.2fV", node.Feature, vdd))
			read, err := memYieldMC(ptCtx, m, sram.OpRead, seed, n, vdd)
			if err != nil {
				return nil, err
			}
			write, err := memYieldMC(ptCtx, m, sram.OpWrite, seed+1, n, vdd)
			if err != nil {
				return nil, err
			}
			logic, err := logicYieldMC(ptCtx, dp, seed+2, n, vdd, 0)
			done()
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, SRAMYieldRow{
				Node: node.Name, Vdd: vdd,
				ReadMC: read, WriteMC: write,
				ReadAnalytic: 100 * m.Yield(sram.OpRead, vdd),
				LogicMC:      logic,
				DeltaPP:      read - logic,
			})
		}
	}

	// Spare-split comparison at the stress point where the repair budget
	// actually moves chip yield: 32 nm at 0.60 V, where the banked
	// memory is marginal and responds to spare rows. Note the ceiling:
	// rows beyond ~8 per bank stop helping because the unspared vector
	// RF and XRAM floors, not the banks, then dominate memory failures
	// (visible below as identical yields for the 13- and 26-row
	// policies).
	node := tech.N32
	const vdd = 0.60
	res.StressNode = node.Name
	res.StressVdd = vdd
	dp := simd.New(node)
	for k, split := range spareSplits {
		seed := cfg.Seed + uint64(500+10*k)
		spCtx, done := phase(ctx, "sparesplit/"+strings.ReplaceAll(split.name, " ", "-"))
		mem, err := memYieldMC(spCtx, sram.New(node).WithSpareRows(split.rows), sram.OpRead, seed, n, vdd)
		if err != nil {
			return nil, err
		}
		logic, err := logicYieldMC(spCtx, dp, seed+1, n, vdd, split.aExt)
		done()
		if err != nil {
			return nil, err
		}
		res.Splits = append(res.Splits, SpareSplitRow{
			Policy:     split.name,
			SpareRows:  split.rows,
			SpareLanes: split.aExt,
			OverheadPct: rowOverheadPct(split.rows) +
				laneOverheadPct(split.aExt),
			MemYield:   mem,
			LogicYield: logic,
			Combined:   mem * logic / 100,
		})
	}
	return res, nil
}

// memYieldMC estimates the chip-level memory yield by Monte Carlo, in
// percent.
func memYieldMC(ctx context.Context, m sram.Model, op sram.Op, seed uint64, n int, vdd float64) (float64, error) {
	smp := m.NewSampler(op, vdd)
	xs, err := montecarlo.SampleCtx(ctx, seed, n, smp.Sample)
	if err != nil {
		return 0, err
	}
	return 100 * stats.Mean(xs), nil
}
