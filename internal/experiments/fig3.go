package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/ntvsim/ntvsim/internal/report"
	"github.com/ntvsim/ntvsim/internal/simd"
	"github.com/ntvsim/ntvsim/internal/stats"
	"github.com/ntvsim/ntvsim/internal/tech"
)

func init() {
	register("fig3", Architecture, 10000,
		"delay distributions: path, lane and 128-wide datapath across voltages, 90nm", runFig3)
}

// Fig3Curve is one delay distribution of Figure 3, in FO4 delay units at
// its own supply voltage (the paper's normalization).
type Fig3Curve struct {
	Label   string
	Vdd     float64
	Summary stats.Summary
	Hist    []float64
}

// Fig3Result reproduces Figure 3: delay distributions for one critical
// path at 1 V, one SIMD lane at 1 V, and the 128-wide SIMD datapath at
// 1.0/0.6/0.55/0.5 V, all in 90 nm GP with 10 000 samples.
type Fig3Result struct {
	Node    tech.Node
	Samples int
	Curves  []Fig3Curve
}

// ID implements Result.
func (r *Fig3Result) ID() string { return "fig3" }

// Render implements Result.
func (r *Fig3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3: delay distributions (FO4 units), %s, %d samples\n", r.Node.Name, r.Samples)
	t := report.NewTable("", "curve", "mean", "p50", "p99", "3σ/μ", "shape")
	for _, c := range r.Curves {
		t.AddRowf(
			c.Label,
			fmt.Sprintf("%.2f", c.Summary.Mean),
			fmt.Sprintf("%.2f", c.Summary.P50),
			fmt.Sprintf("%.2f", c.Summary.P99),
			fmt.Sprintf("%.2f%%", c.Summary.ThreeSigmaOverMu()),
			report.Sparkline(c.Hist),
		)
	}
	b.WriteString(t.String())
	b.WriteString("Expected ordering: path@1V < 1-wide@1V < 128-wide@1V < 128-wide at lower Vdd.\n")
	return b.String()
}

func runFig3(ctx context.Context, cfg Config) (Result, error) {
	node := tech.N90
	dp := simd.New(node)
	res := &Fig3Result{Node: node, Samples: cfg.ChipSamples}

	toFO4 := func(ds []float64, vdd float64) []float64 {
		f := dp.FO4(vdd)
		out := make([]float64, len(ds))
		for i, d := range ds {
			out[i] = d / f
		}
		return out
	}
	add := func(label string, vdd float64, ds []float64) {
		fo4 := toFO4(ds, vdd)
		res.Curves = append(res.Curves, Fig3Curve{
			Label:   label,
			Vdd:     vdd,
			Summary: stats.Summarize(fo4),
			Hist:    histShape(fo4, 24),
		})
	}

	nominal := node.VddNominal
	paths, err := dp.PathDelaysCtx(ctx, cfg.Seed+1, cfg.ChipSamples, nominal)
	if err != nil {
		return nil, err
	}
	add("critical path @1V", nominal, paths)
	lanes, err := dp.LaneDelaysCtx(ctx, cfg.Seed+2, cfg.ChipSamples, nominal)
	if err != nil {
		return nil, err
	}
	add("1-wide @1V", nominal, lanes)
	chips, err := dp.ChipDelaysCtx(ctx, cfg.Seed+3, cfg.ChipSamples, nominal, 0)
	if err != nil {
		return nil, err
	}
	add("128-wide @1V", nominal, chips)
	for _, vdd := range []float64{0.6, 0.55, 0.5} {
		chips, err := dp.ChipDelaysCtx(ctx, cfg.Seed+uint64(vdd*100), cfg.ChipSamples, vdd, 0)
		if err != nil {
			return nil, err
		}
		add(fmt.Sprintf("128-wide @%.2fV", vdd), vdd, chips)
	}
	return res, nil
}
