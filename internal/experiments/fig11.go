package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/ntvsim/ntvsim/internal/montecarlo"
	"github.com/ntvsim/ntvsim/internal/report"
	"github.com/ntvsim/ntvsim/internal/rng"
	"github.com/ntvsim/ntvsim/internal/stats"
	"github.com/ntvsim/ntvsim/internal/tech"
	"github.com/ntvsim/ntvsim/internal/variation"
)

func init() {
	register("fig11", Circuit, 1000,
		"delay variation at 0.55V vs logic chain length, four nodes", runFig11)
}

// fig11Lengths is the chain-length sweep of Figure 11 (Appendix C).
var fig11Lengths = []int{1, 2, 5, 10, 20, 50, 100, 200}

// Fig11Series is one node's 3σ/μ-vs-chain-length curve at 0.55 V.
type Fig11Series struct {
	Node     tech.Node
	Lengths  []int
	ThreeSig []float64
}

// Fig11Result reproduces Figure 11: delay variation at 0.55 V versus
// chain length for the four nodes, demonstrating diminishing returns —
// |Δ(3σ/μ)/ΔN| falls with N, so longer logic chains alone cannot solve
// the timing-variation problem.
type Fig11Result struct {
	Vdd     float64
	Samples int
	Series  []Fig11Series
}

// ID implements Result.
func (r *Fig11Result) ID() string { return "fig11" }

// Render implements Result.
func (r *Fig11Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11: 3σ/μ (%%) at %.2f V vs chain length, %d samples/point\n", r.Vdd, r.Samples)
	headers := []string{"N"}
	for _, s := range r.Series {
		headers = append(headers, s.Node.Name)
	}
	t := report.NewTable("", headers...)
	for i, n := range fig11Lengths {
		cells := []string{fmt.Sprintf("%d", n)}
		for _, s := range r.Series {
			cells = append(cells, fmt.Sprintf("%.2f%%", s.ThreeSig[i]))
		}
		t.AddRowf(cells...)
	}
	b.WriteString(t.String())
	return b.String()
}

func runFig11(ctx context.Context, cfg Config) (Result, error) {
	const vdd = 0.55
	res := &Fig11Result{Vdd: vdd, Samples: cfg.CircuitSamples}
	for ni, node := range tech.Nodes() {
		sampler := variation.NewSampler(node.Dev, node.Var)
		s := Fig11Series{Node: node, Lengths: fig11Lengths}
		for _, n := range fig11Lengths {
			chain, err := montecarlo.SampleCtx(ctx, cfg.Seed+uint64(ni*100+n), cfg.CircuitSamples,
				func(r *rng.Stream) float64 {
					return sampler.FreshChainDelay(r, vdd, n)
				})
			if err != nil {
				return nil, err
			}
			s.ThreeSig = append(s.ThreeSig, stats.ThreeSigmaOverMu(chain))
		}
		res.Series = append(res.Series, s)
	}
	return res, nil
}
