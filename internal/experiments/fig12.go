package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/ntvsim/ntvsim/internal/report"
	"github.com/ntvsim/ntvsim/internal/sparing"
	"github.com/ntvsim/ntvsim/internal/xram"
)

func init() {
	register("fig12", Architecture, 0,
		"global vs local spare placement under lane faults", runFig12)
}

// Fig12Coverage compares placements at one lane-fault probability.
type Fig12Coverage struct {
	FaultProb float64
	Local     float64 // Synctium-style: 1 spare per 4-lane cluster
	Global    float64 // same spare budget, global pool via XRAM
}

// Fig12Burst compares placements under contiguous burst faults.
type Fig12Burst struct {
	BurstLen int
	Local    float64
	Global   float64
}

// Fig12Result reproduces Figure 12 (Appendix D): global versus local
// spare placement. Local sparing (one spare per cluster of four,
// Synctium-style) fails whenever one cluster collects two faults;
// global sparing through the XRAM crossbar tolerates any fault pattern
// up to the total spare budget. The demo also routes data around faulty
// FUs with actual XRAM bypass configurations (the paper's 8+2 example).
type Fig12Result struct {
	Lanes     int
	Coverage  []Fig12Coverage
	Bursts    []Fig12Burst
	BypassOK  bool   // 8+2 XRAM bypass routed correctly
	BypassLog string // human-readable demo transcript
}

// ID implements Result.
func (r *Fig12Result) ID() string { return "fig12" }

// Render implements Result.
func (r *Fig12Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: global vs local sparing, %d lanes, equal spare budget (1 per 4)\n", r.Lanes)
	t := report.NewTable("independent lane faults", "P(lane fault)", "local coverage", "global coverage")
	for _, c := range r.Coverage {
		t.AddRowf(fmt.Sprintf("%.3f", c.FaultProb),
			fmt.Sprintf("%.4f", c.Local), fmt.Sprintf("%.4f", c.Global))
	}
	b.WriteString(t.String())
	t2 := report.NewTable("contiguous burst faults", "burst length", "local coverage", "global coverage")
	for _, c := range r.Bursts {
		t2.AddRowf(fmt.Sprintf("%d", c.BurstLen),
			fmt.Sprintf("%.4f", c.Local), fmt.Sprintf("%.4f", c.Global))
	}
	b.WriteString(t2.String())
	b.WriteString(r.BypassLog)
	return b.String()
}

func runFig12(ctx context.Context, cfg Config) (Result, error) {
	const lanes = 128
	local := sparing.Local{Lanes: lanes, ClusterSize: 4, SparesPerCluster: 1}
	global := sparing.Global{NumSpares: local.Spares()}

	res := &Fig12Result{Lanes: lanes}
	for _, p := range []float64{0.001, 0.005, 0.01, 0.02, 0.05, 0.1} {
		res.Coverage = append(res.Coverage, Fig12Coverage{
			FaultProb: p,
			Local:     sparing.IndependentCoverage(local, lanes, p),
			Global:    sparing.IndependentCoverage(global, lanes, p),
		})
	}
	for _, blen := range []int{1, 2, 3, 4, 8, 16, 32} {
		res.Bursts = append(res.Bursts, Fig12Burst{
			BurstLen: blen,
			Local:    sparing.BurstCoverage(local, lanes, blen, cfg.Seed, 4000),
			Global:   sparing.BurstCoverage(global, lanes, blen, cfg.Seed, 4000),
		})
	}

	log, ok := bypassDemo()
	res.BypassLog, res.BypassOK = log, ok
	return res, nil
}

// bypassDemo reproduces the paper's Figure 12(c): ten physical FUs
// (8 + 2 spares) with FU-2 and FU-3 faulty; the XRAM scatter/gather
// configurations route eight logical lanes around the faults, and the
// demo verifies data comes back intact after a doubling "computation".
func bypassDemo() (string, bool) {
	const physical = 10
	const logical = 8
	faulty := []int{2, 3}

	var b strings.Builder
	fmt.Fprintf(&b, "XRAM bypass demo: %d FUs (%d + %d spares), faulty %v\n",
		physical, logical, physical-logical, faulty)

	mapping, err := xram.SpareMap(physical, faulty, logical)
	if err != nil {
		fmt.Fprintf(&b, "spare map failed: %v\n", err)
		return b.String(), false
	}
	fmt.Fprintf(&b, "logical→physical map: %v\n", mapping)

	scatter, gather, err := xram.BypassConfigs(physical, mapping)
	if err != nil {
		fmt.Fprintf(&b, "bypass configs failed: %v\n", err)
		return b.String(), false
	}
	xb, err := xram.New(physical, 2)
	if err != nil {
		return b.String(), false
	}
	if err := xb.Store(0, scatter); err != nil {
		return b.String(), false
	}
	if err := xb.Store(1, gather); err != nil {
		return b.String(), false
	}

	// Scatter logical data onto healthy physical lanes.
	in := make([]uint16, physical)
	for i := 0; i < logical; i++ {
		in[i] = uint16(100 + i)
	}
	phys := make([]uint16, physical)
	if err := xb.Select(0); err != nil {
		return b.String(), false
	}
	if err := xb.Route(in, phys); err != nil {
		return b.String(), false
	}
	// "Compute": healthy FUs double their operand; faulty FUs corrupt.
	for i := range phys {
		phys[i] *= 2
	}
	for _, f := range faulty {
		phys[f] = 0xDEAD
	}
	// Gather results back to logical order.
	out := make([]uint16, physical)
	if err := xb.Select(1); err != nil {
		return b.String(), false
	}
	if err := xb.Route(phys, out); err != nil {
		return b.String(), false
	}
	ok := true
	for i := 0; i < logical; i++ {
		want := uint16(100+i) * 2
		if out[i] != want {
			fmt.Fprintf(&b, "lane %d: got %d, want %d\n", i, out[i], want)
			ok = false
		}
	}
	if ok {
		fmt.Fprintf(&b, "all %d logical lanes correct despite faulty FUs %v\n", logical, faulty)
	}
	return b.String(), ok
}
