// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment has a constructor returning a structured,
// renderable result, plus a registry so the CLI, tests and benchmarks
// share one implementation per artifact.
//
// Monte-Carlo sample counts default to the paper's (1000 samples for
// circuit-level figures, 10 000 for architecture-level ones) and can be
// reduced via Config for fast regression tests.
package experiments

import (
	"context"
	"fmt"
	"sort"

	"github.com/ntvsim/ntvsim/internal/faults"
	"github.com/ntvsim/ntvsim/internal/telemetry"
)

// Config controls an experiment run.
//
// Zero means "use the paper default" for every field: a zero Seed or a
// zero sample count is replaced by the corresponding Default value
// during normalization. Negative sample counts are invalid and rejected
// by Run/RunCtx with an error rather than silently replaced.
type Config struct {
	Seed           uint64 `json:"seed"`
	CircuitSamples int    `json:"circuit_samples"` // circuit-level MC samples (paper: 1000)
	ChipSamples    int    `json:"chip_samples"`    // architecture-level MC samples (paper: 10 000)
	SearchSamples  int    `json:"search_samples"`  // MC samples inside spare/margin searches
}

// Default returns the paper's sample counts with a fixed seed.
func Default() Config {
	return Config{Seed: 20120603, CircuitSamples: 1000, ChipSamples: 10000, SearchSamples: 6000}
}

// Quick returns a reduced configuration for regression tests: the same
// experiments, two decades fewer samples.
func Quick() Config {
	return Config{Seed: 20120603, CircuitSamples: 300, ChipSamples: 1200, SearchSamples: 1200}
}

// Normalized fills zero fields from Default (the zero-means-default
// contract documented on Config) and rejects negative sample counts,
// which would otherwise drive the Monte-Carlo engines with nonsense
// bounds.
func (c Config) Normalized() (Config, error) {
	if c.CircuitSamples < 0 || c.ChipSamples < 0 || c.SearchSamples < 0 {
		return Config{}, fmt.Errorf(
			"experiments: negative sample count (circuit %d, chip %d, search %d); use 0 for the paper default",
			c.CircuitSamples, c.ChipSamples, c.SearchSamples)
	}
	d := Default()
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	if c.CircuitSamples == 0 {
		c.CircuitSamples = d.CircuitSamples
	}
	if c.ChipSamples == 0 {
		c.ChipSamples = d.ChipSamples
	}
	if c.SearchSamples == 0 {
		c.SearchSamples = d.SearchSamples
	}
	return c, nil
}

// Result is a runnable experiment outcome.
type Result interface {
	// ID returns the experiment identifier (fig1 … table4).
	ID() string
	// Render returns the human-readable reproduction of the artifact.
	Render() string
}

// Runner builds one experiment. The context carries cancellation from
// the caller (CLI signal handling, HTTP job cancellation) into the
// Monte-Carlo loops; runners that sample heavily poll it via the
// montecarlo/simd Ctx entry points and return its error when cancelled.
type Runner func(ctx context.Context, cfg Config) (Result, error)

// Kind classifies what an experiment's Monte Carlo samples: individual
// circuits (gates, FO4 chains) or whole SIMD architectures (datapaths,
// chips).
type Kind string

// Experiment kinds.
const (
	Circuit      Kind = "circuit"
	Architecture Kind = "architecture"
)

// Info is an experiment's registry metadata, served by the HTTP API's
// experiment listing and used by the sweep engine to pick sample-count
// defaults.
type Info struct {
	ID          string `json:"id"`
	Kind        Kind   `json:"kind"`
	Description string `json:"description"`

	// DefaultSamples is the paper-default count of the experiment's
	// primary Monte-Carlo knob (circuit, chip or search samples); 0 for
	// analytic experiments that do not sample.
	DefaultSamples int `json:"default_samples"`
}

// entry pairs a runner with its metadata in the registry.
type entry struct {
	info   Info
	runner Runner
}

// registry maps experiment IDs to runners and metadata, populated by
// the per-artifact files' init functions.
var registry = map[string]entry{}

func register(id string, kind Kind, defaultSamples int, description string, r Runner) {
	if _, dup := registry[id]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %q", id))
	}
	registry[id] = entry{
		info:   Info{ID: id, Kind: kind, Description: description, DefaultSamples: defaultSamples},
		runner: r,
	}
}

// IDs returns all experiment identifiers in sorted order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// List returns every experiment's metadata, sorted by id.
func List() []Info {
	out := make([]Info, 0, len(registry))
	for _, id := range IDs() {
		out = append(out, registry[id].info)
	}
	return out
}

// Lookup returns the metadata of one experiment.
func Lookup(id string) (Info, bool) {
	e, ok := registry[id]
	return e.info, ok
}

// Run executes the experiment with the given id.
func Run(id string, cfg Config) (Result, error) {
	return RunCtx(context.Background(), id, cfg)
}

// RunCtx executes the experiment with the given id under ctx. A context
// cancelled before or during the run aborts the experiment's
// Monte-Carlo sampling and returns the context's error; an uncancelled
// ctx yields results bit-identical to Run.
//
// When ctx carries telemetry — a trace (see telemetry.TraceStore) or a
// progress reporter — the run records an "experiment/<id>" span and the
// instrumented runners report per-phase spans and sample progress. An
// uninstrumented ctx adds nothing.
func RunCtx(ctx context.Context, id string, cfg Config) (Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have %v)", id, IDs())
	}
	cfg, err := cfg.Normalized()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Fault-injection hook; inert unless a test armed an injector.
	if err := faults.Fire(ctx, faults.SiteExperimentRun); err != nil {
		return nil, err
	}
	ctx, sp := telemetry.StartSpan(ctx, "experiment/"+id)
	defer sp.End()
	return e.runner(ctx, cfg)
}

// phase starts a named phase of an experiment run: it labels the run's
// progress reporter (surfaced by job snapshots and SSE events) and
// opens a telemetry span nested under the run's trace. Call the
// returned done func when the phase completes. Both effects are no-ops
// on an uninstrumented context.
func phase(ctx context.Context, name string) (context.Context, func()) {
	telemetry.ProgressFrom(ctx).SetPhase(name)
	ctx, sp := telemetry.StartSpan(ctx, name)
	return ctx, sp.End
}
