package experiments

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/ntvsim/ntvsim/internal/tech"
)

// runQuick executes an experiment with the reduced regression config.
func runQuick(t *testing.T, id string) Result {
	t.Helper()
	res, err := Run(id, Quick())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID() != id {
		t.Fatalf("%s: result reports id %q", id, res.ID())
	}
	if res.Render() == "" {
		t.Fatalf("%s: empty render", id)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablation", "app", "corners", "fig1", "fig11", "fig12", "fig2",
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "itd",
		"ks", "sramyield", "synctium", "table1", "table2", "table3", "table4",
		"tailyield", "yield",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d ids %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("id %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestUnknownID(t *testing.T) {
	if _, err := Run("fig99", Quick()); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestConfigNormalize(t *testing.T) {
	c, err := Config{}.Normalized()
	if err != nil {
		t.Fatalf("Normalized: %v", err)
	}
	d := Default()
	if c != d {
		t.Errorf("normalize of zero config = %+v, want defaults", c)
	}
	c, err = Config{Seed: 5}.Normalized()
	if err != nil {
		t.Fatalf("Normalized: %v", err)
	}
	if c.Seed != 5 || c.ChipSamples != d.ChipSamples {
		t.Error("partial config not filled")
	}
}

func TestConfigRejectsNegativeSamples(t *testing.T) {
	for _, cfg := range []Config{
		{CircuitSamples: -1},
		{ChipSamples: -100},
		{SearchSamples: -7},
	} {
		if _, err := cfg.Normalized(); err == nil {
			t.Errorf("Normalized accepted %+v", cfg)
		}
		if _, err := Run("fig4", cfg); err == nil {
			t.Errorf("Run accepted %+v", cfg)
		}
	}
}

func TestRunCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunCtx(ctx, "fig4", Quick()); !errors.Is(err, context.Canceled) {
		t.Errorf("RunCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestRunCtxBitIdentical asserts the context-threading refactor kept the
// uncancelled path bit-identical: RunCtx(Background) must render exactly
// what Run renders for a sampling-heavy artifact.
func TestRunCtxBitIdentical(t *testing.T) {
	cfg := Config{Seed: 99, CircuitSamples: 100, ChipSamples: 200, SearchSamples: 100}
	a, err := Run("fig4", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCtx(context.Background(), "fig4", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Error("RunCtx render differs from Run render for identical config")
	}
}

// TestFig1Shape asserts Figure 1's claims: 3σ/μ grows as Vdd falls, the
// chain averages variation below the gate level, and the measured values
// land near the paper's (which the calibration enforces).
func TestFig1Shape(t *testing.T) {
	res := runQuick(t, "fig1").(*Fig1Result)
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i, row := range res.Rows {
		gate := row.Gate.ThreeSigmaOverMu()
		chain := row.Chain.ThreeSigmaOverMu()
		if chain >= gate {
			t.Errorf("@%gV chain 3σ/μ %v not below gate %v", row.Vdd, chain, gate)
		}
		// Within 25 % of the paper value at quick sample counts.
		if rel(gate, row.PaperGate) > 0.25 {
			t.Errorf("@%gV gate 3σ/μ %v vs paper %v", row.Vdd, gate, row.PaperGate)
		}
		if rel(chain, row.PaperChain) > 0.25 {
			t.Errorf("@%gV chain 3σ/μ %v vs paper %v", row.Vdd, chain, row.PaperChain)
		}
		if i > 0 && row.Vdd >= res.Rows[i-1].Vdd {
			t.Error("rows must be descending in Vdd")
		}
	}
	// 0.5 V gate variation at least 2× the 1.0 V value (paper: 2.28×).
	if r := res.Rows[5].Gate.ThreeSigmaOverMu() / res.Rows[0].Gate.ThreeSigmaOverMu(); r < 1.8 {
		t.Errorf("gate variation amplification ×%v, paper ×2.28", r)
	}
}

func rel(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}

// TestFig2Shape: variation rises as Vdd falls for every node, and
// smaller nodes are worse at 0.55 V (2.5× from 90 to 22 nm).
func TestFig2Shape(t *testing.T) {
	res := runQuick(t, "fig2").(*Fig2Result)
	if len(res.Series) != 4 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for _, s := range res.Series {
		if s.ThreeSig[0] <= s.ThreeSig[len(s.ThreeSig)-1] {
			t.Errorf("%s: 3σ/μ at 0.5V (%v) not above nominal (%v)",
				s.Node.Name, s.ThreeSig[0], s.ThreeSig[len(s.ThreeSig)-1])
		}
	}
	at055 := func(i int) float64 { return res.Series[i].ThreeSig[1] } // grid: 0.50, 0.55, …
	if r := at055(3) / at055(0); r < 2.0 || r > 3.5 {
		t.Errorf("22nm/90nm at 0.55V = ×%v, paper ≈2.5", r)
	}
}

// TestFig3Shape: the ordering of the six distribution means and the
// right-shift of wide/low-voltage configurations.
func TestFig3Shape(t *testing.T) {
	res := runQuick(t, "fig3").(*Fig3Result)
	if len(res.Curves) != 6 {
		t.Fatalf("curves = %d", len(res.Curves))
	}
	means := make([]float64, len(res.Curves))
	for i, c := range res.Curves {
		means[i] = c.Summary.Mean
	}
	// path@1V < 1-wide@1V < 128-wide@1V < 128@0.6 < 128@0.55 < 128@0.5.
	for i := 1; i < len(means); i++ {
		if means[i] <= means[i-1] {
			t.Errorf("curve %q mean %v not above %q mean %v",
				res.Curves[i].Label, means[i], res.Curves[i-1].Label, means[i-1])
		}
	}
	// The path mean is ≈50 FO4 by construction.
	if rel(means[0], 50) > 0.05 {
		t.Errorf("path mean %v FO4, want ≈50", means[0])
	}
}

// TestFig4Shape: perf drop grows as Vdd falls, monotone across nodes at
// 0.5 V; 90 nm @0.5 V ≈ 5 %, 22 nm ≈ 18 %.
func TestFig4Shape(t *testing.T) {
	res := runQuick(t, "fig4").(*Fig4Result)
	for _, s := range res.Series {
		if d := s.Drop(0.50); d < s.Drop(0.60) {
			t.Errorf("%s: drop at 0.5V (%v) below 0.6V (%v)", s.Node.Name, d, s.Drop(0.60))
		}
	}
	d90 := res.Series[0].Drop(0.50)
	d22 := res.Series[3].Drop(0.50)
	if d90 < 2 || d90 > 12 {
		t.Errorf("90nm drop @0.5V = %v%%, paper ≈5%%", d90)
	}
	if d22 < 12 || d22 > 32 {
		t.Errorf("22nm drop @0.5V = %v%%, paper ≈18%%", d22)
	}
	if d22 <= d90 {
		t.Error("22nm must degrade more than 90nm")
	}
}

// TestFig5Shape: spares shift the distribution left and tighten it; a
// finite spare count matches the baseline.
func TestFig5Shape(t *testing.T) {
	res := runQuick(t, "fig5").(*Fig5Result)
	for i := 1; i < len(res.Alphas); i++ {
		if res.Summaries[i].P99 >= res.Summaries[i-1].P99 {
			t.Errorf("p99 not falling with spares: α=%d", res.Alphas[i])
		}
	}
	if !res.MatchAlpha.Found {
		t.Errorf("no matching spare count found: %v", res.MatchAlpha)
	} else if res.MatchAlpha.Spares < 2 || res.MatchAlpha.Spares > 40 {
		t.Errorf("matching spares = %d, paper 6 (same order expected)", res.MatchAlpha.Spares)
	}
	// Tightening: spread with 28 spares below spread with 0.
	if res.Summaries[6].ThreeSigmaOverMu() >= res.Summaries[0].ThreeSigmaOverMu() {
		t.Error("duplication should tighten the distribution")
	}
}

// TestTable1Shape: spare counts grow super-linearly as Vdd falls and
// with technology scaling; 90 nm row is finite everywhere.
func TestTable1Shape(t *testing.T) {
	res := runQuick(t, "table1").(*Table1Result)
	if len(res.Cells) != 20 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	c5 := res.Cell("90nm GP", 0.50)
	c6 := res.Cell("90nm GP", 0.60)
	c7 := res.Cell("90nm GP", 0.70)
	if c5 == nil || c6 == nil || c7 == nil {
		t.Fatal("missing 90nm cells")
	}
	if !c5.Search.Found || !c6.Search.Found || !c7.Search.Found {
		t.Fatal("90nm spare search should succeed at all voltages")
	}
	if !(c5.Search.Spares > c6.Search.Spares && c6.Search.Spares >= c7.Search.Spares) {
		t.Errorf("90nm spares not growing as Vdd falls: %d, %d, %d",
			c5.Search.Spares, c6.Search.Spares, c7.Search.Spares)
	}
	// Growth is super-linear: 0.5 V needs > 3× the 0.6 V count (paper 14×).
	if c5.Search.Spares < 3*c6.Search.Spares {
		t.Errorf("super-linear growth missing: %d vs %d", c5.Search.Spares, c6.Search.Spares)
	}
	// Advanced nodes exhaust the budget at 0.5 V (paper: >128).
	if res.Cell("22nm PTM HP", 0.50).Search.Found {
		t.Error("22nm @0.5V should exceed the 128-spare limit")
	}
	// Overheads are consistent with the power model.
	if c6.AreaPct <= 0 || c6.PowerPct <= 0 {
		t.Error("finite search must report overheads")
	}
}

// TestTable2Shape: margins are positive, tens of mV, grow as Vdd falls
// and with technology scaling; 90 nm @0.5 V near the paper's 5.8 mV.
func TestTable2Shape(t *testing.T) {
	res := runQuick(t, "table2").(*Table2Result)
	for _, node := range []string{"90nm GP", "45nm GP", "32nm PTM HP", "22nm PTM HP"} {
		lo := res.Cell(node, 0.50).Result.Margin
		hi := res.Cell(node, 0.70).Result.Margin
		if lo <= hi {
			t.Errorf("%s: margin at 0.5V (%v) not above 0.7V (%v)", node, lo, hi)
		}
		if lo <= 0 || lo > 0.06 {
			t.Errorf("%s margin %v V outside (0, 60 mV]", node, lo)
		}
	}
	m90 := res.Cell("90nm GP", 0.50).Result.Margin
	if m90 < 2e-3 || m90 > 12e-3 {
		t.Errorf("90nm margin @0.5V = %.1f mV, paper 5.8 mV", m90*1e3)
	}
	m22 := res.Cell("22nm PTM HP", 0.50).Result.Margin
	if m22 <= m90 {
		t.Error("22nm must need a larger margin than 90nm")
	}
}

// TestFig7Shape: the paper's crossover — duplication competitive only at
// the high-voltage/low-variation corner, margining winning at low Vdd on
// advanced nodes.
func TestFig7Shape(t *testing.T) {
	res := runQuick(t, "fig7").(*Fig7Result)
	byKey := func(node string, vdd float64) *Fig7Point {
		for i := range res.Points {
			p := &res.Points[i]
			if p.Node == node && abs(p.Vdd-vdd) < 1e-6 {
				return p
			}
		}
		return nil
	}
	if p := byKey("22nm PTM HP", 0.50); p.Winner != "margining" {
		t.Errorf("22nm @0.5V winner = %s, want margining", p.Winner)
	}
	if p := byKey("90nm GP", 0.70); p.DupPowerPct > 1 {
		t.Errorf("90nm @0.7V duplication power %v%% should be tiny", p.DupPowerPct)
	}
	// Margining power exceeds duplication power at the easy corner.
	p := byKey("90nm GP", 0.70)
	if p.Winner != "duplication" {
		t.Errorf("90nm @0.7V winner = %s, paper favours duplication at low variation", p.Winner)
	}
}

// TestFig8Table3Shape: combined duplication+margining — more spares
// lower the required voltage; the best combination beats both extremes.
func TestTable3Shape(t *testing.T) {
	res := runQuick(t, "table3").(*Table3Result)
	if len(res.Choices) < 4 {
		t.Fatalf("choices = %d", len(res.Choices))
	}
	for i := 1; i < len(res.Choices); i++ {
		if res.Choices[i].Margin > res.Choices[i-1].Margin {
			t.Error("margin should fall as spares grow")
		}
	}
	pure0 := res.Choices[0]                  // margin only
	pureN := res.Choices[len(res.Choices)-1] // duplication heavy
	if res.Best.PowerPct > pure0.PowerPct || res.Best.PowerPct > pureN.PowerPct {
		t.Error("Best should not exceed the pure strategies")
	}
	if res.Best.Spares == 0 || res.Best.Spares == pureN.Spares {
		t.Logf("note: best is a pure strategy (%+v) — paper finds a small mix", res.Best)
	}
}

func TestFig8Shape(t *testing.T) {
	res := runQuick(t, "fig8").(*Fig8Result)
	// Higher voltage rows are faster; more spares are faster.
	for i := 1; i < len(res.Voltages); i++ {
		if res.P99[i][0] >= res.P99[i-1][0] {
			t.Error("p99 should fall with supply voltage")
		}
	}
	for j := 1; j < len(res.Spares); j++ {
		if res.P99[0][j] >= res.P99[0][j-1] {
			t.Error("p99 should fall with spares")
		}
	}
	// The highest-voltage, most-spares corner meets the target.
	last := res.P99[len(res.Voltages)-1][len(res.Spares)-1]
	if last > res.Target {
		t.Errorf("best corner %v above target %v", last, res.Target)
	}
}

// TestTable4Shape: frequency margining drops grow toward 20 % at 22 nm
// and stay small at 90 nm / high Vdd.
func TestTable4Shape(t *testing.T) {
	res := runQuick(t, "table4").(*Table4Result)
	d90hi := res.Cell("90nm GP", 0.70).Result.DropPct
	d22lo := res.Cell("22nm PTM HP", 0.50).Result.DropPct
	if d90hi > 5 {
		t.Errorf("90nm @0.7V drop %v%% should be small", d90hi)
	}
	if d22lo < 12 {
		t.Errorf("22nm @0.5V drop %v%%, paper ≈20%%", d22lo)
	}
	for _, c := range res.Cells {
		if c.Result.TVaClk < c.Result.TClk {
			t.Errorf("%s @%gV: T_va below T_clk", c.Node, c.Vdd)
		}
	}
}

// TestFig9Shape: energy minimum sub-threshold, ≈2× energy at NTV,
// large speedup from the minimum point to NTV.
func TestFig9Shape(t *testing.T) {
	res := runQuick(t, "fig9").(*Fig9Result)
	if res.EminVdd >= res.Node.Dev.Vth0 {
		t.Errorf("energy minimum at %v V not sub-threshold (Vth %v)", res.EminVdd, res.Node.Dev.Vth0)
	}
	if r := res.EnergyNTV / res.Emin; r < 1 || r > 2.5 {
		t.Errorf("E(NTV)/Emin = %v, paper ≈2", r)
	}
	if res.SpeedupSub < 5 {
		t.Errorf("sub→near speedup ×%v, paper 6–11×", res.SpeedupSub)
	}
	if r := res.EnergyNom / res.EnergyNTV; r < 3 {
		t.Errorf("nominal→NTV energy reduction ×%v, paper ≈10×", r)
	}
}

// TestFig11Shape: diminishing returns of chain length, for every node.
func TestFig11Shape(t *testing.T) {
	res := runQuick(t, "fig11").(*Fig11Result)
	for _, s := range res.Series {
		n := len(s.ThreeSig)
		if s.ThreeSig[0] <= s.ThreeSig[n-1] {
			t.Errorf("%s: single gate (%v) not above longest chain (%v)",
				s.Node.Name, s.ThreeSig[0], s.ThreeSig[n-1])
		}
		// Δ(3σ/μ) from N=1→10 exceeds the Δ from N=20→200: diminishing
		// returns (Appendix C).
		early := s.ThreeSig[0] - s.ThreeSig[3]
		late := s.ThreeSig[4] - s.ThreeSig[7]
		if early <= late {
			t.Errorf("%s: no diminishing returns (early %v, late %v)", s.Node.Name, early, late)
		}
	}
}

// TestFig12Shape: global sparing dominates local everywhere; the XRAM
// bypass demo routes correctly.
func TestFig12Shape(t *testing.T) {
	res := runQuick(t, "fig12").(*Fig12Result)
	for _, c := range res.Coverage {
		if c.Global < c.Local-1e-12 {
			t.Errorf("p=%v: global %v below local %v", c.FaultProb, c.Global, c.Local)
		}
	}
	for _, b := range res.Bursts {
		if b.BurstLen >= 2 && b.BurstLen <= 32 {
			if b.Global != 1 {
				t.Errorf("global should absorb burst %d", b.BurstLen)
			}
			if b.Local > 0.5 {
				t.Errorf("local coverage %v for burst %d should collapse", b.Local, b.BurstLen)
			}
		}
	}
	if !res.BypassOK {
		t.Errorf("XRAM bypass demo failed:\n%s", res.BypassLog)
	}
}

// TestKSShape: the Kogge-Stone adder variation sits near the 50-FO4
// chain value (§3.1, [7]), well below single-gate variation.
func TestKSShape(t *testing.T) {
	res := runQuick(t, "ks").(*KSResult)
	var row05 *KSRow
	for i := range res.Rows {
		if res.Rows[i].Vdd == 0.5 {
			row05 = &res.Rows[i]
		}
	}
	if row05 == nil {
		t.Fatal("missing 0.5V row")
	}
	if r := row05.KS64 / row05.Chain; r < 0.4 || r > 2.0 {
		t.Errorf("KS/chain variation ratio %v, paper ≈0.9 (8.4%%/9.43%%)", r)
	}
}

// TestSynctiumShape: flush recovery collapses throughput as error rates
// rise; decoupling absorbs errors (the §1 motivation).
func TestSynctiumShape(t *testing.T) {
	res := runQuick(t, "synctium").(*ErrorPenaltyResult)
	last := res.Rows[len(res.Rows)-1] // p = 0.1
	if last.FlushRel < 2 {
		t.Errorf("flush at p=0.1 only ×%v slowdown", last.FlushRel)
	}
	if !(last.FlushRel > last.StallRel && last.StallRel > last.DecoupledRel) {
		t.Errorf("policy ordering violated: %+v", last)
	}
	first := res.Rows[0] // p = 1e-5
	if first.FlushRel > 1.05 {
		t.Errorf("rare errors should be nearly free: flush ×%v", first.FlushRel)
	}
	// Monotone degradation with p for flush.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].FlushRel < res.Rows[i-1].FlushRel-0.01 {
			t.Error("flush penalty should grow with error probability")
		}
	}
}

// TestRendersMentionKeyNumbers sanity-checks that rendered artifacts
// carry their defining content.
func TestRendersMentionKeyNumbers(t *testing.T) {
	res := runQuick(t, "table2")
	if !strings.Contains(res.Render(), "mV") {
		t.Error("table2 render lacks margins")
	}
}

// TestAblationShape: the extension finding — spares gain far less under
// shared-die correlation than under the paper's iid assumption.
func TestAblationShape(t *testing.T) {
	res := runQuick(t, "ablation").(*AblationResult)
	for _, row := range res.Rows {
		if row.CorrGainPct >= row.IIDGainPct {
			t.Errorf("@%gV: correlated gain %v%% not below iid gain %v%%",
				row.Vdd, row.CorrGainPct, row.IIDGainPct)
		}
		if row.SpatialGainPct <= row.CorrGainPct || row.SpatialGainPct >= row.IIDGainPct*1.2 {
			t.Errorf("@%gV: spatial gain %v%% should sit between shared-die %v%% and iid %v%%",
				row.Vdd, row.SpatialGainPct, row.CorrGainPct, row.IIDGainPct)
		}
	}
}

// TestAppShape: the kernel-level FV-vs-NTV pricing — uniform slowdown
// from the clock ratio, several-fold energy savings, verified outputs.
func TestAppShape(t *testing.T) {
	res := runQuick(t, "app").(*AppResult)
	if len(res.Rows) < 4 {
		t.Fatalf("kernels = %d", len(res.Rows))
	}
	if res.ClockNTV <= res.ClockFV {
		t.Error("NTV clock must be slower than FV clock")
	}
	for _, row := range res.Rows {
		slow := row.TimeNTV / row.TimeFV
		want := res.ClockNTV / res.ClockFV
		if rel(slow, want) > 1e-9 {
			t.Errorf("%s: slowdown %v should equal clock ratio %v", row.Kernel, slow, want)
		}
		if saving := row.EnergyFV / row.EnergyNTV; saving < 2 {
			t.Errorf("%s: NTV energy saving ×%v too small", row.Kernel, saving)
		}
	}
}

// TestCornersShape: corner signoff over-margins grow toward threshold
// for the GP nodes and the corner covers the statistical chip at 90 nm.
func TestCornersShape(t *testing.T) {
	res := runQuick(t, "corners").(*CornersResult)
	byKey := func(node string, vdd float64) *CornersCell {
		for i := range res.Cells {
			c := &res.Cells[i]
			if c.Node == node && abs(c.Vdd-vdd) < 1e-6 {
				return c
			}
		}
		return nil
	}
	lo := byKey("90nm GP", 0.50)
	hi := byKey("90nm GP", 1.00)
	if lo == nil || hi == nil {
		t.Fatal("missing 90nm cells")
	}
	if lo.OverMarginPct <= hi.OverMarginPct {
		t.Errorf("90nm over-margin should grow toward threshold: %v vs %v",
			lo.OverMarginPct, hi.OverMarginPct)
	}
	if lo.OverMarginPct <= 0 || hi.OverMarginPct <= 0 {
		t.Errorf("90nm corner flow should over-cover: %v, %v", lo.OverMarginPct, hi.OverMarginPct)
	}
}

// TestITDShape: the temperature extension — ITD regime near threshold,
// normal regime at nominal voltage, inversion point in between.
func TestITDShape(t *testing.T) {
	res := runQuick(t, "itd").(*ITDResult)
	for _, s := range res.Series {
		if s.SensPerK[0] >= 0 {
			t.Errorf("%s: lowest Vdd sensitivity %v should be negative (ITD)", s.Node.Name, s.SensPerK[0])
		}
		last := s.SensPerK[len(s.SensPerK)-1]
		if last <= 0 {
			t.Errorf("%s: nominal-voltage sensitivity %v should be positive", s.Node.Name, last)
		}
		if s.Inversion <= s.Node.Dev.Vth0 || s.Inversion > 1.2 {
			t.Errorf("%s: inversion point %v implausible", s.Node.Name, s.Inversion)
		}
	}
}

// TestYieldShape: the yield extension — spares shorten the shippable
// clock at every yield target, most at the tightest target.
func TestYieldShape(t *testing.T) {
	res := runQuick(t, "yield").(*YieldResult)
	for i := range res.Targets {
		if res.ClockWith[i] > res.ClockBase[i] {
			t.Errorf("target %v: mitigated clock slower", res.Targets[i])
		}
	}
	if res.PaperP99With >= res.PaperP99Base {
		t.Error("spares must shorten the 99%-yield clock")
	}
	for _, p := range res.Points {
		if p.YieldWith < p.Yield-0.02 {
			t.Errorf("mitigated yield below base at %v", p.TClk)
		}
	}
}

// TestSRAMYieldShape: the memory extension's two findings — write yield
// collapses before read yield everywhere, and at iso-overhead the
// lanes-only repair split cannot match spending on spare rows at the
// memory-limited stress point.
func TestSRAMYieldShape(t *testing.T) {
	res := runQuick(t, "sramyield").(*SRAMYieldResult)
	if want := len(tech.Nodes()) * len(sramVdds); len(res.Rows) != want {
		t.Fatalf("crossover rows = %d, want %d", len(res.Rows), want)
	}
	for _, row := range res.Rows {
		for name, y := range map[string]float64{
			"read": row.ReadMC, "write": row.WriteMC,
			"analytic": row.ReadAnalytic, "logic": row.LogicMC,
		} {
			if y < 0 || y > 100 {
				t.Errorf("%s @%gV: %s yield %v%% out of range", row.Node, row.Vdd, name, y)
			}
		}
		// The write-contention tail is strictly fatter than the series
		// read path; 1 pp of slack absorbs MC noise at the Quick budget.
		if row.WriteMC > row.ReadMC+1 {
			t.Errorf("%s @%gV: write yield %v%% above read %v%%",
				row.Node, row.Vdd, row.WriteMC, row.ReadMC)
		}
		// Analytic and MC share one estimand; 4 pp covers the 99% CI of
		// a 1200-chip binomial estimate with margin.
		if diff := math.Abs(row.ReadAnalytic - row.ReadMC); diff > 4 {
			t.Errorf("%s @%gV: analytic read %v%% vs MC %v%% (Δ %.2f pp)",
				row.Node, row.Vdd, row.ReadAnalytic, row.ReadMC, diff)
		}
		if got := row.ReadMC - row.LogicMC; math.Abs(got-row.DeltaPP) > 1e-12 {
			t.Errorf("%s @%gV: DeltaPP %v, want read−logic %v", row.Node, row.Vdd, row.DeltaPP, got)
		}
	}
	if len(res.Splits) != 3 {
		t.Fatalf("spare splits = %d, want 3", len(res.Splits))
	}
	base := res.Splits[0].OverheadPct
	var rowsOnly, lanesOnly float64
	for _, s := range res.Splits {
		if math.Abs(s.OverheadPct-base) > 0.05 {
			t.Errorf("%s: overhead %v%% not iso with %v%%", s.Policy, s.OverheadPct, base)
		}
		switch s.Policy {
		case "rows only":
			rowsOnly = s.Combined
		case "lanes only":
			lanesOnly = s.Combined
		}
	}
	if lanesOnly >= rowsOnly {
		t.Errorf("lanes-only combined %v%% should trail rows-only %v%% at the memory-limited stress point",
			lanesOnly, rowsOnly)
	}
}

// TestCSVExports checks header/row consistency for every CSVer result.
// It uses a minimal sample budget: only the CSV structure is under test.
func TestCSVExports(t *testing.T) {
	tiny := Config{Seed: 1, CircuitSamples: 50, ChipSamples: 100, SearchSamples: 100}
	for _, id := range []string{"fig2", "fig4", "fig9", "fig11", "sramyield", "table1", "table2", "table4"} {
		res, err := Run(id, tiny)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		c, ok := res.(CSVer)
		if !ok {
			t.Errorf("%s: expected CSV support", id)
			continue
		}
		rows := c.CSV()
		if len(rows) < 2 {
			t.Errorf("%s: CSV has no data rows", id)
			continue
		}
		width := len(rows[0])
		if width < 2 {
			t.Errorf("%s: CSV header too narrow", id)
		}
		for i, row := range rows {
			if len(row) != width {
				t.Errorf("%s: row %d width %d, want %d", id, i, len(row), width)
			}
		}
	}
}
