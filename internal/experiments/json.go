package experiments

import "strconv"

// JSONer is implemented by results that can emit a structured,
// wire-stable payload alongside Render/CSV, for serving over the HTTP
// API (cmd/ntvsimd). The returned value must marshal cleanly with
// encoding/json.
type JSONer interface {
	JSON() any
}

// Table is the generic JSON payload for tabular results: a header row
// and typed cells (float64 where the cell parses as a number, string
// otherwise, nil when empty).
type Table struct {
	Columns []string `json:"columns"`
	Rows    [][]any  `json:"rows"`
}

// tableJSON lifts a CSV representation (header first) into a Table with
// numerically-typed cells.
func tableJSON(csv [][]string) Table {
	t := Table{}
	if len(csv) == 0 {
		return t
	}
	t.Columns = csv[0]
	for _, row := range csv[1:] {
		cells := make([]any, len(row))
		for i, cell := range row {
			switch v, err := strconv.ParseFloat(cell, 64); {
			case cell == "":
				cells[i] = nil
			case err == nil:
				cells[i] = v
			default:
				cells[i] = cell
			}
		}
		t.Rows = append(t.Rows, cells)
	}
	return t
}

// JSON implements JSONer with a typed per-series payload; Figure 4 is
// the service's flagship artifact, so its wire format is explicit
// rather than the generic Table.
func (r *Fig4Result) JSON() any {
	type series struct {
		Node        string    `json:"node"`
		BaselineFO4 float64   `json:"baseline_p99_fo4"`
		Vdd         []float64 `json:"vdd_v"`
		DropPct     []float64 `json:"drop_pct"`
	}
	out := struct {
		Samples int      `json:"samples"`
		Series  []series `json:"series"`
	}{Samples: r.Samples}
	for _, s := range r.Series {
		out.Series = append(out.Series, series{
			Node: s.Node.Name, BaselineFO4: s.Baseline, Vdd: s.Vdd, DropPct: s.DropPct,
		})
	}
	return out
}

// JSON implements JSONer.
func (r *Fig2Result) JSON() any { return tableJSON(r.CSV()) }

// JSON implements JSONer.
func (r *Fig9Result) JSON() any { return tableJSON(r.CSV()) }

// JSON implements JSONer.
func (r *Fig11Result) JSON() any { return tableJSON(r.CSV()) }

// JSON implements JSONer.
func (r *Table1Result) JSON() any { return tableJSON(r.CSV()) }

// JSON implements JSONer.
func (r *Table2Result) JSON() any { return tableJSON(r.CSV()) }

// JSON implements JSONer.
func (r *Table4Result) JSON() any { return tableJSON(r.CSV()) }
