package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/ntvsim/ntvsim/internal/margin"
	"github.com/ntvsim/ntvsim/internal/power"
	"github.com/ntvsim/ntvsim/internal/report"
	"github.com/ntvsim/ntvsim/internal/rng"
	"github.com/ntvsim/ntvsim/internal/simd"
	"github.com/ntvsim/ntvsim/internal/soda"
	"github.com/ntvsim/ntvsim/internal/tech"
)

func init() {
	register("app", Architecture, 6000,
		"full-voltage vs near-threshold kernel comparison across the whole stack (extension)", runApp)
}

// AppRow is one kernel's full-voltage vs near-threshold comparison.
type AppRow struct {
	Kernel    string
	Cycles    int // SIMD cycles (identical at both voltages)
	VectorOps int
	TimeFV    float64 // seconds at nominal voltage
	TimeNTV   float64 // seconds at margined NTV
	EnergyFV  float64 // normalized units
	EnergyNTV float64
}

// AppResult is an extension tying the whole stack together: it runs
// real signal kernels on the Diet SODA PE simulator and prices them at
// full voltage versus margined near-threshold voltage. The clock at
// each voltage is the variation-aware 99 % chip delay (margined per
// Table 2, so both operating points meet the same variation target);
// energy combines the Figure-9 per-op model with the kernels' measured
// vector-operation counts. The outcome is the paper's motivation made
// concrete: several-fold energy savings for a several-fold slowdown —
// recoverable with SIMD width — on the camera workloads themselves.
type AppResult struct {
	Node     tech.Node
	VddNTV   float64
	MarginMV float64
	ClockFV  float64 // seconds
	ClockNTV float64
	Rows     []AppRow
}

// ID implements Result.
func (r *AppResult) ID() string { return "app" }

// Render implements Result.
func (r *AppResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Kernel energy/throughput, %s: %.1f V vs %.0f mV + %.1f mV margin\n",
		r.Node.Name, r.Node.VddNominal, r.VddNTV*1e3, r.MarginMV)
	fmt.Fprintf(&b, "variation-aware clocks: %.2f ns (FV) / %.2f ns (NTV)\n",
		r.ClockFV*1e9, r.ClockNTV*1e9)
	t := report.NewTable("", "kernel", "cycles", "vec ops", "time FV", "time NTV", "slowdown", "energy saving")
	for _, row := range r.Rows {
		t.AddRowf(row.Kernel,
			fmt.Sprintf("%d", row.Cycles),
			fmt.Sprintf("%d", row.VectorOps),
			fmt.Sprintf("%.2f µs", row.TimeFV*1e6),
			fmt.Sprintf("%.2f µs", row.TimeNTV*1e6),
			fmt.Sprintf("×%.1f", row.TimeNTV/row.TimeFV),
			fmt.Sprintf("×%.1f", row.EnergyFV/row.EnergyNTV))
	}
	b.WriteString(t.String())
	b.WriteString("the slowdown is uniform (clock-rate bound) and recovered by SIMD width;\n" +
		"the energy saving is the near-threshold payoff the paper's techniques protect.\n")
	return b.String()
}

func runApp(ctx context.Context, cfg Config) (Result, error) {
	node := tech.N90
	const vddNTV = 0.55
	dp := simd.New(node)

	// Variation-aware clocks: the FV baseline 99 % chip delay, and the
	// NTV clock after the Table 2 margin restores the same FO4 target.
	base, err := dp.P99ChipDelayFO4Ctx(ctx, cfg.Seed+41, cfg.SearchSamples, node.VddNominal, 0)
	if err != nil {
		return nil, err
	}
	target := margin.TargetDelay(dp, vddNTV, base)
	vr, err := margin.VoltageMarginCtx(ctx, dp, cfg.Seed+41, cfg.SearchSamples, vddNTV, target, 0.1e-3, 0)
	if err != nil {
		return nil, err
	}

	res := &AppResult{
		Node: node, VddNTV: vddNTV, MarginMV: vr.Margin * 1e3,
		ClockFV:  base * dp.FO4(node.VddNominal),
		ClockNTV: target,
	}

	// Energy per vector operation at each voltage (50-gate op depth,
	// Figure 9 model), at the margined NTV supply.
	eFV := power.EnergyPerOp(node.Dev, node.VddNominal, tech.ChainLength, 1.0).Total()
	eNTV := power.EnergyPerOp(node.Dev, vddNTV+vr.Margin, tech.ChainLength, 1.0).Total()

	r := rng.New(cfg.Seed)
	vec := func(n int) []uint16 {
		out := make([]uint16, n)
		for i := range out {
			out[i] = uint16(r.IntN(256))
		}
		return out
	}
	sig := make([]int16, soda.Lanes)
	for i := range sig {
		sig[i] = int16(r.IntN(7) - 3)
	}
	px := make([]int16, soda.Lanes)
	for i := range px {
		px[i] = int16(r.IntN(201) - 100)
	}
	kernels := []soda.Kernel{
		soda.FIRKernel(vec(soda.Lanes), []int16{1, 2, 4, 8, 8, 4, 2, 1}),
		soda.RGBToYCbCrKernel(vec(soda.Lanes), vec(soda.Lanes), vec(soda.Lanes)),
		soda.DCT8Kernel(px),
		soda.FFTKernel(sig, make([]int16, soda.Lanes)),
		soda.DotProductKernel(vec(16*soda.Lanes), vec(16*soda.Lanes)),
	}
	for _, k := range kernels {
		pe := soda.NewPE()
		if err := soda.RunKernel(pe, k); err != nil {
			return nil, err
		}
		s := pe.Stats
		res.Rows = append(res.Rows, AppRow{
			Kernel:    k.Name,
			Cycles:    s.Cycles,
			VectorOps: s.VectorOps,
			TimeFV:    float64(s.Cycles) * res.ClockFV,
			TimeNTV:   float64(s.Cycles) * res.ClockNTV,
			EnergyFV:  float64(s.VectorOps) * eFV,
			EnergyNTV: float64(s.VectorOps) * eNTV,
		})
	}
	return res, nil
}
