package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/ntvsim/ntvsim/internal/report"
	"github.com/ntvsim/ntvsim/internal/simd"
	"github.com/ntvsim/ntvsim/internal/tech"
	"github.com/ntvsim/ntvsim/internal/yield"
)

func init() {
	register("yield", Architecture, 10000,
		"parametric yield curves at 0.55V, 90nm: base vs 8 spare lanes (extension)", runYield)
}

// YieldResult is an extension beyond the paper: it generalizes the 99 %
// design point into full parametric-yield curves — the fraction of
// chips meeting a clock target at 0.55 V in 90 nm, without mitigation
// and with 8 spare lanes — and reports the shippable clock at several
// yield requirements.
type YieldResult struct {
	Node    tech.Node
	Vdd     float64
	Spares  int
	Samples int

	Points []yield.Point // yield vs clock grid, base and mitigated

	// Clock (ns) needed at each yield target.
	Targets      []float64
	ClockBase    []float64
	ClockWith    []float64
	SpeedupPct   []float64 // clock improvement from mitigation, %
	PaperP99Base float64   // 99%-yield clock, base (the paper's metric)
	PaperP99With float64
}

// ID implements Result.
func (r *YieldResult) ID() string { return "yield" }

// Render implements Result.
func (r *YieldResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Parametric yield at %.2f V, %s: base vs %d spares (%d chips)\n",
		r.Vdd, r.Node.Name, r.Spares, r.Samples)
	t := report.NewTable("", "yield target", "clock (base)", "clock (+spares)", "speedup")
	for i, y := range r.Targets {
		t.AddRowf(fmt.Sprintf("%.1f%%", y*100),
			fmt.Sprintf("%.3f ns", r.ClockBase[i]*1e9),
			fmt.Sprintf("%.3f ns", r.ClockWith[i]*1e9),
			fmt.Sprintf("%.2f%%", r.SpeedupPct[i]))
	}
	b.WriteString(t.String())
	b.WriteString("yield vs clock (sampled grid):\n")
	t2 := report.NewTable("", "T_clk", "yield base", "yield +spares")
	for _, p := range r.Points {
		t2.AddRowf(fmt.Sprintf("%.3f ns", p.TClk*1e9),
			fmt.Sprintf("%.4f", p.Yield), fmt.Sprintf("%.4f", p.YieldWith))
	}
	b.WriteString(t2.String())
	return b.String()
}

// CSV implements CSVer.
func (r *YieldResult) CSV() [][]string {
	rows := [][]string{{"tclk_s", "yield_base", "yield_spares"}}
	for _, p := range r.Points {
		rows = append(rows, []string{f(p.TClk), f(p.Yield), f(p.YieldWith)})
	}
	return rows
}

func runYield(ctx context.Context, cfg Config) (Result, error) {
	node := tech.N90
	const vdd = 0.55
	const spares = 8
	dp := simd.New(node)
	res := &YieldResult{Node: node, Vdd: vdd, Spares: spares, Samples: cfg.ChipSamples}

	_, done := phase(ctx, "curve/base")
	base := yield.NewCurve(dp, cfg.Seed+31, cfg.ChipSamples, vdd, 0)
	done()
	_, done = phase(ctx, "curve/spares")
	with := yield.NewCurve(dp, cfg.Seed+31, cfg.ChipSamples, vdd, spares)
	done()
	res.Points = yield.Compare(base, with, 12)
	res.Targets = []float64{0.50, 0.90, 0.99, 0.999}
	for _, y := range res.Targets {
		cb, cw := base.ClockAt(y), with.ClockAt(y)
		res.ClockBase = append(res.ClockBase, cb)
		res.ClockWith = append(res.ClockWith, cw)
		res.SpeedupPct = append(res.SpeedupPct, 100*(cb/cw-1))
	}
	res.PaperP99Base = base.ClockAt(0.99)
	res.PaperP99With = with.ClockAt(0.99)
	return res, nil
}
