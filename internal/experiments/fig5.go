package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/ntvsim/ntvsim/internal/report"
	"github.com/ntvsim/ntvsim/internal/simd"
	"github.com/ntvsim/ntvsim/internal/sparing"
	"github.com/ntvsim/ntvsim/internal/stats"
	"github.com/ntvsim/ntvsim/internal/tech"
)

func init() {
	register("fig5", Architecture, 10000,
		"delay distributions of spare-augmented SIMD systems at 0.55V, 90nm", runFig5)
}

// Fig5Result reproduces Figure 5: delay distributions of SIMD duplicated
// systems (128-wide + α spares) at 0.55 V in 90 nm, against the 1 V
// 128-wide baseline whose 99 % point the duplication must match.
type Fig5Result struct {
	Node        tech.Node
	Vdd         float64
	Samples     int
	BaselineP99 float64 // 99% FO4 chip delay of 128-wide @ nominal V
	Alphas      []int
	Summaries   []stats.Summary // FO4 units at Vdd, per alpha
	Hists       [][]float64
	MatchAlpha  sparing.SearchResult // minimal alpha matching the baseline
}

// ID implements Result.
func (r *Fig5Result) ID() string { return "fig5" }

// Render implements Result.
func (r *Fig5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: 128-wide + α spares @%.2f V, %s, %d samples\n", r.Vdd, r.Node.Name, r.Samples)
	fmt.Fprintf(&b, "baseline 128-wide@%.1fV p99 = %.2f FO4\n", r.Node.VddNominal, r.BaselineP99)
	t := report.NewTable("", "spares α", "mean", "p99", "3σ/μ", "meets baseline", "shape")
	for i, a := range r.Alphas {
		meets := "no"
		if r.Summaries[i].P99 <= r.BaselineP99 {
			meets = "yes"
		}
		t.AddRowf(
			fmt.Sprintf("%d", a),
			fmt.Sprintf("%.2f", r.Summaries[i].Mean),
			fmt.Sprintf("%.2f", r.Summaries[i].P99),
			fmt.Sprintf("%.2f%%", r.Summaries[i].ThreeSigmaOverMu()),
			meets,
			report.Sparkline(r.Hists[i]),
		)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "minimal matching duplication: %s\n", r.MatchAlpha)
	return b.String()
}

func runFig5(ctx context.Context, cfg Config) (Result, error) {
	node := tech.N90
	const vdd = 0.55
	dp := simd.New(node)
	res := &Fig5Result{
		Node: node, Vdd: vdd, Samples: cfg.ChipSamples,
		Alphas: []int{0, 2, 4, 6, 8, 16, 28},
	}
	base, err := dp.P99ChipDelayFO4Ctx(ctx, cfg.Seed, cfg.ChipSamples, node.VddNominal, 0)
	if err != nil {
		return nil, err
	}
	res.BaselineP99 = base
	for _, a := range res.Alphas {
		ds, err := dp.ChipDelaysFO4Ctx(ctx, cfg.Seed+11, cfg.ChipSamples, vdd, a)
		if err != nil {
			return nil, err
		}
		res.Summaries = append(res.Summaries, stats.Summarize(ds))
		res.Hists = append(res.Hists, histShape(ds, 24))
	}
	match, err := sparing.MinSparesCtx(ctx, dp, cfg.Seed+11, cfg.SearchSamples, vdd, res.BaselineP99, 128)
	if err != nil {
		return nil, err
	}
	res.MatchAlpha = match
	return res, nil
}
