package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/ntvsim/ntvsim/internal/power"
	"github.com/ntvsim/ntvsim/internal/report"
	"github.com/ntvsim/ntvsim/internal/simd"
	"github.com/ntvsim/ntvsim/internal/sparing"
	"github.com/ntvsim/ntvsim/internal/tech"
)

func init() {
	register("table1", Architecture, 6000,
		"spare FUs required to match nominal 99% delay, with area and power", runTable1)
}

// table1Voltages is the supply-voltage column of Tables 1, 2 and 4.
var table1Voltages = []float64{0.50, 0.55, 0.60, 0.65, 0.70}

// Table1Cell is one node × voltage entry of Table 1.
type Table1Cell struct {
	Node     string
	Vdd      float64
	Search   sparing.SearchResult
	AreaPct  float64 // area overhead, % of PE (∞ if not found)
	PowerPct float64 // power overhead, % of PE
}

// Table1Result reproduces Table 1: the number of spare SIMD FUs required
// to match the nominal-voltage 99 % delay point, with area and power
// overhead, for four nodes across 0.50–0.70 V.
// Paper anchors (90 nm): 28 / 6 / 2 / 1 / 1 spares at 0.50…0.70 V.
type Table1Result struct {
	Samples int
	Limit   int
	Cells   []Table1Cell
}

// ID implements Result.
func (r *Table1Result) ID() string { return "table1" }

// Cell returns the entry for (node name, vdd), or nil.
func (r *Table1Result) Cell(node string, vdd float64) *Table1Cell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Node == node && abs(c.Vdd-vdd) < 1e-6 {
			return c
		}
	}
	return nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Render implements Result.
func (r *Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: spares to match nominal 99%% delay (limit %d), %d search samples\n", r.Limit, r.Samples)
	t := report.NewTable("", "node", "Vdd", "spares", "area ovhd", "power ovhd")
	for _, c := range r.Cells {
		spares, area, pow := "—", "—", "—"
		if c.Search.Found {
			spares = fmt.Sprintf("%d", c.Search.Spares)
			area = fmt.Sprintf("%.1f%%", c.AreaPct)
			pow = fmt.Sprintf("%.1f%%", c.PowerPct)
		} else {
			spares = fmt.Sprintf(">%d", r.Limit)
			area = fmt.Sprintf(">%.1f%%", power.SpareAreaOverheadPct(r.Limit))
			pow = fmt.Sprintf(">%.1f%%", power.SparePowerOverheadPct(r.Limit))
		}
		t.AddRowf(c.Node, fmt.Sprintf("%.2f V", c.Vdd), spares, area, pow)
	}
	b.WriteString(t.String())
	return b.String()
}

func runTable1(ctx context.Context, cfg Config) (Result, error) {
	const limit = 128
	res := &Table1Result{Samples: cfg.SearchSamples, Limit: limit}
	for ni, node := range tech.Nodes() {
		nodeCtx, done := phase(ctx, "node/"+node.Name)
		dp := simd.New(node)
		seed := cfg.Seed + uint64(ni)*1313
		base, err := dp.P99ChipDelayFO4Ctx(nodeCtx, seed, cfg.SearchSamples, node.VddNominal, 0)
		if err != nil {
			done()
			return nil, err
		}
		for _, vdd := range table1Voltages {
			sr, err := sparing.MinSparesCtx(nodeCtx, dp, seed+uint64(vdd*1000), cfg.SearchSamples, vdd, base, limit)
			if err != nil {
				done()
				return nil, err
			}
			cell := Table1Cell{Node: node.Name, Vdd: vdd, Search: sr}
			if sr.Found {
				cell.AreaPct = power.SpareAreaOverheadPct(sr.Spares)
				cell.PowerPct = power.SparePowerOverheadPct(sr.Spares)
			}
			res.Cells = append(res.Cells, cell)
		}
		done()
	}
	return res, nil
}
