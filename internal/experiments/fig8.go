package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/ntvsim/ntvsim/internal/margin"
	"github.com/ntvsim/ntvsim/internal/report"
	"github.com/ntvsim/ntvsim/internal/simd"
	"github.com/ntvsim/ntvsim/internal/tech"
)

func init() {
	register("fig8", Architecture, 10000,
		"99% chip delay vs spare count at 600-620mV, 45nm", runFig8)
	register("table3", Architecture, 10000,
		"(spares, margin) combinations reaching the 600mV target delay", runTable3)
}

// Fig8Result reproduces Figure 8: the 99 % chip delay of a 128-wide
// datapath at 600–620 mV in 45 nm as a function of spare count, showing
// which (spares, margin) combinations reach the 600 mV target delay.
type Fig8Result struct {
	Node    tech.Node
	Samples int
	Target  float64 // seconds

	Voltages []float64
	Spares   []int
	// P99[i][j]: 99% chip delay at Voltages[i] with Spares[j], seconds.
	P99 [][]float64
}

// ID implements Result.
func (r *Fig8Result) ID() string { return "fig8" }

// Render implements Result.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: p99 chip delay (ns) vs spares and supply, %s, %d samples\n", r.Node.Name, r.Samples)
	fmt.Fprintf(&b, "target %.3f ns (* marks combinations meeting it)\n", r.Target*1e9)
	headers := []string{"Vdd \\ spares"}
	for _, a := range r.Spares {
		headers = append(headers, fmt.Sprintf("%d", a))
	}
	t := report.NewTable("", headers...)
	for i, v := range r.Voltages {
		cells := []string{fmt.Sprintf("%.0f mV", v*1e3)}
		for j := range r.Spares {
			mark := ""
			if r.P99[i][j] <= r.Target {
				mark = "*"
			}
			cells = append(cells, fmt.Sprintf("%.3f%s", r.P99[i][j]*1e9, mark))
		}
		t.AddRowf(cells...)
	}
	b.WriteString(t.String())
	return b.String()
}

func runFig8(ctx context.Context, cfg Config) (Result, error) {
	node := tech.N45
	const vdd = 0.600
	dp := simd.New(node)
	res := &Fig8Result{
		Node: node, Samples: cfg.ChipSamples,
		Voltages: []float64{0.600, 0.605, 0.610, 0.615, 0.620},
		Spares:   []int{0, 1, 2, 4, 8, 16, 26, 32},
	}
	base, err := dp.P99ChipDelayFO4Ctx(ctx, cfg.Seed, cfg.ChipSamples, node.VddNominal, 0)
	if err != nil {
		return nil, err
	}
	res.Target = margin.TargetDelay(dp, vdd, base)
	for _, v := range res.Voltages {
		curve, err := dp.SpareCurveCtx(ctx, cfg.Seed+23, cfg.ChipSamples, v, res.Spares)
		if err != nil {
			return nil, err
		}
		row := make([]float64, len(curve))
		fo4 := dp.FO4(v) // convert each voltage's FO4 units back to seconds
		for j, p99 := range curve {
			row[j] = p99 * fo4
		}
		res.P99 = append(res.P99, row)
	}
	return res, nil
}

// Table3Result reproduces Table 3: design choices for a 128-wide system
// at 600 mV in 45 nm — combinations of duplication and voltage margining
// with their total power overhead.
// Paper: (26, 0 mV) 4.3 %, (8, 5 mV) 2.0 %, (2, 10 mV) 1.7 %,
// (1, 15 mV) 2.3 %, (0, 17 mV) 2.4 %; the small combination wins.
type Table3Result struct {
	Node    tech.Node
	Vdd     float64
	Samples int
	Choices []margin.Choice
	Best    margin.Choice
}

// ID implements Result.
func (r *Table3Result) ID() string { return "table3" }

// Render implements Result.
func (r *Table3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: design choices for 128-wide @%.0f mV, %s, %d search samples\n",
		r.Vdd*1e3, r.Node.Name, r.Samples)
	t := report.NewTable("", "duplications", "voltage margin", "power overhead")
	for _, c := range r.Choices {
		t.AddRowf(fmt.Sprintf("%d", c.Spares),
			fmt.Sprintf("%.1f mV", c.Margin*1e3),
			fmt.Sprintf("%.2f%%", c.PowerPct))
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "best: %s\n", r.Best)
	return b.String()
}

func runTable3(ctx context.Context, cfg Config) (Result, error) {
	node := tech.N45
	const vdd = 0.600
	dp := simd.New(node)
	res := &Table3Result{Node: node, Vdd: vdd, Samples: cfg.SearchSamples}
	base, err := dp.P99ChipDelayFO4Ctx(ctx, cfg.Seed, cfg.SearchSamples, node.VddNominal, 0)
	if err != nil {
		return nil, err
	}
	target := margin.TargetDelay(dp, vdd, base)
	res.Choices, err = margin.CombinedCtx(ctx, dp, cfg.Seed+29, cfg.SearchSamples, vdd, target, 0.1e-3,
		[]int{0, 1, 2, 4, 8, 16, 26})
	if err != nil {
		return nil, err
	}
	res.Best = margin.Best(res.Choices)
	return res, nil
}
