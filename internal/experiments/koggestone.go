package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/ntvsim/ntvsim/internal/circuit"
	"github.com/ntvsim/ntvsim/internal/montecarlo"
	"github.com/ntvsim/ntvsim/internal/report"
	"github.com/ntvsim/ntvsim/internal/rng"
	"github.com/ntvsim/ntvsim/internal/stats"
	"github.com/ntvsim/ntvsim/internal/tech"
	"github.com/ntvsim/ntvsim/internal/variation"
)

func init() {
	register("ks", Circuit, 1000,
		"delay variation of Kogge-Stone adders vs inverter chains across Vdd", runKoggeStone)
}

// KSRow compares delay variation of four circuits at one voltage.
type KSRow struct {
	Vdd    float64
	KS64   float64 // 64-bit Kogge-Stone adder 3σ/μ %
	Ripple float64 // 64-bit ripple-carry adder 3σ/μ %
	Mult16 float64 // 16×16 array multiplier 3σ/μ %
	Chain  float64 // 50-FO4 chain 3σ/μ %
}

// KSResult validates the paper's chain-emulation choice against gate-level
// adders (§3.1 / Drego et al. [7]: a 64-bit Kogge-Stone shows only
// ≈8.4 % delay variation at 0.5 V, close to the 50-FO4 chain's 9.43 %).
// The ripple-carry adder — one long chain with no parallel paths —
// behaves like a pure chain of its own depth.
type KSResult struct {
	Node    tech.Node
	Samples int
	KSDepth int // Kogge-Stone critical-path gate depth
	Rows    []KSRow
}

// ID implements Result.
func (r *KSResult) ID() string { return "ks" }

// Render implements Result.
func (r *KSResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Kogge-Stone validation: 3σ/μ (%%), %s, %d samples (KS depth %d gates)\n",
		r.Node.Name, r.Samples, r.KSDepth)
	t := report.NewTable("", "Vdd", "KS-64 adder", "ripple-64", "mult-16×16", "50-FO4 chain")
	for _, row := range r.Rows {
		t.AddRowf(fmt.Sprintf("%.2f V", row.Vdd),
			fmt.Sprintf("%.2f%%", row.KS64),
			fmt.Sprintf("%.2f%%", row.Ripple),
			fmt.Sprintf("%.2f%%", row.Mult16),
			fmt.Sprintf("%.2f%%", row.Chain))
	}
	b.WriteString(t.String())
	b.WriteString("paper anchor: KS-64 ≈ 8.4% at 0.5 V [7], chain 9.43% — same magnitude.\n")
	return b.String()
}

func runKoggeStone(ctx context.Context, cfg Config) (Result, error) {
	node := tech.N90
	ks := circuit.KoggeStone(64)
	ripple := circuit.RippleCarry(64)
	mult := circuit.ArrayMultiplier(16)
	sampler := variation.NewSampler(node.Dev, node.Var)
	res := &KSResult{Node: node, Samples: cfg.CircuitSamples, KSDepth: ks.Depth()}

	for _, vdd := range []float64{1.0, 0.7, 0.5} {
		seed := cfg.Seed + uint64(vdd*1000)
		ksDelays, err := montecarlo.SampleCtx(ctx, seed+1, cfg.CircuitSamples, func(r *rng.Stream) float64 {
			return ks.Delay(sampler, r, vdd, sampler.Die(r))
		})
		if err != nil {
			return nil, err
		}
		rcDelays, err := montecarlo.SampleCtx(ctx, seed+2, cfg.CircuitSamples, func(r *rng.Stream) float64 {
			return ripple.Delay(sampler, r, vdd, sampler.Die(r))
		})
		if err != nil {
			return nil, err
		}
		multDelays, err := montecarlo.SampleCtx(ctx, seed+4, cfg.CircuitSamples, func(r *rng.Stream) float64 {
			return mult.Delay(sampler, r, vdd, sampler.Die(r))
		})
		if err != nil {
			return nil, err
		}
		chain, err := montecarlo.SampleCtx(ctx, seed+3, cfg.CircuitSamples, func(r *rng.Stream) float64 {
			return sampler.FreshChainDelay(r, vdd, tech.ChainLength)
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, KSRow{
			Vdd:    vdd,
			KS64:   stats.ThreeSigmaOverMu(ksDelays),
			Ripple: stats.ThreeSigmaOverMu(rcDelays),
			Mult16: stats.ThreeSigmaOverMu(multDelays),
			Chain:  stats.ThreeSigmaOverMu(chain),
		})
	}
	return res, nil
}
