package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/ntvsim/ntvsim/internal/margin"
	"github.com/ntvsim/ntvsim/internal/report"
	"github.com/ntvsim/ntvsim/internal/simd"
	"github.com/ntvsim/ntvsim/internal/tech"
)

func init() {
	register("table2", Architecture, 6000,
		"voltage margin matching nominal variation, and its power overhead", runTable2)
}

// Table2Cell is one node × voltage entry of Table 2.
type Table2Cell struct {
	Node   string
	Vdd    float64
	Result margin.VoltageResult
}

// Table2Result reproduces Table 2: the voltage margin V_M required for a
// 128-wide SIMD datapath at near-threshold voltage to match the
// nominal-voltage variation level, and its power overhead.
// Paper anchors (at 0.50 V): 90 nm 5.8 mV/1.0 %, 45 nm 19.6 mV/3.3 %,
// 32 nm 12.1 mV/2.0 %, 22 nm 16.4 mV/2.8 %.
type Table2Result struct {
	Samples int
	Cells   []Table2Cell
}

// ID implements Result.
func (r *Table2Result) ID() string { return "table2" }

// Cell returns the entry for (node name, vdd), or nil.
func (r *Table2Result) Cell(node string, vdd float64) *Table2Cell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Node == node && abs(c.Vdd-vdd) < 1e-6 {
			return c
		}
	}
	return nil
}

// Render implements Result.
func (r *Table2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: required voltage margin V_M and power overhead, %d search samples\n", r.Samples)
	t := report.NewTable("", "node", "Vdd", "V_M", "power ovhd")
	for _, c := range r.Cells {
		t.AddRowf(c.Node, fmt.Sprintf("%.2f V", c.Vdd),
			fmt.Sprintf("%.1f mV", c.Result.Margin*1e3),
			fmt.Sprintf("%.2f%%", c.Result.PowerPct))
	}
	b.WriteString(t.String())
	return b.String()
}

func runTable2(ctx context.Context, cfg Config) (Result, error) {
	res := &Table2Result{Samples: cfg.SearchSamples}
	const step = 0.1e-3 // 0.1 mV search granularity
	for ni, node := range tech.Nodes() {
		dp := simd.New(node)
		seed := cfg.Seed + uint64(ni)*2357
		base, err := dp.P99ChipDelayFO4Ctx(ctx, seed, cfg.SearchSamples, node.VddNominal, 0)
		if err != nil {
			return nil, err
		}
		for _, vdd := range table1Voltages {
			target := margin.TargetDelay(dp, vdd, base)
			vr, err := margin.VoltageMarginCtx(ctx, dp, seed+uint64(vdd*1000), cfg.SearchSamples, vdd, target, step, 0)
			if err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, Table2Cell{Node: node.Name, Vdd: vdd, Result: vr})
		}
	}
	return res, nil
}
