package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/ntvsim/ntvsim/internal/margin"
	"github.com/ntvsim/ntvsim/internal/power"
	"github.com/ntvsim/ntvsim/internal/report"
	"github.com/ntvsim/ntvsim/internal/simd"
	"github.com/ntvsim/ntvsim/internal/sparing"
	"github.com/ntvsim/ntvsim/internal/tech"
)

func init() {
	register("fig7", Architecture, 6000,
		"power overhead: structural duplication vs voltage margining", runFig7)
}

// Fig7Point compares the two techniques at one node × voltage.
type Fig7Point struct {
	Node           string
	Vdd            float64
	DupSpares      int
	DupFound       bool
	DupPowerPct    float64
	MarginMV       float64
	MarginPowerPct float64
	Winner         string
}

// Fig7Result reproduces Figure 7: the power-overhead comparison between
// structural duplication and voltage margining for the four nodes.
// The paper's conclusion: duplication wins at high near-threshold
// voltages / large nodes (low variation); margining wins as technology
// scales and Vdd drops.
type Fig7Result struct {
	Samples int
	Points  []Fig7Point
}

// ID implements Result.
func (r *Fig7Result) ID() string { return "fig7" }

// Render implements Result.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: power overhead, duplication vs voltage margining, %d search samples\n", r.Samples)
	t := report.NewTable("", "node", "Vdd", "dup spares", "dup power", "margin", "margin power", "winner")
	for _, p := range r.Points {
		dup, dupP := "—", "—"
		if p.DupFound {
			dup = fmt.Sprintf("%d", p.DupSpares)
			dupP = fmt.Sprintf("%.2f%%", p.DupPowerPct)
		} else {
			dup = fmt.Sprintf(">%d", p.DupSpares-1)
			dupP = fmt.Sprintf(">%.1f%%", p.DupPowerPct)
		}
		t.AddRowf(p.Node, fmt.Sprintf("%.2f V", p.Vdd), dup, dupP,
			fmt.Sprintf("%.1f mV", p.MarginMV), fmt.Sprintf("%.2f%%", p.MarginPowerPct), p.Winner)
	}
	b.WriteString(t.String())
	return b.String()
}

func runFig7(ctx context.Context, cfg Config) (Result, error) {
	const limit = 128
	res := &Fig7Result{Samples: cfg.SearchSamples}
	for ni, node := range tech.Nodes() {
		dp := simd.New(node)
		seed := cfg.Seed + uint64(ni)*3631
		base, err := dp.P99ChipDelayFO4Ctx(ctx, seed, cfg.SearchSamples, node.VddNominal, 0)
		if err != nil {
			return nil, err
		}
		for _, vdd := range table1Voltages {
			sr, err := sparing.MinSparesCtx(ctx, dp, seed+uint64(vdd*1000), cfg.SearchSamples, vdd, base, limit)
			if err != nil {
				return nil, err
			}
			target := margin.TargetDelay(dp, vdd, base)
			vr, err := margin.VoltageMarginCtx(ctx, dp, seed+uint64(vdd*1000), cfg.SearchSamples, vdd, target, 0.1e-3, 0)
			if err != nil {
				return nil, err
			}
			pt := Fig7Point{
				Node: node.Name, Vdd: vdd,
				DupSpares: sr.Spares, DupFound: sr.Found,
				DupPowerPct:    power.SparePowerOverheadPct(sr.Spares),
				MarginMV:       vr.Margin * 1e3,
				MarginPowerPct: vr.PowerPct,
			}
			switch {
			case !sr.Found:
				pt.Winner = "margining"
			case pt.DupPowerPct <= pt.MarginPowerPct:
				pt.Winner = "duplication"
			default:
				pt.Winner = "margining"
			}
			res.Points = append(res.Points, pt)
		}
	}
	return res, nil
}
