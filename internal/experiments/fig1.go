package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/ntvsim/ntvsim/internal/montecarlo"
	"github.com/ntvsim/ntvsim/internal/report"
	"github.com/ntvsim/ntvsim/internal/rng"
	"github.com/ntvsim/ntvsim/internal/stats"
	"github.com/ntvsim/ntvsim/internal/tech"
	"github.com/ntvsim/ntvsim/internal/variation"
)

func init() {
	register("fig1", Circuit, 1000,
		"delay statistics of an FO4 inverter and a 50-FO4 chain vs Vdd, 90nm", runFig1)
}

// Fig1Row is one supply-voltage point of Figure 1: delay statistics of a
// single FO4 inverter and of a 50-FO4-inverter chain in 90 nm GP.
type Fig1Row struct {
	Vdd        float64
	Gate       stats.Summary
	Chain      stats.Summary
	GateHist   []float64 // normalized histogram shape (24 bins)
	ChainHist  []float64
	PaperGate  float64 // paper-reported 3σ/μ %
	PaperChain float64
}

// Fig1Result reproduces Figure 1 (delay distributions vs supply voltage).
type Fig1Result struct {
	Node    tech.Node
	Samples int
	Rows    []Fig1Row
}

// ID implements Result.
func (r *Fig1Result) ID() string { return "fig1" }

// Render implements Result.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1: delay distributions, %s, %d samples/voltage\n", r.Node.Name, r.Samples)
	t := report.NewTable("",
		"Vdd", "gate mean", "gate 3σ/μ", "paper", "chain mean", "chain 3σ/μ", "paper")
	for _, row := range r.Rows {
		t.AddRowf(
			fmt.Sprintf("%.2f V", row.Vdd),
			fmt.Sprintf("%.1f ps", row.Gate.Mean*1e12),
			fmt.Sprintf("%.2f%%", row.Gate.ThreeSigmaOverMu()),
			fmt.Sprintf("%.2f%%", row.PaperGate),
			fmt.Sprintf("%.2f ns", row.Chain.Mean*1e9),
			fmt.Sprintf("%.2f%%", row.Chain.ThreeSigmaOverMu()),
			fmt.Sprintf("%.2f%%", row.PaperChain),
		)
	}
	b.WriteString(t.String())
	b.WriteString("distribution shapes (chain):\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %.2f V %s\n", row.Vdd, report.Sparkline(row.ChainHist))
	}
	return b.String()
}

func runFig1(ctx context.Context, cfg Config) (Result, error) {
	node := tech.N90
	res := &Fig1Result{Node: node, Samples: cfg.CircuitSamples}
	sampler := variation.NewSampler(node.Dev, node.Var)
	for _, a := range tech.Targets90().Anchors {
		vdd := a.Vdd
		gate, err := montecarlo.SampleCtx(ctx, cfg.Seed+uint64(vdd*1000), cfg.CircuitSamples, func(r *rng.Stream) float64 {
			return sampler.FreshGateDelay(r, vdd)
		})
		if err != nil {
			return nil, err
		}
		chain, err := montecarlo.SampleCtx(ctx, cfg.Seed+uint64(vdd*1000)+7, cfg.CircuitSamples, func(r *rng.Stream) float64 {
			return sampler.FreshChainDelay(r, vdd, tech.ChainLength)
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig1Row{
			Vdd:        vdd,
			Gate:       stats.Summarize(gate),
			Chain:      stats.Summarize(chain),
			GateHist:   histShape(gate, 24),
			ChainHist:  histShape(chain, 24),
			PaperGate:  a.Gate,
			PaperChain: a.Chain,
		})
	}
	return res, nil
}

// histShape returns the normalized bin counts of a histogram of xs.
func histShape(xs []float64, bins int) []float64 {
	h := stats.HistogramOf(xs, bins)
	out := make([]float64, bins)
	for i, c := range h.Counts {
		out[i] = float64(c)
	}
	return out
}
