package experiments

import (
	"fmt"
	"strconv"
)

// CSVer is implemented by results that can emit machine-readable rows
// (header first) for replotting the figure outside the CLI.
type CSVer interface {
	CSV() [][]string
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }

// CSV implements CSVer: columns Vdd, then one 3σ/μ column per node.
func (r *Fig2Result) CSV() [][]string {
	head := []string{"vdd_v"}
	for _, s := range r.Series {
		head = append(head, s.Node.Name+"_3sigma_pct")
	}
	rows := [][]string{head}
	for i, v := range r.Series[0].Vdd {
		row := []string{f(v)}
		for _, s := range r.Series {
			if i < len(s.ThreeSig) {
				row = append(row, f(s.ThreeSig[i]))
			} else {
				row = append(row, "")
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// CSV implements CSVer: columns Vdd, then one perf-drop column per node.
func (r *Fig4Result) CSV() [][]string {
	head := []string{"vdd_v"}
	for _, s := range r.Series {
		head = append(head, s.Node.Name+"_drop_pct")
	}
	rows := [][]string{head}
	for i, v := range r.Series[0].Vdd {
		row := []string{f(v)}
		for _, s := range r.Series {
			if i < len(s.DropPct) {
				row = append(row, f(s.DropPct[i]))
			} else {
				row = append(row, "")
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// CSV implements CSVer for the spare-count table.
func (r *Table1Result) CSV() [][]string {
	rows := [][]string{{"node", "vdd_v", "spares", "found", "area_pct", "power_pct"}}
	for _, c := range r.Cells {
		rows = append(rows, []string{
			c.Node, f(c.Vdd), strconv.Itoa(c.Search.Spares),
			fmt.Sprint(c.Search.Found), f(c.AreaPct), f(c.PowerPct),
		})
	}
	return rows
}

// CSV implements CSVer for the voltage-margin table.
func (r *Table2Result) CSV() [][]string {
	rows := [][]string{{"node", "vdd_v", "margin_mv", "power_pct"}}
	for _, c := range r.Cells {
		rows = append(rows, []string{
			c.Node, f(c.Vdd), f(c.Result.Margin * 1e3), f(c.Result.PowerPct),
		})
	}
	return rows
}

// CSV implements CSVer for the frequency-margining table.
func (r *Table4Result) CSV() [][]string {
	rows := [][]string{{"node", "vdd_v", "tclk_ns", "tva_clk_ns", "drop_pct"}}
	for _, c := range r.Cells {
		rows = append(rows, []string{
			c.Node, f(c.Vdd), f(c.Result.TClk * 1e9), f(c.Result.TVaClk * 1e9),
			f(c.Result.DropPct),
		})
	}
	return rows
}

// CSV implements CSVer for the energy sweep.
func (r *Fig9Result) CSV() [][]string {
	rows := [][]string{{"vdd_v", "e_dyn", "e_leak", "e_total", "delay_s"}}
	for _, p := range r.Points {
		rows = append(rows, []string{f(p.Vdd), f(p.Dynamic), f(p.Leakage), f(p.Total()), f(p.Delay)})
	}
	return rows
}

// CSV implements CSVer for the chain-length sweep.
func (r *Fig11Result) CSV() [][]string {
	head := []string{"chain_length"}
	for _, s := range r.Series {
		head = append(head, s.Node.Name+"_3sigma_pct")
	}
	rows := [][]string{head}
	for i, n := range r.Series[0].Lengths {
		row := []string{strconv.Itoa(n)}
		for _, s := range r.Series {
			row = append(row, f(s.ThreeSig[i]))
		}
		rows = append(rows, row)
	}
	return rows
}
