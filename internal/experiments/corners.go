package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/ntvsim/ntvsim/internal/corners"
	"github.com/ntvsim/ntvsim/internal/report"
	"github.com/ntvsim/ntvsim/internal/simd"
	"github.com/ntvsim/ntvsim/internal/stats"
	"github.com/ntvsim/ntvsim/internal/tech"
)

func init() {
	register("corners", Architecture, 10000,
		"corner-based signoff margin vs the statistical 99% methodology (extension)", runCorners)
}

// CornersCell is one node × voltage signoff comparison.
type CornersCell struct {
	Node           string
	Vdd            float64
	Signoff        corners.Signoff
	StatisticalP99 float64 // MC 99% chip delay, seconds
	OverMarginPct  float64
}

// CornersResult is an extension beyond the paper: it prices traditional
// corner-based signoff (SS corner × path-count-aware OCV derate)
// against the paper's statistical 99 % methodology. The corner flow's
// surplus margin grows toward threshold — at 90 nm it reserves several
// times the delay headroom the statistical chip actually needs — while
// at 22 nm deep-NTV the skewed tail can even slip past the Gaussian
// derate. Both effects argue for Monte-Carlo sizing of NTV silicon.
type CornersResult struct {
	Samples int
	Cells   []CornersCell
}

// ID implements Result.
func (r *CornersResult) ID() string { return "corners" }

// Render implements Result.
func (r *CornersResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Corner vs statistical signoff (SS + %0.1fσ path-aware OCV), %d samples\n",
		corners.OCVSigma(simd.DefaultLanes*simd.DefaultPathsPerLane), r.Samples)
	t := report.NewTable("", "node", "Vdd", "corner signoff", "statistical p99", "over-margin")
	for _, c := range r.Cells {
		t.AddRowf(c.Node, fmt.Sprintf("%.2f V", c.Vdd),
			fmt.Sprintf("%.3f ns", c.Signoff.DelaySS*1e9),
			fmt.Sprintf("%.3f ns", c.StatisticalP99*1e9),
			fmt.Sprintf("%+.1f%%", c.OverMarginPct))
	}
	b.WriteString(t.String())
	b.WriteString("positive over-margin: delay headroom the corner flow reserves beyond the\n" +
		"statistical 99% chip; it grows toward threshold (the cost of corner signoff\n" +
		"at NTV). Negative values at 22 nm deep-NTV mark the skewed tail escaping the\n" +
		"Gaussian OCV derate.\n")
	return b.String()
}

// CSV implements CSVer.
func (r *CornersResult) CSV() [][]string {
	rows := [][]string{{"node", "vdd_v", "corner_s", "statistical_p99_s", "over_margin_pct"}}
	for _, c := range r.Cells {
		rows = append(rows, []string{
			c.Node, f(c.Vdd), f(c.Signoff.DelaySS), f(c.StatisticalP99), f(c.OverMarginPct),
		})
	}
	return rows
}

func runCorners(ctx context.Context, cfg Config) (Result, error) {
	res := &CornersResult{Samples: cfg.ChipSamples}
	for ni, node := range tech.Nodes() {
		dp := simd.New(node)
		paths := dp.Lanes * dp.PathsPerLane
		for _, vdd := range []float64{0.50, 0.60, 0.70, node.VddNominal} {
			s := corners.ChipSignoff(node, vdd, paths)
			ds, err := dp.ChipDelaysCtx(ctx, cfg.Seed+uint64(ni)*59, cfg.ChipSamples, vdd, 0)
			if err != nil {
				return nil, err
			}
			sort.Float64s(ds)
			p99 := stats.QuantileSorted(ds, 0.99)
			res.Cells = append(res.Cells, CornersCell{
				Node: node.Name, Vdd: vdd, Signoff: s,
				StatisticalP99: p99,
				OverMarginPct:  corners.OverMarginPct(s, p99),
			})
		}
	}
	return res, nil
}
