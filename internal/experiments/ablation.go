package experiments

import (
	"context"
	"fmt"
	"strings"

	"github.com/ntvsim/ntvsim/internal/report"
	"github.com/ntvsim/ntvsim/internal/simd"
	"github.com/ntvsim/ntvsim/internal/tech"
)

func init() {
	register("ablation", Architecture, 6000,
		"spare effectiveness under iid-path vs correlated-lane models (extension)", runAblation)
}

// AblationRow compares spare effectiveness under the two architecture
// correlation models at one voltage.
type AblationRow struct {
	Vdd float64
	// P99 gains from 16 spares: 1 − p99(16)/p99(0), percent.
	IIDGainPct     float64
	SpatialGainPct float64 // AR(1) field, 8-lane correlation length
	CorrGainPct    float64
	// Spares needed to match the nominal baseline (limit 64; -1 if not
	// reachable).
	IIDSpares  int
	CorrSpares int
}

// AblationResult is an extension beyond the paper: it quantifies how the
// paper's implicit iid-path assumption drives the structural-duplication
// result. Under the physically conservative alternative — die-to-die
// variation shared by all lanes of a chip — dropping slow lanes cannot
// fix a slow die, and duplication loses most of its value while voltage
// margining is unaffected. A spatially correlated AR(1) field (8-lane
// correlation length) sits between the extremes. This is the
// repository's headline ablation (DESIGN.md, "Key modeling decisions").
type AblationResult struct {
	Node    tech.Node
	Samples int
	Rows    []AblationRow
}

// ID implements Result.
func (r *AblationResult) ID() string { return "ablation" }

// Render implements Result.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: spare effectiveness, iid paths (paper) vs shared-die D2D, %s, %d samples\n",
		r.Node.Name, r.Samples)
	t := report.NewTable("", "Vdd", "p99 gain 16 spares (iid)", "(spatial λ=8)", "(shared die)", "spares to match (iid)", "(shared die)")
	for _, row := range r.Rows {
		iid, corr := "—", "—"
		if row.IIDSpares >= 0 {
			iid = fmt.Sprintf("%d", row.IIDSpares)
		}
		if row.CorrSpares >= 0 {
			corr = fmt.Sprintf("%d", row.CorrSpares)
		}
		t.AddRowf(fmt.Sprintf("%.2f V", row.Vdd),
			fmt.Sprintf("%.2f%%", row.IIDGainPct),
			fmt.Sprintf("%.2f%%", row.SpatialGainPct),
			fmt.Sprintf("%.2f%%", row.CorrGainPct),
			iid, corr)
	}
	b.WriteString(t.String())
	b.WriteString("Shared-die correlation collapses the value of structural duplication:\n" +
		"spares drop slow lanes, not slow dies. Margining (Table 2) is unaffected.\n")
	return b.String()
}

func runAblation(ctx context.Context, cfg Config) (Result, error) {
	node := tech.N90
	res := &AblationResult{Node: node, Samples: cfg.SearchSamples}
	iid := simd.New(node)
	corr := simd.New(node)
	corr.Corr = simd.SharedDie
	spatial := simd.New(node)
	spatial.Corr = simd.Spatial
	spatial.CorrLanes = 8

	baseIID := iid.P99ChipDelayFO4(cfg.Seed, cfg.SearchSamples, node.VddNominal, 0)
	baseCorr := corr.P99ChipDelayFO4(cfg.Seed, cfg.SearchSamples, node.VddNominal, 0)

	const limit = 64
	for _, vdd := range []float64{0.60, 0.55, 0.50} {
		ci := iid.SpareCurve(cfg.Seed+1, cfg.SearchSamples, vdd, []int{0, 16})
		cs := spatial.SpareCurve(cfg.Seed+1, cfg.SearchSamples, vdd, []int{0, 16})
		cc := corr.SpareCurve(cfg.Seed+1, cfg.SearchSamples, vdd, []int{0, 16})
		row := AblationRow{
			Vdd:            vdd,
			IIDGainPct:     100 * (1 - ci[1]/ci[0]),
			SpatialGainPct: 100 * (1 - cs[1]/cs[0]),
			CorrGainPct:    100 * (1 - cc[1]/cc[0]),
			IIDSpares:      -1,
			CorrSpares:     -1,
		}
		if sr := minSparesFor(iid, cfg.Seed+1, cfg.SearchSamples, vdd, baseIID, limit); sr >= 0 {
			row.IIDSpares = sr
		}
		if sr := minSparesFor(corr, cfg.Seed+1, cfg.SearchSamples, vdd, baseCorr, limit); sr >= 0 {
			row.CorrSpares = sr
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// minSparesFor is a compact linear/doubling search used only by the
// ablation (internal/sparing.MinSpares is equivalent; this avoids the
// import cycle experiments→sparing→simd being exercised twice with
// different seeds in one experiment).
func minSparesFor(dp *simd.Datapath, seed uint64, n int, vdd, target float64, limit int) int {
	alphas := []int{0, 1, 2, 4, 8, 16, 32, 64}
	var pruned []int
	for _, a := range alphas {
		if a <= limit {
			pruned = append(pruned, a)
		}
	}
	curve := dp.SpareCurve(seed, n, vdd, pruned)
	for i, p99 := range curve {
		if p99 <= target {
			// Refine linearly between the previous ladder point and this.
			lo := 0
			if i > 0 {
				lo = pruned[i-1] + 1
			}
			for a := lo; a <= pruned[i]; a++ {
				if dp.SpareCurve(seed, n, vdd, []int{a})[0] <= target {
					return a
				}
			}
			return pruned[i]
		}
	}
	return -1
}
