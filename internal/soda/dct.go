package soda

import (
	"fmt"
	"math"
)

// DCT kernel: 16 independent 8-point DCT-II transforms across the 128
// lanes (lane b·8+u holds output coefficient u of block b) — the
// camera-pipeline transform stage Diet SODA targets. The kernel uses
// the matrix form y[u] = Σ_k C[u][k]·x[k] with Q6 coefficients:
//
//   - one SSN configuration per k broadcasts x[k] of each block to all
//     eight lanes of that block;
//   - a preloaded coefficient row per k supplies C[u][k] to lane u;
//   - products are rescaled (rounded VSRA by 6) before accumulation so
//     every intermediate stays within int16 for 8-bit inputs.

const (
	dctBlock  = 8
	dctBlocks = Lanes / dctBlock
	dctQ      = 6

	dctIn   = 0
	dctOut  = 8
	dctCoef = 100 // 8 rows of coefficients
)

// dctCoeffQ6 returns the Q6 DCT-II matrix entry C[u][k] =
// s(u)·cos(π(2k+1)u/16), s(0)=√(1/8), s(u>0)=√(2/8)·... scaled ×64.
func dctCoeffQ6(u, k int) int16 {
	s := math.Sqrt(2.0 / dctBlock)
	if u == 0 {
		s = math.Sqrt(1.0 / dctBlock)
	}
	c := s * math.Cos(math.Pi*float64(2*k+1)*float64(u)/(2*dctBlock))
	return int16(math.Round(c * (1 << dctQ)))
}

// dctBroadcastConfig builds the SSN configuration that gives every lane
// of each 8-lane block the block's k-th element.
func dctBroadcastConfig(k int) []int {
	cfg := make([]int, Lanes)
	for j := range cfg {
		cfg[j] = j&^(dctBlock-1) | k
	}
	return cfg
}

// DCT8Kernel builds the blocked 8-point DCT of a 128-sample row.
// Inputs are treated as signed 16-bit values and must fit 9 bits
// (±255) so the Q6 products stay within int16.
func DCT8Kernel(x []int16) Kernel {
	if len(x) != Lanes {
		panic("soda: DCT8Kernel needs a 128-sample row")
	}
	for i, v := range x {
		if v < -255 || v > 255 {
			panic(fmt.Sprintf("soda: DCT8Kernel input %d = %d outside ±255", i, v))
		}
	}
	bld := NewBuilder()
	bld.SLi(1, dctIn).VLoad(0, 1). // v0 = x
					SLi(2, 1<<(dctQ-1)).VBcast(7, 2). // v7 = rounding constant 32
					V3(VXOR, 1, 1, 1)                 // v1 = accumulator
	for k := 0; k < dctBlock; k++ {
		bld.VImm(VSHUF, 2, 0, k). // v2 = per-block broadcast of x[k]
						SLi(3, dctCoef+k).VLoad(3, 3). // v3 = C[·][k]
						V3(VMUL, 4, 2, 3).
						V3(VADD, 4, 4, 7). // round
						VImm(VSRA, 4, 4, dctQ).
						V3(VADD, 1, 1, 4)
	}
	bld.SLi(1, dctOut).VStore(1, 1).Halt()

	return Kernel{
		Name:    "dct8x16",
		Program: bld.MustProgram(),
		Setup: func(pe *PE) error {
			row := make([]uint16, Lanes)
			for i, v := range x {
				row[i] = uint16(v)
			}
			if err := pe.Mem.WriteRow(dctIn, row); err != nil {
				return err
			}
			for k := 0; k < dctBlock; k++ {
				var coef [Lanes]uint16
				for j := 0; j < Lanes; j++ {
					coef[j] = uint16(dctCoeffQ6(j%dctBlock, k))
				}
				if err := pe.Mem.WriteRow(dctCoef+k, coef[:]); err != nil {
					return err
				}
				if err := pe.SSN.Store(k, dctBroadcastConfig(k)); err != nil {
					return err
				}
			}
			return nil
		},
		Check: func(pe *PE) error {
			want := dct8Golden(x)
			return expectRow(pe, dctOut, want)
		},
	}
}

// dct8Golden replays the kernel's integer arithmetic exactly.
func dct8Golden(x []int16) []uint16 {
	out := make([]uint16, Lanes)
	for b := 0; b < dctBlocks; b++ {
		for u := 0; u < dctBlock; u++ {
			var acc int16
			for k := 0; k < dctBlock; k++ {
				prod := x[b*dctBlock+k] * dctCoeffQ6(u, k)
				acc += (prod + 1<<(dctQ-1)) >> dctQ
			}
			out[b*dctBlock+u] = uint16(acc)
		}
	}
	return out
}

// MedianKernel builds a circular 3-tap median filter over one
// 128-sample row using rotate shuffles (slots 0 and 1) and the lane-wise
// min/max network med(a,b,c) = max(min(a,b), min(max(a,b), c)).
func MedianKernel(x []uint16) Kernel {
	if len(x) != Lanes {
		panic("soda: MedianKernel needs a 128-sample row")
	}
	bld := NewBuilder()
	bld.SLi(1, rowA).
		VLoad(0, 1).          // v0 = b (center)
		VImm(VSHUF, 1, 0, 0). // v1 = a (left neighbour)
		VImm(VSHUF, 2, 0, 1). // v2 = c (right neighbour)
		V3(VMIN, 3, 1, 0).    // min(a,b)
		V3(VMAX, 4, 1, 0).    // max(a,b)
		V3(VMIN, 5, 4, 2).    // min(max(a,b), c)
		V3(VMAX, 6, 3, 5).    // median
		SLi(2, rowOut).
		VStore(6, 2).
		Halt()
	return Kernel{
		Name:    "median3",
		Program: bld.MustProgram(),
		Setup: func(pe *PE) error {
			// Slot 0: left neighbour (i−1); slot 1: right neighbour (i+1).
			if err := pe.SSN.Store(0, rotateCfg(-1)); err != nil {
				return err
			}
			if err := pe.SSN.Store(1, rotateCfg(+1)); err != nil {
				return err
			}
			return pe.Mem.WriteRow(rowA, x)
		},
		Check: func(pe *PE) error {
			var want [Lanes]uint16
			for i := range want {
				a := int16(x[(i-1+Lanes)%Lanes])
				b := int16(x[i])
				c := int16(x[(i+1)%Lanes])
				lo, hi := a, b
				if lo > hi {
					lo, hi = hi, lo
				}
				if c < hi {
					hi = c
				}
				if lo > hi {
					hi = lo
				}
				want[i] = uint16(hi)
			}
			return expectRow(pe, rowOut, want[:])
		},
	}
}

// rotateCfg is a local alias of xram.Rotate semantics: out[j] = in[(j+k) mod 128].
func rotateCfg(k int) []int {
	cfg := make([]int, Lanes)
	for j := range cfg {
		cfg[j] = ((j+k)%Lanes + Lanes) % Lanes
	}
	return cfg
}
