package soda

import (
	"strings"
	"testing"

	"github.com/ntvsim/ntvsim/internal/rng"
)

func randVec(r *rng.Stream, n, lim int) []uint16 {
	out := make([]uint16, n)
	for i := range out {
		out[i] = uint16(r.IntN(lim))
	}
	return out
}

func TestScaleAddKernel(t *testing.T) {
	r := rng.New(1)
	k := ScaleAddKernel(randVec(r, Lanes, 1000), randVec(r, Lanes, 1000), -7)
	if err := RunKernel(NewPE(), k); err != nil {
		t.Fatal(err)
	}
}

func TestFIRKernelVariousTaps(t *testing.T) {
	r := rng.New(2)
	for _, taps := range [][]int16{
		{1},
		{1, -2, 3},
		{3, -1, 4, 1, -5, 9, 2, -6},
		{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16},
	} {
		k := FIRKernel(randVec(r, Lanes, 256), taps)
		pe := NewPE()
		if err := RunKernel(pe, k); err != nil {
			t.Errorf("%d taps: %v", len(taps), err)
		}
		if pe.Stats.SSNRoutes != len(taps) {
			t.Errorf("%d taps: %d shuffle routes", len(taps), pe.Stats.SSNRoutes)
		}
	}
}

func TestFIRKernelPanicsOnTooManyTaps(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("17 taps should panic (exceeds SSN slots)")
		}
	}()
	FIRKernel(make([]uint16, Lanes), make([]int16, 17))
}

func TestDotProductKernelSizes(t *testing.T) {
	r := rng.New(3)
	for _, rows := range []int{1, 2, 16, 64} {
		n := rows * Lanes
		k := DotProductKernel(randVec(r, n, 512), randVec(r, n, 512))
		pe := NewPE()
		if err := RunKernel(pe, k); err != nil {
			t.Errorf("%d rows: %v", rows, err)
		}
		if pe.Stats.TreeOps != rows {
			t.Errorf("%d rows: %d tree reductions", rows, pe.Stats.TreeOps)
		}
	}
}

func TestDotProductKernelValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { DotProductKernel(make([]uint16, 100), make([]uint16, 100)) },
		func() { DotProductKernel(make([]uint16, Lanes), make([]uint16, 2*Lanes)) },
		func() { DotProductKernel(nil, nil) },
		func() { DotProductKernel(make([]uint16, 65*Lanes), make([]uint16, 65*Lanes)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid dot-product input accepted")
				}
			}()
			fn()
		}()
	}
}

func TestRGBToYCbCrKernel(t *testing.T) {
	r := rng.New(4)
	k := RGBToYCbCrKernel(randVec(r, Lanes, 256), randVec(r, Lanes, 256), randVec(r, Lanes, 256))
	if err := RunKernel(NewPE(), k); err != nil {
		t.Fatal(err)
	}
}

func TestColumnSumKernel(t *testing.T) {
	r := rng.New(5)
	for _, hc := range []struct{ h, cols int }{{4, 8}, {32, 64}, {128, 16}} {
		img := randVec(r, hc.h*Lanes, 100)
		k := ColumnSumKernel(img, hc.h, hc.cols)
		pe := NewPE()
		if err := RunKernel(pe, k); err != nil {
			t.Errorf("%dx%d: %v", hc.h, hc.cols, err)
		}
		if pe.Stats.GatherRows == 0 {
			t.Error("column sum should exercise the prefetcher")
		}
	}
}

func TestKernelsUnderErrorInjection(t *testing.T) {
	// Functional correctness must hold regardless of timing errors —
	// recovery costs cycles, never corrupts data.
	r := rng.New(6)
	k := FIRKernel(randVec(r, Lanes, 256), []int16{1, -2, 3, -4})
	pe := NewPE()
	pe.Err = fixedPenalty{cycles: 2, errs: 1}
	pe.Rand = rng.New(7)
	if err := RunKernel(pe, k); err != nil {
		t.Fatal(err)
	}
	if pe.Stats.RecoveryStall == 0 {
		t.Error("injection did not charge cycles")
	}
	clean := NewPE()
	if err := RunKernel(clean, k); err != nil {
		t.Fatal(err)
	}
	if pe.Stats.Cycles <= clean.Stats.Cycles {
		t.Error("errors should slow execution down")
	}
}

func TestKernelCheckCatchesCorruption(t *testing.T) {
	r := rng.New(8)
	a := randVec(r, Lanes, 100)
	b := randVec(r, Lanes, 100)
	k := ScaleAddKernel(a, b, 3)
	pe := NewPE()
	if err := k.Setup(pe); err != nil {
		t.Fatal(err)
	}
	if err := pe.Run(k.Program, DefaultCycleBudget); err != nil {
		t.Fatal(err)
	}
	// Corrupt one output lane; Check must notice.
	var row [Lanes]uint16
	if err := pe.Mem.ReadRow(rowOut, row[:]); err != nil {
		t.Fatal(err)
	}
	row[17]++
	if err := pe.Mem.WriteRow(rowOut, row[:]); err != nil {
		t.Fatal(err)
	}
	err := k.Check(pe)
	if err == nil || !strings.Contains(err.Error(), "lane 17") {
		t.Errorf("corruption not caught: %v", err)
	}
}

func TestKernelNamesDistinct(t *testing.T) {
	r := rng.New(9)
	names := map[string]bool{}
	ks := []Kernel{
		ScaleAddKernel(randVec(r, Lanes, 10), randVec(r, Lanes, 10), 1),
		FIRKernel(randVec(r, Lanes, 10), []int16{1, 2}),
		DotProductKernel(randVec(r, Lanes, 10), randVec(r, Lanes, 10)),
		RGBToYCbCrKernel(randVec(r, Lanes, 10), randVec(r, Lanes, 10), randVec(r, Lanes, 10)),
		ColumnSumKernel(randVec(r, 4*Lanes, 10), 4, 4),
	}
	for _, k := range ks {
		if k.Name == "" || names[k.Name] {
			t.Errorf("kernel name %q empty or duplicated", k.Name)
		}
		names[k.Name] = true
	}
}

func TestStridedSumKernel(t *testing.T) {
	r := rng.New(11)
	for _, cfg := range []struct{ n, stride int }{{1, 1}, {4, 1}, {3, 2}, {2, 3}} {
		k := StridedSumKernel(randVec(r, cfg.n*Lanes, 500), cfg.n, cfg.stride)
		pe := NewPE()
		if err := RunKernel(pe, k); err != nil {
			t.Errorf("n=%d stride=%d: %v", cfg.n, cfg.stride, err)
		}
		if pe.Stats.MemRowOps != cfg.n+1 { // n banked loads + final store
			t.Errorf("n=%d: mem ops %d", cfg.n, pe.Stats.MemRowOps)
		}
	}
}

func TestStridedSumValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("colliding layout accepted")
		}
	}()
	StridedSumKernel(make([]uint16, 5*Lanes), 5, 2) // row 8 = rowOut collision
}
