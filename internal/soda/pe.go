package soda

import (
	"fmt"
	"io"

	"github.com/ntvsim/ntvsim/internal/rng"
	"github.com/ntvsim/ntvsim/internal/xram"
)

// ErrorModel injects variation-induced timing errors into the SIMD
// pipeline. For every issued vector operation it returns the number of
// extra recovery cycles the whole datapath pays and the number of lane
// errors that occurred (zero for an error-free issue). Implementations
// live in internal/timingerr.
type ErrorModel interface {
	Penalty(r *rng.Stream) (extraCycles, laneErrors int)
}

// ClockConfig sets the PE's two-domain timing. The SIMD datapath clock
// period must be a multiple of the memory clock period (§4.3), so the
// ratio is an integer ≥ 1: at deep near-threshold voltage the SIMD clock
// is slow and memory completes within one SIMD cycle; at full voltage
// (ratio 1) memory costs its native latency.
type ClockConfig struct {
	MemLatency int // memory access latency in full-voltage memory cycles
	ClockRatio int // T_simd / T_mem, integer ≥ 1
}

// DefaultClock is full-voltage operation: both domains at the same clock.
func DefaultClock() ClockConfig { return ClockConfig{MemLatency: 2, ClockRatio: 1} }

// memCycles converts the memory latency into SIMD cycles (≥ 1).
func (c ClockConfig) memCycles() int {
	lat, ratio := c.MemLatency, c.ClockRatio
	if lat < 1 {
		lat = 2
	}
	if ratio < 1 {
		ratio = 1
	}
	n := (lat + ratio - 1) / ratio
	if n < 1 {
		n = 1
	}
	return n
}

// Stats accumulates execution counters for one run.
type Stats struct {
	Cycles        int
	Instructions  int
	VectorOps     int
	ScalarOps     int
	MemRowOps     int // full-voltage memory row accesses
	GatherRows    int // rows touched by prefetcher gathers
	SSNRoutes     int // shuffle network traversals
	TreeOps       int // adder tree reductions
	TimingErrors  int // injected lane timing errors
	RecoveryStall int // cycles lost to error recovery
	HazardStall   int // cycles lost to pipeline read-after-write hazards
}

// IPC returns instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// PE is one Diet SODA processing element.
type PE struct {
	VRF  [VRegs][Lanes]uint16
	SRF  [SRegs]uint16
	Mem  *SIMDMemory
	SMem [ScalarWords]uint16
	SSN  *xram.Crossbar

	// AGUs are the four per-bank address-generation pipelines used by
	// the banked load/store opcodes (see agu.go).
	AGUs [aguCount]AGU

	Clock ClockConfig
	Err   ErrorModel  // nil: error-free operation
	Rand  *rng.Stream // used only by Err
	// Pipe, when set, charges read-after-write hazard stalls between
	// dependent vector instructions (see pipeline.go).
	Pipe *Pipeline
	// Trace, when set, receives one line per executed instruction.
	Trace io.Writer

	Stats Stats
}

// NewPE returns a powered-up PE with zeroed state, an identity-configured
// 128×128 shuffle network and full-voltage clocking.
func NewPE() *PE {
	ssn, err := xram.New(Lanes, 0)
	if err != nil {
		panic(err) // impossible: constant valid size
	}
	return &PE{Mem: NewSIMDMemory(), SSN: ssn, Clock: DefaultClock()}
}

// Reset clears registers, AGUs and statistics but preserves memory
// contents, SSN configurations and clocking — the state a kernel
// restart would see.
func (pe *PE) Reset() {
	pe.VRF = [VRegs][Lanes]uint16{}
	pe.SRF = [SRegs]uint16{}
	pe.AGUs = [aguCount]AGU{}
	pe.Stats = Stats{}
	if pe.Pipe != nil {
		pe.Pipe.Reset()
	}
}

func checkVReg(i int) error {
	if i < 0 || i >= VRegs {
		return fmt.Errorf("soda: vector register v%d outside [0, %d)", i, VRegs)
	}
	return nil
}

func checkSReg(i int) error {
	if i < 0 || i >= SRegs {
		return fmt.Errorf("soda: scalar register s%d outside [0, %d)", i, SRegs)
	}
	return nil
}

// Run executes the program until HALT, the end of the program, or
// maxCycles elapsed. It returns an error for malformed programs
// (bad registers, addresses, or a cycle overrun, which indicates a
// non-terminating kernel).
func (pe *PE) Run(program []Instruction, maxCycles int) error {
	pc := 0
	for pc < len(program) {
		if pe.Stats.Cycles >= maxCycles {
			return fmt.Errorf("soda: exceeded %d cycles at pc=%d (%s)", maxCycles, pc, program[pc])
		}
		in := program[pc]
		next := pc + 1
		cost := 1

		if in.Op.IsVector() {
			c, err := pe.execVector(in)
			if err != nil {
				return fmt.Errorf("soda: pc=%d %s: %w", pc, in, err)
			}
			cost = c
			pe.Stats.VectorOps++
			if pe.Pipe != nil {
				dst, srcs := vectorOperands(in)
				stall := pe.Pipe.Issue(dst, srcs, c)
				pe.Stats.HazardStall += stall
				cost += stall
			}
			if pe.Err != nil {
				extra, errs := pe.Err.Penalty(pe.Rand)
				pe.Stats.RecoveryStall += extra
				pe.Stats.TimingErrors += errs
				cost += extra
			}
		} else if in.Op >= SAGU {
			c, err := pe.execAGU(in)
			if err != nil {
				return fmt.Errorf("soda: pc=%d %s: %w", pc, in, err)
			}
			cost = c
			pe.Stats.ScalarOps++
		} else {
			c, npc, err := pe.execScalar(in, pc)
			if err != nil {
				return fmt.Errorf("soda: pc=%d %s: %w", pc, in, err)
			}
			if npc < 0 { // HALT
				if pe.Trace != nil {
					fmt.Fprintf(pe.Trace, "%6d  pc=%-4d %-26s ; %d cycles\n",
						pe.Stats.Cycles, pc, in.String(), c)
				}
				pe.Stats.Cycles += c
				pe.Stats.Instructions++
				pe.Stats.ScalarOps++
				return nil
			}
			cost, next = c, npc
			pe.Stats.ScalarOps++
		}
		if pe.Trace != nil {
			fmt.Fprintf(pe.Trace, "%6d  pc=%-4d %-26s ; %d cycles\n",
				pe.Stats.Cycles, pc, in.String(), cost)
		}
		pe.Stats.Cycles += cost
		pe.Stats.Instructions++
		pc = next
	}
	return nil
}

// execVector executes one SIMD instruction and returns its cycle cost.
func (pe *PE) execVector(in Instruction) (int, error) {
	mem := pe.Clock.memCycles()
	switch in.Op {
	case VLOAD:
		if err := checkVReg(in.Dst); err != nil {
			return 0, err
		}
		if err := checkSReg(in.A); err != nil {
			return 0, err
		}
		if err := pe.Mem.ReadRow(int(pe.SRF[in.A]), pe.VRF[in.Dst][:]); err != nil {
			return 0, err
		}
		pe.Stats.MemRowOps++
		return mem, nil
	case VSTORE:
		if err := checkVReg(in.Dst); err != nil {
			return 0, err
		}
		if err := checkSReg(in.A); err != nil {
			return 0, err
		}
		if err := pe.Mem.WriteRow(int(pe.SRF[in.A]), pe.VRF[in.Dst][:]); err != nil {
			return 0, err
		}
		pe.Stats.MemRowOps++
		return mem, nil
	case VGATHER:
		if err := checkVReg(in.Dst); err != nil {
			return 0, err
		}
		if err := checkSReg(in.A); err != nil {
			return 0, err
		}
		if err := checkSReg(in.B); err != nil {
			return 0, err
		}
		rows, err := pe.Mem.Gather(int(pe.SRF[in.A]), int(int16(pe.SRF[in.B])), pe.VRF[in.Dst][:])
		if err != nil {
			return 0, err
		}
		pe.Stats.MemRowOps += rows
		pe.Stats.GatherRows += rows
		pe.Stats.SSNRoutes++ // alignment pass through the crossbar
		return rows * mem, nil
	case VBCAST:
		if err := checkVReg(in.Dst); err != nil {
			return 0, err
		}
		if err := checkSReg(in.A); err != nil {
			return 0, err
		}
		v := pe.SRF[in.A]
		for l := range pe.VRF[in.Dst] {
			pe.VRF[in.Dst][l] = v
		}
		return 1, nil
	case VSHUF:
		if err := checkVReg(in.Dst); err != nil {
			return 0, err
		}
		if err := checkVReg(in.A); err != nil {
			return 0, err
		}
		if err := pe.SSN.Select(in.Imm); err != nil {
			return 0, err
		}
		var tmp [Lanes]uint16
		if err := pe.SSN.Route(pe.VRF[in.A][:], tmp[:]); err != nil {
			return 0, err
		}
		pe.VRF[in.Dst] = tmp
		pe.Stats.SSNRoutes++
		return 1, nil
	case VREDSUM:
		if err := checkSReg(in.Dst); err != nil {
			return 0, err
		}
		if err := checkVReg(in.A); err != nil {
			return 0, err
		}
		var sum uint16
		for _, v := range pe.VRF[in.A] {
			sum += v
		}
		pe.SRF[in.Dst] = sum
		pe.Stats.TreeOps++
		return 2, nil
	case VREDGRP:
		if err := checkVReg(in.Dst); err != nil {
			return 0, err
		}
		if err := checkVReg(in.A); err != nil {
			return 0, err
		}
		if in.Imm < 0 || in.Imm > 7 {
			return 0, fmt.Errorf("vredgrp group log2 %d outside [0, 7]", in.Imm)
		}
		group := 1 << in.Imm
		var out [Lanes]uint16
		for base := 0; base < Lanes; base += group {
			var sum uint16
			for l := base; l < base+group; l++ {
				sum += pe.VRF[in.A][l]
			}
			for l := base; l < base+group; l++ {
				out[l] = sum
			}
		}
		pe.VRF[in.Dst] = out
		pe.Stats.TreeOps++
		return 2, nil
	}

	// Lane-wise ALU/MULT forms.
	if err := checkVReg(in.Dst); err != nil {
		return 0, err
	}
	if err := checkVReg(in.A); err != nil {
		return 0, err
	}
	needB := false
	switch in.Op {
	case VADD, VSUB, VMUL, VMAC, VAND, VOR, VXOR, VMIN, VMAX, VCMPLT, VSEL:
		needB = true
	}
	if needB {
		if err := checkVReg(in.B); err != nil {
			return 0, err
		}
	}
	cost := 1
	for l := 0; l < Lanes; l++ {
		a := pe.VRF[in.A][l]
		var b uint16
		if needB {
			b = pe.VRF[in.B][l]
		}
		switch in.Op {
		case VADD:
			pe.VRF[in.Dst][l] = a + b
		case VSUB:
			pe.VRF[in.Dst][l] = a - b
		case VMUL:
			pe.VRF[in.Dst][l] = uint16(int16(a) * int16(b))
			cost = 2
		case VMAC:
			pe.VRF[in.Dst][l] += uint16(int16(a) * int16(b))
			cost = 2
		case VAND:
			pe.VRF[in.Dst][l] = a & b
		case VOR:
			pe.VRF[in.Dst][l] = a | b
		case VXOR:
			pe.VRF[in.Dst][l] = a ^ b
		case VSLL:
			pe.VRF[in.Dst][l] = a << uint(in.Imm&15)
		case VSRL:
			pe.VRF[in.Dst][l] = a >> uint(in.Imm&15)
		case VSRA:
			pe.VRF[in.Dst][l] = uint16(int16(a) >> uint(in.Imm&15))
		case VMIN:
			if int16(a) < int16(b) {
				pe.VRF[in.Dst][l] = a
			} else {
				pe.VRF[in.Dst][l] = b
			}
		case VMAX:
			if int16(a) > int16(b) {
				pe.VRF[in.Dst][l] = a
			} else {
				pe.VRF[in.Dst][l] = b
			}
		case VCMPLT:
			if int16(a) < int16(b) {
				pe.VRF[in.Dst][l] = 1
			} else {
				pe.VRF[in.Dst][l] = 0
			}
		case VSEL:
			if pe.VRF[in.Dst][l] != 0 {
				pe.VRF[in.Dst][l] = a
			} else {
				pe.VRF[in.Dst][l] = b
			}
		default:
			return 0, fmt.Errorf("unimplemented vector opcode %s", in.Op)
		}
	}
	return cost, nil
}

// execScalar executes one scalar instruction; it returns the cycle cost
// and the next pc (-1 means HALT).
func (pe *PE) execScalar(in Instruction, pc int) (cost, next int, err error) {
	mem := pe.Clock.memCycles()
	next = pc + 1
	switch in.Op {
	case SLI:
		if err := checkSReg(in.Dst); err != nil {
			return 0, 0, err
		}
		pe.SRF[in.Dst] = uint16(in.Imm)
		return 1, next, nil
	case SADD, SSUB, SMUL:
		if err := checkSReg(in.Dst); err != nil {
			return 0, 0, err
		}
		if err := checkSReg(in.A); err != nil {
			return 0, 0, err
		}
		if err := checkSReg(in.B); err != nil {
			return 0, 0, err
		}
		a, b := pe.SRF[in.A], pe.SRF[in.B]
		switch in.Op {
		case SADD:
			pe.SRF[in.Dst] = a + b
		case SSUB:
			pe.SRF[in.Dst] = a - b
		case SMUL:
			pe.SRF[in.Dst] = uint16(int16(a) * int16(b))
		}
		return 1, next, nil
	case SADDI:
		if err := checkSReg(in.Dst); err != nil {
			return 0, 0, err
		}
		if err := checkSReg(in.A); err != nil {
			return 0, 0, err
		}
		pe.SRF[in.Dst] = pe.SRF[in.A] + uint16(in.Imm)
		return 1, next, nil
	case SLD:
		if err := checkSReg(in.Dst); err != nil {
			return 0, 0, err
		}
		if err := checkSReg(in.A); err != nil {
			return 0, 0, err
		}
		addr := int(pe.SRF[in.A]) + in.Imm
		if addr < 0 || addr >= ScalarWords {
			return 0, 0, fmt.Errorf("scalar load address %d outside memory", addr)
		}
		pe.SRF[in.Dst] = pe.SMem[addr]
		return mem, next, nil
	case SST:
		if err := checkSReg(in.Dst); err != nil {
			return 0, 0, err
		}
		if err := checkSReg(in.A); err != nil {
			return 0, 0, err
		}
		addr := int(pe.SRF[in.A]) + in.Imm
		if addr < 0 || addr >= ScalarWords {
			return 0, 0, fmt.Errorf("scalar store address %d outside memory", addr)
		}
		pe.SMem[addr] = pe.SRF[in.Dst]
		return mem, next, nil
	case BNE, BLT:
		if err := checkSReg(in.A); err != nil {
			return 0, 0, err
		}
		if err := checkSReg(in.B); err != nil {
			return 0, 0, err
		}
		taken := false
		if in.Op == BNE {
			taken = pe.SRF[in.A] != pe.SRF[in.B]
		} else {
			taken = int16(pe.SRF[in.A]) < int16(pe.SRF[in.B])
		}
		if taken {
			next = in.Imm
		}
		return 1, next, nil
	case JMP:
		return 1, in.Imm, nil
	case NOP:
		return 1, next, nil
	case HALT:
		return 1, -1, nil
	default:
		return 0, 0, fmt.Errorf("unimplemented scalar opcode %s", in.Op)
	}
}
