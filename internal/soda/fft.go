package soda

import (
	"fmt"
	"math"
)

// FFT kernel: a 128-point radix-2 decimation-in-frequency complex FFT
// in Q6 fixed point, the canonical SODA-class signal workload. Every
// butterfly stage is expressed with the machine's real resources:
//
//   - the partner operand comes through the SSN with an XOR-mask
//     shuffle configuration (one slot per stage);
//   - the add/twiddle split between the low and high half of each
//     butterfly block is implemented with a preloaded 0/1 mask row and
//     VSEL;
//   - twiddle factors are preloaded memory rows (Q6), applied with
//     VMUL/VSRA complex arithmetic;
//   - the final bit-reversal is one more SSN configuration.
//
// Dynamic range: values grow by up to 2× per stage and the Q6 products
// must stay within int16, so inputs are validated to |x| ≤ fftMaxIn.
// The kernel's Check replays the identical wrapping integer arithmetic
// lane by lane; TestFFTMatchesDFT additionally verifies the output
// against a floating-point DFT within quantization tolerance.

const (
	fftStages = 7 // log2(128)
	fftQ      = 6 // twiddle fixed-point fraction bits
	fftOne    = 1 << fftQ
	// fftMaxIn bounds inputs so no intermediate Q6 product overflows:
	// |x| ≤ 3 grows to ≤ 3·2^7 = 384 and 384·64 = 24576 < 32767.
	fftMaxIn = 3

	// Memory layout (rows).
	fftReIn   = 0
	fftImIn   = 1
	fftReOut  = 8
	fftImOut  = 9
	fftMaskLo = 100 // 7 rows: stage masks
	fftWr     = 110 // 7 rows: twiddle real parts
	fftWi     = 120 // 7 rows: twiddle imaginary parts

	// SSN slots.
	fftSlotStage0 = 0 // …+s for stage s partner shuffles
	fftSlotBitrev = 7
)

// fftStageM returns the butterfly half-distance of stage s (DIF order:
// stage 0 pairs lanes 64 apart, stage 6 adjacent lanes).
func fftStageM(s int) int { return 64 >> s }

// fftTwiddles returns the Q6 twiddle rows for the stage with
// half-distance m: low lanes get the identity (1 + 0i), high lanes get
// W = exp(−iπ·t/m) with t the offset within the half-block.
func fftTwiddles(m int) (wr, wi [Lanes]uint16) {
	for j := 0; j < Lanes; j++ {
		if j&m == 0 {
			wr[j] = fftOne
			continue
		}
		t := j & (m - 1)
		ang := -math.Pi * float64(t) / float64(m)
		wr[j] = uint16(int16(math.Round(fftOne * math.Cos(ang))))
		wi[j] = uint16(int16(math.Round(fftOne * math.Sin(ang))))
	}
	return wr, wi
}

// fftXorConfig builds the SSN configuration out[j] = in[j ^ m].
func fftXorConfig(m int) []int {
	cfg := make([]int, Lanes)
	for j := range cfg {
		cfg[j] = j ^ m
	}
	return cfg
}

// fftBitrevConfig builds the 7-bit bit-reversal permutation.
func fftBitrevConfig() []int {
	cfg := make([]int, Lanes)
	for j := range cfg {
		r := 0
		for b := 0; b < fftStages; b++ {
			r = r<<1 | (j>>b)&1
		}
		cfg[j] = r
	}
	return cfg
}

// FFTKernel builds the 128-point FFT of the complex input (re, im).
// Inputs must satisfy |x| ≤ fftMaxIn as signed 16-bit values.
func FFTKernel(re, im []int16) Kernel {
	if len(re) != Lanes || len(im) != Lanes {
		panic("soda: FFTKernel needs 128-point complex input")
	}
	for i := range re {
		if re[i] < -fftMaxIn || re[i] > fftMaxIn || im[i] < -fftMaxIn || im[i] > fftMaxIn {
			panic(fmt.Sprintf("soda: FFTKernel input %d out of range ±%d", i, fftMaxIn))
		}
	}

	bld := NewBuilder()
	bld.SLi(1, fftReIn).VLoad(0, 1). // v0 = re
						SLi(1, fftImIn).VLoad(1, 1).   // v1 = im
						SLi(2, fftOne/2).VBcast(16, 2) // v16 = rounding constant
	for s := 0; s < fftStages; s++ {
		bld.SLi(1, fftMaskLo+s).VLoad(2, 1). // v2 = low-half mask
							SLi(1, fftWr+s).VLoad(3, 1).        // v3 = twiddle re
							SLi(1, fftWi+s).VLoad(4, 1).        // v4 = twiddle im
							VImm(VSHUF, 5, 0, fftSlotStage0+s). // v5 = re partner
							VImm(VSHUF, 6, 1, fftSlotStage0+s). // v6 = im partner
							V3(VADD, 7, 0, 5).                  // v7 = re sum (valid on low lanes)
							V3(VSUB, 8, 5, 0).                  // v8 = re diff (partner−self: A−B on high lanes)
							V3(VADD, 9, 1, 6).                  // v9 = im sum
							V3(VSUB, 10, 6, 1).                 // v10 = im diff
							V3(VMUL, 11, 8, 3).                 // dre·wr
							V3(VMUL, 12, 10, 4).                // dim·wi
							V3(VSUB, 11, 11, 12).
							V3(VADD, 11, 11, 16).     // round to nearest before the shift
							VImm(VSRA, 11, 11, fftQ). // v11 = twiddled re
							V3(VMUL, 12, 8, 4).       // dre·wi
							V3(VMUL, 13, 10, 3).      // dim·wr
							V3(VADD, 12, 12, 13).
							V3(VADD, 12, 12, 16).
							VImm(VSRA, 12, 12, fftQ). // v12 = twiddled im
							V3(VOR, 14, 2, 2).        // flags ← mask
							V3(VSEL, 14, 7, 11).      // v14 = mask ? sum : twiddled (re)
							V3(VOR, 15, 2, 2).
							V3(VSEL, 15, 9, 12). // v15 = (im)
							V3(VOR, 0, 14, 14).
							V3(VOR, 1, 15, 15)
	}
	// Bit-reverse to natural order and store.
	bld.VImm(VSHUF, 0, 0, fftSlotBitrev).
		VImm(VSHUF, 1, 1, fftSlotBitrev).
		SLi(1, fftReOut).VStore(0, 1).
		SLi(1, fftImOut).VStore(1, 1).
		Halt()

	return Kernel{
		Name:    "fft-128",
		Program: bld.MustProgram(),
		Setup: func(pe *PE) error {
			reRow := make([]uint16, Lanes)
			imRow := make([]uint16, Lanes)
			for i := range re {
				reRow[i] = uint16(re[i])
				imRow[i] = uint16(im[i])
			}
			if err := pe.Mem.WriteRow(fftReIn, reRow); err != nil {
				return err
			}
			if err := pe.Mem.WriteRow(fftImIn, imRow); err != nil {
				return err
			}
			for s := 0; s < fftStages; s++ {
				m := fftStageM(s)
				var mask [Lanes]uint16
				for j := range mask {
					if j&m == 0 {
						mask[j] = 1
					}
				}
				if err := pe.Mem.WriteRow(fftMaskLo+s, mask[:]); err != nil {
					return err
				}
				wr, wi := fftTwiddles(m)
				if err := pe.Mem.WriteRow(fftWr+s, wr[:]); err != nil {
					return err
				}
				if err := pe.Mem.WriteRow(fftWi+s, wi[:]); err != nil {
					return err
				}
				if err := pe.SSN.Store(fftSlotStage0+s, fftXorConfig(m)); err != nil {
					return err
				}
			}
			return pe.SSN.Store(fftSlotBitrev, fftBitrevConfig())
		},
		Check: func(pe *PE) error {
			wantRe, wantIm := fftGolden(re, im)
			if err := expectRow(pe, fftReOut, wantRe); err != nil {
				return fmt.Errorf("re: %w", err)
			}
			if err := expectRow(pe, fftImOut, wantIm); err != nil {
				return fmt.Errorf("im: %w", err)
			}
			return nil
		},
	}
}

// fftGolden replays the kernel's integer arithmetic lane by lane — the
// same wrapping 16-bit operations the PE performs — so Check is exact.
func fftGolden(re, im []int16) (outRe, outIm []uint16) {
	r := make([]int16, Lanes)
	m16 := make([]int16, Lanes)
	copy(r, re)
	copy(m16, im)
	for s := 0; s < fftStages; s++ {
		m := fftStageM(s)
		wr, wi := fftTwiddles(m)
		nr := make([]int16, Lanes)
		ni := make([]int16, Lanes)
		for j := 0; j < Lanes; j++ {
			p := j ^ m
			if j&m == 0 {
				nr[j] = r[j] + r[p]
				ni[j] = m16[j] + m16[p]
			} else {
				dre := r[p] - r[j]
				dim := m16[p] - m16[j]
				twr, twi := int16(wr[j]), int16(wi[j])
				nr[j] = (dre*twr - dim*twi + fftOne/2) >> fftQ
				ni[j] = (dre*twi + dim*twr + fftOne/2) >> fftQ
			}
		}
		copy(r, nr)
		copy(m16, ni)
	}
	outRe = make([]uint16, Lanes)
	outIm = make([]uint16, Lanes)
	cfg := fftBitrevConfig()
	for j := 0; j < Lanes; j++ {
		outRe[j] = uint16(r[cfg[j]])
		outIm[j] = uint16(m16[cfg[j]])
	}
	return outRe, outIm
}
