package soda

import "fmt"

// AGU models one of the four address-generation-unit pipelines of the
// Diet SODA PE (Appendix B, block 6): each SIMD memory bank has a
// dedicated AGU holding a current row pointer and a post-increment
// stride, so the four banks can stream different rows — the mechanism
// behind two-dimensional block access.
type AGU struct {
	Row    int // current row pointer
	Stride int // post-increment applied after each banked access
}

// aguCount is one AGU per memory bank.
const aguCount = Banks

// The AGU-related opcodes extend the scalar ISA (they execute in the
// full-voltage domain alongside the memory system).
const (
	// SAGU b: configure AGU b (Imm) from scalar registers: row ← S[A],
	// stride ← S[B].
	SAGU Opcode = iota + 96
	// VLOADB Vd: banked vector load; bank b supplies its 32 lanes from
	// its own AGU's current row, then every AGU post-increments.
	VLOADB
	// VSTOREB Vs: banked vector store, the symmetric write.
	VSTOREB
)

// ReadRowPerBank reads lane groups from per-bank rows: bank b supplies
// dst[b·32 … b·32+31] from rows[b].
func (m *SIMDMemory) ReadRowPerBank(rows [Banks]int, dst []uint16) error {
	if len(dst) != Lanes {
		return fmt.Errorf("soda: ReadRowPerBank dst length %d, want %d", len(dst), Lanes)
	}
	for b := 0; b < Banks; b++ {
		if err := checkRow(rows[b]); err != nil {
			return fmt.Errorf("bank %d: %w", b, err)
		}
	}
	for b := 0; b < Banks; b++ {
		copy(dst[b*BankLanes:(b+1)*BankLanes], m.banks[b][rows[b]][:])
	}
	m.rowReads++
	return nil
}

// WriteRowPerBank writes lane groups to per-bank rows.
func (m *SIMDMemory) WriteRowPerBank(rows [Banks]int, src []uint16) error {
	if len(src) != Lanes {
		return fmt.Errorf("soda: WriteRowPerBank src length %d, want %d", len(src), Lanes)
	}
	for b := 0; b < Banks; b++ {
		if err := checkRow(rows[b]); err != nil {
			return fmt.Errorf("bank %d: %w", b, err)
		}
	}
	for b := 0; b < Banks; b++ {
		copy(m.banks[b][rows[b]][:], src[b*BankLanes:(b+1)*BankLanes])
	}
	m.rowWrites++
	return nil
}

// execAGU handles the AGU opcode family; called from the PE dispatcher.
// It returns the cycle cost.
func (pe *PE) execAGU(in Instruction) (int, error) {
	mem := pe.Clock.memCycles()
	switch in.Op {
	case SAGU:
		if in.Imm < 0 || in.Imm >= aguCount {
			return 0, fmt.Errorf("sagu unit %d outside [0, %d)", in.Imm, aguCount)
		}
		if err := checkSReg(in.A); err != nil {
			return 0, err
		}
		if err := checkSReg(in.B); err != nil {
			return 0, err
		}
		pe.AGUs[in.Imm] = AGU{
			Row:    int(pe.SRF[in.A]),
			Stride: int(int16(pe.SRF[in.B])),
		}
		return 1, nil
	case VLOADB:
		if err := checkVReg(in.Dst); err != nil {
			return 0, err
		}
		var rows [Banks]int
		for b := range rows {
			rows[b] = pe.AGUs[b].Row
		}
		if err := pe.Mem.ReadRowPerBank(rows, pe.VRF[in.Dst][:]); err != nil {
			return 0, err
		}
		pe.bumpAGUs()
		pe.Stats.MemRowOps++
		return mem, nil
	case VSTOREB:
		if err := checkVReg(in.Dst); err != nil {
			return 0, err
		}
		var rows [Banks]int
		for b := range rows {
			rows[b] = pe.AGUs[b].Row
		}
		if err := pe.Mem.WriteRowPerBank(rows, pe.VRF[in.Dst][:]); err != nil {
			return 0, err
		}
		pe.bumpAGUs()
		pe.Stats.MemRowOps++
		return mem, nil
	default:
		return 0, fmt.Errorf("unimplemented AGU opcode %s", in.Op)
	}
}

// bumpAGUs applies every AGU's post-increment.
func (pe *PE) bumpAGUs() {
	for b := range pe.AGUs {
		pe.AGUs[b].Row += pe.AGUs[b].Stride
	}
}
