package soda

import "fmt"

// SIMDMemory is the PE's 64 KB multi-banked vector memory: four banks,
// each 32 lanes wide × 256 rows of 16-bit words. A full 128-wide row r
// spans all four banks at the same row index; the per-bank AGU pipelines
// also allow each bank to fetch a different row, which is what the data
// prefetcher uses for strided and two-dimensional access.
type SIMDMemory struct {
	banks [Banks][BankRows][BankLanes]uint16

	// Access accounting (full-voltage domain activity).
	rowReads  int
	rowWrites int
}

// NewSIMDMemory returns a zeroed memory.
func NewSIMDMemory() *SIMDMemory { return &SIMDMemory{} }

// checkRow validates a row index.
func checkRow(row int) error {
	if row < 0 || row >= BankRows {
		return fmt.Errorf("soda: row %d outside [0, %d)", row, BankRows)
	}
	return nil
}

// ReadRow reads the 128-wide row at the same index in all four banks
// into dst (length Lanes).
func (m *SIMDMemory) ReadRow(row int, dst []uint16) error {
	if err := checkRow(row); err != nil {
		return err
	}
	if len(dst) != Lanes {
		return fmt.Errorf("soda: ReadRow dst length %d, want %d", len(dst), Lanes)
	}
	for b := 0; b < Banks; b++ {
		copy(dst[b*BankLanes:(b+1)*BankLanes], m.banks[b][row][:])
	}
	m.rowReads++
	return nil
}

// WriteRow writes the 128-wide row at the same index in all four banks.
func (m *SIMDMemory) WriteRow(row int, src []uint16) error {
	if err := checkRow(row); err != nil {
		return err
	}
	if len(src) != Lanes {
		return fmt.Errorf("soda: WriteRow src length %d, want %d", len(src), Lanes)
	}
	for b := 0; b < Banks; b++ {
		copy(m.banks[b][row][:], src[b*BankLanes:(b+1)*BankLanes])
	}
	m.rowWrites++
	return nil
}

// ReadElem reads one 16-bit element by flat element address
// (row·Lanes + lane).
func (m *SIMDMemory) ReadElem(addr int) (uint16, error) {
	row, lane := addr/Lanes, addr%Lanes
	if addr < 0 || row >= BankRows {
		return 0, fmt.Errorf("soda: element address %d outside memory", addr)
	}
	return m.banks[lane/BankLanes][row][lane%BankLanes], nil
}

// WriteElem writes one 16-bit element by flat element address.
func (m *SIMDMemory) WriteElem(addr int, v uint16) error {
	row, lane := addr/Lanes, addr%Lanes
	if addr < 0 || row >= BankRows {
		return fmt.Errorf("soda: element address %d outside memory", addr)
	}
	m.banks[lane/BankLanes][row][lane%BankLanes] = v
	return nil
}

// LoadSlice bulk-writes words starting at a flat element address —
// a testbench convenience for staging kernel inputs.
func (m *SIMDMemory) LoadSlice(addr int, words []uint16) error {
	for i, w := range words {
		if err := m.WriteElem(addr+i, w); err != nil {
			return err
		}
	}
	return nil
}

// ReadSlice bulk-reads n words starting at a flat element address.
func (m *SIMDMemory) ReadSlice(addr, n int) ([]uint16, error) {
	out := make([]uint16, n)
	for i := range out {
		w, err := m.ReadElem(addr + i)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}

// Gather implements the data prefetcher: it assembles a 128-wide vector
// from element addresses base, base+stride, base+2·stride, …, using the
// 128-wide prefetch buffer and the alignment crossbar. It returns the
// gathered vector and the number of distinct memory rows touched — each
// distinct row costs one full-voltage memory access, which is how the
// prefetcher's cycle cost is charged by the PE.
func (m *SIMDMemory) Gather(base, stride int, dst []uint16) (rowsTouched int, err error) {
	if len(dst) != Lanes {
		return 0, fmt.Errorf("soda: Gather dst length %d, want %d", len(dst), Lanes)
	}
	seen := make(map[int]bool)
	for k := 0; k < Lanes; k++ {
		addr := base + k*stride
		w, err := m.ReadElem(addr)
		if err != nil {
			return 0, fmt.Errorf("soda: Gather lane %d: %w", k, err)
		}
		dst[k] = w
		seen[addr/Lanes] = true
	}
	m.rowReads += len(seen)
	return len(seen), nil
}

// Stats returns cumulative full-row read and write counts (gathers count
// one read per distinct row touched).
func (m *SIMDMemory) Stats() (rowReads, rowWrites int) {
	return m.rowReads, m.rowWrites
}
