package soda

import (
	"testing"

	"github.com/ntvsim/ntvsim/internal/rng"
)

func benchKernel(b *testing.B, k Kernel) {
	b.Helper()
	pe := NewPE()
	if err := k.Setup(pe); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pe.Reset()
		if err := pe.Run(k.Program, DefaultCycleBudget); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := k.Check(pe); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFIR8(b *testing.B) {
	r := rng.New(1)
	benchKernel(b, FIRKernel(randVec(r, Lanes, 256), []int16{1, 2, 3, 4, 5, 6, 7, 8}))
}

func BenchmarkDot16Rows(b *testing.B) {
	r := rng.New(2)
	benchKernel(b, DotProductKernel(randVec(r, 16*Lanes, 512), randVec(r, 16*Lanes, 512)))
}

func BenchmarkYCbCr(b *testing.B) {
	r := rng.New(3)
	benchKernel(b, RGBToYCbCrKernel(randVec(r, Lanes, 256), randVec(r, Lanes, 256), randVec(r, Lanes, 256)))
}

func BenchmarkVectorAdd(b *testing.B) {
	pe := NewPE()
	prog := []Instruction{{Op: VADD, Dst: 0, A: 1, B: 2}, {Op: HALT}}
	for i := 0; i < b.N; i++ {
		pe.Reset()
		if err := pe.Run(prog, 10); err != nil {
			b.Fatal(err)
		}
	}
}
