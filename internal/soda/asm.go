package soda

import "fmt"

// Builder assembles programs with symbolic labels, so kernels read like
// assembly listings. Branch targets may be referenced before they are
// defined; Program resolves them and reports dangling labels.
type Builder struct {
	ins    []Instruction
	labels map[string]int
	fixups map[int]string // instruction index → unresolved label
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder {
	return &Builder{
		labels: make(map[string]int),
		fixups: make(map[int]string),
	}
}

// Label defines a label at the current position.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("soda: duplicate label %q", name))
	}
	b.labels[name] = len(b.ins)
	return b
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in Instruction) *Builder {
	b.ins = append(b.ins, in)
	return b
}

// V3 emits a three-register vector instruction (vadd, vmul, …).
func (b *Builder) V3(op Opcode, dst, a, c int) *Builder {
	return b.Emit(Instruction{Op: op, Dst: dst, A: a, B: c})
}

// VImm emits a vector instruction with an immediate (shifts, vshuf,
// vredgrp).
func (b *Builder) VImm(op Opcode, dst, a, imm int) *Builder {
	return b.Emit(Instruction{Op: op, Dst: dst, A: a, Imm: imm})
}

// VLoad emits vload vd, (sa).
func (b *Builder) VLoad(vd, sa int) *Builder {
	return b.Emit(Instruction{Op: VLOAD, Dst: vd, A: sa})
}

// VStore emits vstore vs, (sa).
func (b *Builder) VStore(vs, sa int) *Builder {
	return b.Emit(Instruction{Op: VSTORE, Dst: vs, A: sa})
}

// VBcast emits vbcast vd, sa.
func (b *Builder) VBcast(vd, sa int) *Builder {
	return b.Emit(Instruction{Op: VBCAST, Dst: vd, A: sa})
}

// VRedSum emits vredsum sd, va.
func (b *Builder) VRedSum(sd, va int) *Builder {
	return b.Emit(Instruction{Op: VREDSUM, Dst: sd, A: va})
}

// SLi emits sli sd, imm.
func (b *Builder) SLi(sd, imm int) *Builder {
	return b.Emit(Instruction{Op: SLI, Dst: sd, Imm: imm})
}

// S3 emits a three-register scalar instruction.
func (b *Builder) S3(op Opcode, dst, a, c int) *Builder {
	return b.Emit(Instruction{Op: op, Dst: dst, A: a, B: c})
}

// SAddI emits saddi sd, sa, imm.
func (b *Builder) SAddI(sd, sa, imm int) *Builder {
	return b.Emit(Instruction{Op: SADDI, Dst: sd, A: sa, Imm: imm})
}

// SLoad emits sld sd, (sa+imm).
func (b *Builder) SLoad(sd, sa, imm int) *Builder {
	return b.Emit(Instruction{Op: SLD, Dst: sd, A: sa, Imm: imm})
}

// SStore emits sst ss, (sa+imm).
func (b *Builder) SStore(ss, sa, imm int) *Builder {
	return b.Emit(Instruction{Op: SST, Dst: ss, A: sa, Imm: imm})
}

// Branch emits bne/blt sa, sb, label.
func (b *Builder) Branch(op Opcode, sa, sb int, label string) *Builder {
	b.fixups[len(b.ins)] = label
	return b.Emit(Instruction{Op: op, A: sa, B: sb})
}

// Jmp emits jmp label.
func (b *Builder) Jmp(label string) *Builder {
	b.fixups[len(b.ins)] = label
	return b.Emit(Instruction{Op: JMP})
}

// Halt emits halt.
func (b *Builder) Halt() *Builder { return b.Emit(Instruction{Op: HALT}) }

// Program resolves labels and returns the finished instruction slice.
func (b *Builder) Program() ([]Instruction, error) {
	out := append([]Instruction(nil), b.ins...)
	for idx, label := range b.fixups {
		target, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("soda: undefined label %q at instruction %d", label, idx)
		}
		out[idx].Imm = target
	}
	return out, nil
}

// MustProgram is Program panicking on unresolved labels; for use in
// statically known-correct kernels.
func (b *Builder) MustProgram() []Instruction {
	p, err := b.Program()
	if err != nil {
		panic(err)
	}
	return p
}
