package soda

import (
	"strings"
	"testing"

	"github.com/ntvsim/ntvsim/internal/rng"
	"github.com/ntvsim/ntvsim/internal/xram"
)

// runProg executes a program on a fresh PE and returns it.
func runProg(t *testing.T, prog []Instruction) *PE {
	t.Helper()
	pe := NewPE()
	if err := pe.Run(prog, DefaultCycleBudget); err != nil {
		t.Fatal(err)
	}
	return pe
}

// vecOp runs op on two staged vector registers and returns the PE.
func vecOp(t *testing.T, op Opcode, a, b []uint16, imm int) *PE {
	t.Helper()
	pe := NewPE()
	copy(pe.VRF[1][:], a)
	copy(pe.VRF[2][:], b)
	prog := []Instruction{
		{Op: op, Dst: 0, A: 1, B: 2, Imm: imm},
		{Op: HALT},
	}
	if err := pe.Run(prog, 100); err != nil {
		t.Fatal(err)
	}
	return pe
}

func lanesOf(vals ...uint16) []uint16 {
	out := make([]uint16, Lanes)
	for i := range out {
		out[i] = vals[i%len(vals)]
	}
	return out
}

func TestVectorALUSemantics(t *testing.T) {
	a := lanesOf(7, 0xFFFF, 100) // 7, -1, 100
	b := lanesOf(3, 2, 0xFF9C)   // 3, 2, -100
	cases := []struct {
		op   Opcode
		imm  int
		want [3]uint16 // expected lane values at positions 0,1,2
	}{
		{VADD, 0, [3]uint16{10, 1, 0}},
		{VSUB, 0, [3]uint16{4, 0xFFFD, 200}},
		{VMUL, 0, [3]uint16{21, 0xFFFE, 0xD8F0}}, // 100·(−100) = −10000 ≡ 0xD8F0
		{VAND, 0, [3]uint16{3, 2, 100 & 0xFF9C}},
		{VOR, 0, [3]uint16{7, 0xFFFF, 100 | 0xFF9C}},
		{VXOR, 0, [3]uint16{4, 0xFFFD, 100 ^ 0xFF9C}},
		{VMIN, 0, [3]uint16{3, 0xFFFF, 0xFF9C}}, // signed mins
		{VMAX, 0, [3]uint16{7, 2, 100}},
		{VCMPLT, 0, [3]uint16{0, 1, 0}},
	}
	for _, c := range cases {
		pe := vecOp(t, c.op, a, b, c.imm)
		for i, want := range c.want {
			if got := pe.VRF[0][i]; got != want {
				t.Errorf("%v lane %d = %#x, want %#x", c.op, i, got, want)
			}
		}
	}
}

func TestVectorShifts(t *testing.T) {
	a := lanesOf(0x8001)
	pe := vecOp(t, VSLL, a, nil, 1)
	if pe.VRF[0][0] != 0x0002 {
		t.Errorf("vsll = %#x", pe.VRF[0][0])
	}
	pe = vecOp(t, VSRL, a, nil, 1)
	if pe.VRF[0][0] != 0x4000 {
		t.Errorf("vsrl = %#x", pe.VRF[0][0])
	}
	pe = vecOp(t, VSRA, a, nil, 1)
	if pe.VRF[0][0] != 0xC000 { // arithmetic shift keeps sign
		t.Errorf("vsra = %#x", pe.VRF[0][0])
	}
}

func TestVMACAccumulates(t *testing.T) {
	pe := NewPE()
	copy(pe.VRF[1][:], lanesOf(3))
	copy(pe.VRF[2][:], lanesOf(4))
	prog := []Instruction{
		{Op: VXOR, Dst: 0, A: 0, B: 0}, // clear
		{Op: VMAC, Dst: 0, A: 1, B: 2},
		{Op: VMAC, Dst: 0, A: 1, B: 2},
		{Op: HALT},
	}
	if err := pe.Run(prog, 100); err != nil {
		t.Fatal(err)
	}
	if pe.VRF[0][5] != 24 {
		t.Errorf("double MAC = %d, want 24", pe.VRF[0][5])
	}
}

func TestVSELPicksByFlag(t *testing.T) {
	pe := NewPE()
	copy(pe.VRF[1][:], lanesOf(100)) // taken value
	copy(pe.VRF[2][:], lanesOf(200)) // else value
	copy(pe.VRF[0][:], lanesOf(1, 0))
	prog := []Instruction{{Op: VSEL, Dst: 0, A: 1, B: 2}, {Op: HALT}}
	if err := pe.Run(prog, 10); err != nil {
		t.Fatal(err)
	}
	if pe.VRF[0][0] != 100 || pe.VRF[0][1] != 200 {
		t.Errorf("vsel lanes = %d, %d", pe.VRF[0][0], pe.VRF[0][1])
	}
}

func TestVBcastAndReduce(t *testing.T) {
	b := NewBuilder()
	b.SLi(1, 21).
		VBcast(0, 1).
		VRedSum(2, 0).
		Halt()
	pe := runProg(t, b.MustProgram())
	if pe.VRF[0][127] != 21 {
		t.Error("broadcast missed lane 127")
	}
	if got := pe.SRF[2]; got != 21*Lanes {
		t.Errorf("redsum = %d, want %d", got, 21*Lanes)
	}
	if pe.Stats.TreeOps != 1 {
		t.Error("tree op not counted")
	}
}

func TestVREDGRPSegments(t *testing.T) {
	pe := NewPE()
	for l := 0; l < Lanes; l++ {
		pe.VRF[1][l] = 1
	}
	prog := []Instruction{{Op: VREDGRP, Dst: 0, A: 1, Imm: 3}, {Op: HALT}} // groups of 8
	if err := pe.Run(prog, 10); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < Lanes; l++ {
		if pe.VRF[0][l] != 8 {
			t.Fatalf("lane %d segment sum = %d, want 8", l, pe.VRF[0][l])
		}
	}
	bad := []Instruction{{Op: VREDGRP, Dst: 0, A: 1, Imm: 9}, {Op: HALT}}
	if err := NewPE().Run(bad, 10); err == nil {
		t.Error("group log2 9 accepted")
	}
}

func TestVSHUFUsesStoredConfig(t *testing.T) {
	pe := NewPE()
	if err := pe.SSN.Store(3, xram.Reverse(Lanes)); err != nil {
		t.Fatal(err)
	}
	for l := 0; l < Lanes; l++ {
		pe.VRF[1][l] = uint16(l)
	}
	prog := []Instruction{{Op: VSHUF, Dst: 0, A: 1, Imm: 3}, {Op: HALT}}
	if err := pe.Run(prog, 10); err != nil {
		t.Fatal(err)
	}
	if pe.VRF[0][0] != 127 || pe.VRF[0][127] != 0 {
		t.Error("reverse shuffle wrong")
	}
	if pe.Stats.SSNRoutes != 1 {
		t.Error("SSN route not counted")
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	b := NewBuilder()
	b.SLi(1, 9).
		SLi(2, 10).
		VLoad(0, 1).
		VStore(0, 2).
		Halt()
	pe := NewPE()
	row := lanesOf(3, 1, 4, 1, 5)
	if err := pe.Mem.WriteRow(9, row); err != nil {
		t.Fatal(err)
	}
	prog := b.MustProgram()
	if err := pe.Run(prog, 100); err != nil {
		t.Fatal(err)
	}
	got := make([]uint16, Lanes)
	if err := pe.Mem.ReadRow(10, got); err != nil {
		t.Fatal(err)
	}
	for i := range row {
		if got[i] != row[i] {
			t.Fatal("store mismatch")
		}
	}
	if pe.Stats.MemRowOps != 2 {
		t.Errorf("mem row ops = %d", pe.Stats.MemRowOps)
	}
}

func TestScalarLoop(t *testing.T) {
	// Sum 1..10 with a scalar loop.
	b := NewBuilder()
	b.SLi(1, 0). // acc
			SLi(2, 0).  // i
			SLi(3, 10). // limit
			Label("loop").
			SAddI(2, 2, 1).
			S3(SADD, 1, 1, 2).
			Branch(BNE, 2, 3, "loop").
			Halt()
	pe := runProg(t, b.MustProgram())
	if pe.SRF[1] != 55 {
		t.Errorf("sum = %d, want 55", pe.SRF[1])
	}
}

func TestScalarMemory(t *testing.T) {
	b := NewBuilder()
	b.SLi(1, 100). // address
			SLi(2, 777).
			SStore(2, 1, 5). // mem[105] = 777
			SLoad(3, 1, 5).
			Halt()
	pe := runProg(t, b.MustProgram())
	if pe.SMem[105] != 777 || pe.SRF[3] != 777 {
		t.Error("scalar memory round trip failed")
	}
}

func TestBLTSigned(t *testing.T) {
	b := NewBuilder()
	b.SLi(1, -5&0xFFFF).
		SLi(2, 3).
		SLi(3, 0).
		Branch(BLT, 1, 2, "less").
		SLi(3, 1). // not taken path
		Halt().
		Label("less").
		SLi(3, 2).
		Halt()
	pe := runProg(t, b.MustProgram())
	if pe.SRF[3] != 2 {
		t.Errorf("signed BLT not taken: s3 = %d", pe.SRF[3])
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		prog []Instruction
	}{
		{"bad vreg", []Instruction{{Op: VADD, Dst: 40, A: 0, B: 0}}},
		{"bad sreg", []Instruction{{Op: SLI, Dst: 20, Imm: 1}}},
		{"bad row", []Instruction{{Op: SLI, Dst: 1, Imm: 300}, {Op: VLOAD, Dst: 0, A: 1}}},
		{"bad scalar addr", []Instruction{{Op: SLI, Dst: 1, Imm: 3000}, {Op: SLD, Dst: 0, A: 1}}},
		{"bad shuffle slot", []Instruction{{Op: VSHUF, Dst: 0, A: 0, Imm: 99}}},
	}
	for _, c := range cases {
		pe := NewPE()
		if err := pe.Run(c.prog, 100); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

func TestCycleBudgetOverrun(t *testing.T) {
	b := NewBuilder()
	b.Label("spin").Jmp("spin")
	pe := NewPE()
	err := pe.Run(b.MustProgram(), 50)
	if err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("infinite loop not caught: %v", err)
	}
}

func TestClockRatioChangesMemoryCost(t *testing.T) {
	prog := NewBuilder().SLi(1, 0).VLoad(0, 1).Halt().MustProgram()
	slow := NewPE()
	slow.Clock = ClockConfig{MemLatency: 4, ClockRatio: 1}
	if err := slow.Run(prog, 100); err != nil {
		t.Fatal(err)
	}
	fast := NewPE()
	fast.Clock = ClockConfig{MemLatency: 4, ClockRatio: 4} // NTV SIMD clock
	if err := fast.Run(prog, 100); err != nil {
		t.Fatal(err)
	}
	if slow.Stats.Cycles <= fast.Stats.Cycles {
		t.Errorf("memory at ratio 1 (%d cycles) should cost more SIMD cycles than ratio 4 (%d)",
			slow.Stats.Cycles, fast.Stats.Cycles)
	}
}

func TestErrorModelInjection(t *testing.T) {
	pe := NewPE()
	pe.Err = fixedPenalty{cycles: 3, errs: 2}
	pe.Rand = rng.New(1)
	prog := NewBuilder().V3(VADD, 0, 0, 0).V3(VADD, 0, 0, 0).Halt().MustProgram()
	if err := pe.Run(prog, 100); err != nil {
		t.Fatal(err)
	}
	if pe.Stats.TimingErrors != 4 || pe.Stats.RecoveryStall != 6 {
		t.Errorf("error stats = %+v", pe.Stats)
	}
	// Cycles: 2 vadds (1+3 each) + halt = 9.
	if pe.Stats.Cycles != 9 {
		t.Errorf("cycles = %d, want 9", pe.Stats.Cycles)
	}
}

type fixedPenalty struct{ cycles, errs int }

func (f fixedPenalty) Penalty(*rng.Stream) (int, int) { return f.cycles, f.errs }

func TestReset(t *testing.T) {
	pe := NewPE()
	pe.VRF[0][0] = 9
	pe.SRF[1] = 9
	pe.Stats.Cycles = 100
	if err := pe.Mem.WriteElem(0, 55); err != nil {
		t.Fatal(err)
	}
	pe.Reset()
	if pe.VRF[0][0] != 0 || pe.SRF[1] != 0 || pe.Stats.Cycles != 0 {
		t.Error("Reset did not clear registers/stats")
	}
	if v, _ := pe.Mem.ReadElem(0); v != 55 {
		t.Error("Reset should preserve memory")
	}
}

func TestIPC(t *testing.T) {
	s := Stats{Cycles: 10, Instructions: 5}
	if s.IPC() != 0.5 {
		t.Errorf("IPC = %v", s.IPC())
	}
	if (Stats{}).IPC() != 0 {
		t.Error("IPC of empty stats should be 0")
	}
}
