// Package soda is a cycle-based functional simulator of one Diet SODA
// processing element (Seo et al., ISLPED'10 — the paper's Appendix B):
// a 128-wide 16-bit SIMD pipeline with a 32-entry vector register file,
// 128 ALU+MULT functional units, a 128×128 XRAM shuffle network and a
// multi-output adder tree; a 64 KB four-bank SIMD memory with per-bank
// AGU pipelines and a 2-D-capable data prefetcher; a 4 KB scalar memory;
// and a 16-bit scalar pipeline — split across a full-voltage domain
// (memory system) and a dual-voltage domain (SIMD datapath) that can run
// at near-threshold voltage.
//
// The simulator executes real kernels (FIR, dot product, color-space
// conversion, 2-D tiles) and exposes the timing hooks used by
// internal/timingerr to study variation-induced timing errors and
// recovery policies on a wide SIMD machine.
package soda

import "fmt"

// Machine dimensions, from the paper's Appendix B.
const (
	Lanes       = 128  // SIMD width
	VRegs       = 32   // SIMD register file entries
	SRegs       = 16   // scalar register file entries
	Banks       = 4    // SIMD memory banks
	BankLanes   = 32   // lanes per bank (Lanes / Banks)
	BankRows    = 256  // 16-bit rows per bank lane → 16 KB per bank
	ScalarWords = 2048 // 4 KB scalar memory of 16-bit words
)

// Opcode enumerates the instruction set. It is deliberately small but
// complete enough to express the signal-processing kernels the paper's
// introduction motivates.
type Opcode int

// Vector opcodes execute on the 128-wide SIMD pipeline (DV domain).
const (
	// VLOAD Vd, (Sa): load the 128-wide row addressed by scalar Sa.
	VLOAD Opcode = iota
	// VSTORE Vs, (Sa): store the 128-wide row addressed by scalar Sa.
	VSTORE
	// VADD Vd, Va, Vb — lane-wise 16-bit addition (wrapping).
	VADD
	// VSUB Vd, Va, Vb — lane-wise subtraction.
	VSUB
	// VMUL Vd, Va, Vb — lane-wise low-half product.
	VMUL
	// VMAC Vd, Va, Vb — Vd += Va·Vb (multiply-accumulate).
	VMAC
	// VAND, VOR, VXOR — lane-wise bitwise logic.
	VAND
	VOR
	VXOR
	// VSLL, VSRL, VSRA Vd, Va, imm — lane-wise shifts by immediate.
	VSLL
	VSRL
	VSRA
	// VMIN, VMAX Vd, Va, Vb — lane-wise signed min/max.
	VMIN
	VMAX
	// VCMPLT Vd, Va, Vb — lane-wise 1/0 flag Va < Vb (signed).
	VCMPLT
	// VSEL Vd, Va, Vb with flags in Vd: lane-wise Vd = flag ? Va : Vb.
	VSEL
	// VBCAST Vd, Sa — broadcast scalar register into all lanes.
	VBCAST
	// VSHUF Vd, Va, slot — route Va through SSN configuration slot imm.
	VSHUF
	// VREDSUM Sd, Va — adder-tree reduction of all lanes into scalar Sd
	// (low 16 bits of the sum; the tree provides multi-output partial
	// sums in silicon, modeled by VREDGRP).
	VREDSUM
	// VREDGRP Vd, Va, imm — adder tree partial sums: lanes are grouped
	// into 2^imm-lane segments; each lane of Vd receives its segment sum
	// (the multi-output adder tree of Appendix B).
	VREDGRP
	// VGATHER Vd, Sa, Sb — prefetcher gather: lane k of Vd receives the
	// memory element at flat address Sa + k·Sb (base and stride in
	// scalar registers). Used for strided and 2-D access patterns.
	VGATHER
)

// Scalar opcodes execute on the scalar pipeline.
const (
	// SLI Sd, imm — load immediate.
	SLI Opcode = iota + 64
	// SADD, SSUB, SMUL Sd, Sa, Sb.
	SADD
	SSUB
	SMUL
	// SADDI Sd, Sa, imm.
	SADDI
	// SLD Sd, (Sa+imm) — scalar memory load.
	SLD
	// SST Ss, (Sa+imm) — scalar memory store.
	SST
	// BNE Sa, Sb, label — branch if not equal.
	BNE
	// BLT Sa, Sb, label — branch if signed less-than.
	BLT
	// JMP label.
	JMP
	// HALT stops the program.
	HALT
	// NOP idles one cycle.
	NOP
)

// IsVector reports whether the opcode executes on the SIMD pipeline.
func (op Opcode) IsVector() bool { return op < 64 }

var opNames = map[Opcode]string{
	VLOAD: "vload", VSTORE: "vstore", VADD: "vadd", VSUB: "vsub",
	VMUL: "vmul", VMAC: "vmac", VAND: "vand", VOR: "vor", VXOR: "vxor",
	VSLL: "vsll", VSRL: "vsrl", VSRA: "vsra", VMIN: "vmin", VMAX: "vmax",
	VCMPLT: "vcmplt", VSEL: "vsel", VBCAST: "vbcast", VSHUF: "vshuf",
	VREDSUM: "vredsum", VREDGRP: "vredgrp", VGATHER: "vgather",
	SLI: "sli", SADD: "sadd", SSUB: "ssub", SMUL: "smul", SADDI: "saddi",
	SLD: "sld", SST: "sst", BNE: "bne", BLT: "blt", JMP: "jmp",
	HALT: "halt", NOP: "nop",
	SAGU: "sagu", VLOADB: "vloadb", VSTOREB: "vstoreb",
}

// String returns the mnemonic.
func (op Opcode) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// Instruction is one decoded operation. Field use depends on the opcode:
// Dst/A/B index the vector or scalar register file as appropriate, Imm
// carries immediates, shift amounts, SSN slots and branch targets.
type Instruction struct {
	Op  Opcode
	Dst int
	A   int
	B   int
	Imm int
}

// String disassembles the instruction.
func (in Instruction) String() string {
	switch in.Op {
	case VLOAD:
		return fmt.Sprintf("vload v%d, (s%d)", in.Dst, in.A)
	case VSTORE:
		return fmt.Sprintf("vstore v%d, (s%d)", in.Dst, in.A)
	case VSLL, VSRL, VSRA, VSHUF, VREDGRP:
		return fmt.Sprintf("%s v%d, v%d, %d", in.Op, in.Dst, in.A, in.Imm)
	case VBCAST:
		return fmt.Sprintf("vbcast v%d, s%d", in.Dst, in.A)
	case VGATHER:
		return fmt.Sprintf("vgather v%d, s%d, s%d", in.Dst, in.A, in.B)
	case VREDSUM:
		return fmt.Sprintf("vredsum s%d, v%d", in.Dst, in.A)
	case SLI:
		return fmt.Sprintf("sli s%d, %d", in.Dst, in.Imm)
	case SADDI:
		return fmt.Sprintf("saddi s%d, s%d, %d", in.Dst, in.A, in.Imm)
	case SLD:
		return fmt.Sprintf("sld s%d, (s%d+%d)", in.Dst, in.A, in.Imm)
	case SST:
		return fmt.Sprintf("sst s%d, (s%d+%d)", in.Dst, in.A, in.Imm)
	case SAGU:
		return fmt.Sprintf("sagu %d, s%d, s%d", in.Imm, in.A, in.B)
	case VLOADB, VSTOREB:
		return fmt.Sprintf("%s v%d", in.Op, in.Dst)
	case BNE, BLT:
		return fmt.Sprintf("%s s%d, s%d, @%d", in.Op, in.A, in.B, in.Imm)
	case JMP:
		return fmt.Sprintf("jmp @%d", in.Imm)
	case HALT, NOP:
		return in.Op.String()
	default:
		if in.Op.IsVector() {
			return fmt.Sprintf("%s v%d, v%d, v%d", in.Op, in.Dst, in.A, in.B)
		}
		return fmt.Sprintf("%s s%d, s%d, s%d", in.Op, in.Dst, in.A, in.B)
	}
}
