package soda

import "fmt"

// Pipeline models the SIMD datapath's issue timing: a depth-stage
// in-order pipeline with configurable forwarding. When attached to a PE
// (PE.Pipe), every vector instruction is charged the read-after-write
// stalls a real pipeline would insert between dependent operations, on
// top of the base operation cost — which is what makes the
// flush-recovery penalty of internal/timingerr (a full refill of Depth
// stages) concrete rather than an arbitrary constant.
//
// The model tracks, per vector register, the cycle at which its last
// writer's result becomes available:
//
//	available = issueCycle + execLatency + (Depth − ForwardStage)
//
// with ForwardStage = Depth meaning full forwarding (results usable the
// cycle after execution) and 0 meaning no forwarding (results usable
// only after writeback).
type Pipeline struct {
	Depth        int // total pipeline stages (≥ 1)
	ForwardStage int // how early results forward: Depth = full, 0 = none

	ready [VRegs]int // cycle at which each vector register is ready
	now   int        // current issue cycle
}

// NewPipeline returns a pipeline with full forwarding.
func NewPipeline(depth int) *Pipeline {
	if depth < 1 {
		depth = 1
	}
	return &Pipeline{Depth: depth, ForwardStage: depth}
}

// Validate reports whether the configuration is consistent.
func (p *Pipeline) Validate() error {
	if p.Depth < 1 {
		return fmt.Errorf("soda: pipeline depth %d must be ≥ 1", p.Depth)
	}
	if p.ForwardStage < 0 || p.ForwardStage > p.Depth {
		return fmt.Errorf("soda: forward stage %d outside [0, %d]", p.ForwardStage, p.Depth)
	}
	return nil
}

// Reset clears the hazard state.
func (p *Pipeline) Reset() {
	p.ready = [VRegs]int{}
	p.now = 0
}

// Issue accounts one vector instruction reading srcs and writing dst
// (pass -1 for unused operands) with the given execution latency, and
// returns the stall cycles inserted before it could issue.
func (p *Pipeline) Issue(dst int, srcs []int, execLatency int) int {
	earliest := p.now
	for _, s := range srcs {
		if s >= 0 && s < VRegs && p.ready[s] > earliest {
			earliest = p.ready[s]
		}
	}
	stall := earliest - p.now
	issue := earliest
	if dst >= 0 && dst < VRegs {
		p.ready[dst] = issue + execLatency + (p.Depth - p.ForwardStage)
	}
	p.now = issue + 1
	return stall
}

// vectorOperands returns the vector-register reads and write of a
// vector instruction (-1 where a field does not name a vector register).
func vectorOperands(in Instruction) (dst int, srcs []int) {
	switch in.Op {
	case VLOAD, VGATHER, VBCAST, VLOADB:
		return in.Dst, nil
	case VSTORE, VSTOREB:
		return -1, []int{in.Dst}
	case VREDSUM:
		return -1, []int{in.A}
	case VSHUF, VSLL, VSRL, VSRA, VREDGRP:
		return in.Dst, []int{in.A}
	case VMAC, VSEL:
		// Read-modify-write forms also read their destination.
		return in.Dst, []int{in.Dst, in.A, in.B}
	default:
		return in.Dst, []int{in.A, in.B}
	}
}
