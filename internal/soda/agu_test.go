package soda

import "testing"

func TestReadRowPerBank(t *testing.T) {
	m := NewSIMDMemory()
	// Bank b, row 10+b holds value 100+b in every lane.
	for b := 0; b < Banks; b++ {
		full := make([]uint16, Lanes)
		for i := range full {
			full[i] = uint16(100 + b)
		}
		if err := m.WriteRow(10+b, full); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]uint16, Lanes)
	if err := m.ReadRowPerBank([Banks]int{10, 11, 12, 13}, dst); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < Banks; b++ {
		if dst[b*BankLanes] != uint16(100+b) {
			t.Errorf("bank %d lane group = %d", b, dst[b*BankLanes])
		}
	}
	if err := m.ReadRowPerBank([Banks]int{0, 0, 0, 999}, dst); err == nil {
		t.Error("bad per-bank row accepted")
	}
	if err := m.ReadRowPerBank([Banks]int{0, 0, 0, 0}, make([]uint16, 3)); err == nil {
		t.Error("short dst accepted")
	}
}

func TestWriteRowPerBank(t *testing.T) {
	m := NewSIMDMemory()
	src := make([]uint16, Lanes)
	for i := range src {
		src[i] = uint16(i)
	}
	if err := m.WriteRowPerBank([Banks]int{5, 6, 7, 8}, src); err != nil {
		t.Fatal(err)
	}
	// Bank 2's group landed in row 7.
	row := make([]uint16, Lanes)
	if err := m.ReadRow(7, row); err != nil {
		t.Fatal(err)
	}
	if row[2*BankLanes] != uint16(2*BankLanes) {
		t.Errorf("bank 2 write misplaced: %d", row[2*BankLanes])
	}
	if err := m.WriteRowPerBank([Banks]int{-1, 0, 0, 0}, src); err == nil {
		t.Error("negative row accepted")
	}
}

func TestSAGUAndVLOADB(t *testing.T) {
	pe := NewPE()
	// Stage a 4-row "tile": row r holds value r in every lane.
	for r := 20; r < 28; r++ {
		full := make([]uint16, Lanes)
		for i := range full {
			full[i] = uint16(r)
		}
		if err := pe.Mem.WriteRow(r, full); err != nil {
			t.Fatal(err)
		}
	}
	// AGU b starts at row 20+b with stride 4: a column-of-rows walk.
	b := NewBuilder()
	b.SLi(1, 20).SLi(2, 4)
	for u := 0; u < Banks; u++ {
		b.SAddI(3, 1, u) // s3 = 20+u
		b.Emit(Instruction{Op: SAGU, A: 3, B: 2, Imm: u})
	}
	b.Emit(Instruction{Op: VLOADB, Dst: 0}).
		Emit(Instruction{Op: VLOADB, Dst: 1}).
		Halt()
	if err := pe.Run(b.MustProgram(), 1000); err != nil {
		t.Fatal(err)
	}
	// First load: bank b read row 20+b.
	for u := 0; u < Banks; u++ {
		if got := pe.VRF[0][u*BankLanes]; got != uint16(20+u) {
			t.Errorf("load1 bank %d = %d, want %d", u, got, 20+u)
		}
	}
	// Second load: post-incremented rows 24+b.
	for u := 0; u < Banks; u++ {
		if got := pe.VRF[1][u*BankLanes]; got != uint16(24+u) {
			t.Errorf("load2 bank %d = %d, want %d", u, got, 24+u)
		}
	}
	if pe.Stats.MemRowOps != 2 {
		t.Errorf("mem row ops = %d", pe.Stats.MemRowOps)
	}
}

func TestVSTOREBRoundTrip(t *testing.T) {
	pe := NewPE()
	for l := 0; l < Lanes; l++ {
		pe.VRF[5][l] = uint16(l * 3)
	}
	b := NewBuilder()
	b.SLi(1, 40).SLi(2, 0)
	for u := 0; u < Banks; u++ {
		b.SAddI(3, 1, u*2) // rows 40, 42, 44, 46
		b.Emit(Instruction{Op: SAGU, A: 3, B: 2, Imm: u})
	}
	b.Emit(Instruction{Op: VSTOREB, Dst: 5}).Halt()
	if err := pe.Run(b.MustProgram(), 100); err != nil {
		t.Fatal(err)
	}
	// Bank 1's group is in row 42, lanes 32..63.
	row := make([]uint16, Lanes)
	if err := pe.Mem.ReadRow(42, row); err != nil {
		t.Fatal(err)
	}
	if row[BankLanes] != uint16(BankLanes*3) {
		t.Errorf("banked store misplaced: %d", row[BankLanes])
	}
}

func TestSAGUValidation(t *testing.T) {
	pe := NewPE()
	bad := []Instruction{{Op: SAGU, A: 0, B: 0, Imm: 9}}
	if err := pe.Run(bad, 10); err == nil {
		t.Error("bad AGU index accepted")
	}
	bad = []Instruction{{Op: SAGU, A: 20, B: 0, Imm: 0}}
	if err := pe.Run(bad, 10); err == nil {
		t.Error("bad scalar register accepted")
	}
	// VLOADB with an AGU row out of range must fail at access time.
	pe = NewPE()
	pe.AGUs[0] = AGU{Row: 999}
	if err := pe.Run([]Instruction{{Op: VLOADB, Dst: 0}}, 10); err == nil {
		t.Error("out-of-range AGU row accepted")
	}
}

func TestAGUDisassembly(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: SAGU, A: 1, B: 2, Imm: 3}, "sagu 3, s1, s2"},
		{Instruction{Op: VLOADB, Dst: 4}, "vloadb v4"},
		{Instruction{Op: VSTOREB, Dst: 5}, "vstoreb v5"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("disasm = %q, want %q", got, c.want)
		}
	}
}

func TestResetClearsAGUs(t *testing.T) {
	pe := NewPE()
	pe.AGUs[2] = AGU{Row: 7, Stride: 3}
	pe.Reset()
	if pe.AGUs[2] != (AGU{}) {
		t.Error("Reset left AGU state")
	}
}
