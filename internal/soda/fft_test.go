package soda

import (
	"math"
	"math/cmplx"
	"testing"

	"github.com/ntvsim/ntvsim/internal/rng"
)

func randFFTInput(seed uint64) (re, im []int16) {
	r := rng.New(seed)
	re = make([]int16, Lanes)
	im = make([]int16, Lanes)
	for i := range re {
		re[i] = int16(r.IntN(2*fftMaxIn+1) - fftMaxIn)
		im[i] = int16(r.IntN(2*fftMaxIn+1) - fftMaxIn)
	}
	return re, im
}

func TestFFTKernelRunsAndChecks(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		re, im := randFFTInput(seed)
		pe := NewPE()
		if err := RunKernel(pe, FFTKernel(re, im)); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if pe.Stats.SSNRoutes < fftStages*2 {
			t.Errorf("FFT should route the SSN every stage: %d routes", pe.Stats.SSNRoutes)
		}
	}
}

// TestFFTMatchesDFT verifies the kernel output against a floating-point
// DFT. The Q6 twiddles and per-stage truncation accumulate bounded
// error: with |x| ≤ 3 the worst observed deviation is a few LSB per
// output; we allow a generous but meaningful bound.
func TestFFTMatchesDFT(t *testing.T) {
	re, im := randFFTInput(42)
	pe := NewPE()
	if err := RunKernel(pe, FFTKernel(re, im)); err != nil {
		t.Fatal(err)
	}
	var gotRe, gotIm [Lanes]uint16
	if err := pe.Mem.ReadRow(fftReOut, gotRe[:]); err != nil {
		t.Fatal(err)
	}
	if err := pe.Mem.ReadRow(fftImOut, gotIm[:]); err != nil {
		t.Fatal(err)
	}
	// Reference DFT.
	var worst float64
	for k := 0; k < Lanes; k++ {
		var acc complex128
		for n := 0; n < Lanes; n++ {
			w := cmplx.Exp(complex(0, -2*math.Pi*float64(k)*float64(n)/Lanes))
			acc += complex(float64(re[n]), float64(im[n])) * w
		}
		dr := float64(int16(gotRe[k])) - real(acc)
		di := float64(int16(gotIm[k])) - imag(acc)
		if e := math.Hypot(dr, di); e > worst {
			worst = e
		}
	}
	// Error bound: ≲2 LSB per stage accumulated over 7 stages relative
	// to outputs of magnitude up to ~384.
	if worst > 20 {
		t.Errorf("worst FFT deviation %v vs float DFT (bound 20)", worst)
	}
}

func TestFFTImpulse(t *testing.T) {
	// δ at lane 0 with amplitude 3: X[k] ≈ 3 for all k (flat spectrum).
	re := make([]int16, Lanes)
	im := make([]int16, Lanes)
	re[0] = 3
	pe := NewPE()
	if err := RunKernel(pe, FFTKernel(re, im)); err != nil {
		t.Fatal(err)
	}
	var out [Lanes]uint16
	if err := pe.Mem.ReadRow(fftReOut, out[:]); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < Lanes; k++ {
		if v := int16(out[k]); v < 0 || v > 4 {
			t.Fatalf("impulse spectrum lane %d = %d, want ≈3", k, v)
		}
	}
}

func TestFFTLinearity(t *testing.T) {
	// FFT(2x) over small inputs should be ≈ 2·FFT(x); quantization noise
	// does not scale linearly, so the bound is a few amplified LSB.
	re, im := randFFTInput(7)
	for i := range re {
		re[i] = int16(int(re[i]) / 3) // keep 2x within range
		im[i] = int16(int(im[i]) / 3)
	}
	run := func(scale int16) ([]uint16, []uint16) {
		r2 := make([]int16, Lanes)
		i2 := make([]int16, Lanes)
		for i := range re {
			r2[i] = re[i] * scale
			i2[i] = im[i] * scale
		}
		pe := NewPE()
		if err := RunKernel(pe, FFTKernel(r2, i2)); err != nil {
			t.Fatal(err)
		}
		var gr, gi [Lanes]uint16
		if err := pe.Mem.ReadRow(fftReOut, gr[:]); err != nil {
			t.Fatal(err)
		}
		if err := pe.Mem.ReadRow(fftImOut, gi[:]); err != nil {
			t.Fatal(err)
		}
		return gr[:], gi[:]
	}
	r1, i1 := run(1)
	r2, i2 := run(2)
	for k := 0; k < Lanes; k++ {
		if d := math.Abs(float64(int16(r2[k])) - 2*float64(int16(r1[k]))); d > 25 {
			t.Fatalf("linearity violated at lane %d re: %v", k, d)
		}
		if d := math.Abs(float64(int16(i2[k])) - 2*float64(int16(i1[k]))); d > 25 {
			t.Fatalf("linearity violated at lane %d im: %v", k, d)
		}
	}
}

func TestFFTInputValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized FFT input accepted")
		}
	}()
	re := make([]int16, Lanes)
	re[5] = fftMaxIn + 1
	FFTKernel(re, make([]int16, Lanes))
}

func TestFFTBitrevInvolution(t *testing.T) {
	cfg := fftBitrevConfig()
	for j, r := range cfg {
		if cfg[r] != j {
			t.Fatalf("bit reversal not an involution at %d", j)
		}
	}
}

func TestFFTXorConfigPermutation(t *testing.T) {
	for _, m := range []int{1, 2, 64} {
		cfg := fftXorConfig(m)
		seen := make([]bool, Lanes)
		for _, v := range cfg {
			if seen[v] {
				t.Fatalf("xor config m=%d not a permutation", m)
			}
			seen[v] = true
		}
	}
}
