package soda

import (
	"strings"
	"testing"
)

func TestBuilderLabels(t *testing.T) {
	b := NewBuilder()
	b.SLi(1, 0).
		Label("top").
		SAddI(1, 1, 1).
		SLi(2, 5).
		Branch(BNE, 1, 2, "top").
		Halt()
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	// The branch (index 3) must point at instruction index 1 ("top").
	if prog[3].Imm != 1 {
		t.Errorf("branch target = %d, want 1", prog[3].Imm)
	}
}

func TestBuilderForwardLabel(t *testing.T) {
	b := NewBuilder()
	b.Jmp("end").SLi(1, 9).Label("end").Halt()
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	if prog[0].Imm != 2 {
		t.Errorf("forward jump target = %d, want 2", prog[0].Imm)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder()
	b.Jmp("nowhere").Halt()
	if _, err := b.Program(); err == nil {
		t.Error("undefined label accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustProgram should panic on undefined label")
		}
	}()
	b.MustProgram()
}

func TestBuilderDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate label should panic")
		}
	}()
	NewBuilder().Label("x").Label("x")
}

func TestDisassembly(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: VADD, Dst: 1, A: 2, B: 3}, "vadd v1, v2, v3"},
		{Instruction{Op: VLOAD, Dst: 0, A: 4}, "vload v0, (s4)"},
		{Instruction{Op: VSTORE, Dst: 2, A: 5}, "vstore v2, (s5)"},
		{Instruction{Op: VSRA, Dst: 1, A: 1, Imm: 8}, "vsra v1, v1, 8"},
		{Instruction{Op: VBCAST, Dst: 3, A: 2}, "vbcast v3, s2"},
		{Instruction{Op: VGATHER, Dst: 0, A: 1, B: 2}, "vgather v0, s1, s2"},
		{Instruction{Op: VREDSUM, Dst: 7, A: 0}, "vredsum s7, v0"},
		{Instruction{Op: SLI, Dst: 1, Imm: 42}, "sli s1, 42"},
		{Instruction{Op: SADDI, Dst: 1, A: 2, Imm: -1}, "saddi s1, s2, -1"},
		{Instruction{Op: SLD, Dst: 1, A: 2, Imm: 3}, "sld s1, (s2+3)"},
		{Instruction{Op: BNE, A: 1, B: 2, Imm: 7}, "bne s1, s2, @7"},
		{Instruction{Op: JMP, Imm: 4}, "jmp @4"},
		{Instruction{Op: HALT}, "halt"},
		{Instruction{Op: SADD, Dst: 0, A: 1, B: 2}, "sadd s0, s1, s2"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("disasm = %q, want %q", got, c.want)
		}
	}
}

func TestOpcodeClassification(t *testing.T) {
	vector := []Opcode{VLOAD, VSTORE, VADD, VMAC, VSHUF, VREDSUM, VGATHER}
	scalar := []Opcode{SLI, SADD, BNE, JMP, HALT, NOP}
	for _, op := range vector {
		if !op.IsVector() {
			t.Errorf("%v should be vector", op)
		}
	}
	for _, op := range scalar {
		if op.IsVector() {
			t.Errorf("%v should be scalar", op)
		}
	}
	if !strings.Contains(Opcode(999).String(), "999") {
		t.Error("unknown opcode should render its number")
	}
}
