package soda

import (
	"strings"
	"testing"
)

// The SRAM yield model (internal/sram) derives the SODA memory map from
// these constants; this file pins the geometry invariants both packages
// rely on and backfills the memory error paths.

func TestMemoryGeometryInvariants(t *testing.T) {
	if Banks*BankLanes != Lanes {
		t.Errorf("banks %d × bank lanes %d != SIMD width %d", Banks, BankLanes, Lanes)
	}
	words := Banks * BankRows * BankLanes
	if words*2 != 64<<10 {
		t.Errorf("memory holds %d 16-bit words (%d bytes), want 64 KB", words, words*2)
	}
}

func TestWriteRowRejectsBadGeometry(t *testing.T) {
	m := NewSIMDMemory()
	if err := m.WriteRow(0, make([]uint16, Lanes-1)); err == nil ||
		!strings.Contains(err.Error(), "length") {
		t.Errorf("short source accepted: %v", err)
	}
	if err := m.WriteRow(BankRows, make([]uint16, Lanes)); err == nil {
		t.Error("out-of-range row accepted")
	}
	if err := m.WriteRow(-1, make([]uint16, Lanes)); err == nil {
		t.Error("negative row accepted")
	}
}

func TestWriteRowPerBankRejectsBadGeometry(t *testing.T) {
	m := NewSIMDMemory()
	if err := m.WriteRowPerBank([Banks]int{}, make([]uint16, 1)); err == nil ||
		!strings.Contains(err.Error(), "length") {
		t.Errorf("short source accepted: %v", err)
	}
	rows := [Banks]int{0, 1, BankRows, 3}
	if err := m.WriteRowPerBank(rows, make([]uint16, Lanes)); err == nil ||
		!strings.Contains(err.Error(), "bank 2") {
		t.Errorf("out-of-range per-bank row accepted or misattributed: %v", err)
	}
}

func TestReadSliceOutOfRange(t *testing.T) {
	m := NewSIMDMemory()
	if _, err := m.ReadSlice(Banks*BankRows*BankLanes-1, 2); err == nil {
		t.Error("slice crossing the end of memory accepted")
	}
}

func TestMemCyclesClamps(t *testing.T) {
	cases := []struct {
		lat, ratio, want int
	}{
		{2, 1, 2}, // default clocking: two SIMD cycles per row access
		{2, 2, 1}, // half-rate SIMD domain hides the memory latency
		{5, 2, 3}, // ceil(5/2)
		{0, 1, 2}, // unset latency falls back to the default 2
		{3, 0, 3}, // unset ratio falls back to 1
		{1, 4, 1}, // never below one SIMD cycle
		{-1, -1, 2},
	}
	for _, tc := range cases {
		c := ClockConfig{MemLatency: tc.lat, ClockRatio: tc.ratio}
		if got := c.memCycles(); got != tc.want {
			t.Errorf("memCycles(lat=%d, ratio=%d) = %d, want %d", tc.lat, tc.ratio, got, tc.want)
		}
	}
}
