package soda

import (
	"strings"
	"testing"

	"github.com/ntvsim/ntvsim/internal/rng"
)

func TestPipelineValidate(t *testing.T) {
	if err := NewPipeline(8).Validate(); err != nil {
		t.Errorf("default pipeline invalid: %v", err)
	}
	bad := &Pipeline{Depth: 4, ForwardStage: 9}
	if err := bad.Validate(); err == nil {
		t.Error("bad forward stage accepted")
	}
	if NewPipeline(0).Depth != 1 {
		t.Error("depth should clamp to 1")
	}
}

func TestPipelineNoHazardNoStall(t *testing.T) {
	p := NewPipeline(8) // full forwarding
	// Independent single-cycle ops issue back to back even with full
	// forwarding and a dependent consumer one cycle later.
	if s := p.Issue(1, nil, 1); s != 0 {
		t.Errorf("first issue stalled %d", s)
	}
	if s := p.Issue(2, []int{1}, 1); s != 1 {
		// v1 ready at issue+latency = 0+1 = 1... consumer at cycle 1: no
		// extra wait beyond in-order issue? ready[1] = 0+1+0 = 1,
		// consumer issues at max(now=1, ready=1) = 1 → stall 0.
		t.Logf("dependent stall = %d", s)
	}
}

func TestPipelineForwardingReducesStalls(t *testing.T) {
	run := func(forward int) int {
		p := &Pipeline{Depth: 8, ForwardStage: forward}
		total := 0
		// A dependent chain: each op consumes the previous result.
		for i := 0; i < 10; i++ {
			total += p.Issue(1, []int{1}, 2)
		}
		return total
	}
	full := run(8) // full forwarding
	none := run(0) // results only after writeback
	if none <= full {
		t.Errorf("no-forwarding stalls (%d) should exceed full forwarding (%d)", none, full)
	}
	if none-full < 8*5 {
		t.Errorf("writeback penalty too small: %d vs %d", none, full)
	}
}

func TestPipelineChargesKernelHazards(t *testing.T) {
	r := rng.New(1)
	k := FIRKernel(randVec(r, Lanes, 256), []int16{1, -2, 3, -4})

	base := NewPE()
	if err := RunKernel(base, k); err != nil {
		t.Fatal(err)
	}
	piped := NewPE()
	piped.Pipe = &Pipeline{Depth: 8, ForwardStage: 0} // worst case
	if err := RunKernel(piped, k); err != nil {
		t.Fatal(err)
	}
	if piped.Stats.HazardStall == 0 {
		t.Error("FIR's dependent MAC chain should stall a no-forwarding pipeline")
	}
	if piped.Stats.Cycles != base.Stats.Cycles+piped.Stats.HazardStall {
		t.Errorf("cycles %d ≠ base %d + stalls %d",
			piped.Stats.Cycles, base.Stats.Cycles, piped.Stats.HazardStall)
	}
	// Results must be identical — timing never changes data.
	fullFwd := NewPE()
	fullFwd.Pipe = NewPipeline(8)
	if err := RunKernel(fullFwd, k); err != nil {
		t.Fatal(err)
	}
	if fullFwd.Stats.HazardStall >= piped.Stats.HazardStall {
		t.Errorf("full forwarding (%d stalls) should beat none (%d)",
			fullFwd.Stats.HazardStall, piped.Stats.HazardStall)
	}
}

func TestPipelineResetOnPEReset(t *testing.T) {
	pe := NewPE()
	pe.Pipe = &Pipeline{Depth: 8, ForwardStage: 0}
	prog := []Instruction{
		{Op: VADD, Dst: 0, A: 0, B: 0},
		{Op: VADD, Dst: 0, A: 0, B: 0},
		{Op: HALT},
	}
	if err := pe.Run(prog, 1000); err != nil {
		t.Fatal(err)
	}
	first := pe.Stats.HazardStall
	pe.Reset()
	if err := pe.Run(prog, 1000); err != nil {
		t.Fatal(err)
	}
	if pe.Stats.HazardStall != first {
		t.Errorf("stall count changed after Reset: %d vs %d", pe.Stats.HazardStall, first)
	}
}

func TestTraceOutput(t *testing.T) {
	pe := NewPE()
	var b strings.Builder
	pe.Trace = &b
	prog := NewBuilder().SLi(1, 7).VBcast(0, 1).Halt().MustProgram()
	if err := pe.Run(prog, 100); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"sli s1, 7", "vbcast v0, s1", "halt"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 3 {
		t.Errorf("trace should have one line per instruction:\n%s", out)
	}
}

func TestVectorOperandsRMW(t *testing.T) {
	dst, srcs := vectorOperands(Instruction{Op: VMAC, Dst: 3, A: 1, B: 2})
	if dst != 3 {
		t.Errorf("VMAC dst = %d", dst)
	}
	found := false
	for _, s := range srcs {
		if s == 3 {
			found = true
		}
	}
	if !found {
		t.Error("VMAC must read its destination (accumulator)")
	}
	if d, s := vectorOperands(Instruction{Op: VSTORE, Dst: 5}); d != -1 || s[0] != 5 {
		t.Error("VSTORE operand classification wrong")
	}
	if d, _ := vectorOperands(Instruction{Op: VLOAD, Dst: 4}); d != 4 {
		t.Error("VLOAD operand classification wrong")
	}
}
