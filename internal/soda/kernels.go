package soda

import (
	"fmt"

	"github.com/ntvsim/ntvsim/internal/xram"
)

// Kernel bundles a program with its input staging and output check, so
// the same workload runs identically in tests, benchmarks and examples.
type Kernel struct {
	Name    string
	Program []Instruction
	// Setup stages inputs into PE memory and SSN configuration slots.
	Setup func(pe *PE) error
	// Check verifies outputs against a host-side golden model computed
	// with identical 16-bit wrapping semantics.
	Check func(pe *PE) error
}

// DefaultCycleBudget bounds kernel runs; every shipped kernel finishes
// in well under this many SIMD cycles even at maximum recovery stall.
const DefaultCycleBudget = 1 << 20

// RunKernel stages, executes and checks a kernel on the PE.
func RunKernel(pe *PE, k Kernel) error {
	if err := k.Setup(pe); err != nil {
		return fmt.Errorf("soda: %s setup: %w", k.Name, err)
	}
	if err := pe.Run(k.Program, DefaultCycleBudget); err != nil {
		return fmt.Errorf("soda: %s run: %w", k.Name, err)
	}
	if err := k.Check(pe); err != nil {
		return fmt.Errorf("soda: %s check: %w", k.Name, err)
	}
	return nil
}

// memory layout rows used by the kernels (full 128-wide rows).
const (
	rowA   = 0
	rowB   = 1
	rowC   = 2
	rowOut = 8
)

// ScaleAddKernel computes out = a·scale + b over one 128-wide row.
func ScaleAddKernel(a, b []uint16, scale int16) Kernel {
	if len(a) != Lanes || len(b) != Lanes {
		panic("soda: ScaleAddKernel inputs must be 128 wide")
	}
	bld := NewBuilder()
	bld.SLi(1, rowA).
		SLi(2, rowB).
		SLi(3, rowOut).
		SLi(4, int(scale)).
		VLoad(0, 1).
		VLoad(1, 2).
		VBcast(2, 4).
		V3(VMUL, 0, 0, 2).
		V3(VADD, 0, 0, 1).
		VStore(0, 3).
		Halt()
	return Kernel{
		Name:    "scale-add",
		Program: bld.MustProgram(),
		Setup: func(pe *PE) error {
			if err := pe.Mem.WriteRow(rowA, a); err != nil {
				return err
			}
			return pe.Mem.WriteRow(rowB, b)
		},
		Check: func(pe *PE) error {
			var want [Lanes]uint16
			for i := range want {
				want[i] = uint16(int16(a[i])*scale) + b[i]
			}
			return expectRow(pe, rowOut, want[:])
		},
	}
}

// FIRKernel computes a T-tap circular FIR over one 128-sample row:
// y[i] = Σ_t h[t]·x[(i−t) mod 128], using SSN rotation configurations
// (one slot per tap) and VMAC — the canonical Diet SODA signal kernel.
// taps must fit within the SSN configuration slots.
func FIRKernel(x []uint16, h []int16) Kernel {
	if len(x) != Lanes {
		panic("soda: FIRKernel signal must be 128 wide")
	}
	if len(h) == 0 || len(h) > xram.DefaultSlots {
		panic(fmt.Sprintf("soda: FIRKernel needs 1..%d taps", xram.DefaultSlots))
	}
	bld := NewBuilder()
	bld.SLi(1, rowA).
		SLi(3, rowOut).
		VLoad(0, 1).      // v0 = x
		V3(VXOR, 1, 1, 1) // v1 = accumulator = 0
	for t := range h {
		// v2 = rotate(x, t); v3 = broadcast h[t]; v1 += v2·v3.
		bld.SLi(4, int(h[t])).
			VImm(VSHUF, 2, 0, t).
			VBcast(3, 4).
			V3(VMAC, 1, 2, 3)
	}
	bld.VStore(1, 3).Halt()
	return Kernel{
		Name:    fmt.Sprintf("fir-%dtap", len(h)),
		Program: bld.MustProgram(),
		Setup: func(pe *PE) error {
			for t := range h {
				// Slot t: out[i] = in[(i-t) mod 128].
				if err := pe.SSN.Store(t, xram.Rotate(Lanes, -t)); err != nil {
					return err
				}
			}
			return pe.Mem.WriteRow(rowA, x)
		},
		Check: func(pe *PE) error {
			var want [Lanes]uint16
			for i := range want {
				var acc uint16
				for t := range h {
					xi := x[((i-t)%Lanes+Lanes)%Lanes]
					acc += uint16(int16(xi) * h[t])
				}
				want[i] = acc
			}
			return expectRow(pe, rowOut, want[:])
		},
	}
}

// DotProductKernel computes the dot product of two vectors of rows·128
// elements laid out as consecutive rows, accumulating per-row partial
// reductions in a scalar loop and storing the final 16-bit sum to
// scalar memory word 0.
func DotProductKernel(a, b []uint16) Kernel {
	if len(a) != len(b) || len(a)%Lanes != 0 || len(a) == 0 {
		panic("soda: DotProductKernel needs equal, 128-multiple inputs")
	}
	rows := len(a) / Lanes
	const (
		aBase = 0  // rows 0..rows-1
		bBase = 64 // rows 64..
	)
	if rows > 64 || bBase+rows > BankRows {
		panic("soda: DotProductKernel input too large")
	}
	bld := NewBuilder()
	bld.SLi(1, aBase). // s1 = a row cursor
				SLi(2, bBase). // s2 = b row cursor
				SLi(3, 0).     // s3 = accumulator
				SLi(4, 0).     // s4 = row counter
				SLi(5, rows).  // s5 = row limit
				SLi(6, 0).     // s6 = scalar out address
				Label("loop").
				VLoad(0, 1).
				VLoad(1, 2).
				V3(VMUL, 0, 0, 1).
				VRedSum(7, 0).
				S3(SADD, 3, 3, 7).
				SAddI(1, 1, 1).
				SAddI(2, 2, 1).
				SAddI(4, 4, 1).
				Branch(BNE, 4, 5, "loop").
				SStore(3, 6, 0).
				Halt()
	return Kernel{
		Name:    fmt.Sprintf("dot-%drows", rows),
		Program: bld.MustProgram(),
		Setup: func(pe *PE) error {
			if err := pe.Mem.LoadSlice(aBase*Lanes, a); err != nil {
				return err
			}
			return pe.Mem.LoadSlice(bBase*Lanes, b)
		},
		Check: func(pe *PE) error {
			var want uint16
			for i := range a {
				want += uint16(int16(a[i]) * int16(b[i]))
			}
			if got := pe.SMem[0]; got != want {
				return fmt.Errorf("dot product = %d, want %d", got, want)
			}
			return nil
		},
	}
}

// RGBToYCbCrKernel converts one 128-pixel row from planar RGB (rows
// rowA/rowB/rowC) to Y/Cb/Cr (rows rowOut..rowOut+2) using the
// integer-approximation matrix with inputs pre-scaled by ≫2 to keep the
// products within 16-bit range — the digital-camera pipeline stage the
// Diet SODA paper targets.
func RGBToYCbCrKernel(r, g, b []uint16) Kernel {
	if len(r) != Lanes || len(g) != Lanes || len(b) != Lanes {
		panic("soda: RGBToYCbCrKernel planes must be 128 wide")
	}
	// Coefficients (Q8): Y = 77R+150G+29B; Cb = -43R-85G+128B;
	// Cr = 128R-107G-21B, all ≫8 after accumulation, on ≫2 inputs.
	type plane struct {
		name       string
		cr, cg, cb int16
		out        int
	}
	planes := []plane{
		{"y", 77, 150, 29, rowOut},
		{"cb", -43, -85, 128, rowOut + 1},
		{"cr", 128, -107, -21, rowOut + 2},
	}
	bld := NewBuilder()
	bld.SLi(1, rowA).SLi(2, rowB).SLi(3, rowC).
		VLoad(0, 1).VLoad(1, 2).VLoad(2, 3).
		// Pre-scale inputs to 6 significant bits.
		VImm(VSRL, 0, 0, 2).VImm(VSRL, 1, 1, 2).VImm(VSRL, 2, 2, 2)
	for _, p := range planes {
		bld.SLi(4, int(p.cr)).VBcast(4, 4).
			SLi(5, int(p.cg)).VBcast(5, 5).
			SLi(6, int(p.cb)).VBcast(6, 6).
			V3(VXOR, 7, 7, 7).
			V3(VMAC, 7, 0, 4).
			V3(VMAC, 7, 1, 5).
			V3(VMAC, 7, 2, 6).
			VImm(VSRA, 7, 7, 8).
			SLi(7, p.out).
			VStore(7, 7)
	}
	bld.Halt()
	return Kernel{
		Name:    "rgb-ycbcr",
		Program: bld.MustProgram(),
		Setup: func(pe *PE) error {
			if err := pe.Mem.WriteRow(rowA, r); err != nil {
				return err
			}
			if err := pe.Mem.WriteRow(rowB, g); err != nil {
				return err
			}
			return pe.Mem.WriteRow(rowC, b)
		},
		Check: func(pe *PE) error {
			for pi, p := range planes {
				var want [Lanes]uint16
				for i := range want {
					rs, gs, bs := r[i]>>2, g[i]>>2, b[i]>>2
					acc := uint16(int16(rs)*p.cr) + uint16(int16(gs)*p.cg) + uint16(int16(bs)*p.cb)
					want[i] = uint16(int16(acc) >> 8)
				}
				if err := expectRow(pe, planes[pi].out, want[:]); err != nil {
					return fmt.Errorf("plane %s: %w", p.name, err)
				}
			}
			return nil
		},
	}
}

// maskRow holds the column-sum kernel's lane mask (1 for lanes < h).
const maskRow = 200

// ColumnSumKernel treats memory rows 0..h-1 as an h×128 image and
// computes per-column sums: one VGATHER per column walks down the column
// with stride 128 (the prefetcher's 2-D access path), a preloaded mask
// row zeroes lanes beyond the image height, and the adder tree reduces.
// Scalar memory word c receives the 16-bit sum of column c, c < cols.
func ColumnSumKernel(img []uint16, h, cols int) Kernel {
	if h < 1 || h > Lanes || len(img) != h*Lanes || cols < 1 || cols > Lanes {
		panic("soda: ColumnSumKernel needs an h×128 image with h, cols ≤ 128")
	}
	bld := NewBuilder()
	bld.SLi(1, 0). // s1 = column index (also gather base and output addr)
			SLi(2, Lanes). // s2 = gather stride: one full row
			SLi(3, cols).  // s3 = column limit
			SLi(4, maskRow).
			VLoad(1, 4). // v1 = lane mask
			Label("loop").
			V3(VGATHER, 0, 1, 2). // v0[k] = img[k·128 + column]
			V3(VMUL, 0, 0, 1).    // zero lanes ≥ h
			VRedSum(7, 0).
			SStore(7, 1, 0). // scalar mem[column] = sum
			SAddI(1, 1, 1).
			Branch(BNE, 1, 3, "loop").
			Halt()
	return Kernel{
		Name:    fmt.Sprintf("colsum-%dx%d", h, cols),
		Program: bld.MustProgram(),
		Setup: func(pe *PE) error {
			if err := pe.Mem.LoadSlice(0, img); err != nil {
				return err
			}
			var mask [Lanes]uint16
			for k := 0; k < h; k++ {
				mask[k] = 1
			}
			return pe.Mem.WriteRow(maskRow, mask[:])
		},
		Check: func(pe *PE) error {
			for c := 0; c < cols; c++ {
				var want uint16
				for k := 0; k < h; k++ {
					want += img[k*Lanes+c]
				}
				if got := pe.SMem[c]; got != want {
					return fmt.Errorf("column %d sum = %d, want %d", c, got, want)
				}
			}
			return nil
		},
	}
}

// expectRow compares a memory row against want.
func expectRow(pe *PE, row int, want []uint16) error {
	var got [Lanes]uint16
	if err := pe.Mem.ReadRow(row, got[:]); err != nil {
		return err
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Errorf("row %d lane %d = %d, want %d", row, i, got[i], want[i])
		}
	}
	return nil
}

// StridedSumKernel sums n 128-wide rows spaced stride apart starting at
// row 0, using the AGU pipelines' post-increment so the loop body needs
// no address arithmetic: one SAGU setup per bank, then VLOADB streams
// the rows. The result vector is stored to rowOut.
func StridedSumKernel(rows []uint16, n, stride int) Kernel {
	if n < 1 || stride < 1 || len(rows) != n*Lanes {
		panic("soda: StridedSumKernel needs n stride-spaced rows of input")
	}
	if (n-1)*stride >= BankRows || rowOut <= (n-1)*stride {
		panic("soda: StridedSumKernel layout collides with output row")
	}
	bld := NewBuilder()
	bld.SLi(1, 0). // AGU base row
			SLi(2, stride). // AGU stride
			SLi(3, 0).      // loop counter
			SLi(4, n)       // limit
	for b := 0; b < Banks; b++ {
		bld.Emit(Instruction{Op: SAGU, A: 1, B: 2, Imm: b})
	}
	bld.V3(VXOR, 0, 0, 0). // accumulator
				Label("loop").
				Emit(Instruction{Op: VLOADB, Dst: 1}).
				V3(VADD, 0, 0, 1).
				SAddI(3, 3, 1).
				Branch(BNE, 3, 4, "loop").
				SLi(1, rowOut).
				VStore(0, 1).
				Halt()
	return Kernel{
		Name:    fmt.Sprintf("stridedsum-%dx%d", n, stride),
		Program: bld.MustProgram(),
		Setup: func(pe *PE) error {
			for k := 0; k < n; k++ {
				if err := pe.Mem.WriteRow(k*stride, rows[k*Lanes:(k+1)*Lanes]); err != nil {
					return err
				}
			}
			return nil
		},
		Check: func(pe *PE) error {
			var want [Lanes]uint16
			for k := 0; k < n; k++ {
				for i := 0; i < Lanes; i++ {
					want[i] += rows[k*Lanes+i]
				}
			}
			return expectRow(pe, rowOut, want[:])
		},
	}
}
