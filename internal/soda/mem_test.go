package soda

import (
	"testing"
)

func TestRowRoundTrip(t *testing.T) {
	m := NewSIMDMemory()
	row := make([]uint16, Lanes)
	for i := range row {
		row[i] = uint16(i * 3)
	}
	if err := m.WriteRow(17, row); err != nil {
		t.Fatal(err)
	}
	got := make([]uint16, Lanes)
	if err := m.ReadRow(17, got); err != nil {
		t.Fatal(err)
	}
	for i := range row {
		if got[i] != row[i] {
			t.Fatalf("lane %d = %d, want %d", i, got[i], row[i])
		}
	}
	reads, writes := m.Stats()
	if reads != 1 || writes != 1 {
		t.Errorf("stats = %d, %d", reads, writes)
	}
}

func TestRowBounds(t *testing.T) {
	m := NewSIMDMemory()
	buf := make([]uint16, Lanes)
	if err := m.ReadRow(-1, buf); err == nil {
		t.Error("negative row accepted")
	}
	if err := m.ReadRow(BankRows, buf); err == nil {
		t.Error("row beyond memory accepted")
	}
	if err := m.ReadRow(0, make([]uint16, 3)); err == nil {
		t.Error("short buffer accepted")
	}
	if err := m.WriteRow(0, make([]uint16, 3)); err == nil {
		t.Error("short write accepted")
	}
}

func TestElementAddressing(t *testing.T) {
	m := NewSIMDMemory()
	// Element (row 2, lane 77) has flat address 2·128 + 77. Lane 77 is
	// bank 2 (77/32), bank-lane 13.
	if err := m.WriteElem(2*Lanes+77, 4242); err != nil {
		t.Fatal(err)
	}
	row := make([]uint16, Lanes)
	if err := m.ReadRow(2, row); err != nil {
		t.Fatal(err)
	}
	if row[77] != 4242 {
		t.Errorf("row read lane 77 = %d", row[77])
	}
	v, err := m.ReadElem(2*Lanes + 77)
	if err != nil || v != 4242 {
		t.Errorf("ReadElem = %d, %v", v, err)
	}
	if _, err := m.ReadElem(-1); err == nil {
		t.Error("negative element accepted")
	}
	if _, err := m.ReadElem(BankRows * Lanes); err == nil {
		t.Error("out-of-range element accepted")
	}
}

func TestLoadReadSlice(t *testing.T) {
	m := NewSIMDMemory()
	data := []uint16{5, 6, 7, 8, 9}
	if err := m.LoadSlice(130, data); err != nil {
		t.Fatal(err)
	}
	got, err := m.ReadSlice(130, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("slice mismatch at %d", i)
		}
	}
	if err := m.LoadSlice(BankRows*Lanes-2, data); err == nil {
		t.Error("overflowing LoadSlice accepted")
	}
}

func TestGatherStrided(t *testing.T) {
	m := NewSIMDMemory()
	// Fill rows 0..127 with row index so a stride-128 gather of column 5
	// yields 0,1,2,...,127.
	row := make([]uint16, Lanes)
	for r := 0; r < Lanes; r++ {
		for i := range row {
			row[i] = uint16(r)
		}
		if err := m.WriteRow(r, row); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]uint16, Lanes)
	rows, err := m.Gather(5, Lanes, dst)
	if err != nil {
		t.Fatal(err)
	}
	if rows != 128 {
		t.Errorf("rows touched = %d, want 128", rows)
	}
	for k := range dst {
		if dst[k] != uint16(k) {
			t.Fatalf("gather lane %d = %d", k, dst[k])
		}
	}
	// Unit-stride gather touches exactly one row.
	rows, err = m.Gather(0, 0, dst) // stride 0: all from element 0
	if err != nil {
		t.Fatal(err)
	}
	if rows != 1 {
		t.Errorf("stride-0 rows = %d, want 1", rows)
	}
}

func TestGatherBounds(t *testing.T) {
	m := NewSIMDMemory()
	dst := make([]uint16, Lanes)
	if _, err := m.Gather(BankRows*Lanes-1, 1, dst); err == nil {
		t.Error("gather past memory accepted")
	}
	if _, err := m.Gather(0, 1, make([]uint16, 4)); err == nil {
		t.Error("short gather dst accepted")
	}
}
