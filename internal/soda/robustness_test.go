package soda

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/ntvsim/ntvsim/internal/rng"
)

// TestRandomProgramsNeverPanic: arbitrary instruction streams — valid
// or garbage — must either execute or return an error; the PE must
// never panic and never corrupt its ability to run again.
func TestRandomProgramsNeverPanic(t *testing.T) {
	r := rng.New(1234)
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.IntN(30)
		prog := make([]Instruction, n)
		for i := range prog {
			prog[i] = Instruction{
				Op:  Opcode(r.IntN(110)),
				Dst: r.IntN(40) - 2,
				A:   r.IntN(40) - 2,
				B:   r.IntN(40) - 2,
				Imm: r.IntN(600) - 100,
			}
		}
		pe := NewPE()
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d: PE panicked: %v\nprogram: %v", trial, p, prog)
				}
			}()
			_ = pe.Run(prog, 2000) // error or success, both fine
		}()
		// The PE must still work after whatever happened.
		if err := pe.Run([]Instruction{{Op: HALT}}, 10); err != nil {
			t.Fatalf("trial %d: PE unusable after random program: %v", trial, err)
		}
	}
}

// TestAssembleNeverPanics: arbitrary text must parse or error, not panic.
func TestAssembleNeverPanics(t *testing.T) {
	f := func(src string) bool {
		defer func() {
			if p := recover(); p != nil {
				t.Errorf("Assemble panicked on %q: %v", src, p)
			}
		}()
		_, _ = Assemble(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
	// Adversarial hand-picked inputs.
	for _, src := range []string{
		"vadd", "vadd ,", "vadd v, v, v", "sld s1, (", "sld s1, ()",
		"sld s1, (s1+", "sli s1, 999999999999999999999",
		strings.Repeat("nop\n", 10000), "::", "x y z", "\x00\xff",
		"vload v1, (s-1)", "sagu -1, s0, s0",
	} {
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Errorf("Assemble panicked on %q: %v", src, p)
				}
			}()
			_, _ = Assemble(src)
		}()
	}
}

// TestDisassembleParseable: every instruction a built-in kernel emits
// disassembles to text the assembler accepts (branch-free kernels).
func TestDisassembleParseable(t *testing.T) {
	r := rng.New(5)
	kernels := []Kernel{
		ScaleAddKernel(randVec(r, Lanes, 10), randVec(r, Lanes, 10), 2),
		FIRKernel(randVec(r, Lanes, 10), []int16{1, -1}),
		RGBToYCbCrKernel(randVec(r, Lanes, 10), randVec(r, Lanes, 10), randVec(r, Lanes, 10)),
		MedianKernel(randVec(r, Lanes, 10)),
		DCT8Kernel(make([]int16, Lanes)),
		FFTKernel(make([]int16, Lanes), make([]int16, Lanes)),
	}
	for _, k := range kernels {
		var b strings.Builder
		for _, in := range k.Program {
			b.WriteString(in.String())
			b.WriteByte('\n')
		}
		if _, err := Assemble(b.String()); err != nil {
			t.Errorf("%s: disassembly not reparseable: %v", k.Name, err)
		}
	}
}
