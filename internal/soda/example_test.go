package soda_test

import (
	"fmt"
	"log"

	"github.com/ntvsim/ntvsim/internal/soda"
)

// Example assembles a scalar loop from text and runs it on a PE.
func Example() {
	prog, err := soda.Assemble(`
		; sum the numbers 1..100
		sli s1, 0        ; accumulator
		sli s2, 0        ; i
		sli s3, 100      ; limit
	loop:
		saddi s2, s2, 1
		sadd s1, s1, s2
		bne s2, s3, loop
		halt
	`)
	if err != nil {
		log.Fatal(err)
	}
	pe := soda.NewPE()
	if err := pe.Run(prog, 10000); err != nil {
		log.Fatal(err)
	}
	fmt.Println("sum =", pe.SRF[1])
	// Output: sum = 5050
}

// ExampleAssemble shows a vector program: broadcast, lane-wise multiply
// and an adder-tree reduction.
func ExampleAssemble() {
	prog, err := soda.Assemble(`
		sli s1, 3
		vbcast v0, s1    ; all 128 lanes = 3
		vmul v1, v0, v0  ; lanes = 9
		vredsum s2, v1   ; adder tree
		halt
	`)
	if err != nil {
		log.Fatal(err)
	}
	pe := soda.NewPE()
	if err := pe.Run(prog, 100); err != nil {
		log.Fatal(err)
	}
	fmt.Println("sum =", pe.SRF[2]) // 9 × 128 lanes
	// Output: sum = 1152
}

// ExampleRunKernel executes a built-in verified kernel.
func ExampleRunKernel() {
	x := make([]uint16, soda.Lanes)
	for i := range x {
		x[i] = uint16(i)
	}
	k := soda.FIRKernel(x, []int16{1, 2, 1})
	pe := soda.NewPE()
	if err := soda.RunKernel(pe, k); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d cycles, %d shuffle routes\n",
		k.Name, pe.Stats.Cycles, pe.Stats.SSNRoutes)
	// Output: fir-3tap: 23 cycles, 3 shuffle routes
}
