package soda

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble parses textual assembly into a program. The syntax is exactly
// what Instruction.String prints, one instruction per line:
//
//	; comments run to end of line (also '#')
//	loop:                     ; labels end with ':'
//	    vadd v1, v2, v3
//	    vload v0, (s1)
//	    sld s1, (s2+3)
//	    vsra v1, v1, 8
//	    bne s1, s2, loop      ; branch targets are labels
//	    sagu 0, s1, s2
//	    halt
//
// Register operands are v0–v31 and s0–s15; immediates are decimal
// (optionally negative). Errors carry the 1-based source line.
func Assemble(src string) ([]Instruction, error) {
	bld := NewBuilder()
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			name := strings.TrimSpace(strings.TrimSuffix(line, ":"))
			if name == "" {
				return nil, fmt.Errorf("soda: line %d: empty label", ln+1)
			}
			bld.Label(name)
			continue
		}
		if err := parseLine(bld, line); err != nil {
			return nil, fmt.Errorf("soda: line %d: %w", ln+1, err)
		}
	}
	prog, err := bld.Program()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

// mnemonics maps each mnemonic to its opcode; built from the
// disassembly table so the two can never diverge.
var mnemonics = func() map[string]Opcode {
	m := make(map[string]Opcode, len(opNames))
	for op, name := range opNames {
		m[name] = op
	}
	return m
}()

func parseLine(bld *Builder, line string) error {
	fields := strings.Fields(line)
	mnem := strings.ToLower(fields[0])
	op, ok := mnemonics[mnem]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnem)
	}
	args := strings.Split(strings.TrimSpace(strings.TrimPrefix(line, fields[0])), ",")
	for i := range args {
		args[i] = strings.TrimSpace(args[i])
	}
	if len(args) == 1 && args[0] == "" {
		args = nil
	}

	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s needs %d operands, got %d", mnem, n, len(args))
		}
		return nil
	}

	switch op {
	case HALT, NOP:
		if err := need(0); err != nil {
			return err
		}
		bld.Emit(Instruction{Op: op})
	case JMP:
		if err := need(1); err != nil {
			return err
		}
		bld.Jmp(args[0])
	case BNE, BLT:
		if err := need(3); err != nil {
			return err
		}
		a, err := parseReg(args[0], 's')
		if err != nil {
			return err
		}
		b, err := parseReg(args[1], 's')
		if err != nil {
			return err
		}
		bld.Branch(op, a, b, args[2])
	case SLI:
		if err := need(2); err != nil {
			return err
		}
		d, err := parseReg(args[0], 's')
		if err != nil {
			return err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return err
		}
		bld.SLi(d, imm)
	case SADDI:
		if err := need(3); err != nil {
			return err
		}
		d, err := parseReg(args[0], 's')
		if err != nil {
			return err
		}
		a, err := parseReg(args[1], 's')
		if err != nil {
			return err
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return err
		}
		bld.SAddI(d, a, imm)
	case SADD, SSUB, SMUL:
		if err := need(3); err != nil {
			return err
		}
		d, a, b, err := parse3Reg(args, 's', 's', 's')
		if err != nil {
			return err
		}
		bld.S3(op, d, a, b)
	case SLD, SST:
		if err := need(2); err != nil {
			return err
		}
		d, err := parseReg(args[0], 's')
		if err != nil {
			return err
		}
		base, off, err := parseMem(args[1])
		if err != nil {
			return err
		}
		bld.Emit(Instruction{Op: op, Dst: d, A: base, Imm: off})
	case VLOAD, VSTORE:
		if err := need(2); err != nil {
			return err
		}
		d, err := parseReg(args[0], 'v')
		if err != nil {
			return err
		}
		base, off, err := parseMem(args[1])
		if err != nil {
			return err
		}
		if off != 0 {
			return fmt.Errorf("%s does not take an address offset", mnem)
		}
		bld.Emit(Instruction{Op: op, Dst: d, A: base})
	case VBCAST:
		if err := need(2); err != nil {
			return err
		}
		d, err := parseReg(args[0], 'v')
		if err != nil {
			return err
		}
		a, err := parseReg(args[1], 's')
		if err != nil {
			return err
		}
		bld.VBcast(d, a)
	case VREDSUM:
		if err := need(2); err != nil {
			return err
		}
		d, err := parseReg(args[0], 's')
		if err != nil {
			return err
		}
		a, err := parseReg(args[1], 'v')
		if err != nil {
			return err
		}
		bld.VRedSum(d, a)
	case VSLL, VSRL, VSRA, VSHUF, VREDGRP:
		if err := need(3); err != nil {
			return err
		}
		d, err := parseReg(args[0], 'v')
		if err != nil {
			return err
		}
		a, err := parseReg(args[1], 'v')
		if err != nil {
			return err
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return err
		}
		bld.VImm(op, d, a, imm)
	case VGATHER:
		if err := need(3); err != nil {
			return err
		}
		d, err := parseReg(args[0], 'v')
		if err != nil {
			return err
		}
		a, err := parseReg(args[1], 's')
		if err != nil {
			return err
		}
		b, err := parseReg(args[2], 's')
		if err != nil {
			return err
		}
		bld.Emit(Instruction{Op: VGATHER, Dst: d, A: a, B: b})
	case SAGU:
		if err := need(3); err != nil {
			return err
		}
		imm, err := parseImm(args[0])
		if err != nil {
			return err
		}
		a, err := parseReg(args[1], 's')
		if err != nil {
			return err
		}
		b, err := parseReg(args[2], 's')
		if err != nil {
			return err
		}
		bld.Emit(Instruction{Op: SAGU, A: a, B: b, Imm: imm})
	case VLOADB, VSTOREB:
		if err := need(1); err != nil {
			return err
		}
		d, err := parseReg(args[0], 'v')
		if err != nil {
			return err
		}
		bld.Emit(Instruction{Op: op, Dst: d})
	default:
		// Remaining three-register vector forms (vadd … vsel).
		if err := need(3); err != nil {
			return err
		}
		d, a, b, err := parse3Reg(args, 'v', 'v', 'v')
		if err != nil {
			return err
		}
		bld.V3(op, d, a, b)
	}
	return nil
}

// parseReg parses "v12" or "s3" with the expected register class.
func parseReg(tok string, class byte) (int, error) {
	if len(tok) < 2 || tok[0] != class {
		return 0, fmt.Errorf("expected %c-register, got %q", class, tok)
	}
	n, err := strconv.Atoi(tok[1:])
	if err != nil {
		return 0, fmt.Errorf("bad register %q", tok)
	}
	limit := VRegs
	if class == 's' {
		limit = SRegs
	}
	if n < 0 || n >= limit {
		return 0, fmt.Errorf("register %q outside %c0–%c%d", tok, class, class, limit-1)
	}
	return n, nil
}

func parse3Reg(args []string, c0, c1, c2 byte) (d, a, b int, err error) {
	if d, err = parseReg(args[0], c0); err != nil {
		return
	}
	if a, err = parseReg(args[1], c1); err != nil {
		return
	}
	b, err = parseReg(args[2], c2)
	return
}

// parseImm parses a decimal immediate.
func parseImm(tok string) (int, error) {
	n, err := strconv.Atoi(tok)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", tok)
	}
	return n, nil
}

// parseMem parses "(s2)" or "(s2+3)" into (base register, offset).
func parseMem(tok string) (base, off int, err error) {
	if !strings.HasPrefix(tok, "(") || !strings.HasSuffix(tok, ")") {
		return 0, 0, fmt.Errorf("expected (sN) or (sN+imm), got %q", tok)
	}
	inner := tok[1 : len(tok)-1]
	regPart, offPart := inner, ""
	if i := strings.IndexAny(inner, "+-"); i > 0 {
		regPart = inner[:i]
		offPart = inner[i:]
		if strings.HasPrefix(offPart, "+") {
			offPart = offPart[1:]
		}
	}
	base, err = parseReg(strings.TrimSpace(regPart), 's')
	if err != nil {
		return 0, 0, err
	}
	if offPart != "" {
		off, err = parseImm(strings.TrimSpace(offPart))
		if err != nil {
			return 0, 0, err
		}
	}
	return base, off, nil
}
