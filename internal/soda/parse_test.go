package soda

import (
	"strings"
	"testing"
)

func TestAssembleBasicProgram(t *testing.T) {
	src := `
	; sum 1..10
	sli s1, 0       ; acc
	sli s2, 0       ; i
	sli s3, 10      ; limit
loop:
	saddi s2, s2, 1
	sadd s1, s1, s2
	bne s2, s3, loop
	halt
`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	pe := NewPE()
	if err := pe.Run(prog, 1000); err != nil {
		t.Fatal(err)
	}
	if pe.SRF[1] != 55 {
		t.Errorf("sum = %d, want 55", pe.SRF[1])
	}
}

func TestAssembleVectorOps(t *testing.T) {
	src := `
	sli s1, 5
	vbcast v1, s1
	vadd v2, v1, v1
	vsll v2, v2, 1
	vredsum s2, v2
	halt
`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	pe := NewPE()
	if err := pe.Run(prog, 100); err != nil {
		t.Fatal(err)
	}
	if want := uint16(5 * 2 * 2 * Lanes); pe.SRF[2] != want {
		t.Errorf("result = %d, want %d", pe.SRF[2], want)
	}
}

func TestAssembleMemoryForms(t *testing.T) {
	src := `
	sli s1, 100
	sli s2, 777
	sst s2, (s1+5)
	sld s3, (s1+5)
	sli s4, 3
	vload v0, (s4)
	vstore v0, (s4)
	halt
`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	pe := NewPE()
	if err := pe.Run(prog, 100); err != nil {
		t.Fatal(err)
	}
	if pe.SRF[3] != 777 {
		t.Errorf("scalar round trip = %d", pe.SRF[3])
	}
}

func TestAssembleAGUForms(t *testing.T) {
	src := `
	sli s1, 20
	sli s2, 1
	sagu 0, s1, s2
	sagu 1, s1, s2
	sagu 2, s1, s2
	sagu 3, s1, s2
	vloadb v0
	vstoreb v0
	halt
`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := NewPE().Run(prog, 100); err != nil {
		t.Fatal(err)
	}
}

// TestAssembleDisassembleRoundTrip: parsing the disassembly of a real
// kernel reproduces the instruction stream exactly (branch targets
// excepted — they disassemble as resolved addresses, so the FIR kernel
// used here is branch-free).
func TestAssembleDisassembleRoundTrip(t *testing.T) {
	k := FIRKernel(make([]uint16, Lanes), []int16{1, -2, 3})
	var b strings.Builder
	for _, in := range k.Program {
		b.WriteString(in.String())
		b.WriteByte('\n')
	}
	prog, err := Assemble(b.String())
	if err != nil {
		t.Fatalf("reassembling disassembly: %v\n%s", err, b.String())
	}
	if len(prog) != len(k.Program) {
		t.Fatalf("length %d, want %d", len(prog), len(k.Program))
	}
	for i := range prog {
		if prog[i] != k.Program[i] {
			t.Errorf("instruction %d = %+v, want %+v", i, prog[i], k.Program[i])
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"unknown mnemonic", "frobnicate v0, v1, v2"},
		{"bad register class", "vadd s0, v1, v2"},
		{"register range", "vadd v40, v1, v2"},
		{"scalar range", "sli s16, 3"},
		{"operand count", "vadd v0, v1"},
		{"bad immediate", "sli s1, abc"},
		{"bad mem operand", "sld s1, s2"},
		{"undefined label", "jmp nowhere\nhalt"},
		{"empty label", ":"},
		{"vload with offset", "sli s1, 0\nvload v0, (s1+4)"},
	}
	for _, c := range cases {
		if _, err := Assemble(c.src); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestAssembleCommentsAndBlank(t *testing.T) {
	prog, err := Assemble("\n  # full comment\n ; another\n\nhalt ; trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog) != 1 || prog[0].Op != HALT {
		t.Errorf("prog = %v", prog)
	}
}

func TestAssembleNegativeImmediates(t *testing.T) {
	prog, err := Assemble("sli s1, -7\nsaddi s1, s1, -1\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	pe := NewPE()
	if err := pe.Run(prog, 10); err != nil {
		t.Fatal(err)
	}
	if int16(pe.SRF[1]) != -8 {
		t.Errorf("s1 = %d, want -8", int16(pe.SRF[1]))
	}
}
