package soda

import (
	"math"
	"testing"

	"github.com/ntvsim/ntvsim/internal/rng"
)

func TestDCT8KernelRunsAndChecks(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 5; trial++ {
		x := make([]int16, Lanes)
		for i := range x {
			x[i] = int16(r.IntN(511) - 255)
		}
		pe := NewPE()
		if err := RunKernel(pe, DCT8Kernel(x)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if pe.Stats.SSNRoutes != dctBlock {
			t.Errorf("DCT should shuffle once per input position: %d routes", pe.Stats.SSNRoutes)
		}
	}
}

// TestDCT8MatchesFloat verifies the fixed-point transform against the
// floating-point DCT-II within quantization tolerance.
func TestDCT8MatchesFloat(t *testing.T) {
	r := rng.New(2)
	x := make([]int16, Lanes)
	for i := range x {
		x[i] = int16(r.IntN(201) - 100)
	}
	pe := NewPE()
	if err := RunKernel(pe, DCT8Kernel(x)); err != nil {
		t.Fatal(err)
	}
	var got [Lanes]uint16
	if err := pe.Mem.ReadRow(dctOut, got[:]); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < dctBlocks; b++ {
		for u := 0; u < dctBlock; u++ {
			var want float64
			s := math.Sqrt(2.0 / dctBlock)
			if u == 0 {
				s = math.Sqrt(1.0 / dctBlock)
			}
			for k := 0; k < dctBlock; k++ {
				want += float64(x[b*dctBlock+k]) * s *
					math.Cos(math.Pi*float64(2*k+1)*float64(u)/(2*dctBlock))
			}
			if d := math.Abs(float64(int16(got[b*dctBlock+u])) - want); d > 6 {
				t.Fatalf("block %d coef %d: got %d, float %v (Δ%v)",
					b, u, int16(got[b*dctBlock+u]), want, d)
			}
		}
	}
}

// TestDCT8DCOnly: a constant block concentrates into the DC coefficient.
func TestDCT8DCOnly(t *testing.T) {
	x := make([]int16, Lanes)
	for i := range x {
		x[i] = 100
	}
	pe := NewPE()
	if err := RunKernel(pe, DCT8Kernel(x)); err != nil {
		t.Fatal(err)
	}
	var got [Lanes]uint16
	if err := pe.Mem.ReadRow(dctOut, got[:]); err != nil {
		t.Fatal(err)
	}
	// DC = 100·8·√(1/8) ≈ 282.8; AC coefficients ≈ 0.
	for b := 0; b < dctBlocks; b++ {
		dc := int16(got[b*dctBlock])
		if dc < 270 || dc > 295 {
			t.Errorf("block %d DC = %d, want ≈283", b, dc)
		}
		for u := 1; u < dctBlock; u++ {
			if ac := int16(got[b*dctBlock+u]); ac < -6 || ac > 6 {
				t.Errorf("block %d AC[%d] = %d, want ≈0", b, u, ac)
			}
		}
	}
}

func TestDCT8InputValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized DCT input accepted")
		}
	}()
	x := make([]int16, Lanes)
	x[0] = 256
	DCT8Kernel(x)
}

func TestMedianKernel(t *testing.T) {
	r := rng.New(3)
	for trial := 0; trial < 5; trial++ {
		x := randVec(r, Lanes, 1<<14)
		if err := RunKernel(NewPE(), MedianKernel(x)); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestMedianRemovesImpulse(t *testing.T) {
	// A single spike in a constant signal must vanish.
	x := make([]uint16, Lanes)
	for i := range x {
		x[i] = 1000
	}
	x[50] = 30000
	k := MedianKernel(x)
	pe := NewPE()
	if err := RunKernel(pe, k); err != nil {
		t.Fatal(err)
	}
	var out [Lanes]uint16
	if err := pe.Mem.ReadRow(rowOut, out[:]); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != 1000 {
			t.Fatalf("lane %d = %d after median, spike survived", i, v)
		}
	}
}

func TestMedianPreservesMonotone(t *testing.T) {
	// Median filtering a monotone ramp leaves the interior unchanged.
	x := make([]uint16, Lanes)
	for i := range x {
		x[i] = uint16(i * 10)
	}
	pe := NewPE()
	if err := RunKernel(pe, MedianKernel(x)); err != nil {
		t.Fatal(err)
	}
	var out [Lanes]uint16
	if err := pe.Mem.ReadRow(rowOut, out[:]); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < Lanes-1; i++ {
		if out[i] != x[i] {
			t.Fatalf("interior lane %d changed: %d → %d", i, x[i], out[i])
		}
	}
}
