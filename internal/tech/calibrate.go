package tech

import (
	"fmt"
	"math"
	"strings"

	"github.com/ntvsim/ntvsim/internal/device"
	"github.com/ntvsim/ntvsim/internal/optimize"
)

// FitResult reports a calibration outcome: the fitted parameters and the
// per-anchor residuals, so the quality of the reproduction is auditable.
type FitResult struct {
	Node      string
	Dev       device.Params
	Var       device.Variation
	Objective float64
	Rows      []FitRow
}

// FitRow compares one anchor against the fitted model.
type FitRow struct {
	Vdd                   float64
	GateTarget, GateFit   float64 // 3σ/μ %, 0 target means "not fitted"
	ChainTarget, ChainFit float64 // 3σ/μ %
}

// String renders the fit report as an aligned table.
func (r FitResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: obj=%.4g Vth0=%.4f n=%.3f Kd=%.4g\n", r.Node, r.Objective, r.Dev.Vth0, r.Dev.N, r.Dev.Kd)
	fmt.Fprintf(&b, "  σVth(WID)=%.1f mV σVth(D2D)=%.1f mV σMul(WID)=%.3f σMul(D2D)=%.3f\n",
		r.Var.SigmaVthWID*1e3, r.Var.SigmaVthD2D*1e3, r.Var.SigmaMulWID, r.Var.SigmaMulD2D)
	fmt.Fprintf(&b, "  %6s %18s %18s\n", "Vdd", "gate 3σ/μ tgt→fit", "chain 3σ/μ tgt→fit")
	for _, row := range r.Rows {
		gate := "      —      "
		if row.GateTarget > 0 {
			gate = fmt.Sprintf("%6.2f→%-6.2f", row.GateTarget, row.GateFit)
		}
		fmt.Fprintf(&b, "  %6.2f %18s %11.2f→%-6.2f\n", row.Vdd, gate, row.ChainTarget, row.ChainFit)
	}
	return b.String()
}

// dualSlopeRatio is the prior ratio of die-to-die to within-die sigma
// used to regularize nodes whose targets cannot separate the two
// components (no single-gate anchors). The value comes from the 90 nm
// fit, where Figure 1 pins both.
const dualSlopeRatio = 0.375

// Fit calibrates device and variation parameters against t using
// Nelder–Mead on the quadrature-based moment model. The returned Kd is
// set so the nominal FO4 delay matches t.FO4At at t.FO4Vdd.
func Fit(t CalibTargets) FitResult {
	hasGate := false
	for _, a := range t.Anchors {
		if a.Gate > 0 {
			hasGate = true
		}
	}

	objective := func(x []float64) float64 {
		p := device.Params{Vth0: x[0], N: x[1], Kd: 1}
		v := device.Variation{
			SigmaVthWID: x[2], SigmaVthD2D: x[3],
			SigmaMulWID: x[4], SigmaMulD2D: x[5],
		}
		if p.Vth0 < 0.10 || p.Vth0 > 0.60 || p.N < 1.0 || p.N > 2.5 {
			return math.Inf(1)
		}
		for _, s := range x[2:6] {
			if s < 0 || s > 0.2 {
				return math.Inf(1)
			}
		}
		var obj float64
		for _, a := range t.Anchors {
			if a.Gate > 0 {
				gm, gv := device.GateMoments(p, v, a.Vdd)
				r := (device.ThreeSigmaOverMu(gm, gv) - a.Gate) / a.Gate
				obj += r * r
			}
			cm, cv := device.ChainMoments(p, v, a.Vdd, ChainLength)
			r := (device.ThreeSigmaOverMu(cm, cv) - a.Chain) / a.Chain
			obj += 2 * r * r
		}
		if t.DelayRatio > 0 {
			ratio := p.NominalDelay(t.RatioLoV) / p.NominalDelay(t.RatioHiV)
			r := (ratio - t.DelayRatio) / t.DelayRatio
			obj += 4 * r * r
		}
		// Weak priors keeping the D2D/WID split identifiable when the
		// targets alone cannot separate it.
		w := 0.05
		if !hasGate {
			w = 1.0
		}
		if x[2] > 0 {
			r := x[3]/x[2] - dualSlopeRatio
			obj += w * r * r
		}
		if x[4] > 0 {
			r := x[5]/x[4] - dualSlopeRatio
			obj += w * r * r
		}
		return obj
	}

	iters := t.FitIter
	if iters <= 0 {
		iters = 4000
	}
	x0 := []float64{0.33, 1.45, 0.025, 0.010, 0.035, 0.013}
	best := optimize.NelderMead(objective, x0, optimize.NelderMeadOptions{
		MaxIter: iters, TolF: 1e-12, TolX: 1e-9, Scale: 0.02,
	})
	// Restart from the optimum: Nelder–Mead on 6 dimensions benefits
	// from a fresh simplex around the first solution.
	best = optimize.NelderMead(objective, best.X, optimize.NelderMeadOptions{
		MaxIter: iters, TolF: 1e-12, TolX: 1e-9, Scale: 0.005,
	})

	p := device.Params{Vth0: best.X[0], N: best.X[1], Kd: 1}
	v := device.Variation{
		SigmaVthWID: best.X[2], SigmaVthD2D: best.X[3],
		SigmaMulWID: best.X[4], SigmaMulD2D: best.X[5],
	}
	// Pin the absolute delay scale: Kd such that NominalDelay(FO4Vdd) = FO4At.
	p.Kd = t.FO4At * p.OnCurrent(t.FO4Vdd, p.Vth0) / t.FO4Vdd

	res := FitResult{Node: t.NodeName, Dev: p, Var: v, Objective: best.F}
	for _, a := range t.Anchors {
		row := FitRow{Vdd: a.Vdd, GateTarget: a.Gate, ChainTarget: a.Chain}
		gm, gv := device.GateMoments(p, v, a.Vdd)
		row.GateFit = device.ThreeSigmaOverMu(gm, gv)
		cm, cv := device.ChainMoments(p, v, a.Vdd, ChainLength)
		row.ChainFit = device.ThreeSigmaOverMu(cm, cv)
		res.Rows = append(res.Rows, row)
	}
	return res
}
