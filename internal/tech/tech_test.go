package tech

import (
	"math"
	"strings"
	"testing"

	"github.com/ntvsim/ntvsim/internal/device"
)

func TestNodesComplete(t *testing.T) {
	nodes := Nodes()
	if len(nodes) != 4 {
		t.Fatalf("want 4 nodes, got %d", len(nodes))
	}
	wantOrder := []int{90, 45, 32, 22}
	for i, n := range nodes {
		if n.Feature != wantOrder[i] {
			t.Errorf("node %d feature %d, want %d", i, n.Feature, wantOrder[i])
		}
		if err := n.Dev.Validate(); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
		if err := n.Var.Validate(); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
		if n.VddNominal < n.VddMin {
			t.Errorf("%s nominal below minimum", n.Name)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"90nm", "45nm GP", "32nm", "22nm PTM HP"} {
		if _, err := ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("65nm"); err == nil {
		t.Error("unknown node accepted")
	} else if !strings.Contains(err.Error(), "90nm") {
		t.Error("error should list valid names")
	}
}

// TestCalibrationAnchors90nm verifies the committed 90 nm parameters
// reproduce the paper's Figure 1 values — the core calibration claim.
// Tolerances: the paper's own values carry ≈±5 % MC noise at 1000
// samples; we allow 10 % relative on each anchor via the (noise-free)
// quadrature moments.
func TestCalibrationAnchors90nm(t *testing.T) {
	node := N90
	for _, a := range Targets90().Anchors {
		gm, gv := device.GateMoments(node.Dev, node.Var, a.Vdd)
		gate := device.ThreeSigmaOverMu(gm, gv)
		if rel := math.Abs(gate-a.Gate) / a.Gate; rel > 0.10 {
			t.Errorf("gate 3σ/μ @%gV = %.2f, paper %.2f (rel %.2f)", a.Vdd, gate, a.Gate, rel)
		}
		cm, cv := device.ChainMoments(node.Dev, node.Var, a.Vdd, ChainLength)
		chain := device.ThreeSigmaOverMu(cm, cv)
		if rel := math.Abs(chain-a.Chain) / a.Chain; rel > 0.10 {
			t.Errorf("chain 3σ/μ @%gV = %.2f, paper %.2f (rel %.2f)", a.Vdd, chain, a.Chain, rel)
		}
	}
}

// TestCalibrationAnchorsChainAll verifies all four nodes against their
// chain anchors.
func TestCalibrationAnchorsChainAll(t *testing.T) {
	targets := AllTargets()
	nodes := Nodes()
	for i, tg := range targets {
		node := nodes[i]
		if node.Name != tg.NodeName {
			t.Fatalf("target %q order mismatch with node %q", tg.NodeName, node.Name)
		}
		for _, a := range tg.Anchors {
			cm, cv := device.ChainMoments(node.Dev, node.Var, a.Vdd, ChainLength)
			chain := device.ThreeSigmaOverMu(cm, cv)
			if rel := math.Abs(chain-a.Chain) / a.Chain; rel > 0.10 {
				t.Errorf("%s chain 3σ/μ @%gV = %.2f, target %.2f", node.Name, a.Vdd, chain, a.Chain)
			}
		}
	}
}

// TestAbsoluteDelayAnchors checks the §3.2 absolute delays: chain of 50
// at 0.5 V ≈ 22.05 ns and at 0.6 V ≈ 8.99 ns in 90 nm.
func TestAbsoluteDelayAnchors(t *testing.T) {
	cm5, _ := device.ChainMoments(N90.Dev, N90.Var, 0.5, ChainLength)
	cm6, _ := device.ChainMoments(N90.Dev, N90.Var, 0.6, ChainLength)
	if math.Abs(cm5-22.05e-9)/22.05e-9 > 0.10 {
		t.Errorf("chain@0.5V = %.3g s, paper 22.05 ns", cm5)
	}
	if math.Abs(cm6-8.99e-9)/8.99e-9 > 0.10 {
		t.Errorf("chain@0.6V = %.3g s, paper 8.99 ns", cm6)
	}
}

// TestScalingTrend verifies the paper's technology-scaling claim: chain
// variation at 0.55 V grows monotonically from 90 nm to 22 nm, by ≈2.5×
// in total.
func TestScalingTrend(t *testing.T) {
	var prev float64
	var first, last float64
	for i, node := range Nodes() {
		cm, cv := device.ChainMoments(node.Dev, node.Var, 0.55, ChainLength)
		cur := device.ThreeSigmaOverMu(cm, cv)
		if cur <= prev {
			t.Errorf("%s: variation %v not above previous node %v", node.Name, cur, prev)
		}
		if i == 0 {
			first = cur
		}
		last = cur
		prev = cur
	}
	if ratio := last / first; ratio < 2.0 || ratio > 3.2 {
		t.Errorf("90→22 nm scaling ratio %v, paper ≈2.5×", ratio)
	}
}

// TestFitSmoke runs a reduced calibration fit — three anchors only — to
// keep the fitting path covered without the multi-minute full fit, which
// runs via cmd/calibrate.
func TestFitSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration fit is slow")
	}
	tg := Targets22()
	tg.Anchors = []Anchor{tg.Anchors[0], tg.Anchors[4]}
	tg.FitIter = 120
	res := Fit(tg)
	if res.Objective > 2 {
		t.Errorf("fit objective %v too poor", res.Objective)
	}
	if err := res.Dev.Validate(); err != nil {
		t.Errorf("fitted params invalid: %v", err)
	}
	if res.String() == "" {
		t.Error("empty fit report")
	}
}
