package tech

// This file records the quantitative anchors printed in the paper that
// the device calibration is fitted against (and that the test suite uses
// as reproduction targets). Values are 3σ/μ in percent unless noted.

// Anchor is one calibration target at a supply voltage.
type Anchor struct {
	Vdd   float64
	Gate  float64 // 3σ/μ (%) of a single FO4 inverter delay; 0 if not reported
	Chain float64 // 3σ/μ (%) of a 50-FO4-inverter chain delay
}

// CalibTargets collects everything the fit for one node uses.
type CalibTargets struct {
	NodeName string
	Anchors  []Anchor

	// DelayRatio constrains the shape of delay vs Vdd:
	// τ(RatioLoV) / τ(RatioHiV) = DelayRatio. Zero disables the term.
	RatioLoV, RatioHiV, DelayRatio float64

	// FO4At pins the absolute delay scale: nominal FO4 delay (seconds)
	// at FO4Vdd. Applied after the shape fit to set Kd.
	FO4Vdd float64
	FO4At  float64

	// FitIter overrides the Nelder-Mead iteration budget per restart
	// (default 4000). Tests use a small budget for smoke coverage.
	FitIter int
}

// Targets90 are taken directly from Figure 1 (both panels), plus the
// absolute chain delays quoted in §3.2: 50-FO4 chain = 22.05 ns @0.5 V
// and 8.99 ns @0.6 V, giving FO4(0.6 V) = 179.8 ps and the delay ratio
// τ(0.5)/τ(0.6) = 2.4527.
func Targets90() CalibTargets {
	return CalibTargets{
		NodeName: "90nm GP",
		Anchors: []Anchor{
			{Vdd: 1.0, Gate: 15.58, Chain: 5.76},
			{Vdd: 0.9, Gate: 15.70, Chain: 5.84},
			{Vdd: 0.8, Gate: 16.29, Chain: 5.96},
			{Vdd: 0.7, Gate: 17.74, Chain: 6.17},
			{Vdd: 0.6, Gate: 22.25, Chain: 6.81},
			{Vdd: 0.5, Gate: 35.49, Chain: 9.43},
		},
		RatioLoV: 0.5, RatioHiV: 0.6, DelayRatio: 22.05 / 8.99,
		FO4Vdd: 0.6, FO4At: 179.8e-12,
	}
}

// Targets45 holds the 45 nm chain targets. The paper reports the 45 nm
// curve only graphically (Figure 2); these values are read consistently
// with the narrated facts: the curve lies between 90 nm and 32 nm, all
// curves rise steeply below 0.6 V, and 90 nm → 22 nm is ≈2.5× at 0.55 V.
func Targets45() CalibTargets {
	return CalibTargets{
		NodeName: "45nm GP",
		Anchors: []Anchor{
			{Vdd: 1.0, Chain: 6.3},
			{Vdd: 0.9, Chain: 6.7},
			{Vdd: 0.8, Chain: 7.3},
			{Vdd: 0.7, Chain: 8.4},
			{Vdd: 0.6, Chain: 10.5},
			{Vdd: 0.55, Chain: 12.5},
			{Vdd: 0.5, Chain: 16.0},
		},
		FO4Vdd: 1.0, FO4At: 16e-12,
	}
}

// Targets32 holds the 32 nm PTM HP chain targets (Figure 2, read as for
// Targets45; simulated only up to the 0.9 V nominal).
func Targets32() CalibTargets {
	return CalibTargets{
		NodeName: "32nm PTM HP",
		Anchors: []Anchor{
			{Vdd: 0.9, Chain: 8.5},
			{Vdd: 0.8, Chain: 9.5},
			{Vdd: 0.7, Chain: 11.5},
			{Vdd: 0.6, Chain: 15.0},
			{Vdd: 0.55, Chain: 17.5},
			{Vdd: 0.5, Chain: 21.0},
		},
		FO4Vdd: 0.9, FO4At: 18e-12,
	}
}

// Targets22 holds the 22 nm PTM HP chain targets. The endpoints are
// stated numerically in §3.1: ≈11 % at the 0.8 V nominal rising to 25 %
// at 0.5 V.
func Targets22() CalibTargets {
	return CalibTargets{
		NodeName: "22nm PTM HP",
		Anchors: []Anchor{
			{Vdd: 0.8, Chain: 11.0},
			{Vdd: 0.7, Chain: 13.5},
			{Vdd: 0.6, Chain: 17.5},
			{Vdd: 0.55, Chain: 20.0},
			{Vdd: 0.5, Chain: 25.0},
		},
		FO4Vdd: 0.8, FO4At: 20e-12,
	}
}

// AllTargets returns the calibration targets in node order.
func AllTargets() []CalibTargets {
	return []CalibTargets{Targets90(), Targets45(), Targets32(), Targets22()}
}
