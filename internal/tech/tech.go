// Package tech defines the four technology nodes studied in the paper —
// 90 nm GP, 45 nm GP, 32 nm PTM HP and 22 nm PTM HP — as calibrated
// parameter sets for the internal/device models, together with the
// paper-reported anchor values the calibration was fitted against.
//
// The committed parameters were produced by cmd/calibrate (Nelder–Mead
// against the anchors in anchors.go) and are checked in as constants so
// that every experiment is deterministic and does not depend on running
// the fit. Re-running cmd/calibrate regenerates them.
package tech

import (
	"fmt"

	"github.com/ntvsim/ntvsim/internal/device"
)

// Node is one calibrated technology corner.
type Node struct {
	Name       string  // e.g. "90nm GP"
	Feature    int     // drawn feature size, nm
	Model      string  // "GP" (commercial general purpose) or "PTM HP"
	VddNominal float64 // full/nominal supply voltage, V (the paper's "FV")
	VddMin     float64 // lowest supply simulated in the paper, V

	Dev device.Params
	Var device.Variation
}

// Nodes returns the four technology nodes in feature-size order
// (largest first), matching the paper's presentation order.
func Nodes() []Node {
	return []Node{N90, N45, N32, N22}
}

// ByName returns the node with the given name (e.g. "90nm GP", "22nm PTM HP")
// or an error listing the valid names. Matching also accepts the short
// form "90nm", "45nm", "32nm", "22nm".
func ByName(name string) (Node, error) {
	for _, n := range Nodes() {
		if n.Name == name || fmt.Sprintf("%dnm", n.Feature) == name {
			return n, nil
		}
	}
	return Node{}, fmt.Errorf("tech: unknown node %q (want one of 90nm, 45nm, 32nm, 22nm)", name)
}

// The calibrated nodes. Parameters are fitted by cmd/calibrate; see
// anchors.go for the targets and DESIGN.md for the model derivation.
var (
	// N90 is the 90 nm commercial general-purpose model, the paper's
	// primary technology (Figures 1, 3, 5; 1.0 V nominal).
	N90 = Node{
		Name: "90nm GP", Feature: 90, Model: "GP",
		VddNominal: 1.0, VddMin: 0.5,
		Dev: device.Params{Vth0: 0.370136, N: 1.000000, Kd: 5.954886e-09, DIBL: 0.08, IleakK: 300},
		Var: device.Variation{SigmaVthWID: 0.007161, SigmaVthD2D: 0.001459, SigmaMulWID: 0.040213, SigmaMulD2D: 0.017053},
	}
	// N45 is the 45 nm commercial general-purpose model (1.0 V nominal).
	N45 = Node{
		Name: "45nm GP", Feature: 45, Model: "GP",
		VddNominal: 1.0, VddMin: 0.5,
		Dev: device.Params{Vth0: 0.378478, N: 1.000000, Kd: 2.312344e-09, DIBL: 0.10, IleakK: 250},
		Var: device.Variation{SigmaVthWID: 0.008463, SigmaVthD2D: 0.003173, SigmaMulWID: 0.045097, SigmaMulD2D: 0.016914},
	}
	// N32 is the 32 nm PTM high-performance predictive model
	// (0.9 V nominal; the paper simulates it only up to 0.9 V).
	N32 = Node{
		Name: "32nm PTM HP", Feature: 32, Model: "PTM HP",
		VddNominal: 0.9, VddMin: 0.5,
		Dev: device.Params{Vth0: 0.409726, N: 1.493027, Kd: 8.072892e-10, DIBL: 0.12, IleakK: 40},
		Var: device.Variation{SigmaVthWID: 0.011987, SigmaVthD2D: 0.004495, SigmaMulWID: 0.050730, SigmaMulD2D: 0.019024},
	}
	// N22 is the 22 nm PTM high-performance predictive model
	// (0.8 V nominal; the paper simulates it only up to 0.8 V).
	N22 = Node{
		Name: "22nm PTM HP", Feature: 22, Model: "PTM HP",
		VddNominal: 0.8, VddMin: 0.5,
		Dev: device.Params{Vth0: 0.269342, N: 1.000000, Kd: 2.633849e-09, DIBL: 0.15, IleakK: 25},
		Var: device.Variation{SigmaVthWID: 0.022978, SigmaVthD2D: 0.008613, SigmaMulWID: 0.028505, SigmaMulD2D: 0.010689},
	}
)

// ChainLength is the paper's canonical critical-path emulation: a chain
// of 50 FO4 inverters (§3.2).
const ChainLength = 50
