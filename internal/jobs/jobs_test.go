package jobs

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ntvsim/ntvsim/internal/montecarlo"
	"github.com/ntvsim/ntvsim/internal/rng"
	"github.com/ntvsim/ntvsim/internal/telemetry"
)

// waitState polls until the job reaches a terminal state or the deadline
// expires, returning the final snapshot.
func waitState(t *testing.T, m *Manager, id string, timeout time.Duration) Snapshot {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		s, ok := m.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if s.State.Terminal() {
			return s
		}
		time.Sleep(2 * time.Millisecond)
	}
	s, _ := m.Get(id)
	t.Fatalf("job %s stuck in state %s after %v", id, s.State, timeout)
	return Snapshot{}
}

func TestJobLifecycle(t *testing.T) {
	m := NewManager(2, 8)
	defer m.Close()
	id, err := m.Submit("ok", func(ctx context.Context) (any, error) {
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	s := waitState(t, m, id, 5*time.Second)
	if s.State != Done || s.Value != 42 || s.Name != "ok" {
		t.Errorf("snapshot = %+v", s)
	}
	if s.Finished.Before(s.Created) {
		t.Error("finished before created")
	}

	id, err = m.Submit("boom", func(ctx context.Context) (any, error) {
		return nil, errors.New("kaput")
	})
	if err != nil {
		t.Fatal(err)
	}
	if s = waitState(t, m, id, 5*time.Second); s.State != Failed || s.Error != "kaput" {
		t.Errorf("failed snapshot = %+v", s)
	}

	if _, ok := m.Get("no-such-id"); ok {
		t.Error("Get invented a job")
	}
}

// TestCancelMidRunStopsSampling submits a job that would evaluate 2^22
// Monte-Carlo samples, cancels it as soon as sampling starts, and
// asserts both that the job finalizes as Cancelled quickly and that the
// sampler stopped far short of the full run.
func TestCancelMidRunStopsSampling(t *testing.T) {
	m := NewManager(1, 4)
	defer m.Close()

	const n = 1 << 22
	var evaluated atomic.Int64
	started := make(chan struct{})
	var once atomic.Bool
	id, err := m.Submit("mc", func(ctx context.Context) (any, error) {
		return montecarlo.SampleCtx(ctx, 7, n, func(r *rng.Stream) float64 {
			if once.CompareAndSwap(false, true) {
				close(started)
			}
			evaluated.Add(1)
			time.Sleep(10 * time.Microsecond) // make the full run take minutes
			return r.Float64()
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("job never started sampling")
	}
	was, ok := m.Cancel(id)
	if !ok {
		t.Fatal("Cancel returned false for a running job")
	}
	if was != Running {
		t.Fatalf("Cancel reported prior state %s, want running", was)
	}
	s := waitState(t, m, id, 5*time.Second)
	if s.State != Cancelled {
		t.Fatalf("state = %s, want cancelled", s.State)
	}
	if got := evaluated.Load(); got >= n/2 {
		t.Errorf("sampling did not stop: %d of %d samples evaluated", got, n)
	}
	if c := m.Counters(); c.Cancelled != 1 {
		t.Errorf("counters = %+v, want 1 cancellation", c)
	}
}

// TestWorkerPoolBound submits more blocking jobs than workers and
// asserts the pool never runs more than its configured width.
func TestWorkerPoolBound(t *testing.T) {
	const workers = 2
	m := NewManager(workers, 16)
	defer m.Close()

	var running, peak atomic.Int64
	gate := make(chan struct{})
	ids := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		id, err := m.Submit("gated", func(ctx context.Context) (any, error) {
			cur := running.Add(1)
			for {
				old := peak.Load()
				if cur <= old || peak.CompareAndSwap(old, cur) {
					break
				}
			}
			defer running.Add(-1)
			select {
			case <-gate:
				return nil, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	// Give the pool time to pull as much as it (wrongly) could.
	time.Sleep(50 * time.Millisecond)
	if got := m.Running(); got != workers {
		t.Errorf("Running = %d, want %d", got, workers)
	}
	close(gate)
	for _, id := range ids {
		if s := waitState(t, m, id, 5*time.Second); s.State != Done {
			t.Errorf("job %s = %s", id, s.State)
		}
	}
	if p := peak.Load(); p != workers {
		t.Errorf("peak concurrency %d, want %d", p, workers)
	}
}

func TestQueueFull(t *testing.T) {
	m := NewManager(1, 1)
	defer m.Close()
	gate := make(chan struct{})
	defer close(gate)
	block := func(ctx context.Context) (any, error) {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return nil, nil
	}
	// One job occupies the worker, one fills the queue; give the worker
	// a moment to pull the first so the queue slot is free.
	if _, err := m.Submit("w", block); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if _, err := m.Submit("q", block); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("overflow", block); !errors.Is(err, ErrQueueFull) {
		t.Errorf("err = %v, want ErrQueueFull", err)
	}
}

// TestCancelQueuedNeverRuns cancels a job while it waits behind a
// blocking one and asserts its Func is never invoked.
func TestCancelQueuedNeverRuns(t *testing.T) {
	m := NewManager(1, 4)
	defer m.Close()
	gate := make(chan struct{})
	if _, err := m.Submit("blocker", func(ctx context.Context) (any, error) {
		<-gate
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	var ran atomic.Bool
	id, err := m.Submit("victim", func(ctx context.Context) (any, error) {
		ran.Store(true)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	was, ok := m.Cancel(id)
	if !ok {
		t.Fatal("Cancel failed for queued job")
	}
	if was != Queued {
		t.Fatalf("Cancel reported prior state %s, want queued", was)
	}
	if s, _ := m.Get(id); s.State != Cancelled {
		t.Fatalf("state = %s immediately after queued cancel", s.State)
	}
	close(gate)
	m.Close()
	if ran.Load() {
		t.Error("cancelled queued job still ran")
	}
	if _, ok := m.Cancel(id); ok {
		t.Error("Cancel succeeded twice")
	}
}

func TestSubmitAfterClose(t *testing.T) {
	m := NewManager(1, 1)
	m.Close()
	if _, err := m.Submit("late", func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

// TestJobProgressSnapshot submits a job that ticks its context's
// progress reporter the way the Monte-Carlo loops do and checks that
// Manager snapshots expose live and final progress with the job id
// available via ContextID.
func TestJobProgressSnapshot(t *testing.T) {
	m := NewManager(1, 4)
	defer m.Close()

	mid := make(chan struct{})
	release := make(chan struct{})
	var ctxID atomic.Value
	id, err := m.Submit("prog", func(ctx context.Context) (any, error) {
		ctxID.Store(ContextID(ctx))
		p := telemetry.ProgressFrom(ctx)
		if p == nil {
			return nil, errors.New("no progress reporter in job context")
		}
		p.AddTotal(100)
		p.SetPhase("first-half")
		p.Add(50)
		close(mid)
		<-release
		p.SetPhase("second-half")
		p.Add(50)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	<-mid
	s, ok := m.Get(id)
	if !ok {
		t.Fatal("job missing")
	}
	if s.Progress.Done != 50 || s.Progress.Total != 100 || s.Progress.Phase != "first-half" {
		t.Errorf("mid-run progress = %+v", s.Progress)
	}
	close(release)
	final := waitState(t, m, id, 5*time.Second)
	if final.Progress.Done != 100 || final.Progress.Total != 100 || final.Progress.Phase != "second-half" {
		t.Errorf("final progress = %+v", final.Progress)
	}
	if got := ctxID.Load(); got != id {
		t.Errorf("ContextID inside job = %v, want %s", got, id)
	}
}

func TestContextIDOutsideJob(t *testing.T) {
	if id := ContextID(context.Background()); id != "" {
		t.Errorf("ContextID on plain context = %q, want empty", id)
	}
}

// TestQueueDepthGauge fills a single-worker manager and watches the
// queue-depth gauge rise and drain.
func TestQueueDepthGauge(t *testing.T) {
	m := NewManager(1, 8)
	defer m.Close()
	if d := m.QueueDepth(); d != 0 {
		t.Fatalf("initial queue depth = %d", d)
	}
	gate := make(chan struct{})
	blocker := func(ctx context.Context) (any, error) { <-gate; return nil, nil }
	first, err := m.Submit("block", blocker)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker picked the first job up.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if s, _ := m.Get(first); s.State == Running {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	var waiting []string
	for i := 0; i < 3; i++ {
		id, err := m.Submit("wait", blocker)
		if err != nil {
			t.Fatal(err)
		}
		waiting = append(waiting, id)
	}
	if d := m.QueueDepth(); d != 3 {
		t.Errorf("queue depth = %d with 3 jobs waiting", d)
	}
	close(gate)
	for _, id := range append([]string{first}, waiting...) {
		waitState(t, m, id, 5*time.Second)
	}
	if d := m.QueueDepth(); d != 0 {
		t.Errorf("queue depth = %d after drain", d)
	}
}
