package jobs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ntvsim/ntvsim/internal/faults"
)

// fastBackoff keeps retry tests quick without losing the seeded jitter.
var fastBackoff = Backoff{Base: time.Millisecond, Max: 5 * time.Millisecond, Seed: 7}

// TestPanicIsolated is the satellite regression test: a panicking Func
// must not take the manager (or the process) down — it finalizes as
// Failed with a captured stack, and the worker keeps serving jobs.
func TestPanicIsolated(t *testing.T) {
	m := NewManager(1, 4)
	defer m.Close()
	id, err := m.Submit("boom", func(ctx context.Context) (any, error) {
		panic("kernel exploded")
	})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	snap := waitState(t, m, id, 5*time.Second)
	if snap.State != Failed {
		t.Fatalf("panicking job finished %s, want failed", snap.State)
	}
	if !strings.Contains(snap.Error, "panic: kernel exploded") {
		t.Fatalf("error %q does not name the panic", snap.Error)
	}
	if !strings.Contains(snap.Stack, "goroutine") {
		t.Fatalf("snapshot carries no stack: %q", snap.Stack)
	}
	if c := m.Counters(); c.Panics != 1 || c.Failed != 1 {
		t.Fatalf("counters = %+v, want Panics=1 Failed=1", c)
	}

	// The single worker survived: the next job runs to completion.
	id2, err := m.Submit("after", func(ctx context.Context) (any, error) { return "alive", nil })
	if err != nil {
		t.Fatalf("Submit after panic: %v", err)
	}
	if snap := waitState(t, m, id2, 5*time.Second); snap.State != Done {
		t.Fatalf("job after panic finished %s (%s)", snap.State, snap.Error)
	}
}

func TestPanicIsNotRetried(t *testing.T) {
	m := NewManager(1, 4)
	defer m.Close()
	m.SetBackoff(fastBackoff)
	var calls atomic.Int32
	id, _ := m.SubmitWith("boom", func(ctx context.Context) (any, error) {
		calls.Add(1)
		panic("always")
	}, SubmitOpts{MaxRetries: 5})
	snap := waitState(t, m, id, 5*time.Second)
	if snap.State != Failed || calls.Load() != 1 {
		t.Fatalf("panicking job: state=%s calls=%d, want failed after exactly 1 attempt",
			snap.State, calls.Load())
	}
}

func TestDeadlineFailsJob(t *testing.T) {
	m := NewManager(1, 4)
	defer m.Close()
	id, err := m.SubmitWith("slow", func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}, SubmitOpts{Deadline: time.Now().Add(30 * time.Millisecond)})
	if err != nil {
		t.Fatalf("SubmitWith: %v", err)
	}
	snap := waitState(t, m, id, 5*time.Second)
	if snap.State != Failed {
		t.Fatalf("deadline-expired job finished %s, want failed", snap.State)
	}
	if !strings.Contains(snap.Error, "deadline") {
		t.Fatalf("error %q does not mention the deadline", snap.Error)
	}
	if snap.Deadline.IsZero() {
		t.Fatal("snapshot lost the deadline")
	}
}

func TestTransientRetrySucceeds(t *testing.T) {
	m := NewManager(1, 4)
	defer m.Close()
	m.SetBackoff(fastBackoff)
	var calls atomic.Int32
	id, _ := m.SubmitWith("flaky", func(ctx context.Context) (any, error) {
		if calls.Add(1) < 3 {
			return nil, Transient(errors.New("blip"))
		}
		return "ok", nil
	}, SubmitOpts{MaxRetries: 3})
	snap := waitState(t, m, id, 5*time.Second)
	if snap.State != Done {
		t.Fatalf("flaky job finished %s (%s), want done", snap.State, snap.Error)
	}
	if snap.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3", snap.Attempts)
	}
	if c := m.Counters(); c.Retries != 2 {
		t.Fatalf("Retries = %d, want 2", c.Retries)
	}
}

func TestRetryBudgetExhausted(t *testing.T) {
	m := NewManager(1, 4)
	defer m.Close()
	m.SetBackoff(fastBackoff)
	var calls atomic.Int32
	id, _ := m.SubmitWith("flaky", func(ctx context.Context) (any, error) {
		calls.Add(1)
		return nil, Transient(errors.New("always down"))
	}, SubmitOpts{MaxRetries: 2})
	snap := waitState(t, m, id, 5*time.Second)
	if snap.State != Failed || !strings.Contains(snap.Error, "always down") {
		t.Fatalf("job finished %s (%q), want failed with the last error", snap.State, snap.Error)
	}
	if calls.Load() != 3 { // 1 + MaxRetries
		t.Fatalf("Func ran %d times, want 3", calls.Load())
	}
}

func TestNonTransientErrorIsNotRetried(t *testing.T) {
	m := NewManager(1, 4)
	defer m.Close()
	m.SetBackoff(fastBackoff)
	var calls atomic.Int32
	id, _ := m.SubmitWith("hard", func(ctx context.Context) (any, error) {
		calls.Add(1)
		return nil, errors.New("plain failure")
	}, SubmitOpts{MaxRetries: 5})
	if snap := waitState(t, m, id, 5*time.Second); snap.State != Failed || calls.Load() != 1 {
		t.Fatalf("plain error: state=%s calls=%d, want failed after 1 attempt",
			snap.State, calls.Load())
	}
}

func TestIsTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("plain"), false},
		{Transient(errors.New("x")), true},
		{fmt.Errorf("wrapped: %w", Transient(errors.New("x"))), true},
		{&faults.Error{Site: "s", N: 1}, true},
		{&faults.Error{Site: "s", N: 1, Permanent: true}, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{Transient(context.Canceled), false}, // context ends always win
	}
	for i, c := range cases {
		if got := IsTransient(c.err); got != c.want {
			t.Errorf("case %d: IsTransient(%v) = %v, want %v", i, c.err, got, c.want)
		}
	}
	if Transient(nil) != nil {
		t.Error("Transient(nil) must stay nil")
	}
}

// TestBackoffDeterministicAndBounded pins the Delay contract: pure in
// (Seed, jobSeq, attempt), within [Base/2, Max), and jittered across
// jobs.
func TestBackoffDeterministicAndBounded(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Seed: 99}
	for attempt := 1; attempt <= 10; attempt++ {
		d1, d2 := b.Delay(1, attempt), b.Delay(1, attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: Delay not deterministic (%v vs %v)", attempt, d1, d2)
		}
		if d1 < b.Base/2 || d1 >= b.Max {
			t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, d1, b.Base/2, b.Max)
		}
	}
	// Exponential growth before the cap: attempt 3's ceiling (40ms)
	// exceeds attempt 1's (10ms).
	if d1, d3 := b.Delay(1, 1), b.Delay(1, 3); d1 >= 10*time.Millisecond || d3 < 10*time.Millisecond {
		t.Fatalf("no exponential shape: attempt1=%v attempt3=%v", d1, d3)
	}
	// Different jobs jitter differently (with overwhelming probability
	// across 8 attempts).
	same := true
	for attempt := 1; attempt <= 8; attempt++ {
		if b.Delay(1, attempt) != b.Delay(2, attempt) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two jobs share an identical backoff schedule; jitter is not per-job")
	}
}

func TestInjectedFaultAtJobAttempt(t *testing.T) {
	m := NewManager(1, 4)
	defer m.Close()
	m.SetBackoff(fastBackoff)
	in := faults.New(1, faults.Rule{Site: faults.SiteJobAttempt, Kind: faults.KindError, After: 1})
	var ran atomic.Int32
	id, _ := m.SubmitWith("injected", func(ctx context.Context) (any, error) {
		ran.Add(1)
		return "ok", nil
	}, SubmitOpts{Parent: faults.With(context.Background(), in), MaxRetries: 2})
	snap := waitState(t, m, id, 5*time.Second)
	if snap.State != Done {
		t.Fatalf("job finished %s (%s), want done after retrying the injected fault", snap.State, snap.Error)
	}
	// The first attempt died in the hook before reaching the Func.
	if ran.Load() != 1 || snap.Attempts != 2 {
		t.Fatalf("ran=%d attempts=%d, want the Func to run once on attempt 2", ran.Load(), snap.Attempts)
	}
	if in.Fired() != 1 {
		t.Fatalf("injector fired %d times, want 1", in.Fired())
	}
}

func TestDrainFinishesInFlight(t *testing.T) {
	m := NewManager(2, 8)
	release := make(chan struct{})
	var finished atomic.Int32
	var ids []string
	for i := 0; i < 4; i++ {
		id, err := m.Submit("slow", func(ctx context.Context) (any, error) {
			<-release
			finished.Add(1)
			return "done", nil
		})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ids = append(ids, id)
	}
	drained := make(chan error, 1)
	go func() { drained <- m.Drain(context.Background()) }()
	// Submissions are rejected as soon as the drain begins.
	deadline := time.Now().Add(5 * time.Second)
	for !m.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("manager never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Submit("late", func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit during drain returned %v, want ErrClosed", err)
	}
	close(release)
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Drain never returned")
	}
	if finished.Load() != 4 {
		t.Fatalf("%d jobs finished during drain, want all 4", finished.Load())
	}
	for _, id := range ids {
		if snap, _ := m.Get(id); snap.State != Done {
			t.Fatalf("job %s drained as %s, want done", id, snap.State)
		}
	}
}

func TestDrainTimeoutCancelsStragglers(t *testing.T) {
	m := NewManager(1, 4)
	id, _ := m.Submit("wedged", func(ctx context.Context) (any, error) {
		<-ctx.Done() // honors cancellation, but never finishes on its own
		return nil, ctx.Err()
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := m.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain returned %v, want DeadlineExceeded", err)
	}
	// Drain waited for the worker to observe the cancellation, so the
	// job is terminal by the time it returns.
	snap, _ := m.Get(id)
	if snap.State != Cancelled {
		t.Fatalf("wedged job drained as %s, want cancelled", snap.State)
	}
}

func TestCancelDuringBackoffIsPrompt(t *testing.T) {
	m := NewManager(1, 4)
	defer m.Close()
	m.SetBackoff(Backoff{Base: time.Hour, Max: time.Hour, Seed: 1}) // sleep forever without cancel
	id, _ := m.SubmitWith("flaky", func(ctx context.Context) (any, error) {
		return nil, Transient(errors.New("blip"))
	}, SubmitOpts{MaxRetries: 1})
	// Wait for the first attempt to fail and the backoff sleep to start.
	deadline := time.Now().Add(5 * time.Second)
	for m.Counters().Retries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job never entered backoff")
		}
		time.Sleep(time.Millisecond)
	}
	start := time.Now()
	if _, ok := m.Cancel(id); !ok {
		t.Fatal("Cancel failed")
	}
	snap := waitState(t, m, id, 5*time.Second)
	if snap.State != Cancelled {
		t.Fatalf("cancelled-in-backoff job finished %s", snap.State)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("cancel during an hour-long backoff was not prompt")
	}
}
