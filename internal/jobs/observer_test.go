package jobs

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestObserverNotifiedOnceTerminal covers the ledger hook contract:
// exactly one notification per job, carrying the terminal snapshot,
// delivered outside the manager lock (the observer calls back into
// the Manager to prove it).
func TestObserverNotifiedOnceTerminal(t *testing.T) {
	m := NewManager(2, 8)
	defer m.Close()

	var mu sync.Mutex
	got := map[string][]Snapshot{}
	m.SetObserver(func(s Snapshot) {
		m.Counters() // re-entrancy: must not deadlock
		mu.Lock()
		got[s.ID] = append(got[s.ID], s)
		mu.Unlock()
	})

	okID, err := m.Submit("ok", func(ctx context.Context) (any, error) { return 7, nil })
	if err != nil {
		t.Fatal(err)
	}
	failID, err := m.Submit("boom", func(ctx context.Context) (any, error) {
		return nil, errors.New("kaput")
	})
	if err != nil {
		t.Fatal(err)
	}
	panicID, err := m.Submit("panic", func(ctx context.Context) (any, error) {
		panic("exploded")
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, okID, 5*time.Second)
	waitState(t, m, failID, 5*time.Second)
	waitState(t, m, panicID, 5*time.Second)

	// Notification happens after finalize; give the worker goroutine a
	// beat to deliver.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 3 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	for id, want := range map[string]State{okID: Done, failID: Failed, panicID: Failed} {
		snaps := got[id]
		if len(snaps) != 1 {
			t.Fatalf("job %s: %d notifications, want 1", id, len(snaps))
		}
		if snaps[0].State != want {
			t.Errorf("job %s: observed state %s, want %s", id, snaps[0].State, want)
		}
		if snaps[0].Finished.IsZero() {
			t.Errorf("job %s: observed snapshot not finalized", id)
		}
	}
	if got[okID][0].Value != 7 {
		t.Errorf("ok job observed value %v", got[okID][0].Value)
	}
	if got[panicID][0].Stack == "" {
		t.Error("panicked job observed without stack")
	}
}

// TestObserverSeesQueuedCancellation: a job cancelled before it ever
// runs still produces its one terminal notification.
func TestObserverSeesQueuedCancellation(t *testing.T) {
	m := NewManager(1, 8)
	defer m.Close()

	var mu sync.Mutex
	var snaps []Snapshot
	m.SetObserver(func(s Snapshot) {
		mu.Lock()
		snaps = append(snaps, s)
		mu.Unlock()
	})

	block := make(chan struct{})
	release := func(ctx context.Context) (any, error) { <-block; return nil, nil }
	blockID, err := m.Submit("blocker", release)
	if err != nil {
		t.Fatal(err)
	}
	queuedID, err := m.Submit("queued", func(ctx context.Context) (any, error) {
		t.Error("cancelled queued job ran")
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if was, ok := m.Cancel(queuedID); !ok || was != Queued {
		t.Fatalf("Cancel(queued) = %v, %v", was, ok)
	}
	close(block)
	waitState(t, m, blockID, 5*time.Second)
	waitState(t, m, queuedID, 5*time.Second)

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := len(snaps)
		mu.Unlock()
		if n >= 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	mu.Lock()
	defer mu.Unlock()
	var sawQueued bool
	for _, s := range snaps {
		if s.ID == queuedID {
			sawQueued = true
			if s.State != Cancelled {
				t.Errorf("queued job observed as %s", s.State)
			}
			if !s.Started.IsZero() {
				t.Error("cancelled queued job has a start time")
			}
		}
	}
	if !sawQueued {
		t.Error("no notification for the cancelled queued job")
	}
	if len(snaps) != 2 {
		t.Errorf("%d notifications, want 2", len(snaps))
	}
}
