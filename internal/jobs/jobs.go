// Package jobs runs experiment work asynchronously on a bounded worker
// pool with per-job cancellation, panic isolation, deadlines and
// transient-failure retry.
//
// A Manager owns a fixed number of worker goroutines pulling from a
// bounded queue. Each submitted job carries its own context.Context;
// Cancel propagates through that context into the job's Monte-Carlo
// sampling loops (see internal/montecarlo's Ctx entry points), so a
// cancelled job stops burning CPU within one polling chunk rather than
// running to completion. Jobs move through the states queued → running
// → done/failed/cancelled; a queued job that is cancelled never runs.
//
// The package is deliberately generic — a job is any
// func(context.Context) (any, error) — so it stays decoupled from the
// experiments registry and is reusable for other asynchronous work.
//
// # Fault tolerance
//
// A panicking Func never takes the daemon down: each attempt runs
// under recover(), and a recovered panic finalizes the job as Failed
// with the captured stack in its Snapshot (and ticks the Panics
// counter) while the worker goroutine lives on.
//
// SubmitWith accepts per-job options: a Deadline bounding the job's
// whole lifetime (queue wait, every attempt and every backoff sleep —
// expiry finalizes the job as Failed with context.DeadlineExceeded),
// and MaxRetries re-running a transiently-failed Func with seeded
// exponential backoff plus jitter (see Backoff). An error is transient
// when IsTransient reports so — it implements `Transient() bool`
// truthfully, the convention shared with internal/faults. Panics are
// never retried at this layer: the sweep engine re-runs a panicked
// shard itself, and a plain job's panic is a bug to surface, not mask.
//
// Close drains gracefully forever; Drain drains until a context ends,
// then cancels whatever still runs and waits for the workers to
// observe it. Draining reports whether submissions are shut.
//
// Every job's context carries a telemetry.Progress reporter and the
// job's id (ContextID). Work running under the job — the Monte-Carlo
// loops, via experiments — ticks the reporter, and Snapshot returns the
// current samples-done/samples-total and phase label, which the HTTP
// layer serves as /v1/jobs/{id}/progress and streams over SSE.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"github.com/ntvsim/ntvsim/internal/faults"
	"github.com/ntvsim/ntvsim/internal/rng"
	"github.com/ntvsim/ntvsim/internal/telemetry"
)

// State is a job's lifecycle state.
type State string

// Job lifecycle states.
const (
	Queued    State = "queued"
	Running   State = "running"
	Done      State = "done"
	Failed    State = "failed"
	Cancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Cancelled }

// Func is the unit of work: it must honor ctx and return promptly once
// ctx is cancelled (typically by returning ctx.Err()).
type Func func(ctx context.Context) (any, error)

// ErrQueueFull is returned by Submit when the pending-job queue is at
// capacity; callers should retry later (the HTTP layer maps it to 503).
var ErrQueueFull = errors.New("jobs: queue full")

// ErrClosed is returned by Submit after Close or Drain began.
var ErrClosed = errors.New("jobs: manager closed")

// transienter is the error self-classification consumed by IsTransient.
// internal/faults.Error implements it; application errors opt in via
// Transient.
type transienter interface{ Transient() bool }

// Transient wraps err so IsTransient reports it retryable. A nil err
// stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err}
}

type transientError struct{ err error }

func (t *transientError) Error() string   { return t.err.Error() }
func (t *transientError) Unwrap() error   { return t.err }
func (t *transientError) Transient() bool { return true }

// IsTransient reports whether err declares itself retryable: it (or an
// error in its chain) implements `Transient() bool` returning true.
// Context errors are never transient.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var t transienter
	return errors.As(err, &t) && t.Transient()
}

// Backoff is the seeded exponential retry-delay policy: the delay
// before attempt k+1 after k failed attempts is Base·2^(k-1) capped at
// Max, scaled by a jitter factor in [0.5, 1) drawn from the
// (Seed, job-sequence) rng sub-stream. Delays are a pure function of
// (Seed, job sequence, attempt) — reproducible in tests — while
// distinct jobs jitter differently, so synchronized failures don't
// retry in lockstep.
type Backoff struct {
	Base time.Duration // first retry delay; 0 means DefaultBackoff.Base
	Max  time.Duration // delay cap; 0 means DefaultBackoff.Max
	Seed uint64        // jitter stream seed
}

// DefaultBackoff is the retry policy of a new Manager.
var DefaultBackoff = Backoff{Base: 50 * time.Millisecond, Max: 2 * time.Second, Seed: 0x6a0be6}

// Delay returns the backoff before retry number attempt (1-based) of
// the job with the given submission sequence number.
func (b Backoff) Delay(jobSeq uint64, attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	base, max := b.Base, b.Max
	if base <= 0 {
		base = DefaultBackoff.Base
	}
	if max <= 0 {
		max = DefaultBackoff.Max
	}
	shift := attempt - 1
	if shift > 30 {
		shift = 30
	}
	d := base << uint(shift)
	if d <= 0 || d > max {
		d = max
	}
	u := rng.NewSub(b.Seed^jobSeq*0x9e3779b97f4a7c15, attempt).Float64()
	return time.Duration((0.5 + 0.5*u) * float64(d))
}

// Sleep blocks for Delay(seq, attempt) or until ctx ends, returning
// ctx's error in that case. It is the context-aware form of the policy
// shared by the sweep engine's in-place shard retries and the cluster
// worker's lease-poll and upload-retry loops.
func (b Backoff) Sleep(ctx context.Context, seq uint64, attempt int) error {
	t := time.NewTimer(b.Delay(seq, attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SubmitOpts tunes one job's execution. The zero value matches plain
// Submit: no deadline, no retries, Background parent.
type SubmitOpts struct {
	// Parent is the context the job's own context derives from; nil
	// means context.Background(). Values flow through (fault-injection
	// hooks, tracing), and cancelling the parent cancels the job — the
	// sweep engine uses this to tie shard jobs to their sweep.
	Parent context.Context
	// Deadline bounds the job's total lifetime: queue wait, every
	// attempt and every backoff sleep. Zero means none. Expiry
	// finalizes the job as Failed with context.DeadlineExceeded.
	Deadline time.Time
	// MaxRetries is how many times a transiently-failed attempt is
	// re-run (total attempts = MaxRetries+1). Non-transient errors,
	// panics and context ends are never retried. Negative means 0.
	MaxRetries int
}

// Snapshot is a point-in-time copy of a job's externally visible state.
type Snapshot struct {
	ID       string
	Name     string // free-form label, e.g. the experiment id
	State    State
	Value    any    // result of a Done job
	Error    string // failure or cancellation cause
	Stack    string // captured goroutine stack of a recovered panic
	Attempts int    // Func invocations so far (> 1 after retries)
	Created  time.Time
	Started  time.Time // zero until the job leaves the queue
	Finished time.Time // zero until the job reaches a terminal state
	Deadline time.Time // zero when the job has none

	// Progress is the job's live samples-done/samples-total and phase,
	// ticked by the work running under the job's context.
	Progress telemetry.ProgressSnapshot
}

type job struct {
	id       string
	name     string
	fn       Func
	opts     SubmitOpts
	seq      uint64
	ctx      context.Context
	cancel   context.CancelFunc
	state    State
	value    any
	err      string
	stack    string
	attempts int
	created  time.Time
	started  time.Time
	done     time.Time
	progress *telemetry.Progress
}

// Counters is the manager's cumulative event tally for metrics.
type Counters struct {
	Started, Completed, Failed, Cancelled uint64

	// Panics counts recovered Func panics (each also counts as Failed);
	// Retries counts transient-failure re-runs.
	Panics, Retries uint64
}

// Manager is a bounded worker pool executing jobs. All methods are safe
// for concurrent use.
type Manager struct {
	queue chan *job
	wg    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	closed   bool
	seq      uint64
	backoff  Backoff
	counters Counters
	observer func(Snapshot)   // notified once per job on finalization
	now      func() time.Time // injectable for tests
}

// NewManager starts a pool of workers goroutines with a pending queue of
// depth queueDepth. workers and queueDepth are clamped to at least 1.
func NewManager(workers, queueDepth int) *Manager {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	m := &Manager{
		queue:   make(chan *job, queueDepth),
		jobs:    make(map[string]*job),
		backoff: DefaultBackoff,
		now:     time.Now,
	}
	m.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go m.worker()
	}
	return m
}

// SetBackoff replaces the retry-delay policy; call it before
// submitting retryable jobs (tests use tiny, seeded delays).
func (m *Manager) SetBackoff(b Backoff) {
	m.mu.Lock()
	m.backoff = b
	m.mu.Unlock()
}

// SetObserver installs fn to be called exactly once per job, with the
// job's terminal Snapshot, after the job finalizes (including queued
// jobs cancelled before they ran). The call is made outside the
// manager's lock, so fn may call back into the Manager; it runs on the
// worker (or cancelling) goroutine, so it should be quick or hand off.
// The run ledger hangs off this hook — the Manager itself stays
// storage-agnostic. Install before submitting; a nil fn disables it.
func (m *Manager) SetObserver(fn func(Snapshot)) {
	m.mu.Lock()
	m.observer = fn
	m.mu.Unlock()
}

// Submit enqueues fn under the given display name with default options
// and returns the new job's id. It fails fast with ErrQueueFull when
// the queue is at capacity and ErrClosed after Close or Drain.
func (m *Manager) Submit(name string, fn Func) (string, error) {
	return m.SubmitWith(name, fn, SubmitOpts{})
}

// SubmitWith is Submit with per-job options (parent context, deadline,
// retry budget).
func (m *Manager) SubmitWith(name string, fn Func, opts SubmitOpts) (string, error) {
	if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	}
	id := newID()
	progress := telemetry.NewProgress()
	parent := opts.Parent
	if parent == nil {
		parent = context.Background()
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if !opts.Deadline.IsZero() {
		ctx, cancel = context.WithDeadline(parent, opts.Deadline)
	} else {
		ctx, cancel = context.WithCancel(parent)
	}
	ctx = telemetry.WithProgress(ctx, progress)
	ctx = context.WithValue(ctx, idKey{}, id)
	j := &job{
		id:       id,
		name:     name,
		fn:       fn,
		opts:     opts,
		ctx:      ctx,
		cancel:   cancel,
		state:    Queued,
		progress: progress,
	}
	// The enqueue happens under the same critical section as the closed
	// check: Drain/Close flip closed and close the queue channel under
	// this lock, so a send can never race a close.
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		cancel()
		return "", ErrClosed
	}
	select {
	case m.queue <- j:
	default:
		m.mu.Unlock()
		cancel()
		return "", ErrQueueFull
	}
	m.seq++
	j.seq = m.seq
	j.created = m.now()
	m.jobs[j.id] = j
	m.mu.Unlock()
	return j.id, nil
}

// Get returns a snapshot of the job with the given id.
func (m *Manager) Get(id string) (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return j.snapshot(), true
}

// List returns snapshots of all known jobs in unspecified order.
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Snapshot, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j.snapshot())
	}
	return out
}

// Cancel requests cancellation of the job with the given id. A queued
// job is finalized as Cancelled immediately and will never run; a
// running job's context is cancelled and the job finalizes as Cancelled
// once its Func returns (a job sleeping out a retry backoff wakes
// immediately). Cancel reports whether the job exists and was still
// cancellable (not already terminal), along with the state the job was
// in when the cancellation took hold — Queued means it never ran,
// Running means its Func is still draining.
func (m *Manager) Cancel(id string) (State, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok || j.state.Terminal() {
		m.mu.Unlock()
		return "", false
	}
	was := j.state
	j.cancel()
	var notify func(Snapshot)
	var snap Snapshot
	if j.state == Queued {
		// The worker that eventually pops this job skips it.
		j.state = Cancelled
		j.err = context.Canceled.Error()
		j.done = m.now()
		m.counters.Cancelled++
		notify, snap = m.observer, j.snapshot()
	}
	m.mu.Unlock()
	if notify != nil {
		notify(snap)
	}
	return was, true
}

// CancelAll requests cancellation of every non-terminal job; it
// returns how many jobs it reached.
func (m *Manager) CancelAll() int {
	m.mu.Lock()
	ids := make([]string, 0, len(m.jobs))
	for id, j := range m.jobs {
		if !j.state.Terminal() {
			ids = append(ids, id)
		}
	}
	m.mu.Unlock()
	n := 0
	for _, id := range ids {
		if _, ok := m.Cancel(id); ok {
			n++
		}
	}
	return n
}

// Counters returns the cumulative job-event counts.
func (m *Manager) Counters() Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters
}

// Running returns the number of jobs currently executing — i.e. the
// number of busy workers.
func (m *Manager) Running() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, j := range m.jobs {
		if j.state == Running {
			n++
		}
	}
	return n
}

// Pending returns the number of jobs not yet terminal (queued or
// running, including retry backoffs).
func (m *Manager) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, j := range m.jobs {
		if !j.state.Terminal() {
			n++
		}
	}
	return n
}

// QueueDepth returns the number of submitted jobs waiting for a worker.
func (m *Manager) QueueDepth() int { return len(m.queue) }

// Draining reports whether the manager has stopped accepting
// submissions (Close or Drain began).
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// idKey carries the job id in the job's context.
type idKey struct{}

// ContextID returns the id of the job whose context ctx is (or derives
// from), or "" when ctx does not belong to a job.
func ContextID(ctx context.Context) string {
	id, _ := ctx.Value(idKey{}).(string)
	return id
}

// Close stops accepting submissions, waits for queued and running jobs
// to drain, and releases the workers.
func (m *Manager) Close() { _ = m.Drain(context.Background()) }

// Drain stops accepting submissions and waits for queued and running
// jobs to finish. If ctx ends first, every remaining job is cancelled
// and Drain keeps waiting for the workers to observe the cancellation
// (Funcs must honor their context), then returns ctx's error. A nil
// return means every job completed gracefully.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	if !m.closed {
		m.closed = true
		close(m.queue)
	}
	m.mu.Unlock()

	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	m.CancelAll()
	<-done
	return ctx.Err()
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.mu.Lock()
		if j.state.Terminal() { // cancelled while queued
			m.mu.Unlock()
			continue
		}
		j.state = Running
		j.started = m.now()
		m.counters.Started++
		m.mu.Unlock()
		m.run(j)
	}
}

// run executes j's Func, re-running transient failures with seeded
// backoff until success, a non-retryable outcome, the retry budget is
// spent, or j's context ends; then finalizes the job exactly once.
func (m *Manager) run(j *job) {
	attempt := 0
	var (
		value any
		err   error
		stack []byte
	)
	for {
		attempt++
		value, err, stack = m.invoke(j)
		if stack != nil || err == nil || j.ctx.Err() != nil ||
			!IsTransient(err) || attempt > j.opts.MaxRetries {
			break
		}
		m.mu.Lock()
		j.attempts = attempt
		m.counters.Retries++
		delay := m.backoff.Delay(j.seq, attempt)
		m.mu.Unlock()
		timer := time.NewTimer(delay)
		select {
		case <-timer.C:
		case <-j.ctx.Done():
			timer.Stop()
		}
		if j.ctx.Err() != nil {
			break // finalize maps deadline vs cancellation below
		}
	}
	m.finalize(j, value, err, stack, attempt)
}

// invoke runs one attempt of j's Func with panic isolation: a panic is
// captured — value and stack — instead of unwinding the worker
// goroutine. Panic values carrying their own Stack() (re-raised from
// montecarlo's sampling workers) keep the original trace.
func (m *Manager) invoke(j *job) (value any, err error, stack []byte) {
	defer func() {
		if r := recover(); r != nil {
			if s, ok := r.(interface{ Stack() []byte }); ok {
				stack = s.Stack()
			} else {
				stack = debug.Stack()
			}
			if len(stack) == 0 {
				stack = []byte("(no stack captured)")
			}
			err = fmt.Errorf("panic: %v", r)
			value = nil
		}
	}()
	if ferr := faults.Fire(j.ctx, faults.SiteJobAttempt); ferr != nil {
		return nil, ferr, nil
	}
	value, err = j.fn(j.ctx)
	return value, err, nil
}

// finalize records j's terminal state. Precedence: a recovered panic
// fails the job (with stack); then a deadline expiry fails it; then any
// other context end cancels it; then a Func error fails it; otherwise
// it is done.
func (m *Manager) finalize(j *job, value any, err error, stack []byte, attempts int) {
	m.mu.Lock()
	j.done = m.now()
	j.attempts = attempts
	ctxErr := j.ctx.Err()
	switch {
	case stack != nil:
		j.state = Failed
		j.err = err.Error()
		j.stack = string(stack)
		m.counters.Panics++
		m.counters.Failed++
	case errors.Is(ctxErr, context.DeadlineExceeded):
		j.state = Failed
		j.err = ctxErr.Error()
		m.counters.Failed++
	case ctxErr != nil || errors.Is(err, context.Canceled):
		j.state = Cancelled
		if cause := context.Cause(j.ctx); cause != nil {
			j.err = cause.Error()
		} else if err != nil {
			j.err = err.Error()
		}
		m.counters.Cancelled++
	case err != nil:
		j.state = Failed
		j.err = err.Error()
		m.counters.Failed++
	default:
		j.state = Done
		j.value = value
		m.counters.Completed++
	}
	j.cancel() // release the context's resources
	notify, snap := m.observer, j.snapshot()
	m.mu.Unlock()
	if notify != nil {
		notify(snap)
	}
}

// snapshot copies the externally visible fields; callers hold m.mu.
func (j *job) snapshot() Snapshot {
	return Snapshot{
		ID:       j.id,
		Name:     j.name,
		State:    j.state,
		Value:    j.value,
		Error:    j.err,
		Stack:    j.stack,
		Attempts: j.attempts,
		Created:  j.created,
		Started:  j.started,
		Finished: j.done,
		Deadline: j.opts.Deadline,
		Progress: j.progress.Snapshot(),
	}
}

// newID returns a 16-hex-digit random job id.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to a
		// time-derived id rather than panicking in a long-lived service.
		return hex.EncodeToString([]byte(time.Now().Format("150405.000000000")))[:16]
	}
	return hex.EncodeToString(b[:])
}
