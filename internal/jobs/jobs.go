// Package jobs runs experiment work asynchronously on a bounded worker
// pool with per-job cancellation.
//
// A Manager owns a fixed number of worker goroutines pulling from a
// bounded queue. Each submitted job carries its own context.Context;
// Cancel propagates through that context into the job's Monte-Carlo
// sampling loops (see internal/montecarlo's Ctx entry points), so a
// cancelled job stops burning CPU within one polling chunk rather than
// running to completion. Jobs move through the states queued → running
// → done/failed/cancelled; a queued job that is cancelled never runs.
//
// The package is deliberately generic — a job is any
// func(context.Context) (any, error) — so it stays decoupled from the
// experiments registry and is reusable for other asynchronous work.
//
// Every job's context carries a telemetry.Progress reporter and the
// job's id (ContextID). Work running under the job — the Monte-Carlo
// loops, via experiments — ticks the reporter, and Snapshot returns the
// current samples-done/samples-total and phase label, which the HTTP
// layer serves as /v1/jobs/{id}/progress and streams over SSE.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"sync"
	"time"

	"github.com/ntvsim/ntvsim/internal/telemetry"
)

// State is a job's lifecycle state.
type State string

// Job lifecycle states.
const (
	Queued    State = "queued"
	Running   State = "running"
	Done      State = "done"
	Failed    State = "failed"
	Cancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Cancelled }

// Func is the unit of work: it must honor ctx and return promptly once
// ctx is cancelled (typically by returning ctx.Err()).
type Func func(ctx context.Context) (any, error)

// ErrQueueFull is returned by Submit when the pending-job queue is at
// capacity; callers should retry later (the HTTP layer maps it to 503).
var ErrQueueFull = errors.New("jobs: queue full")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("jobs: manager closed")

// Snapshot is a point-in-time copy of a job's externally visible state.
type Snapshot struct {
	ID       string
	Name     string // free-form label, e.g. the experiment id
	State    State
	Value    any    // result of a Done job
	Error    string // failure or cancellation cause
	Created  time.Time
	Started  time.Time // zero until the job leaves the queue
	Finished time.Time // zero until the job reaches a terminal state

	// Progress is the job's live samples-done/samples-total and phase,
	// ticked by the work running under the job's context.
	Progress telemetry.ProgressSnapshot
}

type job struct {
	id       string
	name     string
	fn       Func
	ctx      context.Context
	cancel   context.CancelFunc
	state    State
	value    any
	err      string
	created  time.Time
	started  time.Time
	done     time.Time
	progress *telemetry.Progress
}

// Counters is the manager's cumulative event tally for metrics.
type Counters struct {
	Started, Completed, Failed, Cancelled uint64
}

// Manager is a bounded worker pool executing jobs. All methods are safe
// for concurrent use.
type Manager struct {
	queue chan *job
	wg    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*job
	closed   bool
	counters Counters
	now      func() time.Time // injectable for tests
}

// NewManager starts a pool of workers goroutines with a pending queue of
// depth queueDepth. workers and queueDepth are clamped to at least 1.
func NewManager(workers, queueDepth int) *Manager {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	m := &Manager{
		queue: make(chan *job, queueDepth),
		jobs:  make(map[string]*job),
		now:   time.Now,
	}
	m.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go m.worker()
	}
	return m
}

// Submit enqueues fn under the given display name and returns the new
// job's id. It fails fast with ErrQueueFull when the queue is at
// capacity and ErrClosed after Close.
func (m *Manager) Submit(name string, fn Func) (string, error) {
	id := newID()
	progress := telemetry.NewProgress()
	ctx, cancel := context.WithCancel(context.Background())
	ctx = telemetry.WithProgress(ctx, progress)
	ctx = context.WithValue(ctx, idKey{}, id)
	j := &job{
		id:       id,
		name:     name,
		fn:       fn,
		ctx:      ctx,
		cancel:   cancel,
		state:    Queued,
		progress: progress,
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		cancel()
		return "", ErrClosed
	}
	j.created = m.now()
	m.jobs[j.id] = j
	m.mu.Unlock()

	select {
	case m.queue <- j:
		return j.id, nil
	default:
		m.mu.Lock()
		delete(m.jobs, j.id)
		m.mu.Unlock()
		cancel()
		return "", ErrQueueFull
	}
}

// Get returns a snapshot of the job with the given id.
func (m *Manager) Get(id string) (Snapshot, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return j.snapshot(), true
}

// List returns snapshots of all known jobs in unspecified order.
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Snapshot, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j.snapshot())
	}
	return out
}

// Cancel requests cancellation of the job with the given id. A queued
// job is finalized as Cancelled immediately and will never run; a
// running job's context is cancelled and the job finalizes as Cancelled
// once its Func returns. Cancel reports whether the job exists and was
// still cancellable (not already terminal), along with the state the
// job was in when the cancellation took hold — Queued means it never
// ran, Running means its Func is still draining.
func (m *Manager) Cancel(id string) (State, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok || j.state.Terminal() {
		return "", false
	}
	was := j.state
	j.cancel()
	if j.state == Queued {
		// The worker that eventually pops this job skips it.
		j.state = Cancelled
		j.err = context.Canceled.Error()
		j.done = m.now()
		m.counters.Cancelled++
	}
	return was, true
}

// Counters returns the cumulative job-event counts.
func (m *Manager) Counters() Counters {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counters
}

// Running returns the number of jobs currently executing — i.e. the
// number of busy workers.
func (m *Manager) Running() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, j := range m.jobs {
		if j.state == Running {
			n++
		}
	}
	return n
}

// QueueDepth returns the number of submitted jobs waiting for a worker.
func (m *Manager) QueueDepth() int { return len(m.queue) }

// idKey carries the job id in the job's context.
type idKey struct{}

// ContextID returns the id of the job whose context ctx is (or derives
// from), or "" when ctx does not belong to a job.
func ContextID(ctx context.Context) string {
	id, _ := ctx.Value(idKey{}).(string)
	return id
}

// Close stops accepting submissions, waits for queued and running jobs
// to drain, and releases the workers.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.queue)
	m.wg.Wait()
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.mu.Lock()
		if j.state.Terminal() { // cancelled while queued
			m.mu.Unlock()
			continue
		}
		j.state = Running
		j.started = m.now()
		m.counters.Started++
		m.mu.Unlock()

		value, err := j.fn(j.ctx)

		m.mu.Lock()
		j.done = m.now()
		switch {
		case j.ctx.Err() != nil || errors.Is(err, context.Canceled):
			j.state = Cancelled
			if cause := context.Cause(j.ctx); cause != nil {
				j.err = cause.Error()
			} else if err != nil {
				j.err = err.Error()
			}
			m.counters.Cancelled++
		case err != nil:
			j.state = Failed
			j.err = err.Error()
			m.counters.Failed++
		default:
			j.state = Done
			j.value = value
			m.counters.Completed++
		}
		j.cancel() // release the context's resources
		m.mu.Unlock()
	}
}

// snapshot copies the externally visible fields; callers hold m.mu.
func (j *job) snapshot() Snapshot {
	return Snapshot{
		ID:       j.id,
		Name:     j.name,
		State:    j.state,
		Value:    j.value,
		Error:    j.err,
		Created:  j.created,
		Started:  j.started,
		Finished: j.done,
		Progress: j.progress.Snapshot(),
	}
}

// newID returns a 16-hex-digit random job id.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to a
		// time-derived id rather than panicking in a long-lived service.
		return hex.EncodeToString([]byte(time.Now().Format("150405.000000000")))[:16]
	}
	return hex.EncodeToString(b[:])
}
