package jobs

// Race-hammer suite for the retry/deadline/drain paths. These tests are
// about interleavings, not outcomes: they drive Cancel against retry
// backoffs, deadlines against backoff sleeps, and Close against a live
// drain, under -race in CI (the chaos job runs them with -count=2), and
// assert the pool neither deadlocks nor leaks goroutines.

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// assertNoGoroutineLeak runs fn and asserts the process goroutine count
// returns to its starting neighborhood, polling with tolerance because
// runtime bookkeeping goroutines come and go.
func assertNoGoroutineLeak(t *testing.T, fn func()) {
	t.Helper()
	before := runtime.NumGoroutine()
	fn()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC() // nudge finalizer-held goroutines along
		after := runtime.NumGoroutine()
		if after <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, after, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestHammerCancelDuringRetry(t *testing.T) {
	assertNoGoroutineLeak(t, func() {
		m := NewManager(4, 64)
		m.SetBackoff(Backoff{Base: 2 * time.Millisecond, Max: 10 * time.Millisecond, Seed: 3})
		rng := rand.New(rand.NewSource(42))
		var ids []string
		for i := 0; i < 40; i++ {
			id, err := m.SubmitWith("flaky", func(ctx context.Context) (any, error) {
				return nil, Transient(errors.New("blip"))
			}, SubmitOpts{MaxRetries: 50})
			if err != nil {
				t.Fatalf("Submit %d: %v", i, err)
			}
			ids = append(ids, id)
		}
		var wg sync.WaitGroup
		for _, id := range ids {
			wg.Add(1)
			go func(id string, delay time.Duration) {
				defer wg.Done()
				time.Sleep(delay)
				m.Cancel(id)
			}(id, time.Duration(rng.Intn(20))*time.Millisecond)
		}
		wg.Wait()
		for _, id := range ids {
			snap := waitState(t, m, id, 30*time.Second)
			// Cancelled mid-retry, or Failed if the cancel landed after the
			// (generous) retry budget — either is a clean terminal state.
			if snap.State != Cancelled && snap.State != Failed {
				t.Fatalf("job %s ended %s", id, snap.State)
			}
		}
		m.Close()
	})
}

func TestHammerDeadlineDuringBackoff(t *testing.T) {
	assertNoGoroutineLeak(t, func() {
		m := NewManager(4, 64)
		// Backoff long enough that most deadlines expire inside the sleep.
		m.SetBackoff(Backoff{Base: 20 * time.Millisecond, Max: 40 * time.Millisecond, Seed: 5})
		var ids []string
		for i := 0; i < 40; i++ {
			id, err := m.SubmitWith("flaky", func(ctx context.Context) (any, error) {
				return nil, Transient(errors.New("blip"))
			}, SubmitOpts{
				MaxRetries: 1000,
				Deadline:   time.Now().Add(time.Duration(5+i) * time.Millisecond),
			})
			if err != nil {
				t.Fatalf("Submit %d: %v", i, err)
			}
			ids = append(ids, id)
		}
		for _, id := range ids {
			snap := waitState(t, m, id, 30*time.Second)
			if snap.State != Failed {
				t.Fatalf("job %s ended %s (%q), want failed by deadline", id, snap.State, snap.Error)
			}
		}
		m.Close()
	})
}

func TestHammerCloseDuringDrain(t *testing.T) {
	assertNoGoroutineLeak(t, func() {
		m := NewManager(4, 64)
		for i := 0; i < 30; i++ {
			_, err := m.Submit("short", func(ctx context.Context) (any, error) {
				select {
				case <-time.After(time.Millisecond):
				case <-ctx.Done():
				}
				return nil, nil
			})
			if err != nil {
				t.Fatalf("Submit %d: %v", i, err)
			}
		}
		// Concurrent Drain + Close + CancelAll + Submit: the closed flag,
		// the queue close and the channel send share one critical section,
		// so none of these interleavings can panic.
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				_ = m.Drain(ctx)
			}()
		}
		wg.Add(2)
		go func() { defer wg.Done(); m.Close() }()
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_, err := m.Submit("late", func(ctx context.Context) (any, error) { return nil, nil })
				if err != nil && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrQueueFull) {
					t.Errorf("Submit during close: %v", err)
				}
			}
		}()
		go m.CancelAll()
		wg.Wait()
	})
}
