package sram

import (
	"fmt"
	"math"
)

// RowPlacement mirrors internal/sparing's Placement for the row-repair
// axis: how spare rows are associated with (banks of) memory rows. The
// same repairability question the lane model answers for functional
// units — "can this set of faulty indices all be replaced?" — applies
// to word-lines, with bank boundaries playing the role of clusters.
type RowPlacement interface {
	// Repairable reports whether the set of faulty row indices can all
	// be remapped to spare rows under this placement.
	Repairable(faulty []int) bool
	// Spares returns the total number of spare rows the placement uses.
	Spares() int
	// Name identifies the policy in reports.
	Name() string
}

// PooledRows shares one pool of spare rows across the whole array: any
// faulty row can be remapped while faults ≤ spares (the row analogue of
// sparing.Global).
type PooledRows struct {
	SpareRows int
}

// Name implements RowPlacement.
func (p PooledRows) Name() string { return fmt.Sprintf("pooled(%d)", p.SpareRows) }

// Spares implements RowPlacement.
func (p PooledRows) Spares() int { return p.SpareRows }

// Repairable implements RowPlacement.
func (p PooledRows) Repairable(faulty []int) bool { return len(faulty) <= p.SpareRows }

// BankedRows gives each bank of RowsPerBank consecutive rows its own
// SparesPerBank spare rows (the row analogue of sparing.Local, and the
// policy SODAMemoryMap composes: each SIMD memory bank repairs only
// itself). A bank with more faulty rows than its own spares is
// unrepairable regardless of idle spares elsewhere.
type BankedRows struct {
	Banks         int
	RowsPerBank   int
	SparesPerBank int
}

// Name implements RowPlacement.
func (b BankedRows) Name() string {
	return fmt.Sprintf("banked(%d per %d×%d)", b.SparesPerBank, b.Banks, b.RowsPerBank)
}

// Spares implements RowPlacement.
func (b BankedRows) Spares() int { return b.Banks * b.SparesPerBank }

// Repairable implements RowPlacement.
func (b BankedRows) Repairable(faulty []int) bool {
	counts := make(map[int]int)
	for _, row := range faulty {
		counts[row/b.RowsPerBank]++
	}
	for _, c := range counts {
		if c > b.SparesPerBank {
			return false
		}
	}
	return true
}

// RowCoverage returns the probability that an array of rows word-lines,
// each failing independently with probability pRow, is fully repairable
// under the placement — exactly from binomial laws, no Monte Carlo
// (mirroring sparing.IndependentCoverage on the lane axis).
func RowCoverage(pl RowPlacement, rows int, pRow float64) float64 {
	switch v := pl.(type) {
	case PooledRows:
		return binomialCDF(rows, pRow, v.SpareRows)
	case BankedRows:
		full := rows / v.RowsPerBank
		per := binomialCDF(v.RowsPerBank, pRow, v.SparesPerBank)
		cov := math.Pow(per, float64(full))
		if rem := rows % v.RowsPerBank; rem > 0 {
			cov *= binomialCDF(rem, pRow, v.SparesPerBank)
		}
		return cov
	default:
		panic(fmt.Sprintf("sram: RowCoverage: unknown placement %T", pl))
	}
}
