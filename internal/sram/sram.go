// Package sram models 6T SRAM cell read/write timing yield under
// threshold-voltage variation and composes it up to the SODA memory map
// (banked SIMD memory, vector register file, XRAM crosspoint store),
// extending the paper's logic-path analysis to the majority of the chip
// it never modeled.
//
// The cell model is a Shen-style compact drain-current formulation on
// top of the internal/device EKV on-current: a read discharges the
// bitline through the access and pull-down transistors in series, a
// write fights the cross-coupled pull-up through the access transistor,
//
//	τ_read  ∝ Vdd / (I_ax·I_pd / (I_ax + I_pd))
//	τ_write ∝ Vdd / (I_ax − Contention·I_pu)
//
// with each transistor's threshold voltage carrying its own
// within-die (WID) Gaussian shift plus the die-to-die (D2D) shift
// shared by the whole chip — the same D2D+WID split as the logic-path
// models, but with the WID sigma scaled up by SigmaScale because SRAM
// cells use minimum-size devices (Pelgrom: σ_Vth ∝ 1/√(W·L)).
//
// A cell fails an access when its delay exceeds the timing budget
// Margin × nominal delay. Because both the budget and the delay carry
// the same Kd·ReadK (or Kd·WriteK) scale, yields depend only on the
// margin, the threshold geometry and the sigmas — the delay constants
// set reported latencies, not failure probabilities.
//
// docs/SRAM.md derives the model and states the determinism and
// analytic-vs-MC agreement contracts; internal/sweep exposes it as the
// sramreadyield, sramwriteyield and memlogicyield kernels.
package sram

import (
	"math"

	"github.com/ntvsim/ntvsim/internal/device"
	"github.com/ntvsim/ntvsim/internal/tech"
	"github.com/ntvsim/ntvsim/internal/telemetry"
)

// Model constants. They are deliberately package constants rather than
// Spec knobs: the sweep cache keys sweeps by (kernel, grid, seed), so
// every tunable that changed results would have to join the key. See
// docs/SRAM.md for the calibration rationale behind each value.
const (
	// SigmaScale multiplies the logic WID sigma for the minimum-size
	// cell transistors (Pelgrom area scaling: logic gates are drawn
	// several times wider than the 6T cell devices).
	SigmaScale = 1.5

	// DefaultContention is the pull-up to access drive ratio opposing a
	// write. Below ~0.5 the nominal cell always writes; the margin of
	// safety shrinks as the access transistor weakens, and because the
	// drive is a difference of exponentially-varying currents the
	// failure tail fattens quickly as the ratio grows.
	DefaultContention = 0.15

	// DefaultReadMargin and DefaultWriteMargin are the timing budgets in
	// units of the nominal access delay: a cell fails when variation
	// pushes its delay beyond Margin × nominal. The write margin is
	// wider because the subtractive contention drive is far more
	// sensitive to threshold shifts than the series read path.
	DefaultReadMargin  = 2.0
	DefaultWriteMargin = 3.0

	// DefaultSpareRowsPerBank is the repair budget of each SIMD memory
	// bank. The vector register file and XRAM crosspoint store have no
	// spares: register indices and crosspoints are architecturally
	// addressed and cannot be remapped.
	DefaultSpareRowsPerBank = 8

	// LogicMarginFO4 is the logic-path timing budget in nominal FO4
	// units per chain stage: a chip's logic passes when its slowest
	// path beats LogicMarginFO4 × ChainLength × FO4(vdd). Shared by the
	// memlogicyield kernel and the sramyield experiment so both sides
	// of the memory-vs-logic crossover use one budget rule.
	LogicMarginFO4 = 1.4
)

// Service metrics, exposed on GET /metrics.
var (
	mQuadratures = telemetry.Default.Counter("ntvsim_sram_cell_quadratures_total",
		"Conditional cell failure-probability quadratures evaluated (bisection + Gauss integral).")
	mChips = telemetry.Default.Counter("ntvsim_sram_chips_sampled_total",
		"Monte-Carlo chip draws through the SRAM bank-failure sampler.")
	mTables = telemetry.Default.Counter("ntvsim_sram_tables_built_total",
		"Die-shift failure-probability tables built (one per sampler construction).")
)

// Op selects the access being timed.
type Op int

const (
	// OpRead times the bitline discharge through access + pull-down.
	OpRead Op = iota
	// OpWrite times the cell flip against pull-up contention.
	OpWrite
)

// String returns "read" or "write".
func (op Op) String() string {
	if op == OpWrite {
		return "write"
	}
	return "read"
}

// Cell is one 6T SRAM cell: the shared device model plus the variation
// split and the write-contention ratio. The delay constants ReadK and
// WriteK scale reported latencies only (yields are margin-relative).
type Cell struct {
	Dev device.Params

	SigmaWID float64 // per-transistor WID threshold sigma, V
	SigmaD2D float64 // die-to-die threshold sigma shared chip-wide, V

	Contention float64 // pull-up / access drive ratio during a write
	ReadK      float64 // read delay scale relative to a logic gate
	WriteK     float64 // write delay scale relative to a logic gate
}

// NewCell builds the calibrated cell for a technology node: the node's
// device parameters with the WID sigma scaled by SigmaScale for the
// minimum-size cell transistors. The D2D sigma is shared with logic
// unscaled — it models chip-wide process shift, not device area.
func NewCell(node tech.Node) Cell {
	return Cell{
		Dev:        node.Dev,
		SigmaWID:   SigmaScale * node.Var.SigmaVthWID,
		SigmaD2D:   node.Var.SigmaVthD2D,
		Contention: DefaultContention,
		ReadK:      3,
		WriteK:     1,
	}
}

// ReadDelay returns the read access time at supply vdd for a cell whose
// access and pull-down transistors carry threshold shifts dAX and dPD
// (volts, relative to the nominal Vth0). The bitline discharges through
// the two devices in series, so the drive is the harmonic combination
// of their on-currents; the delay increases in both shifts.
func (c Cell) ReadDelay(vdd, dAX, dPD float64) float64 {
	iax := c.Dev.OnCurrent(vdd, c.Dev.Vth0+dAX)
	ipd := c.Dev.OnCurrent(vdd, c.Dev.Vth0+dPD)
	if iax == 0 || ipd == 0 {
		return math.Inf(1)
	}
	return c.ReadK * c.Dev.Kd * vdd * (iax + ipd) / (iax * ipd)
}

// WriteDelay returns the write time at supply vdd for threshold shifts
// dAX (access) and dPU (pull-up). The access transistor must overpower
// the cross-coupled pull-up; when variation drives the net current
// non-positive the cell cannot flip at all and the delay is +Inf. The
// delay increases in dAX and decreases in dPU (a weaker pull-up fights
// less).
func (c Cell) WriteDelay(vdd, dAX, dPU float64) float64 {
	iax := c.Dev.OnCurrent(vdd, c.Dev.Vth0+dAX)
	ipu := c.Dev.OnCurrent(vdd, c.Dev.Vth0+dPU)
	drive := iax - c.Contention*ipu
	if drive <= 0 {
		return math.Inf(1)
	}
	return c.WriteK * c.Dev.Kd * vdd / drive
}

// Delay returns the op's access delay for the given device shifts: the
// second shift is the pull-down (read) or pull-up (write) transistor.
func (c Cell) Delay(op Op, vdd, dAX, dOther float64) float64 {
	if op == OpWrite {
		return c.WriteDelay(vdd, dAX, dOther)
	}
	return c.ReadDelay(vdd, dAX, dOther)
}

// NominalDelay returns the variation-free access delay at vdd.
func (c Cell) NominalDelay(op Op, vdd float64) float64 {
	return c.Delay(op, vdd, 0, 0)
}

// Budget returns the op's timing budget at vdd: margin × nominal delay.
func (c Cell) Budget(op Op, vdd, margin float64) float64 {
	return margin * c.NominalDelay(op, vdd)
}
