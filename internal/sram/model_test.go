package sram

import (
	"context"
	"math"
	"testing"

	"github.com/ntvsim/ntvsim/internal/montecarlo"
	"github.com/ntvsim/ntvsim/internal/rng"
	"github.com/ntvsim/ntvsim/internal/stats"
	"github.com/ntvsim/ntvsim/internal/tech"
)

func TestModelBudgets(t *testing.T) {
	m := New(tech.N45)
	const vdd = 0.55
	if got, want := m.Budget(OpRead, vdd), DefaultReadMargin*m.Cell.NominalDelay(OpRead, vdd); got != want {
		t.Errorf("read budget %v, want %v", got, want)
	}
	if got, want := m.Budget(OpWrite, vdd), DefaultWriteMargin*m.Cell.NominalDelay(OpWrite, vdd); got != want {
		t.Errorf("write budget %v, want %v", got, want)
	}
}

// TestYieldMonotoneVdd: the chip-level analytic yield inherits the
// cell-level monotonicity through the composition.
func TestYieldMonotoneVdd(t *testing.T) {
	m := New(tech.N32)
	prev := -1.0
	for _, vdd := range []float64{0.50, 0.55, 0.60, 0.70} {
		y := m.Yield(OpRead, vdd)
		if y < 0 || y > 1 || math.IsNaN(y) {
			t.Fatalf("yield %v at %.2f V", y, vdd)
		}
		if y < prev-1e-12 {
			t.Errorf("yield not increasing in Vdd: %v at %.2f V after %v", y, vdd, prev)
		}
		prev = y
	}
}

// TestYieldMonotoneSpares: more spare rows can only help, saturating at
// the unspared VRF/XRAM ceiling.
func TestYieldMonotoneSpares(t *testing.T) {
	const vdd = 0.575
	prev := -1.0
	for _, s := range []int{0, 2, 8, 16} {
		y := New(tech.N32).WithSpareRows(s).Yield(OpRead, vdd)
		if y < prev-1e-12 {
			t.Errorf("yield not increasing in spares: %v at s=%d after %v", y, s, prev)
		}
		prev = y
	}
	// The ceiling: unspared structures cap the yield no matter the
	// bank repair budget.
	ceiling := 1.0
	m := New(tech.N32)
	budget := m.Budget(OpRead, vdd)
	ceiling = gaussExpect(func(die float64) float64 {
		p := m.Cell.FailProb(OpRead, vdd, budget, die)
		return m.Map[4].Yield(p) * m.Map[5].Yield(p) // vrf × xram only
	}, m.Cell.SigmaD2D, dieIntervals)
	if y := New(tech.N32).WithSpareRows(64).Yield(OpRead, vdd); y > ceiling+1e-9 {
		t.Errorf("yield %v above unspared-structure ceiling %v", y, ceiling)
	}
}

func TestBinomialDrawInversion(t *testing.T) {
	// Direct inversion check at small n: draw k iff u lands inside
	// (CDF(k-1), CDF(k)].
	n, p := 8, 0.3
	for _, k := range []int{0, 1, 4, 8} {
		lo := 0.0
		if k > 0 {
			lo = binomialCDF(n, p, k-1)
		}
		hi := binomialCDF(n, p, k)
		mid := (lo + hi) / 2
		if got := binomialDraw(mid, n, p); got != k {
			t.Errorf("binomialDraw(%v, %d, %v) = %d, want %d", mid, n, p, got, k)
		}
	}
	// Edges and the complement branch.
	if binomialDraw(0.5, 0, 0.3) != 0 || binomialDraw(0.5, 8, 0) != 0 || binomialDraw(0.5, 8, 1) != 8 {
		t.Error("degenerate draws wrong")
	}
	// p > 0.5 takes the complement path and must still match direct
	// inversion computed on the complement law.
	pHigh := 0.995
	for _, u := range []float64{0.01, 0.3, 0.6, 0.99} {
		got := binomialDraw(u, 256, pHigh)
		if got < 0 || got > 256 {
			t.Fatalf("draw %d out of range", got)
		}
		// Verify via the inversion property against the CDF.
		if got > 0 && binomialCDF(256, pHigh, got-1) >= u {
			t.Errorf("u=%v: drew %d but CDF(%d) >= u", u, got, got-1)
		}
		if binomialCDF(256, pHigh, got) < u && got < 256 {
			t.Errorf("u=%v: drew %d but CDF(%d) < u", u, got, got)
		}
	}
	// Monotone in u.
	prev := -1
	for _, u := range []float64{0.05, 0.25, 0.5, 0.75, 0.95} {
		k := binomialDraw(u, 64, 0.2)
		if k < prev {
			t.Errorf("draw not monotone in u at %v", u)
		}
		prev = k
	}
}

// TestSamplerDeterminism: same seed, same chips — the sampler draws
// only from the caller's stream.
func TestSamplerDeterminism(t *testing.T) {
	smp := New(tech.N45).NewSampler(OpRead, 0.52)
	a := montecarlo.Sample(77, 500, smp.Sample)
	b := montecarlo.Sample(77, 500, smp.Sample)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sample %d differs: %v vs %v", i, a[i], b[i])
		}
		if a[i] != 0 && a[i] != 1 {
			t.Fatalf("sample %d = %v, want 0/1 indicator", i, a[i])
		}
	}
	// A fresh sampler for the same point draws identically: all state
	// is in the table, none in the stream position.
	smp2 := New(tech.N45).NewSampler(OpRead, 0.52)
	c := montecarlo.Sample(77, 500, smp2.Sample)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("fresh sampler diverges at %d", i)
		}
	}
}

func TestSamplerDegenerateD2D(t *testing.T) {
	m := New(tech.N90)
	m.Cell.SigmaD2D = 0
	smp := m.NewSampler(OpRead, 0.55)
	if len(smp.table) != 1 {
		t.Fatalf("degenerate sampler table has %d entries", len(smp.table))
	}
	r := rng.New(1)
	v := smp.Sample(r)
	if v != 0 && v != 1 {
		t.Fatalf("sample %v", v)
	}
}

// TestSamplerTableInterp: the interpolated conditional probability
// matches the exact quadrature to well under Monte-Carlo resolution
// across the die range, and clamps beyond it.
func TestSamplerTableInterp(t *testing.T) {
	m := New(tech.N45)
	const vdd = 0.52
	smp := m.NewSampler(OpRead, vdd)
	budget := m.Budget(OpRead, vdd)
	for _, z := range []float64{-6.5, -2.2, -0.3, 0, 1.1, 3.7, 7.9} {
		die := z * m.Cell.SigmaD2D
		got := smp.cellProb(die)
		want := m.Cell.FailProb(OpRead, vdd, budget, die)
		if math.Abs(got-want) > 1e-4 {
			t.Errorf("die %+.1fσ: interp %v vs exact %v", z, got, want)
		}
	}
	if smp.cellProb(-1) != smp.table[0] || smp.cellProb(1) != smp.table[len(smp.table)-1] {
		t.Error("out-of-range die shifts do not clamp to table edges")
	}
}

// TestAnalyticMatchesMCAcrossGrid is the acceptance-criteria property:
// at every default tech × Vdd grid point, for both accesses, the
// analytic yield sits inside the Monte-Carlo 99% confidence interval.
// The CI uses the normal approximation away from the edges and the
// exact "rule of three"-style bound 4.61/n when the MC estimate
// degenerates to 0 or 1 (P(zero hits) < 1% ⇒ p < −ln(0.01)/n).
func TestAnalyticMatchesMCAcrossGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("full-grid quadrature + sampling in -short mode")
	}
	const n = 4000
	for _, node := range tech.Nodes() {
		for _, vdd := range []float64{0.50, 0.55, 0.60} {
			for _, op := range []Op{OpRead, OpWrite} {
				m := New(node)
				analytic := m.Yield(op, vdd)
				smp := m.NewSampler(op, vdd)
				xs, err := montecarlo.SampleCtx(context.Background(), 0xABCD, n, smp.Sample)
				if err != nil {
					t.Fatal(err)
				}
				mc := stats.Mean(xs)
				se := math.Sqrt(mc * (1 - mc) / n)
				tol := math.Max(2.576*se, 4.61/n)
				if math.Abs(analytic-mc) > tol {
					t.Errorf("%s %.2f V %v: analytic %.5f vs MC %.5f (tol %.5f)",
						node.Name, vdd, op, analytic, mc, tol)
				}
			}
		}
	}
}
