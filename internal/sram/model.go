package sram

import (
	"math"

	"github.com/ntvsim/ntvsim/internal/rng"
	"github.com/ntvsim/ntvsim/internal/tech"
)

// Model ties a cell to a memory map and the timing margins: everything
// needed to answer "does this die's memory work at this voltage".
type Model struct {
	Cell Cell
	Map  []Structure

	ReadMargin  float64 // read budget in units of the nominal read delay
	WriteMargin float64 // write budget in units of the nominal write delay
}

// New returns the default model for a node: the calibrated cell and the
// SODA memory map with the default spare-row budget.
func New(node tech.Node) Model {
	return Model{
		Cell:        NewCell(node),
		Map:         SODAMemoryMap(DefaultSpareRowsPerBank),
		ReadMargin:  DefaultReadMargin,
		WriteMargin: DefaultWriteMargin,
	}
}

// WithSpareRows returns a copy of the model whose SIMD memory banks
// carry the given spare-row budget instead of the default.
func (m Model) WithSpareRows(spareRows int) Model {
	m.Map = SODAMemoryMap(spareRows)
	return m
}

func (m Model) margin(op Op) float64 {
	if op == OpWrite {
		return m.WriteMargin
	}
	return m.ReadMargin
}

// Budget returns the op's timing budget at vdd, in seconds.
func (m Model) Budget(op Op, vdd float64) float64 {
	return m.Cell.Budget(op, vdd, m.margin(op))
}

// Yield returns the analytic chip-level memory yield for the access at
// supply vdd: the probability that every structure in the map is
// repairable, integrating the exact conditional cell failure
// probability over the die-to-die threshold law. This is the SSTA twin
// of the Monte-Carlo sampler — same estimand, no sampling, no seed.
func (m Model) Yield(op Op, vdd float64) float64 {
	budget := m.Budget(op, vdd)
	y := gaussExpect(func(die float64) float64 {
		return MapYield(m.Map, m.Cell.FailProb(op, vdd, budget, die))
	}, m.Cell.SigmaD2D, dieIntervals)
	return clamp01(y)
}

// tablePoints is the die-shift resolution of the sampler's
// failure-probability table: 257 points over ±8σ places grid points
// every σ/16, far below the scale on which the conditional probability
// varies.
const tablePoints = 257

// ChipSampler draws whole chips: one die-to-die threshold shift, then
// per-structure failing-row counts from the conditional cell law. The
// conditional probability is interpolated from a table built once at
// construction, so per-chip cost is a handful of uniform draws — cheap
// enough for the sweep engine's six-figure sample counts.
//
// A sampler is immutable after construction and safe for concurrent
// use; Sample draws all randomness from the caller's stream, so
// determinism follows the montecarlo per-sample substream contract.
type ChipSampler struct {
	m      Model
	op     Op
	vdd    float64
	sigma  float64 // D2D sigma
	lo, dx float64 // table origin and spacing (unused when sigma == 0)
	table  []float64
}

// NewSampler builds the chip sampler for one (op, vdd) point,
// tabulating the conditional cell failure probability over ±8σ of the
// die-to-die law.
func (m Model) NewSampler(op Op, vdd float64) *ChipSampler {
	mTables.Inc()
	s := &ChipSampler{m: m, op: op, vdd: vdd, sigma: m.Cell.SigmaD2D}
	budget := m.Budget(op, vdd)
	if s.sigma == 0 {
		s.table = []float64{m.Cell.FailProb(op, vdd, budget, 0)}
		return s
	}
	s.lo = -8 * s.sigma
	s.dx = 16 * s.sigma / float64(tablePoints-1)
	s.table = make([]float64, tablePoints)
	for i := range s.table {
		s.table[i] = m.Cell.FailProb(op, vdd, budget, s.lo+float64(i)*s.dx)
	}
	return s
}

// cellProb interpolates the tabulated conditional failure probability
// at the die shift, clamping to the table edges (beyond ±8σ the
// Gaussian mass is below double precision).
func (s *ChipSampler) cellProb(die float64) float64 {
	if s.sigma == 0 {
		return s.table[0]
	}
	t := (die - s.lo) / s.dx
	switch {
	case t <= 0:
		return s.table[0]
	case t >= float64(len(s.table)-1):
		return s.table[len(s.table)-1]
	}
	i := int(t)
	frac := t - float64(i)
	return s.table[i] + frac*(s.table[i+1]-s.table[i])
}

// Sample draws one chip and returns 1 if every structure in the map is
// repairable, else 0 — the yield indicator the sweep kernels average.
func (s *ChipSampler) Sample(r *rng.Stream) float64 {
	mChips.Inc()
	die := r.Gauss(0, s.sigma)
	p := s.cellProb(die)
	for _, st := range s.m.Map {
		pRow := RowFailProb(p, st.Cols)
		if binomialDraw(r.Float64(), st.Rows, pRow) > st.SpareRows {
			return 0
		}
	}
	return 1
}

// binomialDraw inverts a Bin(n, p) law at the uniform u by walking the
// pmf in its recursive form. For p > ½ it draws the complement so the
// walk always starts from the high-mass end of a numerically
// representable pmf(0) = (1−p)^n.
func binomialDraw(u float64, n int, p float64) int {
	switch {
	case n <= 0 || p <= 0:
		return 0
	case p >= 1:
		return n
	case p > 0.5:
		return n - binomialDraw(1-u, n, 1-p)
	}
	q := 1 - p
	pmf := math.Pow(q, float64(n))
	cdf := pmf
	k := 0
	for cdf < u && k < n {
		pmf *= float64(n-k) / float64(k+1) * p / q
		k++
		cdf += pmf
	}
	return k
}
