package sram

import (
	"fmt"
	"math"

	"github.com/ntvsim/ntvsim/internal/soda"
	"github.com/ntvsim/ntvsim/internal/xram"
)

// WordBits is the SODA data word width: every memory structure stores
// 16-bit words (soda.SIMDMemory and the vector register file are
// uint16 arrays; XRAM crosspoints store one 16-slot configuration bit
// column per lane pair).
const WordBits = 16

// Structure is one repairable memory array: Rows word-lines of Cols
// cells, with SpareRows replacement rows. A row fails when any of its
// cells fails; the structure fails when more rows fail than it has
// spares.
type Structure struct {
	Name      string
	Rows      int
	Cols      int
	SpareRows int
}

// Cells returns the array's cell count (excluding spares).
func (s Structure) Cells() int { return s.Rows * s.Cols }

// Validate reports whether the geometry is usable.
func (s Structure) Validate() error {
	switch {
	case s.Rows <= 0:
		return fmt.Errorf("sram: structure %q: Rows = %d must be positive", s.Name, s.Rows)
	case s.Cols <= 0:
		return fmt.Errorf("sram: structure %q: Cols = %d must be positive", s.Name, s.Cols)
	case s.SpareRows < 0:
		return fmt.Errorf("sram: structure %q: SpareRows = %d must be non-negative", s.Name, s.SpareRows)
	}
	return nil
}

// RowFailProb returns the probability that a row of cols cells contains
// at least one failing cell, 1−(1−p)^cols, computed in log space so
// sub-ppb cell probabilities do not vanish in the subtraction.
func RowFailProb(pCell float64, cols int) float64 {
	switch {
	case pCell <= 0:
		return 0
	case pCell >= 1:
		return 1
	}
	return -math.Expm1(float64(cols) * math.Log1p(-pCell))
}

// Yield returns the probability that the structure is repairable when
// each cell fails independently with probability pCell: at most
// SpareRows of its rows contain a failing cell.
func (s Structure) Yield(pCell float64) float64 {
	return binomialCDF(s.Rows, RowFailProb(pCell, s.Cols), s.SpareRows)
}

// MapYield returns the probability that every structure in the memory
// map is repairable at the given cell failure probability. Structures
// fail independently (they share the D2D shift through pCell's
// conditioning, which is exactly how Model.Yield composes it), so the
// result is order-insensitive up to floating-point rounding.
func MapYield(structures []Structure, pCell float64) float64 {
	y := 1.0
	for _, s := range structures {
		y *= s.Yield(pCell)
	}
	return y
}

// MapCells returns the total cell count of the map.
func MapCells(structures []Structure) int {
	n := 0
	for _, s := range structures {
		n += s.Cells()
	}
	return n
}

// SODAMemoryMap returns the on-chip memory structures of the SODA-style
// chip the paper studies, derived from the internal/soda and
// internal/xram geometry:
//
//   - Banks SIMD memory banks of BankRows rows × BankLanes 16-bit words
//     (4 × 16 KB), each with spareRows replacement rows;
//   - the vector register file, VRegs entries × Lanes 16-bit words, no
//     spares (register indices are architecturally addressed);
//   - the XRAM crosspoint store, one row per lane × Lanes×Slots
//     configuration bits, no spares (crosspoints cannot be remapped).
func SODAMemoryMap(spareRows int) []Structure {
	m := make([]Structure, 0, soda.Banks+2)
	for b := 0; b < soda.Banks; b++ {
		m = append(m, Structure{
			Name:      fmt.Sprintf("bank%d", b),
			Rows:      soda.BankRows,
			Cols:      soda.BankLanes * WordBits,
			SpareRows: spareRows,
		})
	}
	m = append(m, Structure{
		Name: "vrf",
		Rows: soda.VRegs,
		Cols: soda.Lanes * WordBits,
	})
	m = append(m, Structure{
		Name: "xram",
		Rows: soda.Lanes,
		Cols: soda.Lanes * xram.DefaultSlots,
	})
	return m
}

// binomialCDF returns P(Bin(n, p) ≤ k), iterating pmf terms in log
// space (the same kernel internal/sparing uses for lane coverage).
func binomialCDF(n int, p float64, k int) float64 {
	if k >= n {
		return 1
	}
	if k < 0 {
		return 0
	}
	if p <= 0 {
		return 1
	}
	if p >= 1 {
		return 0 // k < n failures cannot cover n certain failures
	}
	q := 1 - p
	logP, logQ := math.Log(p), math.Log(q)
	var cdf float64
	logC := 0.0 // log C(n, 0)
	for i := 0; i <= k; i++ {
		cdf += math.Exp(logC + float64(i)*logP + float64(n-i)*logQ)
		logC += math.Log(float64(n-i)) - math.Log(float64(i+1))
	}
	if cdf > 1 {
		cdf = 1
	}
	return cdf
}
