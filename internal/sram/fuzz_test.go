package sram

import (
	"math"
	"testing"

	"github.com/ntvsim/ntvsim/internal/tech"
)

// sanitize maps an arbitrary float64 into [lo, hi], rejecting NaN/Inf
// by folding them to lo. Fuzzing explores the parameter space, not the
// IEEE special values — those are covered by explicit unit tests.
func sanitize(x, lo, hi float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return lo
	}
	return lo + math.Mod(math.Abs(x), hi-lo)
}

// FuzzSRAMCellYield asserts, for arbitrary (vdd, sigma scale, die
// shift, margin, op) inputs, the invariants every caller of
// Cell.FailProb relies on: the probability is finite and in [0, 1],
// and it is non-increasing in the budget (the failure law is a valid
// survival function of the timing budget).
func FuzzSRAMCellYield(f *testing.F) {
	f.Add(0.55, 1.0, 0.0, 2.0, false)
	f.Add(0.50, 2.5, 0.03, 3.0, true)
	f.Add(0.60, 0.0, -0.05, 1.0, false)
	f.Add(0.70, 1.7, 0.08, 0.5, true)
	f.Fuzz(func(t *testing.T, vddRaw, scaleRaw, dieRaw, marginRaw float64, write bool) {
		vdd := sanitize(vddRaw, 0.45, 0.95)
		scale := sanitize(scaleRaw, 0, 3)
		die := sanitize(dieRaw, -0.12, 0.12)
		margin := sanitize(marginRaw, 0.3, 6)
		op := OpRead
		if write {
			op = OpWrite
		}
		c := NewCell(tech.N32)
		c.SigmaWID *= scale
		budget := c.Budget(op, vdd, margin)
		p := c.FailProb(op, vdd, budget, die)
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 || p > 1 {
			t.Fatalf("FailProb(%v, %.3f, margin %.2f, die %+.3f) = %v", op, vdd, margin, die, p)
		}
		// Survival function: a looser budget can only lower the failure
		// probability (CDF monotonicity in the budget axis).
		pLoose := c.FailProb(op, vdd, budget*1.5, die)
		if pLoose > p+1e-9 {
			t.Fatalf("FailProb not monotone in budget: %v at 1×, %v at 1.5× (op %v, vdd %.3f, die %+.3f)",
				p, pLoose, op, vdd, die)
		}
		if q := c.FailProb(op, vdd, math.Inf(1), die); q != 0 {
			t.Fatalf("infinite budget fails with p=%v", q)
		}
	})
}

// FuzzBankCompose asserts the composition layer's invariants for
// arbitrary (cell fail prob, geometry, spares): every derived
// probability stays in [0, 1] with no NaN/Inf, MapYield is insensitive
// to structure order, and binomialCDF is non-decreasing in k.
func FuzzBankCompose(f *testing.F) {
	f.Add(1e-6, uint16(64), uint16(128), uint8(2))
	f.Add(0.3, uint16(7), uint16(3), uint8(0))
	f.Add(0.999, uint16(256), uint16(512), uint8(8))
	f.Add(0.0, uint16(1), uint16(1), uint8(1))
	f.Fuzz(func(t *testing.T, pRaw float64, rowsRaw, colsRaw uint16, sparesRaw uint8) {
		p := sanitize(pRaw, 0, 1)
		rows := 1 + int(rowsRaw%512)
		cols := 1 + int(colsRaw%4096)
		spares := int(sparesRaw % 32)

		pRow := RowFailProb(p, cols)
		if math.IsNaN(pRow) || pRow < 0 || pRow > 1 {
			t.Fatalf("RowFailProb(%v, %d) = %v", p, cols, pRow)
		}
		if p > 0 && pRow < p-1e-15 {
			t.Fatalf("row of %d cells fails less often (%v) than one cell (%v)", cols, pRow, p)
		}

		s := Structure{Name: "fuzz", Rows: rows, Cols: cols, SpareRows: spares}
		y := s.Yield(p)
		if math.IsNaN(y) || y < 0 || y > 1 {
			t.Fatalf("Structure.Yield(%v) = %v for %+v", p, y, s)
		}

		m := []Structure{
			s,
			{Name: "b", Rows: 1 + rows/2, Cols: cols, SpareRows: 0},
			{Name: "c", Rows: rows, Cols: 1 + cols/3, SpareRows: spares / 2},
		}
		fwd := MapYield(m, p)
		rev := MapYield([]Structure{m[2], m[0], m[1]}, p)
		if math.IsNaN(fwd) || fwd < 0 || fwd > 1 {
			t.Fatalf("MapYield = %v", fwd)
		}
		if diff := math.Abs(fwd - rev); diff > 1e-12*math.Max(fwd, 1e-300) && diff > 1e-300 {
			t.Fatalf("MapYield order-sensitive: %v vs %v", fwd, rev)
		}

		prev := 0.0
		for k := 0; k <= spares; k++ {
			c := binomialCDF(rows, pRow, k)
			if math.IsNaN(c) || c < 0 || c > 1 {
				t.Fatalf("binomialCDF(%d, %v, %d) = %v", rows, pRow, k, c)
			}
			if c < prev-1e-12 {
				t.Fatalf("binomialCDF not monotone in k: %v at %d after %v", c, k, prev)
			}
			prev = c
		}
	})
}
