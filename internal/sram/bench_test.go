package sram

import (
	"testing"

	"github.com/ntvsim/ntvsim/internal/montecarlo"
	"github.com/ntvsim/ntvsim/internal/tech"
)

// BenchmarkSRAMBankYield measures the analytic chip-yield quadrature —
// the per-point cost of the kernels' SSTA mode and of the property
// tests pinning analytic-vs-MC agreement.
func BenchmarkSRAMBankYield(b *testing.B) {
	m := New(tech.N32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.Yield(OpRead, 0.55)
	}
}

// BenchmarkSRAMTableBuild measures sampler construction: the 257-point
// conditional failure table built once per (node, Vdd, op) and shared
// by every Monte-Carlo chip draw afterwards.
func BenchmarkSRAMTableBuild(b *testing.B) {
	m := New(tech.N32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.NewSampler(OpRead, 0.55)
	}
}

// BenchmarkSRAMChipSample measures the steady-state per-chip draw cost
// the sweep engine pays per Monte-Carlo sample once the table exists.
func BenchmarkSRAMChipSample(b *testing.B) {
	smp := New(tech.N32).NewSampler(OpRead, 0.55)
	b.ReportAllocs()
	b.ResetTimer()
	const chunk = 1024
	for i := 0; i < b.N; i += chunk {
		n := chunk
		if rem := b.N - i; rem < n {
			n = rem
		}
		montecarlo.Sample(uint64(i), n, smp.Sample)
	}
}
