package sram

import (
	"math"
	"strings"
	"testing"

	"github.com/ntvsim/ntvsim/internal/soda"
	"github.com/ntvsim/ntvsim/internal/tech"
	"github.com/ntvsim/ntvsim/internal/xram"
)

func TestNewCellScaling(t *testing.T) {
	for _, node := range tech.Nodes() {
		c := NewCell(node)
		if got, want := c.SigmaWID, SigmaScale*node.Var.SigmaVthWID; got != want {
			t.Errorf("%s: SigmaWID = %v, want %v (scaled)", node.Name, got, want)
		}
		if got, want := c.SigmaD2D, node.Var.SigmaVthD2D; got != want {
			t.Errorf("%s: SigmaD2D = %v, want %v (unscaled)", node.Name, got, want)
		}
		if c.Contention != DefaultContention {
			t.Errorf("%s: contention %v", node.Name, c.Contention)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpRead.String() != "read" || OpWrite.String() != "write" {
		t.Errorf("op names: %q, %q", OpRead, OpWrite)
	}
}

// TestDelayMonotoneInStrength is the satellite property: access delays
// are monotone in cell strength. A higher threshold (weaker device)
// slows the read through either series transistor, slows the write
// through the access transistor, and speeds the write through the
// pull-up (less contention to overcome).
func TestDelayMonotoneInStrength(t *testing.T) {
	c := NewCell(tech.N45)
	const vdd = 0.55
	shifts := []float64{-0.10, -0.05, 0, 0.05, 0.10}
	for i := 1; i < len(shifts); i++ {
		lo, hi := shifts[i-1], shifts[i]
		if !(c.ReadDelay(vdd, lo, 0) < c.ReadDelay(vdd, hi, 0)) {
			t.Errorf("read delay not increasing in access shift at %v", hi)
		}
		if !(c.ReadDelay(vdd, 0, lo) < c.ReadDelay(vdd, 0, hi)) {
			t.Errorf("read delay not increasing in pull-down shift at %v", hi)
		}
		if !(c.WriteDelay(vdd, lo, 0) < c.WriteDelay(vdd, hi, 0)) {
			t.Errorf("write delay not increasing in access shift at %v", hi)
		}
		if !(c.WriteDelay(vdd, 0, lo) > c.WriteDelay(vdd, 0, hi)) {
			t.Errorf("write delay not decreasing in pull-up shift at %v", hi)
		}
	}
	if d := c.NominalDelay(OpRead, vdd); !(d > 0) || math.IsInf(d, 0) {
		t.Errorf("nominal read delay %v", d)
	}
	if d := c.NominalDelay(OpWrite, vdd); !(d > 0) || math.IsInf(d, 0) {
		t.Errorf("nominal write delay %v", d)
	}
}

// TestWriteDelayUnflippable: when the pull-up overpowers the access
// transistor the cell cannot be written at any speed.
func TestWriteDelayUnflippable(t *testing.T) {
	c := NewCell(tech.N90)
	c.Contention = 2 // pull-up drive twice the access drive
	if d := c.WriteDelay(0.5, 0, 0); !math.IsInf(d, 1) {
		t.Errorf("unflippable cell has finite write delay %v", d)
	}
	// A strong-enough pull-up shift restores writability.
	if d := c.WriteDelay(0.5, 0, 0.4); math.IsInf(d, 1) {
		t.Error("weakened pull-up still unwritable")
	}
}

// TestFailProbMonotoneVdd is the satellite property: raising the supply
// monotonically lowers the cell failure probability for both accesses.
func TestFailProbMonotoneVdd(t *testing.T) {
	m := New(tech.N32)
	for _, op := range []Op{OpRead, OpWrite} {
		prev := math.Inf(1)
		for _, vdd := range []float64{0.50, 0.55, 0.60, 0.70, 0.80} {
			p := m.Cell.FailProb(op, vdd, m.Budget(op, vdd), 0)
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("%v at %.2f V: p = %v outside [0,1]", op, vdd, p)
			}
			if p > prev+1e-12 {
				t.Errorf("%v fail prob not decreasing in Vdd: %.3g at %.2f V after %.3g", op, p, vdd, prev)
			}
			prev = p
		}
	}
}

// TestFailProbMonotoneSigma: more within-die variation can only hurt.
func TestFailProbMonotoneSigma(t *testing.T) {
	const vdd = 0.55
	for _, op := range []Op{OpRead, OpWrite} {
		prev := -1.0
		for _, scale := range []float64{0.5, 1, 1.5, 2, 3} {
			m := New(tech.N45)
			m.Cell.SigmaWID = scale * tech.N45.Var.SigmaVthWID
			p := m.Cell.FailProb(op, vdd, m.Budget(op, vdd), 0)
			if p < prev-1e-12 {
				t.Errorf("%v fail prob not increasing in sigma: %.3g at scale %v after %.3g", op, p, scale, prev)
			}
			prev = p
		}
	}
}

// TestFailProbBudgetCDF: the failure probability is one minus the delay
// CDF, so it must be non-increasing in the budget and hit its edges.
func TestFailProbBudgetCDF(t *testing.T) {
	c := NewCell(tech.N22)
	const vdd = 0.5
	nominal := c.NominalDelay(OpRead, vdd)
	prev := 1.0
	for _, margin := range []float64{0.5, 1, 1.5, 2, 3, 5, 10} {
		p := c.FailProb(OpRead, vdd, margin*nominal, 0)
		if p > prev+1e-12 {
			t.Errorf("fail prob not decreasing in budget: %.3g at margin %v after %.3g", p, margin, prev)
		}
		prev = p
	}
	if p := c.FailProb(OpRead, vdd, math.Inf(1), 0); p != 0 {
		t.Errorf("infinite budget: p = %v", p)
	}
	// A budget below the nominal delay fails at least half the cells.
	if p := c.FailProb(OpRead, vdd, 0.5*nominal, 0); p < 0.5 {
		t.Errorf("sub-nominal budget: p = %v, want >= 0.5", p)
	}
}

// TestFailProbDegenerateSigma: with no WID spread the conditional
// failure probability is a hard threshold on the die shift.
func TestFailProbDegenerateSigma(t *testing.T) {
	c := NewCell(tech.N90)
	c.SigmaWID = 0
	const vdd = 0.55
	budget := c.Budget(OpRead, vdd, 2)
	if p := c.FailProb(OpRead, vdd, budget, 0); p != 0 {
		t.Errorf("nominal die fails with margin 2: p = %v", p)
	}
	if p := c.FailProb(OpRead, vdd, budget, 0.5); p != 1 {
		t.Errorf("half-volt die shift passes: p = %v", p)
	}
}

func TestMarginalFailProbBounds(t *testing.T) {
	c := NewCell(tech.N45)
	const vdd = 0.55
	budget := c.Budget(OpRead, vdd, DefaultReadMargin)
	marginal := c.MarginalFailProb(OpRead, vdd, budget)
	center := c.FailProb(OpRead, vdd, budget, 0)
	if marginal < 0 || marginal > 1 {
		t.Fatalf("marginal = %v", marginal)
	}
	// Averaging over die shifts must stay within the conditional range.
	worst := c.FailProb(OpRead, vdd, budget, 8*c.SigmaD2D)
	if marginal < center-1e-12 || marginal > worst+1e-12 {
		t.Errorf("marginal %v outside [center %v, worst %v]", marginal, center, worst)
	}
}

func TestRowFailProbEdges(t *testing.T) {
	if p := RowFailProb(0, 512); p != 0 {
		t.Errorf("p=0: %v", p)
	}
	if p := RowFailProb(1, 512); p != 1 {
		t.Errorf("p=1: %v", p)
	}
	// Sub-ppb cell probabilities survive the log-space form: the union
	// bound cols·p is an upper bound and a ~1e-13-tight approximation.
	p := RowFailProb(1e-12, 512)
	if p <= 0 || p > 512e-12 || math.Abs(p-512e-12) > 1e-3*512e-12 {
		t.Errorf("RowFailProb(1e-12, 512) = %v, want ~5.12e-10", p)
	}
}

func TestStructureYieldEdges(t *testing.T) {
	s := Structure{Name: "t", Rows: 16, Cols: 8, SpareRows: 16}
	if y := s.Yield(0.9); y != 1 {
		t.Errorf("spares cover every row but yield %v", y)
	}
	s.SpareRows = 2
	if y := s.Yield(1); y != 0 {
		t.Errorf("certain cell failure but yield %v", y)
	}
	if y := s.Yield(0); y != 1 {
		t.Errorf("perfect cells but yield %v", y)
	}
}

func TestStructureValidate(t *testing.T) {
	for _, bad := range []Structure{
		{Name: "r", Rows: 0, Cols: 1},
		{Name: "c", Rows: 1, Cols: 0},
		{Name: "s", Rows: 1, Cols: 1, SpareRows: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%+v validated", bad)
		}
	}
	if err := (Structure{Name: "ok", Rows: 1, Cols: 1}).Validate(); err != nil {
		t.Errorf("valid structure rejected: %v", err)
	}
}

// TestMapYieldOrderInsensitive is the satellite property: composition
// must not depend on structure order (1e-12 relative tolerance; the
// product is mathematically commutative, floating point reorders only
// rounding).
func TestMapYieldOrderInsensitive(t *testing.T) {
	m := SODAMemoryMap(4)
	p := 3.7e-6
	want := MapYield(m, p)
	perms := [][]int{{5, 4, 3, 2, 1, 0}, {2, 0, 5, 1, 4, 3}, {1, 3, 5, 0, 2, 4}}
	for _, perm := range perms {
		shuffled := make([]Structure, len(m))
		for i, j := range perm {
			shuffled[i] = m[j]
		}
		got := MapYield(shuffled, p)
		if relDiff(got, want) > 1e-12 {
			t.Errorf("permuted map yield %v differs from %v", got, want)
		}
	}
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

// TestSODAMemoryMapGeometry ties the yield model's map to the
// architectural constants it claims to cover: every bit of SIMD memory,
// vector RF and XRAM configuration store, and nothing else.
func TestSODAMemoryMapGeometry(t *testing.T) {
	m := SODAMemoryMap(DefaultSpareRowsPerBank)
	if len(m) != soda.Banks+2 {
		t.Fatalf("map has %d structures, want %d", len(m), soda.Banks+2)
	}
	for i := 0; i < soda.Banks; i++ {
		b := m[i]
		if b.Rows != soda.BankRows || b.Cols != soda.BankLanes*WordBits {
			t.Errorf("bank %d geometry %dx%d", i, b.Rows, b.Cols)
		}
		if b.SpareRows != DefaultSpareRowsPerBank {
			t.Errorf("bank %d spares %d", i, b.SpareRows)
		}
		// One bank is 16 KB of 16-bit words.
		if got, want := b.Cells(), soda.BankRows*soda.BankLanes*WordBits; got != want {
			t.Errorf("bank %d is %d bits, want %d", i, got, want)
		}
		if err := b.Validate(); err != nil {
			t.Errorf("bank %d: %v", i, err)
		}
	}
	vrf := m[soda.Banks]
	if vrf.Name != "vrf" || vrf.Rows != soda.VRegs || vrf.Cols != soda.Lanes*WordBits || vrf.SpareRows != 0 {
		t.Errorf("vrf geometry %+v", vrf)
	}
	xr := m[soda.Banks+1]
	if xr.Name != "xram" || xr.Rows != soda.Lanes || xr.Cols != soda.Lanes*xram.DefaultSlots || xr.SpareRows != 0 {
		t.Errorf("xram geometry %+v", xr)
	}
	// Total: 4×16 KB banks + 8 KB vector RF + 128×128×16 crosspoint bits.
	want := soda.Banks*soda.BankRows*soda.BankLanes*WordBits +
		soda.VRegs*soda.Lanes*WordBits +
		soda.Lanes*soda.Lanes*xram.DefaultSlots
	if got := MapCells(m); got != want {
		t.Errorf("map covers %d cells, want %d", got, want)
	}
}

func TestWithSpareRows(t *testing.T) {
	m := New(tech.N90).WithSpareRows(3)
	for i := 0; i < soda.Banks; i++ {
		if m.Map[i].SpareRows != 3 {
			t.Errorf("bank %d spares %d after WithSpareRows(3)", i, m.Map[i].SpareRows)
		}
	}
	if m.Map[soda.Banks].SpareRows != 0 {
		t.Error("vrf gained spares")
	}
}

// TestBinomialCDFAgainstDirect checks the log-space iteration against a
// direct summation at small n.
func TestBinomialCDFAgainstDirect(t *testing.T) {
	direct := func(n int, p float64, k int) float64 {
		sum := 0.0
		for i := 0; i <= k && i <= n; i++ {
			c := 1.0
			for j := 0; j < i; j++ {
				c = c * float64(n-j) / float64(j+1)
			}
			sum += c * math.Pow(p, float64(i)) * math.Pow(1-p, float64(n-i))
		}
		return sum
	}
	for _, tc := range []struct {
		n int
		p float64
		k int
	}{{10, 0.3, 0}, {10, 0.3, 3}, {10, 0.3, 10}, {16, 0.01, 2}, {7, 0.9, 5}} {
		got := binomialCDF(tc.n, tc.p, tc.k)
		want := direct(tc.n, tc.p, tc.k)
		if relDiff(got, want) > 1e-12 {
			t.Errorf("binomialCDF(%d, %v, %d) = %v, want %v", tc.n, tc.p, tc.k, got, want)
		}
	}
	if binomialCDF(5, 0, 0) != 1 || binomialCDF(5, 1, 4) != 0 || binomialCDF(5, 1, 5) != 1 {
		t.Error("binomialCDF edge cases wrong")
	}
}

func TestRowPlacementNames(t *testing.T) {
	if !strings.Contains((PooledRows{4}).Name(), "4") || (PooledRows{4}).Spares() != 4 {
		t.Error("pooled placement metadata")
	}
	b := BankedRows{Banks: 4, RowsPerBank: 16, SparesPerBank: 2}
	if b.Spares() != 8 || !strings.Contains(b.Name(), "2") {
		t.Error("banked placement metadata")
	}
}

// TestRowCoverageMatchesBruteForce is the satellite acceptance test:
// the analytic binomial composition equals exhaustive enumeration of
// every fault subset on small banks, to 1e-12 relative tolerance.
func TestRowCoverageMatchesBruteForce(t *testing.T) {
	brute := func(pl RowPlacement, rows int, p float64) float64 {
		total := 0.0
		for mask := 0; mask < 1<<rows; mask++ {
			var faulty []int
			for r := 0; r < rows; r++ {
				if mask&(1<<r) != 0 {
					faulty = append(faulty, r)
				}
			}
			if !pl.Repairable(faulty) {
				continue
			}
			prob := 1.0
			for r := 0; r < rows; r++ {
				if mask&(1<<r) != 0 {
					prob *= p
				} else {
					prob *= 1 - p
				}
			}
			total += prob
		}
		return total
	}
	cases := []struct {
		pl   RowPlacement
		rows int
	}{
		{PooledRows{SpareRows: 0}, 10},
		{PooledRows{SpareRows: 2}, 12},
		{PooledRows{SpareRows: 12}, 12},
		{BankedRows{Banks: 3, RowsPerBank: 4, SparesPerBank: 1}, 12},
		{BankedRows{Banks: 2, RowsPerBank: 6, SparesPerBank: 2}, 12},
		{BankedRows{Banks: 4, RowsPerBank: 4, SparesPerBank: 0}, 16},
	}
	for _, tc := range cases {
		for _, p := range []float64{0.01, 0.2, 0.5, 0.85} {
			got := RowCoverage(tc.pl, tc.rows, p)
			want := brute(tc.pl, tc.rows, p)
			if relDiff(got, want) > 1e-12 {
				t.Errorf("%s rows=%d p=%v: analytic %v, brute force %v",
					tc.pl.Name(), tc.rows, p, got, want)
			}
		}
	}
}

// TestRowCoverageConsistentWithStructure: a structure's yield is pooled
// row coverage at its row failure probability, and the SODA map's
// per-bank spares are exactly the banked placement.
func TestRowCoverageConsistentWithStructure(t *testing.T) {
	s := Structure{Name: "t", Rows: 64, Cols: 128, SpareRows: 3}
	p := 1e-4
	if got, want := s.Yield(p), RowCoverage(PooledRows{3}, 64, RowFailProb(p, 128)); relDiff(got, want) > 1e-12 {
		t.Errorf("structure yield %v != pooled coverage %v", got, want)
	}
	// Four independent banks with private spares = BankedRows across
	// the concatenated row space.
	pRow := 1e-3
	banked := RowCoverage(BankedRows{Banks: 4, RowsPerBank: 16, SparesPerBank: 1}, 64, pRow)
	perBank := RowCoverage(PooledRows{1}, 16, pRow)
	if relDiff(banked, perBank*perBank*perBank*perBank) > 1e-12 {
		t.Errorf("banked coverage %v != product of per-bank %v", banked, math.Pow(perBank, 4))
	}
}

func TestRowCoverageUnknownPlacementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for unknown placement")
		}
	}()
	type oddball struct{ RowPlacement }
	RowCoverage(oddball{}, 4, 0.1)
}
