package sram

import (
	"math"

	"github.com/ntvsim/ntvsim/internal/stats"
)

// The conditional failure probability exploits the delay monotonicity
// in each transistor's threshold shift: for a fixed shift of one device
// there is a single critical shift of the other at which the access
// delay crosses the budget, found by bisection, and the failure mass
// beyond it is a Gaussian tail. Integrating that tail over the first
// device's WID law (Gauss–Simpson over ±8σ) gives the exact-to-
// quadrature cell failure probability — no sampling.

// quadIntervals is the Simpson interval count for the WID integral;
// dieIntervals for the outer die-to-die integral (matching the moment
// quadrature in internal/device).
const (
	quadIntervals = 64
	dieIntervals  = 160
	bisectIters   = 52
)

// gaussExpect approximates E[f(X)] for X ~ N(0, sigma) by composite
// Simpson quadrature over ±8σ. sigma == 0 degenerates to f(0).
func gaussExpect(f func(float64) float64, sigma float64, intervals int) float64 {
	if sigma == 0 {
		return f(0)
	}
	law := stats.Normal{Mu: 0, Sigma: sigma}
	lo := -8 * sigma
	h := 16 * sigma / float64(intervals)
	var sum float64
	for i := 0; i <= intervals; i++ {
		x := lo + float64(i)*h
		w := 2.0
		switch {
		case i == 0 || i == intervals:
			w = 1
		case i%2 == 1:
			w = 4
		}
		sum += w * f(x) * law.PDF(x)
	}
	return sum * h / 3
}

// bisectCrossing returns the shift at which the increasing delay(x)
// crosses budget, given delay(lo) ≤ budget < delay(hi). A fixed
// iteration count keeps the evaluation branch-free and bit-reproducible
// across platforms.
func bisectCrossing(delay func(float64) float64, budget, lo, hi float64) float64 {
	for i := 0; i < bisectIters; i++ {
		mid := 0.5 * (lo + hi)
		if delay(mid) > budget {
			hi = mid
		} else {
			lo = mid
		}
	}
	return 0.5 * (lo + hi)
}

// FailProb returns the probability that a single cell misses the timing
// budget (seconds) for the given access at supply vdd, conditional on
// the die-to-die threshold shift die (volts). The two cell transistors
// on the access path carry independent WID shifts on top of die.
func (c Cell) FailProb(op Op, vdd, budget, die float64) float64 {
	mQuadratures.Inc()
	if math.IsInf(budget, 1) {
		return 0
	}
	sigma := c.SigmaWID
	if sigma == 0 {
		if c.Delay(op, vdd, die, die) > budget {
			return 1
		}
		return 0
	}
	// The bracket must contain the budget crossing wherever the WID law
	// has mass; beyond it the tail contribution is below quadrature
	// precision and is closed with the bracket-edge tail.
	bracket := 2 + 8*sigma + math.Abs(die)
	wid := stats.Normal{Mu: 0, Sigma: sigma}

	// tail(first) is P(fail | first device's WID shift): the Gaussian
	// mass of the second device beyond its critical shift. For a read
	// the outer variable is the access shift and the bisected one the
	// pull-down; for a write the outer is the pull-up and the bisected
	// one the access (WriteDelay decreases in the pull-up shift but
	// increases in the access shift, so the access is the monotone
	// bisection axis).
	tail := func(first float64) float64 {
		delay := func(x float64) float64 {
			if op == OpWrite {
				return c.WriteDelay(vdd, die+x, die+first)
			}
			return c.ReadDelay(vdd, die+first, die+x)
		}
		lo, hi := -bracket, bracket
		if delay(lo) > budget {
			return 1 // even the strongest second device misses the budget
		}
		if delay(hi) <= budget {
			return 1 - wid.CDF(hi) // no crossing in-bracket: ~0 tail
		}
		return 1 - wid.CDF(bisectCrossing(delay, budget, lo, hi))
	}

	p := gaussExpect(tail, sigma, quadIntervals)
	return clamp01(p)
}

// MarginalFailProb integrates FailProb over the die-to-die law: the
// unconditional probability that a random cell on a random die misses
// the budget.
func (c Cell) MarginalFailProb(op Op, vdd, budget float64) float64 {
	p := gaussExpect(func(die float64) float64 {
		return c.FailProb(op, vdd, budget, die)
	}, c.SigmaD2D, quadIntervals)
	return clamp01(p)
}

func clamp01(p float64) float64 {
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	}
	return p
}
