package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// HandleLease serves POST /v1/cluster/lease: validate the worker's
// identity and protocol version, then grant up to max_shards queued
// shards.
func (c *Coordinator) HandleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.WorkerID == "" {
		WriteError(w, http.StatusBadRequest, CodeInvalidBody, "missing \"worker_id\" field")
		return
	}
	if req.ProtocolVersion != ProtocolVersion {
		WriteError(w, http.StatusBadRequest, CodeProtocolUnsupported,
			fmt.Sprintf("worker speaks protocol version %d; this coordinator speaks %d",
				req.ProtocolVersion, ProtocolVersion))
		return
	}
	grants := c.Lease(req.WorkerID, req.MaxShards)
	if grants == nil {
		grants = []Grant{}
	}
	writeJSON(w, http.StatusOK, LeaseResponse{Leases: grants})
}

// HandleHeartbeat serves POST /v1/cluster/heartbeat: renew the named
// leases, reporting lost ones so the worker abandons stolen shards.
func (c *Coordinator) HandleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.WorkerID == "" {
		WriteError(w, http.StatusBadRequest, CodeInvalidBody, "missing \"worker_id\" field")
		return
	}
	renewed, lost := c.Heartbeat(req.WorkerID, req.LeaseIDs)
	if renewed == nil {
		renewed = []string{}
	}
	writeJSON(w, http.StatusOK, HeartbeatResponse{Renewed: renewed, Lost: lost})
}

// HandleComplete serves POST /v1/cluster/complete: journal and accept
// one shard outcome. A lease the coordinator no longer holds yields
// the typed lease_not_found envelope with 409 — the worker drops the
// result, the shard belongs to another worker now.
func (c *Coordinator) HandleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.WorkerID == "" {
		WriteError(w, http.StatusBadRequest, CodeInvalidBody, "missing \"worker_id\" field")
		return
	}
	if req.LeaseID == "" {
		WriteError(w, http.StatusBadRequest, CodeInvalidBody, "missing \"lease_id\" field")
		return
	}
	if req.Result == nil && req.Error == "" {
		WriteError(w, http.StatusBadRequest, CodeInvalidBody, "completion carries neither \"result\" nor \"error\"")
		return
	}
	switch err := c.Complete(req.WorkerID, req.LeaseID, req.Result, req.Error, req.Retries); {
	case errors.Is(err, ErrLeaseNotFound):
		WriteError(w, http.StatusConflict, CodeLeaseNotFound,
			"lease expired or was never granted; the shard has been re-queued for another worker")
	case err != nil:
		WriteError(w, http.StatusInternalServerError, "internal",
			"journal append failed: "+err.Error())
	default:
		writeJSON(w, http.StatusOK, CompleteResponse{OK: true})
	}
}

// HandleStatus serves GET /v1/cluster: the coordinator's live
// queue/lease/worker snapshot.
func (c *Coordinator) HandleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

// decodeBody decodes a bounded JSON request body into v, writing the
// typed invalid_body envelope (and returning false) on failure.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, 1<<20)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		WriteError(w, http.StatusBadRequest, CodeInvalidBody, fmt.Sprintf("invalid JSON body: %v", err))
		return false
	}
	return true
}
