package cluster

import (
	"context"
	"testing"
	"time"

	"github.com/ntvsim/ntvsim/internal/sweep"
)

// sramSpec mirrors tinySpec on the SRAM kernel axis: 2 nodes × 3
// voltages of sramreadyield, the memory-side metric whose sampler
// tables make shards meaningfully heavier than the logic kernels.
func sramSpec() sweep.Spec {
	return sweep.Spec{
		Metric:  "sramreadyield",
		Nodes:   []string{"45nm GP", "32nm PTM HP"},
		Vdd:     &sweep.VddAxis{From: 0.50, To: 0.60, Step: 0.05},
		Samples: []int{200},
		Seed:    4242,
	}
}

// TestClusterSRAMSweepByteIdentical runs an sramreadyield sweep across
// two real HTTP workers and requires the merged result to be
// byte-identical to sweep.RunSerial — the cluster extension of the
// engine-level SRAM determinism contract.
func TestClusterSRAMSweepByteIdentical(t *testing.T) {
	serial, err := sweep.RunSerial(context.Background(), sramSpec())
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(t, serial)

	c := newCoordinator(t, t.TempDir(), 2*time.Second)
	eng := newEngine(t)
	eng.SetRemote(c)
	sw, err := c.Submit(context.Background(), eng, sramSpec())
	if err != nil {
		t.Fatal(err)
	}
	srv := serve(t, c)
	wctx, stopWorkers := context.WithCancel(context.Background())
	defer stopWorkers()
	for _, id := range []string{"w1", "w2"} {
		w := &Worker{Coordinator: srv.URL, ID: id, MaxShards: 2, Poll: fastPoll}
		go w.Run(wctx)
	}

	snap := waitDone(t, sw, 120*time.Second)
	if snap.State != sweep.Done {
		t.Fatalf("cluster sweep ended %s (%s), want done", snap.State, snap.Error)
	}
	workers := map[string]bool{}
	for _, sh := range snap.Shards {
		workers[sh.Worker] = true
	}
	got, ok := sw.Result()
	if !ok {
		t.Fatal("done sweep has no result")
	}
	if renderAll(t, got) != want {
		t.Fatal("2-worker SRAM sweep is not byte-identical to sweep.RunSerial")
	}
	t.Logf("shards served by %d distinct workers", len(workers))
}
