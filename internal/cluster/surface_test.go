package cluster

// Coverage of the coordinator's smaller surfaces: the heartbeat
// endpoint, the metrics gauges, the closed-coordinator paths and the
// worker's heartbeat probe — each pinned here so the big end-to-end
// suites stay focused on the determinism contract.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/ntvsim/ntvsim/internal/sweep"
	"github.com/ntvsim/ntvsim/internal/telemetry"
)

// TestHeartbeatEndpoint drives POST /v1/cluster/heartbeat over HTTP:
// live leases renew, unknown ones report lost, a missing worker_id is
// the typed invalid_body envelope, and an idle heartbeat keeps the
// empty-not-null list shape.
func TestHeartbeatEndpoint(t *testing.T) {
	c := newCoordinator(t, t.TempDir(), time.Hour)
	if c.LeaseTTL() != time.Hour {
		t.Fatalf("LeaseTTL %v, want 1h", c.LeaseTTL())
	}
	eng := newEngine(t)
	eng.SetRemote(c)
	sw, err := c.Submit(context.Background(), eng, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Cancel()
	grants := leaseN(t, c, "w1", 2)
	srv := serve(t, c)

	post := func(body string) (int, HeartbeatResponse, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/cluster/heartbeat", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		var hb HeartbeatResponse
		_ = json.Unmarshal(raw, &hb)
		return resp.StatusCode, hb, string(raw)
	}

	body, _ := json.Marshal(HeartbeatRequest{
		WorkerID: "w1",
		LeaseIDs: []string{grants[0].LeaseID, grants[1].LeaseID, "ls00000000-404"},
	})
	status, hb, _ := post(string(body))
	if status != http.StatusOK || len(hb.Renewed) != 2 || len(hb.Lost) != 1 {
		t.Fatalf("heartbeat: status %d renewed %v lost %v, want 200/2/1", status, hb.Renewed, hb.Lost)
	}
	if hb.Lost[0] != "ls00000000-404" {
		t.Fatalf("lost lease %q, want the unknown id", hb.Lost[0])
	}

	if status, _, raw := post(`{"lease_ids":["x"]}`); status != http.StatusBadRequest || !strings.Contains(raw, `"invalid_body"`) {
		t.Fatalf("missing worker_id: status %d body %s", status, raw)
	}
	if status, _, raw := post(`{"worker_id":"idle"}`); status != http.StatusOK || !strings.Contains(raw, `"renewed": []`) {
		t.Fatalf("idle heartbeat: status %d body %s", status, raw)
	}
}

// TestMetricsGauges: the process-global cluster gauges read live state
// through the active coordinator — queue depth, active leases and the
// recently-seen worker count all land on the Prometheus surface.
func TestMetricsGauges(t *testing.T) {
	c := newCoordinator(t, t.TempDir(), time.Hour)
	eng := newEngine(t)
	eng.SetRemote(c)
	sw, err := c.Submit(context.Background(), eng, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Cancel()
	leaseN(t, c, "w1", 2)

	// The dispatcher offers shards asynchronously; wait for the full
	// 6-point grid to be accounted for (2 leased, 4 queued).
	deadline := time.Now().Add(10 * time.Second)
	for {
		q, l := c.depth()
		if q == 4 && l == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("depth stuck at queued=%d leased=%d, want 4/2", q, l)
		}
		time.Sleep(time.Millisecond)
	}
	if n := c.workerCount(time.Now()); n != 1 {
		t.Fatalf("workerCount %d, want 1", n)
	}
	if n := c.workerCount(time.Now().Add(10 * time.Hour)); n != 0 {
		t.Fatalf("workerCount far in the future %d, want 0 (w1 aged out)", n)
	}

	var buf bytes.Buffer
	if err := telemetry.Default.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, line := range []string{
		"ntvsim_cluster_queue_depth 4",
		"ntvsim_cluster_leases_active 2",
		"ntvsim_cluster_workers 1",
	} {
		if !strings.Contains(text, line) {
			t.Errorf("metrics missing %q", line)
		}
	}
}

// TestClosedCoordinator: Submit after Close fails on the journal
// append (the intent cannot be made durable), and shards offered to a
// closed coordinator finalize as failed instead of queueing forever.
func TestClosedCoordinator(t *testing.T) {
	c, err := New(Config{DataDir: t.TempDir(), LeaseTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	eng := newEngine(t)
	eng.SetRemote(c)

	// The validation error path precedes the journal.
	if _, err := c.Submit(context.Background(), eng, sweep.Spec{Metric: "no-such-metric"}); err == nil {
		t.Fatal("invalid spec accepted")
	}

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v, want idempotent nil", err)
	}
	if _, err := c.Submit(context.Background(), eng, tinySpec()); err == nil {
		t.Fatal("Submit after Close journaled an intent on a closed journal")
	}

	// Bypass the coordinator's journal: the engine still offers shards to
	// its remote queue, and the closed coordinator must reject them.
	sw, err := eng.SubmitCtx(context.Background(), tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	snap := waitDone(t, sw, 30*time.Second)
	if snap.State != sweep.Failed {
		t.Fatalf("sweep against a closed coordinator ended %s, want failed", snap.State)
	}
	if !strings.Contains(snap.Error, "coordinator closed") {
		t.Fatalf("failure %q does not name the closed coordinator", snap.Error)
	}
}

// TestWorkerHeartbeatProbe pins the worker-side lost-lease decision:
// renewed means keep computing, lost means abandon, and a transport
// blip is never treated as a lost lease.
func TestWorkerHeartbeatProbe(t *testing.T) {
	c := newCoordinator(t, t.TempDir(), time.Hour)
	eng := newEngine(t)
	eng.SetRemote(c)
	sw, err := c.Submit(context.Background(), eng, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	defer sw.Cancel()
	g := leaseN(t, c, "hb", 1)[0]
	srv := serve(t, c)

	discard := slog.New(slog.NewTextHandler(io.Discard, nil))
	rt := &runtimeWorker{base: srv.URL, id: "hb", poll: fastPoll, client: srv.Client(), log: discard}
	if rt.heartbeatLost(context.Background(), g.LeaseID) {
		t.Fatal("live lease reported lost")
	}
	if !rt.heartbeatLost(context.Background(), "ls00000000-404") {
		t.Fatal("unknown lease reported live")
	}
	dead := &runtimeWorker{base: "http://127.0.0.1:1", id: "hb", poll: fastPoll,
		client: &http.Client{Timeout: time.Second}, log: discard}
	if dead.heartbeatLost(context.Background(), g.LeaseID) {
		t.Fatal("transport failure treated as a lost lease")
	}
}
