package cluster

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/ntvsim/ntvsim/internal/sweep"
)

// Schema is the journal entry schema tag; bump it when Entry changes
// incompatibly so replay can reject foreign shapes instead of
// misreading them.
const Schema = "ntvsim.cluster/v1"

// FileName is the shard journal file created under the data directory,
// next to (not shared with) the run ledger's runs.jsonl.
const FileName = "cluster.jsonl"

// Journal entry types.
const (
	// EntrySweep records a sweep's intent — id plus fully normalized
	// spec — written before the engine learns about the sweep.
	EntrySweep = "sweep"
	// EntryShard records one accepted shard result, written (and
	// fsynced) before the completion is acknowledged to the worker or
	// surfaced to the engine — the write-ahead property that makes a
	// coordinator restart lose nothing.
	EntryShard = "shard"
	// EntrySweepDone records a sweep's terminal state. Sweeps without
	// one are resumed on replay.
	EntrySweepDone = "sweep_done"
)

// Entry is one journal line. Type selects which fields are meaningful:
// sweep entries carry Spec, shard entries carry Index/Worker/Result,
// sweep_done entries carry State.
type Entry struct {
	Schema  string `json:"schema"`
	Type    string `json:"type"`
	SweepID string `json:"sweep_id"`

	Spec *sweep.Spec `json:"spec,omitempty"`

	Index  int                `json:"index,omitempty"`
	Worker string             `json:"worker,omitempty"`
	Result *sweep.ShardResult `json:"result,omitempty"`

	State string `json:"state,omitempty"`

	At time.Time `json:"at"`
}

// errJournalClosed is returned by Append after Close.
var errJournalClosed = errors.New("cluster: journal closed")

// Journal is the coordinator's append-only shard journal: a JSONL WAL
// under the data directory with the same durability discipline as the
// run ledger (internal/ledger). Append writes and fsyncs before
// acknowledging; OpenJournal replays on boot, tolerating a torn tail —
// the signature of a crash mid-write — by truncating it away, while
// interior corruption is fatal because silently skipping records would
// hide lost shard results.
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	entries []Entry // replayed + appended, in journal order
}

// OpenJournal opens (creating if needed) the shard journal under dir
// and replays it into memory.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: journal: %w", err)
	}
	path := filepath.Join(dir, FileName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("cluster: journal: %w", err)
	}
	j := &Journal{f: f, path: path}
	if err := j.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// replay scans the journal, keeping every complete entry and truncating
// a partial tail so the next append starts on a line boundary.
func (j *Journal) replay() error {
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("cluster: journal: %w", err)
	}
	r := bufio.NewReaderSize(j.f, 1<<20)
	var good int64 // byte offset just past the last complete entry
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			// No trailing newline: a torn final write. Leave it behind
			// the truncation point.
			break
		}
		if err != nil {
			return fmt.Errorf("cluster: journal replay: %w", err)
		}
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			var e Entry
			if uerr := json.Unmarshal(trimmed, &e); uerr != nil {
				// A torn write can also leave a complete-looking line of
				// garbage only at the very tail; interior corruption is
				// fatal.
				if isTail(r) {
					break
				}
				return fmt.Errorf("cluster: journal replay: corrupt entry at offset %d: %w", good, uerr)
			}
			j.entries = append(j.entries, e)
		}
		good += int64(len(line))
	}
	if err := j.f.Truncate(good); err != nil {
		return fmt.Errorf("cluster: journal: %w", err)
	}
	if _, err := j.f.Seek(good, io.SeekStart); err != nil {
		return fmt.Errorf("cluster: journal: %w", err)
	}
	return nil
}

// isTail reports whether the reader has no further complete line — the
// just-read bad line is the journal's tail.
func isTail(r *bufio.Reader) bool {
	_, err := r.ReadBytes('\n')
	return err == io.EOF
}

// Append durably appends e — write, fsync, then index — stamping the
// schema tag and timestamp when unset. An entry is only acknowledged
// (nil error) once it is on disk.
func (j *Journal) Append(e Entry) error {
	if e.Schema == "" {
		e.Schema = Schema
	}
	if e.At.IsZero() {
		e.At = time.Now().UTC()
	}
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("cluster: journal: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errJournalClosed
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("cluster: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("cluster: journal: %w", err)
	}
	j.entries = append(j.entries, e)
	return nil
}

// Entries returns a copy of every journal entry in order.
func (j *Journal) Entries() []Entry {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Entry(nil), j.entries...)
}

// Len returns the number of journal entries.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Close syncs and closes the journal file; subsequent Appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
