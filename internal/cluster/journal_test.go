package cluster

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ntvsim/ntvsim/internal/sweep"
)

func openJournal(t *testing.T, dir string) *Journal {
	t.Helper()
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

// TestJournalRoundTrip pins the WAL property: entries appended (and
// acknowledged) before a close are all present, in order, after a
// reopen.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := openJournal(t, dir)
	spec := sweep.Spec{Metric: "chain3sigma"}
	entries := []Entry{
		{Type: EntrySweep, SweepID: "sw1", Spec: &spec},
		{Type: EntryShard, SweepID: "sw1", Index: 3, Worker: "w1",
			Result: &sweep.ShardResult{Kernel: "chain3sigma", Value: 1.25}},
		{Type: EntrySweepDone, SweepID: "sw1", State: "done"},
	}
	for _, e := range entries {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2 := openJournal(t, dir)
	got := j2.Entries()
	if len(got) != len(entries) {
		t.Fatalf("reopened journal has %d entries, want %d", len(got), len(entries))
	}
	for i, e := range got {
		if e.Schema != Schema {
			t.Errorf("entry %d schema %q, want %q", i, e.Schema, Schema)
		}
		if e.Type != entries[i].Type || e.SweepID != entries[i].SweepID {
			t.Errorf("entry %d is %s/%s, want %s/%s", i, e.Type, e.SweepID, entries[i].Type, entries[i].SweepID)
		}
		if e.At.IsZero() {
			t.Errorf("entry %d has no timestamp", i)
		}
	}
	if got[1].Result == nil || got[1].Result.Value != 1.25 || got[1].Worker != "w1" {
		t.Fatalf("shard entry did not round-trip: %+v", got[1])
	}
}

// TestJournalTornTail pins crash tolerance: a partial final line — the
// signature of dying mid-write — is truncated away on reopen, and the
// journal then appends cleanly on the restored line boundary.
func TestJournalTornTail(t *testing.T) {
	dir := t.TempDir()
	j := openJournal(t, dir)
	if err := j.Append(Entry{Type: EntrySweepDone, SweepID: "sw1", State: "done"}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	path := filepath.Join(dir, FileName)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"schema":"ntvsim.cluster/v1","type":"shard","swee`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2 := openJournal(t, dir)
	if j2.Len() != 1 {
		t.Fatalf("torn-tail journal replayed %d entries, want 1", j2.Len())
	}
	if err := j2.Append(Entry{Type: EntrySweepDone, SweepID: "sw2", State: "done"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	j3 := openJournal(t, dir)
	if j3.Len() != 2 || j3.Entries()[1].SweepID != "sw2" {
		t.Fatalf("post-truncation append did not survive reopen: %+v", j3.Entries())
	}
}

// TestJournalGarbageTailTolerated covers the other torn-write shape: a
// complete-looking line of garbage at the very end is dropped, not
// fatal.
func TestJournalGarbageTailTolerated(t *testing.T) {
	dir := t.TempDir()
	j := openJournal(t, dir)
	if err := j.Append(Entry{Type: EntrySweepDone, SweepID: "sw1", State: "done"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	path := filepath.Join(dir, FileName)
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.WriteString("\x00\x01garbage\n")
	f.Close()

	j2 := openJournal(t, dir)
	if j2.Len() != 1 {
		t.Fatalf("garbage-tail journal replayed %d entries, want 1", j2.Len())
	}
}

// TestJournalInteriorCorruptionFatal pins the other half of the
// discipline: corruption that is NOT the tail means records after it
// would be silently lost, so replay must refuse.
func TestJournalInteriorCorruptionFatal(t *testing.T) {
	dir := t.TempDir()
	j := openJournal(t, dir)
	j.Append(Entry{Type: EntrySweepDone, SweepID: "sw1", State: "done"})
	j.Append(Entry{Type: EntrySweepDone, SweepID: "sw2", State: "done"})
	j.Close()

	path := filepath.Join(dir, FileName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(data), "\n")
	mangled := lines[0][:len(lines[0])-10] + "%%%%%%%%%\n" + lines[1]
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := OpenJournal(dir); err == nil || !strings.Contains(err.Error(), "corrupt entry") {
		t.Fatalf("interior corruption not fatal: err=%v", err)
	}
}

// TestJournalAppendAfterClose pins the closed-journal contract.
func TestJournalAppendAfterClose(t *testing.T) {
	j := openJournal(t, t.TempDir())
	j.Close()
	if err := j.Append(Entry{Type: EntrySweepDone, SweepID: "sw1"}); err == nil {
		t.Fatal("append after close succeeded")
	}
}
