package cluster

import (
	"sync/atomic"
	"time"

	"github.com/ntvsim/ntvsim/internal/telemetry"
)

// Cluster metrics, exposed on GET /metrics (docs/OBSERVABILITY.md).
var (
	mLeases = telemetry.Default.Counter("ntvsim_cluster_leases_total",
		"Shard leases granted to workers, re-grants after expiry included.")
	mExpiries = telemetry.Default.Counter("ntvsim_cluster_lease_expiries_total",
		"Leases reclaimed after their TTL elapsed without heartbeat or completion.")
	mSteals = telemetry.Default.Counter("ntvsim_cluster_steals_total",
		"Shards re-leased after a prior lease expired — work stolen from a dead or stalled worker.")
	mCompleted = telemetry.Default.Counter("ntvsim_cluster_shards_completed_total",
		"Shard results accepted from workers and journaled.")
	mShardsFailed = telemetry.Default.Counter("ntvsim_cluster_shards_failed_total",
		"Permanent shard failures reported by workers.")
	mWorkerEvals = telemetry.Default.Counter("ntvsim_cluster_worker_evals_total",
		"Shards this process's worker loop evaluated and uploaded.")
)

// activeCoordinator points at the most recently constructed
// Coordinator. Prometheus names are a single process-global namespace,
// so the per-coordinator gauges below read live state through this
// pointer — rebuilding the coordinator (tests do) transparently
// repoints them, the same pattern cmd/ntvsimd uses for its server
// gauges.
var activeCoordinator atomic.Pointer[Coordinator]

func init() {
	gauge := func(name, help string, fn func(c *Coordinator) float64) {
		telemetry.Default.GaugeFunc(name, help, func() float64 {
			if c := activeCoordinator.Load(); c != nil {
				return fn(c)
			}
			return 0
		})
	}
	gauge("ntvsim_cluster_workers", "Workers seen by the active coordinator within the last five lease TTLs.",
		func(c *Coordinator) float64 { return float64(c.workerCount(time.Now())) })
	gauge("ntvsim_cluster_queue_depth", "Shards awaiting a lease on the active coordinator.",
		func(c *Coordinator) float64 { q, _ := c.depth(); return float64(q) })
	gauge("ntvsim_cluster_leases_active", "Shards under a live lease on the active coordinator.",
		func(c *Coordinator) float64 { _, l := c.depth(); return float64(l) })
}
