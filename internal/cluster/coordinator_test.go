package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/ntvsim/ntvsim/internal/experiments"
	"github.com/ntvsim/ntvsim/internal/jobs"
	"github.com/ntvsim/ntvsim/internal/resultcache"
	"github.com/ntvsim/ntvsim/internal/sweep"
)

// tinySpec is the same 2 nodes × 3 voltages × 1 samples = 6-shard sweep
// the engine's own suite uses, small enough for fast cluster tests.
func tinySpec() sweep.Spec {
	return sweep.Spec{
		Metric:  "chain3sigma",
		Nodes:   []string{"90nm GP", "22nm PTM HP"},
		Vdd:     &sweep.VddAxis{From: 0.50, To: 0.60, Step: 0.05},
		Samples: []int{200},
		Seed:    4242,
	}
}

// newEngine builds a sweep engine with its own jobs pool and a fresh
// (empty) result cache — fresh so restart tests prove results come from
// the journal, not from a shared cache.
func newEngine(t *testing.T) *sweep.Engine {
	t.Helper()
	m := jobs.NewManager(2, 32)
	t.Cleanup(m.Close)
	return sweep.NewEngine(m, resultcache.New[experiments.Result](64), nil)
}

func newCoordinator(t *testing.T, dir string, ttl time.Duration) *Coordinator {
	t.Helper()
	c, err := New(Config{DataDir: dir, LeaseTTL: ttl, Reap: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// leaseN polls Lease until the worker holds n grants — the engine's
// dispatcher offers shards asynchronously, so the queue fills shortly
// after Submit rather than during it.
func leaseN(t *testing.T, c *Coordinator, worker string, n int) []Grant {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var grants []Grant
	for len(grants) < n {
		grants = append(grants, c.Lease(worker, n-len(grants))...)
		if time.Now().After(deadline) {
			t.Fatalf("worker %s holds %d leases after 10s, want %d", worker, len(grants), n)
		}
		if len(grants) < n {
			time.Sleep(time.Millisecond)
		}
	}
	return grants
}

func waitDone(t *testing.T, sw *sweep.Sweep, timeout time.Duration) sweep.Snapshot {
	t.Helper()
	select {
	case <-sw.Done():
	case <-time.After(timeout):
		t.Fatalf("sweep %s not terminal after %v: %+v", sw.ID, timeout, sw.Snapshot())
	}
	return sw.Snapshot()
}

// renderAll serializes a merged result every way the service emits it,
// so byte-identity checks cover the full artifact surface.
func renderAll(t *testing.T, r *sweep.Result) string {
	t.Helper()
	js, err := json.Marshal(r.JSON())
	if err != nil {
		t.Fatal(err)
	}
	var csv strings.Builder
	for _, row := range r.CSV() {
		csv.WriteString(strings.Join(row, ","))
		csv.WriteByte('\n')
	}
	return r.Render() + "\n" + csv.String() + "\n" + string(js)
}

// faultSeed is the chaos-matrix seed (CI varies NTVSIM_FAULT_SEED).
func faultSeed(t *testing.T) uint64 {
	t.Helper()
	s := os.Getenv("NTVSIM_FAULT_SEED")
	if s == "" {
		return 1
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		t.Fatalf("NTVSIM_FAULT_SEED=%q: %v", s, err)
	}
	return n
}

// serve exposes a coordinator's handlers the way cmd/ntvsimd mounts
// them, on an ephemeral listener.
func serve(t *testing.T, c *Coordinator) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cluster/lease", c.HandleLease)
	mux.HandleFunc("POST /v1/cluster/heartbeat", c.HandleHeartbeat)
	mux.HandleFunc("POST /v1/cluster/complete", c.HandleComplete)
	mux.HandleFunc("GET /v1/cluster", c.HandleStatus)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

// TestLeaseExpiryStealCycle drives the full lease lifecycle through the
// coordinator API: grant, heartbeat-renew, expire via the reaper,
// re-grant to a second worker (a steal), reject the first worker's
// stale lease — and still merge byte-identical to the serial run.
func TestLeaseExpiryStealCycle(t *testing.T) {
	serial, err := sweep.RunSerial(context.Background(), tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(t, serial)

	// An hour-long TTL: nothing expires except when the test reaps.
	c := newCoordinator(t, t.TempDir(), time.Hour)
	eng := newEngine(t)
	eng.SetRemote(c)
	sw, err := c.Submit(context.Background(), eng, tinySpec())
	if err != nil {
		t.Fatal(err)
	}

	grants := leaseN(t, c, "w1", 6)
	ids := make([]string, len(grants))
	for i, g := range grants {
		ids[i] = g.LeaseID
		if g.TTLMillis != time.Hour.Milliseconds() {
			t.Fatalf("grant ttl %dms, want %dms", g.TTLMillis, time.Hour.Milliseconds())
		}
		if g.Point.Seed == 0 {
			t.Fatalf("grant %d ships no derived seed: %+v", i, g.Point)
		}
	}
	if st := c.Status(); st.Queued != 0 || st.Leased != 6 {
		t.Fatalf("after full lease: queued=%d leased=%d, want 0/6", st.Queued, st.Leased)
	}

	// Heartbeats renew live leases.
	renewed, lost := c.Heartbeat("w1", ids)
	if len(renewed) != 6 || len(lost) != 0 {
		t.Fatalf("heartbeat renewed %d lost %d, want 6/0", len(renewed), len(lost))
	}
	// A reap inside the TTL reclaims nothing.
	c.reap(time.Now())
	if st := c.Status(); st.Leased != 6 {
		t.Fatalf("in-TTL reap reclaimed leases: %+v", st)
	}

	// w1 goes silent; the TTL elapses; everything is reclaimed.
	c.reap(time.Now().Add(2 * time.Hour))
	if st := c.Status(); st.Queued != 6 || st.Leased != 0 {
		t.Fatalf("after expiry: queued=%d leased=%d, want 6/0", st.Queued, st.Leased)
	}

	// w2 steals the whole sweep; w1's leases are dead.
	grants2 := leaseN(t, c, "w2", 6)
	if _, lost := c.Heartbeat("w1", ids); len(lost) != 6 {
		t.Fatalf("stale heartbeat lost %d leases, want 6", len(lost))
	}
	if err := c.Complete("w1", ids[0], &sweep.ShardResult{}, "", 0); !errors.Is(err, ErrLeaseNotFound) {
		t.Fatalf("stale complete: err=%v, want ErrLeaseNotFound", err)
	}

	// w2 evaluates and uploads everything; the sweep lands byte-identical.
	for _, g := range grants2 {
		sr, retries, err := sweep.EvalShard(context.Background(), g.Spec, g.Point)
		if err != nil {
			t.Fatalf("shard %d: %v", g.Index, err)
		}
		if err := c.Complete("w2", g.LeaseID, sr, "", retries); err != nil {
			t.Fatalf("complete shard %d: %v", g.Index, err)
		}
	}
	snap := waitDone(t, sw, 30*time.Second)
	if snap.State != sweep.Done {
		t.Fatalf("sweep ended %s (%s), want done", snap.State, snap.Error)
	}
	for _, sh := range snap.Shards {
		if sh.Worker != "w2" {
			t.Fatalf("shard %d attributed to %q, want w2 (the stealing worker)", sh.Index, sh.Worker)
		}
	}
	got, ok := sw.Result()
	if !ok {
		t.Fatal("done sweep has no result")
	}
	if renderAll(t, got) != want {
		t.Fatal("stolen-and-completed sweep is not byte-identical to the serial run")
	}
}

// TestCompleteFailureCountsAgainstBudget: a worker-reported permanent
// error fails the shard and, with a zero budget, the sweep.
func TestCompleteFailureCountsAgainstBudget(t *testing.T) {
	c := newCoordinator(t, t.TempDir(), time.Hour)
	eng := newEngine(t)
	eng.SetRemote(c)
	sw, err := c.Submit(context.Background(), eng, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	g := leaseN(t, c, "w1", 1)[0]
	if err := c.Complete("w1", g.LeaseID, nil, "node model diverged", 3); err != nil {
		t.Fatal(err)
	}
	snap := waitDone(t, sw, 30*time.Second)
	if snap.State != sweep.Failed {
		t.Fatalf("sweep ended %s, want failed", snap.State)
	}
	if !strings.Contains(snap.Error, "node model diverged") {
		t.Fatalf("snapshot error %q does not carry the worker's failure", snap.Error)
	}
	if snap.Retried < 3 {
		t.Fatalf("worker-side retries not folded in: %d, want >= 3", snap.Retried)
	}
	// The permanent failure is not journaled: a replayed sweep re-runs it.
	for _, e := range c.journal.Entries() {
		if e.Type == EntryShard {
			t.Fatalf("failed shard was journaled: %+v", e)
		}
	}
}

// TestCancelledSweepDrainsQueue: cancelling a sweep finalizes its
// queued and leased shards instead of leaving workers computing for a
// dead sweep.
func TestCancelledSweepDrainsQueue(t *testing.T) {
	c := newCoordinator(t, t.TempDir(), time.Hour)
	eng := newEngine(t)
	eng.SetRemote(c)
	sw, err := c.Submit(context.Background(), eng, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	g := leaseN(t, c, "w1", 1)[0]
	if !sw.Cancel() {
		t.Fatal("cancel refused")
	}
	snap := waitDone(t, sw, 30*time.Second)
	if snap.State != sweep.Cancelled {
		t.Fatalf("sweep ended %s, want cancelled", snap.State)
	}
	// The leased shard's sweep is gone; its completion is rejected once
	// the lease expires, and the queue never hands the dead shards out.
	c.reap(time.Now().Add(2 * time.Hour))
	if got := c.Lease("w2", 6); len(got) != 0 {
		t.Fatalf("dead sweep leased %d shards to w2", len(got))
	}
	if err := c.Complete("w1", g.LeaseID, &sweep.ShardResult{}, "", 0); !errors.Is(err, ErrLeaseNotFound) {
		t.Fatalf("post-cancel complete: err=%v, want ErrLeaseNotFound", err)
	}
}

// TestHandlerGoldenEnvelopes pins the exact bytes of the typed
// /v1/cluster/* error envelopes — they are part of the stable v1
// surface (docs/API.md) and must never drift.
func TestHandlerGoldenEnvelopes(t *testing.T) {
	c := newCoordinator(t, t.TempDir(), time.Hour)
	post := func(path, body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
		switch path {
		case "/v1/cluster/lease":
			c.HandleLease(rec, req)
		case "/v1/cluster/heartbeat":
			c.HandleHeartbeat(rec, req)
		case "/v1/cluster/complete":
			c.HandleComplete(rec, req)
		}
		return rec
	}

	cases := []struct {
		name, path, body string
		status           int
		golden           string
	}{
		{
			name: "protocol_unsupported", path: "/v1/cluster/lease",
			body:   `{"worker_id":"w1","protocol_version":99}`,
			status: http.StatusBadRequest,
			golden: "{\n  \"error\": {\n    \"code\": \"protocol_unsupported\",\n    \"message\": \"worker speaks protocol version 99; this coordinator speaks 1\"\n  }\n}\n",
		},
		{
			name: "missing_worker_id", path: "/v1/cluster/lease",
			body:   `{"protocol_version":1}`,
			status: http.StatusBadRequest,
			golden: "{\n  \"error\": {\n    \"code\": \"invalid_body\",\n    \"message\": \"missing \\\"worker_id\\\" field\"\n  }\n}\n",
		},
		{
			name: "lease_not_found", path: "/v1/cluster/complete",
			body:   `{"worker_id":"w1","lease_id":"ls00000000-1","error":"x"}`,
			status: http.StatusConflict,
			golden: "{\n  \"error\": {\n    \"code\": \"lease_not_found\",\n    \"message\": \"lease expired or was never granted; the shard has been re-queued for another worker\"\n  }\n}\n",
		},
		{
			name: "empty_completion", path: "/v1/cluster/complete",
			body:   `{"worker_id":"w1","lease_id":"ls00000000-1"}`,
			status: http.StatusBadRequest,
			golden: "{\n  \"error\": {\n    \"code\": \"invalid_body\",\n    \"message\": \"completion carries neither \\\"result\\\" nor \\\"error\\\"\"\n  }\n}\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := post(tc.path, tc.body)
			if rec.Code != tc.status {
				t.Fatalf("status %d, want %d", rec.Code, tc.status)
			}
			if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("content-type %q", ct)
			}
			if got := rec.Body.String(); got != tc.golden {
				t.Fatalf("envelope drifted:\n got: %q\nwant: %q", got, tc.golden)
			}
		})
	}

	// Malformed JSON yields invalid_body (message embeds the decoder
	// error, so only the code is pinned).
	rec := post("/v1/cluster/lease", "{")
	if rec.Code != http.StatusBadRequest || !strings.Contains(rec.Body.String(), `"invalid_body"`) {
		t.Fatalf("malformed body: status %d body %s", rec.Code, rec.Body.String())
	}
}

// TestStatusEndpoint sanity-checks GET /v1/cluster.
func TestStatusEndpoint(t *testing.T) {
	c := newCoordinator(t, t.TempDir(), time.Hour)
	srv := serve(t, c)
	resp, err := http.Get(srv.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ProtocolVersion != ProtocolVersion {
		t.Fatalf("status protocol %d, want %d", st.ProtocolVersion, ProtocolVersion)
	}
	if st.LeaseTTLMillis != time.Hour.Milliseconds() {
		t.Fatalf("status ttl %dms", st.LeaseTTLMillis)
	}
}

// TestLeaseEmptyQueueShape: an idle coordinator returns an empty (not
// null) lease list.
func TestLeaseEmptyQueueShape(t *testing.T) {
	c := newCoordinator(t, t.TempDir(), time.Hour)
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/v1/cluster/lease",
		strings.NewReader(`{"worker_id":"w1","protocol_version":1,"max_shards":4}`))
	c.HandleLease(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if got := rec.Body.String(); got != "{\n  \"leases\": []\n}\n" {
		t.Fatalf("empty lease body %q", got)
	}
}
