// Package cluster is the coordinator/worker fabric of distributed
// sweep execution (docs/CLUSTER.md). A coordinator owns sweep specs and
// their grids, persists an append-only shard journal under the data
// directory (write-ahead: a result is fsynced before it is
// acknowledged, and the journal is replayed on boot so a restart loses
// nothing), and serves the typed worker protocol under /v1/cluster/*:
// lease (batch shard claims), heartbeat (lease renewal) and complete
// (result upload). Leases that miss their heartbeats expire and are
// re-queued — work-stealing — so a killed worker costs latency, never
// results. Workers are thin pullers: lease → sweep.EvalShard → upload.
//
// The determinism contract carries over unchanged from the in-process
// engine: every shard's seed is derived by the coordinator and shipped
// inside the lease, workers evaluate exactly what they are given, and
// results merge by grid index — so a sweep fanned out over N workers,
// with kills and lease expiries along the way, merges byte-identical
// to sweep.RunSerial.
package cluster

import (
	"encoding/json"
	"net/http"

	"github.com/ntvsim/ntvsim/internal/sweep"
)

// ProtocolVersion is the worker protocol revision. A worker states its
// version in every lease request; a coordinator speaking a different
// revision rejects it with protocol_unsupported, so mixed-version
// fleets fail loudly at lease time instead of corrupting results.
const ProtocolVersion = 1

// Error codes returned under /v1/cluster/*. They are part of the
// stable snake_case v1 catalogue (docs/API.md); cmd/ntvsimd reuses
// them verbatim so in-package handler tests and the public surface pin
// the same bytes.
const (
	// CodeInvalidBody is the shared v1 code for a malformed request
	// body or a missing required field.
	CodeInvalidBody = "invalid_body"
	// CodeClusterDisabled marks a /v1/cluster/* call on a daemon not
	// running as a coordinator.
	CodeClusterDisabled = "cluster_disabled"
	// CodeProtocolUnsupported rejects a worker speaking a different
	// ProtocolVersion.
	CodeProtocolUnsupported = "protocol_unsupported"
	// CodeLeaseNotFound rejects a heartbeat or completion for a lease
	// the coordinator no longer holds — expired and re-queued, or never
	// granted. The worker drops the shard; another worker owns it now.
	CodeLeaseNotFound = "lease_not_found"
)

// LeaseRequest is the POST /v1/cluster/lease body: a worker asking for
// up to MaxShards shard claims.
type LeaseRequest struct {
	WorkerID        string `json:"worker_id"`
	ProtocolVersion int    `json:"protocol_version"`
	MaxShards       int    `json:"max_shards,omitempty"` // 0 means 1
}

// Grant is one leased shard: everything a worker needs to evaluate it
// — the normalized spec and the grid point with its derived seed — plus
// the lease identity and TTL governing heartbeats.
type Grant struct {
	LeaseID   string      `json:"lease_id"`
	SweepID   string      `json:"sweep_id"`
	Index     int         `json:"index"`
	Spec      sweep.Spec  `json:"spec"`
	Point     sweep.Point `json:"point"`
	TTLMillis int64       `json:"ttl_ms"`
}

// LeaseResponse is the POST /v1/cluster/lease response. Leases is
// empty (never null) when no work is queued; the worker polls again
// with backoff.
type LeaseResponse struct {
	Leases []Grant `json:"leases"`
}

// HeartbeatRequest renews the named leases for another TTL.
type HeartbeatRequest struct {
	WorkerID string   `json:"worker_id"`
	LeaseIDs []string `json:"lease_ids"`
}

// HeartbeatResponse reports which leases were renewed and which are
// lost (expired and possibly re-leased elsewhere — the worker should
// abandon those shards).
type HeartbeatResponse struct {
	Renewed []string `json:"renewed"`
	Lost    []string `json:"lost,omitempty"`
}

// CompleteRequest is the POST /v1/cluster/complete body: one shard's
// outcome. Result carries a successful evaluation; Error reports a
// permanent failure (it counts against the sweep's failure budget).
// Retries is how many transient in-place retries the worker absorbed,
// folded into the sweep's retry provenance.
type CompleteRequest struct {
	WorkerID string             `json:"worker_id"`
	LeaseID  string             `json:"lease_id"`
	Result   *sweep.ShardResult `json:"result,omitempty"`
	Error    string             `json:"error,omitempty"`
	Retries  int                `json:"retries,omitempty"`
}

// CompleteResponse acknowledges a durably journaled completion.
type CompleteResponse struct {
	OK bool `json:"ok"`
}

// Status is the GET /v1/cluster coordinator snapshot.
type Status struct {
	ProtocolVersion int   `json:"protocol_version"`
	Queued          int   `json:"queued"`  // shards awaiting a lease
	Leased          int   `json:"leased"`  // shards under a live lease
	Workers         int   `json:"workers"` // workers seen recently
	LeaseTTLMillis  int64 `json:"lease_ttl_ms"`
	JournalEntries  int   `json:"journal_entries"`
}

// errorPayload mirrors cmd/ntvsimd's typed error envelope
// ({"error":{code,message}}) byte-for-byte so cluster endpoints speak
// the same contract whether tested in-package or through the daemon.
type errorPayload struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorEnvelope struct {
	Error errorPayload `json:"error"`
}

// writeJSON writes v with the daemon's response encoding (two-space
// indented JSON).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// WriteError writes the typed v1 error envelope; exported so
// cmd/ntvsimd serves byte-identical envelopes for cluster codes it
// raises itself (cluster_disabled).
func WriteError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, errorEnvelope{Error: errorPayload{Code: code, Message: message}})
}
