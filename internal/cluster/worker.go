package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"os"
	"time"

	"github.com/ntvsim/ntvsim/internal/faults"
	"github.com/ntvsim/ntvsim/internal/jobs"
	"github.com/ntvsim/ntvsim/internal/sweep"
)

// Worker is the thin pull loop of cluster mode: lease a batch of
// shards, evaluate each through sweep.EvalShard (the exact in-process
// evaluation path — panic containment, seeded transient retries, the
// shipped derived seed), heartbeat while evaluating, upload the
// outcome. It holds no sweep state of its own; a worker killed
// mid-shard costs one lease TTL of latency, never a result.
type Worker struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:8080".
	Coordinator string
	// ID is the worker's stable identity for leases and attribution;
	// empty means "<hostname>-<pid>".
	ID string
	// MaxShards bounds how many shards one lease call claims; 0 means 2.
	MaxShards int
	// Poll paces idle polls and transport retries; the zero value uses a
	// 100ms–2s policy seeded from the worker id.
	Poll jobs.Backoff
	// Client is the HTTP client; nil uses a 60s-timeout client.
	Client *http.Client
	// Log is the structured logger; nil discards.
	Log *slog.Logger
}

// completeAttempts bounds upload retries for one shard result before
// the worker abandons it to lease expiry.
const completeAttempts = 8

// Run pulls and evaluates shards until ctx ends, returning ctx's
// error. Transport failures never kill the loop — the worker backs off
// and retries, so it rides out a coordinator restart.
func (w *Worker) Run(ctx context.Context) error {
	id := w.ID
	if id == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	client := w.Client
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	poll := w.Poll
	if poll.Base <= 0 {
		poll = jobs.Backoff{Base: 100 * time.Millisecond, Max: 2 * time.Second, Seed: idSeq(id)}
	}
	log := w.Log
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	rt := &runtimeWorker{
		base: w.Coordinator, id: id, max: w.MaxShards,
		poll: poll, seq: idSeq(id), client: client, log: log,
	}
	if rt.max <= 0 {
		rt.max = 2
	}
	log.Info("worker starting", "coordinator", rt.base, "worker_id", id, "max_shards", rt.max)

	idle := 0
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		grants, err := rt.lease(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			idle++
			log.Warn("lease failed; backing off", "error", err.Error())
			if serr := rt.poll.Sleep(ctx, rt.seq, idle); serr != nil {
				return serr
			}
			continue
		}
		if len(grants) == 0 {
			idle++
			if serr := rt.poll.Sleep(ctx, rt.seq, idle); serr != nil {
				return serr
			}
			continue
		}
		idle = 0
		for _, g := range grants {
			rt.runShard(ctx, g)
		}
	}
}

// runtimeWorker is a Worker's per-Run state with defaults resolved.
type runtimeWorker struct {
	base   string
	id     string
	max    int
	poll   jobs.Backoff
	seq    uint64
	client *http.Client
	log    *slog.Logger
}

// idSeq hashes the worker id into the backoff jitter stream, so a
// fleet of workers never thunders in lockstep.
func idSeq(id string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	return h.Sum64()
}

// lease claims up to max shards. The fault site lets the chaos suite
// inject transport failures deterministically.
func (rt *runtimeWorker) lease(ctx context.Context) ([]Grant, error) {
	if err := faults.Fire(ctx, faults.SiteClusterLease); err != nil {
		return nil, err
	}
	var resp LeaseResponse
	status, code, err := rt.post(ctx, "/v1/cluster/lease", LeaseRequest{
		WorkerID: rt.id, ProtocolVersion: ProtocolVersion, MaxShards: rt.max,
	}, &resp)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("cluster: lease rejected: %s (HTTP %d)", code, status)
	}
	return resp.Leases, nil
}

// runShard evaluates one granted shard with a background heartbeat at
// a third of the lease TTL. A heartbeat that reports the lease lost
// cancels the evaluation — the shard was stolen and is another
// worker's now. A worker shutdown (ctx ends) abandons the shard
// without uploading; lease expiry re-queues it.
func (rt *runtimeWorker) runShard(ctx context.Context, g Grant) {
	evalCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	ttl := time.Duration(g.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		tick := time.NewTicker(ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-evalCtx.Done():
				return
			case <-tick.C:
				if rt.heartbeatLost(evalCtx, g.LeaseID) {
					cancel()
					return
				}
			}
		}
	}()
	sr, retries, err := sweep.EvalShard(evalCtx, g.Spec, g.Point)
	cancel()
	<-hbDone
	if ctx.Err() != nil {
		return // shutting down: the lease expires and the shard is re-queued
	}
	if errors.Is(err, context.Canceled) {
		rt.log.Info("shard abandoned: lease lost", "sweep", g.SweepID, "shard", g.Index)
		return
	}
	mWorkerEvals.Inc()
	req := CompleteRequest{WorkerID: rt.id, LeaseID: g.LeaseID, Retries: retries}
	if err != nil {
		req.Error = err.Error()
		rt.log.Warn("shard failed permanently", "sweep", g.SweepID, "shard", g.Index, "error", err.Error())
	} else {
		req.Result = sr
	}
	rt.complete(ctx, g, req)
}

// heartbeatLost renews one lease; true means the lease is gone.
func (rt *runtimeWorker) heartbeatLost(ctx context.Context, leaseID string) bool {
	var resp HeartbeatResponse
	status, _, err := rt.post(ctx, "/v1/cluster/heartbeat", HeartbeatRequest{
		WorkerID: rt.id, LeaseIDs: []string{leaseID},
	}, &resp)
	if err != nil || status != http.StatusOK {
		// A transport blip is not a lost lease; keep computing and let
		// the next tick (or the completion itself) settle it.
		return false
	}
	for _, id := range resp.Lost {
		if id == leaseID {
			return true
		}
	}
	return false
}

// complete uploads one shard outcome, retrying transport failures with
// backoff. A lease_not_found rejection drops the result: the lease
// expired and the shard was stolen, so this copy is redundant — and,
// by the seed-lattice determinism contract, byte-identical to the one
// that wins.
func (rt *runtimeWorker) complete(ctx context.Context, g Grant, req CompleteRequest) {
	for attempt := 1; ; attempt++ {
		ferr := faults.Fire(ctx, faults.SiteClusterComplete)
		if ferr == nil {
			status, code, err := rt.post(ctx, "/v1/cluster/complete", req, &CompleteResponse{})
			switch {
			case err == nil && status == http.StatusOK:
				return
			case code == CodeLeaseNotFound:
				rt.log.Info("completion dropped: lease lost", "sweep", g.SweepID, "shard", g.Index)
				return
			}
		}
		if ctx.Err() != nil || attempt >= completeAttempts {
			rt.log.Warn("completion abandoned after retries", "sweep", g.SweepID, "shard", g.Index)
			return
		}
		if rt.poll.Sleep(ctx, rt.seq+uint64(g.Index), attempt) != nil {
			return
		}
	}
}

// post sends one JSON request and decodes the response into out on
// 2xx, or the typed error envelope's code otherwise.
func (rt *runtimeWorker) post(ctx context.Context, path string, in, out any) (status int, errCode string, err error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rt.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return resp.StatusCode, "", err
	}
	if resp.StatusCode/100 != 2 {
		var env errorEnvelope
		_ = json.Unmarshal(data, &env)
		return resp.StatusCode, env.Error.Code, nil
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, "", err
		}
	}
	return resp.StatusCode, "", nil
}
