package cluster

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"github.com/ntvsim/ntvsim/internal/sweep"
)

// Config configures a Coordinator.
type Config struct {
	// DataDir is the directory the shard journal lives under; required.
	DataDir string
	// LeaseTTL is how long a granted lease lives without a heartbeat or
	// completion; zero means 30s. Tests use tens of milliseconds.
	LeaseTTL time.Duration
	// Reap is the reclamation scan interval; zero means LeaseTTL/4.
	Reap time.Duration
	// Log is the structured logger; nil discards.
	Log *slog.Logger
}

// DefaultLeaseTTL is the lease lifetime without an explicit Config.
const DefaultLeaseTTL = 30 * time.Second

// ErrLeaseNotFound is returned by Complete and reported by Heartbeat
// for a lease the coordinator no longer holds.
var ErrLeaseNotFound = errors.New("cluster: lease not found")

// errClosed is returned to shards offered after Close.
var errClosed = errors.New("cluster: coordinator closed")

// task is one shard awaiting or under lease.
type task struct {
	shard    *sweep.RemoteShard
	expiries int // leases on this shard that expired; >0 marks a re-grant as a steal
}

// lease is one live shard claim.
type lease struct {
	id      string
	worker  string
	expires time.Time
	t       *task
}

// Coordinator owns the shard queue, the lease table and the journal.
// It implements sweep.RemoteQueue: install it on the engine with
// SetRemote, then Submit sweeps through it so their intent is journaled
// before execution. All methods are safe for concurrent use.
type Coordinator struct {
	journal *Journal
	ttl     time.Duration
	log     *slog.Logger
	// epoch prefixes every lease id and is fresh per boot, so a worker
	// holding leases from before a coordinator restart can never collide
	// with newly issued ids.
	epoch string

	mu      sync.Mutex
	queue   []*task // FIFO; shards awaiting a lease
	leases  map[string]*lease
	workers map[string]time.Time // worker id → last seen
	seq     uint64               // lease id counter within this epoch
	closed  bool

	stop    chan struct{}
	stopped sync.WaitGroup
}

// New opens (or replays) the shard journal under cfg.DataDir and
// starts the lease reaper. Call Replay next to resubmit journaled
// sweeps, and Close when done.
func New(cfg Config) (*Coordinator, error) {
	if cfg.DataDir == "" {
		return nil, errors.New("cluster: coordinator requires a data directory")
	}
	j, err := OpenJournal(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	reap := cfg.Reap
	if reap <= 0 {
		reap = ttl / 4
	}
	logger := cfg.Log
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	c := &Coordinator{
		journal: j,
		ttl:     ttl,
		log:     logger,
		epoch:   newEpoch(),
		leases:  make(map[string]*lease),
		workers: make(map[string]time.Time),
		stop:    make(chan struct{}),
	}
	c.stopped.Add(1)
	go c.reaper(reap)
	activeCoordinator.Store(c)
	return c, nil
}

// newEpoch returns a random per-boot lease-id prefix.
func newEpoch() string {
	var b [4]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("ls%x", time.Now().UnixNano()&0xffffffff)
	}
	return "ls" + hex.EncodeToString(b[:])
}

// LeaseTTL returns the configured lease lifetime.
func (c *Coordinator) LeaseTTL() time.Duration { return c.ttl }

// Offer implements sweep.RemoteQueue: the engine hands over one
// non-cached shard, which joins the FIFO lease queue.
func (c *Coordinator) Offer(t *sweep.RemoteShard) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		t.Finish(nil, errClosed)
		return
	}
	c.queue = append(c.queue, &task{shard: t})
	c.mu.Unlock()
}

// Lease grants up to max queued shards to the named worker, skipping —
// and finalizing — shards whose sweeps were cancelled while queued.
// Granted shards are marked running and attributed to the worker.
func (c *Coordinator) Lease(worker string, max int) []Grant {
	if max <= 0 {
		max = 1
	}
	now := time.Now()
	var grants []Grant
	var started, dropped []*sweep.RemoteShard
	steals := 0
	c.mu.Lock()
	c.workers[worker] = now
	for len(grants) < max && len(c.queue) > 0 {
		t := c.queue[0]
		c.queue = c.queue[1:]
		if t.shard.Ctx.Err() != nil {
			dropped = append(dropped, t.shard)
			continue
		}
		c.seq++
		id := fmt.Sprintf("%s-%d", c.epoch, c.seq)
		c.leases[id] = &lease{id: id, worker: worker, expires: now.Add(c.ttl), t: t}
		if t.expiries > 0 {
			steals++
		}
		grants = append(grants, Grant{
			LeaseID: id, SweepID: t.shard.SweepID, Index: t.shard.Index,
			Spec: t.shard.Spec, Point: t.shard.Point,
			TTLMillis: c.ttl.Milliseconds(),
		})
		started = append(started, t.shard)
	}
	c.mu.Unlock()
	for _, sh := range dropped {
		sh.Finish(nil, context.Canceled)
	}
	for _, sh := range started {
		sh.Start(worker)
	}
	if len(grants) > 0 {
		mLeases.Add(float64(len(grants)))
		c.log.Debug("leases granted", "worker", worker, "shards", len(grants))
	}
	if steals > 0 {
		mSteals.Add(float64(steals))
	}
	return grants
}

// Heartbeat renews the named leases for the worker that holds them and
// reports which are lost — expired and possibly executing elsewhere.
func (c *Coordinator) Heartbeat(worker string, ids []string) (renewed, lost []string) {
	now := time.Now()
	c.mu.Lock()
	c.workers[worker] = now
	for _, id := range ids {
		l, ok := c.leases[id]
		if !ok || l.worker != worker {
			lost = append(lost, id)
			continue
		}
		l.expires = now.Add(c.ttl)
		renewed = append(renewed, id)
	}
	c.mu.Unlock()
	return renewed, lost
}

// Complete accepts one shard outcome under a live lease. A successful
// result is journaled — write, fsync — before the lease is released and
// the engine (and thus any client) observes the completion; a journal
// failure keeps the lease so the worker retries the upload. A reported
// permanent error finalizes the shard as failed without journaling (a
// replayed sweep simply re-runs it; deterministic failures repeat,
// transient ones heal).
func (c *Coordinator) Complete(worker, leaseID string, sr *sweep.ShardResult, errMsg string, retries int) error {
	c.mu.Lock()
	c.workers[worker] = time.Now()
	l, ok := c.leases[leaseID]
	if !ok {
		c.mu.Unlock()
		return ErrLeaseNotFound
	}
	sh := l.t.shard
	c.mu.Unlock()

	if errMsg == "" {
		if sr == nil {
			errMsg = "worker reported completion without a result"
		} else if err := c.journal.Append(Entry{
			Type: EntryShard, SweepID: sh.SweepID, Index: sh.Index,
			Worker: worker, Result: sr,
		}); err != nil {
			c.log.Warn("shard journal append failed", "sweep", sh.SweepID, "shard", sh.Index, "error", err.Error())
			return err
		}
	}

	c.mu.Lock()
	delete(c.leases, leaseID)
	c.mu.Unlock()
	if retries > 0 {
		sh.NoteRetries(retries)
	}
	if errMsg != "" {
		mShardsFailed.Inc()
		sh.Finish(nil, errors.New(errMsg))
		return nil
	}
	mCompleted.Inc()
	sh.Finish(sr, nil)
	return nil
}

// reaper periodically reclaims expired leases and drops cancelled
// shards until Close.
func (c *Coordinator) reaper(every time.Duration) {
	defer c.stopped.Done()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			c.reap(time.Now())
		}
	}
}

// reap reclaims leases expired as of now — their shards rejoin the
// queue for another worker to steal — and finalizes shards whose
// sweeps were cancelled. Split from the ticker loop so tests drive
// expiry deterministically.
func (c *Coordinator) reap(now time.Time) {
	expired := 0
	var dropped []*sweep.RemoteShard
	c.mu.Lock()
	for id, l := range c.leases {
		if !now.After(l.expires) {
			continue
		}
		delete(c.leases, id)
		l.t.expiries++
		expired++
		if l.t.shard.Ctx.Err() != nil {
			dropped = append(dropped, l.t.shard)
		} else {
			c.queue = append(c.queue, l.t)
		}
	}
	live := c.queue[:0]
	for _, t := range c.queue {
		if t.shard.Ctx.Err() != nil {
			dropped = append(dropped, t.shard)
		} else {
			live = append(live, t)
		}
	}
	c.queue = live
	for w, seen := range c.workers {
		if now.Sub(seen) > 5*c.ttl {
			delete(c.workers, w)
		}
	}
	c.mu.Unlock()
	if expired > 0 {
		mExpiries.Add(float64(expired))
		c.log.Info("leases expired and reclaimed", "count", expired)
	}
	for _, sh := range dropped {
		sh.Finish(nil, context.Canceled)
	}
}

// Submit normalizes spec, durably journals the sweep intent under a
// fresh id, and submits it to eng (whose RemoteQueue must be this
// coordinator). The terminal state is journaled when the sweep
// finishes.
func (c *Coordinator) Submit(ctx context.Context, eng *sweep.Engine, spec sweep.Spec) (*sweep.Sweep, error) {
	ns, err := spec.Normalized()
	if err != nil {
		return nil, err
	}
	id := sweep.NewID()
	if err := c.journal.Append(Entry{Type: EntrySweep, SweepID: id, Spec: &ns}); err != nil {
		return nil, err
	}
	sw, err := eng.SubmitWithID(ctx, ns, id)
	if err != nil {
		return nil, err
	}
	go c.watchDone(sw)
	return sw, nil
}

// watchDone journals a sweep's terminal state once it lands.
func (c *Coordinator) watchDone(sw *sweep.Sweep) {
	<-sw.Done()
	state := string(sw.Snapshot().State)
	if err := c.journal.Append(Entry{Type: EntrySweepDone, SweepID: sw.ID, State: state}); err != nil {
		c.log.Warn("sweep_done journal append failed", "sweep", sw.ID, "error", err.Error())
	}
}

// Replay resubmits journaled sweeps to eng: a sweep with no journaled
// terminal state resumes with its completed shards pre-restored (zero
// results lost, none re-evaluated — duplicate shard entries from
// completion races are deduplicated first-write-wins), and a sweep
// that finished Done is restored too so clients keep their ids and
// merged results across a restart. Failed and cancelled sweeps are not
// revived; the run ledger keeps their provenance. Returns how many
// interrupted sweeps resumed.
func (c *Coordinator) Replay(ctx context.Context, eng *sweep.Engine) (int, error) {
	type journaled struct {
		spec  sweep.Spec
		done  map[int]sweep.RestoredShard
		state string
	}
	var order []string
	byID := make(map[string]*journaled)
	for _, e := range c.journal.Entries() {
		switch e.Type {
		case EntrySweep:
			if e.Spec == nil || byID[e.SweepID] != nil {
				continue
			}
			byID[e.SweepID] = &journaled{spec: *e.Spec, done: make(map[int]sweep.RestoredShard)}
			order = append(order, e.SweepID)
		case EntryShard:
			r := byID[e.SweepID]
			if r == nil || e.Result == nil {
				continue
			}
			if _, dup := r.done[e.Index]; dup {
				continue
			}
			r.done[e.Index] = sweep.RestoredShard{Result: e.Result, Worker: e.Worker}
		case EntrySweepDone:
			if r := byID[e.SweepID]; r != nil {
				r.state = e.State
			}
		}
	}
	resumed := 0
	for _, id := range order {
		r := byID[id]
		if r.state != "" && r.state != string(sweep.Done) {
			continue
		}
		sw, err := eng.Restore(ctx, r.spec, id, r.done)
		if err != nil {
			return resumed, fmt.Errorf("cluster: replay sweep %s: %w", id, err)
		}
		if r.state == "" {
			// Interrupted mid-run: the remainder re-enters the queue and
			// the terminal state still needs journaling. Finished sweeps
			// skip the watcher so sweep_done is never duplicated.
			resumed++
			go c.watchDone(sw)
		}
		c.log.Info("sweep replayed from journal", "sweep", id,
			"restored_shards", len(r.done), "state", r.state)
	}
	return resumed, nil
}

// Status returns the coordinator's live queue/lease/worker counts.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Status{
		ProtocolVersion: ProtocolVersion,
		Queued:          len(c.queue),
		Leased:          len(c.leases),
		Workers:         len(c.workers),
		LeaseTTLMillis:  c.ttl.Milliseconds(),
		JournalEntries:  c.journal.Len(),
	}
}

// depth returns the queued and leased shard counts (metrics gauges).
func (c *Coordinator) depth() (queued, leased int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.queue), len(c.leases)
}

// workerCount counts workers seen within the last five lease TTLs.
func (c *Coordinator) workerCount(now time.Time) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, seen := range c.workers {
		if now.Sub(seen) <= 5*c.ttl {
			n++
		}
	}
	return n
}

// Close stops the reaper and closes the journal. In-flight sweeps stop
// making progress (workers' completions are rejected once the process
// exits); a restarted coordinator replays them from the journal.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.stop)
	c.stopped.Wait()
	return c.journal.Close()
}
