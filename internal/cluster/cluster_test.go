package cluster

// End-to-end cluster suite: real Workers over HTTP against a live
// coordinator, with seeded chaos (injected transport faults, a
// SIGKILL-shaped worker death, a black-holed lease batch) and a
// coordinator crash/restart leg. The CI chaos job re-runs this file
// under -race across the NTVSIM_FAULT_SEED matrix.

import (
	"context"
	"testing"
	"time"

	"github.com/ntvsim/ntvsim/internal/faults"
	"github.com/ntvsim/ntvsim/internal/jobs"
	"github.com/ntvsim/ntvsim/internal/sweep"
)

// fastPoll keeps test workers responsive without busy-waiting.
var fastPoll = jobs.Backoff{Base: 2 * time.Millisecond, Max: 25 * time.Millisecond, Seed: 0x717e57}

// TestClusterDeterminismChaosWorkers is the tentpole acceptance test:
// a sweep fanned out over N real workers — with injected lease and
// upload transport faults, transient evaluation faults, one worker
// killed mid-run, and a black-holed lease batch that must expire and be
// stolen — merges byte-identical to sweep.RunSerial.
func TestClusterDeterminismChaosWorkers(t *testing.T) {
	serial, err := sweep.RunSerial(context.Background(), tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(t, serial)

	spec := tinySpec()
	spec.MaxShardRetries = 100 // generous: bounded fault counts guarantee convergence

	c := newCoordinator(t, t.TempDir(), 400*time.Millisecond)
	eng := newEngine(t)
	eng.SetRemote(c)
	sw, err := c.Submit(context.Background(), eng, spec)
	if err != nil {
		t.Fatal(err)
	}

	// A black hole leases two shards and never reports back: only lease
	// expiry and work-stealing can finish the sweep.
	blackholed := leaseN(t, c, "blackhole", 2)
	if len(blackholed) != 2 {
		t.Fatalf("black hole holds %d leases, want 2", len(blackholed))
	}

	srv := serve(t, c)
	in := faults.New(faultSeed(t),
		faults.Rule{Site: faults.SiteClusterLease, Kind: faults.KindError, Prob: 0.3, Times: 10},
		faults.Rule{Site: faults.SiteClusterComplete, Kind: faults.KindError, Prob: 0.3, Times: 10},
		faults.Rule{Site: faults.SiteSweepShard, Kind: faults.KindError, Prob: 0.2, Times: 10},
	)
	wctx, stopWorkers := context.WithCancel(faults.With(context.Background(), in))
	defer stopWorkers()
	for _, id := range []string{"w1", "w2"} {
		w := &Worker{Coordinator: srv.URL, ID: id, MaxShards: 2, Poll: fastPoll}
		go w.Run(wctx)
	}
	// The victim worker dies abruptly mid-run — context death is the
	// in-process stand-in for SIGKILL: no goodbye, leases just rot.
	killCtx, kill := context.WithCancel(faults.With(context.Background(), in))
	defer kill()
	victim := &Worker{Coordinator: srv.URL, ID: "victim", MaxShards: 1, Poll: fastPoll}
	go victim.Run(killCtx)
	go func() {
		deadline := time.Now().Add(30 * time.Second)
		for sw.Snapshot().Completed == 0 && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		kill()
	}()

	snap := waitDone(t, sw, 120*time.Second)
	if snap.State != sweep.Done {
		t.Fatalf("chaos sweep ended %s (%s), want done", snap.State, snap.Error)
	}
	t.Logf("seed %d: %d faults fired, %d shard retries", faultSeed(t), in.Fired(), snap.Retried)
	for _, sh := range snap.Shards {
		if sh.Worker == "" {
			t.Fatalf("shard %d completed without worker attribution", sh.Index)
		}
		if sh.Worker == "blackhole" {
			t.Fatalf("shard %d still attributed to the black hole after completion", sh.Index)
		}
	}
	got, ok := sw.Result()
	if !ok {
		t.Fatal("done sweep has no result")
	}
	if renderAll(t, got) != want {
		t.Fatal("N-worker chaos run is not byte-identical to sweep.RunSerial")
	}
}

// TestCoordinatorRestartReplay is the durability acceptance test: a
// coordinator killed mid-sweep reboots from the shard journal with the
// already-uploaded results intact — zero lost, zero re-evaluated, zero
// duplicated — and the finished merge is byte-identical to the serial
// run. A third boot then proves finished sweeps replay as-finished.
func TestCoordinatorRestartReplay(t *testing.T) {
	serial, err := sweep.RunSerial(context.Background(), tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	want := renderAll(t, serial)
	dir := t.TempDir()

	// Boot 1: lease two shards, upload their results, then crash. Close
	// precedes the context cancel the way a real kill severs the journal
	// before in-memory state unwinds — the cancelled terminal state must
	// NOT reach the journal, or replay would skip the sweep.
	co1, err := New(Config{DataDir: dir, LeaseTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	eng1 := newEngine(t)
	eng1.SetRemote(co1)
	ctx1, crash := context.WithCancel(context.Background())
	sw1, err := co1.Submit(ctx1, eng1, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range leaseN(t, co1, "w0", 2) {
		sr, retries, err := sweep.EvalShard(context.Background(), g.Spec, g.Point)
		if err != nil {
			t.Fatalf("shard %d: %v", g.Index, err)
		}
		if err := co1.Complete("w0", g.LeaseID, sr, "", retries); err != nil {
			t.Fatalf("complete shard %d: %v", g.Index, err)
		}
	}
	if err := co1.Close(); err != nil {
		t.Fatal(err)
	}
	crash()
	waitDone(t, sw1, 30*time.Second) // the orphaned sweep unwinds as cancelled in-memory

	// Boot 2: replay resumes the interrupted sweep with both uploaded
	// shards pre-restored, and a real worker finishes the remainder.
	co2, err := New(Config{DataDir: dir, LeaseTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co2.Close() })
	eng2 := newEngine(t)
	eng2.SetRemote(co2)
	resumed, err := co2.Replay(context.Background(), eng2)
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("replay resumed %d sweeps, want 1", resumed)
	}
	sw2, ok := eng2.Get(sw1.ID)
	if !ok {
		t.Fatalf("replayed sweep %s missing from the engine", sw1.ID)
	}
	srv := serve(t, co2)
	wctx, stop := context.WithCancel(context.Background())
	defer stop()
	go (&Worker{Coordinator: srv.URL, ID: "w1", MaxShards: 3, Poll: fastPoll}).Run(wctx)

	snap := waitDone(t, sw2, 120*time.Second)
	if snap.State != sweep.Done {
		t.Fatalf("replayed sweep ended %s (%s), want done", snap.State, snap.Error)
	}
	restored := 0
	for _, sh := range snap.Shards {
		if sh.Restored {
			restored++
			if sh.Worker != "w0" {
				t.Errorf("restored shard %d attributed to %q, want the journaled worker w0", sh.Index, sh.Worker)
			}
		}
	}
	if restored != 2 {
		t.Fatalf("%d shards marked restored, want the 2 journaled ones", restored)
	}
	got, ok := sw2.Result()
	if !ok {
		t.Fatal("done sweep has no result")
	}
	if renderAll(t, got) != want {
		t.Fatal("journal-restored sweep is not byte-identical to sweep.RunSerial")
	}

	// Exactly-once in the journal: one sweep intent, each shard index
	// journaled once, one terminal sweep_done (written asynchronously).
	deadline := time.Now().Add(10 * time.Second)
	for co2.journal.Len() < 8 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	var sweeps, dones int
	perIndex := map[int]int{}
	for _, e := range co2.journal.Entries() {
		switch e.Type {
		case EntrySweep:
			sweeps++
		case EntryShard:
			perIndex[e.Index]++
			if e.Worker == "" {
				t.Errorf("shard %d journaled without worker attribution", e.Index)
			}
		case EntrySweepDone:
			dones++
			if e.State != string(sweep.Done) {
				t.Errorf("terminal state journaled as %q, want done", e.State)
			}
		}
	}
	if sweeps != 1 || dones != 1 || len(perIndex) != 6 {
		t.Fatalf("journal shape: %d sweep, %d done, %d distinct shards; want 1/1/6", sweeps, dones, len(perIndex))
	}
	for idx, n := range perIndex {
		if n != 1 {
			t.Fatalf("shard %d journaled %d times, want exactly once", idx, n)
		}
	}
	if err := co2.Close(); err != nil {
		t.Fatal(err)
	}

	// Boot 3: a finished sweep replays as-finished — same id, same
	// bytes, nothing re-queued, and it does not count as resumed.
	co3, err := New(Config{DataDir: dir, LeaseTTL: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co3.Close() })
	eng3 := newEngine(t)
	eng3.SetRemote(co3)
	resumed3, err := co3.Replay(context.Background(), eng3)
	if err != nil {
		t.Fatal(err)
	}
	if resumed3 != 0 {
		t.Fatalf("finished sweep counted as resumed (%d)", resumed3)
	}
	sw3, ok := eng3.Get(sw1.ID)
	if !ok {
		t.Fatal("finished sweep missing after third boot")
	}
	snap3 := waitDone(t, sw3, 30*time.Second)
	if snap3.State != sweep.Done || snap3.Completed != 6 {
		t.Fatalf("third-boot sweep: state=%s completed=%d, want done/6", snap3.State, snap3.Completed)
	}
	if st := co3.Status(); st.Queued != 0 || st.Leased != 0 {
		t.Fatalf("third boot re-queued work: %+v", st)
	}
	got3, _ := sw3.Result()
	if renderAll(t, got3) != want {
		t.Fatal("third-boot restored result is not byte-identical")
	}
}

// TestWorkerRidesOutCoordinatorAbsence: a worker pointed at a dead
// address keeps polling with backoff instead of crashing, and exits
// cleanly when told to.
func TestWorkerRidesOutCoordinatorAbsence(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	w := &Worker{Coordinator: "http://127.0.0.1:1", ID: "orphan", Poll: fastPoll}
	errc := make(chan error, 1)
	go func() { errc <- w.Run(ctx) }()
	time.Sleep(50 * time.Millisecond) // several failed polls
	cancel()
	select {
	case err := <-errc:
		if err != context.Canceled {
			t.Fatalf("worker exited %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit after cancel")
	}
}
