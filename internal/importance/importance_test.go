package importance

import (
	"context"
	"math"
	"runtime"
	"testing"

	"github.com/ntvsim/ntvsim/internal/stats"
)

// identity is the identity pushforward: fn(Φ(Z)) = Z, so sampled values
// are standard normal and every tail probability has a closed form to
// test against.
func identity(u float64) float64 { return stdNormal.Quantile(u) }

func TestNormalizedDefaults(t *testing.T) {
	p, err := Params{}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if p.Mix != DefaultMix {
		t.Errorf("zero Mix normalized to %v, want DefaultMix=%v", p.Mix, DefaultMix)
	}
	if p, _ := (Params{Mix: 1}).Normalized(); p.Mix != 1 {
		t.Errorf("Mix=1 rewritten to %v", p.Mix)
	}
	for _, bad := range []Params{
		{Mix: -0.1},
		{Mix: 1.5},
		{Mix: math.NaN()},
		{Shift: math.Inf(1)},
		{Shift: math.NaN()},
	} {
		if _, err := bad.Normalized(); err == nil {
			t.Errorf("Normalized(%+v) accepted, want error", bad)
		}
	}
}

// TestNullProposalUnitWeights pins the MC-equivalence corner: with a
// zero shift (or a pure nominal mixture) every likelihood weight is
// exactly 1, so IS degrades to plain MC with no numerical drift.
func TestNullProposalUnitWeights(t *testing.T) {
	for _, p := range []Params{{Shift: 0, Mix: 0.25}, {Shift: 3, Mix: 1}} {
		_, ws, err := SampleCtx(context.Background(), p, 7, 500, identity)
		if err != nil {
			t.Fatal(err)
		}
		for i, w := range ws {
			if w != 1 {
				t.Fatalf("params %+v: w[%d] = %v, want exactly 1", p, i, w)
			}
		}
		if ess := ESS(ws); ess != 500 {
			t.Errorf("params %+v: ESS = %v, want exactly 500", p, ess)
		}
	}
}

// TestWeightBound checks the defensive-mixture guarantee w ≤ 1/mix.
func TestWeightBound(t *testing.T) {
	p := Params{Shift: 4, Mix: 0.25}
	_, ws, err := SampleCtx(context.Background(), p, 11, 5000, identity)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range ws {
		if w <= 0 || w > 1/p.Mix {
			t.Fatalf("w[%d] = %v outside (0, %v]", i, w, 1/p.Mix)
		}
	}
}

// TestTailProbMatchesAnalytic estimates Pr[Z > 3] on the identity
// pushforward and checks the self-normalized estimate against the
// closed form within its own reported standard error.
func TestTailProbMatchesAnalytic(t *testing.T) {
	const n = 20000
	want := 1 - stdNormal.CDF(3)
	xs, ws, err := SampleCtx(context.Background(), Params{Shift: 3}, 13, n, identity)
	if err != nil {
		t.Fatal(err)
	}
	p, se := TailProb(xs, ws, 3)
	if math.Abs(p-want) > 4*se {
		t.Errorf("TailProb = %v ± %v, analytic %v outside 4σ", p, se, want)
	}
	if math.Abs(p-want)/want > 0.1 {
		t.Errorf("TailProb = %v, want %v within 10%%", p, want)
	}
}

// TestISAgreesWithMC is the moderate-σ agreement test from the issue:
// at a 2σ tail both plain MC and IS converge, and their confidence
// intervals must overlap.
func TestISAgreesWithMC(t *testing.T) {
	const (
		n = 20000
		k = 2.0
	)
	mcX, mcW, err := SampleCtx(context.Background(), Params{Mix: 1}, 17, n, identity)
	if err != nil {
		t.Fatal(err)
	}
	isX, isW, err := SampleCtx(context.Background(), Params{Shift: k}, 17, n, identity)
	if err != nil {
		t.Fatal(err)
	}
	pMC, seMC := TailProb(mcX, mcW, k)
	pIS, seIS := TailProb(isX, isW, k)
	if gap := math.Abs(pMC - pIS); gap > 3*(seMC+seIS) {
		t.Errorf("MC %v±%v and IS %v±%v disagree (gap %v)", pMC, seMC, pIS, seIS, gap)
	}
	want := 1 - stdNormal.CDF(k)
	if math.Abs(pIS-want) > 4*seIS {
		t.Errorf("IS %v±%v excludes analytic %v", pIS, seIS, want)
	}
}

// TestVarianceReductionAtHighSigma checks the reason this package
// exists: at a 4σ tail the IS estimator's variance per sample must be
// at least 10× below the binomial variance of plain MC at the same
// budget (the acceptance bar for the committed benchmark entry).
func TestVarianceReductionAtHighSigma(t *testing.T) {
	const (
		n = 30000
		k = 4.0
	)
	pTrue := 1 - stdNormal.CDF(k)
	xs, ws, err := SampleCtx(context.Background(), Params{Shift: k}, 19, n, identity)
	if err != nil {
		t.Fatal(err)
	}
	p, se := TailProb(xs, ws, k)
	if math.Abs(p-pTrue) > 5*se {
		t.Fatalf("IS estimate %v±%v excludes analytic %v", p, se, pTrue)
	}
	mcVar := pTrue * (1 - pTrue) / n
	if reduction := mcVar / (se * se); reduction < 10 {
		t.Errorf("equal-accuracy sample reduction %.1f×, want ≥ 10×", reduction)
	}
}

// TestDeterministicAcrossGOMAXPROCS pins the reproducibility contract:
// the same (params, seed, n) must produce bit-identical values and
// weights on one worker and on many.
func TestDeterministicAcrossGOMAXPROCS(t *testing.T) {
	p := Params{Shift: 3, Mix: 0.25}
	const n = 2048
	serial := func() (xs, ws []float64) {
		old := runtime.GOMAXPROCS(1)
		defer runtime.GOMAXPROCS(old)
		xs, ws = Sample(p, 23, n, identity)
		return xs, ws
	}
	xs1, ws1 := serial()
	xs2, ws2 := Sample(p, 23, n, identity)
	for i := range xs1 {
		if xs1[i] != xs2[i] || ws1[i] != ws2[i] {
			t.Fatalf("sample %d differs across GOMAXPROCS: (%v,%v) vs (%v,%v)",
				i, xs1[i], ws1[i], xs2[i], ws2[i])
		}
	}
}

func TestDiagnose(t *testing.T) {
	unit := make([]float64, 100)
	for i := range unit {
		unit[i] = 1
	}
	d := Diagnose(unit)
	if d.N != 100 || d.ESS != 100 || d.ESSFrac != 1 || d.MaxW != 1 || d.Degenerate {
		t.Errorf("unit weights: %+v", d)
	}

	// One weight carrying ~all the mass: ESS ≈ 1 out of 100.
	skew := make([]float64, 100)
	for i := range skew {
		skew[i] = 1e-6
	}
	skew[42] = 1000
	d = Diagnose(skew)
	if !d.Degenerate {
		t.Errorf("skewed weights not flagged degenerate: %+v", d)
	}
	if d.MaxW != 1000 {
		t.Errorf("MaxW = %v, want 1000", d.MaxW)
	}
}

// TestDiagnosticsMerge checks the shard-reduction path: merging
// per-shard diagnostics of equal-size shards must reproduce the
// diagnostics of the concatenated population.
func TestDiagnosticsMerge(t *testing.T) {
	xs, ws, err := SampleCtx(context.Background(), Params{Shift: 3}, 29, 4000, identity)
	if err != nil {
		t.Fatal(err)
	}
	_ = xs
	whole := Diagnose(ws)
	var merged Diagnostics
	for lo := 0; lo < len(ws); lo += 1000 {
		merged.Merge(Diagnose(ws[lo : lo+1000]))
	}
	if merged.N != whole.N || merged.MaxW != whole.MaxW {
		t.Fatalf("exact fields differ: %+v vs %+v", merged, whole)
	}
	if math.Abs(merged.ESS-whole.ESS)/whole.ESS > 0.05 {
		t.Errorf("merged ESS %v, whole %v", merged.ESS, whole.ESS)
	}
	if merged.Degenerate != whole.Degenerate {
		t.Errorf("degenerate flag differs: %+v vs %+v", merged, whole)
	}

	var fromZero Diagnostics
	fromZero.Merge(whole)
	if fromZero != whole {
		t.Errorf("merge into zero changed diagnostics: %+v vs %+v", fromZero, whole)
	}
}

// TestMergeAll checks the ledger's sweep-record reduction: nil and
// empty blocks are skipped, inputs are not mutated, and the result
// matches a hand-rolled Merge fold.
func TestMergeAll(t *testing.T) {
	if got := MergeAll(); got != nil {
		t.Errorf("MergeAll() = %+v, want nil", got)
	}
	if got := MergeAll(nil, &Diagnostics{}, nil); got != nil {
		t.Errorf("MergeAll of empties = %+v, want nil", got)
	}

	_, ws, err := SampleCtx(context.Background(), Params{Shift: 3}, 29, 3000, identity)
	if err != nil {
		t.Fatal(err)
	}
	a := Diagnose(ws[:1000])
	b := Diagnose(ws[1000:2000])
	c := Diagnose(ws[2000:])
	aCopy := a
	got := MergeAll(&a, nil, &b, &Diagnostics{}, &c)
	want := a
	want.Merge(b)
	want.Merge(c)
	if got == nil || *got != want {
		t.Errorf("MergeAll = %+v, want %+v", got, want)
	}
	if single := MergeAll(&aCopy); *single != aCopy {
		t.Error("single-input MergeAll changed the block")
	}
	if a != aCopy {
		t.Errorf("MergeAll mutated its first input: %+v vs %+v", a, aCopy)
	}
}

// TestPushforwardMatchesQuantile sanity-checks the probit framing
// itself: weighted quantiles of the IS sample must agree with the
// quantile function that generated it.
func TestPushforwardMatchesQuantile(t *testing.T) {
	dist := stats.Normal{Mu: 5, Sigma: 2}
	fn := func(u float64) float64 { return dist.Quantile(u) }
	xs, ws, err := SampleCtx(context.Background(), Params{Shift: 2}, 31, 20000, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := WeightedQuantile(xs, ws, q)
		want := dist.Quantile(q)
		if math.Abs(got-want) > 0.15 {
			t.Errorf("WeightedQuantile(%g) = %v, want ≈ %v", q, got, want)
		}
	}
}
