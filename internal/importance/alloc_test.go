package importance

import (
	"runtime"
	"testing"
)

// Allocation-regression tests in the montecarlo style: single-worker so
// the budget is exact, and every bound is per *call* — the weighted
// sampling path must stay allocation-free per sample like the plain
// kernel it substitutes for.

// allocsSingleWorker reports AllocsPerRun for f with GOMAXPROCS pinned
// to 1.
func allocsSingleWorker(f func()) float64 {
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	return testing.AllocsPerRun(10, f)
}

func TestSampleAllocationBound(t *testing.T) {
	const n = 8192
	p := Params{Shift: 4, Mix: 0.25}
	allocs := allocsSingleWorker(func() { Sample(p, 1, n, identity) })
	// Expected: the flat sample slab (no per-row headers), the xs/ws
	// result slices, one worker stream, closure plumbing — constant per
	// call.
	if allocs > 12 {
		t.Errorf("Sample(n=%d) allocates %v per call, want ≤ 12", n, allocs)
	}
	if perSample := allocs / n; perSample > 0.01 {
		t.Errorf("Sample allocates %v per sample, want 0", perSample)
	}
}

// TestSampleAllocationsDoNotScaleWithN states the amortization property
// directly: quadrupling the sample count must not change the per-call
// allocation count.
func TestSampleAllocationsDoNotScaleWithN(t *testing.T) {
	p := Params{Shift: 3, Mix: 0.25}
	small := allocsSingleWorker(func() { Sample(p, 3, 1024, identity) })
	large := allocsSingleWorker(func() { Sample(p, 3, 4096, identity) })
	if large > small {
		t.Errorf("Sample allocations scale with n: %v @1024 vs %v @4096", small, large)
	}
}

// TestWStreamAllocationFree pins the reduction side: accumulating and
// merging weighted moments must never touch the heap.
func TestWStreamAllocationFree(t *testing.T) {
	var s, o WStream
	o.Add(1, 1)
	allocs := testing.AllocsPerRun(100, func() {
		s.Add(2.5, 0.7)
		s.Merge(&o)
	})
	if allocs != 0 {
		t.Errorf("WStream Add+Merge allocates %v per op, want 0", allocs)
	}
}

// TestTailProbAllocationFree keeps the estimator pass allocation-free
// over retained sample slabs.
func TestTailProbAllocationFree(t *testing.T) {
	xs := make([]float64, 4096)
	ws := make([]float64, 4096)
	for i := range xs {
		xs[i] = float64(i)
		ws[i] = 1
	}
	allocs := testing.AllocsPerRun(20, func() { TailProb(xs, ws, 2048) })
	if allocs != 0 {
		t.Errorf("TailProb allocates %v per call, want 0", allocs)
	}
}
