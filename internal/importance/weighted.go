package importance

import (
	"math"
	"sort"
)

// WStream accumulates weighted moments one observation at a time using
// West's (1979) generalization of Welford's recurrence. The zero value
// is ready to use. With unit weights its mean and second central moment
// are bit-identical to stats.Stream, so plain-MC and IS reductions
// share one numerical contract (docs/SAMPLING.md).
type WStream struct {
	n     int
	sumw  float64
	sumw2 float64
	mean  float64
	m2    float64
	min   float64
	max   float64
}

// Add incorporates observation x with weight w ≥ 0. Zero-weight
// observations still count toward N and the extrema but contribute
// nothing to the moments.
func (s *WStream) Add(x, w float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.sumw2 += w * w
	if w == 0 {
		return
	}
	s.sumw += w
	delta := x - s.mean
	s.mean += delta * w / s.sumw
	s.m2 += w * delta * (x - s.mean)
}

// N returns the number of observations added so far.
func (s *WStream) N() int { return s.n }

// SumW returns the total weight added so far.
func (s *WStream) SumW() float64 { return s.sumw }

// Mean returns the self-normalized weighted mean Σwx/Σw, or NaN if no
// weight has been added.
func (s *WStream) Mean() float64 {
	if s.sumw == 0 {
		return math.NaN()
	}
	return s.mean
}

// Variance returns the weighted sample variance m2/(Σw − 1), the
// frequency-weights form that reduces bit-identically to
// stats.Stream.Variance under unit weights. NaN if Σw ≤ 1.
func (s *WStream) Variance() float64 {
	if s.sumw <= 1 {
		return math.NaN()
	}
	return s.m2 / (s.sumw - 1)
}

// StdDev returns the square root of Variance.
func (s *WStream) StdDev() float64 { return math.Sqrt(s.Variance()) }

// ESS returns the Kish effective sample size (Σw)²/Σw²: the number of
// unweighted samples carrying the same estimator variance. Equal to N
// under unit weights; NaN if nothing was added.
func (s *WStream) ESS() float64 {
	if s.sumw2 == 0 {
		return math.NaN()
	}
	return s.sumw * s.sumw / s.sumw2
}

// StdErr returns the standard error of the weighted mean approximated
// as StdDev/√ESS — exact for unit weights, and the standard practical
// approximation for self-normalized importance weights.
func (s *WStream) StdErr() float64 {
	return s.StdDev() / math.Sqrt(s.ESS())
}

// Min returns the smallest observation, or NaN if none were added.
func (s *WStream) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest observation, or NaN if none were added.
func (s *WStream) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// Merge combines another stream into s, as if every (x, w) added to o
// had been added to s. Merging is associative up to floating-point
// rounding and bit-identical to stats.Stream.Merge under unit weights,
// so sharded importance-sampling sweeps reduce exactly like plain-MC
// ones.
func (s *WStream) Merge(o *WStream) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	s.n += o.n
	s.sumw2 += o.sumw2
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	if o.sumw == 0 {
		return
	}
	if s.sumw == 0 {
		s.sumw, s.mean, s.m2 = o.sumw, o.mean, o.m2
		return
	}
	w1, w2 := s.sumw, o.sumw
	delta := o.mean - s.mean
	total := w1 + w2
	s.mean += delta * w2 / total
	s.m2 += o.m2 + delta*delta*w1*w2/total
	s.sumw = total
}

// ESS returns the Kish effective sample size (Σw)²/Σw² of a weight
// vector, or 0 for an empty or all-zero one.
func ESS(ws []float64) float64 {
	var sumw, sumw2 float64
	for _, w := range ws {
		sumw += w
		sumw2 += w * w
	}
	if sumw2 == 0 {
		return 0
	}
	return sumw * sumw / sumw2
}

// TailProb estimates p = Pr[X > t] from weighted samples with the
// self-normalized estimator Σwᵢ·1{xᵢ>t}/Σwᵢ and returns it with its
// delta-method standard error √(Σwᵢ²(1{xᵢ>t}−p̂)²)/Σwᵢ. With unit
// weights both reduce to the usual binomial estimator and its standard
// error. xs and ws must have equal length.
func TailProb(xs, ws []float64, t float64) (p, stderr float64) {
	var sumw, sumwh float64
	for i, x := range xs {
		sumw += ws[i]
		if x > t {
			sumwh += ws[i]
		}
	}
	if sumw == 0 {
		return math.NaN(), math.NaN()
	}
	p = sumwh / sumw
	var v float64
	for i, x := range xs {
		h := 0.0
		if x > t {
			h = 1.0
		}
		d := ws[i] * (h - p)
		v += d * d
	}
	return p, math.Sqrt(v) / sumw
}

// WeightedQuantile returns the q-quantile of the weighted empirical
// distribution: the smallest sample value whose cumulative normalized
// weight reaches q. Samples are ordered by value with ties broken by
// original index, so the result is deterministic for any input order
// of equal (x, w) multisets. xs and ws must have equal length and ws
// must carry positive total weight; NaN otherwise.
func WeightedQuantile(xs, ws []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if xs[idx[a]] != xs[idx[b]] {
			return xs[idx[a]] < xs[idx[b]]
		}
		return idx[a] < idx[b]
	})
	var sumw float64
	for _, w := range ws {
		sumw += w
	}
	if sumw <= 0 {
		return math.NaN()
	}
	target := q * sumw
	var cum float64
	for _, i := range idx {
		cum += ws[i]
		if cum >= target {
			return xs[i]
		}
	}
	return xs[idx[len(idx)-1]]
}

// DegenerateESSFrac is the ESS/N ratio below which Diagnose flags a
// weight population as degenerate. A defensive mixture with mix λ keeps
// ESS/N near or above λ in practice, so this threshold only trips when
// the proposal is badly mismatched to the integrand.
const DegenerateESSFrac = 0.05

// Diagnostics summarizes the health of one importance-weight
// population. It is embedded in sweep shard results so merged sweeps
// report weight quality per grid point.
type Diagnostics struct {
	// N is the number of weighted samples drawn.
	N int `json:"n"`
	// ESS is the Kish effective sample size (Σw)²/Σw².
	ESS float64 `json:"ess"`
	// ESSFrac is ESS/N ∈ (0, 1]; 1 means unit weights (plain MC).
	ESSFrac float64 `json:"ess_frac"`
	// MaxW is the largest raw likelihood weight observed, bounded by
	// 1/mix for the defensive mixture proposal.
	MaxW float64 `json:"max_weight"`
	// Degenerate reports ESSFrac < DegenerateESSFrac: the weighted
	// estimate is dominated by a few samples and should not be trusted
	// over a plain-MC run of the same budget.
	Degenerate bool `json:"degenerate,omitempty"`
}

// Diagnose computes weight diagnostics for ws and publishes them to the
// package telemetry gauges (ntvsim_is_ess_ratio, ntvsim_is_max_weight,
// ntvsim_is_degenerate_total).
func Diagnose(ws []float64) Diagnostics {
	d := Diagnostics{N: len(ws)}
	var sumw, sumw2 float64
	for _, w := range ws {
		sumw += w
		sumw2 += w * w
		if w > d.MaxW {
			d.MaxW = w
		}
	}
	if sumw2 > 0 {
		d.ESS = sumw * sumw / sumw2
	}
	if d.N > 0 {
		d.ESSFrac = d.ESS / float64(d.N)
		d.Degenerate = d.ESSFrac < DegenerateESSFrac
	}
	publish(d)
	return d
}

// Merge folds another diagnostics block into d, as computed over the
// concatenated weight populations. ESS is not additive, so the merged
// ESS is reconstructed from the implied moment sums; MaxW and N
// combine exactly. Used by the sweep engine to reduce per-shard
// diagnostics to per-point ones.
func (d *Diagnostics) Merge(o Diagnostics) {
	if o.N == 0 {
		return
	}
	if d.N == 0 {
		*d = o
		return
	}
	// Recover Σw and Σw² for both sides from (ESS, ESSFrac·N): with
	// s1 = Σw and s2 = Σw², ESS = s1²/s2 determines only the ratio, so
	// diagnostics store enough to merge ESS exactly only when weights
	// are rescaled consistently. Shards of one sweep point share one
	// proposal, so raw weights are on a common scale and the harmonic
	// composition below is exact for equal-size shards and a tight
	// approximation otherwise.
	n1, n2 := float64(d.N), float64(o.N)
	e1, e2 := d.ESS, o.ESS
	merged := 0.0
	if e1 > 0 && e2 > 0 {
		// Σw ∝ n per shard at common scale (E[w] is shard-independent);
		// combine via ESS = (s1+s2)²/(s1²/e1 + s2²/e2) with s ∝ n.
		merged = (n1 + n2) * (n1 + n2) / (n1*n1/e1 + n2*n2/e2)
	}
	d.N += o.N
	d.ESS = merged
	d.ESSFrac = d.ESS / float64(d.N)
	if o.MaxW > d.MaxW {
		d.MaxW = o.MaxW
	}
	d.Degenerate = d.ESSFrac < DegenerateESSFrac
}

// MergeAll reduces diagnostics blocks (e.g. one per sweep point or
// shard) to a single summary via pairwise left-fold Merge, returning
// nil when no non-nil input carries samples. The run ledger uses it to
// stamp one weight-health block per sweep record.
func MergeAll(ds ...*Diagnostics) *Diagnostics {
	var out *Diagnostics
	for _, d := range ds {
		if d == nil || d.N == 0 {
			continue
		}
		if out == nil {
			out = &Diagnostics{}
			*out = *d
			continue
		}
		out.Merge(*d)
	}
	return out
}
