package importance

import "github.com/ntvsim/ntvsim/internal/telemetry"

// Package telemetry, registered on the process-wide registry and
// documented in docs/OBSERVABILITY.md:
//
//	ntvsim_is_samples_total     counter  weighted samples drawn
//	ntvsim_is_ess_ratio         gauge    ESS/N of the last diagnosed population
//	ntvsim_is_max_weight        gauge    max raw weight of the last diagnosed population
//	ntvsim_is_degenerate_total  counter  populations flagged degenerate
var (
	samplesTotal = telemetry.Default.Counter("ntvsim_is_samples_total",
		"Importance-sampling weighted samples drawn since process start.")
	essRatio = telemetry.Default.Gauge("ntvsim_is_ess_ratio",
		"ESS/N of the most recently diagnosed importance-weight population.")
	maxWeight = telemetry.Default.Gauge("ntvsim_is_max_weight",
		"Largest raw likelihood weight in the most recently diagnosed population.")
	degenerateTotal = telemetry.Default.Counter("ntvsim_is_degenerate_total",
		"Importance-weight populations flagged degenerate (ESS/N below threshold).")
)

// publish pushes one diagnostics block to the package gauges.
func publish(d Diagnostics) {
	if d.N == 0 {
		return
	}
	essRatio.Set(d.ESSFrac)
	maxWeight.Set(d.MaxW)
	if d.Degenerate {
		degenerateTotal.Inc()
	}
}
