package importance

import (
	"math"
	"testing"

	"github.com/ntvsim/ntvsim/internal/simd"
	"github.com/ntvsim/ntvsim/internal/tech"
)

// The kernel benchmarks measure the committed BENCH_*.json claim: at a
// 4σ chip tail-yield target the importance sampler buys its speedup in
// variance, not wall-clock — per-sample cost is within a small factor
// of plain MC while the equal-accuracy sample count drops by orders of
// magnitude. Both benchmarks draw the same number of samples from the
// same analytic chip law; xreduction on the IS side is the per-sample
// variance ratio binomial/IS, i.e. how many MC samples one IS sample
// is worth at this target.

const (
	benchVdd     = 0.5
	benchSamples = 4096
	benchSigma   = 4.0
)

func benchChipLaw(b *testing.B) (fn func(float64) float64, target float64) {
	b.Helper()
	dp := simd.New(tech.N32)
	fn, err := dp.ChipQuantileFn(benchVdd)
	if err != nil {
		b.Fatal(err)
	}
	target, err = dp.ChipQuantile(benchVdd, stdNormal.CDF(benchSigma))
	if err != nil {
		b.Fatal(err)
	}
	return fn, target
}

func BenchmarkKernelMCTailYield(b *testing.B) {
	fn, target := benchChipLaw(b)
	pTrue := 1 - stdNormal.CDF(benchSigma)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xs, ws := Sample(Params{Mix: 1}, uint64(i)+1, benchSamples, fn)
		TailProb(xs, ws, target)
	}
	b.ReportMetric(float64(benchSamples), "samples/op")
	// At p ≈ 3.2e-5 a 4096-sample MC run usually sees zero events, so
	// the empirical stderr is degenerate; report the binomial floor.
	b.ReportMetric(math.Sqrt((1-pTrue)/(pTrue*benchSamples)), "relerr/op")
}

func BenchmarkKernelISTailYield(b *testing.B) {
	fn, target := benchChipLaw(b)
	pTrue := 1 - stdNormal.CDF(benchSigma)
	params := Params{Shift: benchSigma, Mix: DefaultMix}
	var p, se float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xs, ws := Sample(params, uint64(i)+1, benchSamples, fn)
		p, se = TailProb(xs, ws, target)
	}
	b.ReportMetric(float64(benchSamples), "samples/op")
	b.ReportMetric(se/p, "relerr/op")
	// Equal-accuracy sample reduction vs plain MC at this target:
	// binomial per-sample variance over IS per-sample variance.
	b.ReportMetric(pTrue*(1-pTrue)/(se*se*benchSamples), "xreduction/op")
}
