// Package importance implements rare-event importance sampling for the
// study's tail-yield questions, where plain Monte-Carlo needs ~1/p
// samples to see a single event of probability p.
//
// The sampler works in the probit domain. Chip delay under the analytic
// law is a monotone pushforward X = Q(Φ(Z)) of one standard Gaussian
// coordinate Z through the chip quantile function Q (see
// simd.Datapath.ChipQuantileFn), itself built from the per-lane V_th
// Gaussians. Instead of drawing Z from the nominal φ(z), the proposal is
// a defensive two-component mixture
//
//	q(z) = mix·φ(z) + (1−mix)·φ(z−shift)
//
// that keeps a mix-fraction of mass on the nominal distribution and
// shifts the rest by shift standard deviations toward the tail of
// interest. Each draw carries the self-normalized likelihood weight
//
//	w(z) = φ(z)/q(z) = 1 / (mix + (1−mix)·exp(shift·z − shift²/2))
//
// which is bounded above by 1/mix — the defensive component caps weight
// variance, so a badly chosen shift degrades gracefully toward plain MC
// instead of producing unbounded weights.
//
// Estimators over the weighted draws (WStream, TailProb,
// WeightedQuantile) and the effective-sample-size diagnostics
// (Diagnose) live in weighted.go; docs/SAMPLING.md is the statistical
// contract for all of them.
//
// # Determinism
//
// SampleCtx draws through montecarlo.SampleFlatCtx, so sample index i
// always consumes the (seed, i) rng sub-stream: results are
// bit-identical across GOMAXPROCS and scheduling order, and sharded
// sweeps that partition indices by seed merge byte-identical to a
// serial run.
package importance

import (
	"context"
	"fmt"
	"math"

	"github.com/ntvsim/ntvsim/internal/montecarlo"
	"github.com/ntvsim/ntvsim/internal/rng"
	"github.com/ntvsim/ntvsim/internal/stats"
)

// stdNormal is the standard Gaussian used for the probit map Φ and its
// inverse.
var stdNormal = stats.Normal{Mu: 0, Sigma: 1}

// DefaultMix is the defensive mixture weight used when Params.Mix is
// zero: a quarter of the proposal mass stays on the nominal
// distribution, bounding every likelihood weight by 1/DefaultMix = 4.
const DefaultMix = 0.25

// Params configures the mean-shifted defensive-mixture proposal. The
// zero value (Shift 0, Mix 0) normalizes to a pure-MC proposal with
// the default defensive mix, i.e. unit weights.
type Params struct {
	// Shift is the proposal mean shift θ in standard-normal units;
	// positive values push samples toward the upper (slow-chip) tail.
	// A good default is the sigma level of the tail being estimated.
	Shift float64 `json:"shift"`
	// Mix is the defensive mixture weight λ ∈ (0, 1] kept on the
	// unshifted nominal component. Zero means DefaultMix; 1 disables
	// the shift entirely (plain MC with unit weights).
	Mix float64 `json:"mix"`
}

// Normalized validates p and fills defaults: a zero Mix becomes
// DefaultMix. It returns an error for non-finite parameters or a Mix
// outside (0, 1] — a proposal with no defensive mass has unbounded
// weights and is rejected rather than silently accepted.
func (p Params) Normalized() (Params, error) {
	if math.IsNaN(p.Shift) || math.IsInf(p.Shift, 0) {
		return Params{}, fmt.Errorf("importance: shift must be finite, got %v", p.Shift)
	}
	if math.IsNaN(p.Mix) || p.Mix < 0 || p.Mix > 1 {
		return Params{}, fmt.Errorf("importance: mix must be in (0, 1], got %v", p.Mix)
	}
	if p.Mix == 0 {
		p.Mix = DefaultMix
	}
	return p, nil
}

// draw samples one proposal coordinate z ~ q and returns it with its
// likelihood weight w(z) = φ(z)/q(z). It consumes exactly two variates
// from r (one uniform for the mixture component, one Gaussian), so the
// per-index stream layout is fixed regardless of parameters.
func (p Params) draw(r *rng.Stream) (z, w float64) {
	u := r.Float64()
	z = r.Norm()
	if u >= p.Mix {
		z += p.Shift
	}
	return z, p.weight(z)
}

// weight returns the self-normalized likelihood weight
// w(z) = φ(z)/q(z) = 1/(mix + (1−mix)·exp(shift·z − shift²/2)),
// bounded above by 1/mix by the defensive component.
func (p Params) weight(z float64) float64 {
	return 1 / (p.Mix + (1-p.Mix)*math.Exp(p.Shift*z-p.Shift*p.Shift/2))
}

// Sample is SampleCtx with a background context.
func Sample(p Params, seed uint64, n int, fn func(u float64) float64) (xs, ws []float64) {
	xs, ws, _ = SampleCtx(context.Background(), p, seed, n, fn)
	return xs, ws
}

// SampleCtx draws n importance-weighted samples of the pushforward
// X = fn(Φ(Z)) with Z from the proposal, returning values and their
// likelihood weights in sample-index order. fn is typically a chip
// quantile function (simd.Datapath.ChipQuantileFn), making X a chip
// delay; it must be safe for concurrent calls.
//
// Draws run through montecarlo.SampleFlatCtx: sample i consumes the
// (seed, i) rng sub-stream, so output is bit-identical across
// GOMAXPROCS and cancellable via ctx. The flat (pointer-free) sampling
// path matters at rare-event sample counts: tens of millions of draws
// allocate two column slices and one slab, never a GC-scannable header
// per sample. The returned slices are independently owned by the
// caller.
func SampleCtx(ctx context.Context, p Params, seed uint64, n int, fn func(u float64) float64) (xs, ws []float64, err error) {
	p, err = p.Normalized()
	if err != nil {
		return nil, nil, err
	}
	flat, err := montecarlo.SampleFlatCtx(ctx, seed, n, 2, func(r *rng.Stream, dst []float64) {
		z, w := p.draw(r)
		dst[0] = fn(stdNormal.CDF(z))
		dst[1] = w
	})
	if err != nil {
		return nil, nil, err
	}
	xs = make([]float64, n)
	ws = make([]float64, n)
	for i := range xs {
		xs[i], ws[i] = flat[2*i], flat[2*i+1]
	}
	samplesTotal.Add(float64(n))
	return xs, ws, nil
}
