package importance

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/ntvsim/ntvsim/internal/stats"
)

// Property tests for the weighted estimators, mirroring the stats
// Merge suite: for any partition of a weighted sample into per-shard
// streams and any merge order, the merged stream must agree with
// single-stream accumulation — and under unit weights the agreement
// with stats.Stream must be bit-exact, so plain-MC and IS sweeps share
// one reduction contract.

// relClose reports whether a and b agree to within tol relative to
// their magnitude (absolute near zero).
func relClose(a, b, tol float64) bool {
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return math.Abs(a-b) <= tol*scale
}

const wTolDefault = 1e-12

func checkWStreamsAgree(t *testing.T, label string, got, want *WStream, tol float64) {
	t.Helper()
	if got.N() != want.N() {
		t.Fatalf("%s: N = %d, want %d", label, got.N(), want.N())
	}
	if got.Min() != want.Min() || got.Max() != want.Max() {
		t.Fatalf("%s: extrema (%v,%v) != (%v,%v)",
			label, got.Min(), got.Max(), want.Min(), want.Max())
	}
	if !relClose(got.SumW(), want.SumW(), tol) {
		t.Fatalf("%s: sumw %v != %v", label, got.SumW(), want.SumW())
	}
	if !relClose(got.Mean(), want.Mean(), tol) {
		t.Fatalf("%s: mean %v != %v", label, got.Mean(), want.Mean())
	}
	if !relClose(got.Variance(), want.Variance(), tol) {
		t.Fatalf("%s: variance %v != %v", label, got.Variance(), want.Variance())
	}
	if !relClose(got.ESS(), want.ESS(), tol) {
		t.Fatalf("%s: ESS %v != %v", label, got.ESS(), want.ESS())
	}
}

// weightedSample draws n (x, w) pairs with importance-like bounded
// weights.
func weightedSample(r *rand.Rand, n int) (xs, ws []float64) {
	xs = make([]float64, n)
	ws = make([]float64, n)
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 1
		ws[i] = math.Exp(r.NormFloat64()) // log-normal, heavy-ish tail
	}
	return xs, ws
}

// TestWStreamUnitWeightsBitIdenticalToStream is the cross-sampler
// contract stated in docs/SAMPLING.md: with every w = 1 the weighted
// recurrences evaluate the exact same float operations as
// stats.Stream, so MC-as-IS produces bit-identical moments.
func TestWStreamUnitWeightsBitIdenticalToStream(t *testing.T) {
	r := rand.New(rand.NewPCG(1, 2))
	var ref stats.Stream
	var w WStream
	for i := 0; i < 10000; i++ {
		x := r.NormFloat64()*1e-9 + 5 // cancellation-hostile scale
		ref.Add(x)
		w.Add(x, 1)
	}
	if w.Mean() != ref.Mean() {
		t.Errorf("mean %v != stats.Stream mean %v (must be bit-identical)", w.Mean(), ref.Mean())
	}
	if w.Variance() != ref.Variance() {
		t.Errorf("variance %v != stats.Stream variance %v (must be bit-identical)", w.Variance(), ref.Variance())
	}
	if w.N() != ref.N() || w.Min() != ref.Min() || w.Max() != ref.Max() {
		t.Errorf("n/extrema differ from stats.Stream")
	}
	if w.StdErr() != ref.StdErr() {
		t.Errorf("stderr %v != stats.Stream stderr %v", w.StdErr(), ref.StdErr())
	}
}

// TestWStreamUnitWeightMergeBitIdenticalToStream extends the bit-exact
// contract to Merge: the same shard structure reduced through WStream
// and stats.Stream must agree exactly.
func TestWStreamUnitWeightMergeBitIdenticalToStream(t *testing.T) {
	r := rand.New(rand.NewPCG(3, 4))
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = r.NormFloat64() * 7
	}
	for _, shards := range []int{2, 3, 7, 16} {
		var refTotal stats.Stream
		var wTotal WStream
		for s := 0; s < shards; s++ {
			var ref stats.Stream
			var w WStream
			for i := s; i < len(xs); i += shards {
				ref.Add(xs[i])
				w.Add(xs[i], 1)
			}
			refTotal.Merge(&ref)
			wTotal.Merge(&w)
		}
		if wTotal.Mean() != refTotal.Mean() || wTotal.Variance() != refTotal.Variance() {
			t.Errorf("%d shards: merged (%v, %v) != stats.Stream (%v, %v)",
				shards, wTotal.Mean(), wTotal.Variance(), refTotal.Mean(), refTotal.Variance())
		}
	}
}

// TestWStreamMergeMatchesSingleStream partitions one weighted sample
// into k chunks and checks chunked accumulation + left-to-right merge
// against the single stream.
func TestWStreamMergeMatchesSingleStream(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	xs, ws := weightedSample(r, 5000)
	var want WStream
	for i := range xs {
		want.Add(xs[i], ws[i])
	}
	for _, chunks := range []int{1, 2, 5, 13, 64} {
		var got WStream
		for c := 0; c < chunks; c++ {
			lo := len(xs) * c / chunks
			hi := len(xs) * (c + 1) / chunks
			var part WStream
			for i := lo; i < hi; i++ {
				part.Add(xs[i], ws[i])
			}
			got.Merge(&part)
		}
		checkWStreamsAgree(t, "chunks", &got, &want, wTolDefault)
	}
}

// TestWStreamMergeOrderInsensitive merges the same shards forward,
// reversed, and shuffled; all orders must agree to rounding.
func TestWStreamMergeOrderInsensitive(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 8))
	xs, ws := weightedSample(r, 3000)
	const shards = 10
	parts := make([]WStream, shards)
	for i := range xs {
		parts[i%shards].Add(xs[i], ws[i])
	}
	merge := func(order []int) *WStream {
		var total WStream
		for _, s := range order {
			part := parts[s] // copy: Merge mutates the receiver only
			total.Merge(&part)
		}
		return &total
	}
	fwd := make([]int, shards)
	rev := make([]int, shards)
	for i := range fwd {
		fwd[i] = i
		rev[i] = shards - 1 - i
	}
	shuf := r.Perm(shards)
	want := merge(fwd)
	checkWStreamsAgree(t, "reversed", merge(rev), want, wTolDefault)
	checkWStreamsAgree(t, "shuffled", merge(shuf), want, wTolDefault)
}

// TestWStreamTreeMerge reduces shards pairwise (the engine's merge
// shape for large sweeps) and compares against serial accumulation.
func TestWStreamTreeMerge(t *testing.T) {
	r := rand.New(rand.NewPCG(9, 10))
	xs, ws := weightedSample(r, 4096)
	var want WStream
	for i := range xs {
		want.Add(xs[i], ws[i])
	}
	level := make([]WStream, 16)
	for i := range xs {
		level[i%16].Add(xs[i], ws[i])
	}
	for len(level) > 1 {
		next := make([]WStream, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			merged := level[i]
			if i+1 < len(level) {
				merged.Merge(&level[i+1])
			}
			next = append(next, merged)
		}
		level = next
	}
	checkWStreamsAgree(t, "tree", &level[0], &want, wTolDefault)
}

// TestWStreamZeroWeight pins the zero-weight contract: counted in N
// and the extrema, invisible to the moments.
func TestWStreamZeroWeight(t *testing.T) {
	var s WStream
	s.Add(10, 0)
	if s.N() != 1 || s.Min() != 10 || s.Max() != 10 {
		t.Errorf("zero-weight bookkeeping: %+v", s)
	}
	if !math.IsNaN(s.Mean()) {
		t.Errorf("Mean with zero total weight = %v, want NaN", s.Mean())
	}
	s.Add(2, 1)
	s.Add(4, 1)
	if s.Mean() != 3 {
		t.Errorf("Mean = %v, want 3", s.Mean())
	}
	if s.Min() != 2 || s.Max() != 10 {
		t.Errorf("extrema (%v,%v), want (2,10)", s.Min(), s.Max())
	}
}

// TestWStreamMergeEmpty covers the empty/zero-weight merge corners.
func TestWStreamMergeEmpty(t *testing.T) {
	var a, b WStream
	a.Add(1, 1)
	a.Add(3, 1)
	before := a
	a.Merge(&b)
	if a != before {
		t.Errorf("merging empty changed stream: %+v", a)
	}
	b.Merge(&a)
	if b.Mean() != a.Mean() || b.N() != a.N() {
		t.Errorf("merge into empty: %+v", b)
	}
	var zw WStream
	zw.Add(99, 0)
	a.Merge(&zw)
	if a.N() != 3 || a.Mean() != 2 || a.Max() != 99 {
		t.Errorf("merge of zero-weight stream: %+v", a)
	}
}

// TestWStreamESS pins the two ends of the ESS scale.
func TestWStreamESS(t *testing.T) {
	var s WStream
	for i := 0; i < 50; i++ {
		s.Add(float64(i), 1)
	}
	if s.ESS() != 50 {
		t.Errorf("unit-weight ESS = %v, want exactly 50", s.ESS())
	}
	var d WStream
	d.Add(0, 1000)
	for i := 0; i < 99; i++ {
		d.Add(float64(i), 1e-6)
	}
	if ess := d.ESS(); ess > 1.01 {
		t.Errorf("dominated ESS = %v, want ≈ 1", ess)
	}
}

// TestTailProbUnitWeightsBinomial reduces TailProb to the plain
// binomial estimator under unit weights.
func TestTailProbUnitWeightsBinomial(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 12))
	n := 2000
	xs := make([]float64, n)
	ws := make([]float64, n)
	for i := range xs {
		xs[i] = r.NormFloat64()
		ws[i] = 1
	}
	const t0 = 1.0
	count := 0
	for _, x := range xs {
		if x > t0 {
			count++
		}
	}
	p, se := TailProb(xs, ws, t0)
	wantP := float64(count) / float64(n)
	if p != wantP {
		t.Errorf("p = %v, want exactly %v", p, wantP)
	}
	wantSE := math.Sqrt(wantP * (1 - wantP) / float64(n))
	if !relClose(se, wantSE, 1e-9) {
		t.Errorf("se = %v, want binomial %v", se, wantSE)
	}
}

// TestWeightedQuantileOrderInsensitive permutes (x, w) pairs and
// demands the identical (==) quantile, the determinism property the
// sharded sweep relies on.
func TestWeightedQuantileOrderInsensitive(t *testing.T) {
	r := rand.New(rand.NewPCG(13, 14))
	xs, ws := weightedSample(r, 1000)
	// Inject exact ties to exercise the tie-break.
	for i := 0; i < 100; i++ {
		xs[i] = 1.5
	}
	want := WeightedQuantile(xs, ws, 0.99)
	perm := r.Perm(len(xs))
	px := make([]float64, len(xs))
	pw := make([]float64, len(ws))
	for i, j := range perm {
		px[i], pw[i] = xs[j], ws[j]
	}
	if got := WeightedQuantile(px, pw, 0.99); got != want {
		t.Errorf("permuted quantile %v != %v", got, want)
	}
}

// TestWeightedQuantileUnitWeights checks known positions on a tiny
// sample.
func TestWeightedQuantileUnitWeights(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	ws := []float64{1, 1, 1, 1, 1}
	cases := []struct{ q, want float64 }{
		{0.2, 1}, {0.21, 2}, {0.5, 3}, {0.9, 5}, {1.0, 5},
	}
	for _, c := range cases {
		if got := WeightedQuantile(xs, ws, c.q); got != c.want {
			t.Errorf("WeightedQuantile(q=%g) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(WeightedQuantile(nil, nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	if !math.IsNaN(WeightedQuantile([]float64{1}, []float64{0}, 0.5)) {
		t.Error("zero-total-weight quantile should be NaN")
	}
}
