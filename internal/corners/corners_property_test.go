package corners

import (
	"math"
	"testing"

	"github.com/ntvsim/ntvsim/internal/tech"
)

// TestCornersGolden pins the signoff pipeline bit-for-bit at two nodes:
// the calibrated device models are pure functions, so any drift in these
// values is a behavior change in the corner flow or the models beneath
// it, not noise.
func TestCornersGolden(t *testing.T) {
	cases := []struct {
		node            tech.Node
		ss, tt, ff      float64
		derate, signoff float64
		str             string
	}{
		{tech.N45, 6.68509553373e-09, 5.69755025199e-09, 4.88021913336e-09,
			1.071583544, 7.16363836402e-09, "SS×1.072 derate → 7.164e-09 s"},
		{tech.N22, 3.14651284567e-09, 2.50489896721e-09, 2.02903487961e-09,
			1.11626792285, 3.51235135847e-09, "SS×1.116 derate → 3.512e-09 s"},
	}
	const vdd, rel = 0.55, 1e-11
	check := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > rel*math.Abs(want) {
			t.Errorf("%s = %.12g, want pinned %.12g", name, got, want)
		}
	}
	for _, c := range cases {
		check(c.node.Name+" SS", ChainDelay(c.node, SS, vdd, tech.ChainLength), c.ss)
		check(c.node.Name+" TT", ChainDelay(c.node, TT, vdd, tech.ChainLength), c.tt)
		check(c.node.Name+" FF", ChainDelay(c.node, FF, vdd, tech.ChainLength), c.ff)
		s := ChipSignoff(c.node, vdd, 12800)
		check(c.node.Name+" derate", s.Derate, c.derate)
		check(c.node.Name+" signoff", s.DelaySS, c.signoff)
		if s.String() != c.str {
			t.Errorf("%s String() = %q, want %q", c.node.Name, s.String(), c.str)
		}
	}
}

// TestOCVSigmaProperties: the path-count-aware OCV multiplier is the
// Φ⁻¹(0.99^(1/n)) max statistic — monotone in the path count, anchored
// at the single-path 99 % z-score, and clamped for degenerate counts.
func TestOCVSigmaProperties(t *testing.T) {
	if got, want := OCVSigma(1), 2.32634787404; math.Abs(got-want) > 1e-9 {
		t.Errorf("OCVSigma(1) = %v, want Φ⁻¹(0.99) = %v", got, want)
	}
	for _, n := range []int{0, -7} {
		if OCVSigma(n) != OCVSigma(1) {
			t.Errorf("OCVSigma(%d) = %v, want the clamped single-path value", n, OCVSigma(n))
		}
	}
	prev := 0.0
	for _, n := range []int{1, 2, 10, 100, 1280, 12800, 128000} {
		k := OCVSigma(n)
		if k <= prev {
			t.Fatalf("OCVSigma not strictly increasing at n=%d: %v after %v", n, k, prev)
		}
		prev = k
	}
	// The paper-scale machine: 12 800 paths push the max statistics near
	// 4.8σ — far beyond the per-path 3σ convention.
	if k := OCVSigma(12800); k < 4.5 || k > 5.0 {
		t.Errorf("OCVSigma(12800) = %v, want ≈4.8", k)
	}
}

// TestCornerChainProperties sweeps every node across the NTV band and
// checks the structural corner facts: SS > TT > FF at every point,
// delays positive and decreasing in Vdd corner-by-corner, and the
// derate strictly above one and growing as Vdd drops (within-die spread
// balloons near threshold).
func TestCornerChainProperties(t *testing.T) {
	vdds := []float64{0.50, 0.55, 0.60, 0.70, 0.90}
	for _, node := range tech.Nodes() {
		prevSS, prevDerate := math.Inf(1), math.Inf(1)
		for _, vdd := range vdds {
			ss := ChainDelay(node, SS, vdd, tech.ChainLength)
			tt := ChainDelay(node, TT, vdd, tech.ChainLength)
			ff := ChainDelay(node, FF, vdd, tech.ChainLength)
			if !(ss > tt && tt > ff && ff > 0) {
				t.Fatalf("%s @%.2fV: corner ordering broken: SS %v TT %v FF %v",
					node.Name, vdd, ss, tt, ff)
			}
			if ss >= prevSS {
				t.Errorf("%s: SS delay not decreasing in Vdd at %.2fV", node.Name, vdd)
			}
			prevSS = ss
			d := OCVDerate(node, vdd, tech.ChainLength, 3)
			if d <= 1 {
				t.Errorf("%s @%.2fV: derate %v not above one", node.Name, vdd, d)
			}
			if d >= prevDerate {
				t.Errorf("%s: derate not shrinking as Vdd rises at %.2fV", node.Name, vdd)
			}
			prevDerate = d
		}
	}
}

// TestOverMarginSign pins OverMarginPct's orientation: a signoff above
// the statistical target is positive over-margin, equality is zero, and
// an under-covering corner goes negative.
func TestOverMarginSign(t *testing.T) {
	s := Signoff{DelaySS: 2e-9}
	if got := OverMarginPct(s, 1e-9); math.Abs(got-100) > 1e-9 {
		t.Errorf("2× signoff over-margin = %v%%, want 100%%", got)
	}
	if got := OverMarginPct(s, 2e-9); math.Abs(got) > 1e-9 {
		t.Errorf("exact signoff over-margin = %v%%, want 0", got)
	}
	if got := OverMarginPct(s, 4e-9); got >= 0 {
		t.Errorf("under-covering signoff over-margin = %v%%, want negative", got)
	}
}
