package corners

import (
	"sort"
	"testing"

	"github.com/ntvsim/ntvsim/internal/simd"
	"github.com/ntvsim/ntvsim/internal/stats"
	"github.com/ntvsim/ntvsim/internal/tech"
)

func TestCornerOrdering(t *testing.T) {
	for _, node := range tech.Nodes() {
		for _, vdd := range []float64{0.5, 0.7, node.VddNominal} {
			ss := ChainDelay(node, SS, vdd, tech.ChainLength)
			tt := ChainDelay(node, TT, vdd, tech.ChainLength)
			ff := ChainDelay(node, FF, vdd, tech.ChainLength)
			if !(ss > tt && tt > ff) {
				t.Errorf("%s @%gV: corner ordering violated: SS %v, TT %v, FF %v",
					node.Name, vdd, ss, tt, ff)
			}
		}
	}
}

func TestCornerSpreadGrowsAtLowVdd(t *testing.T) {
	node := tech.N90
	spread := func(vdd float64) float64 {
		return ChainDelay(node, SS, vdd, 50) / ChainDelay(node, FF, vdd, 50)
	}
	if spread(0.5) <= spread(1.0) {
		t.Errorf("SS/FF spread should widen near threshold: %v vs %v", spread(0.5), spread(1.0))
	}
}

func TestOCVDerateAboveOne(t *testing.T) {
	for _, node := range tech.Nodes() {
		d := OCVDerate(node, 0.55, 50, 3)
		if d <= 1 || d > 1.5 {
			t.Errorf("%s: derate %v outside (1, 1.5]", node.Name, d)
		}
	}
}

// TestSignoffCoversStatistical: the SS corner with a path-count-aware
// OCV derate bounds the Monte-Carlo 99 % chip delay wherever the path
// law is near-Gaussian (90 nm everywhere; 22 nm at nominal voltage).
// At 22 nm deep in the near-threshold region the path law is strongly
// right-skewed and the Gaussian-z derate under-covers the extreme tail
// by a percent — the same skew effect that defeats Gaussian SSTA
// (internal/ssta) and another argument for Monte-Carlo signoff of NTV
// parts. The test pins both behaviours.
func TestSignoffCoversStatistical(t *testing.T) {
	p99Of := func(dp *simd.Datapath, vdd float64) float64 {
		ds := dp.ChipDelays(1, 3000, vdd, 0)
		sort.Float64s(ds)
		return stats.QuantileSorted(ds, 0.99)
	}
	dp90 := simd.New(tech.N90)
	for _, vdd := range []float64{0.55, tech.N90.VddNominal} {
		s := ChipSignoff(tech.N90, vdd, dp90.Lanes*dp90.PathsPerLane)
		if p99 := p99Of(dp90, vdd); s.DelaySS < p99 {
			t.Errorf("90nm @%gV: signoff %v below statistical p99 %v", vdd, s.DelaySS, p99)
		}
	}
	dp22 := simd.New(tech.N22)
	sNom := ChipSignoff(tech.N22, tech.N22.VddNominal, dp22.Lanes*dp22.PathsPerLane)
	if p99 := p99Of(dp22, tech.N22.VddNominal); sNom.DelaySS < p99 {
		t.Errorf("22nm @nominal: signoff %v below statistical p99 %v", sNom.DelaySS, p99)
	}
	sNTV := ChipSignoff(tech.N22, 0.55, dp22.Lanes*dp22.PathsPerLane)
	p99 := p99Of(dp22, 0.55)
	if gap := (p99 - sNTV.DelaySS) / p99; gap > 0.03 {
		t.Errorf("22nm @0.55V: skew under-coverage %.3f beyond documented bound", gap)
	}
}

// TestOverMarginGrowsNearThreshold is the extension's finding: the
// corner flow's surplus margin over the statistical 99 % point grows as
// the supply approaches threshold, because the exponential V_th
// sensitivity prices the fixed ±3σ corner ever more steeply.
func TestOverMarginGrowsNearThreshold(t *testing.T) {
	node := tech.N90
	dp := simd.New(node)
	over := func(vdd float64) float64 {
		s := ChipSignoff(node, vdd, dp.Lanes*dp.PathsPerLane)
		ds := dp.ChipDelays(2, 3000, vdd, 0)
		sort.Float64s(ds)
		return OverMarginPct(s, stats.QuantileSorted(ds, 0.99))
	}
	oLow, oHigh := over(0.5), over(1.0)
	if oLow <= oHigh {
		t.Errorf("over-margin at 0.5V (%v%%) should exceed 1.0V (%v%%)", oLow, oHigh)
	}
	if oLow <= 0 || oHigh <= 0 {
		t.Errorf("over-margins must be positive: %v, %v", oLow, oHigh)
	}
}

func TestSignoffString(t *testing.T) {
	if ChipSignoff(tech.N90, 0.6, 12800).String() == "" {
		t.Error("empty signoff render")
	}
}

func TestOCVSigma(t *testing.T) {
	// One path: plain 99 % z-score ≈ 2.33.
	if k := OCVSigma(1); k < 2.31 || k > 2.35 {
		t.Errorf("OCVSigma(1) = %v, want ≈2.33", k)
	}
	// The paper's machine: ≈4.8σ.
	if k := OCVSigma(12800); k < 4.5 || k > 5.1 {
		t.Errorf("OCVSigma(12800) = %v, want ≈4.8", k)
	}
	if OCVSigma(0) != OCVSigma(1) {
		t.Error("degenerate path count mishandled")
	}
	if OCVSigma(100) <= OCVSigma(10) {
		t.Error("OCV sigma must grow with path count")
	}
}
