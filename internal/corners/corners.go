// Package corners implements traditional process-corner timing signoff
// (slow/typical/fast corners with an on-chip-variation derate) on top of
// the calibrated device models, and quantifies how much it over-margins
// relative to the statistical 99 %-point methodology the paper uses.
//
// Corner signoff evaluates the design at a slow-silicon corner — every
// device's threshold shifted by k·σ of the die-to-die distribution —
// and multiplies by an OCV derate covering within-die variation. At
// nominal voltage this is mildly conservative; near threshold, where
// delay is exponentially sensitive to V_th, the fixed-corner approach
// prices the ±3σ die at far more delay than the statistical 99 % chip
// actually exhibits. The gap is the power/performance cost of using
// corner flows for NTV parts — and an argument for the paper's
// Monte-Carlo sizing.
package corners

import (
	"fmt"
	"math"

	"github.com/ntvsim/ntvsim/internal/device"
	"github.com/ntvsim/ntvsim/internal/stats"
	"github.com/ntvsim/ntvsim/internal/tech"
)

// Corner is a named global process condition.
type Corner struct {
	Name string
	// KSigma shifts every device's V_th by KSigma·σ(D2D) and the
	// multiplicative die factor by KSigma·σ(mul,D2D). Positive = slow.
	KSigma float64
}

// Standard corners.
var (
	SS = Corner{Name: "SS", KSigma: +3}
	TT = Corner{Name: "TT", KSigma: 0}
	FF = Corner{Name: "FF", KSigma: -3}
)

// ChainDelay returns the delay (seconds) of an n-gate chain at the
// corner: the die-level shifts applied at KSigma, within-die variation
// collapsed to its mean (corner flows treat WID via the derate, not the
// corner itself).
func ChainDelay(node tech.Node, c Corner, vdd float64, n int) float64 {
	d2d := c.KSigma * node.Var.SigmaVthD2D
	mul := math.Exp(c.KSigma * node.Var.SigmaMulD2D)
	mean, _ := device.ChainConditionalMoments(node.Dev, node.Var, vdd, n, d2d)
	return mean * mul
}

// OCVDerate returns the multiplicative on-chip-variation derate for a
// path of n gates at supply vdd: 1 + k·σ_path/μ_path, covering the
// within-die spread a corner cannot see. k = 3 matches the 3σ signoff
// convention.
func OCVDerate(node tech.Node, vdd float64, n int, k float64) float64 {
	d2d := 0.0
	mean, variance := device.ChainConditionalMoments(node.Dev, node.Var, vdd, n, d2d)
	return 1 + k*math.Sqrt(variance)/mean
}

// Signoff is a corner-based chip-delay estimate.
type Signoff struct {
	Corner  Corner
	KOCV    float64 // path-count-aware OCV sigma multiplier
	Derate  float64
	DelaySS float64 // corner delay × derate, seconds
}

// OCVSigma returns the path-count-aware OCV sigma multiplier: the
// z-score whose single-path quantile makes the slowest of totalPaths
// independent paths meet a 99 % target, Φ⁻¹(0.99^(1/totalPaths)).
// A plain per-path 3σ derate under-covers a 12 800-path SIMD machine
// even at nominal voltage — the max statistics reach ≈4.8σ.
func OCVSigma(totalPaths int) float64 {
	if totalPaths < 1 {
		totalPaths = 1
	}
	p := math.Exp(math.Log(0.99) / float64(totalPaths))
	return stats.Normal{Mu: 0, Sigma: 1}.Quantile(p)
}

// ChipSignoff returns the slow-corner signoff delay for a machine with
// totalPaths critical paths of the canonical 50-gate length at supply
// vdd: SS corner × path-count-aware OCV derate.
func ChipSignoff(node tech.Node, vdd float64, totalPaths int) Signoff {
	const n = tech.ChainLength
	k := OCVSigma(totalPaths)
	derate := OCVDerate(node, vdd, n, k)
	return Signoff{
		Corner:  SS,
		KOCV:    k,
		Derate:  derate,
		DelaySS: ChainDelay(node, SS, vdd, n) * derate,
	}
}

// OverMarginPct compares the corner signoff against a statistical
// target (e.g. the Monte-Carlo 99 % chip delay, in seconds): the
// percentage of extra delay the corner flow reserves beyond what the
// 99 % chip needs. Negative values would mean the corner under-covers.
func OverMarginPct(s Signoff, statisticalP99 float64) float64 {
	return 100 * (s.DelaySS/statisticalP99 - 1)
}

// String renders the signoff.
func (s Signoff) String() string {
	return fmt.Sprintf("%s×%.3f derate → %.4g s", s.Corner.Name, s.Derate, s.DelaySS)
}
