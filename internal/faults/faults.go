// Package faults is a deterministic, seeded fault injector for tests.
//
// The production packages of this repo expose build-tag-free hook
// points — named call sites that consult the context for an Injector
// and do nothing when none is present (one context lookup per hook, no
// allocation, no behavioural change). Tests arm an Injector with Rules
// and thread it through a context; the hooks then fail on command:
// return a transient error, panic, or wedge until cancellation.
//
// The design follows the paper's own detect-and-recover philosophy:
// Razor-style systems prove their margins by *injecting* timing errors
// and recovering, rather than hoping the worst case never happens. The
// serving layer does the same — every retry, recover() and drain path
// is exercised under injected faults, deterministically, so the fault
// suite never flakes.
//
// # Determinism
//
// Each hook site keeps an atomic call counter. A Rule with After=N
// trips on exactly the N-th Fire call at its site (and the Times-1
// calls after it), independent of goroutine interleaving: occurrence
// numbers are assigned uniquely under the injector's lock. A Rule with
// Prob>0 trips on call n iff a pure hash of (seed, site, n) falls
// below Prob — the decision sequence is a function of the seed alone,
// so a fixed seed matrix in CI replays identical fault schedules.
package faults

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"github.com/ntvsim/ntvsim/internal/rng"
)

// Kind enumerates the failure modes a Rule can inject.
type Kind string

// Injectable failure modes.
const (
	// KindError makes Fire return an *Error (transient unless the rule
	// is marked Permanent), after the rule's Delay.
	KindError Kind = "error"
	// KindPanic makes Fire panic with a *Panic value.
	KindPanic Kind = "panic"
	// KindWedge makes Fire block until the caller's context ends, then
	// return its error — a simulated hung shard.
	KindWedge Kind = "wedge"
)

// Hook sites wired through the execution stack. Fire is a no-op at
// every site unless the context carries an armed Injector.
const (
	// SiteMonteCarloChunk fires once per checkEvery-sample worker chunk
	// inside the Monte-Carlo sampling loops ("panic at sample N").
	SiteMonteCarloChunk = "montecarlo.chunk"
	// SiteExperimentRun fires at the entry of experiments.RunCtx.
	SiteExperimentRun = "experiments.run"
	// SiteSweepShard fires at the entry of each sweep shard evaluation.
	SiteSweepShard = "sweep.shard"
	// SiteJobAttempt fires at the start of every job attempt in the
	// internal/jobs worker pool, including retries.
	SiteJobAttempt = "jobs.attempt"
	// SiteClusterLease fires before each lease request a cluster worker
	// sends to its coordinator ("the network ate my lease call").
	SiteClusterLease = "cluster.lease"
	// SiteClusterComplete fires before each result upload a cluster
	// worker sends to its coordinator ("the upload failed; retry it").
	SiteClusterComplete = "cluster.complete"
)

// Rule arms one fault at a hook site.
type Rule struct {
	Site string
	Kind Kind

	// After trips the rule on the After-th Fire call at Site (1-based);
	// zero means the first call. Ignored when Prob is set.
	After int
	// Times bounds how many Fire calls trip this rule; zero means once.
	Times int
	// Prob arms a seeded Bernoulli instead of a fixed occurrence: call
	// n trips iff hash(seed, site, n) < Prob. Still bounded by Times.
	Prob float64
	// Delay is slept (context-aware) before the fault takes effect —
	// "error after delay". A context that ends during the sleep wins:
	// Fire returns its error and the rule still counts as fired.
	Delay time.Duration
	// Permanent marks injected errors non-transient so retry layers
	// give up immediately.
	Permanent bool
	// Msg is appended to the injected error/panic text when set.
	Msg string
}

// Error is the value returned by KindError faults. It implements the
// Transient() classification consumed by the retry layers (see
// jobs.IsTransient) without this package importing them.
type Error struct {
	Site      string
	N         int // which Fire call at Site tripped
	Permanent bool
	Msg       string
}

// Error implements error with a stable, deterministic message (golden
// tests pin it).
func (e *Error) Error() string {
	s := fmt.Sprintf("faults: injected error at %s (call %d)", e.Site, e.N)
	if e.Msg != "" {
		s += ": " + e.Msg
	}
	return s
}

// Transient reports whether retry layers should treat the injected
// error as retryable.
func (e *Error) Transient() bool { return !e.Permanent }

// Panic is the value KindPanic faults panic with.
type Panic struct {
	Site string
	N    int
	Msg  string
}

func (p *Panic) String() string {
	s := fmt.Sprintf("faults: injected panic at %s (call %d)", p.Site, p.N)
	if p.Msg != "" {
		s += ": " + p.Msg
	}
	return s
}

// armed is one Rule plus its firing bookkeeping.
type armed struct {
	Rule
	fired int
}

// Injector decides, deterministically, which Fire calls fail and how.
// All methods are safe for concurrent use; a nil *Injector never
// fires.
type Injector struct {
	seed uint64

	mu     sync.Mutex
	rules  map[string][]*armed
	counts map[string]int
	fired  int
}

// New returns an Injector with the given decision seed and rules.
func New(seed uint64, rules ...Rule) *Injector {
	in := &Injector{
		seed:   seed,
		rules:  make(map[string][]*armed),
		counts: make(map[string]int),
	}
	for _, r := range rules {
		in.rules[r.Site] = append(in.rules[r.Site], &armed{Rule: r})
	}
	return in
}

// Fired returns how many faults the injector has raised so far.
func (in *Injector) Fired() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// Calls returns how many Fire calls the named site has seen.
func (in *Injector) Calls(site string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.counts[site]
}

// ctxKey carries the Injector in a context.
type ctxKey struct{}

// With returns a context carrying in; production code never calls
// this, so plain contexts keep every hook inert.
func With(ctx context.Context, in *Injector) context.Context {
	return context.WithValue(ctx, ctxKey{}, in)
}

// From returns the Injector carried by ctx, or nil.
func From(ctx context.Context) *Injector {
	in, _ := ctx.Value(ctxKey{}).(*Injector)
	return in
}

// Fire is the package-level hook: it consults the Injector in ctx (if
// any) for the named site. The no-injector fast path is one context
// lookup.
func Fire(ctx context.Context, site string) error {
	in := From(ctx)
	if in == nil {
		return nil
	}
	return in.Fire(ctx, site)
}

// Fire records one call at site and raises the first armed rule that
// trips: KindError returns an *Error, KindPanic panics with a *Panic,
// KindWedge blocks until ctx ends. Untripped calls return nil.
func (in *Injector) Fire(ctx context.Context, site string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	in.counts[site]++
	n := in.counts[site]
	var hit *armed
	for _, a := range in.rules[site] {
		if a.trips(in.seed, n) {
			a.fired++
			in.fired++
			hit = a
			break
		}
	}
	in.mu.Unlock()
	if hit == nil {
		return nil
	}
	return act(ctx, hit.Rule, site, n)
}

// trips decides whether call n at the rule's site raises the fault;
// callers hold the injector's lock.
func (a *armed) trips(seed uint64, n int) bool {
	times := a.Times
	if times <= 0 {
		times = 1
	}
	if a.fired >= times {
		return false
	}
	if a.Prob > 0 {
		return decide(seed, a.Site, n) < a.Prob
	}
	after := a.After
	if after <= 0 {
		after = 1
	}
	return n >= after && n < after+times
}

// decide is the pure (seed, site, n) → [0,1) hash behind Prob rules.
func decide(seed uint64, site string, n int) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(site))
	return rng.NewSub(seed^h.Sum64(), n).Float64()
}

// act performs the tripped rule's failure mode.
func act(ctx context.Context, r Rule, site string, n int) error {
	if r.Delay > 0 {
		t := time.NewTimer(r.Delay)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return ctx.Err()
		}
	}
	switch r.Kind {
	case KindPanic:
		panic(&Panic{Site: site, N: n, Msg: r.Msg})
	case KindWedge:
		<-ctx.Done()
		return ctx.Err()
	default: // KindError
		return &Error{Site: site, N: n, Permanent: r.Permanent, Msg: r.Msg}
	}
}
