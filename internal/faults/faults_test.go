package faults

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNoInjectorIsInert(t *testing.T) {
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		if err := Fire(ctx, SiteJobAttempt); err != nil {
			t.Fatalf("Fire on a plain context returned %v", err)
		}
	}
	var nilInj *Injector
	if err := nilInj.Fire(ctx, SiteJobAttempt); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if n := nilInj.Fired(); n != 0 {
		t.Fatalf("nil injector Fired() = %d", n)
	}
}

func TestErrorAfterNthCall(t *testing.T) {
	in := New(1, Rule{Site: SiteSweepShard, Kind: KindError, After: 3})
	ctx := With(context.Background(), in)
	for n := 1; n <= 5; n++ {
		err := Fire(ctx, SiteSweepShard)
		if n == 3 {
			var fe *Error
			if !errors.As(err, &fe) {
				t.Fatalf("call %d: want *Error, got %v", n, err)
			}
			if fe.Site != SiteSweepShard || fe.N != 3 {
				t.Fatalf("call %d: bad error identity %+v", n, fe)
			}
			if !fe.Transient() {
				t.Fatalf("non-permanent injected error must be transient")
			}
			continue
		}
		if err != nil {
			t.Fatalf("call %d: unexpected error %v", n, err)
		}
	}
	if got := in.Fired(); got != 1 {
		t.Fatalf("Fired() = %d, want 1", got)
	}
	if got := in.Calls(SiteSweepShard); got != 5 {
		t.Fatalf("Calls() = %d, want 5", got)
	}
}

func TestTimesBoundsFirings(t *testing.T) {
	in := New(1, Rule{Site: SiteJobAttempt, Kind: KindError, After: 1, Times: 3})
	ctx := With(context.Background(), in)
	failed := 0
	for n := 0; n < 10; n++ {
		if Fire(ctx, SiteJobAttempt) != nil {
			failed++
		}
	}
	if failed != 3 {
		t.Fatalf("rule with Times=3 fired %d times", failed)
	}
}

func TestErrorMessageIsStable(t *testing.T) {
	e := &Error{Site: "sweep.shard", N: 2}
	const want = "faults: injected error at sweep.shard (call 2)"
	if e.Error() != want {
		t.Fatalf("Error() = %q, want %q", e.Error(), want)
	}
	e.Msg = "disk on fire"
	if got, want := e.Error(), want+": disk on fire"; got != want {
		t.Fatalf("Error() with Msg = %q, want %q", got, want)
	}
}

func TestPermanentErrorsAreNotTransient(t *testing.T) {
	in := New(1, Rule{Site: SiteJobAttempt, Kind: KindError, Permanent: true})
	err := in.Fire(context.Background(), SiteJobAttempt)
	var fe *Error
	if !errors.As(err, &fe) || fe.Transient() {
		t.Fatalf("permanent rule produced %v (transient=%v)", err, fe.Transient())
	}
}

func TestPanicRule(t *testing.T) {
	in := New(1, Rule{Site: SiteMonteCarloChunk, Kind: KindPanic, After: 2, Msg: "boom"})
	ctx := With(context.Background(), in)
	if err := Fire(ctx, SiteMonteCarloChunk); err != nil {
		t.Fatalf("call 1 should pass: %v", err)
	}
	defer func() {
		r := recover()
		p, ok := r.(*Panic)
		if !ok {
			t.Fatalf("recovered %v, want *Panic", r)
		}
		const want = "faults: injected panic at montecarlo.chunk (call 2): boom"
		if p.String() != want {
			t.Fatalf("panic text %q, want %q", p.String(), want)
		}
	}()
	_ = Fire(ctx, SiteMonteCarloChunk)
	t.Fatal("second call did not panic")
}

func TestDelayRespectsContext(t *testing.T) {
	in := New(1, Rule{Site: SiteJobAttempt, Kind: KindError, Delay: time.Hour})
	ctx, cancel := context.WithCancel(With(context.Background(), in))
	cancel()
	start := time.Now()
	err := Fire(ctx, SiteJobAttempt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("delayed fire under a dead context returned %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("delayed fire did not honor cancellation promptly")
	}
}

func TestWedgeUnblocksOnCancel(t *testing.T) {
	in := New(1, Rule{Site: SiteSweepShard, Kind: KindWedge})
	ctx, cancel := context.WithCancel(With(context.Background(), in))
	done := make(chan error, 1)
	go func() { done <- Fire(ctx, SiteSweepShard) }()
	select {
	case err := <-done:
		t.Fatalf("wedge returned %v before cancellation", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("wedge returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wedge did not unblock after cancellation")
	}
}

// TestProbIsDeterministicPerSeed pins the Prob decision sequence to the
// seed: two injectors with the same seed agree call-for-call, and the
// fired set is bounded by Times.
func TestProbIsDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []int {
		in := New(seed, Rule{Site: SiteMonteCarloChunk, Kind: KindError, Prob: 0.3, Times: 1 << 30})
		ctx := With(context.Background(), in)
		var fired []int
		for n := 1; n <= 200; n++ {
			if Fire(ctx, SiteMonteCarloChunk) != nil {
				fired = append(fired, n)
			}
		}
		return fired
	}
	a, b := run(42), run(42)
	if len(a) == 0 || len(a) == 200 {
		t.Fatalf("Prob=0.3 fired %d/200 times; decision hash looks degenerate", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at firing %d: %d vs %d", i, a[i], b[i])
		}
	}
	if c := run(43); len(c) == len(a) && equalInts(c, a) {
		t.Fatalf("different seeds produced identical fault schedules")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
