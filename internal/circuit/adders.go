package circuit

// Adder construction. These graphs validate the paper's critical-path
// emulation choice: §3.1 notes that Drego et al. [7] measured only
// 8.4 % delay variation at 0.5 V for a 64-bit Kogge-Stone adder, close
// to the 50-FO4-chain value (9.43 %), because a real datapath block both
// averages variation along its logic depth and takes the max over many
// near-critical parallel paths.

// KoggeStone builds a width-bit Kogge-Stone prefix adder as a timing
// graph. Structure per bit position i:
//
//   - a propagate/generate cell (1 gate level),
//   - log2(width) levels of prefix merge cells, each combining the
//     (G, P) pair at i with the pair at i − 2^level (2 gate levels:
//     AND followed by AND-OR),
//   - a final sum XOR (1 gate level).
//
// width must be a power of two and ≥ 2.
func KoggeStone(width int) *Graph {
	if width < 2 || width&(width-1) != 0 {
		panic("circuit: KoggeStone width must be a power of two ≥ 2")
	}
	g := NewGraph()

	// Level 0: propagate/generate per bit.
	cur := make([]int, width)
	for i := 0; i < width; i++ {
		cur[i] = g.AddGate(1)
	}
	// Prefix levels.
	for span := 1; span < width; span *= 2 {
		next := make([]int, width)
		for i := 0; i < width; i++ {
			if i >= span {
				// Merge cell: two gate levels, fed by this bit's pair
				// and the pair span positions below.
				next[i] = g.AddGate(2, cur[i], cur[i-span])
			} else {
				// Pass-through (wire) keeps indices aligned.
				next[i] = g.AddGate(0, cur[i])
			}
		}
		cur = next
	}
	// Sum XOR per bit: carry-in comes from the prefix output one
	// position below.
	for i := 0; i < width; i++ {
		if i == 0 {
			g.AddGate(1, cur[i])
		} else {
			g.AddGate(1, cur[i], cur[i-1])
		}
	}
	return g
}

// RippleCarry builds a width-bit ripple-carry adder: a single serial
// carry chain of 2 gate levels per bit plus the sum XOR. Its critical
// path is long and essentially unique, so — unlike the Kogge-Stone — it
// behaves like a pure chain: useful as the contrasting baseline in the
// chain-emulation validation tests.
func RippleCarry(width int) *Graph {
	if width < 1 {
		panic("circuit: RippleCarry width must be ≥ 1")
	}
	g := NewGraph()
	carry := g.AddGate(1) // carry-in / bit-0 generate
	for i := 0; i < width; i++ {
		carry = g.AddGate(2, carry) // majority carry cell
		g.AddGate(1, carry)         // sum XOR off the chain
	}
	return g
}

// ArrayMultiplier builds a width×width array multiplier as a timing
// graph: a partial-product AND plane feeding a carry-save adder array
// (one full-adder row per partial product, 2 gate levels per cell) and
// a final ripple carry-propagate row. Its critical path is long
// (≈ 2·(2·width) gates) but, unlike the ripple adder, thousands of
// near-critical paths run in parallel — the structure of the SIMD FUs'
// MULT unit, used to sanity-check the chain emulation for multiply-
// dominated datapaths.
func ArrayMultiplier(width int) *Graph {
	if width < 2 {
		panic("circuit: ArrayMultiplier width must be ≥ 2")
	}
	g := NewGraph()
	// Partial-product bits: one AND gate each.
	pp := make([][]int, width)
	for i := range pp {
		pp[i] = make([]int, width)
		for j := range pp[i] {
			pp[i][j] = g.AddGate(1)
		}
	}
	// Carry-save rows: row i reduces pp row i into running sum/carry.
	sum := append([]int(nil), pp[0]...)
	carry := make([]int, width) // -1 semantics via presence check
	for i := range carry {
		carry[i] = -1
	}
	for i := 1; i < width; i++ {
		newSum := make([]int, width)
		newCarry := make([]int, width)
		for j := 0; j < width; j++ {
			fanin := []int{sum[j], pp[i][j]}
			if carry[j] >= 0 {
				fanin = append(fanin, carry[j])
			}
			// Full adder: 2 gate levels for both sum and carry outs.
			newSum[j] = g.AddGate(2, fanin...)
			newCarry[j] = g.AddGate(2, fanin...)
		}
		// Carries shift one position left for the next row.
		sum = newSum
		carry = make([]int, width)
		carry[0] = -1
		copy(carry[1:], newCarry[:width-1])
	}
	// Final carry-propagate row: ripple through the carry-save outputs.
	last := -1
	for j := 0; j < width; j++ {
		fanin := []int{sum[j]}
		if carry[j] >= 0 {
			fanin = append(fanin, carry[j])
		}
		if last >= 0 {
			fanin = append(fanin, last)
		}
		last = g.AddGate(2, fanin...)
	}
	return g
}
