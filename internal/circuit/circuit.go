// Package circuit provides gate-level timing structures for the
// Monte-Carlo variation study: inverter chains (the paper's canonical
// critical-path emulation), generic combinational timing graphs with
// longest-path evaluation, and 64-bit Kogge-Stone / ripple-carry adders
// used to validate the chain emulation against Drego et al. [7].
package circuit

import (
	"fmt"

	"github.com/ntvsim/ntvsim/internal/rng"
	"github.com/ntvsim/ntvsim/internal/variation"
)

// Chain is a series of identical FO4 inverters — the standard
// circuit-level variation testbench. The paper uses N = 50 to emulate
// one SIMD critical path.
type Chain struct {
	N int
}

// Delay draws one Monte-Carlo sample of the chain delay (seconds) at
// supply vdd on die d.
func (c Chain) Delay(s *variation.Sampler, r *rng.Stream, vdd float64, d variation.Die) float64 {
	return s.ChainDelay(r, vdd, c.N, d)
}

// Graph is a combinational timing DAG. Nodes are gates (or fixed-delay
// cells built from several gate delays); edges point from driver to
// receiver. Node IDs are dense indices assigned by AddGate. Graphs are
// built once and evaluated many times under Monte-Carlo samples.
type Graph struct {
	fanin  [][]int
	gates  []int // number of series gate delays within each node
	order  []int // topological order, computed lazily
	sorted bool
}

// NewGraph returns an empty timing graph.
func NewGraph() *Graph { return &Graph{} }

// AddGate adds a node representing gateCount series gate delays driven by
// the given fan-in nodes and returns its ID. gateCount must be ≥ 0
// (0 models a wire/port). Fan-in IDs must already exist.
func (g *Graph) AddGate(gateCount int, fanin ...int) int {
	if gateCount < 0 {
		panic(fmt.Sprintf("circuit: AddGate gateCount = %d", gateCount))
	}
	for _, f := range fanin {
		if f < 0 || f >= len(g.gates) {
			panic(fmt.Sprintf("circuit: AddGate fan-in %d does not exist", f))
		}
	}
	g.gates = append(g.gates, gateCount)
	g.fanin = append(g.fanin, append([]int(nil), fanin...))
	g.sorted = false
	return len(g.gates) - 1
}

// NumNodes returns the number of nodes added so far.
func (g *Graph) NumNodes() int { return len(g.gates) }

// NumGates returns the total series gate count across all nodes,
// an upper bound on the critical-path length in gate delays.
func (g *Graph) NumGates() int {
	total := 0
	for _, c := range g.gates {
		total += c
	}
	return total
}

// topo computes (once) a topological order. Construction by AddGate
// guarantees acyclicity: fan-ins always precede their node, so node IDs
// are already topologically ordered.
func (g *Graph) topo() []int {
	if !g.sorted {
		g.order = g.order[:0]
		for i := range g.gates {
			g.order = append(g.order, i)
		}
		g.sorted = true
	}
	return g.order
}

// Depth returns the maximum number of series gate delays along any path,
// i.e. the critical-path length in units of nominal gates.
func (g *Graph) Depth() int {
	depth := make([]int, len(g.gates))
	max := 0
	for _, i := range g.topo() {
		d := 0
		for _, f := range g.fanin[i] {
			if depth[f] > d {
				d = depth[f]
			}
		}
		depth[i] = d + g.gates[i]
		if depth[i] > max {
			max = depth[i]
		}
	}
	return max
}

// Delay draws one Monte-Carlo sample of the critical-path (longest path)
// delay of the graph at supply vdd on die d. Each series gate within
// each node receives an independent within-die draw.
func (g *Graph) Delay(s *variation.Sampler, r *rng.Stream, vdd float64, d variation.Die) float64 {
	arrival := make([]float64, len(g.gates))
	var worst float64
	for _, i := range g.topo() {
		var at float64
		for _, f := range g.fanin[i] {
			if arrival[f] > at {
				at = arrival[f]
			}
		}
		for k := 0; k < g.gates[i]; k++ {
			at += s.GateDelay(r, vdd, d)
		}
		arrival[i] = at
		if at > worst {
			worst = at
		}
	}
	return worst
}
