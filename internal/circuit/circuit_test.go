package circuit

import (
	"math"
	"testing"

	"github.com/ntvsim/ntvsim/internal/device"
	"github.com/ntvsim/ntvsim/internal/rng"
	"github.com/ntvsim/ntvsim/internal/stats"
	"github.com/ntvsim/ntvsim/internal/variation"
)

func testSampler() *variation.Sampler {
	return variation.NewSampler(
		device.Params{Vth0: 0.35, N: 1.3, Kd: 1e-11},
		device.Variation{
			SigmaVthWID: 0.012, SigmaVthD2D: 0.004,
			SigmaMulWID: 0.03, SigmaMulD2D: 0.012,
		},
	)
}

func TestGraphDepthChain(t *testing.T) {
	g := NewGraph()
	id := g.AddGate(1)
	for i := 0; i < 9; i++ {
		id = g.AddGate(1, id)
	}
	if got := g.Depth(); got != 10 {
		t.Errorf("chain depth = %d, want 10", got)
	}
	if g.NumNodes() != 10 || g.NumGates() != 10 {
		t.Errorf("nodes/gates = %d/%d", g.NumNodes(), g.NumGates())
	}
}

func TestGraphDepthDiamond(t *testing.T) {
	g := NewGraph()
	a := g.AddGate(1)
	b := g.AddGate(3, a) // long branch
	c := g.AddGate(1, a) // short branch
	g.AddGate(1, b, c)
	if got := g.Depth(); got != 5 { // 1 + 3 + 1
		t.Errorf("diamond depth = %d, want 5", got)
	}
}

func TestGraphWireNodes(t *testing.T) {
	g := NewGraph()
	a := g.AddGate(1)
	w := g.AddGate(0, a) // wire
	g.AddGate(1, w)
	if got := g.Depth(); got != 2 {
		t.Errorf("depth with wire = %d, want 2", got)
	}
}

func TestGraphPanicsOnBadFanin(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on dangling fan-in")
		}
	}()
	g := NewGraph()
	g.AddGate(1, 5)
}

func TestGraphDelayEqualsChainForSerialGraph(t *testing.T) {
	// A graph that is a pure chain must produce delays distributed like
	// Chain of the same length.
	s := testSampler()
	const n = 30
	g := NewGraph()
	id := g.AddGate(1)
	for i := 1; i < n; i++ {
		id = g.AddGate(1, id)
	}
	r1 := rng.New(42)
	r2 := rng.New(42)
	const samples = 20000
	gd := make([]float64, samples)
	cd := make([]float64, samples)
	for i := 0; i < samples; i++ {
		gd[i] = g.Delay(s, r1, 0.6, s.Die(r1))
		cd[i] = Chain{N: n}.Delay(s, r2, 0.6, s.Die(r2))
	}
	if d := stats.KSStatistic(gd, cd); d > stats.KSCritical(samples, samples, 0.01) {
		t.Errorf("serial graph and chain distributions differ: KS=%v", d)
	}
}

func TestKoggeStoneStructure(t *testing.T) {
	ks := KoggeStone(64)
	// Depth: 1 (pg) + 6 levels × 2 + 1 (sum) = 14 gate delays.
	if got := ks.Depth(); got != 14 {
		t.Errorf("KS-64 depth = %d, want 14", got)
	}
	ks8 := KoggeStone(8)
	if got := ks8.Depth(); got != 1+3*2+1 {
		t.Errorf("KS-8 depth = %d, want 8", got)
	}
}

func TestKoggeStonePanicsOnBadWidth(t *testing.T) {
	for _, w := range []int{0, 1, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("KoggeStone(%d) should panic", w)
				}
			}()
			KoggeStone(w)
		}()
	}
}

func TestRippleCarryStructure(t *testing.T) {
	rc := RippleCarry(64)
	// Depth: 1 + 64 carry cells × 2 + 1 final sum = 131... the sum XOR
	// hangs off the chain, adding 1 beyond the last carry: 1+128+1.
	if got := rc.Depth(); got != 130 {
		t.Errorf("ripple-64 depth = %d, want 130", got)
	}
}

// TestAdderVariationOrdering is the paper §3.1 validation: the
// Kogge-Stone adder (short depth, many parallel near-critical paths)
// shows delay variation comparable to a 50-gate chain and far below a
// single gate; the ripple adder (long single chain) averages harder.
func TestAdderVariationOrdering(t *testing.T) {
	s := testSampler()
	const vdd = 0.5
	const samples = 4000
	r := rng.New(7)
	ks := KoggeStone(64)
	rc := RippleCarry(64)

	ksD := make([]float64, samples)
	rcD := make([]float64, samples)
	gateD := make([]float64, samples)
	for i := 0; i < samples; i++ {
		ksD[i] = ks.Delay(s, r, vdd, s.Die(r))
		rcD[i] = rc.Delay(s, r, vdd, s.Die(r))
		gateD[i] = s.FreshGateDelay(r, vdd)
	}
	ks3s := stats.ThreeSigmaOverMu(ksD)
	rc3s := stats.ThreeSigmaOverMu(rcD)
	gate3s := stats.ThreeSigmaOverMu(gateD)
	if ks3s >= gate3s {
		t.Errorf("KS 3σ/μ %v should be below single gate %v", ks3s, gate3s)
	}
	if rc3s >= ks3s {
		t.Errorf("ripple 3σ/μ %v should be below KS %v (deeper averaging)", rc3s, ks3s)
	}
}

// TestMaxOfPathsShiftsMean: parallel near-critical paths shift the mean
// delay above the per-path mean — the same max-statistics that drive the
// SIMD architecture study.
func TestMaxOfPathsShiftsMean(t *testing.T) {
	s := testSampler()
	const vdd = 0.5
	r := rng.New(8)
	// Graph: 64 parallel 10-gate chains joined at a sink wire.
	g := NewGraph()
	ends := make([]int, 0, 64)
	for p := 0; p < 64; p++ {
		id := g.AddGate(1)
		for k := 1; k < 10; k++ {
			id = g.AddGate(1, id)
		}
		ends = append(ends, id)
	}
	g.AddGate(0, ends...)

	var graphMean, chainMean stats.Stream
	for i := 0; i < 3000; i++ {
		die := s.Die(r)
		graphMean.Add(g.Delay(s, r, vdd, die))
		chainMean.Add(s.ChainDelay(r, vdd, 10, die))
	}
	if graphMean.Mean() <= chainMean.Mean()*1.01 {
		t.Errorf("max over 64 paths (%v) should exceed single path mean (%v)",
			graphMean.Mean(), chainMean.Mean())
	}
}

func TestGraphDelayPositive(t *testing.T) {
	s := testSampler()
	r := rng.New(9)
	ks := KoggeStone(16)
	for i := 0; i < 500; i++ {
		if d := ks.Delay(s, r, 0.45, s.Die(r)); d <= 0 || math.IsNaN(d) {
			t.Fatalf("bad delay %v", d)
		}
	}
}

func TestArrayMultiplierStructure(t *testing.T) {
	m := ArrayMultiplier(16)
	// Depth: carry-save rows contribute 2 gates per row after the AND
	// plane; the final ripple adds 2 per bit: 1 + 2·15 + 2·16 = 63.
	if got := m.Depth(); got != 63 {
		t.Errorf("16×16 multiplier depth = %d, want 63", got)
	}
	if m.NumNodes() < 16*16 {
		t.Errorf("multiplier too small: %d nodes", m.NumNodes())
	}
}

func TestArrayMultiplierPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("width 1 accepted")
		}
	}()
	ArrayMultiplier(1)
}

// TestMultiplierVariationBetweenBounds: the multiplier's deep, highly
// parallel structure averages variation at least as well as a chain of
// its own depth would, and far better than a single gate.
func TestMultiplierVariationBetweenBounds(t *testing.T) {
	s := testSampler()
	const vdd = 0.5
	const samples = 1500
	r := rng.New(21)
	m := ArrayMultiplier(8)
	depth := m.Depth()

	mulD := make([]float64, samples)
	chainD := make([]float64, samples)
	gateD := make([]float64, samples)
	for i := 0; i < samples; i++ {
		mulD[i] = m.Delay(s, r, vdd, s.Die(r))
		chainD[i] = s.ChainDelay(r, vdd, depth, s.Die(r))
		gateD[i] = s.FreshGateDelay(r, vdd)
	}
	mul3s := stats.ThreeSigmaOverMu(mulD)
	chain3s := stats.ThreeSigmaOverMu(chainD)
	gate3s := stats.ThreeSigmaOverMu(gateD)
	if mul3s >= gate3s {
		t.Errorf("multiplier 3σ/μ %v not below single gate %v", mul3s, gate3s)
	}
	// Max over many parallel near-critical paths tightens the spread
	// below the single-chain value.
	if mul3s >= chain3s*1.1 {
		t.Errorf("multiplier 3σ/μ %v should not exceed same-depth chain %v", mul3s, chain3s)
	}
	// And the mean exceeds the chain's (max statistics shift right).
	if stats.Mean(mulD) <= stats.Mean(chainD) {
		t.Error("multiplier mean should exceed same-depth chain mean")
	}
}
