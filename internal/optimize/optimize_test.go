package optimize

import (
	"math"
	"testing"
)

func TestNelderMeadQuadratic(t *testing.T) {
	f := func(x []float64) float64 {
		dx, dy := x[0]-3, x[1]+1
		return dx*dx + 2*dy*dy + 5
	}
	res := NelderMead(f, []float64{0, 0}, NelderMeadOptions{})
	if math.Abs(res.X[0]-3) > 1e-4 || math.Abs(res.X[1]+1) > 1e-4 {
		t.Errorf("minimum at %v, want (3, -1)", res.X)
	}
	if math.Abs(res.F-5) > 1e-7 {
		t.Errorf("F = %v, want 5", res.F)
	}
}

func TestNelderMeadRosenbrock(t *testing.T) {
	f := func(x []float64) float64 {
		a := 1 - x[0]
		b := x[1] - x[0]*x[0]
		return a*a + 100*b*b
	}
	res := NelderMead(f, []float64{-1.2, 1}, NelderMeadOptions{MaxIter: 10000})
	// Restart to polish — standard practice for Nelder–Mead on banana
	// valleys and exactly what the calibration code does.
	res = NelderMead(f, res.X, NelderMeadOptions{MaxIter: 10000, Scale: 0.01})
	if math.Abs(res.X[0]-1) > 1e-3 || math.Abs(res.X[1]-1) > 1e-3 {
		t.Errorf("minimum at %v, want (1, 1)", res.X)
	}
}

func TestNelderMeadRejectsInfeasible(t *testing.T) {
	// Constrained region x > 0 enforced by +Inf.
	f := func(x []float64) float64 {
		if x[0] <= 0 {
			return math.Inf(1)
		}
		return (x[0] - 2) * (x[0] - 2)
	}
	res := NelderMead(f, []float64{1}, NelderMeadOptions{})
	if math.Abs(res.X[0]-2) > 1e-5 {
		t.Errorf("minimum at %v, want 2", res.X)
	}
}

func TestNelderMeadEmpty(t *testing.T) {
	called := false
	res := NelderMead(func([]float64) float64 { called = true; return 7 }, nil, NelderMeadOptions{})
	if !called || res.F != 7 {
		t.Error("zero-dimensional objective mishandled")
	}
}

func TestGoldenSection(t *testing.T) {
	f := func(x float64) float64 { return (x - 1.7) * (x - 1.7) }
	x := GoldenSection(f, -10, 10, 1e-9)
	if math.Abs(x-1.7) > 1e-7 {
		t.Errorf("GoldenSection = %v, want 1.7", x)
	}
	// Reversed bracket should also work.
	x = GoldenSection(f, 10, -10, 1e-9)
	if math.Abs(x-1.7) > 1e-7 {
		t.Errorf("reversed bracket = %v", x)
	}
}

func TestBisect(t *testing.T) {
	f := func(x float64) float64 { return x*x*x - 8 }
	x, err := Bisect(f, 0, 10, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x-2) > 1e-9 {
		t.Errorf("root = %v, want 2", x)
	}
}

func TestBisectBadBracket(t *testing.T) {
	f := func(x float64) float64 { return x*x + 1 }
	if _, err := Bisect(f, -1, 1, 1e-9); err == nil {
		t.Error("expected bracket error")
	}
}

func TestBisectEndpointRoot(t *testing.T) {
	f := func(x float64) float64 { return x }
	x, err := Bisect(f, 0, 5, 1e-9)
	if err != nil || x != 0 {
		t.Errorf("endpoint root: x=%v err=%v", x, err)
	}
}
