// Package optimize provides the small derivative-free optimizers used by
// device-model calibration and margin search: Nelder–Mead simplex for
// multivariate least-squares fits, golden-section search for univariate
// minimization, and bisection for root finding.
package optimize

import (
	"fmt"
	"math"
	"sort"
)

// Result reports the outcome of a minimization.
type Result struct {
	X     []float64 // best point found
	F     float64   // objective value at X
	Iters int       // iterations performed
}

// NelderMeadOptions configures NelderMead. Zero values select defaults.
type NelderMeadOptions struct {
	MaxIter int     // default 2000
	TolF    float64 // stop when simplex f-spread < TolF (default 1e-10)
	TolX    float64 // stop when simplex x-spread < TolX (default 1e-10)
	Scale   float64 // initial simplex step per coordinate (default 0.1 or 10% of |x|)
}

// NelderMead minimizes f starting from x0 using the Nelder–Mead simplex
// with standard coefficients (reflection 1, expansion 2, contraction 0.5,
// shrink 0.5). f may return +Inf to reject infeasible points.
func NelderMead(f func([]float64) float64, x0 []float64, opt NelderMeadOptions) Result {
	n := len(x0)
	if n == 0 {
		return Result{X: nil, F: f(nil)}
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 2000
	}
	if opt.TolF == 0 {
		opt.TolF = 1e-10
	}
	if opt.TolX == 0 {
		opt.TolX = 1e-10
	}

	type vertex struct {
		x []float64
		f float64
	}
	eval := func(x []float64) vertex {
		return vertex{x: append([]float64(nil), x...), f: f(x)}
	}

	// Build the initial simplex: x0 plus one perturbed point per axis.
	simplex := make([]vertex, 0, n+1)
	simplex = append(simplex, eval(x0))
	for i := 0; i < n; i++ {
		x := append([]float64(nil), x0...)
		step := opt.Scale
		if step == 0 {
			step = 0.1 * math.Abs(x[i])
			if step == 0 {
				step = 0.1
			}
		}
		x[i] += step
		simplex = append(simplex, eval(x))
	}

	centroid := make([]float64, n)
	trial := make([]float64, n)
	iters := 0
	for ; iters < opt.MaxIter; iters++ {
		sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
		best, worst := simplex[0], simplex[n]

		// Convergence: function spread and simplex diameter.
		fSpread := math.Abs(worst.f - best.f)
		var xSpread float64
		for i := 0; i < n; i++ {
			d := math.Abs(worst.x[i] - best.x[i])
			if d > xSpread {
				xSpread = d
			}
		}
		if fSpread < opt.TolF && xSpread < opt.TolX {
			break
		}

		// Centroid of all but the worst vertex.
		for i := range centroid {
			centroid[i] = 0
		}
		for _, v := range simplex[:n] {
			for i, xi := range v.x {
				centroid[i] += xi
			}
		}
		for i := range centroid {
			centroid[i] /= float64(n)
		}

		// Reflection.
		for i := range trial {
			trial[i] = centroid[i] + (centroid[i] - worst.x[i])
		}
		refl := eval(trial)
		switch {
		case refl.f < best.f:
			// Expansion.
			for i := range trial {
				trial[i] = centroid[i] + 2*(centroid[i]-worst.x[i])
			}
			exp := eval(trial)
			if exp.f < refl.f {
				simplex[n] = exp
			} else {
				simplex[n] = refl
			}
		case refl.f < simplex[n-1].f:
			simplex[n] = refl
		default:
			// Contraction, toward the better of worst/reflected.
			contractBase := worst
			if refl.f < worst.f {
				contractBase = refl
			}
			for i := range trial {
				trial[i] = centroid[i] + 0.5*(contractBase.x[i]-centroid[i])
			}
			con := eval(trial)
			if con.f < contractBase.f {
				simplex[n] = con
			} else {
				// Shrink everything toward the best vertex.
				for j := 1; j <= n; j++ {
					for i := range simplex[j].x {
						simplex[j].x[i] = best.x[i] + 0.5*(simplex[j].x[i]-best.x[i])
					}
					simplex[j] = eval(simplex[j].x)
				}
			}
		}
	}
	sort.Slice(simplex, func(a, b int) bool { return simplex[a].f < simplex[b].f })
	return Result{X: simplex[0].x, F: simplex[0].f, Iters: iters}
}

// GoldenSection minimizes a unimodal function f on [a, b] to the given
// x-tolerance and returns the minimizing point.
func GoldenSection(f func(float64) float64, a, b, tol float64) float64 {
	if b < a {
		a, b = b, a
	}
	if tol <= 0 {
		tol = 1e-9
	}
	const invPhi = 0.6180339887498949
	x1 := b - invPhi*(b-a)
	x2 := a + invPhi*(b-a)
	f1, f2 := f(x1), f(x2)
	for b-a > tol {
		if f1 < f2 {
			b, x2, f2 = x2, x1, f1
			x1 = b - invPhi*(b-a)
			f1 = f(x1)
		} else {
			a, x1, f1 = x1, x2, f2
			x2 = a + invPhi*(b-a)
			f2 = f(x2)
		}
	}
	return (a + b) / 2
}

// Bisect finds x in [a, b] with f(x) = 0 given f(a) and f(b) of opposite
// sign, to the given x-tolerance. It returns an error if the bracket is
// invalid.
func Bisect(f func(float64) float64, a, b, tol float64) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, fmt.Errorf("optimize: Bisect bracket [%g, %g] does not change sign (f=%g, %g)", a, b, fa, fb)
	}
	if tol <= 0 {
		tol = 1e-12
	}
	for b-a > tol {
		m := (a + b) / 2
		fm := f(m)
		if fm == 0 {
			return m, nil
		}
		if (fm > 0) == (fa > 0) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return (a + b) / 2, nil
}
