package device

import "testing"

func BenchmarkDelay(b *testing.B) {
	p := testParams()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += p.Delay(0.55, 0.35)
	}
	_ = sink
}

func BenchmarkGateMoments(b *testing.B) {
	p := testParams()
	v := testVariation()
	for i := 0; i < b.N; i++ {
		GateMoments(p, v, 0.55)
	}
}

func BenchmarkChainConditionalMoments(b *testing.B) {
	p := testParams()
	v := testVariation()
	for i := 0; i < b.N; i++ {
		ChainConditionalMoments(p, v, 0.55, 50, 0.002)
	}
}
