package device

import (
	"math"
	"testing"
	"testing/quick"
)

func testParams() Params {
	return Params{Vth0: 0.35, N: 1.3, Kd: 1e-11, DIBL: 0.1, IleakK: 100}
}

func TestValidate(t *testing.T) {
	if err := testParams().Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
	bad := []Params{
		{Vth0: -0.1, N: 1.3, Kd: 1},
		{Vth0: 0.3, N: 0.5, Kd: 1},
		{Vth0: 0.3, N: 1.3, Kd: 0},
		{Vth0: 2.0, N: 1.3, Kd: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted: %+v", i, p)
		}
	}
	if _, err := NewParams(0.3, 1.3, 1e-11); err != nil {
		t.Errorf("NewParams: %v", err)
	}
	if _, err := NewParams(0.3, 0.1, 1e-11); err == nil {
		t.Error("NewParams should reject bad slope factor")
	}
}

func TestRegionClassification(t *testing.T) {
	p := testParams() // Vth = 0.35
	cases := []struct {
		vdd  float64
		want Region
	}{
		{0.2, SubThreshold},
		{0.34, SubThreshold},
		{0.36, NearThreshold},
		{0.6, NearThreshold},
		{0.66, SuperThreshold},
		{1.0, SuperThreshold},
	}
	for _, c := range cases {
		if got := p.Region(c.vdd); got != c.want {
			t.Errorf("Region(%v) = %v, want %v", c.vdd, got, c.want)
		}
	}
	for _, r := range []Region{SubThreshold, NearThreshold, SuperThreshold, Region(99)} {
		if r.String() == "" {
			t.Error("Region.String empty")
		}
	}
}

func TestDelayMonotoneInVdd(t *testing.T) {
	p := testParams()
	prev := math.Inf(1)
	for v := 0.2; v <= 1.2; v += 0.01 {
		d := p.NominalDelay(v)
		if d >= prev {
			t.Fatalf("delay not decreasing at Vdd=%v", v)
		}
		prev = d
	}
}

func TestDelayMonotoneInVth(t *testing.T) {
	p := testParams()
	prev := 0.0
	for vth := 0.25; vth <= 0.45; vth += 0.005 {
		d := p.Delay(0.5, vth)
		if d <= prev {
			t.Fatalf("delay not increasing in Vth at %v", vth)
		}
		prev = d
	}
}

func TestDelayExplodesNearThreshold(t *testing.T) {
	p := testParams()
	// The defining near-threshold behaviour: delay grows superlinearly
	// as Vdd drops toward Vth. Paper: ≈10× slowdown from nominal to NTV.
	slow := p.NominalDelay(0.5) / p.NominalDelay(1.0)
	if slow < 5 || slow > 50 {
		t.Errorf("NTV slowdown ×%v outside the expected order of magnitude", slow)
	}
}

func TestSensitivityMatchesFiniteDifference(t *testing.T) {
	p := testParams()
	const h = 1e-7
	for _, vdd := range []float64{0.4, 0.5, 0.7, 1.0} {
		for _, vth := range []float64{0.30, 0.35, 0.40} {
			got := p.DelaySensitivityVth(vdd, vth)
			fd := (math.Log(p.Delay(vdd, vth+h)) - math.Log(p.Delay(vdd, vth-h))) / (2 * h)
			if math.Abs(got-fd) > 1e-4*math.Abs(fd)+1e-9 {
				t.Errorf("∂lnτ/∂Vth(%v,%v) = %v, finite diff %v", vdd, vth, got, fd)
			}
			gotV := p.DelaySensitivityVdd(vdd, vth)
			fdV := (math.Log(p.Delay(vdd+h, vth)) - math.Log(p.Delay(vdd-h, vth))) / (2 * h)
			if math.Abs(gotV-fdV) > 1e-4*math.Abs(fdV)+1e-9 {
				t.Errorf("∂lnτ/∂Vdd(%v,%v) = %v, finite diff %v", vdd, vth, gotV, fdV)
			}
		}
	}
}

func TestSensitivityGrowsTowardThreshold(t *testing.T) {
	p := testParams()
	s1 := p.DelaySensitivityVth(1.0, p.Vth0)
	s05 := p.DelaySensitivityVth(0.5, p.Vth0)
	s04 := p.DelaySensitivityVth(0.4, p.Vth0)
	if !(s04 > s05 && s05 > s1) {
		t.Errorf("sensitivity should grow toward threshold: %v, %v, %v", s1, s05, s04)
	}
	if s05/s1 < 2 {
		t.Errorf("near-threshold sensitivity amplification only ×%v", s05/s1)
	}
}

func TestLog1pExpAccuracy(t *testing.T) {
	for _, x := range []float64{-50, -35, -10, -1, 0, 1, 10, 34.9, 35.1, 100} {
		got := log1pExp(x)
		var want float64
		if x > 700 {
			want = x
		} else {
			want = math.Log1p(math.Exp(x))
			if math.IsInf(math.Exp(x), 1) {
				want = x
			}
		}
		if math.Abs(got-want) > 1e-12*math.Max(1, math.Abs(want)) {
			t.Errorf("log1pExp(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestOnCurrentLimits(t *testing.T) {
	p := testParams()
	// Strong inversion: I_on ≈ ((Vdd−Vth)/(2nφt))².
	v := 1.2
	x := (v - p.Vth0) / (2 * p.N * PhiT)
	if got := p.OnCurrent(v, p.Vth0); math.Abs(got-x*x)/got > 0.01 {
		t.Errorf("strong-inversion current %v, want ≈%v", got, x*x)
	}
	// Deep subthreshold: exponential in Vdd (equal ratios per step).
	r1 := p.OnCurrent(0.15, p.Vth0) / p.OnCurrent(0.10, p.Vth0)
	r2 := p.OnCurrent(0.20, p.Vth0) / p.OnCurrent(0.15, p.Vth0)
	if math.Abs(r1-r2)/r1 > 0.10 {
		t.Errorf("subthreshold current not exponential: ratios %v vs %v", r1, r2)
	}
}

func TestLeakCurrentGrowsWithVdd(t *testing.T) {
	p := testParams()
	if !(p.LeakCurrent(1.0) > p.LeakCurrent(0.5)) {
		t.Error("DIBL should raise leakage with Vdd")
	}
}

func TestDelayPositiveProperty(t *testing.T) {
	p := testParams()
	f := func(rawV, rawT float64) bool {
		vdd := 0.1 + math.Abs(math.Mod(rawV, 1.3))
		vth := 0.1 + math.Abs(math.Mod(rawT, 0.5))
		d := p.Delay(vdd, vth)
		return d > 0 && !math.IsInf(d, 0) && !math.IsNaN(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
