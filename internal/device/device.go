// Package device implements the transregional CMOS gate-delay, current
// and leakage models that stand in for the paper's HSPICE device decks.
//
// The on-current uses the EKV-style interpolation
//
//	I_on(Vdd, Vth) ∝ ln²(1 + exp((Vdd − Vth) / (2·n·φt)))
//
// which reduces to the square-law (Vdd−Vth)² in strong inversion and to
// the exponential subthreshold current below Vth, covering the
// super-/near-/sub-threshold regimes with one smooth expression (Zhai et
// al., ISLPED'05). Gate delay is the usual CV/I metric
//
//	τ(Vdd, Vth) = Kd · Vdd / I_on(Vdd, Vth)
//
// so the delay sensitivity to threshold-voltage variation —
// ∂lnτ/∂V_th — grows exponentially as Vdd approaches Vth, which is the
// phenomenon the paper studies.
package device

import (
	"fmt"
	"math"
)

// PhiT is the thermal voltage kT/q at 300 K, in volts.
const PhiT = 0.02585

// Region classifies an operating voltage relative to the threshold.
type Region int

const (
	// SubThreshold: Vdd < Vth.
	SubThreshold Region = iota
	// NearThreshold: Vth ≤ Vdd < Vth + NearThresholdBand.
	NearThreshold
	// SuperThreshold: Vdd ≥ Vth + NearThresholdBand.
	SuperThreshold
)

// NearThresholdBand is the width of the near-threshold region above Vth,
// in volts. The paper treats 0.5–0.7 V as near-threshold for devices with
// Vth around 0.3–0.45 V; a 300 mV band reproduces that classification.
const NearThresholdBand = 0.30

// String returns the conventional name of the region.
func (r Region) String() string {
	switch r {
	case SubThreshold:
		return "sub-threshold"
	case NearThreshold:
		return "near-threshold"
	case SuperThreshold:
		return "super-threshold"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}

// Params holds the fitted device parameters for one technology node.
// See internal/tech for the calibrated per-node values and the anchors
// they were fitted against.
type Params struct {
	Vth0 float64 // nominal threshold voltage, V
	N    float64 // subthreshold slope factor (dimensionless, ≥ 1)
	Kd   float64 // delay constant: τ = Kd·Vdd/ion, seconds·V⁻¹ scaled

	// Leakage model: I_off ∝ exp((λ·Vdd − Vth)/(n·φt)).
	DIBL   float64 // drain-induced barrier lowering coefficient λ
	IleakK float64 // leakage scale relative to drive strength
}

// NewParams validates and returns a parameter set.
func NewParams(vth0, n, kd float64) (Params, error) {
	p := Params{Vth0: vth0, N: n, Kd: kd}
	if err := p.Validate(); err != nil {
		return Params{}, err
	}
	return p, nil
}

// Validate reports whether the parameters are physically sensible.
func (p Params) Validate() error {
	switch {
	case !(p.Vth0 > 0 && p.Vth0 < 1.5):
		return fmt.Errorf("device: Vth0 = %g V outside (0, 1.5)", p.Vth0)
	case !(p.N >= 1 && p.N < 3):
		return fmt.Errorf("device: slope factor n = %g outside [1, 3)", p.N)
	case !(p.Kd > 0):
		return fmt.Errorf("device: delay constant Kd = %g must be positive", p.Kd)
	}
	return nil
}

// Region classifies vdd for a device with this threshold voltage.
func (p Params) Region(vdd float64) Region {
	switch {
	case vdd < p.Vth0:
		return SubThreshold
	case vdd < p.Vth0+NearThresholdBand:
		return NearThreshold
	default:
		return SuperThreshold
	}
}

// log1pExp computes ln(1 + e^x) without overflow for large x.
func log1pExp(x float64) float64 {
	if x > 35 {
		return x // e^-35 ≈ 6e-16: below double precision relative to x
	}
	if x < -35 {
		return math.Exp(x)
	}
	return math.Log1p(math.Exp(x))
}

// OnCurrent returns the normalized on-current ln²(1+e^((Vdd−Vth)/(2nφt))).
// It is dimensionless; Kd carries the units.
func (p Params) OnCurrent(vdd, vth float64) float64 {
	l := log1pExp((vdd - vth) / (2 * p.N * PhiT))
	return l * l
}

// Delay returns the gate delay τ = Kd·Vdd/I_on in seconds for a device
// with threshold voltage vth operating at supply vdd.
func (p Params) Delay(vdd, vth float64) float64 {
	return p.Kd * vdd / p.OnCurrent(vdd, vth)
}

// NominalDelay returns the gate delay of a nominal (variation-free)
// device at supply vdd. This is the "FO4 delay" unit used to normalize
// chip-delay distributions in the architecture-level experiments.
func (p Params) NominalDelay(vdd float64) float64 {
	return p.Delay(vdd, p.Vth0)
}

// DelaySensitivityVth returns ∂lnτ/∂V_th at (vdd, vth): the relative
// delay change per volt of threshold shift. It grows from a few per volt
// in strong inversion to tens per volt near threshold.
func (p Params) DelaySensitivityVth(vdd, vth float64) float64 {
	x := (vdd - vth) / (2 * p.N * PhiT)
	l := log1pExp(x)
	sig := sigmoid(x)
	return sig / l / (p.N * PhiT)
}

// DelaySensitivityVdd returns ∂lnτ/∂Vdd at (vdd, vth). It is negative:
// raising the supply speeds the gate up, exponentially so near threshold.
// Voltage margining exploits exactly this derivative.
func (p Params) DelaySensitivityVdd(vdd, vth float64) float64 {
	x := (vdd - vth) / (2 * p.N * PhiT)
	l := log1pExp(x)
	sig := sigmoid(x)
	return 1/vdd - sig/l/(p.N*PhiT)
}

func sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// LeakCurrent returns the normalized subthreshold leakage current at
// supply vdd, in the same units as OnCurrent, including DIBL.
func (p Params) LeakCurrent(vdd float64) float64 {
	return p.IleakK * math.Exp((p.DIBL*vdd-p.Vth0)/(p.N*PhiT))
}
