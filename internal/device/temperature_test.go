package device

import (
	"math"
	"testing"
)

func TestDelayAtTempMatchesNominalAt300K(t *testing.T) {
	p := testParams()
	for _, v := range []float64{0.3, 0.5, 0.8, 1.0} {
		got, err := p.DelayAtTemp(v, RoomTempK)
		if err != nil {
			t.Fatal(err)
		}
		want := p.NominalDelay(v)
		if math.Abs(got-want)/want > 1e-12 {
			t.Errorf("DelayAtTemp(%v, 300) = %v, want %v", v, got, want)
		}
	}
}

func TestInverseTemperatureDependence(t *testing.T) {
	p := testParams() // Vth = 0.35
	// Near threshold: heating speeds the gate up.
	cold, err := p.DelayAtTemp(0.40, 273)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := p.DelayAtTemp(0.40, 398)
	if err != nil {
		t.Fatal(err)
	}
	if hot >= cold {
		t.Errorf("near threshold, hot delay %v should be below cold %v (ITD)", hot, cold)
	}
	// Strong inversion: heating slows the gate down.
	cold, err = p.DelayAtTemp(1.2, 273)
	if err != nil {
		t.Fatal(err)
	}
	hot, err = p.DelayAtTemp(1.2, 398)
	if err != nil {
		t.Fatal(err)
	}
	if hot <= cold {
		t.Errorf("super-threshold, hot delay %v should exceed cold %v", hot, cold)
	}
}

func TestTempSensitivitySign(t *testing.T) {
	p := testParams()
	sub, err := p.TempSensitivity(0.35, RoomTempK)
	if err != nil {
		t.Fatal(err)
	}
	if sub >= 0 {
		t.Errorf("at Vth, sensitivity %v should be negative (ITD)", sub)
	}
	super, err := p.TempSensitivity(1.2, RoomTempK)
	if err != nil {
		t.Fatal(err)
	}
	if super <= 0 {
		t.Errorf("super-threshold sensitivity %v should be positive", super)
	}
}

func TestTempInversionPoint(t *testing.T) {
	p := testParams()
	v, err := p.TempInversionPoint(0.3, 1.2, 273, 398)
	if err != nil {
		t.Fatal(err)
	}
	// The inversion point sits above Vth in the near/super transition.
	if v < p.Vth0 || v > p.Vth0+0.6 {
		t.Errorf("inversion point %v V implausible for Vth %v", v, p.Vth0)
	}
	// Crossover property: delays nearly equal at the point.
	hot, err := p.DelayAtTemp(v, 398)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := p.DelayAtTemp(v, 273)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hot-cold)/cold > 1e-3 {
		t.Errorf("delays differ at inversion point: %v vs %v", hot, cold)
	}
	// Below/above: opposite signs.
	sLo, _ := p.TempSensitivity(v-0.1, RoomTempK)
	sHi, _ := p.TempSensitivity(v+0.1, RoomTempK)
	if !(sLo < 0 && sHi > 0) {
		t.Errorf("sensitivity signs around inversion: %v, %v", sLo, sHi)
	}
}

func TestTempInversionNoCrossover(t *testing.T) {
	p := testParams()
	if _, err := p.TempInversionPoint(1.0, 1.2, 273, 398); err == nil {
		t.Error("expected no-crossover error in pure super-threshold range")
	}
}

func TestTempRangeValidation(t *testing.T) {
	p := testParams()
	if _, err := p.DelayAtTemp(0.5, 100); err == nil {
		t.Error("cryogenic temperature accepted")
	}
	if _, err := p.DelayAtTemp(0.5, 600); err == nil {
		t.Error("out-of-range hot temperature accepted")
	}
	if _, err := p.TempInversionPoint(0.3, 1.0, 100, 400); err == nil {
		t.Error("bad cold temperature accepted")
	}
}
