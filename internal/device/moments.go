package device

import (
	"fmt"
	"math"
)

// Variation describes the statistical variation model applied on top of
// Params. Threshold-voltage variation is additive Gaussian, split into an
// independent within-die (WID) term per gate — random dopant fluctuation
// plus line-edge roughness — and a fully correlated die-to-die (D2D)
// term shared by every gate on a die. A log-normal multiplicative factor
// (geometry/mobility variation) captures the delay variation component
// that does not scale with V_th sensitivity; it too has WID and D2D
// parts. The two-component structure is required to reproduce the
// paper's Figure 1: a pure-iid model underestimates the 50-gate-chain
// variation by roughly 2×.
type Variation struct {
	SigmaVthWID float64 // per-gate σ(V_th), volts
	SigmaVthD2D float64 // per-die σ(V_th), volts
	SigmaMulWID float64 // per-gate log-normal σ of the delay multiplier
	SigmaMulD2D float64 // per-die log-normal σ of the delay multiplier
}

// Validate reports whether the variation parameters are usable.
func (v Variation) Validate() error {
	for _, c := range []struct {
		name string
		val  float64
	}{
		{"SigmaVthWID", v.SigmaVthWID},
		{"SigmaVthD2D", v.SigmaVthD2D},
		{"SigmaMulWID", v.SigmaMulWID},
		{"SigmaMulD2D", v.SigmaMulD2D},
	} {
		if c.val < 0 || math.IsNaN(c.val) || c.val > 1 {
			return fmt.Errorf("device: variation %s = %g outside [0, 1]", c.name, c.val)
		}
	}
	return nil
}

// quadIntervals is the number of composite-Simpson intervals used for
// Gaussian expectations. Integrands here are smooth ratios of logs and
// exponentials; 160 intervals over ±8σ give ≥ 10 significant digits.
const quadIntervals = 160

// gaussExpect returns E[f(X)] for X ~ Normal(0, sigma) by composite
// Simpson quadrature over ±8σ. For sigma == 0 it returns f(0).
func gaussExpect(f func(float64) float64, sigma float64) float64 {
	if sigma == 0 {
		return f(0)
	}
	const span = 8.0
	lo, hi := -span*sigma, span*sigma
	h := (hi - lo) / quadIntervals
	inv := 1 / (sigma * math.Sqrt(2*math.Pi))
	dens := func(x float64) float64 {
		z := x / sigma
		return inv * math.Exp(-0.5*z*z)
	}
	sum := f(lo)*dens(lo) + f(hi)*dens(hi)
	for i := 1; i < quadIntervals; i++ {
		x := lo + float64(i)*h
		w := 2.0
		if i%2 == 1 {
			w = 4.0
		}
		sum += w * f(x) * dens(x)
	}
	return sum * h / 3
}

// gateRawMoments returns E[τ0] and E[τ0²] over the WID V_th distribution
// for a gate whose die-level threshold shift is d (multiplicative factors
// excluded; they are handled analytically).
func gateRawMoments(p Params, v Variation, vdd, d float64) (m1, m2 float64) {
	vth := p.Vth0 + d
	m1 = gaussExpect(func(w float64) float64 {
		return p.Delay(vdd, vth+w)
	}, v.SigmaVthWID)
	m2 = gaussExpect(func(w float64) float64 {
		t := p.Delay(vdd, vth+w)
		return t * t
	}, v.SigmaVthWID)
	return m1, m2
}

// GateMoments returns the mean and variance of a single gate's delay at
// supply vdd under the full variation model (WID + D2D, V_th +
// multiplicative).
func GateMoments(p Params, v Variation, vdd float64) (mean, variance float64) {
	emW := math.Exp(v.SigmaMulWID * v.SigmaMulWID / 2)
	emD := math.Exp(v.SigmaMulD2D * v.SigmaMulD2D / 2)
	e2W := math.Exp(2 * v.SigmaMulWID * v.SigmaMulWID)
	e2D := math.Exp(2 * v.SigmaMulD2D * v.SigmaMulD2D)
	m1 := gaussExpect(func(d float64) float64 {
		a, _ := gateRawMoments(p, v, vdd, d)
		return a
	}, v.SigmaVthD2D)
	m2 := gaussExpect(func(d float64) float64 {
		_, b := gateRawMoments(p, v, vdd, d)
		return b
	}, v.SigmaVthD2D)
	mean = emW * emD * m1
	variance = e2W*e2D*m2 - mean*mean
	return mean, variance
}

// ChainConditionalMoments returns the mean and variance of the delay of
// an n-gate chain conditional on the die: die-level threshold shift d and
// die-level multiplicative factor excluded (the caller applies the die
// multiplier to both mean and standard deviation).
//
// Gates within the chain have independent WID threshold and multiplier
// variation, so the chain mean is n·E[gate] and the chain variance is
// n·Var[gate], both conditional on d.
func ChainConditionalMoments(p Params, v Variation, vdd float64, n int, d float64) (mean, variance float64) {
	a, b := gateRawMoments(p, v, vdd, d)
	emW := math.Exp(v.SigmaMulWID * v.SigmaMulWID / 2)
	e2W := math.Exp(2 * v.SigmaMulWID * v.SigmaMulWID)
	gm := emW * a
	gv := e2W*b - gm*gm
	return float64(n) * gm, float64(n) * gv
}

// ChainMoments returns the unconditional mean and variance of an n-gate
// chain delay at supply vdd under the full variation model.
func ChainMoments(p Params, v Variation, vdd float64, n int) (mean, variance float64) {
	emD := math.Exp(v.SigmaMulD2D * v.SigmaMulD2D / 2)
	e2D := math.Exp(2 * v.SigmaMulD2D * v.SigmaMulD2D)
	m1 := gaussExpect(func(d float64) float64 {
		m, _ := ChainConditionalMoments(p, v, vdd, n, d)
		return m
	}, v.SigmaVthD2D)
	m2 := gaussExpect(func(d float64) float64 {
		m, vr := ChainConditionalMoments(p, v, vdd, n, d)
		return vr + m*m
	}, v.SigmaVthD2D)
	mean = emD * m1
	variance = e2D*m2 - mean*mean
	return mean, variance
}

// ThreeSigmaOverMu converts a (mean, variance) pair into the paper's
// 3σ/μ metric, in percent.
func ThreeSigmaOverMu(mean, variance float64) float64 {
	return 100 * 3 * math.Sqrt(variance) / mean
}
