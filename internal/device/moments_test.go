package device

import (
	"math"
	"testing"

	"github.com/ntvsim/ntvsim/internal/rng"
)

func testVariation() Variation {
	return Variation{
		SigmaVthWID: 0.012, SigmaVthD2D: 0.004,
		SigmaMulWID: 0.03, SigmaMulD2D: 0.012,
	}
}

func TestVariationValidate(t *testing.T) {
	if err := testVariation().Validate(); err != nil {
		t.Errorf("valid variation rejected: %v", err)
	}
	bad := Variation{SigmaVthWID: -0.1}
	if err := bad.Validate(); err == nil {
		t.Error("negative sigma accepted")
	}
	bad = Variation{SigmaMulD2D: math.NaN()}
	if err := bad.Validate(); err == nil {
		t.Error("NaN sigma accepted")
	}
}

// mcGate estimates gate-delay moments by brute-force Monte Carlo,
// independently of the quadrature implementation under test.
func mcGate(p Params, v Variation, vdd float64, n int) (mean, variance float64) {
	r := rng.New(12345)
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		d2d := r.Gauss(0, v.SigmaVthD2D)
		mulD := math.Exp(r.Gauss(0, v.SigmaMulD2D))
		wid := r.Gauss(0, v.SigmaVthWID)
		mulW := math.Exp(r.Gauss(0, v.SigmaMulWID))
		d := p.Delay(vdd, p.Vth0+d2d+wid) * mulD * mulW
		sum += d
		sum2 += d * d
	}
	mean = sum / float64(n)
	variance = sum2/float64(n) - mean*mean
	return mean, variance
}

func TestGateMomentsAgainstMC(t *testing.T) {
	p := testParams()
	v := testVariation()
	for _, vdd := range []float64{0.5, 0.7, 1.0} {
		qm, qv := GateMoments(p, v, vdd)
		mm, mv := mcGate(p, v, vdd, 400000)
		if math.Abs(qm-mm)/mm > 0.01 {
			t.Errorf("vdd=%v mean: quad %v vs MC %v", vdd, qm, mm)
		}
		if math.Abs(math.Sqrt(qv)-math.Sqrt(mv))/math.Sqrt(mv) > 0.03 {
			t.Errorf("vdd=%v sd: quad %v vs MC %v", vdd, math.Sqrt(qv), math.Sqrt(mv))
		}
	}
}

func TestChainMomentsAgainstMC(t *testing.T) {
	p := testParams()
	v := testVariation()
	const nGates = 20
	const vdd = 0.55
	r := rng.New(999)
	const n = 60000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		d2d := r.Gauss(0, v.SigmaVthD2D)
		mulD := math.Exp(r.Gauss(0, v.SigmaMulD2D))
		var chain float64
		for g := 0; g < nGates; g++ {
			wid := r.Gauss(0, v.SigmaVthWID)
			mulW := math.Exp(r.Gauss(0, v.SigmaMulWID))
			chain += p.Delay(vdd, p.Vth0+d2d+wid) * mulW
		}
		chain *= mulD
		sum += chain
		sum2 += chain * chain
	}
	mm := sum / n
	mv := sum2/n - mm*mm
	qm, qv := ChainMoments(p, v, vdd, nGates)
	if math.Abs(qm-mm)/mm > 0.01 {
		t.Errorf("chain mean: quad %v vs MC %v", qm, mm)
	}
	if math.Abs(math.Sqrt(qv)-math.Sqrt(mv))/math.Sqrt(mv) > 0.05 {
		t.Errorf("chain sd: quad %v vs MC %v", math.Sqrt(qv), math.Sqrt(mv))
	}
}

func TestChainAveragingReducesVariation(t *testing.T) {
	p := testParams()
	v := testVariation()
	gm, gv := GateMoments(p, v, 0.5)
	cm, cv := ChainMoments(p, v, 0.5, 50)
	gate3s := ThreeSigmaOverMu(gm, gv)
	chain3s := ThreeSigmaOverMu(cm, cv)
	if chain3s >= gate3s {
		t.Errorf("chain 3σ/μ %v should be below gate %v", chain3s, gate3s)
	}
	// With D2D correlation the reduction must be weaker than pure √N.
	if chain3s <= gate3s/math.Sqrt(50) {
		t.Errorf("chain 3σ/μ %v below iid bound %v: D2D correlation missing",
			chain3s, gate3s/math.Sqrt(50))
	}
}

func TestChainMeanScalesLinearly(t *testing.T) {
	p := testParams()
	v := testVariation()
	m10, _ := ChainMoments(p, v, 0.6, 10)
	m50, _ := ChainMoments(p, v, 0.6, 50)
	if math.Abs(m50/m10-5) > 0.01 {
		t.Errorf("chain mean should scale ∝ N: %v vs %v", m50, m10)
	}
}

func TestVariationIncreasesAtLowVdd(t *testing.T) {
	p := testParams()
	v := testVariation()
	var prev float64
	for _, vdd := range []float64{1.0, 0.8, 0.6, 0.5, 0.45} {
		gm, gv := GateMoments(p, v, vdd)
		cur := ThreeSigmaOverMu(gm, gv)
		if cur <= prev {
			t.Fatalf("3σ/μ must grow as Vdd drops: %v at %v after %v", cur, vdd, prev)
		}
		prev = cur
	}
}

func TestZeroVariationDegenerates(t *testing.T) {
	p := testParams()
	var v Variation
	m, vr := GateMoments(p, v, 0.7)
	if math.Abs(m-p.NominalDelay(0.7))/m > 1e-9 {
		t.Errorf("zero-variation mean %v, want nominal %v", m, p.NominalDelay(0.7))
	}
	if vr > 1e-30 {
		t.Errorf("zero-variation variance %v", vr)
	}
}

func TestConditionalMomentsShiftWithDie(t *testing.T) {
	p := testParams()
	v := testVariation()
	mSlow, _ := ChainConditionalMoments(p, v, 0.5, 50, +0.02)
	mFast, _ := ChainConditionalMoments(p, v, 0.5, 50, -0.02)
	if mSlow <= mFast {
		t.Error("higher die Vth must give slower chain")
	}
}
