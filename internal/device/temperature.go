package device

import (
	"fmt"
	"math"
)

// Temperature extension. Near-threshold circuits exhibit *inverse
// temperature dependence* (ITD): heating a super-threshold circuit slows
// it down (mobility degradation dominates), but heating a near/sub-
// threshold circuit speeds it up — the thermally lowered V_th and larger
// thermal voltage raise the on-current faster than mobility falls. The
// supply voltage where the two effects cancel is the temperature-
// insensitive point, a first-order design concern for NTV parts that
// the base study (fixed 300 K) abstracts away.
//
// Model:
//
//	φt(T)   = φt(300 K) · T/300
//	V_th(T) = V_th0 − κ_vt · (T − 300)
//	drive(T) ∝ (T/300)^−1.5        (mobility ∝ T^−1.5)

// RoomTempK is the reference temperature of all calibrated parameters.
const RoomTempK = 300.0

// VthTempCoeff is the threshold-voltage temperature coefficient κ_vt in
// V/K (≈ −0.9 mV/K of V_th per kelvin of heating, a typical bulk-CMOS
// value).
const VthTempCoeff = 0.9e-3

// mobilityExponent sets drive ∝ (T/300)^−mobilityExponent.
const mobilityExponent = 1.5

// validTemp bounds the model to its fitted range.
func validTemp(tempK float64) error {
	if tempK < 200 || tempK > 450 {
		return fmt.Errorf("device: temperature %g K outside model range [200, 450]", tempK)
	}
	return nil
}

// DelayAtTemp returns the nominal gate delay at supply vdd and
// temperature tempK, folding the threshold shift, thermal-voltage
// change and mobility degradation into the transregional model. At
// tempK = 300 it equals NominalDelay.
func (p Params) DelayAtTemp(vdd, tempK float64) (float64, error) {
	if err := validTemp(tempK); err != nil {
		return 0, err
	}
	phiT := PhiT * tempK / RoomTempK
	vth := p.Vth0 - VthTempCoeff*(tempK-RoomTempK)
	l := log1pExp((vdd - vth) / (2 * p.N * phiT))
	ion := l * l * math.Pow(tempK/RoomTempK, -mobilityExponent)
	return p.Kd * vdd / ion, nil
}

// TempSensitivity returns the relative delay change per kelvin,
// (1/τ)·dτ/dT, at supply vdd around tempK (central finite difference).
// Positive values mean heating slows the gate (super-threshold
// behaviour); negative values are the near/sub-threshold ITD regime.
func (p Params) TempSensitivity(vdd, tempK float64) (float64, error) {
	const h = 0.5 // K
	lo, err := p.DelayAtTemp(vdd, tempK-h)
	if err != nil {
		return 0, err
	}
	hi, err := p.DelayAtTemp(vdd, tempK+h)
	if err != nil {
		return 0, err
	}
	mid, err := p.DelayAtTemp(vdd, tempK)
	if err != nil {
		return 0, err
	}
	return (hi - lo) / (2 * h * mid), nil
}

// TempInversionPoint locates the temperature-insensitive supply voltage:
// the Vdd where delay is equal at coldK and hotK (below it, heating
// speeds the gate up; above it, heating slows it down). It returns an
// error if no crossover exists in [vLo, vHi].
func (p Params) TempInversionPoint(vLo, vHi, coldK, hotK float64) (float64, error) {
	if err := validTemp(coldK); err != nil {
		return 0, err
	}
	if err := validTemp(hotK); err != nil {
		return 0, err
	}
	diff := func(v float64) (float64, error) {
		hot, err := p.DelayAtTemp(v, hotK)
		if err != nil {
			return 0, err
		}
		cold, err := p.DelayAtTemp(v, coldK)
		if err != nil {
			return 0, err
		}
		return hot - cold, nil
	}
	fLo, err := diff(vLo)
	if err != nil {
		return 0, err
	}
	fHi, err := diff(vHi)
	if err != nil {
		return 0, err
	}
	if (fLo > 0) == (fHi > 0) {
		return 0, fmt.Errorf("device: no temperature-inversion crossover in [%g, %g] V", vLo, vHi)
	}
	lo, hi := vLo, vHi
	for hi-lo > 1e-6 {
		mid := (lo + hi) / 2
		fm, err := diff(mid)
		if err != nil {
			return 0, err
		}
		if (fm > 0) == (fLo > 0) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2, nil
}
