package variation

import (
	"math"
	"testing"

	"github.com/ntvsim/ntvsim/internal/device"
	"github.com/ntvsim/ntvsim/internal/rng"
	"github.com/ntvsim/ntvsim/internal/stats"
)

func testSampler() *Sampler {
	return NewSampler(
		device.Params{Vth0: 0.35, N: 1.3, Kd: 1e-11},
		device.Variation{
			SigmaVthWID: 0.012, SigmaVthD2D: 0.004,
			SigmaMulWID: 0.03, SigmaMulD2D: 0.012,
		},
	)
}

func TestGateDelayMatchesQuadratureMoments(t *testing.T) {
	s := testSampler()
	r := rng.New(100)
	const vdd = 0.6
	var st stats.Stream
	for i := 0; i < 200000; i++ {
		st.Add(s.FreshGateDelay(r, vdd))
	}
	qm, qv := device.GateMoments(s.Dev, s.Var, vdd)
	if math.Abs(st.Mean()-qm)/qm > 0.01 {
		t.Errorf("MC mean %v vs quadrature %v", st.Mean(), qm)
	}
	if math.Abs(st.StdDev()-math.Sqrt(qv))/math.Sqrt(qv) > 0.03 {
		t.Errorf("MC sd %v vs quadrature %v", st.StdDev(), math.Sqrt(qv))
	}
}

func TestChainDelayMatchesQuadratureMoments(t *testing.T) {
	s := testSampler()
	r := rng.New(200)
	const vdd = 0.5
	const n = 30
	var st stats.Stream
	for i := 0; i < 40000; i++ {
		st.Add(s.FreshChainDelay(r, vdd, n))
	}
	qm, qv := device.ChainMoments(s.Dev, s.Var, vdd, n)
	if math.Abs(st.Mean()-qm)/qm > 0.01 {
		t.Errorf("MC mean %v vs quadrature %v", st.Mean(), qm)
	}
	if math.Abs(st.StdDev()-math.Sqrt(qv))/math.Sqrt(qv) > 0.05 {
		t.Errorf("MC sd %v vs quadrature %v", st.StdDev(), math.Sqrt(qv))
	}
}

func TestDieCorrelationWithinDie(t *testing.T) {
	s := testSampler()
	r := rng.New(300)
	// Two gates on the same die must be positively correlated; on
	// different dies, uncorrelated.
	const n = 50000
	var sameCov, crossCov stats.Stream
	for i := 0; i < n; i++ {
		die := s.Die(r)
		g1 := s.GateDelay(r, 0.5, die)
		g2 := s.GateDelay(r, 0.5, die)
		die3 := s.Die(r)
		g3 := s.GateDelay(r, 0.5, die3)
		sameCov.Add(g1 * g2)
		crossCov.Add(g1 * g3)
	}
	qm, _ := device.GateMoments(s.Dev, s.Var, 0.5)
	same := sameCov.Mean() - qm*qm
	cross := crossCov.Mean() - qm*qm
	if same <= 0 {
		t.Errorf("same-die covariance %v should be positive", same)
	}
	if math.Abs(cross) > same/3 {
		t.Errorf("cross-die covariance %v should be near zero (same-die %v)", cross, same)
	}
}

func TestChainIsSumOfGates(t *testing.T) {
	s := testSampler()
	// With zero variation, chain delay must equal n × nominal delay.
	s.Var = device.Variation{}
	r := rng.New(400)
	got := s.FreshChainDelay(r, 0.7, 25)
	want := 25 * s.Dev.NominalDelay(0.7)
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("chain = %v, want %v", got, want)
	}
}

func TestDelaysArePositive(t *testing.T) {
	s := testSampler()
	r := rng.New(500)
	for i := 0; i < 10000; i++ {
		if d := s.FreshGateDelay(r, 0.45); d <= 0 {
			t.Fatalf("non-positive delay %v", d)
		}
	}
}

func TestDieFieldsDistribution(t *testing.T) {
	s := testSampler()
	r := rng.New(600)
	var dvth, mul stats.Stream
	for i := 0; i < 100000; i++ {
		d := s.Die(r)
		dvth.Add(d.DVth)
		mul.Add(math.Log(d.Mul))
	}
	if math.Abs(dvth.Mean()) > 1e-4 {
		t.Errorf("D2D Vth mean %v, want 0", dvth.Mean())
	}
	if math.Abs(dvth.StdDev()-s.Var.SigmaVthD2D)/s.Var.SigmaVthD2D > 0.02 {
		t.Errorf("D2D Vth sd %v, want %v", dvth.StdDev(), s.Var.SigmaVthD2D)
	}
	if math.Abs(mul.StdDev()-s.Var.SigmaMulD2D)/s.Var.SigmaMulD2D > 0.02 {
		t.Errorf("D2D mul log-sd %v, want %v", mul.StdDev(), s.Var.SigmaMulD2D)
	}
}
