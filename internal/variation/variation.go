// Package variation samples process variation for the die → lane → gate
// hierarchy of the Monte-Carlo study.
//
// The model (see internal/device.Variation) has four components:
//
//   - within-die (WID) threshold-voltage variation: an independent
//     Gaussian V_th shift per gate, caused by random dopant fluctuation
//     and — at 32/22 nm — line-edge roughness;
//   - die-to-die (D2D) threshold-voltage variation: one Gaussian shift
//     shared by every gate on the die;
//   - WID and D2D multiplicative delay factors (log-normal), capturing
//     geometry/mobility variation whose delay impact does not scale with
//     the V_th sensitivity.
//
// A Sampler binds a device model to a variation model and draws delays.
package variation

import (
	"math"

	"github.com/ntvsim/ntvsim/internal/device"
	"github.com/ntvsim/ntvsim/internal/rng"
)

// Sampler draws variation-afflicted gate delays for one technology.
type Sampler struct {
	Dev device.Params
	Var device.Variation
}

// Die holds the correlated draws shared by all gates on one die.
type Die struct {
	DVth float64 // die-to-die threshold shift, volts
	Mul  float64 // die-to-die multiplicative delay factor (≈ 1)
}

// NewSampler returns a sampler for the given device and variation model.
func NewSampler(dev device.Params, v device.Variation) *Sampler {
	return &Sampler{Dev: dev, Var: v}
}

// Die draws the correlated die-level variation.
func (s *Sampler) Die(r *rng.Stream) Die {
	return Die{
		DVth: r.Gauss(0, s.Var.SigmaVthD2D),
		Mul:  math.Exp(r.Gauss(0, s.Var.SigmaMulD2D)),
	}
}

// GateVth draws one gate's full threshold voltage on the given die.
func (s *Sampler) GateVth(r *rng.Stream, die Die) float64 {
	return s.Dev.Vth0 + die.DVth + r.Gauss(0, s.Var.SigmaVthWID)
}

// GateDelay draws one gate's delay at supply vdd on the given die,
// including both threshold and multiplicative variation.
func (s *Sampler) GateDelay(r *rng.Stream, vdd float64, die Die) float64 {
	vth := s.GateVth(r, die)
	mul := math.Exp(r.Gauss(0, s.Var.SigmaMulWID))
	return s.Dev.Delay(vdd, vth) * die.Mul * mul
}

// ChainDelay draws the delay of an n-gate chain at supply vdd on the
// given die by summing n independent gate draws. This is the exact
// (gate-level) path model; internal/simd also provides a moment-matched
// fast path validated against this one.
func (s *Sampler) ChainDelay(r *rng.Stream, vdd float64, n int, die Die) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.GateDelay(r, vdd, die)
	}
	return sum
}

// FreshChainDelay draws a chain delay on a freshly drawn die, matching
// the paper's circuit-level experiments where every Monte-Carlo sample
// is an independent chip.
func (s *Sampler) FreshChainDelay(r *rng.Stream, vdd float64, n int) float64 {
	return s.ChainDelay(r, vdd, n, s.Die(r))
}

// FreshGateDelay draws a single-gate delay on a freshly drawn die.
func (s *Sampler) FreshGateDelay(r *rng.Stream, vdd float64) float64 {
	return s.GateDelay(r, vdd, s.Die(r))
}
