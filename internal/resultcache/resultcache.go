// Package resultcache provides a concurrency-safe, bounded, in-memory
// LRU cache for experiment results, keyed by content-addressed strings.
//
// The service layer (cmd/ntvsimd) keys entries by the SHA-256 of the
// canonical JSON encoding of (experiment id, normalized Config), so two
// requests that describe the same computation — regardless of field
// order or defaulted fields — hit the same entry and are served without
// recomputing thousands of Monte-Carlo samples. Because every
// experiment is a pure function of its normalized configuration
// (deterministic seeded sampling), cached results never go stale.
package resultcache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
)

// Key returns a stable content-addressed cache key for v: the hex
// SHA-256 of its JSON encoding. Values that encode identically (e.g.
// two equal structs) always produce the same key.
func Key(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		// Fall back to the fmt representation; still deterministic for
		// the comparable structs used as keys.
		b = []byte(fmt.Sprintf("%#v", v))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Cache is a bounded LRU cache from string keys to values of type V.
// All methods are safe for concurrent use. The zero Cache is not valid;
// use New.
type Cache[V any] struct {
	mu      sync.Mutex
	max     int
	order   *list.List // front = most recently used
	entries map[string]*list.Element

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
}

type entry[V any] struct {
	key string
	val V
}

// New returns a Cache holding at most max entries; the least recently
// used entry is evicted on overflow. max <= 0 means unbounded.
func New[V any](max int) *Cache[V] {
	return &Cache[V]{
		max:     max,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get returns the value stored under key and marks it most recently
// used. The second result reports whether the key was present; the
// lookup is counted as a hit or miss accordingly.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses.Add(1)
		var zero V
		return zero, false
	}
	c.hits.Add(1)
	c.order.MoveToFront(el)
	return el.Value.(*entry[V]).val, true
}

// Put stores val under key, replacing any existing entry and evicting
// the least recently used entry if the bound is exceeded.
func (c *Cache[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*entry[V]).val = val
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&entry[V]{key: key, val: val})
	if c.max > 0 && c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*entry[V]).key)
		c.evictions.Add(1)
	}
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache[V]) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Evictions returns how many entries the LRU bound has pushed out.
func (c *Cache[V]) Evictions() uint64 { return c.evictions.Load() }

// HitRatio returns hits/(hits+misses), or 0 before any lookup — the
// cache-effectiveness gauge surfaced on /metrics.
func (c *Cache[V]) HitRatio() float64 {
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
