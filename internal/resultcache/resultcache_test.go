package resultcache

import (
	"fmt"
	"sync"
	"testing"

	"github.com/ntvsim/ntvsim/internal/experiments"
)

func TestHitMiss(t *testing.T) {
	c := New[string](4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("a", "alpha")
	v, ok := c.Get("a")
	if !ok || v != "alpha" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	if r := c.HitRatio(); r != 0.5 {
		t.Errorf("hit ratio = %v, want 0.5", r)
	}
}

func TestHitRatioEmpty(t *testing.T) {
	if r := New[int](1).HitRatio(); r != 0 {
		t.Errorf("hit ratio of untouched cache = %v, want 0", r)
	}
}

func TestLRUEviction(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a") // a is now most recent; b is the eviction candidate
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("LRU entry b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("recently used entry a evicted")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	if ev := c.Evictions(); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
}

func TestPutReplace(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("a", 2)
	if v, _ := c.Get("a"); v != 2 {
		t.Errorf("replaced value = %d, want 2", v)
	}
	if c.Len() != 1 {
		t.Errorf("Len after replace = %d, want 1", c.Len())
	}
}

// TestKeyContentAddressed asserts the (id, Config) keying contract: two
// separately-constructed but equal configurations address the same
// entry, and any field change addresses a different one.
func TestKeyContentAddressed(t *testing.T) {
	type jobKey struct {
		ID     string             `json:"id"`
		Config experiments.Config `json:"config"`
	}
	a := jobKey{ID: "fig4", Config: experiments.Config{Seed: 1, ChipSamples: 100}}
	b := jobKey{ID: "fig4", Config: experiments.Config{Seed: 1, ChipSamples: 100}}
	if Key(a) != Key(b) {
		t.Error("equal keys hash differently")
	}
	for _, other := range []jobKey{
		{ID: "fig5", Config: a.Config},
		{ID: "fig4", Config: experiments.Config{Seed: 2, ChipSamples: 100}},
		{ID: "fig4", Config: experiments.Config{Seed: 1, ChipSamples: 101}},
	} {
		if Key(a) == Key(other) {
			t.Errorf("distinct key %+v collides with %+v", other, a)
		}
	}
}

// TestSameConfigSameResult stores an experiment result and asserts a
// lookup under an equal (id, Config) key returns a deeply equal value —
// the service-level "identical query, no recomputation" contract.
func TestSameConfigSameResult(t *testing.T) {
	cfg := experiments.Config{Seed: 3, CircuitSamples: 50, ChipSamples: 100, SearchSamples: 50}
	norm, err := cfg.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	res, err := experiments.Run("fig2", cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := New[experiments.Result](8)
	type jobKey struct {
		ID     string
		Config experiments.Config
	}
	c.Put(Key(jobKey{"fig2", norm}), res)

	norm2, err := experiments.Config{Seed: 3, CircuitSamples: 50, ChipSamples: 100, SearchSamples: 50}.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(Key(jobKey{"fig2", norm2}))
	if !ok {
		t.Fatal("equal config missed the cache")
	}
	if got.Render() != res.Render() {
		t.Error("cached render differs from stored result")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New[int](32)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%64)
				c.Put(k, i)
				c.Get(k)
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 32 {
		t.Errorf("bound violated: Len = %d", c.Len())
	}
}
