package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions across different seeds", same)
	}
}

func TestSubStreamsIndependent(t *testing.T) {
	// Sub-streams of the same seed must not be correlated: estimate the
	// correlation of consecutive sub-streams' uniforms.
	const n = 20000
	a, b := NewSub(7, 0), NewSub(7, 1)
	var sa, sb, saa, sbb, sab float64
	for i := 0; i < n; i++ {
		x, y := a.Float64(), b.Float64()
		sa += x
		sb += y
		saa += x * x
		sbb += y * y
		sab += x * y
	}
	ma, mb := sa/n, sb/n
	cov := sab/n - ma*mb
	va, vb := saa/n-ma*ma, sbb/n-mb*mb
	if r := cov / math.Sqrt(va*vb); math.Abs(r) > 0.03 {
		t.Errorf("sub-stream correlation %v too large", r)
	}
}

func TestSubStreamDeterministic(t *testing.T) {
	if NewSub(9, 5).Uint64() != NewSub(9, 5).Uint64() {
		t.Error("NewSub must be deterministic")
	}
	if NewSub(9, 5).Uint64() == NewSub(9, 6).Uint64() {
		t.Error("different sub-stream indices should differ")
	}
}

func TestGaussMoments(t *testing.T) {
	r := New(11)
	const n = 100000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		x := r.Gauss(5, 2)
		sum += x
		sum2 += x * x
	}
	mean := sum / n
	sd := math.Sqrt(sum2/n - mean*mean)
	if math.Abs(mean-5) > 0.05 {
		t.Errorf("mean = %v", mean)
	}
	if math.Abs(sd-2) > 0.05 {
		t.Errorf("sd = %v", sd)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		if u := r.Float64(); u < 0 || u >= 1 {
			t.Fatalf("Float64 = %v outside [0,1)", u)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(17)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("bad permutation %v", p)
		}
		seen[v] = true
	}
}

func TestSplitDiffers(t *testing.T) {
	r := New(19)
	a := r.Split(0)
	b := r.Split(0) // consumes parent entropy: different child
	if a.Uint64() == b.Uint64() {
		t.Error("repeated Split(0) should yield different children")
	}
}

func TestIntNRange(t *testing.T) {
	r := New(23)
	counts := make([]int, 7)
	for i := 0; i < 7000; i++ {
		counts[r.IntN(7)]++
	}
	for v, c := range counts {
		if c < 800 || c > 1200 {
			t.Errorf("IntN(7) value %d count %d far from uniform", v, c)
		}
	}
}
