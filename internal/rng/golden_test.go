package rng

import "testing"

// goldenSub pins the first Uint64/Float64/Norm outputs of NewSub for a
// spread of (seed, idx) pairs, captured from the original per-sample
// NewSub implementation (math/rand/v2 PCG seeded via the SplitMix64
// finalizer). Any change to the sub-stream derivation — the mix
// constants, the PCG seeding order, the generator itself — fails this
// test loudly, which is what protects every committed artifact: all
// Monte-Carlo results in the study are deterministic functions of these
// streams.
var goldenSub = []struct {
	seed uint64
	idx  int
	u    uint64
	f    float64
	n    float64
}{
	{0, 0, 0x68c73e2a64770da2, 0.4068792195058155, 0.54371821857661},
	{1, 0, 0x54e2582be1801e14, 0.5191807911114362, -1.4378518619519385},
	{1, 1, 0x45af9e2d88764750, 0.5455498559045838, 0.8029446520648645},
	{20120603, 0, 0xbce221126cb1cf95, 0.3728063146603151, -1.037984765394016},
	{20120603, 1, 0x314330fb40e645a9, 0.5901938424576106, -1.7650567959841532},
	{20120603, 999, 0xabe0983c9c4e8bdb, 0.9135254196662774, 1.307273905892077},
	{^uint64(0), 123456, 0x9e1cda9f864ede6a, 0.7639170378556945, 0.6488893161277769},
}

func TestNewSubGolden(t *testing.T) {
	for _, g := range goldenSub {
		s := NewSub(g.seed, g.idx)
		if u := s.Uint64(); u != g.u {
			t.Errorf("NewSub(%d,%d).Uint64() = %#016x, want %#016x", g.seed, g.idx, u, g.u)
		}
		if f := s.Float64(); f != g.f {
			t.Errorf("NewSub(%d,%d) second draw Float64() = %v, want %v", g.seed, g.idx, f, g.f)
		}
		if n := s.Norm(); n != g.n {
			t.Errorf("NewSub(%d,%d) third draw Norm() = %v, want %v", g.seed, g.idx, n, g.n)
		}
	}
}

// TestNewGolden pins the top-level New(seed) derivation the same way.
func TestNewGolden(t *testing.T) {
	s := New(42)
	if u := s.Uint64(); u != 0x743a6a4551a9b830 {
		t.Errorf("New(42).Uint64() = %#016x, want 0x743a6a4551a9b830", u)
	}
	if f := s.Float64(); f != 0.04281995136143024 {
		t.Errorf("New(42) second draw Float64() = %v", f)
	}
	if n := s.Norm(); n != 0.28153849970802924 {
		t.Errorf("New(42) third draw Norm() = %v", n)
	}
}

// TestResetGolden drives the same golden table through Reset on a single
// reused stream, in order and then in reverse order, proving in-place
// reseeding is bit-identical to fresh NewSub streams and carries no
// state across Resets.
func TestResetGolden(t *testing.T) {
	var s Stream
	check := func(g struct {
		seed uint64
		idx  int
		u    uint64
		f    float64
		n    float64
	}) {
		s.Reset(g.seed, g.idx)
		if u := s.Uint64(); u != g.u {
			t.Errorf("Reset(%d,%d).Uint64() = %#016x, want %#016x", g.seed, g.idx, u, g.u)
		}
		if f := s.Float64(); f != g.f {
			t.Errorf("Reset(%d,%d) second draw = %v, want %v", g.seed, g.idx, f, g.f)
		}
		if n := s.Norm(); n != g.n {
			t.Errorf("Reset(%d,%d) third draw = %v, want %v", g.seed, g.idx, n, g.n)
		}
	}
	for _, g := range goldenSub {
		check(g)
	}
	for i := len(goldenSub) - 1; i >= 0; i-- {
		check(goldenSub[i])
	}
}

// TestResetEquivalentToNewSub compares long output runs, not just the
// first draws, across a mix of draw kinds (which exercise different
// Source consumption patterns: Norm may reject-and-redraw, IntN may
// consume a second word).
func TestResetEquivalentToNewSub(t *testing.T) {
	var reused Stream
	for idx := 0; idx < 50; idx++ {
		fresh := NewSub(31337, idx)
		reused.Reset(31337, idx)
		for draw := 0; draw < 200; draw++ {
			switch draw % 4 {
			case 0:
				if a, b := fresh.Uint64(), reused.Uint64(); a != b {
					t.Fatalf("idx %d draw %d: Uint64 %#x != %#x", idx, draw, a, b)
				}
			case 1:
				if a, b := fresh.Float64(), reused.Float64(); a != b {
					t.Fatalf("idx %d draw %d: Float64 %v != %v", idx, draw, a, b)
				}
			case 2:
				if a, b := fresh.Norm(), reused.Norm(); a != b {
					t.Fatalf("idx %d draw %d: Norm %v != %v", idx, draw, a, b)
				}
			case 3:
				if a, b := fresh.IntN(1000), reused.IntN(1000); a != b {
					t.Fatalf("idx %d draw %d: IntN %d != %d", idx, draw, a, b)
				}
			}
		}
	}
}

// TestResetAllocationFree is the per-sample allocation contract: the hot
// loop calls Reset once per sample, so Reset (and the draws that follow)
// must never touch the heap.
func TestResetAllocationFree(t *testing.T) {
	var s Stream
	sink := 0.0
	allocs := testing.AllocsPerRun(1000, func() {
		s.Reset(12345, 678)
		sink += s.Norm()
	})
	if allocs != 0 {
		t.Errorf("Reset+Norm allocates %v per run, want 0", allocs)
	}
	_ = sink
}
