package rng

import "testing"

// BenchmarkNewSub measures the old per-sample derivation cost: one heap
// stream per index, as the Monte-Carlo loops used before in-place Reset.
func BenchmarkNewSub(b *testing.B) {
	b.ReportAllocs()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += NewSub(20120603, i).Norm()
	}
	_ = sink
}

// BenchmarkReset measures the in-place derivation used by the hot loop:
// one stream reused across all indices, zero allocations.
func BenchmarkReset(b *testing.B) {
	b.ReportAllocs()
	var s Stream
	var sink float64
	for i := 0; i < b.N; i++ {
		s.Reset(20120603, i)
		sink += s.Norm()
	}
	_ = sink
}
