package rng

import "testing"

// FuzzNewSubDistinct asserts two properties over arbitrary (seed, idx)
// inputs:
//
//  1. Distinct (seed, idx) pairs yield sub-streams with distinct first
//     outputs. The derivation hashes (seed, idx) through the SplitMix64
//     finalizer into 128 bits of PCG state, so a first-word collision
//     between any two of the fuzzer's pairs would indicate a structural
//     weakness (e.g. the pre-mix seed+idx·φ lattice aliasing), not
//     birthday chance.
//  2. Reset(seed, idx) is bit-identical to NewSub(seed, idx) — the
//     in-place derivation used by the Monte-Carlo hot loop matches the
//     allocating one for all inputs, not just the golden table.
func FuzzNewSubDistinct(f *testing.F) {
	f.Add(uint64(0), 0, uint64(0), 1)
	f.Add(uint64(0), 0, uint64(1), 0)
	f.Add(uint64(20120603), 0, uint64(20120603), 1)
	f.Add(uint64(1), 7, uint64(8), 0)
	f.Add(^uint64(0), 1<<30, uint64(42), 42)
	// idx·φ pre-mix aliasing candidates: pairs whose seed difference is
	// a small multiple of the golden-ratio increment.
	f.Add(uint64(5), 3, uint64(5)+0x9e3779b97f4a7c15, 2)
	f.Fuzz(func(t *testing.T, seedA uint64, idxA int, seedB uint64, idxB int) {
		a := NewSub(seedA, idxA)
		b := NewSub(seedB, idxB)
		sameInput := seedA == seedB && idxA == idxB
		// The pre-mix input is seed+idx·φ, so (seed, idx) pairs on the
		// same lattice point are genuinely the same sub-stream; only
		// flag collisions between distinct lattice points.
		latticeA := seedA + uint64(idxA)*0x9e3779b97f4a7c15
		latticeB := seedB + uint64(idxB)*0x9e3779b97f4a7c15
		ua, ub := a.Uint64(), b.Uint64()
		if sameInput || latticeA == latticeB {
			if ua != ub {
				t.Fatalf("identical derivation (%d,%d)/(%d,%d) disagrees: %#x vs %#x",
					seedA, idxA, seedB, idxB, ua, ub)
			}
		} else if ua == ub {
			t.Fatalf("distinct (%d,%d) and (%d,%d) collide on first output %#x",
				seedA, idxA, seedB, idxB, ua)
		}

		var r Stream
		r.Reset(seedA, idxA)
		fresh := NewSub(seedA, idxA)
		for i := 0; i < 8; i++ {
			if x, y := fresh.Uint64(), r.Uint64(); x != y {
				t.Fatalf("Reset(%d,%d) diverges from NewSub at draw %d: %#x vs %#x",
					seedA, idxA, i, x, y)
			}
		}
	})
}
