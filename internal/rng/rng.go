// Package rng provides deterministic, splittable pseudo-random streams
// for reproducible parallel Monte-Carlo simulation.
//
// Every experiment in the study takes an explicit 64-bit seed. Parallel
// workers each derive an independent sub-stream from (seed, stream index)
// so that results are identical regardless of the number of workers or
// the scheduling order.
//
// # Allocation-free reseeding
//
// The Monte-Carlo hot loop derives one sub-stream per sample index —
// millions of derivations per sweep. To keep that loop off the heap, a
// Stream owns its PCG state by value and can be re-derived in place with
// Reset: a worker allocates one Stream and calls Reset(seed, i) before
// each sample. Reset(seed, idx) leaves the Stream in exactly the state
// NewSub(seed, idx) would return, so the two are interchangeable
// bit-for-bit; golden tests in this package and in internal/montecarlo
// pin that equivalence.
//
// Because the embedded generator holds an interior pointer to the
// Stream's own PCG state, a Stream must not be copied by value after
// use; always pass *Stream (every constructor returns one).
package rng

import (
	"math/rand/v2"
)

// Stream is a deterministic random stream. It wraps the PCG generator
// from math/rand/v2 by value and adds Gaussian sampling, splitting and
// in-place reseeding. The zero value is not ready to use: obtain a
// Stream from New or NewSub, or call Reset on a zero Stream first.
//
// A Stream must not be copied after first use (see the package comment).
type Stream struct {
	r   rand.Rand
	pcg rand.PCG
}

// seed points the stream at the PCG state (hi, lo) in place, binding the
// wrapped generator to the stream's own PCG on first use. It performs no
// heap allocation.
func (s *Stream) seed(hi, lo uint64) {
	s.pcg.Seed(hi, lo)
	s.r = *rand.New(&s.pcg)
}

// New returns a stream seeded from a single 64-bit seed.
func New(seed uint64) *Stream {
	s := new(Stream)
	s.seed(seed, seed^0x9e3779b97f4a7c15)
	return s
}

// NewSub returns the idx-th independent sub-stream of seed. Sub-streams
// with distinct indices are statistically independent for practical
// purposes: the PCG state space is seeded with a SplitMix64-style hash of
// (seed, idx). NewSub(seed, idx) is equivalent to Reset(seed, idx) on a
// fresh Stream.
func NewSub(seed uint64, idx int) *Stream {
	s := new(Stream)
	s.Reset(seed, idx)
	return s
}

// Reset re-derives the stream in place as the idx-th sub-stream of seed,
// with no heap allocation. After Reset the stream is bit-identical to a
// fresh NewSub(seed, idx): the same sequence of Uint64/Float64/Norm/…
// calls yields the same values. Hot loops allocate one Stream per worker
// and Reset it per sample index instead of calling NewSub per sample.
func (s *Stream) Reset(seed uint64, idx int) {
	lo := mix(seed + uint64(idx)*0x9e3779b97f4a7c15)
	hi := mix(lo ^ 0xbf58476d1ce4e5b9)
	s.seed(lo, hi)
}

// mix is the SplitMix64 finalizer: a bijective avalanche function used to
// turn structured seeds into well-distributed PCG state.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split returns the idx-th sub-stream of this stream's remaining entropy.
// It consumes one value from the parent stream, so repeated Split calls
// with the same idx yield different children.
func (s *Stream) Split(idx int) *Stream {
	return NewSub(s.r.Uint64(), idx)
}

// Float64 returns a uniform sample in [0, 1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Norm returns a standard-normal sample.
func (s *Stream) Norm() float64 { return s.r.NormFloat64() }

// Gauss returns a Normal(mu, sigma) sample.
func (s *Stream) Gauss(mu, sigma float64) float64 {
	return mu + sigma*s.r.NormFloat64()
}

// IntN returns a uniform integer in [0, n).
func (s *Stream) IntN(n int) int { return s.r.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (s *Stream) Uint64() uint64 { return s.r.Uint64() }

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle randomizes the order of n elements using the provided swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }
