// Package rng provides deterministic, splittable pseudo-random streams
// for reproducible parallel Monte-Carlo simulation.
//
// Every experiment in the study takes an explicit 64-bit seed. Parallel
// workers each derive an independent sub-stream from (seed, stream index)
// so that results are identical regardless of the number of workers or
// the scheduling order.
package rng

import (
	"math/rand/v2"
)

// Stream is a deterministic random stream. It wraps the PCG generator
// from math/rand/v2 and adds Gaussian sampling and splitting.
type Stream struct {
	r *rand.Rand
}

// New returns a stream seeded from a single 64-bit seed.
func New(seed uint64) *Stream {
	return &Stream{r: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// NewSub returns the idx-th independent sub-stream of seed. Sub-streams
// with distinct indices are statistically independent for practical
// purposes: the PCG state space is seeded with a SplitMix64-style hash of
// (seed, idx).
func NewSub(seed uint64, idx int) *Stream {
	lo := mix(seed + uint64(idx)*0x9e3779b97f4a7c15)
	hi := mix(lo ^ 0xbf58476d1ce4e5b9)
	return &Stream{r: rand.New(rand.NewPCG(lo, hi))}
}

// mix is the SplitMix64 finalizer: a bijective avalanche function used to
// turn structured seeds into well-distributed PCG state.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split returns the idx-th sub-stream of this stream's remaining entropy.
// It consumes one value from the parent stream, so repeated Split calls
// with the same idx yield different children.
func (s *Stream) Split(idx int) *Stream {
	return NewSub(s.r.Uint64(), idx)
}

// Float64 returns a uniform sample in [0, 1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Norm returns a standard-normal sample.
func (s *Stream) Norm() float64 { return s.r.NormFloat64() }

// Gauss returns a Normal(mu, sigma) sample.
func (s *Stream) Gauss(mu, sigma float64) float64 {
	return mu + sigma*s.r.NormFloat64()
}

// IntN returns a uniform integer in [0, n).
func (s *Stream) IntN(n int) int { return s.r.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (s *Stream) Uint64() uint64 { return s.r.Uint64() }

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle randomizes the order of n elements using the provided swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }
